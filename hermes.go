// Package hermes is a from-scratch Go reproduction of "Hermes: Enhancing
// Layer-7 Cloud Load Balancers with Userspace-Directed I/O Event
// Notification" (SIGCOMM 2025): a closed-loop connection dispatch framework
// in which userspace workers publish runtime status through a lock-free
// shared-memory table and an eBPF program attached at the reuseport hook
// steers new connections to the workers userspace selected.
//
// The paper's system runs on production Linux; every substrate it needs is
// rebuilt here in pure Go — see DESIGN.md for the inventory and
// substitution notes, EXPERIMENTS.md for the table/figure reproductions.
//
// Layout:
//
//   - internal/core — the contribution: Algorithm 1 scheduler, Algorithm 2
//     dispatch emitted as verified (simulated) eBPF bytecode, controllers;
//   - internal/{kernel,ebpf,shm,sim} — the substrates: simulated sockets /
//     epoll / reuseport, the eBPF VM and verifier, the lock-free Worker
//     Status Table, the discrete-event engine;
//   - internal/{l7lb,httpx,workload,trace,probe,stats,bench} — the L7 LB
//     application, traffic models, and the evaluation harness;
//   - cmd/hermes-bench — regenerate every table and figure;
//   - cmd/hermes-lb — a real-TCP reverse proxy scheduled by the same loop;
//   - cmd/hermes-trace — trace record/replay;
//   - examples/ — runnable walkthroughs of the public surface.
package hermes

// Version identifies this reproduction.
const Version = "1.0.0"
