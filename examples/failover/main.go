// Failover: drive the *same* declarative fault schedule — a worker crash
// with a scheduled restart, then a worker hang — through every dispatch
// mode and compare blast radius and recovery (§7 "How worker failures
// impact tenant services"):
//
//   - reuseport keeps hashing new connections onto the dead worker until
//     its restart (≈1/N of traffic blackholed in between);
//
//   - exclusive never wakes the dead worker, but its concentration means a
//     crash can take out most established connections at once — and a hang
//     stalls that same majority for the full hang duration;
//
//   - Hermes detects the stale loop timestamp (FilterTime) and routes
//     around the victim, and the WST watchdog — possible only because
//     Hermes exports the loop-enter heartbeat — turns the hang into a
//     crash+restart within milliseconds instead of a seconds-long stall.
//
//     go run ./examples/failover
package main

import (
	"fmt"
	"time"

	"hermes/internal/faults"
	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/sim"
	"hermes/internal/workload"
)

// The schedule, in the docs/FAULTS.md grammar: crash the most-loaded worker
// at 500ms (connections reset, restart 250ms later), then hang the
// most-loaded worker for 400ms at 1.5s.
const spec = "crash@500ms:drop:restart=250ms;hang@1.5s:dur=400ms"

func main() {
	const (
		seed    = 11
		workers = 8
		window  = 2500 * time.Millisecond
	)
	ports := []uint16{8080}
	sched, err := faults.ParseSpec(spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fault schedule: %s\n\n", sched)

	for _, mode := range []l7lb.Mode{l7lb.ModeExclusive, l7lb.ModeReuseport, l7lb.ModeHermes} {
		eng := sim.NewEngine(seed)
		cfg := l7lb.DefaultConfig(mode)
		cfg.Workers = workers
		cfg.Ports = ports
		lb, err := l7lb.New(eng, cfg)
		if err != nil {
			panic(err)
		}
		resets := 0
		lb.OnConnReset = func(kernel.ConnRef) { resets++ }
		lb.Start()

		spec := workload.Case3(ports).Scale(0.25)
		gen, err := workload.NewGenerator(lb, spec)
		if err != nil {
			panic(err)
		}
		gen.Run(window)

		inj := faults.NewInjector(lb, sched, seed)
		inj.StaleFallback = 100 * time.Millisecond
		inj.Start()

		// The watchdog scans WST loop-enter staleness; it exists only for
		// Hermes modes (NewWatchdog returns nil elsewhere — the baselines
		// have no heartbeat to watch, which is the point).
		dog := faults.NewWatchdog(lb, 2*time.Millisecond)
		if dog != nil {
			dog.AutoRestart = true
			dog.RestartDelay = 50 * time.Millisecond
			dog.Start(window)
		}

		eng.RunUntil(int64(window + 2*time.Second))

		// Connections stranded in a dead or hung worker's accept queue:
		// dispatched into the outage but never serviced.
		stranded := 0
		for _, g := range lb.Groups() {
			for _, s := range g.Sockets() {
				stranded += s.QueueLen()
			}
		}
		for _, s := range lb.SharedSockets() {
			stranded += s.QueueLen()
		}
		restarts := uint64(0)
		for _, w := range lb.Workers {
			restarts += w.Restarts
		}

		fmt.Printf("== %s ==\n", mode)
		fmt.Printf("faults injected: %d; conns reset: %d; worker restarts: %d", inj.Injected, resets, restarts)
		if dog != nil && dog.Detections > 0 {
			fmt.Printf("; watchdog detections: %d (staleness %v)", dog.Detections,
				time.Duration(dog.DetectionNS[0]).Round(time.Millisecond))
		}
		fmt.Println()
		fmt.Printf("requests completed: %d of %d sent; p99 %.2fms\n",
			lb.Completed, gen.RequestsSent, lb.Latency.Percentile(99))
		fmt.Printf("conns stranded in dead/hung accept queues after recovery window: %d\n\n", stranded)
	}
	fmt.Println("Hermes strands nothing and recovers the hang in milliseconds: the")
	fmt.Println("victim's loop timestamp goes stale, FilterTime drops it from the")
	fmt.Println("bitmap, and the watchdog crash+restarts it — the baselines stall")
	fmt.Println("until the hang releases on its own.")
}
