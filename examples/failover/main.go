// Failover: crash one worker mid-run and compare blast radius and recovery
// across dispatch modes (§7 "How worker failures impact tenant services"):
//
//   - reuseport keeps hashing new connections onto the dead worker until
//     external health checks notice (≈1/N of traffic blackholed);
//
//   - exclusive never wakes the dead worker, but its concentration means a
//     crash can take out most established connections at once;
//
//   - Hermes detects the stale loop timestamp and routes around the dead
//     worker within the hang threshold.
//
//     go run ./examples/failover
package main

import (
	"fmt"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/sim"
	"hermes/internal/workload"
)

func main() {
	const (
		seed    = 11
		workers = 8
		crashAt = 500 * time.Millisecond
		window  = 1500 * time.Millisecond
	)
	ports := []uint16{8080}

	for _, mode := range []l7lb.Mode{l7lb.ModeExclusive, l7lb.ModeReuseport, l7lb.ModeHermes} {
		eng := sim.NewEngine(seed)
		cfg := l7lb.DefaultConfig(mode)
		cfg.Workers = workers
		cfg.Ports = ports
		lb, err := l7lb.New(eng, cfg)
		if err != nil {
			panic(err)
		}
		resets := 0
		lb.OnConnReset = func(*kernel.Conn) { resets++ }
		lb.Start()

		spec := workload.Case3(ports).Scale(0.25)
		gen, err := workload.NewGenerator(lb, spec)
		if err != nil {
			panic(err)
		}
		gen.Run(window)

		// Crash the most loaded worker at crashAt, dropping its connections
		// (clients see RSTs and would reconnect).
		var victim *l7lb.Worker
		var victimConns, liveAtCrash int
		eng.At(int64(crashAt), func() {
			victim = lb.Workers[0]
			for _, w := range lb.Workers {
				liveAtCrash += w.OpenConns()
				if w.OpenConns() > victim.OpenConns() {
					victim = w
				}
			}
			victimConns = victim.OpenConns()
			victim.Crash(true)
		})
		eng.RunUntil(int64(window + 2*time.Second))

		// Connections stranded in the dead worker's accept queue: dispatched
		// after the crash but never serviced.
		stranded := 0
		if g := lb.Groups(); len(g) > 0 {
			stranded = g[0].Sockets()[victim.ID].QueueLen()
		} else if s := lb.SharedSockets(); len(s) > 0 {
			stranded = s[0].QueueLen()
		}
		fmt.Printf("== %s ==\n", mode)
		fmt.Printf("crashed worker %d held %d conns (blast radius %.0f%% of %d live at crash)\n",
			victim.ID, victimConns, 100*float64(victimConns)/float64(liveAtCrash), liveAtCrash)
		fmt.Printf("requests completed: %d of %d sent; conns reset by crash: %d\n",
			lb.Completed, gen.RequestsSent, resets)
		fmt.Printf("conns stranded on dead worker's socket after recovery window: %d\n\n", stranded)
	}
	fmt.Println("Hermes strands nothing: the dead worker's loop timestamp goes stale,")
	fmt.Println("FilterTime drops it from the bitmap, and the kernel dispatch program")
	fmt.Println("never selects its socket again.")
}
