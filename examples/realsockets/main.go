// Realsockets: the Hermes control loop running over real TCP sockets and
// goroutine workers — the "expose it through an SDK" form factor of §4.2.
//
// A listener on loopback accepts connections and dispatches each to a
// worker chosen by the live Hermes bitmap (core.NativeSelect over the
// shared Worker Status Table), standing in for the kernel's reuseport
// program, which portable Go cannot attach. Workers parse HTTP/1.1 with the
// repo's own codec, publish their status through the lock-free WST exactly
// as in Fig. 9, and run Algorithm 1 at the end of every loop.
//
// One worker is deliberately poisoned with a slow handler; watch Hermes
// steer new connections away from it while total throughput holds.
//
//	go run ./examples/realsockets
package main

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/core"
	"hermes/internal/httpx"
)

const (
	workers    = 4
	clients    = 16
	reqPerCli  = 150
	slowWorker = 3 // poisoned worker: 20ms per request
)

type worker struct {
	id     int
	hook   *core.WorkerHook
	queue  chan net.Conn
	served atomic.Uint64
}

func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	buf := make([]byte, 16<<10)
	for conn := range w.queue {
		w.hook.LoopEnter(time.Now().UnixNano())
		w.hook.ConnOpened()
		w.serveConn(conn, buf)
		w.hook.ConnClosed()
		w.hook.ScheduleAndSync(time.Now().UnixNano())
	}
}

func (w *worker) serveConn(conn net.Conn, buf []byte) {
	defer conn.Close()
	pending := 0
	for {
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := conn.Read(buf[pending:])
		if err != nil {
			return
		}
		pending += n
		for {
			req, consumed, perr := httpx.ParseRequest(buf[:pending])
			if perr == httpx.ErrIncomplete {
				break
			}
			if perr != nil {
				return
			}
			copy(buf, buf[consumed:pending])
			pending -= consumed

			w.hook.EventsFetched(1)
			if w.id == slowWorker {
				time.Sleep(20 * time.Millisecond) // poisoned handler
			}
			resp := httpx.Response{
				Status: 200,
				Headers: []httpx.Header{
					{Name: "X-Worker", Value: fmt.Sprint(w.id)},
				},
				Body: []byte("ok from worker " + fmt.Sprint(w.id)),
			}
			if _, err := conn.Write(resp.Append(nil)); err != nil {
				return
			}
			w.served.Add(1)
			w.hook.EventHandled()
			if !req.WantsKeepAlive() {
				return
			}
		}
		w.hook.LoopEnter(time.Now().UnixNano())
		w.hook.ScheduleAndSync(time.Now().UnixNano())
	}
}

func main() {
	inst, err := core.New(workers, core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	ctl := inst.(*core.Controller) // ≤64 workers → single-level deployment

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()
	fmt.Println("hermes-over-goroutines listening on", addr)

	ws := make([]*worker, workers)
	var wg sync.WaitGroup
	for i := range ws {
		ws[i] = &worker{id: i, hook: ctl.NewWorkerHook(i), queue: make(chan net.Conn, 256)}
		ws[i].hook.LoopEnter(time.Now().UnixNano())
		wg.Add(1)
		go ws[i].run(&wg)
	}
	// Seed the kernel-side map once so the first accepts have a bitmap.
	ws[0].hook.ScheduleAndSync(time.Now().UnixNano())

	// Acceptor: the kernel-dispatch stand-in. Reads the selection map the
	// schedulers publish and picks the worker by scaled hash, with
	// round-robin fallback when too few workers pass (Algorithm 2's
	// fallback arm).
	var dispatched [workers]atomic.Uint64
	var hashSeq atomic.Uint32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			bitmap, _ := ctl.SelMap().Lookup(0)
			h := hashSeq.Add(2654435761)
			wi, ok := core.NativeSelect(bitmap, h, ctl.Config().MinWorkers)
			if !ok {
				wi = int(h % workers)
			}
			dispatched[wi].Add(1)
			ws[wi].queue <- conn
		}
	}()

	// Clients: keep-alive connections, sequential requests.
	var clientWG sync.WaitGroup
	var failures atomic.Uint64
	start := time.Now()
	for c := 0; c < clients; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			for r := 0; r < reqPerCli; r++ {
				if err := doRequest(addr, c, r); err != nil {
					failures.Add(1)
				}
			}
		}(c)
	}
	clientWG.Wait()
	elapsed := time.Since(start)

	for i := range ws {
		close(ws[i].queue)
	}
	wg.Wait()

	total := uint64(0)
	fmt.Printf("\n%-8s %-12s %-10s\n", "worker", "dispatched", "served")
	for i, w := range ws {
		note := ""
		if i == slowWorker {
			note = "  <- poisoned (20ms/request)"
		}
		fmt.Printf("w%-7d %-12d %-10d%s\n", i, dispatched[i].Load(), w.served.Load(), note)
		total += w.served.Load()
	}
	st := ctl.Stats()
	fmt.Printf("\nserved %d requests in %v (%d failures), %d scheduler passes, avg %.1f workers selected\n",
		total, elapsed.Round(time.Millisecond), failures.Load(), st.ScheduleCalls, st.AvgPassed)
	fmt.Println("the poisoned worker's pending-event count keeps it out of the bitmap,")
	fmt.Println("so the acceptor starves it of new connections — same loop as the paper's kernel path.")
}

func doRequest(addr string, c, r int) error {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	req := httpx.Request{
		Method: "GET",
		Target: fmt.Sprintf("/client%d/req%d", c, r),
		Headers: []httpx.Header{
			{Name: "Host", Value: "demo"},
			{Name: "Connection", Value: "close"},
		},
	}
	if _, err := conn.Write(req.Append(nil)); err != nil {
		return err
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	data, err := io.ReadAll(conn)
	if err != nil {
		return err
	}
	if _, _, err := httpx.ParseResponse(data); err != nil {
		return err
	}
	return nil
}
