// Pipeline: the full Fig. 1 ingress path, end to end — clients behind the
// cloud gateway emit VXLAN-encapsulated TCP frames (real bytes, built by
// internal/packet); the L4 LB decapsulates, NATs each tenant's public port
// to its dedicated L7 port, and ECMP-splits flows across a mixed cluster of
// L7 devices (§6.1's methodology: exclusive and reuseport devices deployed
// alongside Hermes ones). A flooding tenant is detected by the count-min
// heavy-hitter detector at the L4 LB and migrated to a sandbox mid-run
// (Appendix C).
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"time"

	"hermes/internal/cluster"
	"hermes/internal/heavyhitter"
	"hermes/internal/l7lb"
	"hermes/internal/sim"
	"hermes/internal/stats"
)

func main() {
	eng := sim.NewEngine(2026)
	tenants := []cluster.Tenant{
		{VNI: 1001, PublicPort: 443, L7Port: 9001},
		{VNI: 1002, PublicPort: 443, L7Port: 9002},
		{VNI: 6666, PublicPort: 80, L7Port: 9003}, // will turn hostile
	}
	modes := []l7lb.Mode{
		l7lb.ModeExclusive, l7lb.ModeReuseport,
		l7lb.ModeHermes, l7lb.ModeHermes, l7lb.ModeHermes, l7lb.ModeHermes,
	}
	c, err := cluster.New(eng, cluster.Config{
		Tenants:          tenants,
		DeviceModes:      modes,
		WorkersPerDevice: 8,
		Work:             cluster.DefaultWorkFactory(80*time.Microsecond, time.Microsecond),
	})
	if err != nil {
		panic(err)
	}
	c.Detector = heavyhitter.NewDetector(0.65, 2000)
	c.Detector.OnDetect = func(vni uint32, est uint32, total uint64) {
		fmt.Printf("t=%.2fs  L4 detector: VNI %d is a heavy hitter (%d of %d SYNs) -> sandbox\n",
			float64(eng.Now())/1e9, vni, est, total)
		c.BlockTenant(vni)
	}
	c.Start()

	// Two steady tenants.
	for _, vni := range []uint32{1001, 1002} {
		cl := c.NewClient(vni)
		for i := 0; i < 2000; i++ {
			cl.OpenAndRequest(time.Duration(i)*time.Millisecond, 100*time.Microsecond,
				200+(i%5)*150, true)
		}
	}
	// The hostile tenant behaves until t=0.5s, then floods.
	hostile := c.NewClient(6666)
	for i := 0; i < 400; i++ {
		hostile.OpenAndRequest(time.Duration(i)*time.Millisecond, 100*time.Microsecond, 200, true)
	}
	for i := 0; i < 20000; i++ {
		hostile.OpenAndRequest(500*time.Millisecond+time.Duration(i)*50*time.Microsecond,
			100*time.Microsecond, 200, true)
	}

	eng.RunUntil(int64(4 * time.Second))

	fmt.Println()
	tb := stats.NewTable("Per-device results (shared ECMP traffic)",
		"device", "mode", "flows", "avg (ms)", "P99 (ms)")
	for di, d := range c.Devices {
		tb.AddRow(fmt.Sprintf("dev%d", di), modes[di].String(), d.Completed,
			stats.FormatMS(d.Latency.Mean()), stats.FormatMS(d.Latency.Percentile(99)))
	}
	fmt.Print(tb.Render())
	fmt.Printf("\npipeline: %d flows opened, %d attack SYNs blocked after migration, %d bad frames\n",
		c.FlowsOpened, c.SYNsBlocked, c.BadFrames)
	fmt.Println("the detector cut the flood at the L4 LB, so the L7 devices only absorbed")
	fmt.Println("its first seconds; steady tenants rode through on the NATed per-tenant ports.")
}
