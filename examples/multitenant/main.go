// Multitenant: one LB serving 64 tenant ports with the heavily skewed
// tenant shares of §7 (top tenants carry ~40/28/22% of traffic). Shows how
// Hermes's two-stage filtering keeps per-worker load flat even though a
// handful of tenants dominate, while epoll-exclusive concentrates.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"time"

	"hermes/internal/l7lb"
	"hermes/internal/sim"
	"hermes/internal/stats"
	"hermes/internal/workload"
)

func main() {
	const (
		seed    = 7
		workers = 16
		tenants = 64
		window  = time.Second
	)
	ports := make([]uint16, tenants)
	for i := range ports {
		ports[i] = uint16(9000 + i)
	}
	// Zipf tenant shares: the head tenant alone carries ~25% of traffic.
	weights := workload.ZipfWeights(tenants, 1.3)

	for _, mode := range []l7lb.Mode{l7lb.ModeExclusive, l7lb.ModeHermes} {
		eng := sim.NewEngine(seed)
		cfg := l7lb.DefaultConfig(mode)
		cfg.Workers = workers
		cfg.Ports = ports
		cfg.RegisteredPorts = 2 * tenants
		lb, err := l7lb.New(eng, cfg)
		if err != nil {
			panic(err)
		}
		lb.Start()

		spec := workload.Case3(ports).Scale(0.5)
		spec.PortWeights = weights
		gen, err := workload.NewGenerator(lb, spec)
		if err != nil {
			panic(err)
		}
		gen.Run(window)
		eng.RunUntil(int64(window + 2*time.Second))

		now := eng.Now()
		utils := make([]float64, workers)
		for i, w := range lb.Workers {
			utils[i] = float64(w.BusyNS(now)) / float64(now)
		}
		mean, sd := stats.MeanStddev(utils)

		fmt.Printf("== %s ==\n", mode)
		fmt.Printf("requests completed: %d (P99 %.3f ms)\n",
			lb.Completed, lb.Latency.Percentile(99))
		fmt.Printf("per-worker CPU util: mean %.1f%%, stddev %.2f%%\n", mean*100, sd*100)
		fmt.Printf("per-worker conns at end: %v\n", lb.WorkerConnCounts())
		top := []uint64{gen.PortConns[ports[0]], gen.PortConns[ports[1]], gen.PortConns[ports[2]]}
		fmt.Printf("top-3 tenant conn shares: %v of %d total\n\n", top, gen.ConnsAttempted)
	}
	fmt.Println("Tenant skew concentrates load under exclusive wakeup; Hermes's")
	fmt.Println("status-driven dispatch spreads it regardless of which ports are hot")
	fmt.Println("(§7: static per-port worker assignment cannot fix this).")
}
