// Cachegroups: the group-based scheduling of Fig. A6. Workers are
// partitioned into groups; level-1 selection hashes the destination
// (DIP, Dport) to a group so same-destination traffic stays together
// (cache locality), and level-2 applies the Hermes bitmap within the group
// (load balance). Sweeping the group count trades one against the other:
// one group is standard Hermes, one worker per group degenerates to
// reuseport.
//
//	go run ./examples/cachegroups
package main

import (
	"fmt"
	"time"

	"hermes/internal/core"
	"hermes/internal/kernel"
	"hermes/internal/sim"
	"hermes/internal/stats"
)

func main() {
	const (
		workers = 16
		conns   = 40_000
		dests   = 64 // distinct backend destinations
	)

	tb := stats.NewTable("Fig A6 — locality vs balance across group counts",
		"groups", "span", "avg workers per destination", "conn stddev across workers")
	for _, groups := range []int{1, 2, 4, 8, 16} {
		eng := sim.NewEngine(5)
		ns := kernel.NewNetStack(eng, kernel.WakeExclusiveLIFO)
		rg, err := ns.ListenReuseport(8080, workers, 1<<20)
		if err != nil {
			panic(err)
		}
		hcfg := core.DefaultConfig()
		hcfg.MinWorkers = 1 // span-1 groups must still dispatch (reuseport-degenerate case)
		inst, err := core.New(workers, hcfg,
			core.WithGroups(groups), core.WithGroupKey(core.GroupByLocalityHash))
		if err != nil {
			panic(err)
		}
		gc := inst.(*core.GroupedController)
		if err := gc.AttachEBPF(rg); err != nil {
			panic(err)
		}
		now := int64(time.Second)
		for w := 0; w < workers; w++ {
			h := gc.NewWorkerHook(w)
			h.LoopEnter(now)
			h.ScheduleAndSync(now)
		}

		// Each connection targets one of `dests` destinations; track which
		// workers serve each destination.
		perDest := make([]map[int]bool, dests)
		for i := range perDest {
			perDest[i] = map[int]bool{}
		}
		perWorker := make([]float64, workers)
		prevLens := make([]int, workers)
		rng := eng.Rand()
		for i := 0; i < conns; i++ {
			d := rng.Intn(dests)
			tuple := kernel.FourTuple{
				SrcIP:   rng.Uint32(),
				SrcPort: uint16(1024 + i%60000),
				DstIP:   uint32(0x0a00_1000 + d),
				DstPort: 8080,
			}
			if _, ok := ns.DeliverSYN(tuple, nil); !ok {
				continue
			}
			// Attribute the connection to whichever socket's queue grew.
			for wi, s := range rg.Sockets() {
				if q := s.QueueLen(); q != prevLens[wi] {
					prevLens[wi] = q
					perWorker[wi]++
					perDest[d][wi] = true
					break
				}
			}
		}

		var spreadSum float64
		for _, ws := range perDest {
			spreadSum += float64(len(ws))
		}
		_, sd := stats.MeanStddev(perWorker)
		tb.AddRow(groups, workers/groups,
			fmt.Sprintf("%.1f", spreadSum/float64(dests)),
			fmt.Sprintf("%.1f", sd))
	}
	fmt.Print(tb.Render())
	fmt.Println("\nFewer groups → better balance (low stddev) but every destination's")
	fmt.Println("traffic touches many workers; more groups → destinations pin to few")
	fmt.Println("workers (cache-friendly) at the cost of balance. The grouping")
	fmt.Println("granularity is the knob (Fig. A6).")
}
