// Quickstart: build one simulated 16-core L7 LB per dispatch mode, replay
// the same Case-2-style workload (high CPS, heavy-tailed processing time)
// against each, and compare latency and throughput.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"hermes/internal/l7lb"
	"hermes/internal/sim"
	"hermes/internal/stats"
	"hermes/internal/workload"
)

func main() {
	const (
		seed    = 42
		workers = 16
		window  = time.Second
		drain   = 2 * time.Second
	)
	ports := []uint16{8080, 8081, 8082, 8083}

	tb := stats.NewTable("Quickstart — case2-style workload, 16 workers",
		"mode", "avg (ms)", "P99 (ms)", "throughput (kRPS)", "conn stddev")
	for _, mode := range []l7lb.Mode{
		l7lb.ModeExclusive, l7lb.ModeReuseport, l7lb.ModeHermes,
	} {
		eng := sim.NewEngine(seed)
		cfg := l7lb.DefaultConfig(mode)
		cfg.Workers = workers
		cfg.Ports = ports
		lb, err := l7lb.New(eng, cfg)
		if err != nil {
			panic(err)
		}
		lb.Start()

		spec := workload.Case2(ports).Scale(0.5)
		gen, err := workload.NewGenerator(lb, spec)
		if err != nil {
			panic(err)
		}
		gen.Run(window)

		eng.RunUntil(int64(window))
		inWindow := lb.Completed
		eng.RunUntil(int64(window + drain))

		conns := lb.WorkerConnCounts()
		f := make([]float64, len(conns))
		for i, c := range conns {
			f[i] = float64(c)
		}
		_, connSD := stats.MeanStddev(f)

		tb.AddRow(mode.String(),
			stats.FormatMS(lb.Latency.Mean()),
			stats.FormatMS(lb.Latency.Percentile(99)),
			fmt.Sprintf("%.1f", float64(inWindow)/window.Seconds()/1000),
			fmt.Sprintf("%.1f", connSD))
	}
	fmt.Print(tb.Render())
	fmt.Println("\nHermes schedules new connections away from busy and hung workers")
	fmt.Println("using the worker status table; reuseport hashes blindly; exclusive")
	fmt.Println("wakeups prefer the most recently registered idle worker.")
}
