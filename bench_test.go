// Top-level benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation, plus the ablation benches DESIGN.md calls out.
// Each iteration runs a scaled-down instance of the experiment; use
// cmd/hermes-bench for full-size paper-style output.
//
//	go test -bench=. -benchmem
package hermes_test

import (
	"testing"
	"time"

	"hermes/internal/bench"
	"hermes/internal/core"
	"hermes/internal/ebpf"
	"hermes/internal/l7lb"
	"hermes/internal/shm"
	"hermes/internal/workload"
)

// benchOptions shrinks experiments so a -bench run finishes in minutes.
func benchOptions() bench.Options {
	o := bench.DefaultOptions()
	o.Workers = 8
	o.Tenants = 4
	o.Window = 100 * time.Millisecond
	o.Drain = 200 * time.Millisecond
	o.RateScale = 0.25
	return o
}

// runCell measures one Table 3 cell per iteration.
func runCell(b *testing.B, spec workload.Spec, mode l7lb.Mode) {
	b.Helper()
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(bench.RunConfig{
			Mode:    mode,
			Workers: o.Workers,
			Seed:    int64(i + 1),
			Window:  o.Window,
			Drain:   o.Drain,
			Specs:   []workload.Spec{spec},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed == 0 {
			b.Fatal("no requests completed")
		}
		b.ReportMetric(res.ThroughputKRPS, "kRPS")
		b.ReportMetric(res.P99MS, "p99ms")
	}
}

func BenchmarkTable1(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i + 1)
		if rows := bench.Table1(o); len(rows) != 4 {
			b.Fatal("table1 broken")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i + 1)
		bench.Table2(o)
	}
}

func BenchmarkTable3(b *testing.B) {
	ports := []uint16{8080, 8081, 8082, 8083}
	cases := workload.Cases(ports)
	names := []string{"case1", "case2", "case3", "case4"}
	for ci, cs := range cases {
		spec := cs.Scale(benchOptions().RateScale)
		for _, mode := range bench.Table3Modes {
			mode := mode
			b.Run(names[ci]+"/"+mode.String(), func(b *testing.B) {
				runCell(b, spec, mode)
			})
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if out := bench.Table4(o); len(out) == 0 {
			b.Fatal("table4 empty")
		}
	}
}

// BenchmarkTable5 measures the real component code paths — the ns/op here
// are Table 5's inputs.
func BenchmarkTable5(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		wst := shm.NewWST(32)
		wr := wst.Writer(3)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wr.SetLoopEnter(int64(i))
			wr.AddBusy(1)
			wr.AddBusy(-1)
			wr.AddConn(1)
			wr.AddConn(-1)
		}
	})
	b.Run("scheduler", func(b *testing.B) {
		wst := shm.NewWST(32)
		for i := 0; i < 32; i++ {
			w := wst.Writer(i)
			w.SetLoopEnter(int64(time.Second))
			w.AddBusy(int64(i % 5))
			w.AddConn(int64(i * 13 % 211))
		}
		cfg := core.DefaultConfig()
		buf := make([]shm.Metrics, 0, 32)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = wst.Snapshot(buf[:0])
			core.Schedule(int64(time.Second), buf, cfg, core.OrderTimeConnEvent)
		}
	})
	b.Run("map-sync", func(b *testing.B) {
		sel := ebpf.NewArrayMap(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := sel.Update(0, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dispatch-vm", func(b *testing.B) {
		sel := ebpf.NewArrayMap(1)
		sa := ebpf.NewSockArray(32)
		for i := 0; i < 32; i++ {
			_ = sa.Put(uint32(i), i)
		}
		_ = sel.Update(0, 0xaaaa5555)
		prog, err := core.BuildDispatchProgram(sel, sa, 2)
		if err != nil {
			b.Fatal(err)
		}
		ctx := &ebpf.ReuseportCtx{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx.Hash = uint32(i)
			if _, err := prog.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dispatch-native", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			w, _ := core.NativeSelect(0xaaaa5555, uint32(i), 2)
			sink += w
		}
		_ = sink
	})
}

func BenchmarkFig2(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i + 1)
		bench.Fig2(o)
	}
}

func BenchmarkFig3(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i + 1)
		bench.Fig3(o)
	}
}

func BenchmarkFig4and5(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i + 1)
		bench.Fig4and5(o)
	}
}

func BenchmarkFig7(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i + 1)
		bench.Fig7(o)
	}
}

func BenchmarkFig11(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i + 1)
		bench.Fig11(o)
	}
}

func BenchmarkFig12(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		bench.Fig12(o)
	}
}

func BenchmarkFig13(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i + 1)
		bench.Fig13(o)
	}
}

func BenchmarkFig14(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i + 1)
		bench.Fig14(o)
	}
}

func BenchmarkFig15(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i + 1)
		bench.Fig15(o)
	}
}

func BenchmarkFigA5(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i + 1)
		bench.FigA5(o)
	}
}

func BenchmarkWalkthrough(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		bench.Walkthrough(o)
	}
}

// --- ablations (DESIGN.md §4) ---

// BenchmarkAblationFilterOrder compares the paper's time→conn→event cascade
// against the alternatives on a heterogeneous workload.
func BenchmarkAblationFilterOrder(b *testing.B) {
	o := benchOptions()
	spec := workload.Case4([]uint16{8080}).Scale(o.RateScale)
	for _, ord := range []struct {
		name  string
		order core.FilterOrder
	}{
		{"time-conn-event", core.OrderTimeConnEvent},
		{"time-event-conn", core.OrderTimeEventConn},
		{"time-only", core.OrderTimeOnly},
	} {
		ord := ord
		b.Run(ord.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.RunConfig{
					Mode:    l7lb.ModeHermesNative,
					Workers: o.Workers,
					Seed:    int64(i + 1),
					Window:  o.Window,
					Drain:   o.Drain,
					Specs:   []workload.Spec{spec},
					Mutate:  func(c *l7lb.Config) { c.FilterOrder = ord.order },
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.P99MS, "p99ms")
			}
		})
	}
}

// BenchmarkAblationTheta sweeps the offset at the two extremes and the
// optimum (Fig. 15 in bench form).
func BenchmarkAblationTheta(b *testing.B) {
	o := benchOptions()
	spec := workload.Case2([]uint16{8080}).Scale(o.RateScale)
	for _, theta := range []float64{0, 0.5, 2.5} {
		theta := theta
		b.Run(formatTheta(theta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.RunConfig{
					Mode:    l7lb.ModeHermes,
					Workers: o.Workers,
					Seed:    int64(i + 1),
					Window:  o.Window,
					Drain:   o.Drain,
					Specs:   []workload.Spec{spec},
					Mutate:  func(c *l7lb.Config) { c.Hermes.ThetaFrac = theta },
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.P99MS, "p99ms")
			}
		})
	}
}

func formatTheta(t float64) string {
	switch t {
	case 0:
		return "theta-0"
	case 0.5:
		return "theta-0.5"
	default:
		return "theta-2.5"
	}
}

// BenchmarkAblationSingleWinner compares two-stage filtering against
// publishing only the single best worker per sync (§5.3.2: the single
// winner gets every new connection between syncs and overloads).
func BenchmarkAblationSingleWinner(b *testing.B) {
	o := benchOptions()
	spec := workload.Case1([]uint16{8080}).Scale(o.RateScale)
	for _, single := range []bool{false, true} {
		single := single
		name := "two-stage"
		if single {
			name = "single-winner"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.RunConfig{
					Mode:    l7lb.ModeHermes,
					Workers: o.Workers,
					Seed:    int64(i + 1),
					Window:  o.Window,
					Drain:   o.Drain,
					Specs:   []workload.Spec{spec},
					Mutate: func(c *l7lb.Config) {
						if single {
							c.Hermes.MinWorkers = 1
						}
					},
					PostBuild: func(lb *l7lb.LB) {
						if single {
							lb.Ctl.SetSingleWinner(true)
						}
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.P99MS, "p99ms")
			}
		})
	}
}

// BenchmarkAblationSchedulerPlacement compares scheduling at the end of the
// event loop (the paper's choice) against the beginning (§5.3.2: stale
// pre-epoll_wait status).
func BenchmarkAblationSchedulerPlacement(b *testing.B) {
	o := benchOptions()
	spec := workload.Case2([]uint16{8080}).Scale(o.RateScale)
	for _, atStart := range []bool{false, true} {
		atStart := atStart
		name := "loop-end"
		if atStart {
			name = "loop-start"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.RunConfig{
					Mode:    l7lb.ModeHermes,
					Workers: o.Workers,
					Seed:    int64(i + 1),
					Window:  o.Window,
					Drain:   o.Drain,
					Specs:   []workload.Spec{spec},
					Mutate:  func(c *l7lb.Config) { c.ScheduleAtLoopStart = atStart },
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.P99MS, "p99ms")
			}
		})
	}
}
