// Checkmetrics validates a hermes-bench -metrics dump: the file must parse
// as JSON shaped experiment → cell → metric snapshots, and every cell must
// carry at least one named metric. CI runs it as the telemetry smoke test.
//
// Beyond shape, it enforces the mode-conditional catalog: JIT counters
// (ebpf.jit.*) exist exactly in cells that attach bytecode (mode "hermes",
// where the compiled program must actually have run), the sync-batching
// counter (core.schedule.sync_batched) exactly in cells that run the Hermes
// control loop ("hermes" and "hermes-native"), and neither anywhere else —
// a leak in either direction means telemetry wiring regressed.
//
//	go run ./cmd/checkmetrics dump.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"hermes/internal/telemetry"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: checkmetrics <dump.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err.Error())
	}
	var dump map[string]map[string][]telemetry.MetricSnapshot
	if err := json.Unmarshal(data, &dump); err != nil {
		fatal("not a metrics dump: " + err.Error())
	}
	if len(dump) == 0 {
		fatal("dump has no experiments")
	}
	exps, cells, metrics := 0, 0, 0
	for exp, byCell := range dump {
		exps++
		for cell, snaps := range byCell {
			cells++
			if len(snaps) == 0 {
				fatal(fmt.Sprintf("%s/%s: cell has no metrics", exp, cell))
			}
			for _, ms := range snaps {
				if ms.Name == "" {
					fatal(fmt.Sprintf("%s/%s: metric with empty name", exp, cell))
				}
				metrics++
			}
			checkModeCatalog(exp, cell, snaps)
		}
	}
	if cells == 0 {
		fatal("dump has no cells")
	}
	fmt.Printf("ok: %d experiments, %d cells, %d metric snapshots\n", exps, cells, metrics)
}

// checkModeCatalog enforces the mode-conditional metrics. Cell names embed
// the dispatch mode as their last dash-separated token (l7lb.Mode.String()),
// so "…-hermes" runs bytecode through the JIT, "…-hermes-native" runs the
// native twin (control loop but no bytecode), and anything else runs no
// Hermes machinery at all.
func checkModeCatalog(exp, cell string, snaps []telemetry.MetricSnapshot) {
	vm := strings.HasSuffix(cell, "hermes")
	hermes := vm || strings.HasSuffix(cell, "hermes-native")
	find := func(name string) *telemetry.MetricSnapshot {
		for i := range snaps {
			if snaps[i].Name == name {
				return &snaps[i]
			}
		}
		return nil
	}
	if vm {
		for _, name := range []string{"ebpf.jit.runs", "ebpf.jit.programs", "ebpf.jit.insns", "ebpf.jit.closures"} {
			ms := find(name)
			if ms == nil {
				fatal(fmt.Sprintf("%s/%s: hermes cell missing %s", exp, cell, name))
			}
			if ms.Total() <= 0 {
				fatal(fmt.Sprintf("%s/%s: %s is zero — dispatch ran interpreted?", exp, cell, name))
			}
		}
	}
	if hermes {
		if ms := find("core.schedule.sync_batched"); ms == nil {
			fatal(fmt.Sprintf("%s/%s: hermes cell missing core.schedule.sync_batched", exp, cell))
		}
	}
	if !vm {
		for i := range snaps {
			if strings.HasPrefix(snaps[i].Name, "ebpf.jit.") {
				fatal(fmt.Sprintf("%s/%s: non-bytecode cell carries %s", exp, cell, snaps[i].Name))
			}
		}
	}
	if !hermes {
		if find("core.schedule.sync_batched") != nil {
			fatal(fmt.Sprintf("%s/%s: non-hermes cell carries core.schedule.sync_batched", exp, cell))
		}
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "checkmetrics: "+msg)
	os.Exit(1)
}
