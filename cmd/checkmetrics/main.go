// Checkmetrics validates a hermes-bench -metrics dump: the file must parse
// as JSON shaped experiment → cell → metric snapshots, and every cell must
// carry at least one named metric. CI runs it as the telemetry smoke test.
//
//	go run ./cmd/checkmetrics dump.json
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"hermes/internal/telemetry"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: checkmetrics <dump.json>")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err.Error())
	}
	var dump map[string]map[string][]telemetry.MetricSnapshot
	if err := json.Unmarshal(data, &dump); err != nil {
		fatal("not a metrics dump: " + err.Error())
	}
	if len(dump) == 0 {
		fatal("dump has no experiments")
	}
	exps, cells, metrics := 0, 0, 0
	for exp, byCell := range dump {
		exps++
		for cell, snaps := range byCell {
			cells++
			if len(snaps) == 0 {
				fatal(fmt.Sprintf("%s/%s: cell has no metrics", exp, cell))
			}
			for _, ms := range snaps {
				if ms.Name == "" {
					fatal(fmt.Sprintf("%s/%s: metric with empty name", exp, cell))
				}
				metrics++
			}
		}
	}
	if cells == 0 {
		fatal("dump has no cells")
	}
	fmt.Printf("ok: %d experiments, %d cells, %d metric snapshots\n", exps, cells, metrics)
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "checkmetrics: "+msg)
	os.Exit(1)
}
