// Command hermes-bench regenerates the paper's tables and figures against
// the simulated stack. Run a single experiment with -exp, or everything:
//
//	hermes-bench -exp table3
//	hermes-bench -exp all -seed 7
//	hermes-bench -exp table3 -parallel 8 -metrics table3.json
//	hermes-bench -exp scale -parallel 1 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// Output is plain text, one paper-style table or series per experiment.
// Independent experiment cells (each owns its own engine and seed) fan out
// over -parallel worker goroutines; results are assembled in cell order, so
// the output is byte-identical at every -parallel setting.
//
// -metrics additionally dumps the cross-layer telemetry catalog
// (docs/TELEMETRY.md) as JSON keyed by experiment and cell. Recording
// never perturbs the simulation: rendered output is byte-identical with
// and without it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"hermes/internal/bench"
	"hermes/internal/telemetry"
	"hermes/internal/tracing"
)

// promFileName maps an experiment or cell name onto a safe filename chunk.
func promFileName(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1..table5, fig2..fig15, figA5, walkthrough, all, list)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		workers  = flag.Int("workers", 16, "workers per LB device")
		window   = flag.Duration("window", time.Second, "measurement window (virtual time)")
		scale    = flag.Float64("scale", 0.5, "workload rate scale")
		tenants  = flag.Int("tenants", 8, "tenant ports per LB")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "cell-level fan-out (independent sims per experiment); 1 = sequential")
		batch    = flag.Int("batch", 1, "kernel arrival/delivery coalescing width (1 = paper-literal; output is byte-identical at any width)")
		metrics  = flag.String("metrics", "", "write per-cell telemetry dumps (JSON) to this path")
		prom     = flag.String("prom", "", "write per-cell OpenMetrics expositions (<exp>__<cell>.prom) into this directory")

		spans      = flag.String("spans", "", "record one cell's span dump (docs/TRACING.md) to this path (.jsonl = compact; else Chrome trace JSON)")
		spanCell   = flag.String("span-cell", "", "cell to record (default: the experiment's first cell; see -exp list)")
		spanSample = flag.Int("span-sample", 1, "head-sample 1 in N connections (1 = every connection)")
		spanTail   = flag.Duration("span-tail", 0, "also keep any connection with a request at least this slow (0 = off)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this path (go tool pprof; see docs/PERF.md)")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this path after the run")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create cpu profile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "start cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "create mem profile: %v\n", err)
				os.Exit(1)
			}
			runtime.GC() // flush dead objects so the profile shows live + cumulative allocs accurately
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "write mem profile: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}()
	}

	opts := bench.DefaultOptions()
	opts.Seed = *seed
	opts.Workers = *workers
	opts.Window = *window
	opts.RateScale = *scale
	opts.Tenants = *tenants
	opts.Parallel = *parallel
	opts.Batch = *batch

	experiments := bench.Experiments()
	if *exp == "list" {
		names := make([]string, 0, len(experiments))
		for name := range experiments {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			if cells := experiments[n].Cells(opts); len(cells) > 1 {
				fmt.Printf("%s\t(%d parallel cells)\n", n, len(cells))
			} else {
				fmt.Printf("%s\t(sequential)\n", n)
			}
		}
		return
	}

	if *spans != "" {
		// Span recording is scoped to one cell of one experiment: resolve
		// the designated cell up front (before any fan-out) so the choice
		// is deterministic at every -parallel setting.
		if *exp == "all" || strings.Contains(*exp, ",") {
			fmt.Fprintln(os.Stderr, "-spans records a single experiment: pass one -exp name")
			os.Exit(2)
		}
		e, ok := experiments[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -exp list)\n", *exp)
			os.Exit(2)
		}
		cell := *spanCell
		if cell == "" {
			cell = e.Cells(opts)[0].Name
		}
		tcfg := tracing.DefaultConfig()
		tcfg.SampleEvery = *spanSample
		tcfg.TailLatencyNS = int64(*spanTail)
		opts.Spans = bench.NewSpanRecorder(cell, tcfg)
	}

	dumps := make(map[string]*bench.MetricsCollector)
	run := func(name string) {
		e, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -exp list)\n", name)
			os.Exit(2)
		}
		if *metrics != "" || *prom != "" {
			opts.Metrics = bench.NewMetricsCollector()
			dumps[name] = opts.Metrics
		}
		start := time.Now()
		out := bench.RunExperiment(e, opts)
		fmt.Printf("### %s — %s (wall %.1fs)\n%s\n", name, e.Desc(), time.Since(start).Seconds(), out)
	}
	if *exp == "all" {
		names := make([]string, 0, len(experiments))
		for name := range experiments {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			run(n)
		}
	} else {
		for _, name := range strings.Split(*exp, ",") {
			run(strings.TrimSpace(name))
		}
	}

	if *metrics != "" {
		buf, err := json.MarshalIndent(dumps, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal metrics: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*metrics, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write metrics: %v\n", err)
			os.Exit(1)
		}
	}

	if *prom != "" {
		if err := os.MkdirAll(*prom, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "create prom dir: %v\n", err)
			os.Exit(1)
		}
		names := make([]string, 0, len(dumps))
		for name := range dumps {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			mc := dumps[name]
			for _, cell := range mc.CellNames() {
				path := *prom + "/" + promFileName(name) + "__" + promFileName(cell) + ".prom"
				f, err := os.Create(path)
				if err == nil {
					err = telemetry.WriteOpenMetrics(f, mc.Snapshot(cell))
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				if err != nil {
					fmt.Fprintf(os.Stderr, "write prom %s: %v\n", path, err)
					os.Exit(1)
				}
			}
		}
	}

	if *spans != "" {
		if !opts.Spans.Recorded() {
			fmt.Fprintf(os.Stderr, "span cell %q never ran (check -span-cell against -exp list)\n", opts.Spans.Cell())
			os.Exit(1)
		}
		f, err := os.Create(*spans)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create spans: %v\n", err)
			os.Exit(1)
		}
		if err := opts.Spans.WriteTo(f, strings.HasSuffix(*spans, ".jsonl")); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "write spans: %v\n", err)
			os.Exit(1)
		}
	}
}
