// Command hermes-bench regenerates the paper's tables and figures against
// the simulated stack. Run a single experiment with -exp, or everything:
//
//	hermes-bench -exp table3
//	hermes-bench -exp all -seed 7
//
// Output is plain text, one paper-style table or series per experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hermes/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (table1..table5, fig2..fig15, figA5, walkthrough, all, list)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		workers = flag.Int("workers", 16, "workers per LB device")
		window  = flag.Duration("window", time.Second, "measurement window (virtual time)")
		scale   = flag.Float64("scale", 0.5, "workload rate scale")
		tenants = flag.Int("tenants", 8, "tenant ports per LB")
	)
	flag.Parse()

	opts := bench.DefaultOptions()
	opts.Seed = *seed
	opts.Workers = *workers
	opts.Window = *window
	opts.RateScale = *scale
	opts.Tenants = *tenants

	experiments := bench.Experiments()
	if *exp == "list" {
		names := make([]string, 0, len(experiments))
		for name := range experiments {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	run := func(name string) {
		e, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -exp list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		out := e.Run(opts)
		fmt.Printf("### %s — %s (wall %.1fs)\n%s\n", name, e.Desc, time.Since(start).Seconds(), out)
	}
	if *exp == "all" {
		names := make([]string, 0, len(experiments))
		for name := range experiments {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			run(n)
		}
		return
	}
	for _, name := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(name))
	}
}
