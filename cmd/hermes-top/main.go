// Command hermes-top is a live terminal dashboard for a running hermes-lb,
// built on the admin plane alone: it polls GET /metrics (OpenMetrics), /slo,
// and /backends, derives per-interval rates from successive scrapes, and
// redraws with plain ANSI — no terminal library, no dependencies.
//
//	hermes-top -admin 127.0.0.1:9900
//	hermes-top -admin 127.0.0.1:9900 -interval 500ms
//	hermes-top -once       # render a single frame and exit (smoke tests)
//
// Each frame shows total request/error rates with windowed p50/p99 latency,
// the SLO burn gauges, per-worker throughput sparklines, and per-backend
// health and circuit state.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hermes/internal/openmetrics"
	"hermes/internal/proxy"
	"hermes/internal/stats"
	"hermes/internal/telemetry"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errW io.Writer) int {
	fs := flag.NewFlagSet("hermes-top", flag.ContinueOnError)
	fs.SetOutput(errW)
	admin := fs.String("admin", "127.0.0.1:9900", "hermes-lb admin API address")
	interval := fs.Duration("interval", time.Second, "refresh period")
	once := fs.Bool("once", false, "render a single frame (two quick scrapes) and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	top := &top{admin: *admin, historyLen: 40}
	if err := top.sample(); err != nil {
		fmt.Fprintln(errW, "hermes-top:", err)
		return 1
	}
	if *once {
		gap := *interval
		if gap > 250*time.Millisecond {
			gap = 250 * time.Millisecond
		}
		time.Sleep(gap)
		if err := top.sample(); err != nil {
			fmt.Fprintln(errW, "hermes-top:", err)
			return 1
		}
		fmt.Fprint(out, top.frame())
		return 0
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Fprintln(out)
			return 0
		case <-tick.C:
			if err := top.sample(); err != nil {
				fmt.Fprintln(errW, "hermes-top:", err)
				return 1
			}
			// Home + clear-to-end keeps the frame flicker-free without
			// touching terminal modes.
			fmt.Fprint(out, "\x1b[H\x1b[2J"+top.frame())
		}
	}
}

// scrape is one poll of the admin plane, reduced to the numbers the
// dashboard needs.
type scrape struct {
	at       time.Time
	workers  map[int]float64    // cumulative requests served per worker slot
	latency  map[int64]float64  // cumulative latency bucket counts by le (ns); -1 = +Inf
	healthy  map[int]bool       // backend slot → healthy gauge
	counters map[string]float64 // cumulative scalar counters by family name
}

type top struct {
	admin      string
	historyLen int

	prev, cur *scrape
	slo       *telemetry.SLOStatus
	backends  []proxy.BackendView
	history   map[int][]float64 // worker → recent rates, newest last
}

func (t *top) get(path string) ([]byte, int, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + t.admin + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, err
}

// sample polls /metrics, /slo, and /backends once and folds the result into
// the dashboard state.
func (t *top) sample() error {
	body, status, err := t.get("/metrics")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("GET /metrics: status %d", status)
	}
	fams, err := openmetrics.Validate(body)
	if err != nil {
		return fmt.Errorf("GET /metrics: %w", err)
	}
	s := &scrape{
		at:       time.Now(),
		workers:  map[int]float64{},
		latency:  map[int64]float64{},
		healthy:  map[int]bool{},
		counters: map[string]float64{},
	}
	for i := range fams {
		f := &fams[i]
		switch f.Name {
		case "hermes_proxy_worker_requests_served":
			for _, sm := range f.Samples {
				if slot, err := strconv.Atoi(sm.Label("slot")); err == nil {
					s.workers[slot] = sm.Value
				}
			}
		case "hermes_proxy_request_latency_ns":
			for _, sm := range f.Samples {
				if !strings.HasSuffix(sm.Name, "_bucket") {
					continue
				}
				le := sm.Label("le")
				if le == "+Inf" {
					s.latency[-1] = sm.Value
				} else if v, err := strconv.ParseInt(le, 10, 64); err == nil {
					s.latency[v] = sm.Value
				}
			}
		case "hermes_proxy_backend_healthy":
			for _, sm := range f.Samples {
				if slot, err := strconv.Atoi(sm.Label("slot")); err == nil {
					s.healthy[slot] = sm.Value != 0
				}
			}
		case "hermes_proxy_upstream_errors", "hermes_proxy_unavailable",
			"hermes_proxy_retry_attempts", "hermes_proxy_circuit_rejections":
			if len(f.Samples) > 0 {
				s.counters[f.Name] = f.Samples[0].Value
			}
		}
	}
	t.prev, t.cur = t.cur, s

	t.slo = nil
	if body, status, err := t.get("/slo"); err == nil && status == http.StatusOK {
		var v telemetry.SLOStatus
		if json.Unmarshal(body, &v) == nil {
			t.slo = &v
		}
	}
	t.backends = nil
	if body, status, err := t.get("/backends"); err == nil && status == http.StatusOK {
		_ = json.Unmarshal(body, &t.backends)
	}

	if t.history == nil {
		t.history = map[int][]float64{}
	}
	if t.prev != nil {
		dt := t.cur.at.Sub(t.prev.at).Seconds()
		for slot, v := range t.cur.workers {
			r := rate(v, t.prev.workers[slot], dt)
			h := append(t.history[slot], r)
			if len(h) > t.historyLen {
				h = h[len(h)-t.historyLen:]
			}
			t.history[slot] = h
		}
	}
	return nil
}

func rate(cur, prev, dt float64) float64 {
	if dt <= 0 || cur < prev {
		return 0
	}
	return (cur - prev) / dt
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as a fixed-width block-glyph strip scaled to the
// series max (an all-zero series stays flat).
func sparkline(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for i := 0; i < width-len(vals); i++ {
		b.WriteByte(' ')
	}
	for _, v := range vals {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// quantile computes a windowed quantile (ms) from the latency bucket deltas
// between the two most recent scrapes.
func (t *top) quantile(p float64) (float64, bool) {
	if t.prev == nil {
		return 0, false
	}
	bounds := make([]int64, 0, len(t.cur.latency))
	for le := range t.cur.latency {
		if le >= 0 {
			bounds = append(bounds, le)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	// Cumulative bucket deltas → per-bucket deltas (with trailing +Inf).
	counts := make([]uint64, 0, len(bounds)+1)
	prevCum := 0.0
	for _, le := range bounds {
		d := t.cur.latency[le] - t.prev.latency[le]
		if step := d - prevCum; step > 0 {
			counts = append(counts, uint64(step))
		} else {
			counts = append(counts, 0)
		}
		prevCum = d
	}
	infDelta := t.cur.latency[-1] - t.prev.latency[-1]
	if step := infDelta - prevCum; step > 0 {
		counts = append(counts, uint64(step))
	} else {
		counts = append(counts, 0)
	}
	if infDelta <= 0 {
		return 0, false
	}
	return stats.BucketQuantile(bounds, counts, p) / 1e6, true
}

// frame renders one dashboard frame.
func (t *top) frame() string {
	var b strings.Builder
	now := t.cur.at
	sloState := "-"
	if t.slo != nil {
		sloState = t.slo.State
	}
	fmt.Fprintf(&b, "hermes-top — %s   %s   slo: %s\n", t.admin, now.Format("15:04:05"), sloState)

	// Totals line: per-interval rates from the last two scrapes.
	if t.prev != nil {
		dt := t.cur.at.Sub(t.prev.at).Seconds()
		reqRate := 0.0
		for slot, v := range t.cur.workers {
			reqRate += rate(v, t.prev.workers[slot], dt)
		}
		errRate := rate(t.cur.counters["hermes_proxy_upstream_errors"], t.prev.counters["hermes_proxy_upstream_errors"], dt)
		unavailRate := rate(t.cur.counters["hermes_proxy_unavailable"], t.prev.counters["hermes_proxy_unavailable"], dt)
		p50, p99 := "-", "-"
		if q, ok := t.quantile(0.50); ok {
			p50 = fmt.Sprintf("%.2fms", q)
		}
		if q, ok := t.quantile(0.99); ok {
			p99 = fmt.Sprintf("%.2fms", q)
		}
		fmt.Fprintf(&b, "requests %.1f/s   errors %.1f/s   503s %.1f/s   p50 %s   p99 %s\n",
			reqRate, errRate, unavailRate, p50, p99)
	} else {
		b.WriteString("requests -/s (first scrape)\n")
	}

	if t.slo != nil {
		fmt.Fprintf(&b, "burn ×budget   latency page %.2f/%.2f warn %.2f/%.2f   errors page %.2f/%.2f warn %.2f/%.2f\n",
			t.slo.Latency.PageShort, t.slo.Latency.PageLong, t.slo.Latency.WarnShort, t.slo.Latency.WarnLong,
			t.slo.Errors.PageShort, t.slo.Errors.PageLong, t.slo.Errors.WarnShort, t.slo.Errors.WarnLong)
	}
	b.WriteByte('\n')

	// Per-worker sparklines.
	slots := make([]int, 0, len(t.cur.workers))
	for slot := range t.cur.workers {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	fmt.Fprintf(&b, "%-8s %10s  %s\n", "WORKER", "RATE", "HISTORY")
	for _, slot := range slots {
		h := t.history[slot]
		last := 0.0
		if len(h) > 0 {
			last = h[len(h)-1]
		}
		fmt.Fprintf(&b, "w%-7d %8.1f/s  %s\n", slot, last, sparkline(h, 30))
	}

	// Per-backend health and circuit state (from /backends when reachable,
	// else the healthy gauge alone).
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-22s %-8s %-10s %7s %10s %8s\n", "BACKEND", "HEALTH", "CIRCUIT", "ACTIVE", "REQUESTS", "ERRORS")
	if len(t.backends) > 0 {
		for _, be := range t.backends {
			health := "up"
			if !be.Healthy {
				health = "DOWN"
				if be.Reason != "" {
					health = "DOWN:" + be.Reason
				}
			}
			circuit := "-"
			if be.Circuit != nil {
				circuit = be.Circuit.State
			}
			fmt.Fprintf(&b, "%-22s %-8s %-10s %7d %10d %8d\n",
				be.Address, health, circuit, be.Active, be.Requests, be.Errors)
		}
	} else {
		slots := make([]int, 0, len(t.cur.healthy))
		for slot := range t.cur.healthy {
			slots = append(slots, slot)
		}
		sort.Ints(slots)
		for _, slot := range slots {
			health := "up"
			if !t.cur.healthy[slot] {
				health = "DOWN"
			}
			fmt.Fprintf(&b, "backend[%d]%12s %-8s %-10s\n", slot, "", health, "-")
		}
	}
	return b.String()
}
