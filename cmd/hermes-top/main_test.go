package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// stubAdmin serves a minimal admin plane whose counters advance on every
// /metrics scrape, so two polls produce non-zero rates.
func stubAdmin(t *testing.T) string {
	t.Helper()
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		n := polls.Add(1) * 100
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		fmt.Fprintf(w, `# HELP hermes_proxy_worker_requests_served proxy-layer counter_vec (reqs)
# TYPE hermes_proxy_worker_requests_served counter
hermes_proxy_worker_requests_served_total{slot="0"} %d
hermes_proxy_worker_requests_served_total{slot="1"} %d
# HELP hermes_proxy_request_latency_ns proxy-layer histogram (ns)
# TYPE hermes_proxy_request_latency_ns histogram
hermes_proxy_request_latency_ns_bucket{le="1048576"} %d
hermes_proxy_request_latency_ns_bucket{le="16777216"} %d
hermes_proxy_request_latency_ns_bucket{le="+Inf"} %d
hermes_proxy_request_latency_ns_sum %d
hermes_proxy_request_latency_ns_count %d
# HELP hermes_proxy_upstream_errors proxy-layer counter (errors)
# TYPE hermes_proxy_upstream_errors counter
hermes_proxy_upstream_errors_total %d
# HELP hermes_proxy_backend_healthy proxy-layer gauge_vec (bool)
# TYPE hermes_proxy_backend_healthy gauge
hermes_proxy_backend_healthy{slot="0"} 1
hermes_proxy_backend_healthy{slot="1"} 0
# EOF
`, n, n*2, n, 2*n, 2*n, 1000*n, 2*n, n/100)
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"state":"warn","since_unix_ns":1,
  "latency_objective":"99% of requests ≤ 250ms","error_objective":"99.9% success",
  "latency_burn":{"page_short":0.5,"page_long":0.25,"warn_short":2.5,"warn_long":2.1},
  "errors_burn":{"page_short":0,"page_long":0,"warn_short":0,"warn_long":0},
  "window_req_per_sec":120.5}`))
	})
	mux.HandleFunc("/backends", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`[
  {"index":0,"address":"127.0.0.1:9001","weight":1,"healthy":true,"active":2,"requests":120,"errors":1,"last_probe_ok":true,"circuit":{"state":"closed"}},
  {"index":1,"address":"127.0.0.1:9002","weight":1,"healthy":false,"down_reason":"active","active":0,"requests":40,"errors":9,"last_probe_ok":false,"circuit":{"state":"open"}}
]`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// TestOnceFrame drives -once end to end against the stub: two scrapes, one
// frame, every dashboard section present.
func TestOnceFrame(t *testing.T) {
	addr := stubAdmin(t)
	var out, errW bytes.Buffer
	code := run([]string{"-admin", addr, "-interval", "20ms", "-once"}, &out, &errW)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errW.String())
	}
	frame := out.String()
	for _, want := range []string{
		"hermes-top — " + addr,
		"slo: warn",
		"requests ", "errors ", "p50 ", "p99 ",
		"burn ×budget",
		"WORKER", "w0", "w1",
		"BACKEND", "127.0.0.1:9001", "closed",
		"127.0.0.1:9002", "DOWN:active", "open",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "\x1b[") {
		t.Errorf("-once frame must not emit ANSI control sequences:\n%q", frame)
	}
	// Worker 1 runs at twice worker 0's rate; both sparklines are non-empty.
	lines := strings.Split(frame, "\n")
	for _, l := range lines {
		if strings.HasPrefix(l, "w0") || strings.HasPrefix(l, "w1") {
			if !strings.ContainsAny(l, "▁▂▃▄▅▆▇█") {
				t.Errorf("worker row has no sparkline: %q", l)
			}
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 5); got != "     " {
		t.Errorf("empty = %q", got)
	}
	got := sparkline([]float64{0, 1, 2, 4}, 4)
	if !strings.HasPrefix(got, "▁") {
		t.Errorf("zero level = %q", got)
	}
	if !strings.HasSuffix(got, "█") {
		t.Errorf("max level = %q", got)
	}
	// Longer history than width keeps the newest samples, rescaled to the
	// visible window.
	if got := sparkline([]float64{9, 9, 1, 0}, 2); got != "█▁" {
		t.Errorf("window = %q, want %q", got, "█▁")
	}
}

// TestUnreachableAdmin fails fast with exit 1.
func TestUnreachableAdmin(t *testing.T) {
	var out, errW bytes.Buffer
	if code := run([]string{"-admin", "127.0.0.1:1", "-once"}, &out, &errW); code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
}
