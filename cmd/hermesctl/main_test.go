package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// stubAdmin serves canned admin-API responses for golden tests.
func stubAdmin(t *testing.T) string {
	t.Helper()
	mux := http.NewServeMux()
	serve := func(path string, status int, body string) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_, _ = w.Write([]byte(body))
		})
	}
	serve("/healthz", 200, `{"status":"degraded","backends":2,"available":1,"workers":4,"uptime_sec":61}`)
	serve("/backends", 200, `[
  {"index":0,"address":"127.0.0.1:9001","weight":3,"healthy":true,"active":2,"requests":120,"errors":1,"last_probe_ok":true,"circuit":{"state":"closed","consecutive_fails":0,"opens":0,"half_opens":0,"closes":0}},
  {"index":1,"address":"127.0.0.1:9002","weight":1,"healthy":false,"down_reason":"active","active":0,"requests":40,"errors":9,"last_probe_ok":false,"circuit":{"state":"open","consecutive_fails":5,"opens":1,"half_opens":0,"closes":0,"open_for_ms":2500}}
]`)
	serve("/stats", 200, `{"uptime_sec":61.5,"policy":"weighted","workers":4,"served":160,"errors":2,"unavailable":1,
  "latency_p50_ms":1.25,"latency_p99_ms":9.5,
  "retry_attempts":12,"retry_recovered":10,"retry_exhausted":2,
  "circuit_rejections":7,"health_probes":60,"health_transitions":2,
  "worker_handled":[40,41,39,40],
  "scheduler":{"schedule_calls":500,"syncs":480,"batched":20,"avg_passed":3.5,"empty_sets":0,"selection_bitmap":11,"available_mask":15}}`)
	serve("/circuits", 200, `{
  "127.0.0.1:9002":{"state":"open","consecutive_fails":5,"opens":1,"half_opens":0,"closes":0,"open_for_ms":2500},
  "127.0.0.1:9001":{"state":"closed","consecutive_fails":0,"opens":0,"half_opens":0,"closes":0}
}`)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func runCtl(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errW bytes.Buffer
	code := run(args, &out, &errW)
	return out.String(), errW.String(), code
}

func TestStatusText(t *testing.T) {
	addr := stubAdmin(t)
	out, _, code := runCtl(t, "-admin", addr, "status")
	want := `status:    degraded
backends:  1/2 available
workers:   4
uptime:    1m1s
`
	if out != want {
		t.Errorf("status output:\n%q\nwant:\n%q", out, want)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0 (degraded is still serving)", code)
	}
}

func TestBackendsText(t *testing.T) {
	addr := stubAdmin(t)
	out, _, code := runCtl(t, "-admin", addr, "backends")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("output lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "IDX") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "127.0.0.1:9001") || !strings.Contains(lines[1], "yes") ||
		!strings.Contains(lines[1], "closed") {
		t.Errorf("healthy row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "127.0.0.1:9002") || !strings.Contains(lines[2], "NO") ||
		!strings.Contains(lines[2], "open") || !strings.Contains(lines[2], "active") {
		t.Errorf("unhealthy row = %q", lines[2])
	}
}

func TestStatsText(t *testing.T) {
	addr := stubAdmin(t)
	out, _, code := runCtl(t, "-admin", addr, "stats")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{
		"policy:              weighted",
		"served:              160",
		"latency p50/p99:     1.25ms / 9.50ms",
		"retries:             12 attempted, 10 recovered, 2 exhausted",
		"circuit rejections:  7",
		"worker handled:      [40 41 39 40]",
		"500 passes, 480 syncs (20 batched), avg 3.5 selected, 0 empty",
		"selection bitmap:    1011 (available mask 1111)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestCircuitsTextSorted(t *testing.T) {
	addr := stubAdmin(t)
	out, _, code := runCtl(t, "-admin", addr, "circuits")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	i1 := strings.Index(out, "127.0.0.1:9001")
	i2 := strings.Index(out, "127.0.0.1:9002")
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Errorf("circuits not sorted by address:\n%s", out)
	}
	if !strings.Contains(out, "2.5s") {
		t.Errorf("open-for rendering missing:\n%s", out)
	}
}

func TestJSONPassThrough(t *testing.T) {
	addr := stubAdmin(t)
	out, _, code := runCtl(t, "-admin", addr, "-json", "status")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, `"status":"degraded"`) {
		t.Errorf("-json did not pass the body through: %q", out)
	}
}

func TestStatusExitCodeOnUnavailable(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"status":"unavailable","backends":1,"available":0,"workers":2}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")
	out, _, code := runCtl(t, "-admin", addr, "status")
	if code != 1 {
		t.Errorf("exit = %d, want 1 for an unavailable pool", code)
	}
	if !strings.Contains(out, "unavailable") {
		t.Errorf("output = %q", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if _, _, code := runCtl(t); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if _, errS, code := runCtl(t, "-admin", "127.0.0.1:1", "reboot"); code != 2 || !strings.Contains(errS, "unknown command") {
		t.Errorf("unknown command: exit %d, err %q", code, errS)
	}
	// Unreachable admin is a runtime error, not usage.
	if _, _, code := runCtl(t, "-admin", "127.0.0.1:1", "stats"); code != 1 {
		t.Errorf("unreachable admin: exit %d, want 1", code)
	}
}

func TestMetricsPassThrough(t *testing.T) {
	mux := http.NewServeMux()
	exposition := "# HELP hermes_x x\n# TYPE hermes_x gauge\nhermes_x 1\n# EOF\n"
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_, _ = w.Write([]byte(exposition))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	out, _, code := runCtl(t, "-admin", strings.TrimPrefix(srv.URL, "http://"), "metrics")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if out != exposition {
		t.Errorf("metrics not passed through verbatim:\n%q\nwant\n%q", out, exposition)
	}
}

func TestSLOText(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"state":"warn","since_unix_ns":1,
  "latency_objective":"99% of requests ≤ 250ms","error_objective":"99.9% success",
  "latency_burn":{"page_short":0.5,"page_long":0.25,"warn_short":2.5,"warn_long":2.1},
  "errors_burn":{"page_short":0,"page_long":0,"warn_short":0,"warn_long":0},
  "window_p50_ms":1.25,"window_p99_ms":9.5,"window_req_per_sec":120.5}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	out, _, code := runCtl(t, "-admin", strings.TrimPrefix(srv.URL, "http://"), "slo")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{
		"state:         warn",
		"objectives:    99% of requests ≤ 250ms; 99.9% success",
		"latency burn:  page 0.50x/0.25x (short/long)  warn 2.50x/2.10x",
		"window:        p50 1.25ms, p99 9.50ms, 120.5 req/s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("slo output missing %q:\n%s", want, out)
		}
	}
}

func TestStatusShowsSLO(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"status":"ok","backends":2,"available":2,"workers":4,"uptime_sec":5,"slo":"page"}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	out, _, _ := runCtl(t, "-admin", strings.TrimPrefix(srv.URL, "http://"), "status")
	if !strings.Contains(out, "slo:       page") {
		t.Errorf("status output missing slo line:\n%s", out)
	}
}

// TestWatch drives the watch loop against a stub whose counters advance on
// every /stats poll, checking per-interval rates (not cumulative totals).
func TestWatch(t *testing.T) {
	var served atomic.Uint64
	served.Store(100)
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		s := served.Add(50) // +50 per interval
		fmt.Fprintf(w, `{"served":%d,"errors":0,"unavailable":0,"retry_attempts":0,
  "latency_p50_ms":1.25,"latency_p99_ms":9.5,"worker_handled":[1],"scheduler":{}}`, s)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"status":"ok","backends":1,"available":1,"workers":1,"slo":"ok"}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	out, _, code := runCtl(t, "-admin", addr, "-interval", "10ms", "-count", "2", "watch")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 interval rows
		t.Fatalf("watch lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "TIME") || !strings.Contains(lines[0], "REQ/S") {
		t.Errorf("header = %q", lines[0])
	}
	for _, row := range lines[1:] {
		if !strings.Contains(row, "ok") || !strings.Contains(row, "1.25") || !strings.Contains(row, "9.50") {
			t.Errorf("row = %q", row)
		}
	}

	// -json streams one object per interval with derived rates.
	out, _, code = runCtl(t, "-admin", addr, "-json", "-interval", "10ms", "-count", "2", "watch")
	if code != 0 {
		t.Fatalf("json exit = %d", code)
	}
	jlines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(jlines) != 2 {
		t.Fatalf("json lines = %d:\n%s", len(jlines), out)
	}
	for _, l := range jlines {
		var row struct {
			Status    string  `json:"status"`
			SLO       string  `json:"slo"`
			ReqPerSec float64 `json:"req_per_sec"`
		}
		if err := json.Unmarshal([]byte(l), &row); err != nil {
			t.Fatalf("bad json row %q: %v", l, err)
		}
		if row.Status != "ok" || row.SLO != "ok" || row.ReqPerSec <= 0 {
			t.Errorf("json row = %+v", row)
		}
	}
}
