// Command hermesctl inspects a running hermes-lb through its admin REST API.
//
//	hermesctl -admin 127.0.0.1:9900 status     # pool availability + SLO state (exit 1 when unavailable)
//	hermesctl -admin 127.0.0.1:9900 backends   # per-backend health, counters, circuit state
//	hermesctl -admin 127.0.0.1:9900 stats      # request/retry/latency + scheduler state
//	hermesctl -admin 127.0.0.1:9900 circuits   # per-backend breaker snapshots
//	hermesctl -admin 127.0.0.1:9900 slo        # burn-rate monitor status
//	hermesctl -admin 127.0.0.1:9900 metrics    # raw OpenMetrics exposition (pipe to checkprom)
//	hermesctl -admin 127.0.0.1:9900 watch      # periodic re-render with per-interval rates
//
// -json prints the raw admin-API response instead of the text rendering; for
// watch it streams one JSON object per interval.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"hermes/internal/proxy"
	"hermes/internal/telemetry"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errW io.Writer) int {
	fs := flag.NewFlagSet("hermesctl", flag.ContinueOnError)
	fs.SetOutput(errW)
	admin := fs.String("admin", "127.0.0.1:9900", "hermes-lb admin API address")
	asJSON := fs.Bool("json", false, "print the raw admin-API JSON (watch: stream one JSON object per interval)")
	interval := fs.Duration("interval", 2*time.Second, "watch refresh period")
	count := fs.Int("count", 0, "watch iterations before exiting (0 = until interrupted)")
	fs.Usage = func() {
		fmt.Fprintln(errW, "usage: hermesctl [-admin host:port] [-json] [-interval d] [-count n] status|backends|stats|circuits|slo|metrics|watch")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	cmd := fs.Arg(0)

	if cmd == "watch" {
		return watch(*admin, *interval, *count, *asJSON, out, errW)
	}
	path, ok := map[string]string{
		"status":   "/healthz",
		"backends": "/backends",
		"stats":    "/stats",
		"circuits": "/circuits",
		"slo":      "/slo",
		"metrics":  "/metrics",
	}[cmd]
	if !ok {
		fmt.Fprintf(errW, "hermesctl: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
	if cmd == "metrics" {
		// The exposition is already text; print it verbatim for scrapers and
		// the checkprom conformance gate.
		body, _, err := fetch(*admin, path)
		if err != nil {
			fmt.Fprintln(errW, "hermesctl:", err)
			return 1
		}
		_, _ = out.Write(body)
		return 0
	}

	body, httpStatus, err := fetch(*admin, path)
	if err != nil {
		fmt.Fprintln(errW, "hermesctl:", err)
		return 1
	}
	if *asJSON {
		fmt.Fprintln(out, strings.TrimRight(string(body), "\n"))
		return exitFor(cmd, httpStatus)
	}
	if err := render(cmd, body, out); err != nil {
		fmt.Fprintln(errW, "hermesctl:", err)
		return 1
	}
	return exitFor(cmd, httpStatus)
}

// exitFor maps the HTTP status to the process exit code: status reports an
// unavailable/draining pool (503) as exit 1 so scripts can gate on it.
func exitFor(cmd string, httpStatus int) int {
	if cmd == "status" && httpStatus != http.StatusOK {
		return 1
	}
	return 0
}

// watchRow is one watch interval's derived view: rates over the interval
// from successive cumulative counters, point-in-time latency quantiles, and
// the healthz/SLO verdicts. Also the -json stream shape.
type watchRow struct {
	UnixNS        int64    `json:"unix_ns"`
	Status        string   `json:"status"`
	SLO           string   `json:"slo,omitempty"`
	ReqPerSec     float64  `json:"req_per_sec"`
	ErrPerSec     float64  `json:"err_per_sec"`
	UnavailPerSec float64  `json:"unavailable_per_sec"`
	RetryPerSec   float64  `json:"retry_per_sec"`
	P50MS         *float64 `json:"p50_ms,omitempty"`
	P99MS         *float64 `json:"p99_ms,omitempty"`
}

// watch polls /stats and /healthz every interval and prints per-interval
// rate columns — deltas between successive cumulative counters, so the first
// row appears after one full interval.
func watch(admin string, interval time.Duration, count int, asJSON bool, out, errW io.Writer) int {
	fetchStats := func() (proxy.StatsView, proxy.HealthzView, error) {
		var sv proxy.StatsView
		var hv proxy.HealthzView
		body, _, err := fetch(admin, "/stats")
		if err == nil {
			err = json.Unmarshal(body, &sv)
		}
		if err != nil {
			return sv, hv, err
		}
		body, _, err = fetch(admin, "/healthz")
		if err == nil {
			err = json.Unmarshal(body, &hv)
		}
		return sv, hv, err
	}
	prev, _, err := fetchStats()
	if err != nil {
		fmt.Fprintln(errW, "hermesctl:", err)
		return 1
	}
	prevAt := time.Now()
	if !asJSON {
		fmt.Fprintf(out, "%-9s %-12s %-6s %9s %8s %8s %8s %8s %8s\n",
			"TIME", "STATUS", "SLO", "REQ/S", "ERR/S", "503/S", "RETRY/S", "P50MS", "P99MS")
	}
	enc := json.NewEncoder(out)
	rate := func(cur, last uint64, dt float64) float64 {
		if cur < last || dt <= 0 { // counter reset (proxy restart) or clock skew
			return 0
		}
		return float64(cur-last) / dt
	}
	for i := 0; count == 0 || i < count; i++ {
		time.Sleep(interval)
		cur, hv, err := fetchStats()
		if err != nil {
			fmt.Fprintln(errW, "hermesctl:", err)
			return 1
		}
		now := time.Now()
		dt := now.Sub(prevAt).Seconds()
		served := rate(cur.Served, prev.Served, dt)
		errs := rate(cur.Errors, prev.Errors, dt)
		unavail := rate(cur.Unavailable, prev.Unavailable, dt)
		row := watchRow{
			UnixNS:        now.UnixNano(),
			Status:        hv.Status,
			SLO:           hv.SLO,
			ReqPerSec:     served + errs + unavail,
			ErrPerSec:     errs,
			UnavailPerSec: unavail,
			RetryPerSec:   rate(cur.RetryAttempts, prev.RetryAttempts, dt),
			P50MS:         cur.LatencyP50MS,
			P99MS:         cur.LatencyP99MS,
		}
		if asJSON {
			if err := enc.Encode(row); err != nil {
				fmt.Fprintln(errW, "hermesctl:", err)
				return 1
			}
		} else {
			p50, p99 := "-", "-"
			if row.P50MS != nil {
				p50 = fmt.Sprintf("%.2f", *row.P50MS)
			}
			if row.P99MS != nil {
				p99 = fmt.Sprintf("%.2f", *row.P99MS)
			}
			slo := row.SLO
			if slo == "" {
				slo = "-"
			}
			fmt.Fprintf(out, "%-9s %-12s %-6s %9.1f %8.1f %8.1f %8.1f %8s %8s\n",
				now.Format("15:04:05"), row.Status, slo,
				row.ReqPerSec, row.ErrPerSec, row.UnavailPerSec, row.RetryPerSec, p50, p99)
		}
		prev, prevAt = cur, now
	}
	return 0
}

func fetch(admin, path string) ([]byte, int, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + admin + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return body, resp.StatusCode, nil
}

func render(cmd string, body []byte, out io.Writer) error {
	switch cmd {
	case "status":
		var v proxy.HealthzView
		if err := json.Unmarshal(body, &v); err != nil {
			return err
		}
		fmt.Fprintf(out, "status:    %s\n", v.Status)
		fmt.Fprintf(out, "backends:  %d/%d available\n", v.Available, v.Backends)
		fmt.Fprintf(out, "workers:   %d\n", v.Workers)
		fmt.Fprintf(out, "uptime:    %s\n", time.Duration(v.UptimeSec)*time.Second)
		if v.SLO != "" {
			fmt.Fprintf(out, "slo:       %s\n", v.SLO)
		}
	case "backends":
		var bs []proxy.BackendView
		if err := json.Unmarshal(body, &bs); err != nil {
			return err
		}
		fmt.Fprintf(out, "%-4s %-22s %-7s %-9s %-7s %-9s %-7s %-10s %s\n",
			"IDX", "ADDRESS", "WEIGHT", "HEALTHY", "ACTIVE", "REQUESTS", "ERRORS", "CIRCUIT", "REASON")
		for _, b := range bs {
			healthy := "yes"
			if !b.Healthy {
				healthy = "NO"
			}
			circuit := "-"
			if b.Circuit != nil {
				circuit = b.Circuit.State
			}
			fmt.Fprintf(out, "%-4d %-22s %-7d %-9s %-7d %-9d %-7d %-10s %s\n",
				b.Index, b.Address, b.Weight, healthy, b.Active, b.Requests, b.Errors, circuit, b.Reason)
		}
	case "stats":
		var v proxy.StatsView
		if err := json.Unmarshal(body, &v); err != nil {
			return err
		}
		fmt.Fprintf(out, "uptime:              %.1fs\n", v.UptimeSec)
		fmt.Fprintf(out, "policy:              %s\n", v.Policy)
		fmt.Fprintf(out, "served:              %d\n", v.Served)
		fmt.Fprintf(out, "errors:              %d\n", v.Errors)
		fmt.Fprintf(out, "unavailable (503):   %d\n", v.Unavailable)
		if v.LatencyP50MS != nil && v.LatencyP99MS != nil {
			fmt.Fprintf(out, "latency p50/p99:     %.2fms / %.2fms\n", *v.LatencyP50MS, *v.LatencyP99MS)
		} else {
			fmt.Fprintf(out, "latency p50/p99:     - / -\n")
		}
		fmt.Fprintf(out, "retries:             %d attempted, %d recovered, %d exhausted\n",
			v.RetryAttempts, v.RetryRecovered, v.RetryExhausted)
		fmt.Fprintf(out, "circuit rejections:  %d\n", v.CircuitRejections)
		fmt.Fprintf(out, "health probes:       %d (%d transitions)\n", v.HealthProbes, v.HealthTransitions)
		fmt.Fprintf(out, "worker handled:      %v\n", v.WorkerHandled)
		s := v.Scheduler
		fmt.Fprintf(out, "scheduler:           %d passes, %d syncs (%d batched), avg %.1f selected, %d empty\n",
			s.ScheduleCalls, s.Syncs, s.Batched, s.AvgPassed, s.EmptySets)
		fmt.Fprintf(out, "selection bitmap:    %0*b (available mask %0*b)\n",
			v.Workers, s.SelectionBitmap, v.Workers, s.AvailableMask)
	case "slo":
		var v telemetry.SLOStatus
		if err := json.Unmarshal(body, &v); err != nil {
			return err
		}
		fmt.Fprintf(out, "state:         %s\n", v.State)
		fmt.Fprintf(out, "objectives:    %s; %s\n", v.LatencyObjective, v.ErrorObjective)
		fmt.Fprintf(out, "latency burn:  page %.2fx/%.2fx (short/long)  warn %.2fx/%.2fx\n",
			v.Latency.PageShort, v.Latency.PageLong, v.Latency.WarnShort, v.Latency.WarnLong)
		fmt.Fprintf(out, "errors burn:   page %.2fx/%.2fx (short/long)  warn %.2fx/%.2fx\n",
			v.Errors.PageShort, v.Errors.PageLong, v.Errors.WarnShort, v.Errors.WarnLong)
		p50, p99 := "-", "-"
		if v.WindowP50MS != nil {
			p50 = fmt.Sprintf("%.2fms", *v.WindowP50MS)
		}
		if v.WindowP99MS != nil {
			p99 = fmt.Sprintf("%.2fms", *v.WindowP99MS)
		}
		fmt.Fprintf(out, "window:        p50 %s, p99 %s, %.1f req/s\n", p50, p99, v.WindowReqPerSec)
	case "circuits":
		var cs map[string]proxy.CircuitView
		if err := json.Unmarshal(body, &cs); err != nil {
			return err
		}
		if len(cs) == 0 {
			fmt.Fprintln(out, "circuit breaking disabled")
			return nil
		}
		addrs := make([]string, 0, len(cs))
		for a := range cs {
			addrs = append(addrs, a)
		}
		// Stable order for scripting and golden tests.
		for i := 0; i < len(addrs); i++ {
			for j := i + 1; j < len(addrs); j++ {
				if addrs[j] < addrs[i] {
					addrs[i], addrs[j] = addrs[j], addrs[i]
				}
			}
		}
		fmt.Fprintf(out, "%-22s %-10s %-6s %-6s %-11s %-7s %s\n",
			"ADDRESS", "STATE", "FAILS", "OPENS", "HALF-OPENS", "CLOSES", "OPEN-FOR")
		for _, a := range addrs {
			c := cs[a]
			openFor := "-"
			if c.State != "closed" {
				openFor = fmt.Sprintf("%.1fs", c.OpenForMS/1000)
			}
			fmt.Fprintf(out, "%-22s %-10s %-6d %-6d %-11d %-7d %s\n",
				a, c.State, c.Fails, c.Opens, c.HalfOpens, c.Closes, openFor)
		}
	}
	return nil
}
