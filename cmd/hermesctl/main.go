// Command hermesctl inspects a running hermes-lb through its admin REST API.
//
//	hermesctl -admin 127.0.0.1:9900 status     # pool availability (exit 1 when unavailable)
//	hermesctl -admin 127.0.0.1:9900 backends   # per-backend health, counters, circuit state
//	hermesctl -admin 127.0.0.1:9900 stats      # request/retry/latency + scheduler state
//	hermesctl -admin 127.0.0.1:9900 circuits   # per-backend breaker snapshots
//
// -json prints the raw admin-API response instead of the text rendering.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"hermes/internal/proxy"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, out, errW io.Writer) int {
	fs := flag.NewFlagSet("hermesctl", flag.ContinueOnError)
	fs.SetOutput(errW)
	admin := fs.String("admin", "127.0.0.1:9900", "hermes-lb admin API address")
	asJSON := fs.Bool("json", false, "print the raw admin-API JSON")
	fs.Usage = func() {
		fmt.Fprintln(errW, "usage: hermesctl [-admin host:port] [-json] status|backends|stats|circuits")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	cmd := fs.Arg(0)

	path, ok := map[string]string{
		"status":   "/healthz",
		"backends": "/backends",
		"stats":    "/stats",
		"circuits": "/circuits",
	}[cmd]
	if !ok {
		fmt.Fprintf(errW, "hermesctl: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}

	body, httpStatus, err := fetch(*admin, path)
	if err != nil {
		fmt.Fprintln(errW, "hermesctl:", err)
		return 1
	}
	if *asJSON {
		fmt.Fprintln(out, strings.TrimRight(string(body), "\n"))
		return exitFor(cmd, httpStatus)
	}
	if err := render(cmd, body, out); err != nil {
		fmt.Fprintln(errW, "hermesctl:", err)
		return 1
	}
	return exitFor(cmd, httpStatus)
}

// exitFor maps the HTTP status to the process exit code: status reports an
// unavailable/draining pool (503) as exit 1 so scripts can gate on it.
func exitFor(cmd string, httpStatus int) int {
	if cmd == "status" && httpStatus != http.StatusOK {
		return 1
	}
	return 0
}

func fetch(admin, path string) ([]byte, int, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + admin + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return body, resp.StatusCode, nil
}

func render(cmd string, body []byte, out io.Writer) error {
	switch cmd {
	case "status":
		var v proxy.HealthzView
		if err := json.Unmarshal(body, &v); err != nil {
			return err
		}
		fmt.Fprintf(out, "status:    %s\n", v.Status)
		fmt.Fprintf(out, "backends:  %d/%d available\n", v.Available, v.Backends)
		fmt.Fprintf(out, "workers:   %d\n", v.Workers)
		fmt.Fprintf(out, "uptime:    %s\n", time.Duration(v.UptimeSec)*time.Second)
	case "backends":
		var bs []proxy.BackendView
		if err := json.Unmarshal(body, &bs); err != nil {
			return err
		}
		fmt.Fprintf(out, "%-4s %-22s %-7s %-9s %-7s %-9s %-7s %-10s %s\n",
			"IDX", "ADDRESS", "WEIGHT", "HEALTHY", "ACTIVE", "REQUESTS", "ERRORS", "CIRCUIT", "REASON")
		for _, b := range bs {
			healthy := "yes"
			if !b.Healthy {
				healthy = "NO"
			}
			circuit := "-"
			if b.Circuit != nil {
				circuit = b.Circuit.State
			}
			fmt.Fprintf(out, "%-4d %-22s %-7d %-9s %-7d %-9d %-7d %-10s %s\n",
				b.Index, b.Address, b.Weight, healthy, b.Active, b.Requests, b.Errors, circuit, b.Reason)
		}
	case "stats":
		var v proxy.StatsView
		if err := json.Unmarshal(body, &v); err != nil {
			return err
		}
		fmt.Fprintf(out, "uptime:              %.1fs\n", v.UptimeSec)
		fmt.Fprintf(out, "policy:              %s\n", v.Policy)
		fmt.Fprintf(out, "served:              %d\n", v.Served)
		fmt.Fprintf(out, "errors:              %d\n", v.Errors)
		fmt.Fprintf(out, "unavailable (503):   %d\n", v.Unavailable)
		if v.LatencyP50MS != nil && v.LatencyP99MS != nil {
			fmt.Fprintf(out, "latency p50/p99:     %.2fms / %.2fms\n", *v.LatencyP50MS, *v.LatencyP99MS)
		} else {
			fmt.Fprintf(out, "latency p50/p99:     - / -\n")
		}
		fmt.Fprintf(out, "retries:             %d attempted, %d recovered, %d exhausted\n",
			v.RetryAttempts, v.RetryRecovered, v.RetryExhausted)
		fmt.Fprintf(out, "circuit rejections:  %d\n", v.CircuitRejections)
		fmt.Fprintf(out, "health probes:       %d (%d transitions)\n", v.HealthProbes, v.HealthTransitions)
		fmt.Fprintf(out, "worker handled:      %v\n", v.WorkerHandled)
		s := v.Scheduler
		fmt.Fprintf(out, "scheduler:           %d passes, %d syncs (%d batched), avg %.1f selected, %d empty\n",
			s.ScheduleCalls, s.Syncs, s.Batched, s.AvgPassed, s.EmptySets)
		fmt.Fprintf(out, "selection bitmap:    %0*b (available mask %0*b)\n",
			v.Workers, s.SelectionBitmap, v.Workers, s.AvailableMask)
	case "circuits":
		var cs map[string]proxy.CircuitView
		if err := json.Unmarshal(body, &cs); err != nil {
			return err
		}
		if len(cs) == 0 {
			fmt.Fprintln(out, "circuit breaking disabled")
			return nil
		}
		addrs := make([]string, 0, len(cs))
		for a := range cs {
			addrs = append(addrs, a)
		}
		// Stable order for scripting and golden tests.
		for i := 0; i < len(addrs); i++ {
			for j := i + 1; j < len(addrs); j++ {
				if addrs[j] < addrs[i] {
					addrs[i], addrs[j] = addrs[j], addrs[i]
				}
			}
		}
		fmt.Fprintf(out, "%-22s %-10s %-6s %-6s %-11s %-7s %s\n",
			"ADDRESS", "STATE", "FAILS", "OPENS", "HALF-OPENS", "CLOSES", "OPEN-FOR")
		for _, a := range addrs {
			c := cs[a]
			openFor := "-"
			if c.State != "closed" {
				openFor = fmt.Sprintf("%.1fs", c.OpenForMS/1000)
			}
			fmt.Fprintf(out, "%-22s %-10s %-6d %-6d %-11d %-7d %s\n",
				a, c.State, c.Fails, c.Opens, c.HalfOpens, c.Closes, openFor)
		}
	}
	return nil
}
