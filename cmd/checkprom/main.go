// Command checkprom validates OpenMetrics text expositions — the scrape
// conformance gate for GET /metrics and hermes-bench -prom dumps:
//
//	checkprom metrics.prom more.prom
//	hermesctl -admin 127.0.0.1:9900 metrics | checkprom
//
// Each input must parse under the strict internal/openmetrics checker:
// HELP/TYPE pairing, name/label syntax and escaping, suffix discipline,
// histogram bucket monotonicity with le="+Inf" equal to _count, and a
// terminating # EOF. Exit 0 with a per-input summary, 1 on any violation.
package main

import (
	"fmt"
	"io"
	"os"

	"hermes/internal/openmetrics"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	if len(args) == 0 {
		args = []string{"-"}
	}
	code := 0
	for _, path := range args {
		var (
			data []byte
			err  error
			name = path
		)
		if path == "-" {
			name = "<stdin>"
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkprom: %s: %v\n", name, err)
			code = 1
			continue
		}
		fams, err := openmetrics.Validate(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkprom: %s: %v\n", name, err)
			code = 1
			continue
		}
		samples := 0
		for i := range fams {
			samples += len(fams[i].Samples)
		}
		fmt.Printf("checkprom: %s: ok (%d families, %d samples)\n", name, len(fams), samples)
	}
	return code
}
