// Command hermes-lb is a working HTTP/1.1 reverse proxy over real TCP whose
// worker scheduling runs the Hermes control loop: goroutine workers publish
// status to the lock-free Worker Status Table, every worker runs Algorithm 1
// at the end of its loop, and the acceptor — standing in for the kernel's
// reuseport eBPF program, which portable Go cannot attach — picks a worker
// for each accepted connection from the live selection bitmap.
//
//	hermes-lb -listen :8080 -backends 127.0.0.1:9001,127.0.0.1:9002
//	hermes-lb -demo            # self-contained: spins up backends + client load
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hermes/internal/core"
	"hermes/internal/faults"
	"hermes/internal/httpx"
	"hermes/internal/telemetry"
	"hermes/internal/tracing"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:8080", "address to listen on")
		backends   = flag.String("backends", "", "comma-separated backend addresses")
		workers    = flag.Int("workers", 4, "worker goroutines (1-64)")
		admin      = flag.String("admin", "", "admin address serving the policy control API (GET/PUT /policy, GET /status)")
		statsEvery = flag.Duration("stats-every", 0, "periodically print the telemetry catalog (0 = off)")
		trace      = flag.String("trace", "", "record a span dump (docs/TRACING.md) of proxied connections, written on shutdown (.jsonl = compact; else Chrome trace JSON)")
		demo       = flag.Bool("demo", false, "run a self-contained demo (own backends + client load)")
		demoReqs   = flag.Int("demo-requests", 2000, "requests to issue in demo mode")
		faultSpec  = flag.String("faults", "", "fault schedule (docs/FAULTS.md grammar, times relative to start), e.g. \"hang@5s:w2:dur=3s;slow@10s:x=4:dur=5s\"")
	)
	flag.Parse()

	var sched faults.Schedule
	if *faultSpec != "" {
		var err error
		if sched, err = faults.ParseSpec(*faultSpec); err != nil {
			fmt.Fprintln(os.Stderr, "hermes-lb:", err)
			os.Exit(2)
		}
	}

	var tracer *tracing.Tracer
	if *trace != "" {
		// Real goroutines race on the recorder, unlike the single-threaded
		// simulation: take the mutex-guarded variant.
		cfg := tracing.DefaultConfig()
		cfg.Concurrent = true
		tracer = tracing.New(cfg)
	}

	if *demo {
		runDemo(*workers, *demoReqs, *statsEvery, tracer, *trace, sched)
		return
	}
	if *backends == "" {
		fmt.Fprintln(os.Stderr, "hermes-lb: -backends required (or use -demo)")
		os.Exit(2)
	}
	lb, err := newProxy(*listen, strings.Split(*backends, ","), *workers, tracer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hermes-lb:", err)
		os.Exit(1)
	}
	applyFaults(lb, sched)
	if *admin != "" {
		go func() {
			fmt.Printf("hermes-lb: policy API on %s\n", *admin)
			if err := http.ListenAndServe(*admin, core.PolicyHandler(lb.ctl)); err != nil {
				fmt.Fprintln(os.Stderr, "hermes-lb: admin:", err)
			}
		}()
	}
	if *statsEvery > 0 {
		go lb.reportStats(*statsEvery)
	}
	fmt.Printf("hermes-lb: %d workers proxying %s -> %s\n", *workers, lb.addr(), *backends)

	// Block until interrupted, then shut down cleanly: stop accepting,
	// flush a final telemetry snapshot (a periodic reporter alone would
	// drop everything since its last tick), and write the span dump.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nhermes-lb: shutting down")
	lb.close()
	if *statsEvery > 0 {
		lb.printStats()
	}
	if tracer != nil {
		if err := writeTrace(*trace, tracer); err != nil {
			fmt.Fprintln(os.Stderr, "hermes-lb:", err)
			os.Exit(1)
		}
		fmt.Printf("hermes-lb: span dump written to %s\n", *trace)
	}
}

// proxy is the real-socket LB.
type proxy struct {
	ln       net.Listener
	backends []string
	ctl      *core.Controller
	workers  []*pworker
	rrSeq    atomic.Uint32
	hashSeq  atomic.Uint32

	// reg collects the proxy's live telemetry (-stats-every reporter).
	reg       *telemetry.Registry
	handled   *telemetry.CounterVec
	latencyNS *telemetry.Histogram
	upErrors  *telemetry.Counter

	// ktr traces connection steering (-trace); nil disables recording.
	ktr     *tracing.KernelTrace
	connSeq atomic.Uint64

	// Served counts proxied requests; Errors upstream failures.
	Served atomic.Uint64
	Errors atomic.Uint64
}

// tracedConn carries a queued connection plus the identity the flight
// recorder spans it under (id 0 when tracing is off).
type tracedConn struct {
	c     net.Conn
	id    uint64
	estNS int64 // steering time: the accept-queue span starts here
}

type pworker struct {
	id      int
	p       *proxy
	hook    *core.WorkerHook
	queue   chan tracedConn
	tr      *tracing.WorkerTrace
	prevQ   int // last queue depth folded into the busy metric
	handled *telemetry.Counter
	// Handled counts requests this worker proxied.
	Handled atomic.Uint64
	// Delay injects extra latency per request (demo poisoning).
	Delay atomic.Int64
	// hangUntilNS, while in the future, stalls the worker at its next loop
	// iteration without touching the WST — the loop-enter timestamp goes
	// stale exactly as a real hang's would (injected fault).
	hangUntilNS atomic.Int64
}

// maybeHang blocks until the injected hang deadline passes (no-op when
// none is set). Called before LoopEnter so the stall is visible to the
// scheduler as staleness, the paper's FilterTime signal.
func (w *pworker) maybeHang() {
	for {
		d := w.hangUntilNS.Load() - time.Now().UnixNano()
		if d <= 0 {
			return
		}
		time.Sleep(time.Duration(d))
	}
}

func newProxy(listen string, backends []string, workers int, tracer *tracing.Tracer) (*proxy, error) {
	reg := telemetry.NewRegistry()
	inst, err := core.New(workers, core.DefaultConfig(), core.WithInstruments(core.Instruments{
		Recomputes: reg.Counter(telemetry.Metric{Name: "core.schedule.recomputes", Layer: "core", Unit: "passes"}),
		Syncs:      reg.Counter(telemetry.Metric{Name: "core.schedule.syncs", Layer: "core", Unit: "syscalls"}),
		WSTReads:   reg.Counter(telemetry.Metric{Name: "core.schedule.wst_reads", Layer: "core", Unit: "rows"}),
		EmptySets:  reg.Counter(telemetry.Metric{Name: "core.schedule.empty_sets", Layer: "core", Unit: "passes"}),
		Passed:     reg.Histogram(telemetry.Metric{Name: "core.schedule.passed", Layer: "core", Unit: "workers"}, telemetry.CountBuckets(64)),
	}))
	if err != nil {
		return nil, err
	}
	ctl, ok := inst.(*core.Controller)
	if !ok {
		return nil, fmt.Errorf("hermes-lb: worker count %d needs the grouped deployment; cap at 64", workers)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	p := &proxy{ln: ln, backends: backends, ctl: ctl, reg: reg, ktr: tracer.KernelTrace()}
	p.handled = reg.CounterVec(telemetry.Metric{Name: "l7lb.worker.requests_served", Layer: "l7lb", Unit: "reqs"}, workers)
	p.latencyNS = reg.Histogram(telemetry.Metric{Name: "l7lb.request_latency_ns", Layer: "l7lb", Unit: "ns"}, telemetry.DurationBuckets())
	p.upErrors = reg.Counter(telemetry.Metric{Name: "l7lb.upstream_errors", Layer: "l7lb", Unit: "errors"})
	for i := 0; i < workers; i++ {
		w := &pworker{id: i, p: p, hook: ctl.NewWorkerHook(i), queue: make(chan tracedConn, 512),
			tr: tracer.WorkerTrace(i), handled: p.handled.At(i)}
		w.hook.LoopEnter(time.Now().UnixNano())
		p.workers = append(p.workers, w)
		go w.run()
	}
	p.workers[0].hook.ScheduleAndSync(time.Now().UnixNano())
	go p.acceptLoop()
	return p, nil
}

// reportStats periodically prints the telemetry catalog (the real-socket
// twin of hermes-bench -metrics). Shutdown paths call printStats once more
// so the final partial interval is never lost.
func (p *proxy) reportStats(every time.Duration) {
	for range time.Tick(every) {
		p.printStats()
	}
}

// printStats prints one telemetry snapshot.
func (p *proxy) printStats() {
	snap := p.reg.Snapshot()
	fmt.Printf("--- telemetry %s ---\n%s", time.Now().Format(time.RFC3339), snap.Text())
}

// writeTrace flushes the flight recorder and writes its span dump.
func writeTrace(path string, tr *tracing.Tracer) error {
	tr.Flush()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	meta := tracing.MetaFor("hermes-lb", tr.Stats())
	if strings.HasSuffix(path, ".jsonl") {
		err = tracing.WriteJSONL(f, tr.Spans(), meta)
	} else {
		err = tracing.WriteChrome(f, tr.Spans(), meta)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func (p *proxy) addr() string { return p.ln.Addr().String() }

func (p *proxy) close() { p.ln.Close() }

// acceptLoop is the kernel-dispatch stand-in: scaled-hash selection over the
// live bitmap, hash fallback below MinWorkers (Algorithm 2).
func (p *proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			for _, w := range p.workers {
				close(w.queue)
			}
			return
		}
		bitmap, _ := p.ctl.SelMap().Lookup(0)
		h := p.hashSeq.Add(2654435761)
		via := tracing.ViaProg
		wi, ok := core.NativeSelect(bitmap, h, p.ctl.Config().MinWorkers)
		if !ok {
			via = tracing.ViaFallback
			wi = int(h) % len(p.workers)
			if wi < 0 {
				wi = -wi
			}
		}
		tc := tracedConn{c: conn, id: p.connSeq.Add(1), estNS: time.Now().UnixNano()}
		p.ktr.ConnEstablished(tc.id, tc.estNS, int32(wi), via)
		p.workers[wi].queue <- tc
	}
}

func (w *pworker) run() {
	buf := make([]byte, 64<<10)
	for tc := range w.queue {
		w.maybeHang()
		now := time.Now().UnixNano()
		w.hook.LoopEnter(now)
		// Fold the channel backlog into the pending-event metric: queued
		// connections are this worker's kernel-side accept queue.
		q := len(w.queue) + 1
		w.hook.EventsFetched(q - w.prevQ)
		w.prevQ = q - 1
		w.hook.ConnOpened()
		w.tr.Accept(tc.id, tc.estNS, now)
		w.serve(tc, buf)
		w.tr.Close(tc.id, time.Now().UnixNano(), false)
		w.hook.ConnClosed()
		w.hook.EventHandled()
		w.hook.ScheduleAndSync(time.Now().UnixNano())
	}
}

func (w *pworker) serve(tc tracedConn, buf []byte) {
	conn := tc.c
	defer conn.Close()
	pending := 0
	for {
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, err := conn.Read(buf[pending:])
		if err != nil {
			return
		}
		arrivalNS := time.Now().UnixNano()
		pending += n
		for {
			req, consumed, perr := httpx.ParseRequest(buf[:pending])
			if perr == httpx.ErrIncomplete {
				break
			}
			if perr != nil {
				w.reply(conn, &httpx.Response{Status: 400})
				return
			}
			copy(buf, buf[consumed:pending])
			pending -= consumed

			w.hook.EventsFetched(1)
			if d := w.Delay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			start := time.Now()
			resp := w.forward(req)
			w.hook.EventHandled()
			w.Handled.Add(1)
			w.handled.Inc()
			w.p.latencyNS.Observe(time.Since(start).Nanoseconds())
			w.tr.Serve(tc.id, arrivalNS, start.UnixNano(), time.Now().UnixNano(), false)
			if _, err := conn.Write(resp.Append(nil)); err != nil {
				return
			}
			if !req.WantsKeepAlive() {
				return
			}
		}
		w.hook.LoopEnter(time.Now().UnixNano())
		w.hook.ScheduleAndSync(time.Now().UnixNano())
	}
}

// forward proxies one request to a round-robin backend.
func (w *pworker) forward(req *httpx.Request) *httpx.Response {
	backend := w.p.backends[int(w.p.rrSeq.Add(1))%len(w.p.backends)]
	up, err := net.DialTimeout("tcp", backend, 2*time.Second)
	if err != nil {
		w.p.Errors.Add(1)
		w.p.upErrors.Inc()
		return &httpx.Response{Status: 502, Body: []byte(err.Error())}
	}
	defer up.Close()

	fwd := *req
	fwd.Headers = append(append([]httpx.Header(nil), req.Headers...),
		httpx.Header{Name: "X-Forwarded-By", Value: fmt.Sprintf("hermes-lb/w%d", w.id)},
		httpx.Header{Name: "Connection", Value: "close"},
	)
	if _, err := up.Write(fwd.Append(nil)); err != nil {
		w.p.Errors.Add(1)
		w.p.upErrors.Inc()
		return &httpx.Response{Status: 502, Body: []byte(err.Error())}
	}
	_ = up.SetReadDeadline(time.Now().Add(5 * time.Second))
	data, err := io.ReadAll(up)
	if err != nil && len(data) == 0 {
		w.p.Errors.Add(1)
		w.p.upErrors.Inc()
		return &httpx.Response{Status: 502, Body: []byte(err.Error())}
	}
	resp, _, perr := httpx.ParseResponse(data)
	if perr != nil {
		w.p.Errors.Add(1)
		w.p.upErrors.Inc()
		return &httpx.Response{Status: 502, Body: []byte(perr.Error())}
	}
	w.p.Served.Add(1)
	return resp
}

func (w *pworker) reply(conn net.Conn, resp *httpx.Response) {
	_, _ = conn.Write(resp.Append(nil))
}

// applyFaults arms a wall-clock translation of the sim fault schedule on
// the real proxy: hangs and slowdowns map directly; a crash is approximated
// as a stall until its restart delay (goroutines cannot be SIGKILLed);
// queue, selmap, and probe faults have no real-socket analogue here and are
// skipped with a note.
func applyFaults(p *proxy, sched faults.Schedule) {
	for _, ev := range sched.Events {
		ev := ev
		time.AfterFunc(time.Duration(ev.AtNS), func() {
			w := p.victim(ev.Worker)
			switch ev.Kind {
			case faults.Hang:
				w.hangUntilNS.Store(time.Now().UnixNano() + ev.DurNS)
				fmt.Printf("faults: hang w%d for %s\n", w.id, time.Duration(ev.DurNS))
			case faults.Crash:
				dur := ev.RestartNS
				if dur == 0 {
					dur = int64(time.Hour)
				}
				w.hangUntilNS.Store(time.Now().UnixNano() + dur)
				fmt.Printf("faults: crash w%d (stall until restart %s)\n", w.id, time.Duration(dur))
			case faults.Slow:
				// Poison per-request latency instead of scaling CPU: the
				// proxy's cost is dominated by the upstream round trip.
				const base = 5 * time.Millisecond
				w.Delay.Store(int64(float64(base) * (ev.Factor - 1)))
				fmt.Printf("faults: slow w%d x%g for %s\n", w.id, ev.Factor, time.Duration(ev.DurNS))
				if ev.DurNS > 0 {
					time.AfterFunc(time.Duration(ev.DurNS), func() { w.Delay.Store(0) })
				}
			default:
				fmt.Printf("faults: %s has no real-socket analogue, skipped\n", ev.Kind)
			}
		})
	}
}

// victim resolves a fault's target: a pinned worker id, else the busiest
// worker (deepest queue, then most requests handled) at fire time.
func (p *proxy) victim(id int) *pworker {
	if id >= 0 && id < len(p.workers) {
		return p.workers[id]
	}
	best := p.workers[0]
	for _, w := range p.workers[1:] {
		if len(w.queue) > len(best.queue) ||
			(len(w.queue) == len(best.queue) && w.Handled.Load() > best.Handled.Load()) {
			best = w
		}
	}
	return best
}

// runDemo spins up two trivial backends, the proxy, and a client fleet, with
// one worker poisoned halfway through to show the bitmap steering around it.
func runDemo(workers, requests int, statsEvery time.Duration, tracer *tracing.Tracer, tracePath string, sched faults.Schedule) {
	backendAddrs := make([]string, 2)
	for i := range backendAddrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		backendAddrs[i] = ln.Addr().String()
		id := i
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go func(c net.Conn) {
					defer c.Close()
					buf := make([]byte, 32<<10)
					n, _ := c.Read(buf)
					if _, _, err := httpx.ParseRequest(buf[:n]); err != nil {
						return
					}
					resp := httpx.Response{Status: 200, Body: []byte(fmt.Sprintf("hello from backend %d", id))}
					_, _ = c.Write(resp.Append(nil))
				}(c)
			}
		}()
	}

	p, err := newProxy("127.0.0.1:0", backendAddrs, workers, tracer)
	if err != nil {
		panic(err)
	}
	defer p.close()
	applyFaults(p, sched)
	fmt.Printf("demo: %d workers, proxy %s, backends %v\n", workers, p.addr(), backendAddrs)
	if statsEvery > 0 {
		go p.reportStats(statsEvery)
	}

	// Steady closed-loop load: a fixed client pool keeps the proxy busy so
	// the poisoned worker's backlog and stale loop timestamp are visible to
	// the schedulers (wave-style load would let everyone look idle between
	// waves and defeat the feedback loop).
	const clientPool = 24
	var wg sync.WaitGroup
	var ok, bad, issued atomic.Uint64
	poisonAt := uint64(requests / 2)
	for c := 0; c < clientPool; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := issued.Add(1)
				if i > uint64(requests) {
					return
				}
				if i == poisonAt {
					p.workers[workers-1].Delay.Store(int64(25 * time.Millisecond))
					fmt.Printf("poisoning worker %d at request %d\n", workers-1, i)
				}
				if err := demoRequest(p.addr(), int(i)); err != nil {
					bad.Add(1)
				} else {
					ok.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	fmt.Printf("\nrequests: %d ok, %d failed; upstream errors: %d\n", ok.Load(), bad.Load(), p.Errors.Load())
	fmt.Printf("%-8s %-10s\n", "worker", "handled")
	for i, w := range p.workers {
		note := ""
		if i == workers-1 {
			note = "  <- poisoned after halfway"
		}
		fmt.Printf("w%-7d %-10d%s\n", i, w.Handled.Load(), note)
	}
	st := p.ctl.Stats()
	fmt.Printf("scheduler passes: %d, avg workers selected: %.1f\n", st.ScheduleCalls, st.AvgPassed)
	if statsEvery > 0 {
		// Final snapshot: the periodic reporter would drop the tail of the
		// run (everything since its last tick).
		p.printStats()
	}
	if tracer != nil {
		if err := writeTrace(tracePath, tracer); err != nil {
			panic(err)
		}
		fmt.Printf("span dump written to %s\n", tracePath)
	}
}

func demoRequest(addr string, i int) error {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	req := httpx.Request{
		Method: "GET",
		Target: fmt.Sprintf("/demo/%d", i),
		Headers: []httpx.Header{
			{Name: "Host", Value: "demo"},
			{Name: "Connection", Value: "close"},
		},
	}
	if _, err := conn.Write(req.Append(nil)); err != nil {
		return err
	}
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	data, err := io.ReadAll(conn)
	if err != nil && len(data) == 0 {
		return err
	}
	resp, _, perr := httpx.ParseResponse(data)
	if perr != nil {
		return perr
	}
	if resp.Status != 200 {
		return fmt.Errorf("status %d", resp.Status)
	}
	return nil
}
