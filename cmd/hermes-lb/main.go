// Command hermes-lb is a production-grade HTTP/1.1 reverse proxy over real
// TCP whose worker scheduling runs the Hermes control loop. The proxy engine
// lives in internal/proxy (backend pool, health checks, circuit breaking,
// retries, graceful drain); this command is flag parsing and lifecycle.
//
//	hermes-lb -listen :8080 -backends 127.0.0.1:9001,127.0.0.1:9002*3
//	hermes-lb -config config.yaml       # file + flag overrides
//	hermes-lb -demo                     # self-contained demo load
//	hermes-lb -serve-backend :9001      # trivial upstream for smoke tests
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hermes/internal/faults"
	"hermes/internal/httpx"
	"hermes/internal/proxy"
	"hermes/internal/telemetry"
	"hermes/internal/tracing"

	_ "net/http/pprof" // registered on the default mux, served only via -debug-addr
)

func main() { os.Exit(run()) }

func run() int {
	var (
		config       = flag.String("config", "", "YAML config file (docs/PROXY.md); explicit flags override it")
		listen       = flag.String("listen", "", "address to listen on")
		backends     = flag.String("backends", "", "comma-separated backend addresses, each optionally addr*weight")
		workers      = flag.Int("workers", 0, "worker goroutines (1-64)")
		policy       = flag.String("policy", "", "backend policy: round-robin | weighted | least-connections")
		admin        = flag.String("admin", "", "admin address serving the REST API (/healthz /backends /stats /circuits /metrics /slo /policy /status)")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this address (off unless set; bind to localhost)")
		sloSpec      = flag.String("slo", "", "SLO objectives (\"latency<=250ms@99%;errors@99.9%;page=10x/10s+1m;warn=2x/1m+5m\"); \"off\" disables the monitor")
		drainTimeout = flag.Duration("drain-timeout", 0, "graceful-shutdown drain deadline")
		statsEvery   = flag.Duration("stats-every", 0, "periodically print windowed telemetry deltas and rates (0 = off)")
		trace        = flag.String("trace", "", "record a span dump (docs/TRACING.md), written on shutdown (.jsonl = compact; else Chrome trace JSON)")
		demo         = flag.Bool("demo", false, "run a self-contained demo (own backends + client load)")
		demoReqs     = flag.Int("demo-requests", 2000, "requests to issue in demo mode")
		faultSpec    = flag.String("faults", "", "fault schedule (docs/FAULTS.md grammar, times relative to start), e.g. \"hang@5s:w2:dur=3s;slow@10s:x=4:dur=5s\"")
		serveBackend = flag.String("serve-backend", "", "run a trivial HTTP backend on this address instead of the proxy (smoke tests)")
	)
	flag.Parse()

	if *serveBackend != "" {
		return runStubBackend(*serveBackend)
	}

	var sched faults.Schedule
	if *faultSpec != "" {
		var err error
		if sched, err = faults.ParseSpec(*faultSpec); err != nil {
			fmt.Fprintln(os.Stderr, "hermes-lb:", err)
			return 2
		}
	}

	var tracer *tracing.Tracer
	if *trace != "" {
		// Real goroutines race on the recorder, unlike the single-threaded
		// simulation: take the mutex-guarded variant.
		cfg := tracing.DefaultConfig()
		cfg.Concurrent = true
		tracer = tracing.New(cfg)
	}

	// Precedence: defaults, then the config file, then explicit flags.
	cfg := proxy.DefaultConfig()
	if *config != "" {
		var err error
		if cfg, err = proxy.LoadFile(*config, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "hermes-lb:", err)
			return 2
		}
	}
	var flagErr error
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "listen":
			cfg.Listen = *listen
		case "backends":
			bs, err := proxy.ParseBackends(*backends)
			if err != nil && flagErr == nil {
				flagErr = err
			}
			cfg.Backends = bs
		case "workers":
			cfg.Workers = *workers
		case "policy":
			cfg.Policy = *policy
		case "admin":
			cfg.AdminListen = *admin
		case "drain-timeout":
			cfg.DrainTimeout = *drainTimeout
		case "slo":
			if *sloSpec == "off" {
				cfg.SLO.Enabled = false
			} else {
				cfg.SLO.Enabled = true
				cfg.SLO.Objectives = *sloSpec
			}
		}
	})
	if flagErr != nil {
		fmt.Fprintln(os.Stderr, "hermes-lb:", flagErr)
		return 2
	}

	if *debugAddr != "" {
		// net/http/pprof registers on the default mux; serve it only when
		// explicitly asked, on its own listener, never on the admin or
		// client-facing address.
		go func() {
			fmt.Printf("hermes-lb: pprof on %s\n", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "hermes-lb: debug:", err)
			}
		}()
	}

	if *demo {
		return runDemo(cfg, *demoReqs, *statsEvery, tracer, *trace, sched)
	}
	if len(cfg.Backends) == 0 {
		fmt.Fprintln(os.Stderr, "hermes-lb: -backends or a config file required (or use -demo)")
		return 2
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "hermes-lb:", err)
		return 2
	}

	p, err := proxy.New(cfg, proxy.WithTracer(tracer), proxy.WithFaults(sched))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hermes-lb:", err)
		return 1
	}
	if cfg.AdminListen != "" {
		go func() {
			fmt.Printf("hermes-lb: admin API on %s\n", cfg.AdminListen)
			srv := &http.Server{Addr: cfg.AdminListen, Handler: proxy.AdminHandler(p)}
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "hermes-lb: admin:", err)
			}
		}()
	}
	if *statsEvery > 0 {
		go reportStats(p, *statsEvery)
	}
	fmt.Printf("hermes-lb: %d workers proxying %s (%s policy, %d backends)\n",
		cfg.Workers, p.Addr(), cfg.Policy, len(cfg.Backends))

	// Block until interrupted, then drain gracefully: stop accepting, wait
	// out in-flight requests up to the drain deadline, flush a final
	// telemetry snapshot, and write the span dump.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("\nhermes-lb: draining (deadline %s)\n", cfg.DrainTimeout)
	code := 0
	if err := p.Shutdown(cfg.DrainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "hermes-lb:", err)
		code = 1
	}
	if *statsEvery > 0 {
		printStats(p)
	}
	if tracer != nil {
		if err := writeTrace(*trace, tracer); err != nil {
			fmt.Fprintln(os.Stderr, "hermes-lb:", err)
			return 1
		}
		fmt.Printf("hermes-lb: span dump written to %s\n", *trace)
	}
	return code
}

// reportStats periodically prints windowed telemetry: each interval shows
// the deltas and rates since the previous print, not cumulative totals — a
// quiet proxy prints zeros, a busy one prints its current req/s and windowed
// quantiles. Shutdown paths call printStats once more for the cumulative
// final snapshot, so the run's totals are never lost.
func reportStats(p *proxy.Proxy, every time.Duration) {
	prev := p.Registry().Snapshot()
	prevNS := time.Now().UnixNano()
	for range time.Tick(every) {
		cur := p.Registry().Snapshot()
		nowNS := time.Now().UnixNano()
		d := telemetry.NewWindowDelta(prevNS, nowNS, prev, cur)
		fmt.Printf("--- telemetry %s (last %s) ---\n%s",
			time.Now().Format(time.RFC3339), d.Elapsed().Round(time.Millisecond), d.Text())
		prev, prevNS = cur, nowNS
	}
}

func printStats(p *proxy.Proxy) {
	snap := p.Registry().Snapshot()
	fmt.Printf("--- telemetry %s ---\n%s", time.Now().Format(time.RFC3339), snap.Text())
}

// writeTrace flushes the flight recorder and writes its span dump.
func writeTrace(path string, tr *tracing.Tracer) error {
	tr.Flush()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	meta := tracing.MetaFor("hermes-lb", tr.Stats())
	if strings.HasSuffix(path, ".jsonl") {
		err = tracing.WriteJSONL(f, tr.Spans(), meta)
	} else {
		err = tracing.WriteChrome(f, tr.Spans(), meta)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// runStubBackend serves a trivial HTTP/1.1 upstream: 200 to everything
// (including health probes), body naming the instance — enough to smoke-test
// the proxy without a second binary.
func runStubBackend(addr string) int {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hermes-lb:", err)
		return 1
	}
	fmt.Printf("hermes-lb: stub backend on %s\n", ln.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ln.Close()
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			return 0
		}
		go func(c net.Conn) {
			defer c.Close()
			buf := make([]byte, 64<<10)
			pending := 0
			for {
				_ = c.SetReadDeadline(time.Now().Add(10 * time.Second))
				n, err := c.Read(buf[pending:])
				if err != nil {
					return
				}
				pending += n
				req, consumed, perr := httpx.ParseRequest(buf[:pending])
				if perr == httpx.ErrIncomplete {
					continue
				}
				if perr != nil {
					return
				}
				copy(buf, buf[consumed:pending])
				pending -= consumed
				resp := httpx.Response{Status: 200,
					Body: []byte(fmt.Sprintf("hello from %s (%s)", ln.Addr(), req.Target))}
				if _, err := c.Write(resp.Append(nil)); err != nil {
					return
				}
				if !req.WantsKeepAlive() {
					return
				}
			}
		}(c)
	}
}
