package main

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/faults"
	"hermes/internal/httpx"
	"hermes/internal/proxy"
	"hermes/internal/tracing"
)

// runDemo spins up two trivial backends, the proxy, and a client fleet, with
// one worker poisoned halfway through to show the bitmap steering around it.
func runDemo(cfg proxy.Config, requests int, statsEvery time.Duration, tracer *tracing.Tracer, tracePath string, sched faults.Schedule) int {
	backendAddrs := make([]string, 2)
	for i := range backendAddrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		backendAddrs[i] = ln.Addr().String()
		id := i
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go func(c net.Conn) {
					defer c.Close()
					buf := make([]byte, 32<<10)
					n, _ := c.Read(buf)
					if _, _, err := httpx.ParseRequest(buf[:n]); err != nil {
						return
					}
					resp := httpx.Response{Status: 200, Body: []byte(fmt.Sprintf("hello from backend %d", id))}
					_, _ = c.Write(resp.Append(nil))
				}(c)
			}
		}()
	}

	cfg.Listen = "127.0.0.1:0"
	cfg.Backends = nil
	for _, a := range backendAddrs {
		cfg.Backends = append(cfg.Backends, proxy.BackendConfig{Address: a, Weight: 1})
	}
	p, err := proxy.New(cfg, proxy.WithTracer(tracer), proxy.WithFaults(sched))
	if err != nil {
		panic(err)
	}
	defer p.Close()
	workers := p.Workers()
	fmt.Printf("demo: %d workers, proxy %s, backends %v\n", workers, p.Addr(), backendAddrs)
	if statsEvery > 0 {
		go reportStats(p, statsEvery)
	}

	// Steady closed-loop load: a fixed client pool keeps the proxy busy so
	// the poisoned worker's backlog and stale loop timestamp are visible to
	// the schedulers (wave-style load would let everyone look idle between
	// waves and defeat the feedback loop).
	const clientPool = 24
	var wg sync.WaitGroup
	var ok, bad, issued atomic.Uint64
	poisonAt := uint64(requests / 2)
	for c := 0; c < clientPool; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := issued.Add(1)
				if i > uint64(requests) {
					return
				}
				if i == poisonAt {
					p.SetWorkerDelay(workers-1, 25*time.Millisecond)
					fmt.Printf("poisoning worker %d at request %d\n", workers-1, i)
				}
				if err := demoRequest(p.Addr(), int(i)); err != nil {
					bad.Add(1)
				} else {
					ok.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	fmt.Printf("\nrequests: %d ok, %d failed; upstream errors: %d\n", ok.Load(), bad.Load(), p.Errors.Load())
	fmt.Printf("%-8s %-10s\n", "worker", "handled")
	for i := 0; i < workers; i++ {
		note := ""
		if i == workers-1 {
			note = "  <- poisoned after halfway"
		}
		fmt.Printf("w%-7d %-10d%s\n", i, p.WorkerHandled(i), note)
	}
	st := p.Controller().Stats()
	fmt.Printf("scheduler passes: %d, avg workers selected: %.1f\n", st.ScheduleCalls, st.AvgPassed)
	if statsEvery > 0 {
		// Final snapshot: the periodic reporter would drop the tail of the
		// run (everything since its last tick).
		printStats(p)
	}
	if tracer != nil {
		if err := writeTrace(tracePath, tracer); err != nil {
			panic(err)
		}
		fmt.Printf("span dump written to %s\n", tracePath)
	}
	return 0
}

func demoRequest(addr string, i int) error {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	req := httpx.Request{
		Method: "GET",
		Target: fmt.Sprintf("/demo/%d", i),
		Headers: []httpx.Header{
			{Name: "Host", Value: "demo"},
			{Name: "Connection", Value: "close"},
		},
	}
	if _, err := conn.Write(req.Append(nil)); err != nil {
		return err
	}
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	data, err := io.ReadAll(conn)
	if err != nil && len(data) == 0 {
		return err
	}
	resp, _, perr := httpx.ParseResponse(data)
	if perr != nil {
		return perr
	}
	if resp.Status != 200 {
		return fmt.Errorf("status %d", resp.Status)
	}
	return nil
}
