// Hermes-spans analyses a hermes-bench -spans dump (docs/TRACING.md). It
// reads either encoding (Chrome trace-event JSON or compact JSONL) and
// prints where each connection's time went:
//
//   - the aggregate wait breakdown — steer (SYN → accept-queue entry),
//     queue (accept-queue residency), notify (request arrival → service
//     start) and serve (service itself) — with the steering-path mix;
//   - the top-K slowest connections by end-to-end request latency, each
//     with its full span chain;
//   - spurious-wakeup attribution per worker (which epoll waiter woke for
//     nothing, and how long it had been blocked).
//
// With -metrics it reconciles the dump against the same run's telemetry:
// the accept-wait histogram must sum to the accept-queue residencies and
// the request-latency histogram to the serve latencies. Reconciliation
// needs a full trace (-span-sample 1, no ring overwrites); a sampled dump
// fails it by construction.
//
//	hermes-bench -exp fig11 -spans dump.json -metrics m.json
//	hermes-spans -top 5 -metrics m.json dump.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hermes/internal/telemetry"
	"hermes/internal/tracing"
)

func main() {
	var (
		topK     = flag.Int("top", 10, "slowest connections to detail (0 = none)")
		metrics  = flag.String("metrics", "", "reconcile against this hermes-bench -metrics dump")
		exp      = flag.String("exp", "", "experiment key inside -metrics (default: sole experiment)")
		cell     = flag.String("cell", "", "cell key inside -metrics (default: the dump's cell)")
		connID   = flag.Uint64("conn", 0, "print one connection's span chain and exit")
		failFlag = 0
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hermes-spans [flags] <dump.json|dump.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err.Error())
	}
	spans, meta, err := tracing.ReadSpans(f)
	f.Close()
	if err != nil {
		fatal("not a span dump: " + err.Error())
	}

	a := analyze(spans)

	if *connID != 0 {
		c := a.conns[*connID]
		if c == nil {
			fatal(fmt.Sprintf("connection %d not in dump", *connID))
		}
		printChain(c)
		return
	}

	fmt.Printf("cell %q: %d spans, %d/%d connections kept", meta.Cell, len(spans), meta.ConnsKept, meta.ConnsSeen)
	if meta.SpansDropped > 0 {
		fmt.Printf(" (%d spans overwritten in the ring)", meta.SpansDropped)
	}
	fmt.Println()
	a.printBreakdown()
	a.printSpurious()
	if *topK > 0 {
		a.printSlowest(*topK)
	}
	if *metrics != "" {
		if !a.reconcile(*metrics, *exp, pick(*cell, meta.Cell)) {
			failFlag = 1
		}
	}
	os.Exit(failFlag)
}

func pick(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// conn is one connection's reassembled span chain.
type conn struct {
	id    uint64
	spans []tracing.Span

	via        tracing.Via
	steerNS    int64 // SYN -> accept-queue entry (0 in the sim's SYN path)
	queueNS    int64 // accept-queue residency
	notifyNS   int64 // sum of notify waits (arrival -> service start)
	serveNS    int64 // sum of service spans
	requests   int   // serve spans (incl. probes)
	probes     int
	latencySum int64 // sum of non-probe end-to-end latencies (serve Arg2)
	maxLatNS   int64 // slowest single request (incl. probes)
	hasQueue   bool
}

type analysis struct {
	conns map[uint64]*conn
	order []*conn // sorted by id

	// Per-worker wakeup attribution, indexed by track (KernelTrack never
	// records wakeups).
	wakeups  map[int32]int
	spurious map[int32]int
	waitNS   map[int32]int64 // blocked time attributed to spurious wakeups

	drops    int
	overflow int
}

func analyze(spans []tracing.Span) *analysis {
	a := &analysis{
		conns:    make(map[uint64]*conn),
		wakeups:  make(map[int32]int),
		spurious: make(map[int32]int),
		waitNS:   make(map[int32]int64),
	}
	get := func(id uint64) *conn {
		c := a.conns[id]
		if c == nil {
			c = &conn{id: id}
			a.conns[id] = c
		}
		return c
	}
	var syns = make(map[uint64]int64)
	for _, s := range spans {
		switch s.Kind {
		case tracing.KindWakeup:
			a.wakeups[s.Worker]++
			if s.Arg2 != 0 {
				a.spurious[s.Worker]++
				a.waitNS[s.Worker] += s.DurNS()
			}
		case tracing.KindDrop:
			a.drops++
			if s.Arg2 != 0 {
				a.overflow++
			}
		case tracing.KindSchedule, tracing.KindSelmapSync, tracing.KindFault,
			tracing.KindProbe, tracing.KindBackendState:
			// Control-plane events; not part of any connection chain.
		default:
			c := get(s.Conn)
			c.spans = append(c.spans, s)
			switch s.Kind {
			case tracing.KindSYN:
				c.via = tracing.Via(s.Arg)
				syns[s.Conn] = s.StartNS
			case tracing.KindAcceptQueue:
				c.queueNS = s.DurNS()
				c.hasQueue = true
				if at, ok := syns[s.Conn]; ok {
					c.steerNS = s.StartNS - at
				}
			case tracing.KindNotifyWait:
				c.notifyNS += s.DurNS()
			case tracing.KindServe:
				c.serveNS += s.DurNS()
				c.requests++
				if s.Arg != 0 {
					c.probes++
				} else {
					c.latencySum += s.Arg2
				}
				if s.Arg2 > c.maxLatNS {
					c.maxLatNS = s.Arg2
				}
			}
		}
	}
	a.order = make([]*conn, 0, len(a.conns))
	for _, c := range a.conns {
		tracing.SortSpans(c.spans)
		a.order = append(a.order, c)
	}
	sort.Slice(a.order, func(i, j int) bool { return a.order[i].id < a.order[j].id })
	return a
}

func (a *analysis) printBreakdown() {
	var steer, queue, notify, serve int64
	var reqs int
	vias := make(map[tracing.Via]int)
	for _, c := range a.order {
		steer += c.steerNS
		queue += c.queueNS
		notify += c.notifyNS
		serve += c.serveNS
		reqs += c.requests
		vias[c.via]++
	}
	n := len(a.order)
	fmt.Println("\nwait breakdown (totals over traced connections):")
	w := func(name string, tot int64, per int) {
		if per == 0 {
			per = 1
		}
		fmt.Printf("  %-8s %14s  (mean %s)\n", name, ns(tot), ns(tot/int64(per)))
	}
	w("steer", steer, n)
	w("queue", queue, n)
	w("notify", notify, reqs)
	w("serve", serve, reqs)
	fmt.Printf("  %d connections, %d requests", n, reqs)
	if a.drops > 0 {
		fmt.Printf("; %d SYNs dropped (%d on queue overflow)", a.drops, a.overflow)
	}
	fmt.Println()
	keys := make([]tracing.Via, 0, len(vias))
	for v := range vias {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	parts := make([]string, 0, len(keys))
	for _, v := range keys {
		parts = append(parts, fmt.Sprintf("%s %d", v, vias[v]))
	}
	fmt.Printf("  steering: %s\n", strings.Join(parts, ", "))
}

func (a *analysis) printSpurious() {
	tracks := make([]int32, 0, len(a.wakeups))
	for t := range a.wakeups {
		tracks = append(tracks, t)
	}
	if len(tracks) == 0 {
		return
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })
	fmt.Println("\nspurious wakeups per worker:")
	for _, t := range tracks {
		tot, sp := a.wakeups[t], a.spurious[t]
		fmt.Printf("  worker %-3d %6d wakeups, %6d spurious (%.1f%%), %s blocked for nothing\n",
			t, tot, sp, 100*float64(sp)/float64(tot), ns(a.waitNS[t]))
	}
}

func (a *analysis) printSlowest(k int) {
	slow := make([]*conn, len(a.order))
	copy(slow, a.order)
	sort.SliceStable(slow, func(i, j int) bool { return slow[i].maxLatNS > slow[j].maxLatNS })
	if k > len(slow) {
		k = len(slow)
	}
	fmt.Printf("\ntop %d slowest connections (by worst request latency):\n", k)
	for _, c := range slow[:k] {
		fmt.Printf("- conn %d: worst %s  (steer %s, queue %s, notify %s, serve %s over %d requests, via %s)\n",
			c.id, ns(c.maxLatNS), ns(c.steerNS), ns(c.queueNS), ns(c.notifyNS), ns(c.serveNS), c.requests, c.via)
		printChain(c)
	}
}

func printChain(c *conn) {
	for _, s := range c.spans {
		line := fmt.Sprintf("    %12d  %-12s worker %d", s.StartNS, s.Kind, s.Worker)
		if !s.Instant() {
			line += fmt.Sprintf("  +%s", ns(s.DurNS()))
		}
		switch s.Kind {
		case tracing.KindSYN:
			line += fmt.Sprintf("  via %s -> worker %d", tracing.Via(s.Arg), s.Arg2)
		case tracing.KindServe:
			if s.Arg != 0 {
				line += "  probe"
			}
			line += fmt.Sprintf("  latency %s", ns(s.Arg2))
		case tracing.KindClose:
			if s.Arg != 0 {
				line += "  reset"
			}
		}
		fmt.Println(line)
	}
}

// reconcile checks the dump's wait totals against the telemetry histograms
// recorded by the same run: Σ accept-queue residencies must equal the
// accept-wait histogram's sum, and Σ non-probe serve latencies the
// request-latency histogram's sum (counts likewise). Returns false on any
// mismatch.
func (a *analysis) reconcile(path, exp, cell string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err.Error())
	}
	var dump map[string]map[string][]telemetry.MetricSnapshot
	if err := json.Unmarshal(data, &dump); err != nil {
		fatal("not a metrics dump: " + err.Error())
	}
	if exp == "" {
		if len(dump) != 1 {
			fatal(fmt.Sprintf("metrics dump has %d experiments; pick one with -exp", len(dump)))
		}
		for k := range dump {
			exp = k
		}
	}
	cells, ok := dump[exp]
	if !ok {
		fatal(fmt.Sprintf("experiment %q not in metrics dump", exp))
	}
	snaps, ok := cells[cell]
	if !ok {
		fatal(fmt.Sprintf("cell %q not in metrics dump for %q", cell, exp))
	}
	find := func(name string) *telemetry.MetricSnapshot {
		for i := range snaps {
			if snaps[i].Name == name {
				return &snaps[i]
			}
		}
		fatal(fmt.Sprintf("metric %q not in %s/%s", name, exp, cell))
		return nil
	}

	var queueSum, latSum int64
	var queueN, latN uint64
	for _, c := range a.order {
		queueSum += c.queueNS
		if c.hasQueue {
			queueN++
		}
		latSum += c.latencySum
		latN += uint64(c.requests - c.probes)
	}

	fmt.Printf("\nreconciliation against %s/%s:\n", exp, cell)
	ok = true
	check := func(label string, ms *telemetry.MetricSnapshot, sum int64, count uint64) {
		good := ms.Sum == sum && ms.Count == count
		status := "OK"
		if !good {
			status, ok = "MISMATCH", false
		}
		fmt.Printf("  %-28s spans %s over %d vs histogram %s over %d  [%s]\n",
			label, ns(sum), count, ns(ms.Sum), ms.Count, status)
	}
	check("accept-queue vs accept_wait", find("l7lb.accept_wait_ns"), queueSum, queueN)
	check("serve latency vs latency", find("l7lb.request_latency_ns"), latSum, latN)
	if !ok {
		fmt.Println("  (a sampled or ring-overwritten dump cannot reconcile; record with -span-sample 1)")
	}
	return ok
}

func ns(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3fs", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3fms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3fµs", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "hermes-spans: "+msg)
	os.Exit(1)
}
