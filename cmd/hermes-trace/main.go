// Command hermes-trace generates, inspects, and replays workload traces —
// the methodology of §6.2 ("we collected and replayed traffic... at 2 to 3
// times the original rate"), over this repo's simulated LB stack.
//
//	hermes-trace gen -case 2 -duration 500ms -out case2.trace
//	hermes-trace info case2.trace
//	hermes-trace replay -mode hermes -rate 3 case2.trace
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"hermes/internal/l7lb"
	"hermes/internal/sim"
	"hermes/internal/stats"
	"hermes/internal/trace"
	"hermes/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  hermes-trace gen    -case N -duration D -seed S -scale F -out FILE
  hermes-trace info   FILE
  hermes-trace replay -mode M -rate R -workers W -seed S FILE`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hermes-trace:", err)
	os.Exit(1)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	caseN := fs.Int("case", 1, "traffic case 1-4 (Table 3)")
	duration := fs.Duration("duration", 500*time.Millisecond, "trace window")
	seed := fs.Int64("seed", 1, "sampling seed")
	scale := fs.Float64("scale", 0.5, "connection-rate scale")
	out := fs.String("out", "", "output file (default: caseN.trace)")
	tenants := fs.Int("tenants", 8, "tenant ports")
	_ = fs.Parse(args)

	if *caseN < 1 || *caseN > 4 {
		fatal(fmt.Errorf("case must be 1-4, got %d", *caseN))
	}
	ports := make([]uint16, *tenants)
	for i := range ports {
		ports[i] = uint16(8080 + i)
	}
	spec := workload.Cases(ports)[*caseN-1].Scale(*scale)
	tr, err := trace.Sample(spec, *duration, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("case%d.trace", *caseN)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	n, err := tr.WriteTo(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d conns, %d requests, %d bytes\n",
		path, len(tr.Conns), tr.Requests(), n)
}

func readTrace(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	return tr
}

func cmdInfo(args []string) {
	if len(args) != 1 {
		usage()
	}
	tr := readTrace(args[0])
	var costs, sizes, perConn stats.Sample
	ports := map[uint16]int{}
	for i := range tr.Conns {
		c := &tr.Conns[i]
		ports[c.Port]++
		perConn.Add(float64(len(c.Requests)))
		for _, r := range c.Requests {
			costs.Add(float64(r.CostNS) / 1e6)
			sizes.Add(float64(r.Size))
		}
	}
	fmt.Printf("trace %q: window %v, %d conns, %d requests across %d ports\n",
		tr.Name, time.Duration(tr.DurationNS), len(tr.Conns), tr.Requests(), len(ports))
	fmt.Printf("requests/conn: P50 %.0f  P99 %.0f\n", perConn.Percentile(50), perConn.Percentile(99))
	fmt.Printf("cost (ms):     P50 %s  P90 %s  P99 %s\n",
		stats.FormatMS(costs.Percentile(50)), stats.FormatMS(costs.Percentile(90)), stats.FormatMS(costs.Percentile(99)))
	fmt.Printf("size (B):      P50 %.0f  P90 %.0f  P99 %.0f\n",
		sizes.Percentile(50), sizes.Percentile(90), sizes.Percentile(99))
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	modeName := fs.String("mode", "hermes", "exclusive|exclusive-rr|herd|accept-mutex|reuseport|hermes|hermes-native|dispatcher")
	rate := fs.Float64("rate", 1, "replay speed multiplier")
	workers := fs.Int("workers", 16, "LB workers")
	seed := fs.Int64("seed", 1, "simulation seed")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	tr := readTrace(fs.Arg(0))

	mode, err := parseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	ports := map[uint16]bool{}
	for i := range tr.Conns {
		ports[tr.Conns[i].Port] = true
	}
	var portList []uint16
	for p := uint16(0); portList == nil || len(portList) < len(ports); p++ {
		if ports[p] {
			portList = append(portList, p)
		}
		if p == 65535 {
			break
		}
	}

	eng := sim.NewEngine(*seed)
	cfg := l7lb.DefaultConfig(mode)
	cfg.Workers = *workers
	cfg.Ports = portList
	lb, err := l7lb.New(eng, cfg)
	if err != nil {
		fatal(err)
	}
	lb.Start()
	scheduled := tr.Replay(lb, *rate)
	window := time.Duration(float64(tr.DurationNS) / *rate)
	eng.RunUntil(int64(window))
	inWindow := lb.Completed
	eng.RunUntil(int64(window) + int64(5*time.Second))

	fmt.Printf("replayed %q at %.1fx under %s: %d/%d requests completed\n",
		tr.Name, *rate, mode, lb.Completed, scheduled)
	fmt.Printf("latency: avg %s ms  P99 %s ms; throughput %.1f kRPS\n",
		stats.FormatMS(lb.Latency.Mean()), stats.FormatMS(lb.Latency.Percentile(99)),
		float64(inWindow)/window.Seconds()/1000)
	fmt.Printf("per-worker conns at end: %v\n", lb.WorkerConnCounts())
}

func parseMode(s string) (l7lb.Mode, error) {
	for _, m := range []l7lb.Mode{
		l7lb.ModeExclusive, l7lb.ModeExclusiveRR, l7lb.ModeHerd, l7lb.ModeAcceptMutex,
		l7lb.ModeReuseport, l7lb.ModeHermes, l7lb.ModeHermesNative, l7lb.ModeDispatcher,
	} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}
