// Checkspans validates a hermes-bench -spans dump (either encoding: Chrome
// trace-event JSON or compact JSONL). It checks the schema — known span
// kinds, legal tracks, non-negative durations — plus the per-connection
// lifecycle invariants the tracer promises (docs/TRACING.md): sim-timestamps
// monotone along each connection's span chain, accept-queue residency nested
// between SYN and close, every notify-wait abutting the serve it woke, and
// close last. CI runs it as the tracing smoke test, the way checkmetrics
// smokes the telemetry dump.
//
//	go run ./cmd/checkspans dump.json
package main

import (
	"fmt"
	"os"
	"sort"

	"hermes/internal/tracing"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: checkspans <dump.json|dump.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fatal(err.Error())
	}
	defer f.Close()
	spans, meta, err := tracing.ReadSpans(f)
	if err != nil {
		fatal("not a span dump: " + err.Error())
	}
	if len(spans) == 0 {
		fatal("dump has no spans")
	}

	byConn := make(map[uint64][]tracing.Span)
	for i, s := range spans {
		if err := checkSpan(s); err != nil {
			fatal(fmt.Sprintf("span %d (%s): %v", i, s.Kind, err))
		}
		if s.Conn != 0 {
			byConn[s.Conn] = append(byConn[s.Conn], s)
		}
	}
	conns := make([]uint64, 0, len(byConn))
	for id := range byConn {
		conns = append(conns, id)
	}
	sort.Slice(conns, func(i, j int) bool { return conns[i] < conns[j] })
	for _, id := range conns {
		if err := checkConn(byConn[id]); err != nil {
			fatal(fmt.Sprintf("conn %d: %v", id, err))
		}
	}
	if meta.ConnsKept > 0 && len(byConn) == 0 {
		fatal(fmt.Sprintf("meta says %d connections kept but no conn-scoped spans", meta.ConnsKept))
	}
	fmt.Printf("ok: %d spans, %d connections (meta: %d/%d conns kept, %d committed, %d dropped)\n",
		len(spans), len(byConn), meta.ConnsKept, meta.ConnsSeen, meta.SpansCommitted, meta.SpansDropped)
}

// checkSpan enforces the per-span schema: a known kind on its legal track
// with sane timestamps.
func checkSpan(s tracing.Span) error {
	if _, ok := tracing.KindFromName(s.Kind.String()); !ok {
		return fmt.Errorf("unknown kind %d", int(s.Kind))
	}
	if s.StartNS < 0 {
		return fmt.Errorf("negative start %d", s.StartNS)
	}
	if s.EndNS < s.StartNS {
		return fmt.Errorf("end %d before start %d", s.EndNS, s.StartNS)
	}
	kernel := s.Worker == tracing.KernelTrack
	switch s.Kind {
	case tracing.KindSYN, tracing.KindDrop, tracing.KindSelmapSync,
		tracing.KindProbe, tracing.KindBackendState:
		if !kernel {
			return fmt.Errorf("must sit on the kernel track, got worker %d", s.Worker)
		}
	case tracing.KindFault:
		// Fault/recovery instants sit on the affected worker's track, or on
		// the kernel track for LB-wide faults (selmap sync stalls).
		if !kernel && s.Worker < 0 {
			return fmt.Errorf("must sit on a worker or kernel track, got %d", s.Worker)
		}
	default:
		if kernel || s.Worker < 0 {
			return fmt.Errorf("must sit on a worker track, got %d", s.Worker)
		}
	}
	switch s.Kind {
	case tracing.KindSYN, tracing.KindDrop:
		if _, ok := tracing.ViaFromName(tracing.Via(s.Arg).String()); !ok {
			return fmt.Errorf("unknown via %d", s.Arg)
		}
	case tracing.KindAcceptQueue, tracing.KindNotifyWait, tracing.KindServe, tracing.KindWakeup:
		// Duration spans; instants of these kinds are legal (zero residency
		// or back-to-back wakeup), so nothing beyond End >= Start above.
	}
	if s.Conn == 0 {
		switch s.Kind {
		case tracing.KindDrop, tracing.KindWakeup, tracing.KindSchedule, tracing.KindSelmapSync, tracing.KindFault,
			tracing.KindProbe, tracing.KindBackendState:
		default:
			return fmt.Errorf("conn-scoped kind with no connection id")
		}
	}
	return nil
}

// checkConn enforces lifecycle nesting along one connection's span chain.
func checkConn(spans []tracing.Span) error {
	tracing.SortSpans(spans)
	var syn, queue, accept, close_ *tracing.Span
	var serves, notifies []tracing.Span
	for i := range spans {
		s := &spans[i]
		switch s.Kind {
		case tracing.KindSYN:
			if syn != nil {
				return fmt.Errorf("duplicate syn")
			}
			syn = s
		case tracing.KindAcceptQueue:
			if queue != nil {
				return fmt.Errorf("duplicate accept_queue")
			}
			queue = s
		case tracing.KindAccept:
			if accept != nil {
				return fmt.Errorf("duplicate accept")
			}
			accept = s
		case tracing.KindClose:
			if close_ != nil {
				return fmt.Errorf("duplicate close")
			}
			close_ = s
		case tracing.KindServe:
			serves = append(serves, *s)
		case tracing.KindNotifyWait:
			notifies = append(notifies, *s)
		default:
			return fmt.Errorf("unexpected %s on a connection chain", s.Kind)
		}
	}
	if syn != nil && queue != nil && queue.StartNS < syn.StartNS {
		return fmt.Errorf("accept_queue starts %d, before syn %d", queue.StartNS, syn.StartNS)
	}
	if queue != nil && accept != nil && accept.StartNS != queue.EndNS {
		return fmt.Errorf("accept instant %d does not end the accept_queue span %d", accept.StartNS, queue.EndNS)
	}
	acceptedAt := int64(-1)
	if queue != nil {
		acceptedAt = queue.EndNS
	}
	// Each notify_wait must abut the serve it woke: same timestamp where
	// the wait ends and service begins.
	serveStarts := make(map[int64]bool, len(serves))
	for _, s := range serves {
		if s.StartNS < acceptedAt {
			return fmt.Errorf("serve at %d precedes accept at %d", s.StartNS, acceptedAt)
		}
		serveStarts[s.StartNS] = true
	}
	for _, n := range notifies {
		if !serveStarts[n.EndNS] {
			return fmt.Errorf("notify_wait ending %d has no serve starting there", n.EndNS)
		}
	}
	if close_ != nil {
		for _, s := range spans {
			if s.Kind != tracing.KindClose && s.EndNS > close_.StartNS {
				return fmt.Errorf("%s ends %d, after close %d", s.Kind, s.EndNS, close_.StartNS)
			}
		}
	}
	return nil
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "checkspans: "+msg)
	os.Exit(1)
}
