#!/usr/bin/env bash
# End-to-end smoke test for the real proxy: two local backends, a hermes-lb
# instance with a worker-crash fault injected, live load, a backend kill and
# restart, and hermesctl assertions that failover and recovery actually show
# up through the admin API. CI runs this after the unit suites; it needs no
# tools beyond bash and the go toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

LISTEN=127.0.0.1:18080
ADMIN=127.0.0.1:19900
B1=127.0.0.1:19001
B2=127.0.0.1:19002

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "e2e: FAIL: $*" >&2; exit 1; }

echo "e2e: building hermes-lb, hermesctl, hermes-top, checkprom"
go build -o "$WORK/hermes-lb" ./cmd/hermes-lb
go build -o "$WORK/hermesctl" ./cmd/hermesctl
go build -o "$WORK/hermes-top" ./cmd/hermes-top
go build -o "$WORK/checkprom" ./cmd/checkprom

ctl() { "$WORK/hermesctl" -admin "$ADMIN" "$@"; }

# One HTTP request through the proxy via bash's /dev/tcp (no curl needed).
# Prints the status line; fails the pipeline if the connection is refused.
req() {
  local path=${1:-/} out
  out=$(exec 3<>"/dev/tcp/${LISTEN%:*}/${LISTEN#*:}" &&
    printf 'GET %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' "$path" >&3 &&
    head -n1 <&3 && exec 3<&- 3>&-)
  echo "$out"
}

# load N: issue N requests, count non-200s.
load() {
  local n=$1 bad=0 line
  for ((i = 0; i < n; i++)); do
    line=$(req "/r$i" || echo "CONNECT-FAIL")
    case $line in *" 200 "*) ;; *) bad=$((bad + 1)); echo "e2e:   request $i -> $line" ;; esac
  done
  echo "$bad"
}

start_backend() {
  "$WORK/hermes-lb" -serve-backend "$1" >"$WORK/backend-$2.log" 2>&1 &
  PIDS+=($!)
  echo $!
}

echo "e2e: starting backends on $B1 and $B2"
start_backend "$B1" b1 >/dev/null
B2_PID=$(start_backend "$B2" b2)

cat >"$WORK/config.yaml" <<EOF
server:
  listen: $LISTEN
  admin_listen: $ADMIN
  workers: 4
  drain_timeout: 5s
backends:
  - address: $B1
  - address: $B2
load_balancing:
  algorithm: round-robin
health_check:
  enabled: true
  path: /health
  interval: 300ms
  timeout: 200ms
  healthy_threshold: 2
  unhealthy_threshold: 2
circuit_breaker:
  enabled: true
  failure_threshold: 3
  success_threshold: 1
  timeout: 1s
buffer:
  retries: 2
EOF

echo "e2e: starting hermes-lb with a worker-crash fault (crash@1s:w1:restart=2s)"
"$WORK/hermes-lb" -config "$WORK/config.yaml" -faults "crash@1s:w1:restart=2s" \
  >"$WORK/proxy.log" 2>&1 &
PROXY_PID=$!
PIDS+=($PROXY_PID)

for i in $(seq 1 50); do
  ctl status >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { cat "$WORK/proxy.log" >&2; fail "admin API never came up"; }
  sleep 0.1
done
echo "e2e: proxy up; admin answers"

# Phase 1: both backends healthy — load must be clean, status ok, and the
# injected worker crash+restart must not lose requests.
bad=$(load 40 | tail -n1)
[ "$bad" = 0 ] || fail "$bad/40 requests failed with both backends up"
ctl status | grep -q 'status: *ok' || { ctl status; fail "status not ok with both backends up"; }
ctl backends | grep -c yes | grep -qx 2 || { ctl backends; fail "expected 2 healthy backends"; }
echo "e2e: phase 1 ok (40/40 served through worker crash window)"

# Phase 2: kill backend 2. Retries must cover the corpse (zero lost), the
# prober must evict it within ~3 intervals, and the breaker should trip.
kill "$B2_PID"
wait "$B2_PID" 2>/dev/null || true
bad=$(load 40 | tail -n1)
[ "$bad" = 0 ] || fail "$bad/40 requests failed during backend kill (retries should cover)"

for i in $(seq 1 50); do
  ctl backends | grep "$B2" | grep -q NO && break
  [ "$i" = 50 ] && { ctl backends; fail "dead backend never marked unhealthy"; }
  sleep 0.1
done
ctl status | grep -q 'status: *degraded' || { ctl status; fail "status not degraded with a dead backend"; }
ctl circuits | grep -q "$B2" || { ctl circuits; fail "circuits view missing $B2" ; }
echo "e2e: phase 2 ok (backend death covered by retries, evicted by prober)"

# Phase 3: resurrect backend 2 on the same address; the prober must readmit
# it and status must return to ok.
start_backend "$B2" b2-again >/dev/null
for i in $(seq 1 100); do
  ctl status | grep -q 'status: *ok' && break
  [ "$i" = 100 ] && { ctl backends; fail "backend never recovered"; }
  sleep 0.1
done
bad=$(load 20 | tail -n1)
[ "$bad" = 0 ] || fail "$bad/20 requests failed after recovery"
echo "e2e: phase 3 ok (backend readmitted, pool back to full strength)"

# Phase 4: the live metrics plane. Scrape /metrics while load is in flight
# and run it through the strict OpenMetrics conformance checker; the SLO
# endpoint and the dashboards must render off the same plane.
load 20 >/dev/null &
LOAD_PID=$!
ctl metrics >"$WORK/scrape.prom"
wait "$LOAD_PID" || true
"$WORK/checkprom" "$WORK/scrape.prom" >/dev/null || fail "/metrics failed OpenMetrics conformance"
grep -q 'hermes_proxy_request_latency_ns_bucket' "$WORK/scrape.prom" ||
  fail "exposition missing the latency histogram family"
grep -q 'hermes_slo_state' "$WORK/scrape.prom" || fail "exposition missing the SLO gauges"
# ok normally; warn is legitimate for a tick or two — the injected worker
# crash and the phase-2 backend kill can leave a few slow requests in the
# warn windows. page (or a missing verdict) is a real failure.
ctl slo | grep -Eq 'state: *(ok|warn)' || { ctl slo; fail "slo monitor paging (or absent) under clean load"; }
ctl status | grep -Eq 'slo: *(ok|warn)' || { ctl status; fail "status missing the SLO verdict"; }
"$WORK/hermes-top" -admin "$ADMIN" -interval 200ms -once >"$WORK/top.out" ||
  fail "hermes-top -once failed"
grep -q 'WORKER' "$WORK/top.out" && grep -q "$B1" "$WORK/top.out" ||
  { cat "$WORK/top.out"; fail "hermes-top frame incomplete"; }
ctl -interval 200ms -count 2 watch >"$WORK/watch.out" || fail "hermesctl watch failed"
[ "$(wc -l <"$WORK/watch.out")" -eq 3 ] || { cat "$WORK/watch.out"; fail "watch should print a header + 2 rows"; }
echo "e2e: phase 4 ok (scrape conformant, slo ok, dashboards render)"

# Final: stats must reconcile, and shutdown must drain cleanly (exit 0).
ctl stats | grep -q 'served:' || fail "stats rendering broken"
served=$(ctl -json stats | sed -n 's/.*"served": *\([0-9]*\).*/\1/p')
[ "${served:-0}" -ge 100 ] || fail "served=$served, want >= 100"
ctl stats | grep -q 'selection bitmap:' || fail "scheduler state missing from stats"

kill -TERM "$PROXY_PID"
if ! wait "$PROXY_PID"; then
  cat "$WORK/proxy.log" >&2
  fail "proxy exited non-zero on graceful shutdown"
fi
echo "e2e: PASS (served=$served, graceful drain clean)"
