package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{TTL: 64, Protocol: ProtoTCP, SrcIP: 0x01020304, DstIP: 0x0a0b0c0d, TotalLen: 20, ID: 7}
	wire := h.Marshal(nil)
	if len(wire) != IPv4HeaderLen {
		t.Fatalf("len %d", len(wire))
	}
	back, payload, err := UnmarshalIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip: %+v != %+v", back, h)
	}
	if len(payload) != 0 {
		t.Fatal("payload should be empty")
	}
}

func TestIPv4ChecksumValidation(t *testing.T) {
	h := IPv4{TTL: 64, Protocol: ProtoUDP, SrcIP: 1, DstIP: 2, TotalLen: 20}
	wire := h.Marshal(nil)
	wire[8] ^= 0xff // corrupt TTL
	if _, _, err := UnmarshalIPv4(wire); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestIPv4Malformed(t *testing.T) {
	if _, _, err := UnmarshalIPv4([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated accepted")
	}
	bad := IPv4{TTL: 1, Protocol: 6, TotalLen: 20}.Marshal(nil)
	bad[0] = 0x46 // IHL 6 unsupported
	if _, _, err := UnmarshalIPv4(bad); err == nil {
		t.Fatal("IHL6 accepted")
	}
	short := IPv4{TTL: 1, Protocol: 6, TotalLen: 100}.Marshal(nil) // claims 100, has 20
	if _, _, err := UnmarshalIPv4(short); err == nil {
		t.Fatal("overlong TotalLen accepted")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	f := func(src, dst uint16, seq, ack uint32, win uint16) bool {
		h := TCP{SrcPort: src, DstPort: dst, Seq: seq, Ack: ack, Flags: FlagSYN | FlagACK, Window: win}
		back, payload, err := UnmarshalTCP(h.Marshal(nil))
		return err == nil && back == h && len(payload) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 1000, DstPort: VXLANPort, Length: UDPHeaderLen + 4}
	wire := u.Marshal(nil)
	wire = append(wire, 1, 2, 3, 4)
	back, payload, err := UnmarshalUDP(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back != u || !bytes.Equal(payload, []byte{1, 2, 3, 4}) {
		t.Fatalf("round trip: %+v %v", back, payload)
	}
	bad := UDP{Length: 4}.Marshal(nil)
	if _, _, err := UnmarshalUDP(bad); err == nil {
		t.Fatal("undersized length accepted")
	}
}

func TestVXLANRoundTrip(t *testing.T) {
	f := func(vni uint32) bool {
		vni &= 0xffffff
		back, inner, err := UnmarshalVXLAN(VXLAN{VNI: vni}.Marshal(nil))
		return err == nil && back.VNI == vni && len(inner) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	noFlag := make([]byte, 8)
	if _, _, err := UnmarshalVXLAN(noFlag); err == nil {
		t.Fatal("missing I flag accepted")
	}
}

func TestChecksumRFC1071(t *testing.T) {
	// Classic example from RFC 1071 discussions.
	data := []byte{0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
		0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7}
	if got := Checksum(data); got != 0xb861 {
		t.Fatalf("checksum = %#x, want 0xb861", got)
	}
	// Validating a header with its checksum in place yields zero.
	data[10], data[11] = 0xb8, 0x61
	if got := Checksum(data); got != 0 {
		t.Fatalf("self-check = %#x, want 0", got)
	}
	// Odd-length input.
	if Checksum([]byte{0xff}) != ^uint16(0xff00) {
		t.Fatal("odd-length checksum wrong")
	}
}

func TestEncapDecapPipeline(t *testing.T) {
	inner := TCPSegment(0xc0a80001, 0x0a000001,
		TCP{SrcPort: 54321, DstPort: 443, Seq: 1000, Flags: FlagSYN, Window: 65535},
		nil)
	frame := EncapVXLAN(0x0b000001, 0x0b000002, 0x00abcdef, inner)

	vni, gotInner, err := DecapVXLAN(frame)
	if err != nil {
		t.Fatal(err)
	}
	if vni != 0x00abcdef {
		t.Fatalf("vni = %#x", vni)
	}
	if !bytes.Equal(gotInner, inner) {
		t.Fatal("inner frame mangled")
	}
	ip, tcp, payload, err := ParseTCPSegment(gotInner)
	if err != nil {
		t.Fatal(err)
	}
	if ip.SrcIP != 0xc0a80001 || tcp.DstPort != 443 || tcp.Flags != FlagSYN || len(payload) != 0 {
		t.Fatalf("parsed: %+v %+v", ip, tcp)
	}
}

func TestDecapRejectsNonVXLAN(t *testing.T) {
	// TCP (not UDP) outer.
	notUDP := TCPSegment(1, 2, TCP{SrcPort: 1, DstPort: 2}, nil)
	if _, _, err := DecapVXLAN(notUDP); err == nil {
		t.Fatal("TCP outer accepted")
	}
	// UDP to the wrong port.
	udpLen := UDPHeaderLen + VXLANHeaderLen
	frame := IPv4{TTL: 64, Protocol: ProtoUDP, SrcIP: 1, DstIP: 2,
		TotalLen: uint16(IPv4HeaderLen + udpLen)}.Marshal(nil)
	frame = UDP{SrcPort: 1, DstPort: 53, Length: uint16(udpLen)}.Marshal(frame)
	frame = VXLAN{VNI: 1}.Marshal(frame)
	if _, _, err := DecapVXLAN(frame); err == nil {
		t.Fatal("wrong UDP port accepted")
	}
}

func TestPayloadCarriage(t *testing.T) {
	body := []byte("GET / HTTP/1.1\r\nHost: t\r\n\r\n")
	seg := TCPSegment(1, 2, TCP{SrcPort: 9, DstPort: 80, Flags: FlagPSH | FlagACK}, body)
	_, _, payload, err := ParseTCPSegment(seg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, body) {
		t.Fatalf("payload %q", payload)
	}
}

func BenchmarkEncapDecap(b *testing.B) {
	inner := TCPSegment(1, 2, TCP{SrcPort: 3, DstPort: 4, Flags: FlagSYN}, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frame := EncapVXLAN(5, 6, 7, inner)
		if _, _, err := DecapVXLAN(frame); err != nil {
			b.Fatal(err)
		}
	}
}
