package packet

// The mempool: fixed-size frame buffers on a free list, the DPDK idiom.
// Traffic drivers that build a frame per request used to allocate (and
// garbage-collect) every buffer; a FramePool caps steady-state allocation at
// peak in-flight frames instead of total frame count. Single-goroutine by
// design, like everything on the simulated data path — parallel harness
// cells each own their stacks and pools.

// FramePool recycles frame buffers of a fixed capacity. Get returns an
// empty buffer ready to append into; Put returns it once the frame has been
// consumed.
type FramePool struct {
	frameSize int
	free      [][]byte

	// Gets / Puts / Misses count pool traffic: Misses are Gets served by a
	// fresh allocation (pool empty), the number a warmed steady state keeps
	// at zero.
	Gets   uint64
	Puts   uint64
	Misses uint64
}

// DefaultFrameSize fits the largest frame the cluster pipeline builds —
// outer IPv4+UDP+VXLAN around an inner IPv4+TCP segment with a typical
// request payload — with headroom, while staying cache-friendly.
const DefaultFrameSize = 2048

// NewFramePool creates a pool of frameSize-capacity buffers (DefaultFrameSize
// if frameSize ≤ 0), pre-populating prealloc of them.
func NewFramePool(frameSize, prealloc int) *FramePool {
	if frameSize <= 0 {
		frameSize = DefaultFrameSize
	}
	p := &FramePool{frameSize: frameSize}
	if prealloc > 0 {
		p.free = make([][]byte, 0, prealloc)
		for i := 0; i < prealloc; i++ {
			p.free = append(p.free, make([]byte, 0, frameSize))
		}
	}
	return p
}

// FrameSize returns the fixed buffer capacity.
func (p *FramePool) FrameSize() int { return p.frameSize }

// Len returns the number of pooled buffers currently free.
func (p *FramePool) Len() int { return len(p.free) }

// Get pops a pooled buffer (length 0, capacity ≥ FrameSize), allocating a
// fresh one only when the pool is empty.
func (p *FramePool) Get() []byte {
	p.Gets++
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return b
	}
	p.Misses++
	return make([]byte, 0, p.frameSize)
}

// Put returns a buffer to the pool. Undersized buffers (not from this
// pool, or a smaller class) are dropped rather than recycled, so every
// pooled buffer keeps the invariant cap ≥ FrameSize.
func (p *FramePool) Put(b []byte) {
	if cap(b) < p.frameSize {
		return
	}
	p.Puts++
	p.free = append(p.free, b[:0])
}
