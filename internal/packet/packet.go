// Package packet implements the wire formats of the ingress pipeline in
// Fig. 1: Internet traffic reaches the cloud gateway, which encapsulates it
// in VXLAN with the tenant's VNI; the L4 LB decapsulates, NATs the
// destination port to the tenant's dedicated L7 port, and forwards the
// inner TCP flow to an L7 LB device.
//
// Only the fields that pipeline needs are modelled — IPv4 (no options), TCP
// header (no options beyond the fixed part), UDP, and VXLAN — but they are
// real byte-level codecs with checksums where the pipeline depends on them,
// so internal/cluster can push actual frames through the gateway → L4 → L7
// path.
package packet

import (
	"encoding/binary"
	"fmt"
)

// Header sizes in bytes.
const (
	IPv4HeaderLen  = 20
	TCPHeaderLen   = 20
	UDPHeaderLen   = 8
	VXLANHeaderLen = 8
	// VXLANPort is the IANA VXLAN UDP port.
	VXLANPort = 4789
)

// TCP flags.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// IPv4 is the fixed 20-byte header (no options).
type IPv4 struct {
	TTL      uint8
	Protocol uint8 // 6 = TCP, 17 = UDP
	SrcIP    uint32
	DstIP    uint32
	// TotalLen covers header + payload.
	TotalLen uint16
	// ID is the identification field (diagnostics only here).
	ID uint16
}

// Protocol numbers.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// extend grows dst by n zeroed bytes. Unlike append(dst, make([]byte, n)...),
// it reuses existing capacity instead of allocating a temporary — the marshal
// hot path is allocation-free whenever the caller provisions the buffer
// (FramePool frames, or any adequately-capped scratch).
func extend(dst []byte, n int) []byte {
	if l := len(dst); l+n <= cap(dst) {
		dst = dst[:l+n]
		clear(dst[l:])
		return dst
	}
	return append(dst, make([]byte, n)...)
}

// Marshal appends the header to dst with a correct checksum.
func (h IPv4) Marshal(dst []byte) []byte {
	off := len(dst)
	dst = extend(dst, IPv4HeaderLen)
	b := dst[off:]
	b[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	b[8] = h.TTL
	b[9] = h.Protocol
	binary.BigEndian.PutUint32(b[12:], h.SrcIP)
	binary.BigEndian.PutUint32(b[16:], h.DstIP)
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:IPv4HeaderLen]))
	return dst
}

// UnmarshalIPv4 parses and validates an IPv4 header, returning the header
// and the payload slice.
func UnmarshalIPv4(b []byte) (IPv4, []byte, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4{}, nil, fmt.Errorf("packet: ipv4 truncated (%d bytes)", len(b))
	}
	if b[0] != 0x45 {
		return IPv4{}, nil, fmt.Errorf("packet: unsupported version/IHL %#x", b[0])
	}
	if Checksum(b[:IPv4HeaderLen]) != 0 {
		return IPv4{}, nil, fmt.Errorf("packet: ipv4 checksum mismatch")
	}
	h := IPv4{
		TotalLen: binary.BigEndian.Uint16(b[2:]),
		ID:       binary.BigEndian.Uint16(b[4:]),
		TTL:      b[8],
		Protocol: b[9],
		SrcIP:    binary.BigEndian.Uint32(b[12:]),
		DstIP:    binary.BigEndian.Uint32(b[16:]),
	}
	if int(h.TotalLen) > len(b) {
		return IPv4{}, nil, fmt.Errorf("packet: ipv4 total length %d exceeds buffer %d", h.TotalLen, len(b))
	}
	return h, b[IPv4HeaderLen:h.TotalLen], nil
}

// TCP is the fixed 20-byte header (no options).
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
}

// Marshal appends the header to dst. The checksum field is left zero: the
// simulated pipeline validates the outer IPv4 checksum and VXLAN framing,
// and real NICs offload the TCP checksum anyway.
func (t TCP) Marshal(dst []byte) []byte {
	off := len(dst)
	dst = extend(dst, TCPHeaderLen)
	b := dst[off:]
	binary.BigEndian.PutUint16(b[0:], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:], t.DstPort)
	binary.BigEndian.PutUint32(b[4:], t.Seq)
	binary.BigEndian.PutUint32(b[8:], t.Ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = t.Flags
	binary.BigEndian.PutUint16(b[14:], t.Window)
	return dst
}

// UnmarshalTCP parses a TCP header, returning the header and payload.
func UnmarshalTCP(b []byte) (TCP, []byte, error) {
	if len(b) < TCPHeaderLen {
		return TCP{}, nil, fmt.Errorf("packet: tcp truncated (%d bytes)", len(b))
	}
	dataOff := int(b[12]>>4) * 4
	if dataOff < TCPHeaderLen || dataOff > len(b) {
		return TCP{}, nil, fmt.Errorf("packet: bad tcp data offset %d", dataOff)
	}
	return TCP{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Seq:     binary.BigEndian.Uint32(b[4:]),
		Ack:     binary.BigEndian.Uint32(b[8:]),
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:]),
	}, b[dataOff:], nil
}

// UDP is the 8-byte header.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Length  uint16 // header + payload
}

// Marshal appends the header to dst (checksum 0 = unused, legal for IPv4).
func (u UDP) Marshal(dst []byte) []byte {
	off := len(dst)
	dst = extend(dst, UDPHeaderLen)
	b := dst[off:]
	binary.BigEndian.PutUint16(b[0:], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:], u.DstPort)
	binary.BigEndian.PutUint16(b[4:], u.Length)
	return dst
}

// UnmarshalUDP parses a UDP header, returning the header and payload.
func UnmarshalUDP(b []byte) (UDP, []byte, error) {
	if len(b) < UDPHeaderLen {
		return UDP{}, nil, fmt.Errorf("packet: udp truncated (%d bytes)", len(b))
	}
	u := UDP{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Length:  binary.BigEndian.Uint16(b[4:]),
	}
	if int(u.Length) < UDPHeaderLen || int(u.Length) > len(b) {
		return UDP{}, nil, fmt.Errorf("packet: bad udp length %d", u.Length)
	}
	return u, b[UDPHeaderLen:u.Length], nil
}

// VXLAN is the 8-byte VXLAN header (RFC 7348): tenant traffic is
// distinguished by the 24-bit VNI (Fig. 1).
type VXLAN struct {
	VNI uint32 // 24 bits
}

// Marshal appends the header to dst.
func (v VXLAN) Marshal(dst []byte) []byte {
	off := len(dst)
	dst = extend(dst, VXLANHeaderLen)
	b := dst[off:]
	b[0] = 0x08 // I flag: VNI valid
	b[4] = byte(v.VNI >> 16)
	b[5] = byte(v.VNI >> 8)
	b[6] = byte(v.VNI)
	return dst
}

// UnmarshalVXLAN parses a VXLAN header, returning the VNI and inner frame.
func UnmarshalVXLAN(b []byte) (VXLAN, []byte, error) {
	if len(b) < VXLANHeaderLen {
		return VXLAN{}, nil, fmt.Errorf("packet: vxlan truncated (%d bytes)", len(b))
	}
	if b[0]&0x08 == 0 {
		return VXLAN{}, nil, fmt.Errorf("packet: vxlan I flag not set")
	}
	vni := uint32(b[4])<<16 | uint32(b[5])<<8 | uint32(b[6])
	return VXLAN{VNI: vni}, b[VXLANHeaderLen:], nil
}

// Checksum computes the RFC 1071 internet checksum over b (with the
// checksum field bytes included as stored; marshal with the field zeroed).
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// EncapVXLAN builds the full gateway-side frame: outer IPv4+UDP+VXLAN
// around an inner IPv4+TCP segment (Fig. 1's encapsulated tenant traffic).
func EncapVXLAN(outerSrc, outerDst uint32, vni uint32, inner []byte) []byte {
	totalLen := IPv4HeaderLen + UDPHeaderLen + VXLANHeaderLen + len(inner)
	return AppendEncapVXLAN(make([]byte, 0, totalLen), outerSrc, outerDst, vni, inner)
}

// AppendEncapVXLAN is EncapVXLAN into a caller-provided buffer: with
// sufficient capacity (a FramePool frame) it does not allocate.
func AppendEncapVXLAN(dst []byte, outerSrc, outerDst uint32, vni uint32, inner []byte) []byte {
	udpLen := UDPHeaderLen + VXLANHeaderLen + len(inner)
	totalLen := IPv4HeaderLen + udpLen
	dst = IPv4{
		TTL: 64, Protocol: ProtoUDP,
		SrcIP: outerSrc, DstIP: outerDst,
		TotalLen: uint16(totalLen),
	}.Marshal(dst)
	dst = UDP{SrcPort: 49152, DstPort: VXLANPort, Length: uint16(udpLen)}.Marshal(dst)
	dst = VXLAN{VNI: vni}.Marshal(dst)
	return append(dst, inner...)
}

// AppendEncapTCPFrame builds the complete gateway frame — outer
// IPv4+UDP+VXLAN directly around an inner IPv4+TCP segment — in one pass
// into dst, skipping the intermediate inner-segment buffer EncapVXLAN over
// TCPSegment would need. The cluster client's steady-state frame build is
// allocation-free with a pooled dst.
func AppendEncapTCPFrame(dst []byte, outerSrc, outerDst, vni, srcIP, dstIP uint32, t TCP, payload []byte) []byte {
	innerLen := IPv4HeaderLen + TCPHeaderLen + len(payload)
	udpLen := UDPHeaderLen + VXLANHeaderLen + innerLen
	totalLen := IPv4HeaderLen + udpLen
	dst = IPv4{
		TTL: 64, Protocol: ProtoUDP,
		SrcIP: outerSrc, DstIP: outerDst,
		TotalLen: uint16(totalLen),
	}.Marshal(dst)
	dst = UDP{SrcPort: 49152, DstPort: VXLANPort, Length: uint16(udpLen)}.Marshal(dst)
	dst = VXLAN{VNI: vni}.Marshal(dst)
	return AppendTCPSegment(dst, srcIP, dstIP, t, payload)
}

// DecapVXLAN unwraps a gateway frame, returning the VNI and inner packet.
func DecapVXLAN(frame []byte) (vni uint32, inner []byte, err error) {
	ip, payload, err := UnmarshalIPv4(frame)
	if err != nil {
		return 0, nil, err
	}
	if ip.Protocol != ProtoUDP {
		return 0, nil, fmt.Errorf("packet: outer protocol %d, want UDP", ip.Protocol)
	}
	udp, payload, err := UnmarshalUDP(payload)
	if err != nil {
		return 0, nil, err
	}
	if udp.DstPort != VXLANPort {
		return 0, nil, fmt.Errorf("packet: outer UDP port %d, want %d", udp.DstPort, VXLANPort)
	}
	vx, inner, err := UnmarshalVXLAN(payload)
	if err != nil {
		return 0, nil, err
	}
	return vx.VNI, inner, nil
}

// TCPSegment builds an inner IPv4+TCP packet.
func TCPSegment(srcIP, dstIP uint32, t TCP, payload []byte) []byte {
	totalLen := IPv4HeaderLen + TCPHeaderLen + len(payload)
	return AppendTCPSegment(make([]byte, 0, totalLen), srcIP, dstIP, t, payload)
}

// AppendTCPSegment is TCPSegment into a caller-provided buffer: with
// sufficient capacity it does not allocate.
func AppendTCPSegment(dst []byte, srcIP, dstIP uint32, t TCP, payload []byte) []byte {
	totalLen := IPv4HeaderLen + TCPHeaderLen + len(payload)
	dst = IPv4{
		TTL: 64, Protocol: ProtoTCP,
		SrcIP: srcIP, DstIP: dstIP,
		TotalLen: uint16(totalLen),
	}.Marshal(dst)
	dst = t.Marshal(dst)
	return append(dst, payload...)
}

// ParseTCPSegment parses an inner IPv4+TCP packet.
func ParseTCPSegment(b []byte) (IPv4, TCP, []byte, error) {
	ip, payload, err := UnmarshalIPv4(b)
	if err != nil {
		return IPv4{}, TCP{}, nil, err
	}
	if ip.Protocol != ProtoTCP {
		return IPv4{}, TCP{}, nil, fmt.Errorf("packet: inner protocol %d, want TCP", ip.Protocol)
	}
	t, data, err := UnmarshalTCP(payload)
	if err != nil {
		return IPv4{}, TCP{}, nil, err
	}
	return ip, t, data, nil
}
