package packet

import (
	"bytes"
	"testing"
)

// TestMarshalIntoCapacityZeroAlloc pins the slice-extension fix: every
// marshal into a buffer with sufficient capacity must not allocate. The old
// append(dst, make([]byte, n)...) idiom allocated the temporary even when
// cap(dst) sufficed.
func TestMarshalIntoCapacityZeroAlloc(t *testing.T) {
	buf := make([]byte, 0, DefaultFrameSize)
	payload := bytes.Repeat([]byte{0xab}, 200)
	seg := TCPSegment(3, 4, TCP{SrcPort: 1, DstPort: 2, Flags: FlagPSH}, payload)

	cases := []struct {
		name string
		fn   func()
	}{
		{"ipv4", func() { buf = IPv4{TTL: 64, Protocol: ProtoTCP, SrcIP: 1, DstIP: 2, TotalLen: 40}.Marshal(buf[:0]) }},
		{"tcp", func() { buf = TCP{SrcPort: 1, DstPort: 2, Flags: FlagSYN}.Marshal(buf[:0]) }},
		{"udp", func() { buf = UDP{SrcPort: 1, DstPort: 2, Length: 8}.Marshal(buf[:0]) }},
		{"vxlan", func() { buf = VXLAN{VNI: 7}.Marshal(buf[:0]) }},
		{"tcp-segment", func() { buf = AppendTCPSegment(buf[:0], 3, 4, TCP{SrcPort: 1, DstPort: 2}, payload) }},
		{"encap-vxlan", func() { buf = AppendEncapVXLAN(buf[:0], 1, 2, 7, seg) }},
		{"encap-tcp-frame", func() {
			buf = AppendEncapTCPFrame(buf[:0], 1, 2, 7, 3, 4, TCP{SrcPort: 1, DstPort: 2, Flags: FlagPSH}, payload)
		}},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op into a capped buffer, want 0", tc.name, allocs)
		}
	}
}

// TestAppendEncapTCPFrameMatchesTwoPass pins the one-pass frame builder
// against the two-pass original (TCPSegment then EncapVXLAN) byte-for-byte.
func TestAppendEncapTCPFrameMatchesTwoPass(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5c}, 137)
	tcp := TCP{SrcPort: 1234, DstPort: 443, Seq: 99, Ack: 7, Flags: FlagPSH | FlagACK, Window: 4096}
	want := EncapVXLAN(10, 20, 0xabcdef, TCPSegment(30, 40, tcp, payload))
	got := AppendEncapTCPFrame(nil, 10, 20, 0xabcdef, 30, 40, tcp, payload)
	if !bytes.Equal(got, want) {
		t.Fatalf("one-pass frame differs from two-pass:\n got %x\nwant %x", got, want)
	}
	// And it must still decap + parse cleanly.
	vni, inner, err := DecapVXLAN(got)
	if err != nil {
		t.Fatal(err)
	}
	if vni != 0xabcdef {
		t.Fatalf("vni = %#x, want 0xabcdef", vni)
	}
	ip, tp, data, err := ParseTCPSegment(inner)
	if err != nil {
		t.Fatal(err)
	}
	if ip.SrcIP != 30 || ip.DstIP != 40 || tp != tcp || !bytes.Equal(data, payload) {
		t.Fatal("round-trip mismatch through one-pass frame")
	}
}

// TestFramePool covers the free-list lifecycle: warm Get/Put cycles must
// recycle (no misses), stay allocation-free, and reject foreign undersized
// buffers.
func TestFramePool(t *testing.T) {
	p := NewFramePool(512, 4)
	if p.FrameSize() != 512 || p.Len() != 4 {
		t.Fatalf("pool size/len = %d/%d, want 512/4", p.FrameSize(), p.Len())
	}
	b := p.Get()
	if len(b) != 0 || cap(b) < 512 {
		t.Fatalf("Get returned len=%d cap=%d, want 0/≥512", len(b), cap(b))
	}
	if p.Misses != 0 {
		t.Fatalf("prealloc Get missed")
	}
	p.Put(b)
	if p.Len() != 4 {
		t.Fatalf("Put did not recycle: len=%d", p.Len())
	}
	p.Put(make([]byte, 0, 64)) // undersized: dropped
	if p.Len() != 4 {
		t.Fatal("undersized buffer entered the pool")
	}

	cycle := func() {
		f := p.Get()
		f = append(f, 1, 2, 3)
		p.Put(f)
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("warm Get/Put cycle allocates %v/op, want 0", allocs)
	}
	if p.Misses != 0 {
		t.Fatalf("warm cycles missed %d times", p.Misses)
	}

	empty := NewFramePool(0, 0)
	if empty.FrameSize() != DefaultFrameSize {
		t.Fatalf("default frame size = %d", empty.FrameSize())
	}
	_ = empty.Get()
	if empty.Misses != 1 {
		t.Fatalf("empty pool Get should miss, got %d", empty.Misses)
	}
}

// BenchmarkFramePool is the mempool CI gate: a steady-state frame build —
// Get, one-pass encap marshal, consume, Put — must be 0 allocs/op.
func BenchmarkFramePool(b *testing.B) {
	p := NewFramePool(DefaultFrameSize, 1)
	payload := bytes.Repeat([]byte{0xab}, 200)
	tcp := TCP{SrcPort: 1234, DstPort: 443, Flags: FlagPSH}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := p.Get()
		f = AppendEncapTCPFrame(f, 1, 2, 7, 3, 4, tcp, payload)
		p.Put(f)
	}
	b.StopTimer()
	if p.Misses > 1 {
		b.Fatalf("pooled frame build missed %d times", p.Misses)
	}
}

// BenchmarkFrameBuildAlloc is the pre-mempool baseline for docs/PERF.md:
// the same frame built with the allocating two-pass API.
func BenchmarkFrameBuildAlloc(b *testing.B) {
	payload := bytes.Repeat([]byte{0xab}, 200)
	tcp := TCP{SrcPort: 1234, DstPort: 443, Flags: FlagPSH}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EncapVXLAN(1, 2, 7, TCPSegment(3, 4, tcp, payload))
	}
}
