// Package cluster assembles the ingress pipeline of Fig. 1 around the
// simulated L7 LBs: the cloud gateway encapsulates client traffic in VXLAN
// with the tenant's VNI; the L4 LB decapsulates, rewrites the destination
// port to the tenant's dedicated L7 port (the multi-port tenant isolation
// design), and ECMP-hashes the flow to one device of the L7 cluster.
//
// This is also §6.1's methodology vehicle: the paper evaluates by deploying
// one epoll-exclusive device and one reuseport device alongside Hermes
// devices in a single production cluster, so all modes share the same
// ECMP-split traffic; New accepts one mode per device to reproduce exactly
// that.
package cluster

import (
	"fmt"

	"hermes/internal/bitops"
	"hermes/internal/heavyhitter"
	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/packet"
	"hermes/internal/sim"
)

// Tenant maps a VXLAN VNI to the tenant's public port and the dedicated L7
// port the L4 LB rewrites it to (Fig. 1: P1, P2, ...).
type Tenant struct {
	VNI        uint32
	PublicPort uint16 // 80/443 on the Internet side
	L7Port     uint16 // dedicated port on the L7 devices
}

// WorkFactory converts a request's wire payload into the L7 processing cost
// model — the stand-in for the L7 LB's application parsing and handler
// classification. last reports whether this is the connection's final
// request.
type WorkFactory func(t Tenant, payload []byte, arrivalNS int64, last bool) l7lb.Work

// Config assembles a cluster.
type Config struct {
	// Tenants is the VNI/port table shared by gateway and L4 LB.
	Tenants []Tenant
	// DeviceModes gives one dispatch mode per L7 device (§6.1: a mixed
	// cluster).
	DeviceModes []l7lb.Mode
	// WorkersPerDevice is each device's core count.
	WorkersPerDevice int
	// LB optionally tweaks each device's config before construction.
	LB func(device int, cfg *l7lb.Config)
	// Work converts payloads to processing costs (required). The payload
	// slice aliases the ingress frame and is only valid for the duration of
	// the call.
	Work WorkFactory
	// ExpectedFlows pre-sizes the flow table and pre-populates the
	// flow-state free list, so a cell that opens millions of flows never
	// rehashes the table or allocates flow states in steady state. 0 keeps
	// lazy sizing.
	ExpectedFlows int
}

// Cluster is the assembled pipeline.
type Cluster struct {
	Eng     *sim.Engine
	Tenants map[uint32]Tenant
	Devices []*l7lb.LB

	// flows tracks live inner connections: flow key → device + conn.
	flows map[flowKey]*flowState
	// flowFree recycles flowState objects (the map is their only holder, so
	// a state is free exactly when its key is deleted — no dangling refs to
	// guard, and conn is a checked ref regardless). At 1M-conn scale the
	// per-SYN allocation otherwise dominates the L4 path.
	flowFree    []*flowState
	workFactory WorkFactory

	// sortedPorts is the tenant L7 port list computed once at New (Tenants
	// is a map; iteration order must never leak into device configs).
	sortedPorts []uint16

	// Detector, if set, observes per-VNI SYN arrivals at the L4 LB and
	// flags flooding tenants (Appendix C: SYN-flood / CC attack detection).
	// Wire its OnDetect to BlockTenant for automatic sandbox migration.
	Detector *heavyhitter.Detector
	blocked  map[uint32]bool
	// SYNsBlocked counts SYNs refused because their tenant was migrated.
	SYNsBlocked uint64

	// Stats.
	BadFrames    uint64 // undecodable or unknown-tenant frames
	FlowsOpened  uint64
	FlowsRefused uint64
	DataDropped  uint64 // data for unknown/closed flows
}

type flowKey struct {
	srcIP   uint32
	srcPort uint16
	vni     uint32
}

type flowState struct {
	device int
	// conn is a checked ref: the flow table outlives individual events,
	// and a reset connection's pooled object may be recycled under a new
	// identity before the next frame for this flow arrives.
	conn   kernel.ConnRef
	tenant Tenant
}

// New builds the cluster on eng.
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("cluster: at least one tenant required")
	}
	if len(cfg.DeviceModes) == 0 {
		return nil, fmt.Errorf("cluster: at least one device required")
	}
	if cfg.Work == nil {
		return nil, fmt.Errorf("cluster: WorkFactory required")
	}
	if cfg.WorkersPerDevice <= 0 {
		cfg.WorkersPerDevice = 16
	}
	c := &Cluster{
		Eng:     eng,
		Tenants: make(map[uint32]Tenant, len(cfg.Tenants)),
		flows:   make(map[flowKey]*flowState, cfg.ExpectedFlows),
		blocked: make(map[uint32]bool),
	}
	if n := cfg.ExpectedFlows; n > 0 {
		// One contiguous slab instead of n small objects.
		slab := make([]flowState, n)
		c.flowFree = make([]*flowState, n)
		for i := range slab {
			c.flowFree[i] = &slab[i]
		}
	}
	ports := make([]uint16, 0, len(cfg.Tenants))
	for _, t := range cfg.Tenants {
		if _, dup := c.Tenants[t.VNI]; dup {
			return nil, fmt.Errorf("cluster: duplicate VNI %d", t.VNI)
		}
		c.Tenants[t.VNI] = t
		ports = append(ports, t.L7Port)
	}
	c.sortedPorts = append([]uint16(nil), ports...)
	sortPorts(c.sortedPorts)
	for di, mode := range cfg.DeviceModes {
		lcfg := l7lb.DefaultConfig(mode)
		lcfg.Workers = cfg.WorkersPerDevice
		lcfg.Ports = ports
		if cfg.LB != nil {
			cfg.LB(di, &lcfg)
		}
		lb, err := l7lb.New(eng, lcfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: device %d: %w", di, err)
		}
		c.Devices = append(c.Devices, lb)
	}
	c.workFactory = cfg.Work
	return c, nil
}

// Start launches every device's workers.
func (c *Cluster) Start() {
	for _, d := range c.Devices {
		d.Start()
	}
}

// AddDevice scales the cluster out at runtime (Appendix C's phased scaling:
// traffic surges are absorbed by adding VMs). New flows immediately ECMP
// across the widened fleet; established flows stay pinned to their device
// through the flow table, exactly the per-connection consistency a real L4
// LB maintains during scale-out.
func (c *Cluster) AddDevice(mode l7lb.Mode, workers int, mutate func(*l7lb.Config)) (*l7lb.LB, error) {
	lcfg := l7lb.DefaultConfig(mode)
	lcfg.Workers = workers
	lcfg.Ports = c.sortedPorts
	if mutate != nil {
		mutate(&lcfg)
	}
	lb, err := l7lb.New(c.Eng, lcfg)
	if err != nil {
		return nil, err
	}
	lb.Start()
	c.Devices = append(c.Devices, lb)
	return lb, nil
}

// sortPorts keeps device port order deterministic (Tenants is a map).
func sortPorts(p []uint16) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j] < p[j-1]; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}

// allocFlow pops a recycled flow state (or allocates when the free list is
// dry) and initialises it.
func (c *Cluster) allocFlow(device int, conn kernel.ConnRef, tenant Tenant) *flowState {
	var fs *flowState
	if n := len(c.flowFree); n > 0 {
		fs = c.flowFree[n-1]
		c.flowFree[n-1] = nil
		c.flowFree = c.flowFree[:n-1]
	} else {
		fs = &flowState{}
	}
	fs.device, fs.conn, fs.tenant = device, conn, tenant
	return fs
}

// freeFlow recycles a flow state whose key has just been deleted.
func (c *Cluster) freeFlow(fs *flowState) {
	fs.conn = kernel.ConnRef{}
	c.flowFree = append(c.flowFree, fs)
}

// ecmp picks the device for a flow: per-connection-consistent 5-tuple hash,
// as the L4 LB must deliver all of a connection's packets to one L7 device.
func (c *Cluster) ecmp(k flowKey) int {
	h := (kernel.FourTuple{SrcIP: k.srcIP, SrcPort: k.srcPort, DstIP: k.vni, DstPort: 4789}).Hash()
	return int(bitops.ReciprocalScale(h, uint32(len(c.Devices))))
}

// Ingress processes one gateway frame through the L4 LB: VXLAN decap,
// tenant lookup by VNI, destination-port NAT, ECMP device selection, and
// delivery into the chosen device's kernel. SYN opens a flow; PSH delivers
// a request (the payload's last byte ≠ 0 marks connection close in the
// client protocol below); FIN/RST tears down.
func (c *Cluster) Ingress(frame []byte) error {
	vni, inner, err := packet.DecapVXLAN(frame)
	if err != nil {
		c.BadFrames++
		return err
	}
	tenant, ok := c.Tenants[vni]
	if !ok {
		c.BadFrames++
		return fmt.Errorf("cluster: unknown VNI %d", vni)
	}
	ip, tcp, payload, err := packet.ParseTCPSegment(inner)
	if err != nil {
		c.BadFrames++
		return err
	}
	if tcp.DstPort != tenant.PublicPort {
		c.BadFrames++
		return fmt.Errorf("cluster: VNI %d frame to port %d, tenant owns %d",
			vni, tcp.DstPort, tenant.PublicPort)
	}

	k := flowKey{srcIP: ip.SrcIP, srcPort: tcp.SrcPort, vni: vni}
	switch {
	case tcp.Flags&packet.FlagSYN != 0:
		if c.blocked[vni] {
			c.SYNsBlocked++
			return fmt.Errorf("cluster: tenant VNI %d migrated to sandbox", vni)
		}
		if c.Detector != nil {
			c.Detector.Observe(vni)
			if c.Detector.Flagged(vni) && c.blocked[vni] {
				c.SYNsBlocked++
				return fmt.Errorf("cluster: tenant VNI %d migrated to sandbox", vni)
			}
		}
		if _, dup := c.flows[k]; dup {
			return fmt.Errorf("cluster: duplicate SYN for flow %+v", k)
		}
		di := c.ecmp(k)
		// The NAT rewrite of Fig. 1: DstPort 80/443 → tenant's L7 port.
		conn, ok := c.Devices[di].NS.DeliverSYN(kernel.FourTuple{
			SrcIP:   ip.SrcIP,
			SrcPort: tcp.SrcPort,
			DstIP:   ip.DstIP,
			DstPort: tenant.L7Port,
		}, nil)
		if !ok {
			c.FlowsRefused++
			return fmt.Errorf("cluster: device %d refused flow", di)
		}
		c.FlowsOpened++
		c.flows[k] = c.allocFlow(di, conn.Ref(), tenant)
	case tcp.Flags&(packet.FlagFIN|packet.FlagRST) != 0:
		fs, ok := c.flows[k]
		if !ok {
			c.DataDropped++
			return nil
		}
		if conn := fs.conn.Get(); conn != nil {
			c.Devices[fs.device].NS.DeliverFIN(conn)
		}
		delete(c.flows, k)
		c.freeFlow(fs)
	default:
		fs, ok := c.flows[k]
		var conn *kernel.Conn
		if ok {
			conn = fs.conn.Get()
		}
		if conn == nil || conn.Sock().Closed() {
			c.DataDropped++
			return nil
		}
		last := tcp.Flags&packet.FlagPSH != 0 && len(payload) > 0 && payload[len(payload)-1] == closeMarker
		work := c.workFactory(fs.tenant, payload, c.Eng.Now(), last)
		c.Devices[fs.device].NS.DeliverData(conn, work)
		if last {
			delete(c.flows, k)
			c.freeFlow(fs)
		}
	}
	return nil
}

// IngressBurst processes a same-tick vector of gateway frames — a NIC RX
// burst at the L4 LB — coalescing each device's wakeups through the kernel
// burst API. With BatchWidth ≤ 1 on the devices this is exactly a loop over
// Ingress; wider widths deliver the same trace with fewer engine events.
// Returns the number of frames accepted; rejects bump the usual counters.
func (c *Cluster) IngressBurst(frames [][]byte) int {
	for _, d := range c.Devices {
		d.NS.BeginBurst()
	}
	accepted := 0
	for _, f := range frames {
		if c.Ingress(f) == nil {
			accepted++
		}
	}
	for _, d := range c.Devices {
		d.NS.EndBurst()
	}
	return accepted
}

// BlockTenant migrates a tenant off this cluster: its SYNs are refused here
// (the control plane would point the VIP at an isolated sandbox cluster,
// Appendix C). Established flows continue until they close.
func (c *Cluster) BlockTenant(vni uint32) { c.blocked[vni] = true }

// UnblockTenant restores a tenant after sandbox analysis.
func (c *Cluster) UnblockTenant(vni uint32) { delete(c.blocked, vni) }

// LiveFlows returns the number of tracked flows.
func (c *Cluster) LiveFlows() int { return len(c.flows) }

// closeMarker is the client-protocol byte marking a connection's final
// request (stands in for Connection: close parsing).
const closeMarker = 0xFF
