package cluster

import (
	"math/rand"
	"time"

	"hermes/internal/l7lb"
	"hermes/internal/packet"
)

// Client emulates Internet clients in front of the gateway: it builds real
// VXLAN-encapsulated TCP frames and feeds them through Ingress on the
// virtual clock. One Client drives one tenant.
type Client struct {
	c      *Cluster
	tenant Tenant
	rng    *rand.Rand

	gatewayIP uint32
	l4IP      uint32

	// FramesSent counts frames pushed into the pipeline.
	FramesSent uint64
	// Errors counts Ingress rejections.
	Errors uint64

	nextSrc uint32

	// frames recycles the wire buffers: a frame is consumed synchronously by
	// Ingress (nothing downstream retains it), so one Get/Put bracket per
	// push keeps the client's steady state allocation-free.
	frames *packet.FramePool
	// payload is the request-body scratch, zeroed before each use so frame
	// bytes (and checksums) match the old freshly-allocated payloads.
	payload []byte
}

// NewClient creates a client fleet for the tenant with the given VNI.
func (c *Cluster) NewClient(vni uint32) *Client {
	return &Client{
		c:         c,
		tenant:    c.Tenants[vni],
		rng:       c.Eng.Rand(),
		gatewayIP: 0x0b00_0001,
		l4IP:      0x0b00_0002,
		frames:    packet.NewFramePool(0, 1),
	}
}

func (cl *Client) push(srcIP uint32, srcPort uint16, flags uint8, payload []byte) {
	frame := packet.AppendEncapTCPFrame(cl.frames.Get(),
		cl.gatewayIP, cl.l4IP, cl.tenant.VNI,
		srcIP, 0x0a00_0001, packet.TCP{
			SrcPort: srcPort,
			DstPort: cl.tenant.PublicPort,
			Flags:   flags,
			Window:  65535,
		}, payload)
	cl.FramesSent++
	if err := cl.c.Ingress(frame); err != nil {
		cl.Errors++
	}
	cl.frames.Put(frame)
}

// reqPayload returns an n-byte zeroed request body from the client's scratch
// (n ≥ 1), with the close marker set when closeAfter. Valid until the next
// call; push consumes it synchronously.
func (cl *Client) reqPayload(n int, closeAfter bool) []byte {
	n = max(1, n)
	if cap(cl.payload) < n {
		cl.payload = make([]byte, n)
	}
	p := cl.payload[:n]
	clear(p)
	if closeAfter {
		p[n-1] = closeMarker
	}
	return p
}

// OpenAndRequest schedules, at absolute virtual time at: a SYN, then after
// delay one PSH request of reqBytes payload (its last byte flags close when
// closeAfter), then a FIN when closeAfter is false (keep-alive callers close
// explicitly later).
func (cl *Client) OpenAndRequest(at, delay time.Duration, reqBytes int, closeAfter bool) {
	cl.nextSrc++
	srcIP := 0xc0a8_0000 + cl.nextSrc
	srcPort := uint16(1024 + cl.nextSrc%60000)
	cl.c.Eng.At(int64(at), func() {
		cl.push(srcIP, srcPort, packet.FlagSYN, nil)
		cl.c.Eng.After(delay, func() {
			cl.push(srcIP, srcPort, packet.FlagPSH|packet.FlagACK, cl.reqPayload(reqBytes, closeAfter))
		})
	})
}

// DefaultWorkFactory derives a simple cost model from payload size: base
// parse cost plus a per-byte component — enough to exercise the pipeline
// end to end.
func DefaultWorkFactory(base time.Duration, perByte time.Duration) WorkFactory {
	return func(t Tenant, payload []byte, arrivalNS int64, last bool) l7lb.Work {
		return l7lb.Work{
			ArrivalNS: arrivalNS,
			Cost:      base + time.Duration(len(payload))*perByte,
			Size:      len(payload),
			RespSize:  3 * len(payload),
			Close:     last,
			Tenant:    t.L7Port,
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
