package cluster

import (
	"testing"
	"time"

	"hermes/internal/heavyhitter"
	"hermes/internal/l7lb"
	"hermes/internal/packet"
	"hermes/internal/sim"
)

func testTenants() []Tenant {
	return []Tenant{
		{VNI: 100, PublicPort: 443, L7Port: 9001},
		{VNI: 200, PublicPort: 80, L7Port: 9002},
	}
}

func newTestCluster(t *testing.T, modes []l7lb.Mode) (*sim.Engine, *Cluster) {
	t.Helper()
	eng := sim.NewEngine(1)
	c, err := New(eng, Config{
		Tenants:          testTenants(),
		DeviceModes:      modes,
		WorkersPerDevice: 4,
		Work:             DefaultWorkFactory(20*time.Microsecond, 10*time.Nanosecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	return eng, c
}

func TestClusterValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	wf := DefaultWorkFactory(time.Microsecond, 0)
	if _, err := New(eng, Config{DeviceModes: []l7lb.Mode{l7lb.ModeHermes}, Work: wf}); err == nil {
		t.Fatal("no tenants accepted")
	}
	if _, err := New(eng, Config{Tenants: testTenants(), Work: wf}); err == nil {
		t.Fatal("no devices accepted")
	}
	if _, err := New(eng, Config{Tenants: testTenants(), DeviceModes: []l7lb.Mode{l7lb.ModeHermes}}); err == nil {
		t.Fatal("nil work factory accepted")
	}
	dup := append(testTenants(), Tenant{VNI: 100, PublicPort: 81, L7Port: 9003})
	if _, err := New(eng, Config{Tenants: dup, DeviceModes: []l7lb.Mode{l7lb.ModeHermes}, Work: wf}); err == nil {
		t.Fatal("duplicate VNI accepted")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	eng, c := newTestCluster(t, []l7lb.Mode{l7lb.ModeHermes, l7lb.ModeHermes})
	cl := c.NewClient(100)
	const flows = 200
	for i := 0; i < flows; i++ {
		cl.OpenAndRequest(time.Duration(i)*100*time.Microsecond, 50*time.Microsecond, 300, true)
	}
	eng.RunUntil(int64(time.Second))

	if cl.Errors != 0 {
		t.Fatalf("%d ingress errors", cl.Errors)
	}
	if c.FlowsOpened != flows {
		t.Fatalf("opened %d of %d", c.FlowsOpened, flows)
	}
	var completed uint64
	for _, d := range c.Devices {
		completed += d.Completed
	}
	if completed != flows {
		t.Fatalf("completed %d of %d", completed, flows)
	}
	// NAT check: requests landed on the tenant's L7 port, not 443.
	for _, d := range c.Devices {
		if d.NS.Group(9001) == nil && d.NS.SharedSocket(9001) == nil {
			t.Fatal("device missing the NATed tenant port")
		}
	}
	// ECMP spread: both devices served some flows.
	if c.Devices[0].Completed == 0 || c.Devices[1].Completed == 0 {
		t.Fatalf("ECMP skew: %d/%d", c.Devices[0].Completed, c.Devices[1].Completed)
	}
	if c.LiveFlows() != 0 {
		t.Fatalf("%d flows leaked", c.LiveFlows())
	}
}

func TestPipelinePerTenantIsolation(t *testing.T) {
	eng, c := newTestCluster(t, []l7lb.Mode{l7lb.ModeHermes})
	c.NewClient(100).OpenAndRequest(0, 10*time.Microsecond, 100, true)
	c.NewClient(200).OpenAndRequest(0, 10*time.Microsecond, 100, true)
	eng.RunUntil(int64(100 * time.Millisecond))
	d := c.Devices[0]
	if d.Completed != 2 {
		t.Fatalf("completed %d", d.Completed)
	}
	// Each tenant's traffic arrives on its own L7 port (the isolation the
	// multi-port design buys).
	if d.NS.Group(9001).ProgDispatched+d.NS.Group(9001).HashDispatched+d.NS.Group(9001).Fallbacks == 0 {
		t.Fatal("tenant 100 port unused")
	}
	if d.NS.Group(9002).ProgDispatched+d.NS.Group(9002).HashDispatched+d.NS.Group(9002).Fallbacks == 0 {
		t.Fatal("tenant 200 port unused")
	}
}

func TestIngressRejectsGarbage(t *testing.T) {
	_, c := newTestCluster(t, []l7lb.Mode{l7lb.ModeHermes})

	if err := c.Ingress([]byte("not a frame")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Unknown VNI.
	inner := packet.TCPSegment(1, 2, packet.TCP{SrcPort: 9, DstPort: 443, Flags: packet.FlagSYN}, nil)
	if err := c.Ingress(packet.EncapVXLAN(1, 2, 999, inner)); err == nil {
		t.Fatal("unknown VNI accepted")
	}
	// Wrong public port for the tenant.
	wrongPort := packet.TCPSegment(1, 2, packet.TCP{SrcPort: 9, DstPort: 8443, Flags: packet.FlagSYN}, nil)
	if err := c.Ingress(packet.EncapVXLAN(1, 2, 100, wrongPort)); err == nil {
		t.Fatal("wrong tenant port accepted")
	}
	if c.BadFrames != 3 {
		t.Fatalf("BadFrames = %d", c.BadFrames)
	}
	// Data for a flow that never opened is dropped, not an error.
	orphan := packet.TCPSegment(1, 2, packet.TCP{SrcPort: 9, DstPort: 443, Flags: packet.FlagPSH}, []byte{1})
	if err := c.Ingress(packet.EncapVXLAN(1, 2, 100, orphan)); err != nil {
		t.Fatal(err)
	}
	if c.DataDropped != 1 {
		t.Fatalf("DataDropped = %d", c.DataDropped)
	}
	// Duplicate SYN rejected.
	syn := packet.EncapVXLAN(1, 2, 100, packet.TCPSegment(7, 2, packet.TCP{SrcPort: 7, DstPort: 443, Flags: packet.FlagSYN}, nil))
	if err := c.Ingress(syn); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingress(syn); err == nil {
		t.Fatal("duplicate SYN accepted")
	}
}

func TestFINTearsDownFlow(t *testing.T) {
	eng, c := newTestCluster(t, []l7lb.Mode{l7lb.ModeHermes})
	cl := c.NewClient(100)
	cl.OpenAndRequest(0, 10*time.Microsecond, 50, false) // keep-alive
	eng.RunUntil(int64(10 * time.Millisecond))
	if c.LiveFlows() != 1 {
		t.Fatalf("live = %d", c.LiveFlows())
	}
	// Send FIN through the pipeline.
	inner := packet.TCPSegment(0xc0a8_0001, 0x0a00_0001,
		packet.TCP{SrcPort: 1025, DstPort: 443, Flags: packet.FlagFIN}, nil)
	if err := c.Ingress(packet.EncapVXLAN(1, 2, 100, inner)); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(int64(20 * time.Millisecond))
	if c.LiveFlows() != 0 {
		t.Fatalf("flow not torn down: %d", c.LiveFlows())
	}
}

// The §6.1 methodology: a mixed cluster with exclusive, reuseport, and
// Hermes devices sharing ECMP traffic; Hermes must not be the worst on P99.
func TestMixedModeClusterMethodology(t *testing.T) {
	eng := sim.NewEngine(5)
	modes := []l7lb.Mode{
		l7lb.ModeExclusive, l7lb.ModeReuseport,
		l7lb.ModeHermes, l7lb.ModeHermes,
	}
	c, err := New(eng, Config{
		Tenants:          testTenants(),
		DeviceModes:      modes,
		WorkersPerDevice: 4,
		// Heavy per-byte cost: some requests hang workers.
		Work: DefaultWorkFactory(50*time.Microsecond, 3*time.Microsecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	cl := c.NewClient(100)
	rng := eng.Rand()
	for i := 0; i < 3000; i++ {
		size := 100 + rng.Intn(400)
		if rng.Intn(50) == 0 {
			size = 20_000 // hang-inducing request (60ms)
		}
		cl.OpenAndRequest(time.Duration(i)*300*time.Microsecond, 50*time.Microsecond, size, true)
	}
	eng.RunUntil(int64(5 * time.Second))

	var total uint64
	for _, d := range c.Devices {
		total += d.Completed
	}
	if total < 2900 {
		t.Fatalf("completed %d of 3000", total)
	}
	hermesP99 := (c.Devices[2].Latency.Percentile(99) + c.Devices[3].Latency.Percentile(99)) / 2
	for di, name := range []string{"exclusive", "reuseport"} {
		if p := c.Devices[di].Latency.Percentile(99); p < hermesP99*0.5 {
			t.Fatalf("%s P99 %v dramatically beats hermes %v — shape broken", name, p, hermesP99)
		}
	}
}

// Phased scaling (Appendix C): an overloaded 1-device cluster recovers when
// a second device absorbs new flows, while established flows stay pinned.
func TestScaleOutAbsorbsOverload(t *testing.T) {
	eng := sim.NewEngine(9)
	c, err := New(eng, Config{
		Tenants:          testTenants(),
		DeviceModes:      []l7lb.Mode{l7lb.ModeHermes},
		WorkersPerDevice: 2,
		Work:             DefaultWorkFactory(400*time.Microsecond, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	cl := c.NewClient(100)

	// Phase 0: overload 2 workers (demand ≈ 2.7 cores).
	for i := 0; i < 4000; i++ {
		cl.OpenAndRequest(time.Duration(i)*150*time.Microsecond, 30*time.Microsecond, 64, true)
	}
	// Phase 1: scale out at t=200ms.
	eng.At(int64(200*time.Millisecond), func() {
		if _, err := c.AddDevice(l7lb.ModeHermes, 2, nil); err != nil {
			t.Error(err)
		}
	})
	eng.RunUntil(int64(200 * time.Millisecond))
	p99Before := c.Devices[0].Latency.Percentile(99)

	eng.RunUntil(int64(3 * time.Second))
	if len(c.Devices) != 2 {
		t.Fatal("scale-out did not add a device")
	}
	if c.Devices[1].Completed == 0 {
		t.Fatal("new device served nothing")
	}
	var total uint64
	for _, d := range c.Devices {
		total += d.Completed
	}
	if total != 4000 {
		t.Fatalf("completed %d of 4000", total)
	}
	// Device 0 keeps only its pinned flows after scale-out; the queue it had
	// built drains and overall latency of the post-scale era improves. Use
	// the new device's P99 as the post-scale indicator.
	if p99After := c.Devices[1].Latency.Percentile(99); p99After >= p99Before {
		t.Fatalf("scale-out did not relieve overload: before %v, after %v", p99Before, p99After)
	}
}

// Appendix C network-attack handling: a flooding tenant is detected at the
// L4 LB and migrated to a sandbox; the victim tenant's service recovers.
func TestAttackDetectionAndSandboxMigration(t *testing.T) {
	eng := sim.NewEngine(11)
	c, err := New(eng, Config{
		Tenants: []Tenant{
			{VNI: 100, PublicPort: 443, L7Port: 9001},
			{VNI: 666, PublicPort: 80, L7Port: 9002}, // attacker
		},
		DeviceModes:      []l7lb.Mode{l7lb.ModeHermes},
		WorkersPerDevice: 2,
		Work:             DefaultWorkFactory(200*time.Microsecond, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Detector = heavyhitter.NewDetector(0.7, 500)
	var detectedVNI uint32
	c.Detector.OnDetect = func(key uint32, est uint32, total uint64) {
		detectedVNI = key
		c.BlockTenant(key)
	}
	c.Start()

	benign := c.NewClient(100)
	attacker := c.NewClient(666)
	// Benign trickle + attack flood (20x the benign rate).
	for i := 0; i < 150; i++ {
		benign.OpenAndRequest(time.Duration(i)*2*time.Millisecond, 100*time.Microsecond, 64, true)
	}
	for i := 0; i < 3000; i++ {
		attacker.OpenAndRequest(time.Duration(i)*100*time.Microsecond, 100*time.Microsecond, 64, true)
	}
	eng.RunUntil(int64(2 * time.Second))

	if detectedVNI != 666 {
		t.Fatalf("detected VNI %d, want 666", detectedVNI)
	}
	if c.SYNsBlocked == 0 {
		t.Fatal("no attack SYNs blocked after migration")
	}
	if attacker.Errors == 0 {
		t.Fatal("attacker saw no refusals")
	}
	// The benign tenant stays fully served.
	if benign.Errors != 0 {
		t.Fatalf("benign tenant suffered %d errors", benign.Errors)
	}
	d := c.Devices[0]
	if d.Completed < 150 {
		t.Fatalf("completed %d", d.Completed)
	}
	// Unblock restores the tenant.
	c.UnblockTenant(666)
	attacker.OpenAndRequest(2100*time.Millisecond, 100*time.Microsecond, 64, true)
	eng.RunUntil(int64(3 * time.Second))
	if attacker.Errors != c.SYNsBlocked {
		t.Fatalf("errors %d != blocked %d after unblock", attacker.Errors, c.SYNsBlocked)
	}
}
