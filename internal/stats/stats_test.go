package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample must report zeros")
	}
	if s.CDF(10) != nil {
		t.Fatal("empty CDF must be nil")
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {99, 99.01},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 0.011 {
			t.Errorf("P%.0f = %v, want ≈%v", c.p, got, c.want)
		}
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.N() != 100 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestSamplePercentileSingle(t *testing.T) {
	var s Sample
	s.Add(7)
	for _, p := range []float64{0, 50, 99, 100} {
		if s.Percentile(p) != 7 {
			t.Fatalf("P%v of single sample = %v", p, s.Percentile(p))
		}
	}
}

func TestSampleAddAfterQuery(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	_ = s.Percentile(50)
	s.Add(2) // must invalidate the sort
	if got := s.Percentile(50); got != 2 {
		t.Fatalf("P50 after late add = %v, want 2", got)
	}
}

func TestSampleMeanStd(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if math.Abs(s.Stddev()-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", s.Stddev())
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(2_500_000) // 2.5ms
	if s.Mean() != 2.5 {
		t.Fatalf("ms conversion = %v", s.Mean())
	}
}

func TestWelfordMatchesSample(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var s Sample
		var w Welford
		for _, r := range raw {
			v := float64(r)
			s.Add(v)
			w.Add(v)
		}
		return math.Abs(s.Mean()-w.Mean()) < 1e-9 &&
			math.Abs(s.Stddev()-w.Stddev()) < 1e-9 &&
			w.N() == int64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStddevHelper(t *testing.T) {
	m, sd := MeanStddev([]float64{1, 2, 3, 4})
	if m != 2.5 || math.Abs(sd-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("MeanStddev = %v, %v", m, sd)
	}
}

func TestCDFMonotonic(t *testing.T) {
	var s Sample
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		s.Add(rng.ExpFloat64() * 10)
	}
	cdf := s.CDF(50)
	if len(cdf) != 50 {
		t.Fatalf("CDF points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i][0] < cdf[i-1][0] || cdf[i][1] < cdf[i-1][1] {
			t.Fatalf("CDF not monotonic at %d: %v -> %v", i, cdf[i-1], cdf[i])
		}
	}
	last := cdf[len(cdf)-1]
	if last[1] != 1 {
		t.Fatalf("CDF must end at 1, got %v", last[1])
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	h.Add(0.5) // bucket 0
	h.Add(1)   // bucket 0
	h.Add(2)   // bucket 1
	h.Add(3)   // bucket 1
	h.Add(16)  // bucket 4
	h.Add(1024)
	h.Add(1 << 30) // 1024 and 2^30 both overflow → last bucket
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 2 || h.Bucket(4) != 1 || h.Bucket(9) != 2 {
		t.Fatalf("buckets: %v %v %v %v", h.Bucket(0), h.Bucket(1), h.Bucket(4), h.Bucket(9))
	}
	cdf := h.CDF()
	if cdf[len(cdf)-1][1] != 1 {
		t.Fatal("histogram CDF must end at 1")
	}
	empty := NewHistogram(4)
	if empty.CDF() != nil {
		t.Fatal("empty histogram CDF must be nil")
	}
}

func TestFormatMS(t *testing.T) {
	cases := map[float64]string{
		0.439:  "0.439",
		21.93:  "21.93",
		1480:   "1480",
		121.27: "121",
	}
	for in, want := range cases {
		if got := FormatMS(in); got != want {
			t.Errorf("FormatMS(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Case 1", "mode", "avg (ms)", "thr")
	tb.AddRow("exclusive", 0.890, 76100)
	tb.AddRow("hermes", 0.5950, "78k")
	out := tb.Render()
	for _, frag := range []string{"== Case 1 ==", "mode", "exclusive", "0.89", "78k", "---"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: header and rows share the prefix width.
	if len(lines[1]) == 0 || lines[1][0] != 'm' {
		t.Fatal("header misplaced")
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2, 3) // extra cell widens the table
	tb.AddRow(4)
	out := tb.Render()
	if !strings.Contains(out, "3") || !strings.Contains(out, "4") {
		t.Fatalf("ragged rows mishandled:\n%s", out)
	}
}
