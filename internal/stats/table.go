package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables for the benchmark harness, in the
// spirit of the paper's result tables.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Render returns the formatted table.
func (t *Table) Render() string {
	ncols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	pad := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	pad(t.headers)
	for _, r := range t.rows {
		pad(r)
	}

	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, ncols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
