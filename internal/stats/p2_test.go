package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

func TestP2SmallSamples(t *testing.T) {
	e := NewP2Quantile(0.5)
	if e.Value() != 0 || e.N() != 0 {
		t.Fatal("empty estimator")
	}
	e.Add(3)
	e.Add(1)
	e.Add(2)
	if got := e.Value(); got != 2 {
		t.Fatalf("median of {1,2,3} = %v", got)
	}
}

func TestP2MatchesExactOnDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	distros := []struct {
		name string
		gen  func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() * 100 }},
		{"exponential", func() float64 { return rng.ExpFloat64() * 10 }},
		{"normal", func() float64 { return 50 + 10*rng.NormFloat64() }},
		{"lognormal", func() float64 { return math.Exp(rng.NormFloat64()) }},
	}
	for _, d := range distros {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			e := NewP2Quantile(p)
			var exact Sample
			const n = 60_000
			for i := 0; i < n; i++ {
				v := d.gen()
				e.Add(v)
				exact.Add(v)
			}
			want := exact.Percentile(p * 100)
			got := e.Value()
			// P² converges within a few percent of the population spread.
			spread := exact.Percentile(99.9) - exact.Min()
			if math.Abs(got-want) > 0.05*spread {
				t.Errorf("%s P%v: p2 %.4g vs exact %.4g (spread %.4g)",
					d.name, p*100, got, want, spread)
			}
			if e.N() != n {
				t.Fatalf("N = %d", e.N())
			}
		}
	}
}

func TestP2MonotoneMarkerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewP2Quantile(0.95)
	for i := 0; i < 50_000; i++ {
		e.Add(rng.ExpFloat64() * 100)
		if i >= 5 {
			for j := 1; j < 5; j++ {
				if e.q[j] < e.q[j-1] {
					t.Fatalf("marker heights not monotone at %d: %v", i, e.q)
				}
			}
		}
	}
}

func BenchmarkP2Add(b *testing.B) {
	e := NewP2Quantile(0.99)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Add(float64(i % 1000))
	}
}
