package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestP2PanicsOnBadQuantile(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

func TestP2SmallSamples(t *testing.T) {
	e := NewP2Quantile(0.5)
	if e.Value() != 0 || e.N() != 0 {
		t.Fatal("empty estimator")
	}
	e.Add(3)
	e.Add(1)
	e.Add(2)
	if got := e.Value(); got != 2 {
		t.Fatalf("median of {1,2,3} = %v", got)
	}
}

func TestP2MatchesExactOnDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	distros := []struct {
		name string
		gen  func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() * 100 }},
		{"exponential", func() float64 { return rng.ExpFloat64() * 10 }},
		{"normal", func() float64 { return 50 + 10*rng.NormFloat64() }},
		{"lognormal", func() float64 { return math.Exp(rng.NormFloat64()) }},
	}
	for _, d := range distros {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			e := NewP2Quantile(p)
			var exact Sample
			const n = 60_000
			for i := 0; i < n; i++ {
				v := d.gen()
				e.Add(v)
				exact.Add(v)
			}
			want := exact.Percentile(p * 100)
			got := e.Value()
			// P² converges within a few percent of the population spread.
			spread := exact.Percentile(99.9) - exact.Min()
			if math.Abs(got-want) > 0.05*spread {
				t.Errorf("%s P%v: p2 %.4g vs exact %.4g (spread %.4g)",
					d.name, p*100, got, want, spread)
			}
			if e.N() != n {
				t.Fatalf("N = %d", e.N())
			}
		}
	}
}

// Degenerate inputs must stay exact and finite: fewer than five
// observations (the init phase), all-equal streams, two-valued streams,
// and a step change — the regimes a short or idle monitoring window feeds
// the estimator.
func TestP2DegenerateInputs(t *testing.T) {
	t.Run("underfilled", func(t *testing.T) {
		for _, tc := range []struct {
			p    float64
			obs  []float64
			want float64
		}{
			{0.5, []float64{42}, 42},
			{0.99, []float64{42}, 42},
			{0.5, []float64{2, 1}, 2},
			{0.99, []float64{1, 2, 3, 4}, 4},
			{0.01, []float64{4, 3, 2, 1}, 1},
			{0.5, []float64{7, 7, 7, 7}, 7},
		} {
			e := NewP2Quantile(tc.p)
			for _, v := range tc.obs {
				e.Add(v)
			}
			if got := e.Value(); got != tc.want {
				t.Errorf("p=%v obs=%v: got %v, want %v", tc.p, tc.obs, got, tc.want)
			}
		}
	})
	t.Run("all-equal", func(t *testing.T) {
		for _, p := range []float64{0.01, 0.5, 0.99} {
			e := NewP2Quantile(p)
			for i := 0; i < 10_000; i++ {
				e.Add(7)
				if got := e.Value(); got != 7 {
					t.Fatalf("p=%v: all-equal stream drifted to %v at n=%d", p, got, i+1)
				}
			}
		}
	})
	t.Run("finite-and-ordered", func(t *testing.T) {
		streams := map[string]func(i int) float64{
			"two-valued": func(i int) float64 { return float64(i % 2) },
			"step":       func(i int) float64 { return 1 + 99*float64(i/500) },
			"descending": func(i int) float64 { return float64(1000 - i) },
		}
		for name, gen := range streams {
			for _, p := range []float64{0.01, 0.5, 0.99} {
				e := NewP2Quantile(p)
				for i := 0; i < 1000; i++ {
					e.Add(gen(i))
					if v := e.Value(); math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("%s p=%v: non-finite estimate at n=%d", name, p, i+1)
					}
					if i >= 5 {
						for j := 1; j < 5; j++ {
							if e.q[j] < e.q[j-1] {
								t.Fatalf("%s p=%v: markers disordered at n=%d: %v", name, p, i+1, e.q)
							}
						}
					}
				}
			}
		}
	})
}

func TestP2MonotoneMarkerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewP2Quantile(0.95)
	for i := 0; i < 50_000; i++ {
		e.Add(rng.ExpFloat64() * 100)
		if i >= 5 {
			for j := 1; j < 5; j++ {
				if e.q[j] < e.q[j-1] {
					t.Fatalf("marker heights not monotone at %d: %v", i, e.q)
				}
			}
		}
	}
}

func BenchmarkP2Add(b *testing.B) {
	e := NewP2Quantile(0.99)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Add(float64(i % 1000))
	}
}
