package stats

import (
	"math"
	"testing"
)

func TestBucketQuantile(t *testing.T) {
	bounds := []int64{10, 20, 40} // +Inf overflow bucket is implicit
	for _, tc := range []struct {
		name   string
		bounds []int64
		counts []uint64
		p      float64
		want   float64
	}{
		{"empty", bounds, []uint64{0, 0, 0, 0}, 0.5, 0},
		{"no-bounds", nil, nil, 0.5, 0},
		{"uniform-median", bounds, []uint64{10, 10, 10, 0}, 0.5, 15},
		{"first-bucket", bounds, []uint64{100, 0, 0, 0}, 0.5, 5},
		{"interpolates", bounds, []uint64{0, 100, 0, 0}, 0.25, 12.5},
		{"overflow-clamps", bounds, []uint64{0, 0, 0, 50}, 0.99, 40},
		{"p99-in-last-finite", bounds, []uint64{98, 0, 2, 0}, 0.99, 30},
		{"all-in-one", bounds, []uint64{0, 0, 7, 0}, 1.0, 40},
	} {
		got := BucketQuantile(tc.bounds, tc.counts, tc.p)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: BucketQuantile(p=%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
}

// Quantiles over the same histogram must be monotone in p.
func TestBucketQuantileMonotone(t *testing.T) {
	bounds := []int64{1, 2, 4, 8, 16, 32}
	counts := []uint64{5, 0, 12, 40, 3, 1, 2}
	prev := math.Inf(-1)
	for p := 0.01; p <= 1.0; p += 0.01 {
		v := BucketQuantile(bounds, counts, p)
		if v < prev {
			t.Fatalf("p=%v: quantile %v < previous %v", p, v, prev)
		}
		prev = v
	}
}
