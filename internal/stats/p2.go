package stats

// P2Quantile is the Jain & Chlamtac P² algorithm: a streaming estimate of a
// single quantile in O(1) space, for long production runs where storing
// every observation (as Sample does) is too expensive — the regime the
// paper's multi-day Fig. 13 monitoring lives in.
type P2Quantile struct {
	p     float64
	n     int
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based)
	want  [5]float64 // desired positions
	dWant [5]float64 // desired-position increments
	init  []float64
}

// NewP2Quantile creates an estimator for quantile p in (0,1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("stats: P² quantile must be in (0,1)")
	}
	e := &P2Quantile{p: p}
	e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.dWant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add folds in one observation.
func (e *P2Quantile) Add(v float64) {
	e.n++
	if len(e.init) < 5 {
		e.init = append(e.init, v)
		if len(e.init) == 5 {
			insertionSort(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.pos[i] = float64(i + 1)
			}
		}
		return
	}

	// Locate the cell and bump extreme markers.
	var k int
	switch {
	case v < e.q[0]:
		e.q[0] = v
		k = 0
	case v >= e.q[4]:
		e.q[4] = v
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if v < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.dWant[i]
	}

	// Adjust interior markers with the piecewise-parabolic formula.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			qNew := e.parabolic(i, sign)
			if e.q[i-1] < qNew && qNew < e.q[i+1] {
				e.q[i] = qNew
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// N returns the observation count.
func (e *P2Quantile) N() int { return e.n }

// Value returns the current quantile estimate (exact while n < 5).
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if len(e.init) < 5 {
		tmp := append([]float64(nil), e.init...)
		insertionSort(tmp)
		idx := int(e.p * float64(len(tmp)))
		if idx >= len(tmp) {
			idx = len(tmp) - 1
		}
		return tmp[idx]
	}
	return e.q[2]
}

func insertionSort(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
