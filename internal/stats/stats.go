// Package stats provides the measurement machinery behind the evaluation:
// percentile samples (Tables 1, 3; Figs. 4, 5), online mean/stddev
// (Fig. 13's balance metric), log-bucketed histograms/CDFs, and plain-text
// table rendering for the benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations for percentile and moment queries.
// The zero value is ready to use.
type Sample struct {
	vals   []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// AddDuration appends a duration observation in milliseconds, the unit the
// paper reports latency in.
func (s *Sample) AddDuration(ns int64) { s.Add(float64(ns) / 1e6) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.vals) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := p / 100 * float64(len(s.vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.vals[lo]
	}
	frac := rank - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[hi]*frac
}

// Mean returns the arithmetic mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Stddev returns the population standard deviation (0 if fewer than 2).
func (s *Sample) Stddev() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.vals {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[0]
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.vals[len(s.vals)-1]
}

// CDF returns (value, cumulative fraction) pairs at the given resolution
// (number of points), suitable for plotting Figs. 4, 5, A5.
func (s *Sample) CDF(points int) [][2]float64 {
	if len(s.vals) == 0 || points < 2 {
		return nil
	}
	s.ensureSorted()
	out := make([][2]float64, 0, points)
	for i := 0; i < points; i++ {
		frac := float64(i) / float64(points-1)
		idx := int(frac * float64(len(s.vals)-1))
		out = append(out, [2]float64{s.vals[idx], float64(idx+1) / float64(len(s.vals))})
	}
	return out
}

// CountAbove returns how many observations exceed x (delayed-probe counting,
// Fig. 11).
func (s *Sample) CountAbove(x float64) int {
	s.ensureSorted()
	lo, hi := 0, len(s.vals)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.vals[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return len(s.vals) - lo
}

// Welford tracks running mean and variance without storing observations —
// used for long-running per-worker CPU utilization series (Fig. 13).
// The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds in one observation.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Stddev returns the running population standard deviation.
func (w *Welford) Stddev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// MeanStddev computes mean and population stddev of a slice in one pass.
func MeanStddev(vals []float64) (mean, std float64) {
	var w Welford
	for _, v := range vals {
		w.Add(v)
	}
	return w.Mean(), w.Stddev()
}

// Histogram is a log₂-bucketed histogram for long-tailed quantities
// (processing times, request sizes).
type Histogram struct {
	counts []uint64
	total  uint64
}

// NewHistogram creates a histogram with buckets [2^i, 2^(i+1)) for
// i in 0..buckets-1 (values < 1 land in bucket 0, overflow in the last).
func NewHistogram(buckets int) *Histogram {
	return &Histogram{counts: make([]uint64, buckets)}
}

// Add records a value.
func (h *Histogram) Add(v float64) {
	b := 0
	if v >= 1 {
		b = int(math.Log2(v))
	}
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	if b < 0 {
		b = 0
	}
	h.counts[b]++
	h.total++
}

// Total returns the number of recorded values.
func (h *Histogram) Total() uint64 { return h.total }

// Bucket returns bucket i's count.
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// CDF returns (upper bound, cumulative fraction) per bucket.
func (h *Histogram) CDF() [][2]float64 {
	if h.total == 0 {
		return nil
	}
	out := make([][2]float64, 0, len(h.counts))
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		out = append(out, [2]float64{math.Pow(2, float64(i+1)), float64(cum) / float64(h.total)})
	}
	return out
}

// FormatMS renders a millisecond quantity the way the paper's tables do:
// three significant-ish decimals for small values, fewer for large.
func FormatMS(ms float64) string {
	switch {
	case ms >= 100:
		return fmt.Sprintf("%.0f", ms)
	case ms >= 10:
		return fmt.Sprintf("%.2f", ms)
	default:
		return fmt.Sprintf("%.3f", ms)
	}
}
