package stats

// BucketQuantile estimates quantile p in (0,1) from a fixed-bucket
// histogram: bounds are the inclusive upper bounds of the finite buckets
// (strictly increasing) and counts holds one entry per finite bucket plus a
// trailing +Inf overflow bucket (len(counts) == len(bounds)+1; a shorter
// counts slice is treated as having empty trailing buckets). The estimate
// interpolates linearly within the containing bucket, the same convention
// Prometheus histogram_quantile uses. Observations in the overflow bucket
// clamp to the largest finite bound. Returns 0 for an empty histogram.
func BucketQuantile(bounds []int64, counts []uint64, p float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := p * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			break // overflow bucket
		}
		lo := 0.0
		if i > 0 {
			lo = float64(bounds[i-1])
		}
		hi := float64(bounds[i])
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return float64(bounds[len(bounds)-1])
}
