package faults

import (
	"reflect"
	"testing"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/sim"
)

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "hang@500ms:w3:dur=300ms;crash@1s:restart=200ms:drop;" +
		"slow@1.5s:dur=1s:x=8;shrinkq@2s:w1:dur=100ms:cap=4;" +
		"syncstall@2.5s:dur=50ms;probeloss@3s:dur=1s:p=0.5"
	s, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 6 {
		t.Fatalf("parsed %d events, want 6", len(s.Events))
	}
	again, err := ParseSpec(s.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s.String(), err)
	}
	if !reflect.DeepEqual(s, again) {
		t.Fatalf("round trip drifted:\n%v\n%v", s, again)
	}
}

func TestParseSpecSortsByTime(t *testing.T) {
	s, err := ParseSpec("crash@2s;hang@1s:dur=10ms")
	if err != nil {
		t.Fatal(err)
	}
	if s.Events[0].Kind != Hang || s.Events[1].Kind != Crash {
		t.Fatalf("events not sorted by time: %v", s)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"explode@1s",           // unknown kind
		"restart@1s",           // recovery kinds are not schedulable
		"detect@1s",            //
		"hang1s",               // missing @
		"hang@oops:dur=1s",     // bad time
		"hang@1s",              // hang needs dur
		"slow@1s:dur=1s",       // slow needs x
		"shrinkq@1s",           // shrinkq needs cap
		"probeloss@1s",         // probeloss needs p
		"probeloss@1s:p=1.5",   // probability out of range
		"hang@1s:dur=1s:boing", // unknown option
		"crash@1s:w-2",         // bad worker
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	a := RandomSchedule(42, 20, 8, time.Second)
	b := RandomSchedule(42, 20, 8, time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := RandomSchedule(43, 20, 8, time.Second)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for i, ev := range a.Events {
		if int(ev.Kind) >= numSchedulable {
			t.Fatalf("event %d has non-schedulable kind %v", i, ev.Kind)
		}
		if i > 0 && ev.AtNS < a.Events[i-1].AtNS {
			t.Fatalf("schedule not time-sorted at %d", i)
		}
	}
}

func testLB(t *testing.T, mode l7lb.Mode, workers int) (*sim.Engine, *l7lb.LB) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := l7lb.DefaultConfig(mode)
	cfg.Workers = workers
	lb, err := l7lb.New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	return eng, lb
}

func openConns(eng *sim.Engine, lb *l7lb.LB, n int) {
	for i := 0; i < n; i++ {
		i := i
		eng.At(eng.Now()+int64(i)*int64(100*time.Microsecond), func() {
			lb.NS.DeliverSYN(kernel.FourTuple{
				SrcIP: uint32(i), SrcPort: uint16(3000 + i), DstIP: 1, DstPort: 8080,
			}, nil)
		})
	}
}

func TestInjectorAppliesScheduledFaults(t *testing.T) {
	eng, lb := testLB(t, l7lb.ModeHermes, 4)
	openConns(eng, lb, 12)
	eng.RunUntil(int64(10 * time.Millisecond))

	sched, err := ParseSpec(
		"hang@5ms:w0:dur=20ms;crash@5ms:w1:restart=20ms:drop;" +
			"slow@5ms:w2:dur=20ms:x=4;shrinkq@5ms:w3:dur=20ms:cap=1;" +
			"syncstall@5ms:dur=20ms;probeloss@5ms:dur=20ms:p=1")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(lb, sched, 1)
	inj.Start()
	eng.RunUntil(eng.Now() + int64(10*time.Millisecond))

	// Mid-window: every fault is in force.
	if !lb.Workers[0].Hung() {
		t.Error("w0 not hung")
	}
	if !lb.Workers[1].Crashed() {
		t.Error("w1 not crashed")
	}
	if m := lb.Workers[2].CostMultiplier(); m != 4 {
		t.Errorf("w2 cost multiplier %v, want 4", m)
	}
	if fu := lb.Ctl.SelMap().FailedUpdates.Load(); fu == 0 {
		t.Error("sync stall failed no selmap updates")
	}
	if inj.Injected != 6 || inj.Skipped != 0 {
		t.Errorf("injected=%d skipped=%d, want 6/0", inj.Injected, inj.Skipped)
	}

	eng.RunUntil(eng.Now() + int64(30*time.Millisecond))
	// Past the windows: everything reverted, the crash restarted.
	if lb.Workers[0].Hung() {
		t.Error("w0 still hung")
	}
	if lb.Workers[1].Crashed() || lb.Workers[1].Restarts != 1 {
		t.Errorf("w1 not restarted: crashed=%v restarts=%d",
			lb.Workers[1].Crashed(), lb.Workers[1].Restarts)
	}
	if m := lb.Workers[2].CostMultiplier(); m != 1 {
		t.Errorf("w2 cost multiplier %v not reverted", m)
	}
	if inj.Restarts != 1 {
		t.Errorf("injector restarts %d, want 1", inj.Restarts)
	}
}

func TestInjectorMostLoadedVictim(t *testing.T) {
	eng, lb := testLB(t, l7lb.ModeExclusive, 4)
	openConns(eng, lb, 16)
	eng.RunUntil(int64(10 * time.Millisecond))

	var want *l7lb.Worker
	for _, w := range lb.Workers {
		if want == nil || w.OpenConns() > want.OpenConns() {
			want = w
		}
	}
	sched, _ := ParseSpec("hang@1ms:dur=5ms")
	inj := NewInjector(lb, sched, 1)
	inj.Start()
	eng.RunUntil(eng.Now() + int64(2*time.Millisecond))
	if !want.Hung() {
		t.Fatalf("most-loaded worker %d (conns=%d) not the hang victim", want.ID, want.OpenConns())
	}
}

func TestWatchdogDetectsAndRestartsHungWorker(t *testing.T) {
	eng, lb := testLB(t, l7lb.ModeHermes, 4)
	openConns(eng, lb, 8)
	eng.RunUntil(int64(10 * time.Millisecond))

	dog := NewWatchdog(lb, time.Millisecond)
	if dog == nil {
		t.Fatal("hermes LB must have a watchdog")
	}
	dog.AutoRestart = true
	dog.RestartDelay = 5 * time.Millisecond
	dog.Start(500 * time.Millisecond)

	victim := lb.Workers[2]
	victim.Hang(100 * time.Millisecond)
	eng.RunUntil(eng.Now() + int64(60*time.Millisecond))

	if dog.Detections == 0 {
		t.Fatal("watchdog never detected the hang")
	}
	if dog.Restarts == 0 || victim.Restarts != 1 {
		t.Fatalf("watchdog did not restart the victim: dog=%d victim=%d",
			dog.Restarts, victim.Restarts)
	}
	if victim.Crashed() || victim.Hung() {
		t.Fatal("victim not healthy after watchdog recovery")
	}
	// Detection must wait out the hang threshold but not much longer.
	if d := dog.DetectionNS[0]; time.Duration(d) < dog.Threshold {
		t.Fatalf("detected at staleness %v, below threshold %v", time.Duration(d), dog.Threshold)
	}
	// A healthy system must not retrigger.
	before := dog.Detections
	eng.RunUntil(eng.Now() + int64(100*time.Millisecond))
	if dog.Detections != before {
		t.Fatalf("watchdog flagged healthy workers: %d -> %d", before, dog.Detections)
	}
}

func TestWatchdogNilForBaselines(t *testing.T) {
	_, lb := testLB(t, l7lb.ModeExclusive, 2)
	dog := NewWatchdog(lb, time.Millisecond)
	if dog != nil {
		t.Fatal("baseline modes have no WST; watchdog must be nil")
	}
	dog.Start(time.Second) // must not panic
	dog.Instrument(nil)
	dog.InstrumentTrace(nil)
}

func TestStaleSelmapFallsBackToHash(t *testing.T) {
	eng, lb := testLB(t, l7lb.ModeHermes, 4)
	openConns(eng, lb, 8)
	eng.RunUntil(int64(10 * time.Millisecond))

	sched, _ := ParseSpec("syncstall@1ms:dur=50ms")
	inj := NewInjector(lb, sched, 1)
	inj.StaleFallback = 5 * time.Millisecond
	inj.Start()
	eng.RunUntil(eng.Now() + int64(20*time.Millisecond))

	// Updates have been failing past the staleness bound: lookups read an
	// empty bitmap, so new connections must still land via hash fallback.
	if v, ok := lb.Ctl.SelMap().Lookup(0); !ok || v != 0 {
		t.Fatalf("stale map should read empty: v=%d ok=%v", v, ok)
	}
	accepted := func() (n uint64) {
		for _, w := range lb.Workers {
			n += w.Accepted
		}
		return n
	}
	before := accepted()
	openConns(eng, lb, 8)
	eng.RunUntil(eng.Now() + int64(20*time.Millisecond))
	if accepted() == before {
		t.Fatal("no connections accepted during the stale-bitmap window")
	}
}
