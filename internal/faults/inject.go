package faults

import (
	"math/rand"
	"time"

	"hermes/internal/ebpf"
	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/telemetry"
	"hermes/internal/tracing"
)

// ProbeDropper is the prober surface the injector drives for probe-loss
// faults (both probe.Prober and probe.WorkerProber satisfy it).
type ProbeDropper interface {
	SetDrop(fn func() bool)
}

// Injector applies a Schedule to one LB on its virtual clock. All decisions
// are deterministic: victims are picked from sim state, the only randomness
// (per-probe loss) comes from the injector's own seeded generator, and every
// event lands at a scheduled instant — so runs with the same seed and
// schedule are byte-identical regardless of host parallelism.
type Injector struct {
	lb    *l7lb.LB
	sched Schedule
	rng   *rand.Rand

	// StaleFallback, if set before Start, arms the stale-bitmap recovery
	// path on every selection map (Hermes modes): entries not re-synced
	// within this age read as empty, so the kernel falls back to reuseport
	// hashing instead of steering on a stale bitmap during sync stalls.
	StaleFallback time.Duration

	// Injected counts applied fault events; Skipped counts events that did
	// not apply (no such worker, fault not applicable to the mode).
	Injected uint64
	Skipped  uint64
	// Restarts counts crash-scheduled worker restarts.
	Restarts uint64

	startNS     int64
	dropUntilNS int64
	dropProb    float64

	telInjected *telemetry.CounterVec
	telRestarts *telemetry.Counter
	tr          *tracing.FaultTrace
}

// NewInjector builds an injector for lb. seed drives probe-loss coin flips
// (and nothing else); the schedule itself is already deterministic.
func NewInjector(lb *l7lb.LB, sched Schedule, seed int64) *Injector {
	return &Injector{lb: lb, sched: sched, rng: rand.New(rand.NewSource(seed))}
}

// Instrument wires fault counters into sink (nil = disabled): one injected
// counter per fault kind plus a restart counter, catalogued in
// docs/TELEMETRY.md.
func (inj *Injector) Instrument(sink telemetry.Sink) {
	if sink == nil {
		return
	}
	inj.telInjected = sink.CounterVec(telemetry.Metric{
		Name: "faults.injected", Layer: "faults", Unit: "events",
		Help: "injected fault events by kind (hang, crash, slow, shrinkq, syncstall, probeloss)"}, numSchedulable)
	inj.telRestarts = sink.Counter(telemetry.Metric{
		Name: "faults.worker.restarts", Layer: "faults", Unit: "events",
		Help: "crashed workers brought back by a scheduled restart"})
}

// InstrumentTrace wires the flight recorder: every fault and restart emits
// a fault instant on the victim's track (kernel track for LB-wide faults).
func (inj *Injector) InstrumentTrace(tr *tracing.FaultTrace) { inj.tr = tr }

// AttachProber points a prober's loss hook at this injector's probe-loss
// window. Attach every prober whose stream the schedule should affect.
func (inj *Injector) AttachProber(p ProbeDropper) {
	p.SetDrop(func() bool {
		return inj.lb.Eng.Now() < inj.dropUntilNS && inj.rng.Float64() < inj.dropProb
	})
}

// Start arms the recovery fallback and schedules every event relative to
// the current virtual time.
func (inj *Injector) Start() {
	inj.startNS = inj.lb.Eng.Now()
	if inj.StaleFallback > 0 {
		eng := inj.lb.Eng
		for _, m := range inj.selMaps() {
			m.SetStaleness(eng.Now, int64(inj.StaleFallback))
		}
	}
	for _, ev := range inj.sched.Events {
		ev := ev
		inj.lb.Eng.At(inj.startNS+ev.AtNS, func() { inj.apply(ev) })
	}
}

// selMaps collects every selection map behind the LB (single-level or
// grouped deployment); empty for non-Hermes modes.
func (inj *Injector) selMaps() []*ebpf.ArrayMap {
	if inj.lb.Ctl != nil {
		return []*ebpf.ArrayMap{inj.lb.Ctl.SelMap()}
	}
	if g := inj.lb.GCtl; g != nil {
		out := make([]*ebpf.ArrayMap, g.Groups())
		for gi := range out {
			out[gi] = g.SelMap(gi)
		}
		return out
	}
	return nil
}

// victim resolves an event's target worker: a pinned id, or the most-loaded
// live worker at fire time (ties toward the lowest id). nil if no worker
// qualifies.
func (inj *Injector) victim(ev Event) *l7lb.Worker {
	ws := inj.lb.Workers
	if ev.Worker >= 0 {
		if ev.Worker >= len(ws) {
			return nil
		}
		return ws[ev.Worker]
	}
	var best *l7lb.Worker
	for _, w := range ws {
		if w.Crashed() {
			continue
		}
		if best == nil || w.OpenConns() > best.OpenConns() {
			best = w
		}
	}
	return best
}

func (inj *Injector) apply(ev Event) {
	eng := inj.lb.Eng
	now := eng.Now()
	switch ev.Kind {
	case Hang:
		w := inj.victim(ev)
		if w == nil || w.Crashed() {
			inj.Skipped++
			return
		}
		w.Hang(time.Duration(ev.DurNS))
		inj.record(ev.Kind, int32(w.ID), now, ev.DurNS)
	case Crash:
		w := inj.victim(ev)
		if w == nil || w.Crashed() {
			inj.Skipped++
			return
		}
		w.Crash(ev.Drop)
		inj.record(ev.Kind, int32(w.ID), now, ev.RestartNS)
		if ev.RestartNS > 0 {
			eng.After(time.Duration(ev.RestartNS), func() {
				if !w.Crashed() {
					return // something else (the watchdog) got there first
				}
				w.Restart()
				inj.Restarts++
				inj.telRestarts.Inc()
				inj.tr.Event(int32(w.ID), eng.Now(), int64(Restart), 0)
			})
		}
	case Slow:
		w := inj.victim(ev)
		if w == nil || w.Crashed() {
			inj.Skipped++
			return
		}
		w.SetCostMultiplier(ev.Factor)
		inj.record(ev.Kind, int32(w.ID), now, int64(ev.Factor*1000))
		if ev.DurNS > 0 {
			eng.After(time.Duration(ev.DurNS), func() { w.SetCostMultiplier(1) })
		}
	case ShrinkQueue:
		socks := inj.shrinkTargets(ev)
		if len(socks) == 0 {
			inj.Skipped++
			return
		}
		saved := make([]int, len(socks))
		for i, s := range socks {
			saved[i] = s.AcceptCap()
			s.SetAcceptCap(ev.Cap)
		}
		inj.record(ev.Kind, tracing.KernelTrack, now, int64(ev.Cap))
		if ev.DurNS > 0 {
			eng.After(time.Duration(ev.DurNS), func() {
				for i, s := range socks {
					s.SetAcceptCap(saved[i])
				}
			})
		}
	case SyncStall:
		maps := inj.selMaps()
		if len(maps) == 0 {
			inj.Skipped++
			return
		}
		end := now + ev.DurNS
		fail := func() bool { return ev.DurNS <= 0 || eng.Now() < end }
		for _, m := range maps {
			m.SetFailUpdates(fail)
		}
		inj.record(ev.Kind, tracing.KernelTrack, now, ev.DurNS)
		if ev.DurNS > 0 {
			eng.After(time.Duration(ev.DurNS), func() {
				for _, m := range maps {
					m.SetFailUpdates(nil)
				}
			})
		}
	case ProbeLoss:
		inj.dropProb = ev.Prob
		if ev.DurNS > 0 {
			inj.dropUntilNS = now + ev.DurNS
		} else {
			inj.dropUntilNS = 1<<63 - 1
		}
		inj.record(ev.Kind, tracing.KernelTrack, now, int64(ev.Prob*1000))
	default:
		inj.Skipped++
	}
}

// shrinkTargets picks the sockets an accept-queue shrink applies to: every
// shared listener in shared-socket modes (one queue, LB-wide blast), the
// victim worker's slot in each reuseport group otherwise.
func (inj *Injector) shrinkTargets(ev Event) []*kernel.Socket {
	if shared := inj.lb.SharedSockets(); len(shared) > 0 {
		return shared
	}
	w := inj.victim(ev)
	if w == nil {
		return nil
	}
	groups := inj.lb.Groups()
	out := make([]*kernel.Socket, 0, len(groups))
	for _, g := range groups {
		out = append(out, g.Sockets()[w.ID])
	}
	return out
}

func (inj *Injector) record(k Kind, track int32, nowNS, param int64) {
	inj.Injected++
	inj.telInjected.At(int(k)).Inc()
	inj.tr.Event(track, nowNS, int64(k), param)
}
