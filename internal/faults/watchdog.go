package faults

import (
	"time"

	"hermes/internal/l7lb"
	"hermes/internal/shm"
	"hermes/internal/telemetry"
	"hermes/internal/tracing"
)

// Watchdog detects hung workers from WST loop-enter staleness — the same
// FilterTime signal the Hermes scheduler uses to keep hung workers out of
// the selection bitmap (§5.2.1) — and optionally drives recovery: a flagged
// worker is crashed (resetting its connections, as an external supervisor's
// SIGKILL would) and restarted after RestartDelay. It requires the WST, so
// it only runs on Hermes modes; baselines have no hang signal to watch,
// which is exactly the operational gap the faults experiment quantifies.
type Watchdog struct {
	// Interval between scans.
	Interval time.Duration
	// Threshold is the loop-enter staleness that flags a worker (default:
	// the controller's HangThreshold).
	Threshold time.Duration
	// AutoRestart crashes and restarts flagged workers.
	AutoRestart bool
	// RestartDelay is the crash-to-restart delay under AutoRestart.
	RestartDelay time.Duration

	// Detections counts workers flagged as hung.
	Detections uint64
	// Restarts counts watchdog-driven restarts.
	Restarts uint64
	// DetectionNS records, per detection, the delay between the scan that
	// flagged the worker and its last loop entry (how stale it had gone).
	DetectionNS []int64

	lb      *l7lb.LB
	wst     *shm.WST
	flagged []bool
	buf     []shm.Metrics

	telDetections *telemetry.Counter
	telRestarts   *telemetry.Counter
	tr            *tracing.FaultTrace
}

// NewWatchdog builds a watchdog for lb. Returns nil if the LB has no WST to
// watch (non-Hermes modes, or the grouped >64-worker deployment, which
// would need per-group scans).
func NewWatchdog(lb *l7lb.LB, interval time.Duration) *Watchdog {
	if lb.Ctl == nil {
		return nil
	}
	return &Watchdog{
		Interval:  interval,
		Threshold: lb.Ctl.Config().HangThreshold,
		lb:        lb,
		wst:       lb.Ctl.WST(),
		flagged:   make([]bool, len(lb.Workers)),
	}
}

// Instrument wires detection/restart counters into sink (nil = disabled).
func (d *Watchdog) Instrument(sink telemetry.Sink) {
	if d == nil || sink == nil {
		return
	}
	d.telDetections = sink.Counter(telemetry.Metric{
		Name: "faults.watchdog.detections", Layer: "faults", Unit: "events",
		Help: "workers flagged hung by WST loop-enter staleness"})
	d.telRestarts = sink.Counter(telemetry.Metric{
		Name: "faults.watchdog.restarts", Layer: "faults", Unit: "events",
		Help: "watchdog-driven crash+restart recoveries"})
}

// InstrumentTrace wires the flight recorder (detect/restart instants on the
// victim's track).
func (d *Watchdog) InstrumentTrace(tr *tracing.FaultTrace) {
	if d == nil {
		return
	}
	d.tr = tr
}

// Start scans every Interval over [now, now+dur). Safe on nil (no WST).
func (d *Watchdog) Start(dur time.Duration) {
	if d == nil {
		return
	}
	end := d.lb.Eng.Now() + int64(dur)
	d.scheduleScan(d.lb.Eng.Now(), end)
}

func (d *Watchdog) scheduleScan(prev, end int64) {
	next := prev + int64(d.Interval)
	if next >= end {
		return
	}
	d.lb.Eng.At(next, func() {
		d.scan(next)
		d.scheduleScan(next, end)
	})
}

func (d *Watchdog) scan(nowNS int64) {
	d.buf = d.wst.Snapshot(d.buf[:0])
	thresh := int64(d.Threshold)
	for id, m := range d.buf {
		if id >= len(d.lb.Workers) {
			break
		}
		w := d.lb.Workers[id]
		stale := nowNS - m.LoopEnterNS
		if w.Crashed() || stale <= thresh {
			if stale <= thresh {
				d.flagged[id] = false
			}
			continue
		}
		if d.flagged[id] {
			continue // already detected this hang
		}
		d.flagged[id] = true
		d.Detections++
		d.DetectionNS = append(d.DetectionNS, stale)
		d.telDetections.Inc()
		d.tr.Event(int32(id), nowNS, int64(Detect), stale)
		if d.AutoRestart {
			// Recovery mirrors a supervisor SIGKILL + respawn: the hung
			// process cannot be revived in place, so its connections reset
			// and a fresh worker takes over the slot after RestartDelay.
			w.Crash(true)
			d.lb.Eng.After(d.RestartDelay, func() {
				if !w.Crashed() {
					return
				}
				w.Restart()
				d.Restarts++
				d.telRestarts.Inc()
				d.tr.Event(int32(id), d.lb.Eng.Now(), int64(Restart), 0)
			})
		}
	}
}
