// Package faults is the deterministic fault-injection and recovery layer:
// a sim-clock-driven injector that applies a declarative schedule of worker
// hangs, crashes (with optional restart), slowdowns, accept-queue shrinks,
// selection-map sync stalls, and probe loss to a running LB — identically
// across dispatch modes, so blast radius and recovery time can be compared
// under the *same* fault sequence (§7, Appendix C) — plus a watchdog that
// detects hung workers from WST loop-enter staleness (the paper's
// FilterTime signal) and drives the restart lifecycle.
//
// See docs/FAULTS.md for the spec grammar and recovery semantics.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind classifies a fault or recovery event.
type Kind uint8

// Fault kinds. The first six are schedulable; Restart and Detect are
// recovery events emitted by the injector and watchdog (they appear in
// traces and counters but not in schedules).
const (
	// Hang busy-spins a worker for Dur: it stops fetching and handling
	// events while burning its core (Appendix C case 1).
	Hang Kind = iota
	// Crash kills a worker; with Drop its connections are reset, and with
	// Restart > 0 it is restarted after that delay.
	Crash
	// Slow multiplies a worker's per-event CPU cost by Factor for Dur.
	Slow
	// ShrinkQueue reduces accept-queue capacity to Cap for Dur (shared
	// listeners in shared-socket modes, the victim's reuseport slot
	// otherwise).
	ShrinkQueue
	// SyncStall makes selection-map updates fail for Dur: the kernel keeps
	// serving the stale bitmap (or, with staleness fallback armed, declines
	// and falls back to reuseport hashing). Hermes modes only.
	SyncStall
	// ProbeLoss drops each probe with probability Prob for Dur.
	ProbeLoss
	// Restart is the recovery event of a worker coming back after a crash.
	Restart
	// Detect is the watchdog flagging a hung worker.
	Detect

	numKinds = int(Detect) + 1
	// numSchedulable bounds the kinds a schedule may contain.
	numSchedulable = int(ProbeLoss) + 1
)

var kindNames = [numKinds]string{
	"hang", "crash", "slow", "shrinkq", "syncstall", "probeloss",
	"restart", "detect",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromName inverts String. ok=false for unknown names.
func KindFromName(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one scheduled fault.
type Event struct {
	// Kind selects the fault.
	Kind Kind
	// AtNS is the injection time, relative to Injector.Start.
	AtNS int64
	// Worker is the victim (-1 = the most-loaded worker at fire time,
	// ties broken toward the lowest id). Ignored by SyncStall/ProbeLoss.
	Worker int
	// DurNS is the fault window (hang duration; slow/shrinkq/syncstall/
	// probeloss revert when it elapses; 0 for those = until the run ends).
	DurNS int64
	// RestartNS, for Crash, restarts the worker after this delay (0 = no
	// restart).
	RestartNS int64
	// Drop, for Crash, resets the victim's connections.
	Drop bool
	// Factor is Slow's cost multiplier.
	Factor float64
	// Cap is ShrinkQueue's new accept-queue capacity.
	Cap int
	// Prob is ProbeLoss's per-probe drop probability.
	Prob float64
}

// Schedule is an ordered list of fault events.
type Schedule struct {
	Events []Event
}

// String renders the schedule in the spec grammar (ParseSpec inverts it).
func (s Schedule) String() string {
	parts := make([]string, 0, len(s.Events))
	for _, e := range s.Events {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, ";")
}

// String renders one event in the spec grammar.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s", e.Kind, time.Duration(e.AtNS))
	if e.Worker >= 0 {
		fmt.Fprintf(&b, ":w%d", e.Worker)
	}
	if e.DurNS > 0 {
		fmt.Fprintf(&b, ":dur=%s", time.Duration(e.DurNS))
	}
	if e.RestartNS > 0 {
		fmt.Fprintf(&b, ":restart=%s", time.Duration(e.RestartNS))
	}
	if e.Drop {
		b.WriteString(":drop")
	}
	if e.Factor != 0 {
		fmt.Fprintf(&b, ":x=%g", e.Factor)
	}
	if e.Cap != 0 {
		fmt.Fprintf(&b, ":cap=%d", e.Cap)
	}
	if e.Prob != 0 {
		fmt.Fprintf(&b, ":p=%g", e.Prob)
	}
	return b.String()
}

// ParseSpec parses a fault schedule:
//
//	event[;event...]
//	event = kind@time[:wN][:dur=D][:restart=D][:drop][:x=F][:cap=N][:p=F]
//
// kind ∈ {hang, crash, slow, shrinkq, syncstall, probeloss}; time and D are
// Go durations relative to injector start ("500ms", "1.5s"); wN pins the
// victim worker (default: most-loaded at fire time). Examples:
//
//	hang@500ms:w3:dur=300ms
//	crash@1s:drop:restart=200ms;slow@2s:x=8:dur=1s
func ParseSpec(spec string) (Schedule, error) {
	var s Schedule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return Schedule{}, fmt.Errorf("faults: %q: %w", part, err)
		}
		s.Events = append(s.Events, ev)
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].AtNS < s.Events[j].AtNS })
	return s, nil
}

func parseEvent(part string) (Event, error) {
	fields := strings.Split(part, ":")
	head := fields[0]
	at := strings.IndexByte(head, '@')
	if at < 0 {
		return Event{}, fmt.Errorf("missing @time")
	}
	kind, ok := KindFromName(head[:at])
	if !ok || int(kind) >= numSchedulable {
		return Event{}, fmt.Errorf("unknown fault kind %q", head[:at])
	}
	t, err := time.ParseDuration(head[at+1:])
	if err != nil || t < 0 {
		return Event{}, fmt.Errorf("bad time %q", head[at+1:])
	}
	ev := Event{Kind: kind, AtNS: int64(t), Worker: -1}
	for _, f := range fields[1:] {
		switch {
		case f == "drop":
			ev.Drop = true
		case strings.HasPrefix(f, "w"):
			n, err := strconv.Atoi(f[1:])
			if err != nil || n < 0 {
				return Event{}, fmt.Errorf("bad worker %q", f)
			}
			ev.Worker = n
		case strings.HasPrefix(f, "dur="):
			d, err := time.ParseDuration(f[4:])
			if err != nil || d <= 0 {
				return Event{}, fmt.Errorf("bad dur %q", f)
			}
			ev.DurNS = int64(d)
		case strings.HasPrefix(f, "restart="):
			d, err := time.ParseDuration(f[8:])
			if err != nil || d <= 0 {
				return Event{}, fmt.Errorf("bad restart %q", f)
			}
			ev.RestartNS = int64(d)
		case strings.HasPrefix(f, "x="):
			v, err := strconv.ParseFloat(f[2:], 64)
			if err != nil || v <= 0 {
				return Event{}, fmt.Errorf("bad multiplier %q", f)
			}
			ev.Factor = v
		case strings.HasPrefix(f, "cap="):
			n, err := strconv.Atoi(f[4:])
			if err != nil || n < 1 {
				return Event{}, fmt.Errorf("bad cap %q", f)
			}
			ev.Cap = n
		case strings.HasPrefix(f, "p="):
			v, err := strconv.ParseFloat(f[2:], 64)
			if err != nil || v < 0 || v > 1 {
				return Event{}, fmt.Errorf("bad probability %q", f)
			}
			ev.Prob = v
		default:
			return Event{}, fmt.Errorf("unknown option %q", f)
		}
	}
	return ev, validate(ev)
}

func validate(ev Event) error {
	switch ev.Kind {
	case Hang:
		if ev.DurNS <= 0 {
			return fmt.Errorf("hang needs dur=")
		}
	case Slow:
		if ev.Factor <= 0 {
			return fmt.Errorf("slow needs x=")
		}
	case ShrinkQueue:
		if ev.Cap < 1 {
			return fmt.Errorf("shrinkq needs cap=")
		}
	case ProbeLoss:
		if ev.Prob <= 0 {
			return fmt.Errorf("probeloss needs p=")
		}
	}
	return nil
}

// RandomSchedule draws n schedulable events deterministically from seed:
// injection times uniform over the middle 80% of window, victims uniform
// over the workers (with an occasional most-loaded pick), kind-appropriate
// durations scaled to the window. The same seed always yields the same
// schedule, so randomized fault runs stay byte-reproducible.
func RandomSchedule(seed int64, n, workers int, window time.Duration) Schedule {
	rng := rand.New(rand.NewSource(seed))
	var s Schedule
	for i := 0; i < n; i++ {
		at := int64(window) / 10
		at += rng.Int63n(int64(window)*8/10 + 1)
		ev := Event{Kind: Kind(rng.Intn(numSchedulable)), AtNS: at, Worker: -1}
		if workers > 0 && rng.Intn(4) != 0 {
			ev.Worker = rng.Intn(workers)
		}
		dur := int64(window)/20 + rng.Int63n(int64(window)/10+1)
		switch ev.Kind {
		case Hang:
			ev.DurNS = dur
		case Crash:
			ev.Drop = rng.Intn(2) == 0
			if rng.Intn(2) == 0 {
				ev.RestartNS = dur
			}
		case Slow:
			ev.Factor = float64(2 + rng.Intn(15))
			ev.DurNS = dur
		case ShrinkQueue:
			ev.Cap = 1 + rng.Intn(8)
			ev.DurNS = dur
		case SyncStall:
			ev.DurNS = dur
		case ProbeLoss:
			ev.Prob = 0.1 + 0.8*rng.Float64()
			ev.DurNS = dur
		}
		s.Events = append(s.Events, ev)
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].AtNS < s.Events[j].AtNS })
	return s
}
