package kernel

import (
	"fmt"

	"hermes/internal/sim"
	"hermes/internal/tracing"
)

// WakeMode selects the wait-queue wakeup discipline for shared listening
// sockets — the three epoll behaviours §2.2 compares.
type WakeMode uint8

// Wakeup disciplines.
const (
	// WakeHerd wakes every blocked watcher (pre-4.5 epoll): the thundering
	// herd. Only one wakee wins the connection; the rest burn a spurious
	// wakeup.
	WakeHerd WakeMode = iota
	// WakeExclusiveLIFO wakes the first blocked watcher from the wait-queue
	// head (EPOLLEXCLUSIVE). Because epoll_ctl inserts at the head, the most
	// recently registered non-busy worker is always preferred: the LIFO
	// concentration the paper measures.
	WakeExclusiveLIFO
	// WakeExclusiveRR is the unmerged epoll-rr patch: exclusive wakeup, but
	// the woken watcher is moved to the wait-queue tail.
	WakeExclusiveRR
	// WakeExclusiveFIFO wakes the first blocked watcher from the wait-queue
	// tail — io_uring's default interrupt-mode discipline (§8: "similar to
	// epoll, but in FIFO order"), which concentrates load on the
	// earliest-registered workers instead of the latest.
	WakeExclusiveFIFO
)

func (m WakeMode) String() string {
	switch m {
	case WakeHerd:
		return "herd"
	case WakeExclusiveLIFO:
		return "exclusive"
	case WakeExclusiveRR:
		return "exclusive-rr"
	case WakeExclusiveFIFO:
		return "exclusive-fifo"
	default:
		return fmt.Sprintf("WakeMode(%d)", uint8(m))
	}
}

// NetStack owns all sockets, ports, and epoll instances of one simulated
// machine, and implements connection arrival, data delivery, and wakeups.
type NetStack struct {
	// Mode is the wakeup discipline for shared listening sockets.
	Mode WakeMode

	eng         *sim.Engine
	shared      map[uint16]*Socket
	groups      map[uint16]*ReuseportGroup
	nextSockID  int
	nextConnID  uint64
	nextEpollID int

	// SynDrops counts connections refused for lack of a listener or
	// accept-queue overflow.
	SynDrops uint64
	// ConnsEstablished counts successfully queued connections.
	ConnsEstablished uint64

	tel WakeInstruments
	tr  *tracing.KernelTrace
}

// DefaultAcceptBacklog is the accept-queue capacity used when callers pass
// backlog ≤ 0 (listen(2)'s somaxconn role).
const DefaultAcceptBacklog = 1024

// NewNetStack creates a stack on the given engine.
func NewNetStack(eng *sim.Engine, mode WakeMode) *NetStack {
	return &NetStack{
		Mode:   mode,
		eng:    eng,
		shared: make(map[uint16]*Socket),
		groups: make(map[uint16]*ReuseportGroup),
	}
}

// Engine returns the virtual clock this stack runs on.
func (ns *NetStack) Engine() *sim.Engine { return ns.eng }

func (ns *NetStack) newSocket(port uint16, listening bool, backlog int) *Socket {
	if backlog <= 0 {
		backlog = DefaultAcceptBacklog
	}
	ns.nextSockID++
	return &Socket{
		ID:        ns.nextSockID,
		Port:      port,
		Listening: listening,
		acceptCap: backlog,
		ns:        ns,
	}
}

// ListenShared binds one listening socket to port, to be registered with
// multiple workers' epoll instances (the epoll-exclusive deployment).
func (ns *NetStack) ListenShared(port uint16, backlog int) (*Socket, error) {
	if err := ns.checkPortFree(port); err != nil {
		return nil, err
	}
	s := ns.newSocket(port, true, backlog)
	ns.shared[port] = s
	return s, nil
}

// ListenReuseport binds n SO_REUSEPORT sockets to port, one per worker (the
// reuseport and Hermes deployments).
func (ns *NetStack) ListenReuseport(port uint16, n, backlog int) (*ReuseportGroup, error) {
	if err := ns.checkPortFree(port); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("kernel: reuseport group needs ≥1 sockets, got %d", n)
	}
	g := &ReuseportGroup{Port: port, ns: ns}
	for i := 0; i < n; i++ {
		s := ns.newSocket(port, true, backlog)
		s.group = g
		s.groupIdx = i
		g.socks = append(g.socks, s)
	}
	ns.groups[port] = g
	return g, nil
}

func (ns *NetStack) checkPortFree(port uint16) error {
	if _, ok := ns.shared[port]; ok {
		return fmt.Errorf("kernel: port %d already bound (shared)", port)
	}
	if _, ok := ns.groups[port]; ok {
		return fmt.Errorf("kernel: port %d already bound (reuseport)", port)
	}
	return nil
}

// Group returns the reuseport group bound to port, if any.
func (ns *NetStack) Group(port uint16) *ReuseportGroup { return ns.groups[port] }

// SharedSocket returns the shared listening socket bound to port, if any.
func (ns *NetStack) SharedSocket(port uint16) *Socket { return ns.shared[port] }

// NewEpoll creates an epoll instance (epoll_create).
func (ns *NetStack) NewEpoll() *Epoll {
	ns.nextEpollID++
	return &Epoll{ID: ns.nextEpollID, ns: ns, interest: make(map[*Socket]*watch)}
}

// DeliverSYN completes a handshake for a connection to tuple.DstPort: the
// kernel selects a listening socket (reuseport hash / attached program /
// shared socket), creates the connection socket, and queues it for accept.
// Returns ok=false if there is no listener or the accept queue overflowed.
func (ns *NetStack) DeliverSYN(tuple FourTuple, meta any) (*Conn, bool) {
	var target *Socket
	via := tracing.ViaShared
	worker := tracing.KernelTrack
	if g, ok := ns.groups[tuple.DstPort]; ok {
		target, via = g.selectSocket(tuple.Hash(), tuple.LocalityHash())
		worker = int32(target.groupIdx)
	} else if s, ok := ns.shared[tuple.DstPort]; ok {
		target = s
	} else {
		ns.SynDrops++
		ns.tr.ConnDropped(ns.eng.Now(), tracing.ViaShared, false)
		return nil, false
	}

	ns.nextConnID++
	c := &Conn{
		ID:            ConnID(ns.nextConnID),
		Tuple:         tuple,
		Hash:          tuple.Hash(),
		EstablishedNS: ns.eng.Now(),
		AcceptedNS:    -1,
		Meta:          meta,
	}
	cs := ns.newSocket(tuple.DstPort, false, 0)
	cs.conn = c
	c.sock = cs

	if !target.enqueueConn(c) {
		ns.SynDrops++
		ns.tr.ConnDropped(ns.eng.Now(), via, true)
		return nil, false
	}
	ns.ConnsEstablished++
	ns.tr.ConnEstablished(uint64(c.ID), c.EstablishedNS, worker, via)
	return c, true
}

// DeliverData makes payload readable on an established connection. Data
// arriving for a closed connection is silently dropped (peer will see RST in
// a real stack).
func (ns *NetStack) DeliverData(c *Conn, payload any) {
	s := c.sock
	if s.closed {
		return
	}
	s.pending = append(s.pending, payload)
	ns.socketReady(s)
}

// DeliverFIN marks the peer side of the connection closed.
func (ns *NetStack) DeliverFIN(c *Conn) {
	s := c.sock
	if s.closed || s.hup {
		return
	}
	s.hup = true
	ns.socketReady(s)
}

// CloseSocket closes a socket from the worker side, deregistering it from
// every epoll instance watching it (close(2) removes epoll registrations).
func (ns *NetStack) CloseSocket(s *Socket) {
	if s.closed {
		return
	}
	s.closed = true
	for len(s.watchers) > 0 {
		s.watchers[0].ep.Del(s)
	}
	if s.Listening && s.group == nil {
		delete(ns.shared, s.Port)
	}
}

// socketReady records readiness in every watching epoll and applies the
// wakeup discipline.
func (ns *NetStack) socketReady(s *Socket) {
	for _, w := range s.watchers {
		w.ep.markReady(w)
	}
	switch ns.Mode {
	case WakeHerd:
		ns.tel.Herd.Inc()
		// Snapshot: wakes may mutate nothing here, but stay safe.
		ws := append([]*watch(nil), s.watchers...)
		for _, w := range ws {
			w.ep.wake()
		}
	case WakeExclusiveLIFO:
		ns.tel.LIFO.Inc()
		for _, w := range s.watchers {
			if w.ep.Blocked() {
				w.ep.wake()
				return
			}
		}
	case WakeExclusiveRR:
		ns.tel.RR.Inc()
		for _, w := range s.watchers {
			if w.ep.Blocked() {
				w.ep.wake()
				s.moveWatchToTail(w)
				return
			}
		}
	case WakeExclusiveFIFO:
		ns.tel.FIFO.Inc()
		for i := len(s.watchers) - 1; i >= 0; i-- {
			if w := s.watchers[i]; w.ep.Blocked() {
				w.ep.wake()
				return
			}
		}
	}
}
