package kernel

import (
	"fmt"

	"hermes/internal/sim"
	"hermes/internal/tracing"
)

// WakeMode selects the wait-queue wakeup discipline for shared listening
// sockets — the three epoll behaviours §2.2 compares.
type WakeMode uint8

// Wakeup disciplines.
const (
	// WakeHerd wakes every blocked watcher (pre-4.5 epoll): the thundering
	// herd. Only one wakee wins the connection; the rest burn a spurious
	// wakeup.
	WakeHerd WakeMode = iota
	// WakeExclusiveLIFO wakes the first blocked watcher from the wait-queue
	// head (EPOLLEXCLUSIVE). Because epoll_ctl inserts at the head, the most
	// recently registered non-busy worker is always preferred: the LIFO
	// concentration the paper measures.
	WakeExclusiveLIFO
	// WakeExclusiveRR is the unmerged epoll-rr patch: exclusive wakeup, but
	// the woken watcher is moved to the wait-queue tail.
	WakeExclusiveRR
	// WakeExclusiveFIFO wakes the first blocked watcher from the wait-queue
	// tail — io_uring's default interrupt-mode discipline (§8: "similar to
	// epoll, but in FIFO order"), which concentrates load on the
	// earliest-registered workers instead of the latest.
	WakeExclusiveFIFO
)

func (m WakeMode) String() string {
	switch m {
	case WakeHerd:
		return "herd"
	case WakeExclusiveLIFO:
		return "exclusive"
	case WakeExclusiveRR:
		return "exclusive-rr"
	case WakeExclusiveFIFO:
		return "exclusive-fifo"
	default:
		return fmt.Sprintf("WakeMode(%d)", uint8(m))
	}
}

// NetStack owns all sockets, ports, and epoll instances of one simulated
// machine, and implements connection arrival, data delivery, and wakeups.
//
// The per-connection fast path is allocation-free in steady state: Conn
// objects (paired with their connection Sockets) and epoll watches are
// pooled and recycled on close, so a long run's allocation count is bounded
// by peak concurrency, not connection count (see docs/PERF.md).
type NetStack struct {
	// Mode is the wakeup discipline for shared listening sockets.
	Mode WakeMode

	eng         *sim.Engine
	shared      map[uint16]*Socket
	groups      map[uint16]*ReuseportGroup
	nextSockID  int
	nextConnID  uint64
	nextEpollID int

	// Free lists. A pooled Conn keeps its paired connection Socket (and
	// that socket's queue backing arrays) across incarnations; a fresh
	// ConnID is assigned on reuse, never on release, so handles held
	// across the recycle boundary (ConnRef) can detect it while
	// same-event post-close reads still see the old connection intact.
	connFree  []*Conn
	watchFree []*watch

	// SynDrops counts connections refused for lack of a listener or
	// accept-queue overflow.
	SynDrops uint64
	// ConnsEstablished counts successfully queued connections.
	ConnsEstablished uint64

	tel WakeInstruments
	tr  *tracing.KernelTrace
}

// DefaultAcceptBacklog is the accept-queue capacity used when callers pass
// backlog ≤ 0 (listen(2)'s somaxconn role).
const DefaultAcceptBacklog = 1024

// NewNetStack creates a stack on the given engine.
func NewNetStack(eng *sim.Engine, mode WakeMode) *NetStack {
	return &NetStack{
		Mode:   mode,
		eng:    eng,
		shared: make(map[uint16]*Socket),
		groups: make(map[uint16]*ReuseportGroup),
	}
}

// Engine returns the virtual clock this stack runs on.
func (ns *NetStack) Engine() *sim.Engine { return ns.eng }

func (ns *NetStack) newSocket(port uint16, listening bool, backlog int) *Socket {
	if backlog <= 0 {
		backlog = DefaultAcceptBacklog
	}
	ns.nextSockID++
	return &Socket{
		ID:        ns.nextSockID,
		Port:      port,
		Listening: listening,
		acceptCap: backlog,
		ns:        ns,
	}
}

// newWatch pops a pooled watch or allocates one. All fields except gen are
// reset by the caller.
func (ns *NetStack) newWatch() *watch {
	if n := len(ns.watchFree); n > 0 {
		w := ns.watchFree[n-1]
		ns.watchFree[n-1] = nil
		ns.watchFree = ns.watchFree[:n-1]
		return w
	}
	return &watch{}
}

// releaseWatch returns an unhooked watch to the pool, bumping its generation
// so stale-handle checks can detect reuse. The caller must already have
// unlinked it from its socket wait queue and epoll ready list.
func (ns *NetStack) releaseWatch(w *watch) {
	w.ep = nil
	w.sock = nil
	w.et = false
	w.inReady = false
	w.gen++
	ns.watchFree = append(ns.watchFree, w)
}

// ListenShared binds one listening socket to port, to be registered with
// multiple workers' epoll instances (the epoll-exclusive deployment).
func (ns *NetStack) ListenShared(port uint16, backlog int) (*Socket, error) {
	if err := ns.checkPortFree(port); err != nil {
		return nil, err
	}
	s := ns.newSocket(port, true, backlog)
	ns.shared[port] = s
	return s, nil
}

// ListenReuseport binds n SO_REUSEPORT sockets to port, one per worker (the
// reuseport and Hermes deployments).
func (ns *NetStack) ListenReuseport(port uint16, n, backlog int) (*ReuseportGroup, error) {
	if err := ns.checkPortFree(port); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("kernel: reuseport group needs ≥1 sockets, got %d", n)
	}
	g := &ReuseportGroup{Port: port, ns: ns}
	for i := 0; i < n; i++ {
		s := ns.newSocket(port, true, backlog)
		s.group = g
		s.groupIdx = i
		g.socks = append(g.socks, s)
	}
	ns.groups[port] = g
	return g, nil
}

func (ns *NetStack) checkPortFree(port uint16) error {
	if _, ok := ns.shared[port]; ok {
		return fmt.Errorf("kernel: port %d already bound (shared)", port)
	}
	if _, ok := ns.groups[port]; ok {
		return fmt.Errorf("kernel: port %d already bound (reuseport)", port)
	}
	return nil
}

// Group returns the reuseport group bound to port, if any.
func (ns *NetStack) Group(port uint16) *ReuseportGroup { return ns.groups[port] }

// SharedSocket returns the shared listening socket bound to port, if any.
func (ns *NetStack) SharedSocket(port uint16) *Socket { return ns.shared[port] }

// NewEpoll creates an epoll instance (epoll_create).
func (ns *NetStack) NewEpoll() *Epoll {
	ns.nextEpollID++
	ep := &Epoll{ID: ns.nextEpollID, ns: ns, interest: make(map[*Socket]*watch)}
	// Bind the delivery trampolines once: method values allocate per
	// evaluation, and these are scheduled on every wakeup.
	ep.deliverFn = ep.deliver
	ep.timeoutFn = ep.onTimeout
	return ep
}

// DeliverSYN completes a handshake for a connection to tuple.DstPort: the
// kernel selects a listening socket (reuseport hash / attached program /
// shared socket), creates the connection socket, and queues it for accept.
// Returns ok=false if there is no listener or the accept queue overflowed.
func (ns *NetStack) DeliverSYN(tuple FourTuple, meta any) (*Conn, bool) {
	var target *Socket
	via := tracing.ViaShared
	worker := tracing.KernelTrack
	if g, ok := ns.groups[tuple.DstPort]; ok {
		target, via = g.selectSocket(tuple.Hash(), tuple.LocalityHash())
		worker = int32(target.groupIdx)
	} else if s, ok := ns.shared[tuple.DstPort]; ok {
		target = s
	} else {
		ns.SynDrops++
		ns.tr.ConnDropped(ns.eng.Now(), tracing.ViaShared, false)
		return nil, false
	}

	ns.nextConnID++
	var c *Conn
	if n := len(ns.connFree); n > 0 {
		// Reincarnate a pooled pair. ID sequences match the allocating
		// path: the conn ID above, then a fresh socket ID.
		c = ns.connFree[n-1]
		ns.connFree[n-1] = nil
		ns.connFree = ns.connFree[:n-1]
		cs := c.sock
		ns.nextSockID++
		cs.ID = ns.nextSockID
		cs.Port = tuple.DstPort
		cs.Drops = 0
		cs.Accepted = 0
		for i := cs.pendHead; i < len(cs.pending); i++ {
			cs.pending[i] = nil
		}
		cs.pending = cs.pending[:0]
		cs.pendHead = 0
		cs.hup = false
		cs.closed = false
		cs.owned = false
	} else {
		c = &Conn{}
		cs := ns.newSocket(tuple.DstPort, false, 0)
		cs.conn = c
		c.sock = cs
	}
	c.ID = ConnID(ns.nextConnID)
	c.Tuple = tuple
	c.Hash = tuple.Hash()
	c.EstablishedNS = ns.eng.Now()
	c.AcceptedNS = -1
	c.Meta = meta

	if !target.enqueueConn(c) {
		ns.SynDrops++
		ns.tr.ConnDropped(ns.eng.Now(), via, true)
		// Never exposed; recycle immediately (the conn ID stays consumed,
		// as it was before pooling).
		ns.connFree = append(ns.connFree, c)
		return nil, false
	}
	ns.ConnsEstablished++
	ns.tr.ConnEstablished(uint64(c.ID), c.EstablishedNS, worker, via)
	return c, true
}

// DeliverData makes payload readable on an established connection. Data
// arriving for a closed connection is silently dropped (peer will see RST in
// a real stack).
func (ns *NetStack) DeliverData(c *Conn, payload any) {
	s := c.sock
	if s.closed {
		return
	}
	s.pushData(payload)
	ns.socketReady(s)
}

// DeliverFIN marks the peer side of the connection closed.
func (ns *NetStack) DeliverFIN(c *Conn) {
	s := c.sock
	if s.closed || s.hup {
		return
	}
	s.hup = true
	ns.socketReady(s)
}

// CloseSocket closes a socket from the worker side, deregistering it from
// every epoll instance watching it (close(2) removes epoll registrations).
// A closed connection socket returns to the pool with its Conn; its fields
// stay intact until a later handshake reincarnates the pair under a fresh
// ConnID, so reads within the closing event chain still see the old
// connection (cross-event holders must revalidate via ConnRef).
func (ns *NetStack) CloseSocket(s *Socket) {
	if s.closed {
		return
	}
	s.closed = true
	for s.watchHead != nil {
		s.watchHead.ep.Del(s)
	}
	if s.Listening {
		if s.group == nil {
			delete(ns.shared, s.Port)
		}
	} else if s.conn != nil {
		ns.connFree = append(ns.connFree, s.conn)
	}
}

// socketReady records readiness in every watching epoll and applies the
// wakeup discipline. The wait queue is walked in place: wake() only
// schedules delivery (it never relinks wait-queue entries synchronously),
// so no snapshot of the watcher list is needed.
func (ns *NetStack) socketReady(s *Socket) {
	for w := s.watchHead; w != nil; w = w.next {
		w.ep.markReady(w)
	}
	switch ns.Mode {
	case WakeHerd:
		ns.tel.Herd.Inc()
		for w := s.watchHead; w != nil; w = w.next {
			w.ep.wake()
		}
	case WakeExclusiveLIFO:
		ns.tel.LIFO.Inc()
		for w := s.watchHead; w != nil; w = w.next {
			if w.ep.Blocked() {
				w.ep.wake()
				return
			}
		}
	case WakeExclusiveRR:
		ns.tel.RR.Inc()
		for w := s.watchHead; w != nil; w = w.next {
			if w.ep.Blocked() {
				w.ep.wake()
				s.moveWatchToTail(w)
				return
			}
		}
	case WakeExclusiveFIFO:
		ns.tel.FIFO.Inc()
		for w := s.watchTail; w != nil; w = w.prev {
			if w.ep.Blocked() {
				w.ep.wake()
				return
			}
		}
	}
}
