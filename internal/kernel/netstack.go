package kernel

import (
	"fmt"

	"hermes/internal/sim"
	"hermes/internal/tracing"
)

// WakeMode selects the wait-queue wakeup discipline for shared listening
// sockets — the three epoll behaviours §2.2 compares.
type WakeMode uint8

// Wakeup disciplines.
const (
	// WakeHerd wakes every blocked watcher (pre-4.5 epoll): the thundering
	// herd. Only one wakee wins the connection; the rest burn a spurious
	// wakeup.
	WakeHerd WakeMode = iota
	// WakeExclusiveLIFO wakes the first blocked watcher from the wait-queue
	// head (EPOLLEXCLUSIVE). Because epoll_ctl inserts at the head, the most
	// recently registered non-busy worker is always preferred: the LIFO
	// concentration the paper measures.
	WakeExclusiveLIFO
	// WakeExclusiveRR is the unmerged epoll-rr patch: exclusive wakeup, but
	// the woken watcher is moved to the wait-queue tail.
	WakeExclusiveRR
	// WakeExclusiveFIFO wakes the first blocked watcher from the wait-queue
	// tail — io_uring's default interrupt-mode discipline (§8: "similar to
	// epoll, but in FIFO order"), which concentrates load on the
	// earliest-registered workers instead of the latest.
	WakeExclusiveFIFO
)

func (m WakeMode) String() string {
	switch m {
	case WakeHerd:
		return "herd"
	case WakeExclusiveLIFO:
		return "exclusive"
	case WakeExclusiveRR:
		return "exclusive-rr"
	case WakeExclusiveFIFO:
		return "exclusive-fifo"
	default:
		return fmt.Sprintf("WakeMode(%d)", uint8(m))
	}
}

// NetStack owns all sockets, ports, and epoll instances of one simulated
// machine, and implements connection arrival, data delivery, and wakeups.
//
// The per-connection fast path is allocation-free in steady state: Conn
// objects (paired with their connection Sockets) and epoll watches are
// pooled and recycled on close, so a long run's allocation count is bounded
// by peak concurrency, not connection count (see docs/PERF.md).
type NetStack struct {
	// Mode is the wakeup discipline for shared listening sockets.
	Mode WakeMode

	eng         *sim.Engine
	shared      map[uint16]*Socket
	groups      map[uint16]*ReuseportGroup
	nextSockID  int
	nextConnID  uint64
	nextEpollID int

	// Free lists. A pooled Conn keeps its paired connection Socket (and
	// that socket's queue backing arrays) across incarnations; a fresh
	// ConnID is assigned on reuse, never on release, so handles held
	// across the recycle boundary (ConnRef) can detect it while
	// same-event post-close reads still see the old connection intact.
	connFree  []*Conn
	watchFree []*watch

	// Burst machinery (BeginBurst/EndBurst). While a burst is open and
	// burstWidth > 1, epoll wakeups coalesce: instead of one trampoline
	// engine event per wake, woken instances append to the open flush
	// frame and one flush event per frame pops each delivery in schedule
	// order. burstEps/burstFrames are head-indexed and reused, so
	// steady-state coalescing is allocation-free.
	burstWidth      int      // deliveries per flush frame; 1 = paper-literal trampolines
	burstDepth      int      // BeginBurst nesting depth
	burstEps        []*Epoll // FIFO of coalesced deliveries (one pendQ entry each)
	burstEpsHead    int
	burstOpen       int   // entries in the currently open (unsealed) frame
	burstFrames     []int // sealed frame sizes, one flush event scheduled per frame
	burstFramesHead int
	burstFlushFn    func()

	// SynDrops counts connections refused for lack of a listener or
	// accept-queue overflow.
	SynDrops uint64
	// ConnsEstablished counts successfully queued connections.
	ConnsEstablished uint64

	tel WakeInstruments
	tr  *tracing.KernelTrace
}

// DefaultAcceptBacklog is the accept-queue capacity used when callers pass
// backlog ≤ 0 (listen(2)'s somaxconn role).
const DefaultAcceptBacklog = 1024

// NewNetStack creates a stack on the given engine.
func NewNetStack(eng *sim.Engine, mode WakeMode) *NetStack {
	ns := &NetStack{
		Mode:       mode,
		eng:        eng,
		shared:     make(map[uint16]*Socket),
		groups:     make(map[uint16]*ReuseportGroup),
		burstWidth: 1,
	}
	// Bind the flush trampoline once (method values allocate per evaluation).
	ns.burstFlushFn = ns.flushBurst
	return ns
}

// SetBurstWidth sets the maximum number of epoll wake deliveries coalesced
// into one flush engine event while a burst is open. Width 1 (the default)
// is the paper-literal path: every wakeup schedules its own trampoline
// event. Any width yields byte-identical simulation output: a flush frame
// occupies the engine-queue position of its first member, and its members
// were scheduled back-to-back within one engine event — so they were
// adjacent in the same-tick FIFO already, and firing them consecutively
// from the flush preserves the global order exactly.
func (ns *NetStack) SetBurstWidth(w int) {
	if w < 1 {
		w = 1
	}
	ns.burstWidth = w
}

// BurstWidth returns the configured flush-frame width.
func (ns *NetStack) BurstWidth() int { return ns.burstWidth }

// BeginBurst opens a burst window: until the matching EndBurst, epoll wake
// deliveries triggered by DeliverSYN/DeliverData/DeliverFIN coalesce into
// flush frames of at most BurstWidth. Bursts nest (only the outermost
// EndBurst seals the open frame) and MUST be closed within the same engine
// event that opened them — a burst held across events panics at flush time.
func (ns *NetStack) BeginBurst() { ns.burstDepth++ }

// EndBurst closes a burst window opened by BeginBurst, sealing the open
// flush frame (if any) so its scheduled flush event knows where to stop.
func (ns *NetStack) EndBurst() {
	if ns.burstDepth == 0 {
		panic("kernel: EndBurst without BeginBurst")
	}
	ns.burstDepth--
	if ns.burstDepth == 0 && ns.burstOpen > 0 {
		ns.sealBurstFrame()
	}
}

// burstEnqueue records one coalesced delivery for ep (which has already
// queued the matching pendQ entry). Called by Epoll.schedule instead of
// arming a per-delivery trampoline while a burst is open.
func (ns *NetStack) burstEnqueue(ep *Epoll) {
	if ns.burstOpen == 0 {
		// First delivery of a new frame: schedule that frame's flush.
		ns.eng.At(ns.eng.Now(), ns.burstFlushFn)
	}
	ns.burstEps = append(ns.burstEps, ep)
	ns.burstOpen++
	if ns.burstOpen >= ns.burstWidth {
		ns.sealBurstFrame()
	}
}

func (ns *NetStack) sealBurstFrame() {
	ns.burstFrames = append(ns.burstFrames, ns.burstOpen)
	ns.burstOpen = 0
}

// flushBurst fires one sealed flush frame: each coalesced delivery pops in
// schedule order, exactly as its dedicated trampoline event would have.
func (ns *NetStack) flushBurst() {
	if ns.burstFramesHead >= len(ns.burstFrames) {
		panic("kernel: burst left open across engine events (missing EndBurst)")
	}
	n := ns.burstFrames[ns.burstFramesHead]
	ns.burstFramesHead++
	if ns.burstFramesHead == len(ns.burstFrames) {
		ns.burstFrames = ns.burstFrames[:0]
		ns.burstFramesHead = 0
	}
	for i := 0; i < n; i++ {
		ep := ns.burstEps[ns.burstEpsHead]
		ns.burstEps[ns.burstEpsHead] = nil
		ns.burstEpsHead++
		ep.deliver()
	}
	if ns.burstEpsHead == len(ns.burstEps) {
		ns.burstEps = ns.burstEps[:0]
		ns.burstEpsHead = 0
	}
}

// Engine returns the virtual clock this stack runs on.
func (ns *NetStack) Engine() *sim.Engine { return ns.eng }

func (ns *NetStack) newSocket(port uint16, listening bool, backlog int) *Socket {
	if backlog <= 0 {
		backlog = DefaultAcceptBacklog
	}
	ns.nextSockID++
	return &Socket{
		ID:        ns.nextSockID,
		Port:      port,
		Listening: listening,
		acceptCap: backlog,
		ns:        ns,
	}
}

// newWatch pops a pooled watch or allocates one. All fields except gen are
// reset by the caller.
func (ns *NetStack) newWatch() *watch {
	if n := len(ns.watchFree); n > 0 {
		w := ns.watchFree[n-1]
		ns.watchFree[n-1] = nil
		ns.watchFree = ns.watchFree[:n-1]
		return w
	}
	return &watch{}
}

// releaseWatch returns an unhooked watch to the pool, bumping its generation
// so stale-handle checks can detect reuse. The caller must already have
// unlinked it from its socket wait queue and epoll ready list.
func (ns *NetStack) releaseWatch(w *watch) {
	w.ep = nil
	w.sock = nil
	w.et = false
	w.inReady = false
	w.gen++
	ns.watchFree = append(ns.watchFree, w)
}

// ListenShared binds one listening socket to port, to be registered with
// multiple workers' epoll instances (the epoll-exclusive deployment).
func (ns *NetStack) ListenShared(port uint16, backlog int) (*Socket, error) {
	if err := ns.checkPortFree(port); err != nil {
		return nil, err
	}
	s := ns.newSocket(port, true, backlog)
	ns.shared[port] = s
	return s, nil
}

// ListenReuseport binds n SO_REUSEPORT sockets to port, one per worker (the
// reuseport and Hermes deployments).
func (ns *NetStack) ListenReuseport(port uint16, n, backlog int) (*ReuseportGroup, error) {
	if err := ns.checkPortFree(port); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("kernel: reuseport group needs ≥1 sockets, got %d", n)
	}
	g := &ReuseportGroup{Port: port, ns: ns}
	for i := 0; i < n; i++ {
		s := ns.newSocket(port, true, backlog)
		s.group = g
		s.groupIdx = i
		g.socks = append(g.socks, s)
	}
	ns.groups[port] = g
	return g, nil
}

func (ns *NetStack) checkPortFree(port uint16) error {
	if _, ok := ns.shared[port]; ok {
		return fmt.Errorf("kernel: port %d already bound (shared)", port)
	}
	if _, ok := ns.groups[port]; ok {
		return fmt.Errorf("kernel: port %d already bound (reuseport)", port)
	}
	return nil
}

// Group returns the reuseport group bound to port, if any.
func (ns *NetStack) Group(port uint16) *ReuseportGroup { return ns.groups[port] }

// SharedSocket returns the shared listening socket bound to port, if any.
func (ns *NetStack) SharedSocket(port uint16) *Socket { return ns.shared[port] }

// NewEpoll creates an epoll instance (epoll_create).
func (ns *NetStack) NewEpoll() *Epoll {
	ns.nextEpollID++
	ep := &Epoll{ID: ns.nextEpollID, ns: ns}
	// Bind the delivery trampolines once: method values allocate per
	// evaluation, and these are scheduled on every wakeup.
	ep.deliverFn = ep.deliver
	ep.timeoutFn = ep.onTimeout
	return ep
}

// DeliverSYN completes a handshake for a connection to tuple.DstPort: the
// kernel selects a listening socket (reuseport hash / attached program /
// shared socket), creates the connection socket, and queues it for accept.
// Returns ok=false if there is no listener or the accept queue overflowed.
func (ns *NetStack) DeliverSYN(tuple FourTuple, meta any) (*Conn, bool) {
	g := ns.groups[tuple.DstPort]
	var s *Socket
	if g == nil {
		s = ns.shared[tuple.DstPort]
	}
	return ns.deliverSYNResolved(tuple, meta, g, s)
}

// deliverSYNResolved is DeliverSYN past port resolution: the listener (g or
// s, both possibly nil for an unbound port) has already been looked up, so
// burst callers pay the map walk once per run of equal destination ports.
func (ns *NetStack) deliverSYNResolved(tuple FourTuple, meta any, g *ReuseportGroup, s *Socket) (*Conn, bool) {
	var target *Socket
	via := tracing.ViaShared
	worker := tracing.KernelTrack
	hash := tuple.Hash()
	if g != nil {
		target, via = g.selectSocket(hash, tuple.LocalityHash())
		worker = int32(target.groupIdx)
	} else if s != nil {
		target = s
	} else {
		ns.SynDrops++
		ns.tr.ConnDropped(ns.eng.Now(), tracing.ViaShared, false)
		return nil, false
	}

	ns.nextConnID++
	var c *Conn
	if n := len(ns.connFree); n > 0 {
		// Reincarnate a pooled pair. ID sequences match the allocating
		// path: the conn ID above, then a fresh socket ID.
		c = ns.connFree[n-1]
		ns.connFree[n-1] = nil
		ns.connFree = ns.connFree[:n-1]
		cs := c.sock
		ns.nextSockID++
		cs.ID = ns.nextSockID
		cs.Port = tuple.DstPort
		cs.Drops = 0
		cs.Accepted = 0
		for i := cs.pendHead; i < len(cs.pending); i++ {
			cs.pending[i] = nil
		}
		cs.pending = cs.pending[:0]
		cs.pendHead = 0
		cs.hup = false
		cs.closed = false
		cs.owned = false
	} else {
		c = &Conn{}
		cs := ns.newSocket(tuple.DstPort, false, 0)
		cs.conn = c
		c.sock = cs
	}
	c.ID = ConnID(ns.nextConnID)
	c.Tuple = tuple
	c.Hash = hash
	c.EstablishedNS = ns.eng.Now()
	c.AcceptedNS = -1
	c.Meta = meta

	if !target.enqueueConn(c) {
		ns.SynDrops++
		ns.tr.ConnDropped(ns.eng.Now(), via, true)
		// Never exposed; recycle immediately (the conn ID stays consumed,
		// as it was before pooling).
		ns.connFree = append(ns.connFree, c)
		return nil, false
	}
	ns.ConnsEstablished++
	ns.tr.ConnEstablished(uint64(c.ID), c.EstablishedNS, worker, via)
	return c, true
}

// DeliverSYNBurst completes handshakes for a batch of same-tick arrivals —
// the NIC-burst idiom: one engine event carries the whole vector instead of
// one event per SYN. It is observably identical to calling DeliverSYN for
// each tuple, in order, within one engine event; with BurstWidth > 1 the
// resulting wakeups additionally coalesce into flush frames. metas may be
// nil (all-nil metadata). Results append to conns (nil entry per drop) so
// callers can reuse a scratch slice allocation-free.
func (ns *NetStack) DeliverSYNBurst(tuples []FourTuple, metas []any, conns []*Conn) []*Conn {
	ns.BeginBurst()
	// Port resolution is hoisted per run of equal destination ports — a
	// NIC burst is usually single-port, so the map walk amortizes across
	// the vector. Safe within one call: no listener can be bound or closed
	// mid-burst (worker reactions are deferred engine events).
	var (
		g        *ReuseportGroup
		s        *Socket
		port     uint16
		resolved bool
	)
	for i := range tuples {
		if p := tuples[i].DstPort; !resolved || p != port {
			port, resolved = p, true
			g = ns.groups[p]
			s = nil
			if g == nil {
				s = ns.shared[p]
			}
		}
		var m any
		if metas != nil {
			m = metas[i]
		}
		c, _ := ns.deliverSYNResolved(tuples[i], m, g, s)
		conns = append(conns, c)
	}
	ns.EndBurst()
	return conns
}

// DeliverDataBurst makes a batch of payloads readable on their connections
// within one engine event — observably identical to calling DeliverData for
// each non-nil conn in order. payloads may be nil (all-nil payloads); nil
// conns (drops from DeliverSYNBurst) are skipped.
func (ns *NetStack) DeliverDataBurst(conns []*Conn, payloads []any) {
	ns.BeginBurst()
	for i, c := range conns {
		if c == nil {
			continue
		}
		var p any
		if payloads != nil {
			p = payloads[i]
		}
		ns.DeliverData(c, p)
	}
	ns.EndBurst()
}

// DeliverData makes payload readable on an established connection. Data
// arriving for a closed connection is silently dropped (peer will see RST in
// a real stack).
func (ns *NetStack) DeliverData(c *Conn, payload any) {
	s := c.sock
	if s.closed {
		return
	}
	s.pushData(payload)
	ns.socketReady(s)
}

// DeliverFIN marks the peer side of the connection closed.
func (ns *NetStack) DeliverFIN(c *Conn) {
	s := c.sock
	if s.closed || s.hup {
		return
	}
	s.hup = true
	ns.socketReady(s)
}

// CloseSocket closes a socket from the worker side, deregistering it from
// every epoll instance watching it (close(2) removes epoll registrations).
// A closed connection socket returns to the pool with its Conn; its fields
// stay intact until a later handshake reincarnates the pair under a fresh
// ConnID, so reads within the closing event chain still see the old
// connection (cross-event holders must revalidate via ConnRef).
func (ns *NetStack) CloseSocket(s *Socket) {
	if s.closed {
		return
	}
	s.closed = true
	for s.watchHead != nil {
		s.watchHead.ep.Del(s)
	}
	if s.Listening {
		if s.group == nil {
			delete(ns.shared, s.Port)
		}
	} else if s.conn != nil {
		ns.connFree = append(ns.connFree, s.conn)
	}
}

// socketReady records readiness in every watching epoll and applies the
// wakeup discipline. The wait queue is walked in place: wake() only
// schedules delivery (it never relinks wait-queue entries synchronously),
// so no snapshot of the watcher list is needed.
func (ns *NetStack) socketReady(s *Socket) {
	for w := s.watchHead; w != nil; w = w.next {
		w.ep.markReady(w)
	}
	switch ns.Mode {
	case WakeHerd:
		ns.tel.Herd.Inc()
		for w := s.watchHead; w != nil; w = w.next {
			w.ep.wake()
		}
	case WakeExclusiveLIFO:
		ns.tel.LIFO.Inc()
		for w := s.watchHead; w != nil; w = w.next {
			if w.ep.Blocked() {
				w.ep.wake()
				return
			}
		}
	case WakeExclusiveRR:
		ns.tel.RR.Inc()
		for w := s.watchHead; w != nil; w = w.next {
			if w.ep.Blocked() {
				w.ep.wake()
				s.moveWatchToTail(w)
				return
			}
		}
	case WakeExclusiveFIFO:
		ns.tel.FIFO.Inc()
		for w := s.watchTail; w != nil; w = w.prev {
			if w.ep.Blocked() {
				w.ep.wake()
				return
			}
		}
	}
}
