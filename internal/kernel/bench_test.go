package kernel_test

// End-to-end hot-path benchmarks (docs/PERF.md): the full per-connection
// kernel lifecycle and the per-SYN reuseport steering decision. CI gates
// both at 0 allocs/op in steady state; regressions here mean a new
// allocation crept onto the connection fast path.

import (
	"testing"

	"hermes/internal/bitops"
	"hermes/internal/core"
	"hermes/internal/kernel"
	"hermes/internal/sim"
)

// BenchmarkConnLifecycle drives one connection through the complete kernel
// fast path — SYN → reuseport steer → accept-queue → epoll wake → accept →
// epoll add → data arrival → readable wake → read → close — against a real
// blocked epoll waiter, exactly as an l7lb worker experiences it. One op is
// one full connection.
func BenchmarkConnLifecycle(b *testing.B) {
	eng := sim.NewEngine(1)
	ns := kernel.NewNetStack(eng, kernel.WakeExclusiveLIFO)
	g, err := ns.ListenReuseport(8080, 1, 64)
	if err != nil {
		b.Fatal(err)
	}
	ep := ns.NewEpoll()
	ep.Add(g.Sockets()[0])

	// The worker loop: accept everything, feed one request per connection,
	// serve it, close. Pre-bound callback and pre-boxed payload keep the
	// *driver* allocation-free so the benchmark measures only the kernel.
	payload := any(struct{}{})
	var onWake func(evs []kernel.Event)
	served := 0
	onWake = func(evs []kernel.Event) {
		for _, ev := range evs {
			switch ev.Kind {
			case kernel.EvAccept:
				for {
					c, ok := ev.Sock.Accept()
					if !ok {
						break
					}
					ep.Add(c.Sock())
					ns.DeliverData(c, payload)
				}
			case kernel.EvReadable:
				ev.Sock.PopData()
				ns.CloseSocket(ev.Sock)
				served++
			}
		}
		ep.Wait(16, -1, onWake)
	}
	ep.Wait(16, -1, onWake)
	eng.Run()

	tuple := kernel.FourTuple{SrcIP: 1, SrcPort: 1, DstIP: 2, DstPort: 8080}
	// Warm the pools so the measured loop is pure steady state.
	for i := 0; i < 64; i++ {
		tuple.SrcIP = uint32(i)
		if _, ok := ns.DeliverSYN(tuple, nil); !ok {
			b.Fatal("warmup SYN dropped")
		}
		eng.Run()
	}

	served = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuple.SrcIP = uint32(i)
		if _, ok := ns.DeliverSYN(tuple, nil); !ok {
			b.Fatal("SYN dropped")
		}
		eng.Run()
	}
	b.StopTimer()
	if served != b.N {
		b.Fatalf("served %d of %d connections", served, b.N)
	}
}

// BenchmarkSteerSYN measures the per-SYN reuseport dispatch decision —
// plain hash, the Hermes eBPF program, and its native-Go twin — through the
// public DeliverSYN path (steer → enqueue → accept → close), over a
// 16-socket group with a full selection bitmap.
func BenchmarkSteerSYN(b *testing.B) {
	const workers = 16
	fullBitmap := uint64(1)<<workers - 1

	run := func(b *testing.B, attach func(ctl *core.Controller, g *kernel.ReuseportGroup), expect func(hash uint32) int) {
		eng := sim.NewEngine(1)
		ns := kernel.NewNetStack(eng, kernel.WakeExclusiveLIFO)
		g, err := ns.ListenReuseport(8080, workers, 64)
		if err != nil {
			b.Fatal(err)
		}
		if attach != nil {
			ctl, err := core.NewController(workers, core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if err := ctl.SelMap().Update(0, fullBitmap); err != nil {
				b.Fatal(err)
			}
			attach(ctl, g)
		}
		socks := g.Sockets()
		tuple := kernel.FourTuple{SrcIP: 1, SrcPort: 1, DstIP: 2, DstPort: 8080}
		for i := 0; i < 64; i++ { // pool warmup
			tuple.SrcIP = uint32(i)
			c, ok := ns.DeliverSYN(tuple, nil)
			if !ok {
				b.Fatal("warmup SYN dropped")
			}
			if got, ok := socks[expect(tuple.Hash())].Accept(); !ok || got != c {
				b.Fatal("warmup steered to unexpected socket")
			}
			ns.CloseSocket(c.Sock())
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tuple.SrcIP = uint32(i)
			c, ok := ns.DeliverSYN(tuple, nil)
			if !ok {
				b.Fatal("SYN dropped")
			}
			if _, ok := socks[expect(tuple.Hash())].Accept(); !ok {
				b.Fatal("steered to unexpected socket")
			}
			ns.CloseSocket(c.Sock())
		}
	}

	min := core.DefaultConfig().MinWorkers
	hermesExpect := func(hash uint32) int {
		w, ok := core.NativeSelect(fullBitmap, hash, min)
		if !ok {
			b.Fatal("full bitmap declined selection")
		}
		return w
	}

	b.Run("hash", func(b *testing.B) {
		run(b, nil, func(hash uint32) int {
			return int(bitops.ReciprocalScale(hash, workers))
		})
	})
	b.Run("native", func(b *testing.B) {
		run(b, func(ctl *core.Controller, g *kernel.ReuseportGroup) {
			if err := ctl.AttachNative(g); err != nil {
				b.Fatal(err)
			}
		}, hermesExpect)
	})
	b.Run("ebpf", func(b *testing.B) {
		run(b, func(ctl *core.Controller, g *kernel.ReuseportGroup) {
			if err := ctl.AttachEBPF(g); err != nil {
				b.Fatal(err)
			}
		}, hermesExpect)
	})
	// The same program forced through the interpreter: the baseline the JIT
	// is measured against (ebpf vs ebpf-interp is the tier gap; ebpf vs
	// native is the CI-gated ≤1.5× criterion).
	b.Run("ebpf-interp", func(b *testing.B) {
		run(b, func(ctl *core.Controller, g *kernel.ReuseportGroup) {
			if err := ctl.AttachEBPF(g); err != nil {
				b.Fatal(err)
			}
			g.AttachProgramInterpreted(g.Program())
		}, hermesExpect)
	})
}

// TestHerdDataArrivalZeroAlloc pins the fix for the per-arrival watcher
// snapshot (the old socketReady copied the full watcher slice on every data
// delivery): a herd-mode data arrival fanned out to many watching epoll
// instances — the worst case for the wait-queue walk — must not allocate.
func TestHerdDataArrivalZeroAlloc(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := kernel.NewNetStack(eng, kernel.WakeHerd)
	g, err := ns.ListenReuseport(8080, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	conn, ok := ns.DeliverSYN(kernel.FourTuple{SrcIP: 1, SrcPort: 1, DstIP: 2, DstPort: 8080}, nil)
	if !ok {
		t.Fatal("SYN dropped")
	}
	if c, ok := g.Sockets()[0].Accept(); !ok || c != conn {
		t.Fatal("accept failed")
	}
	sock := conn.Sock()

	// Eight epolls watch the same connection socket, each parked in a
	// blocked Wait with a pre-bound callback that drains and re-waits —
	// every herd delivery walks and wakes the full list.
	const watchers = 8
	payload := any(struct{}{})
	woken := 0
	for i := 0; i < watchers; i++ {
		ep := ns.NewEpoll()
		ep.Add(sock)
		var onWake func(evs []kernel.Event)
		onWake = func(evs []kernel.Event) {
			woken++
			for _, ev := range evs {
				if ev.Kind == kernel.EvReadable {
					ev.Sock.PopData()
				}
			}
			ep.Wait(16, -1, onWake)
		}
		ep.Wait(16, -1, onWake)
	}
	deliver := func() {
		ns.DeliverData(conn, payload)
		eng.Run()
	}
	for i := 0; i < 64; i++ { // warm pools and scratch buffers
		deliver()
	}
	woken = 0
	const runs = 200
	if allocs := testing.AllocsPerRun(runs, deliver); allocs != 0 {
		t.Fatalf("herd data arrival allocates %v/op across %d watchers, want 0", allocs, watchers)
	}
	// AllocsPerRun adds one warmup call; every delivery must have woken
	// the whole herd or the walk quietly stopped early.
	if want := (runs + 1) * watchers; woken != want {
		t.Fatalf("woken %d times, want %d", woken, want)
	}
}
