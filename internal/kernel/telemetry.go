package kernel

import "hermes/internal/telemetry"

// This file is the kernel layer's telemetry seam. Each kernel object takes a
// small bundle of instrument handles via Instrument(...); unwired bundles
// hold nil handles, which record nothing (see package telemetry). The metric
// catalog — names, layers, units — is owned by the wiring layer (l7lb), so
// the kernel never touches a Sink or a metric name.

// EpollInstruments instruments one epoll instance. In the LB deployments an
// instance is owned by exactly one worker, so the caller typically slots
// these out of per-worker vectors.
type EpollInstruments struct {
	// Wakeups counts completed epoll_wait calls, including timeouts —
	// every return to userspace.
	Wakeups *telemetry.Counter
	// Spurious counts wakeups that delivered zero events (herd waste).
	Spurious *telemetry.Counter
	// Timeouts counts waits that expired with no events.
	Timeouts *telemetry.Counter
	// Events counts events delivered to this instance.
	Events *telemetry.Counter
	// Residency observes nanoseconds spent blocked per completed wait
	// that actually blocked (immediate returns are not observed).
	Residency *telemetry.Histogram
}

// Instrument wires telemetry into this epoll instance.
func (ep *Epoll) Instrument(ins EpollInstruments) { ep.tel = ins }

// QueueInstruments instruments one listening socket's accept queue. In
// reuseport deployments socket i belongs to worker i, so per-worker wiring
// slots these from vectors indexed by the member index.
type QueueInstruments struct {
	// Enqueued counts connections placed on the accept queue.
	Enqueued *telemetry.Counter
	// Dropped counts connections refused on queue overflow.
	Dropped *telemetry.Counter
	// DepthPeak tracks the high-water accept-queue depth.
	DepthPeak *telemetry.Gauge
}

// Instrument wires telemetry into this listening socket.
func (s *Socket) Instrument(ins QueueInstruments) { s.tel = ins }

// WakeInstruments counts shared-socket wakeup decisions by discipline —
// the LIFO-vs-rr split of §2.2. Only the counter matching the stack's
// WakeMode advances, so a dump shows which discipline ran and how often.
type WakeInstruments struct {
	Herd *telemetry.Counter
	LIFO *telemetry.Counter
	RR   *telemetry.Counter
	FIFO *telemetry.Counter
}

// Instrument wires wakeup-discipline telemetry into the stack.
func (ns *NetStack) Instrument(ins WakeInstruments) { ns.tel = ins }

// GroupInstruments instruments a reuseport group's dispatch decisions.
type GroupInstruments struct {
	// Steered counts connections dispatched to each member socket (worker),
	// whatever path chose it — program, native selector, or hash.
	Steered *telemetry.CounterVec
	// ProgHits counts selections made by the attached program/selector.
	ProgHits *telemetry.Counter
	// HashPicks counts plain hash dispatches (no selector attached).
	HashPicks *telemetry.Counter
	// Fallbacks counts selector declines that fell back to hashing.
	Fallbacks *telemetry.Counter
	// ProgErrors counts selector execution errors (also fall back).
	ProgErrors *telemetry.Counter
}

// Instrument wires telemetry into this reuseport group.
func (g *ReuseportGroup) Instrument(ins GroupInstruments) { g.tel = ins }
