package kernel

import "hermes/internal/tracing"

// This file is the kernel layer's flight-recorder seam, the tracing twin of
// telemetry.go: each object takes a typed handle via InstrumentTrace(...);
// nil handles record nothing, so an untraced run costs one nil check per
// hook site. Handles are wired by the deployment layer (l7lb/tracing.go)
// alongside the telemetry bundles.

// InstrumentTrace wires connection-lifecycle tracing into the stack: SYN
// establishment (with the steering decision) and drop instants on the
// kernel track.
func (ns *NetStack) InstrumentTrace(tr *tracing.KernelTrace) { ns.tr = tr }

// InstrumentTrace wires wakeup tracing into this epoll instance. In the LB
// deployments an instance is owned by exactly one worker, so the handle is
// that worker's track; wakeups that unblock a wait — including spurious
// ones — land there, attributing herd waste to the waiter it woke.
func (ep *Epoll) InstrumentTrace(tr *tracing.WorkerTrace) { ep.tr = tr }
