package kernel

import (
	"fmt"

	"hermes/internal/bitops"
	"hermes/internal/ebpf"
	"hermes/internal/tracing"
)

// ReuseportGroup models a set of SO_REUSEPORT sockets bound to one port.
// With no program attached, incoming connections are spread by stateless
// hashing of the 4-tuple (reciprocal_scale over the member count), which is
// the Linux 3.9 behaviour the paper's reuseport baseline uses. A simulated
// eBPF program attached via AttachProgram — the SO_ATTACH_REUSEPORT_EBPF
// hook — overrides the selection; if the program declines, errs, or picks an
// invalid socket, the group falls back to hashing, exactly the fallback
// Hermes relies on when too few workers pass the coarse filter (§5.3.2).
type ReuseportGroup struct {
	Port uint16

	ns    *NetStack
	socks []*Socket

	prog     *ebpf.Program
	compiled *ebpf.Compiled
	selectFn func(hash, localityHash uint32) (*Socket, bool)

	// Dispatch outcome counters.
	ProgDispatched uint64 // program selected a valid member socket
	HashDispatched uint64 // plain hash (no override attached)
	Fallbacks      uint64 // override declined or picked an invalid socket
	ProgErrors     uint64 // program execution errors (also fall back)

	tel GroupInstruments
}

// Sockets returns the member sockets in bind order (socket i belongs to
// worker i in the Hermes deployment).
func (g *ReuseportGroup) Sockets() []*Socket { return g.socks }

// AttachProgram installs a verified eBPF program as the socket selector.
// Any previously attached selector is replaced. The program is JIT-compiled
// on attach — the kernel does the same for SO_ATTACH_REUSEPORT_EBPF when
// bpf_jit_enable is set — and the compiled form serves every SYN; the
// interpreter remains the reference semantics (AttachProgramInterpreted) and
// the fallback if compilation fails.
func (g *ReuseportGroup) AttachProgram(p *ebpf.Program) {
	g.prog = p
	g.compiled = nil
	g.selectFn = nil
	if c, err := p.Compiled(); err == nil {
		g.compiled = c
	}
}

// AttachProgramInterpreted installs p without JIT compilation, forcing every
// dispatch through the interpreter. Benchmarks use it to measure the tier
// gap; production paths should use AttachProgram.
func (g *ReuseportGroup) AttachProgramInterpreted(p *ebpf.Program) {
	g.prog = p
	g.compiled = nil
	g.selectFn = nil
}

// Program returns the attached eBPF program, nil if none.
func (g *ReuseportGroup) Program() *ebpf.Program { return g.prog }

// Compiled returns the JIT-compiled form of the attached program, nil when
// detached, native, or interpreter-forced.
func (g *ReuseportGroup) Compiled() *ebpf.Compiled { return g.compiled }

// AttachNative installs a Go-native selector with the same contract as an
// eBPF program (production runs the program JIT-compiled; the native path is
// its stand-in for hot benchmarks and ablations). fn returns ok=false to
// request hash fallback.
func (g *ReuseportGroup) AttachNative(fn func(hash, localityHash uint32) (*Socket, bool)) {
	g.selectFn = fn
	g.prog = nil
	g.compiled = nil
}

// Detach removes any attached selector, restoring pure hash dispatch.
func (g *ReuseportGroup) Detach() {
	g.prog = nil
	g.compiled = nil
	g.selectFn = nil
}

// hashPick is the default reuseport selection.
func (g *ReuseportGroup) hashPick(hash uint32) *Socket {
	return g.socks[bitops.ReciprocalScale(hash, uint32(len(g.socks)))]
}

// selectSocket runs the dispatch decision for one incoming connection,
// returning the steering path taken (the trace annotation of KindSYN).
func (g *ReuseportGroup) selectSocket(hash, localityHash uint32) (*Socket, tracing.Via) {
	s, via := g.pick(hash, localityHash)
	g.tel.Steered.At(s.groupIdx).Inc()
	return s, via
}

// pick chooses the member socket and maintains the outcome counters.
func (g *ReuseportGroup) pick(hash, localityHash uint32) (*Socket, tracing.Via) {
	switch {
	case g.prog != nil:
		ctx := ebpf.ReuseportCtx{Hash: hash, LocalityHash: localityHash}
		var (
			r0  uint64
			err error
		)
		if g.compiled != nil {
			r0, err = g.compiled.Run(&ctx)
		} else {
			r0, err = g.prog.Run(&ctx)
		}
		if err != nil {
			g.ProgErrors++
			g.tel.ProgErrors.Inc()
			return g.hashPick(hash), tracing.ViaProgError
		}
		if r0 == 0 && ctx.Selected != nil {
			if s, ok := ctx.Selected.(*Socket); ok && s.group == g && !s.closed {
				g.ProgDispatched++
				g.tel.ProgHits.Inc()
				return s, tracing.ViaProg
			}
		}
		g.Fallbacks++
		g.tel.Fallbacks.Inc()
		return g.hashPick(hash), tracing.ViaFallback
	case g.selectFn != nil:
		if s, ok := g.selectFn(hash, localityHash); ok && s != nil && s.group == g && !s.closed {
			g.ProgDispatched++
			g.tel.ProgHits.Inc()
			return s, tracing.ViaProg
		}
		g.Fallbacks++
		g.tel.Fallbacks.Inc()
		return g.hashPick(hash), tracing.ViaFallback
	default:
		g.HashDispatched++
		g.tel.HashPicks.Inc()
		return g.hashPick(hash), tracing.ViaHash
	}
}

// BuildSockArray fills an ebpf.SockArray with this group's sockets, slot i →
// socket i, modelling the M_socket map Hermes populates at initialization
// (§5.4 "Reuseport socket selection").
func (g *ReuseportGroup) BuildSockArray() (*ebpf.SockArray, error) {
	sa := ebpf.NewSockArray(len(g.socks))
	for i, s := range g.socks {
		if err := sa.Put(uint32(i), s); err != nil {
			return nil, fmt.Errorf("kernel: populate sockarray: %w", err)
		}
	}
	return sa, nil
}
