package kernel_test

// Burst-path equivalence and throughput. The burst API's contract is that
// batching is mechanical only: DeliverSYNBurst/DeliverDataBurst are
// observably identical to inline single-delivery loops within one engine
// event, and any SetBurstWidth yields the same simulation trace — flush
// frames replace per-wake trampoline events without reordering anything.
// These tests pin that contract with a recording trace compared across
// widths and against the single-delivery oracle, including a seeded fuzz
// over random interleavings; BenchmarkBurstDispatch measures the payoff.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hermes/internal/kernel"
	"hermes/internal/sim"
)

// burstOp is one pre-generated driver action. SYN ops append the resulting
// conn (or nil on drop) to the run's arrival-ordered conn list; data/FIN ops
// reference conns by arrival ordinal, so the same schedule replays exactly
// on independent stacks.
type burstOp struct {
	kind int // 0 = SYN, 1 = data, 2 = FIN
	port uint16
	src  uint32
	conn int // arrival ordinal for data/FIN
	val  int // payload ordinal; negative = serve-and-close marker
}

type burstGroup struct {
	tick int64
	ops  []burstOp
}

// genBurstSchedule pre-draws the whole scenario so the burst and oracle
// runs share it verbatim: the driver's randomness must not depend on
// anything the run produces.
func genBurstSchedule(rng *rand.Rand, groups, maxOps int) []burstGroup {
	var out []burstGroup
	tick := int64(1)
	syns := 0
	for g := 0; g < groups; g++ {
		tick += int64(rng.Intn(3)) // 0 keeps some groups on the same tick
		n := 1 + rng.Intn(maxOps)
		ops := make([]burstOp, 0, n)
		for i := 0; i < n; i++ {
			switch k := rng.Intn(4); {
			case k == 0 || syns == 0:
				ops = append(ops, burstOp{kind: 0, port: 8080, src: uint32(1 + rng.Intn(1<<20))})
				syns++
			case k < 3:
				val := rng.Intn(100)
				if rng.Intn(3) == 0 {
					val = -1 - val // serve-and-close marker
				}
				ops = append(ops, burstOp{kind: 1, conn: rng.Intn(syns), val: val})
			default:
				ops = append(ops, burstOp{kind: 2, conn: rng.Intn(syns)})
			}
		}
		out = append(out, burstGroup{tick: tick, ops: ops})
	}
	return out
}

// runBurstScenario replays a schedule on a fresh stack and returns the full
// observable trace. When burst is true, each group's deliveries go through
// BeginBurst/EndBurst (SYN runs via DeliverSYNBurst) at the given width;
// otherwise they run as paper-literal single deliveries in the same engine
// event — the oracle.
func runBurstScenario(t *testing.T, sched []burstGroup, mode kernel.WakeMode, workers int, burst bool, width int) string {
	t.Helper()
	eng := sim.NewEngine(1)
	ns := kernel.NewNetStack(eng, mode)
	if burst {
		ns.SetBurstWidth(width)
	}
	shared, err := ns.ListenShared(8080, 8)
	if err != nil {
		t.Fatal(err)
	}

	var trace strings.Builder
	conns := make([]*kernel.Conn, 0, 256)

	for i := 0; i < workers; i++ {
		ep := ns.NewEpoll()
		ep.Add(shared)
		id := i
		var onWake func(evs []kernel.Event)
		onWake = func(evs []kernel.Event) {
			fmt.Fprintf(&trace, "t=%d w=%d wake n=%d\n", eng.Now(), id, len(evs))
			for _, ev := range evs {
				switch ev.Kind {
				case kernel.EvAccept:
					for {
						c, ok := ev.Sock.Accept()
						if !ok {
							break
						}
						fmt.Fprintf(&trace, "t=%d w=%d accept conn=%d\n", eng.Now(), id, c.ID)
						ep.Add(c.Sock())
					}
				case kernel.EvReadable:
					pv, _ := ev.Sock.PopData()
					v, _ := pv.(int)
					fmt.Fprintf(&trace, "t=%d w=%d read sock=%d val=%d\n", eng.Now(), id, ev.Sock.ID, v)
					if v < 0 {
						ns.CloseSocket(ev.Sock)
					}
				case kernel.EvHangup:
					fmt.Fprintf(&trace, "t=%d w=%d hup sock=%d\n", eng.Now(), id, ev.Sock.ID)
					ns.CloseSocket(ev.Sock)
				}
			}
			ep.Wait(4, -1, onWake)
		}
		ep.Wait(4, -1, onWake)
	}

	// Scratch reused across groups, as a real NIC-burst driver would.
	tuples := make([]kernel.FourTuple, 0, 64)
	batch := make([]*kernel.Conn, 0, 64)
	for _, g := range sched {
		g := g
		eng.At(g.tick, func() {
			if burst {
				ns.BeginBurst()
			}
			// SYNs delivered as one vector per group (preserving op order
			// for the oracle means splitting around non-SYN ops).
			i := 0
			for i < len(g.ops) {
				op := g.ops[i]
				switch op.kind {
				case 0:
					tuples = tuples[:0]
					j := i
					for j < len(g.ops) && g.ops[j].kind == 0 {
						tuples = append(tuples, kernel.FourTuple{SrcIP: g.ops[j].src, SrcPort: 9, DstIP: 2, DstPort: g.ops[j].port})
						j++
					}
					if burst {
						batch = ns.DeliverSYNBurst(tuples, nil, batch[:0])
						conns = append(conns, batch...)
					} else {
						for _, tu := range tuples {
							c, _ := ns.DeliverSYN(tu, nil)
							conns = append(conns, c)
						}
					}
					i = j
				case 1:
					if c := conns[op.conn]; c != nil {
						ns.DeliverData(c, op.val)
					}
					i++
				case 2:
					if c := conns[op.conn]; c != nil {
						ns.DeliverFIN(c)
					}
					i++
				}
			}
			if burst {
				ns.EndBurst()
			}
		})
	}
	eng.Run()
	fmt.Fprintf(&trace, "est=%d drops=%d\n", ns.ConnsEstablished, ns.SynDrops)
	return trace.String()
}

// TestFuzzBurstVsSingleOracle replays random interleavings of burst and
// single deliveries against the single-event oracle: for every seed, wake
// mode, and burst width, the burst run's trace — wakeup times, event
// batches, accept/read/close order, and drop counters — must be byte-equal
// to paper-literal single deliveries. CI runs this under -race.
func TestFuzzBurstVsSingleOracle(t *testing.T) {
	modes := []kernel.WakeMode{kernel.WakeHerd, kernel.WakeExclusiveLIFO, kernel.WakeExclusiveRR, kernel.WakeExclusiveFIFO}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			sched := genBurstSchedule(rng, 60, 12)
			mode := modes[rng.Intn(len(modes))]
			workers := 1 + rng.Intn(5)
			oracle := runBurstScenario(t, sched, mode, workers, false, 1)
			for _, width := range []int{1, 2, 8, 32} {
				got := runBurstScenario(t, sched, mode, workers, true, width)
				if got != oracle {
					t.Fatalf("mode=%v workers=%d width=%d: burst trace diverges from single-delivery oracle\noracle:\n%s\nburst:\n%s",
						mode, workers, width, oracle, got)
				}
			}
		})
	}
}

// TestBurstLeftOpenPanics pins the driver contract: a burst must close
// within the engine event that opened it, and the flush event detects a
// leaked BeginBurst loudly instead of silently misordering deliveries.
func TestBurstLeftOpenPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := kernel.NewNetStack(eng, kernel.WakeHerd)
	ns.SetBurstWidth(8)
	if _, err := ns.ListenShared(8080, 8); err != nil {
		t.Fatal(err)
	}
	ep := ns.NewEpoll()
	ep.Add(ns.SharedSocket(8080))
	ep.Wait(4, -1, func([]kernel.Event) {})
	eng.At(1, func() {
		ns.BeginBurst()
		ns.DeliverSYN(kernel.FourTuple{SrcIP: 1, SrcPort: 9, DstIP: 2, DstPort: 8080}, nil)
		// Missing EndBurst: the scheduled flush must panic.
	})
	defer func() {
		if recover() == nil {
			t.Fatal("flush of a burst left open across events did not panic")
		}
	}()
	eng.Run()
}

// benchBurstDispatch drives NIC-style same-tick arrival bursts through the
// full kernel path — SYN vector → steer → accept-queue → coalesced wakeup →
// batched collect → accept drain → data burst → batched readable serve →
// close — with one op being one connection. batch=1 is the paper-literal
// path (one delivery, one trampoline, one wakeup per connection); larger
// widths amortize the notification machinery across the vector.
func benchBurstDispatch(b *testing.B, batch int) {
	eng := sim.NewEngine(1)
	ns := kernel.NewNetStack(eng, kernel.WakeExclusiveLIFO)
	ns.SetBurstWidth(batch)
	g, err := ns.ListenReuseport(8080, 1, 4096)
	if err != nil {
		b.Fatal(err)
	}
	ep := ns.NewEpoll()
	ep.Add(g.Sockets()[0])

	maxEvents := batch + 16
	served := 0
	accepted := make([]*kernel.Conn, 0, batch)
	var onWake func(evs []kernel.Event)
	onWake = func(evs []kernel.Event) {
		for _, ev := range evs {
			switch ev.Kind {
			case kernel.EvAccept:
				accepted = accepted[:0]
				for {
					c, ok := ev.Sock.Accept()
					if !ok {
						break
					}
					ep.Add(c.Sock())
					accepted = append(accepted, c)
				}
				ns.DeliverDataBurst(accepted, nil)
			case kernel.EvReadable:
				ev.Sock.PopData()
				ns.CloseSocket(ev.Sock)
				served++
			}
		}
		ep.Wait(maxEvents, -1, onWake)
	}
	ep.Wait(maxEvents, -1, onWake)
	eng.Run()

	tuples := make([]kernel.FourTuple, batch)
	for i := range tuples {
		tuples[i] = kernel.FourTuple{SrcPort: 9, DstIP: 2, DstPort: 8080}
	}
	conns := make([]*kernel.Conn, 0, batch)
	var src uint32
	var pend int
	// The arrival is itself an engine event — the quantity bursting
	// reduces: batch=1 models today's one-event-per-SYN ingress, batch=N
	// carries the whole vector in one event.
	arriveEv := func() {
		conns = ns.DeliverSYNBurst(tuples[:pend], nil, conns[:0])
	}
	arrive := func(n int) {
		for i := 0; i < n; i++ {
			src++
			tuples[i].SrcIP = src
		}
		pend = n
		eng.At(eng.Now(), arriveEv)
		eng.Run()
	}
	for i := 0; i < 64; i++ { // pool and scratch warmup
		arrive(batch)
	}

	served = 0
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += batch {
		n := batch
		if rem := b.N - done; rem < n {
			n = rem
		}
		arrive(n)
	}
	b.StopTimer()
	if served != b.N {
		b.Fatalf("served %d of %d connections", served, b.N)
	}
}

// BenchmarkBurstDispatch is the burst-path throughput gate: one op is one
// connection through the full arrival→dispatch lifecycle; CI requires 0
// allocs/op at every width and ≥2× throughput at batch=32 vs batch=1
// (docs/PERF.md).
func BenchmarkBurstDispatch(b *testing.B) {
	for _, batch := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchBurstDispatch(b, batch)
		})
	}
}
