package kernel

import (
	"math/rand"
	"testing"
	"time"

	"hermes/internal/sim"
)

// Random-operation invariant test: an arbitrary interleaving of listens,
// SYNs, data, FINs, accepts, closes, and epoll waits must never panic, and
// conservation must hold: every established connection is exactly one of
// {queued for accept, accepted-and-open, closed}.
func TestFuzzNetstackInvariants(t *testing.T) {
	for _, mode := range []WakeMode{WakeHerd, WakeExclusiveLIFO, WakeExclusiveRR, WakeExclusiveFIFO} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(mode) + 77))
			eng := sim.NewEngine(int64(mode) + 1)
			ns := NewNetStack(eng, mode)

			var (
				listeners []*Socket
				groups    []*ReuseportGroup
				eps       []*Epoll
				conns     []*Conn
				accepted  []*Conn
				closed    int
			)
			nextPort := uint16(1000)

			for step := 0; step < 8000; step++ {
				switch rng.Intn(12) {
				case 0: // new shared listener + register with a random epoll
					s, err := ns.ListenShared(nextPort, 1+rng.Intn(32))
					nextPort++
					if err != nil {
						t.Fatal(err)
					}
					listeners = append(listeners, s)
				case 1: // new reuseport group
					g, err := ns.ListenReuseport(nextPort, 1+rng.Intn(4), 1+rng.Intn(32))
					nextPort++
					if err != nil {
						t.Fatal(err)
					}
					groups = append(groups, g)
					listeners = append(listeners, g.Sockets()...)
				case 2: // new epoll watching random listeners
					ep := ns.NewEpoll()
					eps = append(eps, ep)
					for _, s := range listeners {
						if rng.Intn(3) == 0 && !s.Closed() {
							func() {
								defer func() { recover() }() // duplicate Add panics by contract
								ep.Add(s)
							}()
						}
					}
				case 3, 4, 5: // SYN to a random bound port
					if nextPort == 1000 {
						continue
					}
					port := 1000 + uint16(rng.Intn(int(nextPort-1000)))
					c, ok := ns.DeliverSYN(FourTuple{
						SrcIP: rng.Uint32(), SrcPort: uint16(rng.Intn(65536)),
						DstIP: 1, DstPort: port,
					}, nil)
					if ok {
						conns = append(conns, c)
					}
				case 6: // accept from a random listener
					if len(listeners) == 0 {
						continue
					}
					s := listeners[rng.Intn(len(listeners))]
					if s.Closed() {
						continue
					}
					if c, ok := s.Accept(); ok {
						accepted = append(accepted, c)
					}
				case 7: // deliver data on a random conn
					if len(conns) == 0 {
						continue
					}
					ns.DeliverData(conns[rng.Intn(len(conns))], step)
				case 8: // FIN a random conn
					if len(conns) == 0 {
						continue
					}
					ns.DeliverFIN(conns[rng.Intn(len(conns))])
				case 9: // close a random accepted conn socket
					if len(accepted) == 0 {
						continue
					}
					i := rng.Intn(len(accepted))
					if !accepted[i].Sock().Closed() {
						ns.CloseSocket(accepted[i].Sock())
						closed++
					}
				case 10: // a random epoll waits with zero timeout (poll)
					if len(eps) == 0 {
						continue
					}
					ep := eps[rng.Intn(len(eps))]
					if !ep.Blocked() {
						ep.Wait(1+rng.Intn(8), 0, func(evs []Event) {
							for _, ev := range evs {
								// Consume some events to churn state.
								if ev.Kind == EvReadable {
									ev.Sock.PopData()
								}
							}
						})
					}
				case 11: // advance virtual time
					eng.RunFor(time.Duration(rng.Intn(1000)) * time.Microsecond)
				}
			}
			eng.RunFor(100 * time.Millisecond)

			// Conservation: established = still queued + accepted (some of
			// which were closed) — no connection may vanish.
			queued := 0
			for _, s := range listeners {
				queued += s.QueueLen()
			}
			if uint64(queued+len(accepted)) != ns.ConnsEstablished {
				t.Fatalf("conservation broken: queued %d + accepted %d != established %d",
					queued, len(accepted), ns.ConnsEstablished)
			}
			// Accepted connections carry valid timestamps.
			for _, c := range accepted {
				if c.AcceptedNS < c.EstablishedNS {
					t.Fatalf("accept before establish: %+v", c)
				}
			}
			_ = closed
		})
	}
}
