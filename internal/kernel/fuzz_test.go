package kernel

import (
	"math/rand"
	"testing"
	"time"

	"hermes/internal/sim"
)

// watchHandle snapshots a watch registration at Add time, for stale-handle
// detection: gen is bumped when the watch is recycled through the pool, so a
// handle whose gen no longer matches must never be treated as a live
// registration.
type watchHandle struct {
	w    *watch
	gen  uint64
	ep   *Epoll
	sock *Socket
}

// Random-operation invariant test: an arbitrary interleaving of listens,
// SYNs, data, FINs, accepts, closes, epoll waits/kicks, and epoll teardown
// (worker crash) + rebuild (restart) must never panic, conservation must
// hold (every established connection is exactly one of {queued for accept,
// accepted}), and — with Conn/watch objects now pooled — no stale handle may
// ever be observed live: a ConnRef to a closed connection must either
// resolve to the same, still-closed connection or (once the object is
// recycled) resolve to nil, and a watch handle must be invalidated
// (generation bump) the moment its registration is torn down.
func TestFuzzNetstackInvariants(t *testing.T) {
	for _, mode := range []WakeMode{WakeHerd, WakeExclusiveLIFO, WakeExclusiveRR, WakeExclusiveFIFO} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(mode) + 77))
			eng := sim.NewEngine(int64(mode) + 1)
			ns := NewNetStack(eng, mode)

			var (
				listeners     []*Socket
				groups        []*ReuseportGroup
				eps           []*Epoll
				conns         []ConnRef // established, possibly since closed/recycled
				accepted      []ConnRef // accepted and not yet closed by us
				closedRefs    []ConnRef // refs captured just before we closed them
				watchRefs     []watchHandle
				totalAccepted uint64
			)
			nextPort := uint16(1000)

			// checkStale asserts the pooling invariants over every retained
			// handle. Called periodically and at the end.
			checkStale := func() {
				for _, r := range closedRefs {
					if c := r.Get(); c != nil {
						if c.ID != r.ID() {
							t.Fatalf("ConnRef resolved to a different connection: ref %d got %d", r.ID(), c.ID)
						}
						if !c.Sock().Closed() {
							t.Fatalf("stale ConnRef %d observed live: socket reopened without recycle", r.ID())
						}
					}
				}
				for _, h := range watchRefs {
					if h.w.gen == h.gen {
						// Handle still current: the registration must be intact.
						if got := h.ep.findWatch(h.sock); got != h.w {
							t.Fatalf("live watch handle not registered: epoll %d sock %d", h.ep.ID, h.sock.ID)
						}
						if h.w.ep != h.ep || h.w.sock != h.sock {
							t.Fatalf("live watch handle mutated: epoll %d sock %d", h.ep.ID, h.sock.ID)
						}
					} else if got := h.ep.findWatch(h.sock); got == h.w && got.gen == h.gen {
						t.Fatalf("recycled watch still registered under old generation: epoll %d sock %d", h.ep.ID, h.sock.ID)
					}
				}
			}

			// liveConn draws a random retained connection that is still
			// current and open, pruning dead refs as it goes.
			liveConn := func() *Conn {
				for len(conns) > 0 {
					i := rng.Intn(len(conns))
					c := conns[i].Get()
					if c != nil && !c.Sock().Closed() {
						return c
					}
					conns[i] = conns[len(conns)-1]
					conns = conns[:len(conns)-1]
				}
				return nil
			}

			for step := 0; step < 8000; step++ {
				switch rng.Intn(14) {
				case 0: // new shared listener
					s, err := ns.ListenShared(nextPort, 1+rng.Intn(32))
					nextPort++
					if err != nil {
						t.Fatal(err)
					}
					listeners = append(listeners, s)
				case 1: // new reuseport group
					g, err := ns.ListenReuseport(nextPort, 1+rng.Intn(4), 1+rng.Intn(32))
					nextPort++
					if err != nil {
						t.Fatal(err)
					}
					groups = append(groups, g)
					listeners = append(listeners, g.Sockets()...)
				case 2: // new epoll watching random listeners
					ep := ns.NewEpoll()
					eps = append(eps, ep)
					for _, s := range listeners {
						if rng.Intn(3) == 0 && !s.Closed() {
							func() {
								defer func() { recover() }() // duplicate Add panics by contract
								ep.Add(s)
							}()
							if w := ep.findWatch(s); w != nil {
								watchRefs = append(watchRefs, watchHandle{w: w, gen: w.gen, ep: ep, sock: s})
							}
						}
					}
				case 3, 4, 5: // SYN to a random bound port
					if nextPort == 1000 {
						continue
					}
					port := 1000 + uint16(rng.Intn(int(nextPort-1000)))
					c, ok := ns.DeliverSYN(FourTuple{
						SrcIP: rng.Uint32(), SrcPort: uint16(rng.Intn(65536)),
						DstIP: 1, DstPort: port,
					}, nil)
					if ok {
						conns = append(conns, c.Ref())
					}
				case 6: // accept from a random listener
					if len(listeners) == 0 {
						continue
					}
					s := listeners[rng.Intn(len(listeners))]
					if s.Closed() {
						continue
					}
					if c, ok := s.Accept(); ok {
						if c.AcceptedNS < c.EstablishedNS {
							t.Fatalf("accept before establish: %+v", c)
						}
						totalAccepted++
						accepted = append(accepted, c.Ref())
					}
				case 7: // deliver data on a random live conn
					if c := liveConn(); c != nil {
						ns.DeliverData(c, step)
					}
				case 8: // FIN a random live conn
					if c := liveConn(); c != nil {
						ns.DeliverFIN(c)
					}
				case 9: // close a random accepted conn socket (recycles the pair)
					if len(accepted) == 0 {
						continue
					}
					i := rng.Intn(len(accepted))
					r := accepted[i]
					accepted[i] = accepted[len(accepted)-1]
					accepted = accepted[:len(accepted)-1]
					if c := r.Get(); c != nil && !c.Sock().Closed() {
						ns.CloseSocket(c.Sock())
						closedRefs = append(closedRefs, r)
					}
				case 10: // a random epoll waits (zero timeout or short block)
					if len(eps) == 0 {
						continue
					}
					ep := eps[rng.Intn(len(eps))]
					if !ep.Blocked() {
						timeout := time.Duration(0)
						if rng.Intn(2) == 0 {
							timeout = time.Duration(1+rng.Intn(200)) * time.Microsecond
						}
						ep.Wait(1+rng.Intn(8), timeout, func(evs []Event) {
							for _, ev := range evs {
								// Consume some events to churn state.
								if ev.Kind == EvReadable {
									ev.Sock.PopData()
								}
							}
						})
					}
				case 11: // kick a random epoll (userspace wakeup)
					if len(eps) > 0 {
						eps[rng.Intn(len(eps))].Kick()
					}
				case 12: // crash a random epoll's worker; sometimes restart it
					if len(eps) == 0 {
						continue
					}
					i := rng.Intn(len(eps))
					old := eps[i]
					old.Close()
					for _, h := range watchRefs {
						if h.ep == old && h.w.gen == h.gen {
							t.Fatalf("watch handle survived epoll teardown: epoll %d sock %d", old.ID, h.sock.ID)
						}
					}
					if rng.Intn(2) == 0 { // restart: fresh instance, re-register
						ep := ns.NewEpoll()
						eps[i] = ep
						for _, s := range listeners {
							if rng.Intn(3) == 0 && !s.Closed() {
								func() {
									defer func() { recover() }()
									ep.Add(s)
								}()
								if w := ep.findWatch(s); w != nil {
									watchRefs = append(watchRefs, watchHandle{w: w, gen: w.gen, ep: ep, sock: s})
								}
							}
						}
					} else {
						eps[i] = eps[len(eps)-1]
						eps = eps[:len(eps)-1]
					}
				case 13: // advance virtual time
					eng.RunFor(time.Duration(rng.Intn(1000)) * time.Microsecond)
				}
				if step%500 == 499 {
					checkStale()
					// Bound the retained sets so the test stays O(steps).
					if len(closedRefs) > 512 {
						closedRefs = closedRefs[len(closedRefs)-256:]
					}
					if len(watchRefs) > 1024 {
						watchRefs = watchRefs[len(watchRefs)-512:]
					}
				}
			}
			eng.RunFor(100 * time.Millisecond)
			checkStale()

			// Conservation: established = still queued + ever accepted — no
			// connection may vanish, even through the recycling pool.
			queued := 0
			for _, s := range listeners {
				queued += s.QueueLen()
			}
			if uint64(queued)+totalAccepted != ns.ConnsEstablished {
				t.Fatalf("conservation broken: queued %d + accepted %d != established %d",
					queued, totalAccepted, ns.ConnsEstablished)
			}
		})
	}
}
