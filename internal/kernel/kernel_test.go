package kernel

import (
	"testing"
	"time"

	"hermes/internal/ebpf"
	"hermes/internal/sim"
)

func tupleFor(src uint32, dport uint16) FourTuple {
	return FourTuple{SrcIP: src, DstIP: 0x0a000001, SrcPort: uint16(10000 + src%50000), DstPort: dport}
}

func TestFourTupleHashDeterministicAndSpread(t *testing.T) {
	a := tupleFor(1, 80).Hash()
	if a != tupleFor(1, 80).Hash() {
		t.Fatal("hash not deterministic")
	}
	if a == tupleFor(2, 80).Hash() && a == tupleFor(3, 80).Hash() {
		t.Fatal("hash suspiciously constant")
	}
	// Spread check over 4 buckets.
	var counts [4]int
	for i := uint32(0); i < 4000; i++ {
		counts[tupleFor(i, 80).Hash()%4]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d = %d, poor spread", i, c)
		}
	}
}

func TestDeliverSYNNoListener(t *testing.T) {
	ns := NewNetStack(sim.NewEngine(1), WakeExclusiveLIFO)
	if _, ok := ns.DeliverSYN(tupleFor(1, 80), nil); ok {
		t.Fatal("SYN to unbound port accepted")
	}
	if ns.SynDrops != 1 {
		t.Fatalf("SynDrops = %d", ns.SynDrops)
	}
}

func TestSharedListenAcceptFlow(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveLIFO)
	ls, err := ns.ListenShared(80, 8)
	if err != nil {
		t.Fatal(err)
	}
	conn, ok := ns.DeliverSYN(tupleFor(1, 80), "meta")
	if !ok {
		t.Fatal("SYN rejected")
	}
	if conn.AcceptedNS != -1 {
		t.Fatal("conn marked accepted before accept()")
	}
	if ls.QueueLen() != 1 {
		t.Fatalf("queue len = %d", ls.QueueLen())
	}
	got, ok := ls.Accept()
	if !ok || got != conn {
		t.Fatal("Accept did not return the queued conn")
	}
	if got.Meta != "meta" || got.Sock() == nil || got.Sock().Conn() != got {
		t.Fatalf("conn wiring broken: %+v", got)
	}
	if got.AcceptedNS != eng.Now() {
		t.Fatal("AcceptedNS not stamped")
	}
	if _, ok := ls.Accept(); ok {
		t.Fatal("Accept on empty queue succeeded")
	}
	if ls.Accepted != 1 {
		t.Fatalf("Accepted = %d", ls.Accepted)
	}
}

func TestAcceptQueueOverflowDrops(t *testing.T) {
	ns := NewNetStack(sim.NewEngine(1), WakeExclusiveLIFO)
	ls, _ := ns.ListenShared(80, 2)
	for i := uint32(0); i < 5; i++ {
		ns.DeliverSYN(tupleFor(i, 80), nil)
	}
	if ls.QueueLen() != 2 {
		t.Fatalf("queue len = %d, want 2", ls.QueueLen())
	}
	if ls.Drops != 3 || ns.SynDrops != 3 {
		t.Fatalf("Drops = %d, SynDrops = %d, want 3,3", ls.Drops, ns.SynDrops)
	}
	if ns.ConnsEstablished != 2 {
		t.Fatalf("ConnsEstablished = %d", ns.ConnsEstablished)
	}
}

func TestPortDoubleBindRejected(t *testing.T) {
	ns := NewNetStack(sim.NewEngine(1), WakeExclusiveLIFO)
	if _, err := ns.ListenShared(80, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.ListenShared(80, 0); err == nil {
		t.Fatal("double shared bind accepted")
	}
	if _, err := ns.ListenReuseport(80, 2, 0); err == nil {
		t.Fatal("reuseport bind over shared accepted")
	}
	if _, err := ns.ListenReuseport(81, 0, 0); err == nil {
		t.Fatal("empty reuseport group accepted")
	}
}

func TestEpollWaitImmediate(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveLIFO)
	ls, _ := ns.ListenShared(80, 8)
	ep := ns.NewEpoll()
	ep.Add(ls)
	ns.DeliverSYN(tupleFor(1, 80), nil)

	var got []Event
	ep.Wait(16, 5*time.Millisecond, func(evs []Event) { got = evs })
	eng.Run()
	if len(got) != 1 || got[0].Kind != EvAccept || got[0].Sock != ls {
		t.Fatalf("events = %+v", got)
	}
	if ep.Waits != 1 || ep.EventsDelivered != 1 {
		t.Fatalf("stats: %+v", ep)
	}
}

func TestEpollWaitTimeout(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveLIFO)
	ls, _ := ns.ListenShared(80, 8)
	ep := ns.NewEpoll()
	ep.Add(ls)

	called := false
	start := eng.Now()
	ep.Wait(16, 5*time.Millisecond, func(evs []Event) {
		called = true
		if len(evs) != 0 {
			t.Errorf("timeout wait returned events: %v", evs)
		}
		if eng.Now()-start != int64(5*time.Millisecond) {
			t.Errorf("timeout fired at %d", eng.Now()-start)
		}
	})
	eng.Run()
	if !called {
		t.Fatal("timeout callback never fired")
	}
	if ep.Timeouts != 1 {
		t.Fatalf("Timeouts = %d", ep.Timeouts)
	}
}

func TestEpollWakeOnArrival(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveLIFO)
	ls, _ := ns.ListenShared(80, 8)
	ep := ns.NewEpoll()
	ep.Add(ls)

	var wokeAt int64 = -1
	ep.Wait(16, 5*time.Millisecond, func(evs []Event) {
		wokeAt = eng.Now()
		if len(evs) != 1 {
			t.Errorf("events = %v", evs)
		}
	})
	eng.After(time.Millisecond, func() { ns.DeliverSYN(tupleFor(1, 80), nil) })
	eng.Run()
	if wokeAt != int64(time.Millisecond) {
		t.Fatalf("woke at %d, want 1ms (not the 5ms timeout)", wokeAt)
	}
	if ep.Timeouts != 0 {
		t.Fatal("timeout fired despite wake")
	}
}

func TestEpollMaxEventsBatching(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveLIFO)
	// Three ports, three ready listen sockets, maxEvents=2.
	ep := ns.NewEpoll()
	for p := uint16(80); p < 83; p++ {
		ls, _ := ns.ListenShared(p, 8)
		ep.Add(ls)
		ns.DeliverSYN(tupleFor(uint32(p), p), nil)
	}
	// The batch slice is only valid until the next Wait on the instance
	// (the kernel reuses the events buffer), so snapshot the sockets.
	var first, second []*Socket
	drain := func(evs []Event) []*Socket {
		socks := make([]*Socket, 0, len(evs))
		for _, e := range evs {
			e.Sock.Accept()
			socks = append(socks, e.Sock)
		}
		return socks
	}
	ep.Wait(2, time.Millisecond, func(evs []Event) { first = drain(evs) })
	eng.Run()
	ep.Wait(2, time.Millisecond, func(evs []Event) { second = drain(evs) })
	eng.Run()
	if len(first) != 2 || len(second) != 1 {
		t.Fatalf("batches = %d,%d, want 2,1", len(first), len(second))
	}
	// The socket left unserviced in batch 1 must appear in batch 2
	// (ready-list rotation prevents starvation).
	if second[0] == first[0] || second[0] == first[1] {
		t.Fatal("unserviced socket starved by ready-list ordering")
	}
}

func TestLevelTriggeredRetrigger(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveLIFO)
	ls, _ := ns.ListenShared(80, 8)
	ep := ns.NewEpoll()
	ep.Add(ls)
	ns.DeliverSYN(tupleFor(1, 80), nil)
	ns.DeliverSYN(tupleFor(2, 80), nil)

	// Accept only one; the socket must remain ready for the next wait.
	ep.Wait(16, time.Millisecond, func(evs []Event) {
		if len(evs) != 1 {
			t.Fatalf("first batch = %v", evs)
		}
		evs[0].Sock.Accept()
	})
	eng.Run()
	var again []Event
	ep.Wait(16, time.Millisecond, func(evs []Event) { again = evs })
	eng.Run()
	if len(again) != 1 || again[0].Kind != EvAccept {
		t.Fatalf("socket with queued conn not re-reported: %v", again)
	}
}

func TestConnDataAndHangupEvents(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveLIFO)
	ls, _ := ns.ListenShared(80, 8)
	conn, _ := ns.DeliverSYN(tupleFor(1, 80), nil)
	ls.Accept()

	ep := ns.NewEpoll()
	cs := conn.Sock()
	ep.Add(cs)

	ns.DeliverData(conn, "req1")
	ns.DeliverFIN(conn)

	// Readable takes precedence while data is pending.
	var kinds []EventKind
	ep.Wait(16, time.Millisecond, func(evs []Event) {
		for _, e := range evs {
			kinds = append(kinds, e.Kind)
			if e.Kind == EvReadable {
				p, ok := e.Sock.PopData()
				if !ok || p != "req1" {
					t.Errorf("PopData = %v, %v", p, ok)
				}
			}
		}
	})
	eng.Run()
	ep.Wait(16, time.Millisecond, func(evs []Event) {
		for _, e := range evs {
			kinds = append(kinds, e.Kind)
		}
	})
	eng.Run()
	if len(kinds) != 2 || kinds[0] != EvReadable || kinds[1] != EvHangup {
		t.Fatalf("kinds = %v, want [readable hangup]", kinds)
	}
	if !cs.Hup() {
		t.Fatal("Hup not set")
	}
}

func TestDataToClosedSocketDropped(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveLIFO)
	ls, _ := ns.ListenShared(80, 8)
	conn, _ := ns.DeliverSYN(tupleFor(1, 80), nil)
	ls.Accept()
	ns.CloseSocket(conn.Sock())
	ns.DeliverData(conn, "late")
	ns.DeliverFIN(conn)
	if conn.Sock().PendingData() != 0 {
		t.Fatal("data queued on closed socket")
	}
}

func TestCloseSocketDeregisters(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveLIFO)
	ls, _ := ns.ListenShared(80, 8)
	conn, _ := ns.DeliverSYN(tupleFor(1, 80), nil)
	ls.Accept()
	ep := ns.NewEpoll()
	ep.Add(conn.Sock())
	if ep.Watches() != 1 {
		t.Fatal("watch not registered")
	}
	ns.CloseSocket(conn.Sock())
	if ep.Watches() != 0 {
		t.Fatal("close did not deregister epoll watch")
	}
	_ = eng
}

// Exclusive LIFO: with all workers idle, the most recently registered
// watcher (head of wait queue) must win every wakeup.
func TestExclusiveLIFOPrefersLastRegistered(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveLIFO)
	ls, _ := ns.ListenShared(80, 64)

	const n = 4
	wakes := make([]int, n)
	eps := make([]*Epoll, n)
	for i := 0; i < n; i++ {
		eps[i] = ns.NewEpoll()
		eps[i].Add(ls) // worker i registers; worker n-1 registers last
	}
	var rewait func(i int)
	rewait = func(i int) {
		eps[i].Wait(16, 50*time.Millisecond, func(evs []Event) {
			for _, e := range evs {
				if _, ok := e.Sock.Accept(); ok {
					wakes[i]++
				}
			}
			if eng.Pending() > 0 {
				rewait(i)
			}
		})
	}
	for i := 0; i < n; i++ {
		rewait(i)
	}
	for k := 0; k < 20; k++ {
		k := k
		eng.At(int64(k+1)*int64(time.Microsecond), func() {
			ns.DeliverSYN(tupleFor(uint32(k), 80), nil)
		})
	}
	eng.RunUntil(int64(40 * time.Microsecond))

	total := 0
	for _, w := range wakes {
		total += w
	}
	if total != 20 {
		t.Fatalf("accepted %d of 20; wakes=%v", total, wakes)
	}
	if wakes[n-1] != 20 {
		t.Fatalf("LIFO should give all conns to last-registered worker: %v", wakes)
	}
}

// Exclusive RR: wakeups must rotate across idle workers.
func TestExclusiveRRRotates(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveRR)
	ls, _ := ns.ListenShared(80, 64)

	const n = 4
	wakes := make([]int, n)
	eps := make([]*Epoll, n)
	var rewait func(i int)
	rewait = func(i int) {
		eps[i].Wait(16, 50*time.Millisecond, func(evs []Event) {
			for _, e := range evs {
				if _, ok := e.Sock.Accept(); ok {
					wakes[i]++
				}
			}
			rewait(i)
		})
	}
	for i := 0; i < n; i++ {
		eps[i] = ns.NewEpoll()
		eps[i].Add(ls)
		rewait(i)
	}
	for k := 0; k < 40; k++ {
		k := k
		eng.At(int64(k+1)*int64(time.Microsecond), func() {
			ns.DeliverSYN(tupleFor(uint32(k), 80), nil)
		})
	}
	eng.RunUntil(int64(80 * time.Microsecond))
	for i, w := range wakes {
		if w != 10 {
			t.Fatalf("RR should balance exactly: worker %d got %d, wakes=%v", i, w, wakes)
		}
	}
}

// Herd: all blocked workers wake; losers record spurious wakeups.
func TestHerdWakesAllAndCountsSpurious(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeHerd)
	ls, _ := ns.ListenShared(80, 64)

	const n = 4
	accepted := 0
	eps := make([]*Epoll, n)
	for i := 0; i < n; i++ {
		eps[i] = ns.NewEpoll()
		eps[i].Add(ls)
		eps[i].Wait(16, 50*time.Millisecond, func(evs []Event) {
			for _, e := range evs {
				if _, ok := e.Sock.Accept(); ok {
					accepted++
				}
			}
		})
	}
	eng.After(time.Microsecond, func() { ns.DeliverSYN(tupleFor(1, 80), nil) })
	eng.RunUntil(int64(10 * time.Microsecond))

	if accepted != 1 {
		t.Fatalf("accepted = %d, want 1", accepted)
	}
	spurious := uint64(0)
	for _, ep := range eps {
		spurious += ep.SpuriousWakeups
	}
	// One worker wins; with level-triggered collection the other three see
	// an already-drained socket: 3 spurious wakeups.
	if spurious != 3 {
		t.Fatalf("spurious = %d, want 3", spurious)
	}
}

// Exclusive: a busy (non-blocked) head worker must be skipped in favour of
// the next idle one.
func TestExclusiveSkipsBusyWorker(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveLIFO)
	ls, _ := ns.ListenShared(80, 64)

	epBusy := ns.NewEpoll() // registered last → head of wait queue
	epIdle := ns.NewEpoll()
	epIdle.Add(ls)
	epBusy.Add(ls) // head

	woke := ""
	epIdle.Wait(16, 50*time.Millisecond, func(evs []Event) {
		if len(evs) > 0 {
			woke = "idle"
		}
	})
	// epBusy never calls Wait: it is "processing".
	eng.After(time.Microsecond, func() { ns.DeliverSYN(tupleFor(1, 80), nil) })
	eng.RunUntil(int64(10 * time.Microsecond))
	if woke != "idle" {
		t.Fatalf("idle worker not woken (woke=%q)", woke)
	}
}

func TestReuseportHashDispatchBalanced(t *testing.T) {
	ns := NewNetStack(sim.NewEngine(1), WakeExclusiveLIFO)
	g, _ := ns.ListenReuseport(80, 8, 0)
	const conns = 8000
	for i := uint32(0); i < conns; i++ {
		ns.DeliverSYN(FourTuple{SrcIP: i * 2654435761, SrcPort: uint16(i), DstIP: 9, DstPort: 80}, nil)
	}
	if g.HashDispatched != conns {
		t.Fatalf("HashDispatched = %d", g.HashDispatched)
	}
	for i, s := range g.Sockets() {
		got := s.QueueLen() + int(s.Drops)
		if got < conns/8*7/10 || got > conns/8*13/10 {
			t.Errorf("socket %d got %d conns, poor balance", i, got)
		}
	}
}

func TestReuseportNativeOverrideAndFallback(t *testing.T) {
	ns := NewNetStack(sim.NewEngine(1), WakeExclusiveLIFO)
	g, _ := ns.ListenReuseport(80, 4, 0)
	target := g.Sockets()[2]
	g.AttachNative(func(hash, _ uint32) (*Socket, bool) {
		if hash%2 == 0 {
			return target, true
		}
		return nil, false // decline → hash fallback
	})
	for i := uint32(0); i < 1000; i++ {
		ns.DeliverSYN(tupleFor(i, 80), nil)
	}
	if g.ProgDispatched == 0 || g.Fallbacks == 0 {
		t.Fatalf("override stats: dispatched=%d fallbacks=%d", g.ProgDispatched, g.Fallbacks)
	}
	if g.ProgDispatched+g.Fallbacks != 1000 {
		t.Fatalf("dispatch accounting broken: %d+%d != 1000", g.ProgDispatched, g.Fallbacks)
	}
	if int(target.QueueLen())+int(target.Drops) < 400 {
		t.Fatal("override did not steer even half the traffic")
	}
}

func TestReuseportRejectsForeignSocket(t *testing.T) {
	ns := NewNetStack(sim.NewEngine(1), WakeExclusiveLIFO)
	g, _ := ns.ListenReuseport(80, 2, 0)
	g2, _ := ns.ListenReuseport(81, 2, 0)
	foreign := g2.Sockets()[0]
	g.AttachNative(func(_, _ uint32) (*Socket, bool) { return foreign, true })
	ns.DeliverSYN(tupleFor(1, 80), nil)
	if g.Fallbacks != 1 {
		t.Fatalf("foreign socket not rejected: fallbacks=%d", g.Fallbacks)
	}
	if foreign.QueueLen() != 0 {
		t.Fatal("conn landed on foreign socket")
	}
}

func TestReuseportEBPFProgramDispatch(t *testing.T) {
	ns := NewNetStack(sim.NewEngine(1), WakeExclusiveLIFO)
	g, _ := ns.ListenReuseport(80, 4, 0)
	sa, err := g.BuildSockArray()
	if err != nil {
		t.Fatal(err)
	}
	// Program: always select socket 3.
	a := ebpf.NewAssembler()
	slot := a.AddMap(sa)
	a.LdMap(R1sock, slot)
	a.MovImm(ebpf.R2, 3)
	a.Call(ebpf.HelperSkSelectReuseport)
	a.Exit()
	p, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	g.AttachProgram(p)
	for i := uint32(0); i < 100; i++ {
		ns.DeliverSYN(tupleFor(i, 80), nil)
	}
	if g.ProgDispatched != 100 {
		t.Fatalf("ProgDispatched = %d (fallbacks=%d errors=%d)", g.ProgDispatched, g.Fallbacks, g.ProgErrors)
	}
	if got := g.Sockets()[3].QueueLen() + int(g.Sockets()[3].Drops); got != 100 {
		t.Fatalf("socket 3 got %d conns", got)
	}
	g.Detach()
	ns.DeliverSYN(tupleFor(7, 80), nil)
	if g.HashDispatched != 1 {
		t.Fatal("Detach did not restore hash dispatch")
	}
}

// R1sock avoids importing ebpf.R1 twice with a clash in the test above.
const R1sock = ebpf.R1

func TestRSSSteersEvenly(t *testing.T) {
	r := NewRSS(8)
	for i := uint32(0); i < 80000; i++ {
		q := r.Steer(i*2654435761, 1500)
		if q < 0 || q >= 8 {
			t.Fatalf("queue %d out of range", q)
		}
	}
	for q, c := range r.Packets {
		if c < 8000 || c > 12000 {
			t.Errorf("queue %d packets = %d, uneven", q, c)
		}
		if r.Bytes[q] != c*1500 {
			t.Errorf("queue %d bytes = %d", q, r.Bytes[q])
		}
	}
	if r.Queues() != 8 {
		t.Fatal("Queues() wrong")
	}
}

func TestWakeModeStrings(t *testing.T) {
	if WakeHerd.String() != "herd" || WakeExclusiveLIFO.String() != "exclusive" || WakeExclusiveRR.String() != "exclusive-rr" {
		t.Fatal("mode strings")
	}
	if EvAccept.String() != "accept" || EvReadable.String() != "readable" || EvHangup.String() != "hangup" {
		t.Fatal("event kind strings")
	}
}

func TestEpollKick(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveLIFO)
	ls, _ := ns.ListenShared(80, 8)
	ep := ns.NewEpoll()
	ep.Add(ls)

	// Kick on a non-blocked epoll is a no-op.
	ep.Kick()
	if ep.Waits != 0 {
		t.Fatal("kick on idle epoll produced a wait completion")
	}

	woke := false
	ep.Wait(16, 50*time.Millisecond, func(evs []Event) {
		woke = true
		if len(evs) != 0 {
			t.Errorf("kick delivered events: %v", evs)
		}
	})
	eng.After(time.Millisecond, ep.Kick)
	eng.RunUntil(int64(5 * time.Millisecond))
	if !woke {
		t.Fatal("kick did not wake the waiter")
	}
	if ep.Timeouts != 0 {
		t.Fatal("timeout fired despite kick")
	}
}
