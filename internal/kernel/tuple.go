// Package kernel simulates the slice of the Linux networking stack that
// Hermes's dispatch decisions flow through: listening sockets with bounded
// accept queues, connection sockets, epoll instances, socket wait queues
// with the exclusive-wakeup disciplines (thundering herd, EPOLLEXCLUSIVE's
// LIFO walk, the unmerged round-robin patch), and SO_REUSEPORT groups whose
// socket selection can be overridden by an attached (simulated) eBPF program
// — the SO_ATTACH_REUSEPORT_EBPF hook of §5.4.
//
// The simulation is event-driven on a sim.Engine virtual clock and is fully
// deterministic. It models control flow (which worker learns about which
// connection, when) rather than byte flow: payloads are opaque values whose
// processing cost the application layer (internal/l7lb) accounts for.
package kernel

import "encoding/binary"

// FourTuple identifies a TCP connection. DstPort is the tenant port the L4
// LB rewrote the connection to (Fig. 1: P1, P2, ...).
type FourTuple struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
}

// Hash returns the connection hash the kernel precomputes for reuseport
// selection (and that reuseport eBPF programs consume). FNV-1a over the
// tuple bytes plays the role of the kernel's jhash: any well-mixed hash
// reproduces both reuseport's balance and its heavy-hitter collisions.
func (t FourTuple) Hash() uint32 {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:], t.SrcIP)
	binary.BigEndian.PutUint32(b[4:], t.DstIP)
	binary.BigEndian.PutUint16(b[8:], t.SrcPort)
	binary.BigEndian.PutUint16(b[10:], t.DstPort)

	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	// Final avalanche (murmur3 fmix32): FNV alone leaves structure in the
	// low bits for sequential tuples, which would distort modulo- and
	// reciprocal-scale-based steering.
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// LocalityHash hashes only the destination (DIP, Dport): connections to the
// same backend destination share it, which is what the cache-locality group
// mode keys level-1 group selection on (Fig. A6).
func (t FourTuple) LocalityHash() uint32 {
	h := t.DstIP*2654435761 ^ uint32(t.DstPort)*0x9e3779b9
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}
