package kernel

import "fmt"

// ConnID identifies a simulated connection. IDs are never reused: a Conn
// object recycled through the stack's pool gets a fresh ID, so the ID doubles
// as the object's generation stamp (see ConnRef).
type ConnID uint64

// Conn is an established TCP connection. It is created when the simulated
// three-way handshake completes (SYN delivery in this model) and lives until
// the worker closes its socket. Conn objects (with their paired connection
// Sockets) are pooled: after close they return to the NetStack's free list
// and a later handshake may reincarnate them under a fresh ID. Holders that
// retain a *Conn across virtual-time events must hold a ConnRef instead and
// re-validate before use; a bare *Conn is only safe within the event that
// obtained it.
type Conn struct {
	ID    ConnID
	Tuple FourTuple
	Hash  uint32 // precomputed 4-tuple hash
	// EstablishedNS is the virtual time the handshake completed.
	EstablishedNS int64
	// AcceptedNS is the virtual time a worker accepted the connection
	// (-1 until then). AcceptedNS-EstablishedNS is accept-queue delay.
	AcceptedNS int64
	// Meta carries opaque application/workload data (e.g. request cost
	// model parameters) through the kernel untouched.
	Meta any

	sock *Socket // the connection socket sitting in / popped from an accept queue
}

// Sock returns the connection socket created at handshake completion. The
// same socket object is what Accept hands to the worker, mirroring how a
// real accept() returns an fd for an already-existing kernel socket.
func (c *Conn) Sock() *Socket { return c.sock }

// Ref returns a generation-checked weak handle to the connection.
func (c *Conn) Ref() ConnRef { return ConnRef{c: c, id: c.ID} }

// ConnRef is a weak, generation-checked handle to a Conn — the pooled
// analogue of sim.Timer for timer events. It is a value: copying is free,
// and a handle that outlives its connection is harmless. Because ConnIDs
// are never reused, Get detects when the underlying object has been
// recycled into a different connection and returns nil instead of the
// impostor. Workload generators and other cross-event holders guard with
//
//	c := ref.Get()
//	if c == nil || c.Sock().Closed() { ... connection is gone ... }
//
// which behaves exactly as the pre-pool `conn.Sock().Closed()` check did:
// closed-but-not-yet-recycled connections still resolve (their fields are
// left intact until reuse), recycled ones do not.
type ConnRef struct {
	c  *Conn
	id ConnID
}

// Get returns the connection if the handle is still current, or nil if the
// object has been recycled into a different connection (or the handle is
// zero).
func (r ConnRef) Get() *Conn {
	if r.c == nil || r.c.ID != r.id {
		return nil
	}
	return r.c
}

// ID returns the referenced connection's ID — the ID captured at Ref time,
// valid even after the object has been recycled.
func (r ConnRef) ID() ConnID { return r.id }

// Socket is a simulated kernel socket: either a listening socket with an
// accept queue, or an established connection socket with a pending-data
// queue. Epoll instances register on sockets via watches.
//
// Connection sockets are pooled together with their Conn (one alloc pair per
// peak-concurrent connection); both queues are head-indexed slices reused
// across incarnations, so the steady-state connection lifecycle allocates
// nothing.
type Socket struct {
	ID        int
	Port      uint16
	Listening bool

	ns       *NetStack
	group    *ReuseportGroup // reuseport membership, nil for shared/conn sockets
	groupIdx int             // member index within group (worker id), 0 otherwise
	tel      QueueInstruments

	// Listening sockets: completed connections waiting for accept().
	// acceptQ[qhead:] are the queued connections; popped slots are nilled
	// and the backing array is reused (compacted in place when full).
	acceptQ   []*Conn
	qhead     int
	acceptCap int
	// Drops counts connections dropped on accept-queue overflow (SYN flood
	// / overload behaviour).
	Drops uint64
	// Accepted counts connections dequeued by accept().
	Accepted uint64

	// Connection sockets. pending is head-indexed like acceptQ.
	conn     *Conn
	pending  []any // arrived-but-unread request payloads
	pendHead int
	hup      bool // peer closed
	closed   bool

	// Owner is an opaque (tag, position) pair the accepting application
	// stores on the socket — per-worker conn-table bookkeeping without a
	// side map. Cleared on recycle.
	ownerTag int32
	ownerPos int32
	owned    bool

	// The socket wait queue: an intrusive doubly-linked list of epoll
	// registrations. watchHead is the list head; epoll_ctl prepends (head
	// insertion), which is what gives EPOLLEXCLUSIVE its LIFO bias (§2.2).
	watchHead *watch
	watchTail *watch
}

// Conn returns the connection of a connection socket (nil for listeners).
func (s *Socket) Conn() *Conn { return s.conn }

// GroupIndex returns this socket's member index within its reuseport group
// (worker i owns socket i in the LB deployments); 0 for non-group sockets.
func (s *Socket) GroupIndex() int { return s.groupIdx }

// QueueLen returns the current accept-queue depth (listening sockets).
func (s *Socket) QueueLen() int { return len(s.acceptQ) - s.qhead }

// AcceptCap returns the accept-queue capacity (listening sockets).
func (s *Socket) AcceptCap() int { return s.acceptCap }

// SetAcceptCap changes the accept-queue capacity, as a listen(2) with a
// new backlog does. Shrinking below the current depth does not evict
// queued connections; it only makes new arrivals overflow.
func (s *Socket) SetAcceptCap(n int) {
	if !s.Listening {
		panic(fmt.Sprintf("kernel: SetAcceptCap on non-listening socket %d", s.ID))
	}
	if n < 1 {
		n = 1
	}
	s.acceptCap = n
}

// PendingData returns the number of unread payloads (connection sockets).
func (s *Socket) PendingData() int { return len(s.pending) - s.pendHead }

// Closed reports whether the worker has closed this socket.
func (s *Socket) Closed() bool { return s.closed }

// SetOwner stamps the application's (tag, position) bookkeeping on the
// socket — in the LB, the accepting worker's ID and the socket's index in
// that worker's connection table.
func (s *Socket) SetOwner(tag, pos int32) { s.ownerTag, s.ownerPos, s.owned = tag, pos, true }

// ClearOwner removes the owner stamp.
func (s *Socket) ClearOwner() { s.owned = false }

// Owner returns the owner stamp, ok=false if none is set.
func (s *Socket) Owner() (tag, pos int32, ok bool) { return s.ownerTag, s.ownerPos, s.owned }

// ready reports level-triggered readiness.
func (s *Socket) ready() bool {
	if s.closed {
		return false
	}
	if s.Listening {
		return s.QueueLen() > 0
	}
	return s.PendingData() > 0 || s.hup
}

// Accept dequeues the oldest completed connection, returning its connection
// socket, or ok=false if the queue is empty (EAGAIN). Mirrors accept(2) on a
// non-blocking listener.
func (s *Socket) Accept() (*Conn, bool) {
	if !s.Listening {
		panic(fmt.Sprintf("kernel: Accept on non-listening socket %d", s.ID))
	}
	if s.qhead == len(s.acceptQ) {
		return nil, false
	}
	c := s.acceptQ[s.qhead]
	s.acceptQ[s.qhead] = nil
	s.qhead++
	if s.qhead == len(s.acceptQ) {
		s.acceptQ = s.acceptQ[:0]
		s.qhead = 0
	}
	s.Accepted++
	c.AcceptedNS = s.ns.eng.Now()
	return c, true
}

// PopData dequeues one pending payload from a connection socket.
func (s *Socket) PopData() (any, bool) {
	if s.pendHead == len(s.pending) {
		return nil, false
	}
	p := s.pending[s.pendHead]
	s.pending[s.pendHead] = nil
	s.pendHead++
	if s.pendHead == len(s.pending) {
		s.pending = s.pending[:0]
		s.pendHead = 0
	}
	return p, true
}

// pushData appends a payload, compacting the drained head space first when
// the backing array is full so steady-state delivery never grows it.
func (s *Socket) pushData(p any) {
	if len(s.pending) == cap(s.pending) && s.pendHead > 0 {
		n := copy(s.pending, s.pending[s.pendHead:])
		for i := n; i < len(s.pending); i++ {
			s.pending[i] = nil
		}
		s.pending = s.pending[:n]
		s.pendHead = 0
	}
	s.pending = append(s.pending, p)
}

// Hup reports whether the peer has closed the connection.
func (s *Socket) Hup() bool { return s.hup }

// enqueueConn places a completed connection on the accept queue, waking
// waiters. Returns false on overflow (connection dropped).
func (s *Socket) enqueueConn(c *Conn) bool {
	if s.closed {
		return false
	}
	if s.QueueLen() >= s.acceptCap {
		s.Drops++
		s.tel.Dropped.Inc()
		return false
	}
	if len(s.acceptQ) == cap(s.acceptQ) && s.qhead > 0 {
		n := copy(s.acceptQ, s.acceptQ[s.qhead:])
		for i := n; i < len(s.acceptQ); i++ {
			s.acceptQ[i] = nil
		}
		s.acceptQ = s.acceptQ[:n]
		s.qhead = 0
	}
	s.acceptQ = append(s.acceptQ, c)
	s.tel.Enqueued.Inc()
	s.tel.DepthPeak.SetMax(int64(s.QueueLen()))
	s.ns.socketReady(s)
	return true
}

// addWatch prepends w to the wait queue, as epoll_ctl does on the socket
// wait queue. O(1), allocation-free.
func (s *Socket) addWatch(w *watch) {
	w.prev = nil
	w.next = s.watchHead
	if s.watchHead != nil {
		s.watchHead.prev = w
	} else {
		s.watchTail = w
	}
	s.watchHead = w
}

// removeWatch unlinks w from the wait queue. O(1).
func (s *Socket) removeWatch(w *watch) {
	if w.prev != nil {
		w.prev.next = w.next
	} else if s.watchHead == w {
		s.watchHead = w.next
	} else {
		return // not on this list
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else {
		s.watchTail = w.prev
	}
	w.prev, w.next = nil, nil
}

// moveWatchToTail implements the epoll-rr discipline: after a wakeup the
// woken watcher is demoted to the tail of the wait queue.
func (s *Socket) moveWatchToTail(w *watch) {
	if s.watchTail == w {
		return
	}
	s.removeWatch(w)
	w.next = nil
	w.prev = s.watchTail
	if s.watchTail != nil {
		s.watchTail.next = w
	} else {
		s.watchHead = w
	}
	s.watchTail = w
}
