package kernel

import "fmt"

// ConnID identifies a simulated connection.
type ConnID uint64

// Conn is an established TCP connection. It is created when the simulated
// three-way handshake completes (SYN delivery in this model) and lives until
// the worker closes its socket.
type Conn struct {
	ID    ConnID
	Tuple FourTuple
	Hash  uint32 // precomputed 4-tuple hash
	// EstablishedNS is the virtual time the handshake completed.
	EstablishedNS int64
	// AcceptedNS is the virtual time a worker accepted the connection
	// (-1 until then). AcceptedNS-EstablishedNS is accept-queue delay.
	AcceptedNS int64
	// Meta carries opaque application/workload data (e.g. request cost
	// model parameters) through the kernel untouched.
	Meta any

	sock *Socket // the connection socket sitting in / popped from an accept queue
}

// Sock returns the connection socket created at handshake completion. The
// same socket object is what Accept hands to the worker, mirroring how a
// real accept() returns an fd for an already-existing kernel socket.
func (c *Conn) Sock() *Socket { return c.sock }

// Socket is a simulated kernel socket: either a listening socket with an
// accept queue, or an established connection socket with a pending-data
// queue. Epoll instances register on sockets via watches.
type Socket struct {
	ID        int
	Port      uint16
	Listening bool

	ns       *NetStack
	group    *ReuseportGroup // reuseport membership, nil for shared/conn sockets
	groupIdx int             // member index within group (worker id), 0 otherwise
	tel      QueueInstruments

	// Listening sockets: completed connections waiting for accept().
	acceptQ   []*Conn
	acceptCap int
	// Drops counts connections dropped on accept-queue overflow (SYN flood
	// / overload behaviour).
	Drops uint64
	// Accepted counts connections dequeued by accept().
	Accepted uint64

	// Connection sockets.
	conn    *Conn
	pending []any // arrived-but-unread request payloads
	hup     bool  // peer closed
	closed  bool

	// watchers are epoll registrations in wait-queue order: index 0 is the
	// list head. epoll_ctl prepends (head insertion), which is what gives
	// EPOLLEXCLUSIVE its LIFO bias (§2.2).
	watchers []*watch
}

// Conn returns the connection of a connection socket (nil for listeners).
func (s *Socket) Conn() *Conn { return s.conn }

// GroupIndex returns this socket's member index within its reuseport group
// (worker i owns socket i in the LB deployments); 0 for non-group sockets.
func (s *Socket) GroupIndex() int { return s.groupIdx }

// QueueLen returns the current accept-queue depth (listening sockets).
func (s *Socket) QueueLen() int { return len(s.acceptQ) }

// AcceptCap returns the accept-queue capacity (listening sockets).
func (s *Socket) AcceptCap() int { return s.acceptCap }

// SetAcceptCap changes the accept-queue capacity, as a listen(2) with a
// new backlog does. Shrinking below the current depth does not evict
// queued connections; it only makes new arrivals overflow.
func (s *Socket) SetAcceptCap(n int) {
	if !s.Listening {
		panic(fmt.Sprintf("kernel: SetAcceptCap on non-listening socket %d", s.ID))
	}
	if n < 1 {
		n = 1
	}
	s.acceptCap = n
}

// PendingData returns the number of unread payloads (connection sockets).
func (s *Socket) PendingData() int { return len(s.pending) }

// Closed reports whether the worker has closed this socket.
func (s *Socket) Closed() bool { return s.closed }

// ready reports level-triggered readiness.
func (s *Socket) ready() bool {
	if s.closed {
		return false
	}
	if s.Listening {
		return len(s.acceptQ) > 0
	}
	return len(s.pending) > 0 || s.hup
}

// Accept dequeues the oldest completed connection, returning its connection
// socket, or ok=false if the queue is empty (EAGAIN). Mirrors accept(2) on a
// non-blocking listener.
func (s *Socket) Accept() (*Conn, bool) {
	if !s.Listening {
		panic(fmt.Sprintf("kernel: Accept on non-listening socket %d", s.ID))
	}
	if len(s.acceptQ) == 0 {
		return nil, false
	}
	c := s.acceptQ[0]
	s.acceptQ = s.acceptQ[1:]
	s.Accepted++
	c.AcceptedNS = s.ns.eng.Now()
	return c, true
}

// PopData dequeues one pending payload from a connection socket.
func (s *Socket) PopData() (any, bool) {
	if len(s.pending) == 0 {
		return nil, false
	}
	p := s.pending[0]
	s.pending = s.pending[1:]
	return p, true
}

// Hup reports whether the peer has closed the connection.
func (s *Socket) Hup() bool { return s.hup }

// enqueueConn places a completed connection on the accept queue, waking
// waiters. Returns false on overflow (connection dropped).
func (s *Socket) enqueueConn(c *Conn) bool {
	if s.closed {
		return false
	}
	if len(s.acceptQ) >= s.acceptCap {
		s.Drops++
		s.tel.Dropped.Inc()
		return false
	}
	s.acceptQ = append(s.acceptQ, c)
	s.tel.Enqueued.Inc()
	s.tel.DepthPeak.SetMax(int64(len(s.acceptQ)))
	s.ns.socketReady(s)
	return true
}

func (s *Socket) addWatch(w *watch) {
	// Head insertion, as epoll_ctl does on the socket wait queue.
	s.watchers = append([]*watch{w}, s.watchers...)
}

func (s *Socket) removeWatch(w *watch) {
	for i, x := range s.watchers {
		if x == w {
			s.watchers = append(s.watchers[:i], s.watchers[i+1:]...)
			return
		}
	}
}

// moveWatchToTail implements the epoll-rr discipline: after a wakeup the
// woken watcher is demoted to the tail of the wait queue.
func (s *Socket) moveWatchToTail(w *watch) {
	s.removeWatch(w)
	s.watchers = append(s.watchers, w)
}
