package kernel

import "hermes/internal/bitops"

// RSS models NIC receive-side scaling: packets are hashed by 5-tuple onto a
// fixed set of hardware queues, one per CPU core. The paper's Fig. 7 uses
// this to show why NIC-level balancing is insufficient for L7: packets land
// evenly on queues, yet per-core CPU is wildly uneven because connection
// *processing cost* varies, which RSS cannot see (§3).
type RSS struct {
	// Packets counts packets steered to each queue.
	Packets []uint64
	// Bytes counts payload bytes steered to each queue.
	Bytes []uint64
}

// NewRSS creates an RSS engine with n queues.
func NewRSS(n int) *RSS {
	return &RSS{Packets: make([]uint64, n), Bytes: make([]uint64, n)}
}

// Queues returns the queue count.
func (r *RSS) Queues() int { return len(r.Packets) }

// Steer assigns a packet with the given flow hash and size to a queue and
// returns the queue index.
func (r *RSS) Steer(hash uint32, size int) int {
	q := int(bitops.ReciprocalScale(hash, uint32(len(r.Packets))))
	r.Packets[q]++
	r.Bytes[q] += uint64(size)
	return q
}
