package kernel

import (
	"fmt"
	"time"

	"hermes/internal/sim"
	"hermes/internal/tracing"
)

// EventKind classifies an epoll event for the application.
type EventKind uint8

// Event kinds.
const (
	// EvAccept: a listening socket has completed connections to accept.
	EvAccept EventKind = iota
	// EvReadable: a connection socket has unread request data.
	EvReadable
	// EvHangup: the peer closed and all data has been read.
	EvHangup
)

func (k EventKind) String() string {
	switch k {
	case EvAccept:
		return "accept"
	case EvReadable:
		return "readable"
	case EvHangup:
		return "hangup"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one entry of the batch returned by an epoll wait.
type Event struct {
	Kind EventKind
	Sock *Socket
}

// delivery is one scheduled wait completion. Immediate/zero-timeout waits
// carry their already-collected batch; wake-path deliveries collect at fire
// time (another worker may drain the sockets first — the spurious wakeup).
type delivery struct {
	fn   func([]Event)
	evs  []Event
	max  int
	wake bool
}

// watch ties one epoll instance to one socket. It is simultaneously the
// socket wait-queue entry (prev/next — list position is the wait-queue order
// the wakeup disciplines walk) and the epoll ready-list entry
// (readyPrev/readyNext), so registration, deregistration, wakeup walks, and
// ready-list removal are all O(1) pointer splices. Watches are pooled on the
// NetStack; gen is bumped on release so the fuzz harness can detect a stale
// handle surviving recycling.
type watch struct {
	ep   *Epoll
	sock *Socket
	// et marks edge-triggered registration (EPOLLET): the watch is armed
	// only by readiness *edges* (socketReady events); once collected it
	// leaves the ready list even if data remains, so the worker must drain
	// completely — the discipline whose failure mode is the worker hang of
	// Appendix C case 1.
	et      bool
	inReady bool
	gen     uint64

	// Socket wait-queue links (Socket.watchHead/watchTail).
	prev, next *watch
	// Epoll ready-list links (Epoll.readyHead/readyTail).
	readyPrev, readyNext *watch
	// Epoll interest-list links (Epoll.watchHead). The third intrusive
	// list: an epoll's interest set is a linked list off the instance, not
	// a map, so registration never rehashes as connection counts grow.
	epPrev, epNext *watch
}

// Epoll simulates one epoll instance, owned by exactly one worker (the
// paper's workers each run a private instance; shared listen sockets are
// what couple them). Wait is asynchronous: the callback fires on the virtual
// clock when events are ready or the timeout lapses.
type Epoll struct {
	ID int

	ns *NetStack
	// Interest list: intrusive list of this instance's watches. Lookup by
	// socket goes through the socket's (short) wait-queue list instead of
	// a map: a connection socket has at most one watcher, a listener has
	// one per worker — and the map's per-conn rehash growth at 1M-conn
	// scale was the kernel's last steady-state allocator.
	watchHead *watch
	nWatch    int
	// Ready list: intrusive FIFO of watches with pending readiness.
	readyHead *watch
	readyTail *watch

	// The blocked waiter, embedded (one Wait is outstanding at a time, so
	// no separate waiter object is needed).
	waiting bool
	wMax    int
	wFn     func([]Event)
	wTimer  sim.Timer

	// Pre-bound trampolines (bound once at creation: binding a method value
	// per call allocates) and the pending-delivery queue they drain. Each
	// scheduled trampoline event corresponds to exactly one queue entry,
	// and same-time engine events fire FIFO, so deliveries fire in
	// schedule order — several can be outstanding at once (a callback
	// re-entering Wait immediately, or driver code issuing nonblocking
	// Waits back to back). The queue is head-indexed and reused, so
	// steady-state scheduling is allocation-free.
	deliverFn func()
	timeoutFn func()
	pendQ     []delivery
	pendQHead int

	// evBuf / emitBuf back the batch returned by collect and its LT
	// requeue scratch. One wait per instance is outstanding at a time, so
	// a batch is reused only after its consumer has re-entered Wait (the
	// batch is valid until the next Wait or Kick on this instance).
	evBuf   []Event
	emitBuf []*watch

	// Stats for Figs. 4, 5.
	Waits            uint64 // completed epoll_wait calls
	Timeouts         uint64 // waits that returned on timeout with no events
	SpuriousWakeups  uint64 // woken with zero events (thundering herd waste)
	EventsDelivered  uint64 // total events returned
	LastBlockStartNS int64  // when the current/last block began

	tel EpollInstruments
	tr  *tracing.WorkerTrace
}

// Add registers a socket with this epoll instance (EPOLL_CTL_ADD) in
// level-triggered mode. The exclusive-vs-herd wakeup discipline is a
// NetStack-wide mode, matching the deployment choices the paper compares.
func (ep *Epoll) Add(s *Socket) { ep.add(s, false) }

// AddET registers a socket in edge-triggered mode (EPOLLET): events fire on
// readiness transitions only, and the worker must drain the socket fully or
// it will never be notified again — Nginx's discipline, and the mechanism
// behind the buffer-draining worker hangs of Appendix C.
func (ep *Epoll) AddET(s *Socket) { ep.add(s, true) }

func (ep *Epoll) add(s *Socket, et bool) {
	if ep.findWatch(s) != nil {
		panic(fmt.Sprintf("kernel: epoll %d already watches socket %d", ep.ID, s.ID))
	}
	w := ep.ns.newWatch()
	w.ep = ep
	w.sock = s
	w.et = et
	ep.watchAttach(w)
	s.addWatch(w)
	if s.ready() {
		ep.markReady(w)
	}
}

// Del removes a socket (EPOLL_CTL_DEL).
func (ep *Epoll) Del(s *Socket) {
	w := ep.findWatch(s)
	if w == nil {
		return
	}
	ep.watchDetach(w)
	s.removeWatch(w)
	ep.readyRemove(w)
	ep.ns.releaseWatch(w)
}

// findWatch resolves this instance's watch on s by walking the socket's
// wait queue — O(watchers on s), which is 1 for connection sockets and
// #workers for a shared listener.
func (ep *Epoll) findWatch(s *Socket) *watch {
	for w := s.watchHead; w != nil; w = w.next {
		if w.ep == ep {
			return w
		}
	}
	return nil
}

func (ep *Epoll) watchAttach(w *watch) {
	w.epNext = ep.watchHead
	if ep.watchHead != nil {
		ep.watchHead.epPrev = w
	}
	ep.watchHead = w
	ep.nWatch++
}

func (ep *Epoll) watchDetach(w *watch) {
	if w.epPrev != nil {
		w.epPrev.epNext = w.epNext
	} else {
		ep.watchHead = w.epNext
	}
	if w.epNext != nil {
		w.epNext.epPrev = w.epPrev
	}
	w.epPrev, w.epNext = nil, nil
	ep.nWatch--
}

// Watches returns the number of sockets in the interest list.
func (ep *Epoll) Watches() int { return ep.nWatch }

func (ep *Epoll) markReady(w *watch) {
	if w.inReady {
		return
	}
	w.inReady = true
	w.readyNext = nil
	w.readyPrev = ep.readyTail
	if ep.readyTail != nil {
		ep.readyTail.readyNext = w
	} else {
		ep.readyHead = w
	}
	ep.readyTail = w
}

// readyRemove unlinks w from the ready list if present. O(1).
func (ep *Epoll) readyRemove(w *watch) {
	if !w.inReady {
		return
	}
	w.inReady = false
	if w.readyPrev != nil {
		w.readyPrev.readyNext = w.readyNext
	} else {
		ep.readyHead = w.readyNext
	}
	if w.readyNext != nil {
		w.readyNext.readyPrev = w.readyPrev
	} else {
		ep.readyTail = w.readyPrev
	}
	w.readyPrev, w.readyNext = nil, nil
}

// collect drains up to max events from ready sockets (level-triggered: a
// socket that stays ready is kept on the ready list for the next wait).
func (ep *Epoll) collect(max int) []Event {
	if max <= 0 {
		max = 1
	}
	evs := ep.evBuf[:0]
	emitted := ep.emitBuf[:0]
	for w := ep.readyHead; w != nil && len(evs) < max; {
		next := w.readyNext
		s := w.sock
		if !s.ready() {
			ep.readyRemove(w)
			w = next
			continue
		}
		switch {
		case s.Listening:
			evs = append(evs, Event{Kind: EvAccept, Sock: s})
		case s.PendingData() > 0:
			evs = append(evs, Event{Kind: EvReadable, Sock: s})
		default: // hup with no pending data
			evs = append(evs, Event{Kind: EvHangup, Sock: s})
		}
		if w.et {
			// Edge-triggered: collected once per edge; the socket drops off
			// the ready list even if data remains.
			ep.readyRemove(w)
		} else {
			emitted = append(emitted, w)
		}
		w = next
	}
	// Level-triggered: serviced sockets stay on the list but rotate to the
	// tail (as Linux requeues LT fds) so unserviced ready sockets are not
	// starved when batches are capped by maxEvents.
	for _, w := range emitted {
		ep.readyRemove(w)
		ep.markReady(w)
	}
	ep.evBuf = evs
	ep.emitBuf = emitted[:0]
	return evs
}

// Wait models epoll_wait(maxEvents, timeout). The callback receives the
// event batch — possibly empty on timeout or spurious wakeup — on the
// virtual clock. A worker must not have two Waits outstanding. As with the
// real syscall's events array, the batch is owned by the epoll instance and
// is only valid until the next Wait or Kick; callers that retain events
// across waits must copy them.
func (ep *Epoll) Wait(maxEvents int, timeout time.Duration, fn func([]Event)) {
	if ep.waiting {
		panic(fmt.Sprintf("kernel: epoll %d has a Wait outstanding", ep.ID))
	}
	ep.LastBlockStartNS = ep.ns.eng.Now()

	if evs := ep.collect(maxEvents); len(evs) > 0 {
		ep.Waits++
		ep.EventsDelivered += uint64(len(evs))
		ep.tel.Wakeups.Inc()
		ep.tel.Events.Add(uint64(len(evs)))
		ep.tel.Residency.Observe(0)
		now := ep.ns.eng.Now()
		ep.tr.Wakeup(now, now, len(evs), false)
		ep.schedule(delivery{fn: fn, evs: evs})
		return
	}
	if timeout == 0 {
		ep.Waits++
		ep.tel.Wakeups.Inc()
		ep.tel.Residency.Observe(0)
		now := ep.ns.eng.Now()
		ep.tr.Wakeup(now, now, 0, true)
		ep.schedule(delivery{fn: fn})
		return
	}

	ep.waiting = true
	ep.wMax = maxEvents
	ep.wFn = fn
	if timeout > 0 {
		ep.wTimer = ep.ns.eng.After(timeout, ep.timeoutFn)
	}
}

// schedule enqueues a delivery and arms the trampoline for it. While a
// burst is open (and the stack's width allows coalescing), the per-delivery
// trampoline is replaced by an entry in the stack's flush frame: the frame's
// single flush event pops this queue in the same global order the dedicated
// trampolines would have fired in.
func (ep *Epoll) schedule(d delivery) {
	if len(ep.pendQ) == cap(ep.pendQ) && ep.pendQHead > 0 {
		n := copy(ep.pendQ, ep.pendQ[ep.pendQHead:])
		for i := n; i < len(ep.pendQ); i++ {
			ep.pendQ[i] = delivery{}
		}
		ep.pendQ = ep.pendQ[:n]
		ep.pendQHead = 0
	}
	ep.pendQ = append(ep.pendQ, d)
	if ns := ep.ns; ns.burstDepth > 0 && ns.burstWidth > 1 {
		ns.burstEnqueue(ep)
		return
	}
	ep.ns.eng.At(ep.ns.eng.Now(), ep.deliverFn)
}

// deliver fires the oldest scheduled delivery.
func (ep *Epoll) deliver() {
	d := ep.pendQ[ep.pendQHead]
	ep.pendQ[ep.pendQHead] = delivery{}
	ep.pendQHead++
	if ep.pendQHead == len(ep.pendQ) {
		ep.pendQ = ep.pendQ[:0]
		ep.pendQHead = 0
	}
	if !d.wake {
		d.fn(d.evs)
		return
	}
	evs := ep.collect(d.max)
	ep.Waits++
	ep.EventsDelivered += uint64(len(evs))
	ep.tel.Wakeups.Inc()
	ep.tel.Events.Add(uint64(len(evs)))
	ep.tel.Residency.Observe(ep.ns.eng.Now() - ep.LastBlockStartNS)
	ep.tr.Wakeup(ep.LastBlockStartNS, ep.ns.eng.Now(), len(evs), false)
	if len(evs) == 0 {
		ep.SpuriousWakeups++
		ep.tel.Spurious.Inc()
	}
	d.fn(evs)
}

// onTimeout fires when a blocking Wait's timeout lapses with no events.
func (ep *Epoll) onTimeout() {
	if !ep.waiting {
		return
	}
	ep.waiting = false
	fn := ep.wFn
	ep.wFn = nil
	ep.Waits++
	ep.Timeouts++
	ep.tel.Wakeups.Inc()
	ep.tel.Timeouts.Inc()
	ep.tel.Residency.Observe(ep.ns.eng.Now() - ep.LastBlockStartNS)
	ep.tr.Wakeup(ep.LastBlockStartNS, ep.ns.eng.Now(), 0, true)
	fn(nil)
}

// Blocked reports whether the owning worker is blocked in a Wait — the
// "idle" test the exclusive wakeup walk applies (§2.2, Fig. A2).
func (ep *Epoll) Blocked() bool { return ep.waiting }

// Close tears the instance down, as the kernel does when a process dies
// with an epoll fd open: the outstanding waiter (if any) is discarded
// without being called, and every watch is unhooked from its socket's
// wait queue so exclusive wakeup walks can no longer pick this instance.
// A closed instance must not be reused; crashed workers build a new one
// on restart.
func (ep *Epoll) Close() {
	if ep.waiting {
		ep.waiting = false
		ep.wFn = nil
		ep.wTimer.Cancel()
	}
	for ep.watchHead != nil {
		w := ep.watchHead
		w.sock.removeWatch(w)
		ep.readyRemove(w)
		ep.watchDetach(w)
		ep.ns.releaseWatch(w)
	}
	ep.readyHead, ep.readyTail = nil, nil
}

// Kick wakes the blocked waiter with whatever is ready (possibly nothing) —
// an eventfd-style userspace signal, used e.g. to hand off the accept mutex
// to a sleeping worker. No-op if the worker is not blocked.
func (ep *Epoll) Kick() { ep.wake() }

// wake unblocks the waiter, delivering whatever is ready at delivery time.
// If another worker drained the sockets first, the wakeup is spurious and
// the callback receives an empty batch (counted: this is the thundering
// herd's wasted CPU). The waiting flag is cleared synchronously — the
// exclusive wakeup walk relies on it to skip already-woken instances.
func (ep *Epoll) wake() {
	if !ep.waiting {
		return
	}
	ep.waiting = false
	ep.wTimer.Cancel()
	fn := ep.wFn
	ep.wFn = nil
	ep.schedule(delivery{fn: fn, max: ep.wMax, wake: true})
}
