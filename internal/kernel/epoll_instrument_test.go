package kernel

import (
	"testing"
	"time"

	"hermes/internal/sim"
	"hermes/internal/telemetry"
	"hermes/internal/tracing"
)

// Regression: the two immediate-return paths of Wait (events already ready;
// zero timeout with nothing ready) used to skip the residency histogram and
// the wakeup span, so zero-block waits were invisible to telemetry and the
// flight recorder. Both must observe a 0ns residency; the events-ready path
// must also emit a zero-width wakeup span.
func TestImmediateWaitReturnsInstrumented(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := NewNetStack(eng, WakeExclusiveLIFO)
	ls, err := ns.ListenShared(80, 8)
	if err != nil {
		t.Fatal(err)
	}
	ep := ns.NewEpoll()
	ep.Add(ls)

	reg := telemetry.NewRegistry()
	hist := reg.Histogram(telemetry.Metric{
		Name: "kernel.epoll.wait_ns", Layer: "kernel", Unit: "ns",
	}, telemetry.DurationBuckets())
	tracer := tracing.New(tracing.Config{})
	ep.Instrument(EpollInstruments{Residency: hist})
	ep.InstrumentTrace(tracer.WorkerTrace(0))

	// Path 1: the listener is ready before Wait is even called.
	if _, ok := ns.DeliverSYN(tupleFor(1, 80), nil); !ok {
		t.Fatal("SYN rejected")
	}
	delivered := -1
	ep.Wait(16, 5*time.Millisecond, func(evs []Event) { delivered = len(evs) })
	eng.RunUntil(eng.Now() + 1)
	if delivered != 1 {
		t.Fatalf("immediate wait delivered %d events, want 1", delivered)
	}
	if got := hist.Count(); got != 1 {
		t.Fatalf("events-ready immediate return missing from residency histogram: count=%d", got)
	}

	// Path 2: zero timeout, nothing ready — a pure poll.
	ls.Accept()
	polled := false
	ep.Wait(16, 0, func(evs []Event) { polled = len(evs) == 0 })
	eng.RunUntil(eng.Now() + 1)
	if !polled {
		t.Fatal("zero-timeout poll callback never fired")
	}
	if got := hist.Count(); got != 2 {
		t.Fatalf("zero-timeout immediate return missing from residency histogram: count=%d", got)
	}
	if sum := hist.Sum(); sum != 0 {
		t.Fatalf("immediate returns should observe 0ns residency, sum=%d", sum)
	}

	// The events-ready path emits a zero-width wakeup span; the empty
	// zero-timeout poll is idle time and stays out of the trace, like
	// ordinary timeouts.
	tracer.Flush()
	wakeups := 0
	for _, s := range tracer.Spans() {
		if s.Kind != tracing.KindWakeup {
			continue
		}
		wakeups++
		if s.StartNS != s.EndNS {
			t.Fatalf("immediate wakeup span not zero-width: [%d,%d]", s.StartNS, s.EndNS)
		}
	}
	if wakeups != 1 {
		t.Fatalf("want exactly 1 wakeup span from the events-ready path, got %d", wakeups)
	}
}
