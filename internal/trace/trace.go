// Package trace records concrete traffic schedules and replays them at
// scaled rates — the methodology of §6.2: "we collected and replayed
// traffic from them... at 2 to 3 times the original rate". A trace pins an
// exact sequence of connections and requests (sampled once from a workload
// spec or captured from a run), so different dispatch modes can be compared
// on byte-identical inputs rather than merely distribution-identical ones.
//
// The on-disk format is a JSON header (schema, counts) followed by
// fixed-width little-endian records, favouring bulk I/O over flexibility.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/workload"
)

// Magic identifies trace files.
const Magic = "HERMES-TRACE"

// Version is the current format version.
const Version = 1

// Request is one request within a connection.
type Request struct {
	// OffsetNS is the delay from connection establishment.
	OffsetNS int64
	// CostNS is the worker CPU cost.
	CostNS int64
	// Size / RespSize are request/response bytes.
	Size     int32
	RespSize int32
}

// Conn is one recorded connection.
type Conn struct {
	// ArrivalNS is the SYN time relative to trace start.
	ArrivalNS int64
	// Port is the tenant port.
	Port uint16
	// SrcIP / SrcPort identify the client (kept so hashes replay
	// identically).
	SrcIP   uint32
	SrcPort uint16
	// Requests in send order; the last one closes the connection.
	Requests []Request
}

// Trace is a recorded traffic schedule.
type Trace struct {
	// Name labels the trace.
	Name string
	// DurationNS is the recording window.
	DurationNS int64
	// Conns in arrival order.
	Conns []Conn
}

// header is the JSON preamble of the binary format.
type header struct {
	Magic      string `json:"magic"`
	Version    int    `json:"version"`
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
	Conns      int    `json:"conns"`
}

// Sample materializes a workload spec into a concrete trace of duration d
// using the given RNG: Poisson arrivals, per-connection request trains,
// exactly as the live generator would produce.
func Sample(spec workload.Spec, d time.Duration, rng *rand.Rand) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tr := &Trace{Name: spec.Name, DurationNS: int64(d)}
	var now int64
	seq := uint32(0)
	for {
		now += int64(rng.ExpFloat64() * float64(time.Second) / spec.ConnRate)
		if now >= int64(d) {
			break
		}
		seq++
		port := spec.Ports[rng.Intn(len(spec.Ports))]
		if spec.PortWeights != nil {
			port = spec.Ports[workload.PickWeighted(rng, spec.PortWeights)]
		}
		c := Conn{
			ArrivalNS: now,
			Port:      port,
			SrcIP:     rng.Uint32(),
			SrcPort:   uint16(1024 + seq%60000),
		}
		n := int(spec.ReqPerConn.Sample(rng))
		if n < 1 {
			n = 1
		}
		off := int64(spec.FirstReqDelayNS.Sample(rng))
		for r := 0; r < n; r++ {
			c.Requests = append(c.Requests, Request{
				OffsetNS: off,
				CostNS:   int64(spec.CostNS.Sample(rng)),
				Size:     int32(spec.SizeBytes.Sample(rng)),
				RespSize: int32(spec.RespBytes.Sample(rng)),
			})
			off += int64(spec.InterReqNS.Sample(rng))
		}
		tr.Conns = append(tr.Conns, c)
	}
	return tr, nil
}

// Requests returns the total request count.
func (t *Trace) Requests() int {
	n := 0
	for i := range t.Conns {
		n += len(t.Conns[i].Requests)
	}
	return n
}

// Replay schedules the trace against an LB with time compressed by rate
// (rate=2 replays twice as fast — the paper's "medium"). Request costs and
// sizes are not scaled, only the arrival clock. It returns the number of
// requests scheduled.
func (t *Trace) Replay(lb *l7lb.LB, rate float64) int {
	if rate <= 0 {
		rate = 1
	}
	start := lb.Eng.Now()
	scheduled := 0
	for i := range t.Conns {
		c := &t.Conns[i]
		at := start + int64(float64(c.ArrivalNS)/rate)
		scheduled += len(c.Requests)
		lb.Eng.At(at, func() {
			conn, ok := lb.NS.DeliverSYN(kernel.FourTuple{
				SrcIP:   c.SrcIP,
				SrcPort: c.SrcPort,
				DstIP:   0x0a00_0001,
				DstPort: c.Port,
			}, nil)
			if !ok {
				return
			}
			// Hold a checked ref across the scheduled requests: a reset
			// connection's pooled object may be recycled before they fire.
			ref := conn.Ref()
			for r := range c.Requests {
				req := &c.Requests[r]
				last := r == len(c.Requests)-1
				reqAt := lb.Eng.Now() + int64(float64(req.OffsetNS)/rate)
				lb.Eng.At(reqAt, func() {
					conn := ref.Get()
					if conn == nil || conn.Sock().Closed() {
						return
					}
					lb.NS.DeliverData(conn, l7lb.Work{
						ArrivalNS: lb.Eng.Now(),
						Cost:      time.Duration(req.CostNS),
						Size:      int(req.Size),
						RespSize:  int(req.RespSize),
						Close:     last,
						Tenant:    c.Port,
					})
				})
			}
		})
	}
	return scheduled
}

// WriteTo serializes the trace. It returns the byte count written.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	hdr, err := json.Marshal(header{
		Magic: Magic, Version: Version, Name: t.Name,
		DurationNS: t.DurationNS, Conns: len(t.Conns),
	})
	if err != nil {
		return 0, err
	}
	k, err := bw.Write(append(hdr, '\n'))
	n += int64(k)
	if err != nil {
		return n, err
	}
	le := binary.LittleEndian
	var buf [26]byte
	var rbuf [24]byte
	for i := range t.Conns {
		c := &t.Conns[i]
		le.PutUint64(buf[0:], uint64(c.ArrivalNS))
		le.PutUint16(buf[8:], c.Port)
		le.PutUint32(buf[10:], c.SrcIP)
		le.PutUint16(buf[14:], c.SrcPort)
		le.PutUint32(buf[16:], uint32(len(c.Requests)))
		le.PutUint32(buf[20:], 0) // reserved
		le.PutUint16(buf[24:], 0) // reserved
		k, err = bw.Write(buf[:])
		n += int64(k)
		if err != nil {
			return n, err
		}
		for r := range c.Requests {
			req := &c.Requests[r]
			le.PutUint64(rbuf[0:], uint64(req.OffsetNS))
			le.PutUint64(rbuf[8:], uint64(req.CostNS))
			le.PutUint32(rbuf[16:], uint32(req.Size))
			le.PutUint32(rbuf[20:], uint32(req.RespSize))
			k, err = bw.Write(rbuf[:])
			n += int64(k)
			if err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Read deserializes a trace written by WriteTo.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	var h header
	if err := json.Unmarshal(line, &h); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if h.Magic != Magic {
		return nil, errors.New("trace: not a trace file")
	}
	if h.Version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", h.Version)
	}
	if h.Conns < 0 {
		return nil, errors.New("trace: negative connection count")
	}
	t := &Trace{Name: h.Name, DurationNS: h.DurationNS, Conns: make([]Conn, 0, h.Conns)}
	le := binary.LittleEndian
	var buf [26]byte
	var rbuf [24]byte
	for i := 0; i < h.Conns; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: conn %d: %w", i, err)
		}
		c := Conn{
			ArrivalNS: int64(le.Uint64(buf[0:])),
			Port:      le.Uint16(buf[8:]),
			SrcIP:     le.Uint32(buf[10:]),
			SrcPort:   le.Uint16(buf[14:]),
		}
		nreq := int(le.Uint32(buf[16:]))
		if nreq < 0 || nreq > 1<<24 {
			return nil, fmt.Errorf("trace: conn %d: absurd request count %d", i, nreq)
		}
		c.Requests = make([]Request, nreq)
		for r := 0; r < nreq; r++ {
			if _, err := io.ReadFull(br, rbuf[:]); err != nil {
				return nil, fmt.Errorf("trace: conn %d req %d: %w", i, r, err)
			}
			c.Requests[r] = Request{
				OffsetNS: int64(le.Uint64(rbuf[0:])),
				CostNS:   int64(le.Uint64(rbuf[8:])),
				Size:     int32(le.Uint32(rbuf[16:])),
				RespSize: int32(le.Uint32(rbuf[20:])),
			}
		}
		t.Conns = append(t.Conns, c)
	}
	return t, nil
}
