package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/sim"
	"hermes/internal/workload"
)

func sampleTrace(t *testing.T, seed int64) *Trace {
	t.Helper()
	spec := workload.Case3([]uint16{8080, 8081})
	spec.ConnRate = 2000
	tr, err := Sample(spec, 100*time.Millisecond, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSampleShape(t *testing.T) {
	tr := sampleTrace(t, 1)
	// 2000/s over 100ms ≈ 200 conns.
	if len(tr.Conns) < 130 || len(tr.Conns) > 280 {
		t.Fatalf("conns = %d, want ≈200", len(tr.Conns))
	}
	if tr.Requests() < len(tr.Conns)*60 {
		t.Fatalf("requests = %d for %d conns (case3 has 64-128/conn)", tr.Requests(), len(tr.Conns))
	}
	prev := int64(-1)
	for _, c := range tr.Conns {
		if c.ArrivalNS < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = c.ArrivalNS
		if c.ArrivalNS >= tr.DurationNS {
			t.Fatal("arrival beyond window")
		}
		if len(c.Requests) == 0 {
			t.Fatal("conn without requests")
		}
		off := int64(-1)
		for _, r := range c.Requests {
			if r.OffsetNS < off {
				t.Fatal("request offsets not monotone")
			}
			off = r.OffsetNS
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	a, b := sampleTrace(t, 7), sampleTrace(t, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed traces differ")
	}
}

func TestSampleRejectsBadSpec(t *testing.T) {
	if _, err := Sample(workload.Spec{}, time.Second, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestRoundTripSerialization(t *testing.T) {
	tr := sampleTrace(t, 3)
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json\n",
		`{"magic":"WRONG","version":1,"conns":0}` + "\n",
		`{"magic":"HERMES-TRACE","version":99,"conns":0}` + "\n",
		`{"magic":"HERMES-TRACE","version":1,"conns":5}` + "\n", // truncated body
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c[:min(20, len(c))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestReplayDeliversIdenticalLoadAcrossModes(t *testing.T) {
	tr := sampleTrace(t, 5)
	counts := map[l7lb.Mode]uint64{}
	for _, mode := range []l7lb.Mode{l7lb.ModeExclusive, l7lb.ModeHermes} {
		eng := sim.NewEngine(99)
		cfg := l7lb.DefaultConfig(mode)
		cfg.Workers = 4
		cfg.Ports = []uint16{8080, 8081}
		lb, err := l7lb.New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lb.Start()
		scheduled := tr.Replay(lb, 1)
		if scheduled != tr.Requests() {
			t.Fatalf("scheduled %d of %d", scheduled, tr.Requests())
		}
		eng.RunUntil(int64(5 * time.Second))
		counts[mode] = lb.Completed
	}
	if counts[l7lb.ModeExclusive] != counts[l7lb.ModeHermes] {
		t.Fatalf("identical trace completed differently on idle LB: %v", counts)
	}
	if counts[l7lb.ModeHermes] == 0 {
		t.Fatal("replay produced nothing")
	}
}

func TestReplayRateCompressesTime(t *testing.T) {
	tr := sampleTrace(t, 6)
	lastCompletion := func(rate float64) int64 {
		eng := sim.NewEngine(1)
		cfg := l7lb.DefaultConfig(l7lb.ModeReuseport)
		cfg.Workers = 8
		cfg.Ports = []uint16{8080, 8081}
		lb, err := l7lb.New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var last int64
		lb.OnResponse = func(_ kernel.ConnRef, _ l7lb.Work) { last = eng.Now() }
		lb.Start()
		tr.Replay(lb, rate)
		eng.RunUntil(int64(30 * time.Second))
		if lb.Completed == 0 {
			t.Fatal("replay produced nothing")
		}
		return last
	}
	t1 := lastCompletion(1)
	t3 := lastCompletion(3)
	if t3 >= t1 {
		t.Fatalf("3x replay finished at %d, 1x at %d; compression broken", t3, t1)
	}
	// Case3 trains run ~0.5s beyond the 100ms window; 3x compresses the
	// whole schedule to roughly a third.
	if float64(t3) > 0.6*float64(t1) {
		t.Fatalf("3x replay too slow: %d vs %d", t3, t1)
	}
}
