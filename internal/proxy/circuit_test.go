package proxy

import "testing"

// fakeClock drives a Circuit deterministically.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() int64       { return c.ns }
func (c *fakeClock) advance(ns int64) { c.ns += ns }

func newTestCircuit(clk *fakeClock) *Circuit {
	return NewCircuit(CircuitBreakerConfig{
		Enabled:          true,
		FailureThreshold: 3,
		SuccessThreshold: 2,
		Timeout:          1000, // ns, on the fake clock
	}, clk.now)
}

func TestCircuitOpensAfterConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCircuit(clk)
	for i := 0; i < 2; i++ {
		if !c.Allow() {
			t.Fatalf("closed circuit refused request %d", i)
		}
		c.Failure()
	}
	if c.State() != CircuitClosed {
		t.Fatalf("state = %v before threshold", c.State())
	}
	c.Allow()
	c.Failure() // third consecutive failure
	if c.State() != CircuitOpen {
		t.Fatalf("state = %v after threshold failures", c.State())
	}
	if c.Allow() {
		t.Error("open circuit admitted a request before timeout")
	}
}

// A success while closed resets the consecutive-failure streak.
func TestCircuitSuccessResetsStreak(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCircuit(clk)
	c.Allow()
	c.Failure()
	c.Allow()
	c.Failure()
	c.Allow()
	c.Success()
	c.Allow()
	c.Failure()
	c.Allow()
	c.Failure()
	if c.State() != CircuitClosed {
		t.Fatalf("state = %v; streak should have reset", c.State())
	}
}

func TestCircuitHalfOpenProbing(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCircuit(clk)
	for i := 0; i < 3; i++ {
		c.Allow()
		c.Failure()
	}
	clk.advance(1000) // past Timeout
	if c.State() != CircuitHalfOpen {
		t.Fatalf("state = %v after timeout, want half-open", c.State())
	}
	// Trials are bounded by SuccessThreshold (2): third concurrent ask refused.
	if !c.Allow() || !c.Allow() {
		t.Fatal("half-open circuit refused its trial requests")
	}
	if c.Allow() {
		t.Error("half-open circuit exceeded its trial bound")
	}
	c.Success()
	c.Success()
	if c.State() != CircuitClosed {
		t.Fatalf("state = %v after %d trial successes", c.State(), 2)
	}

	snap := c.Snapshot()
	if snap.Opens != 1 || snap.HalfOpens != 1 || snap.Closes != 1 {
		t.Errorf("transition counts = %+v", snap)
	}
}

func TestCircuitHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCircuit(clk)
	for i := 0; i < 3; i++ {
		c.Allow()
		c.Failure()
	}
	clk.advance(1000)
	if !c.Allow() {
		t.Fatal("no trial admitted")
	}
	c.Failure()
	if c.State() != CircuitOpen {
		t.Fatalf("state = %v after trial failure, want open", c.State())
	}
	// The reopen restarts the timeout clock.
	clk.advance(500)
	if c.Allow() {
		t.Error("reopened circuit admitted before a fresh timeout")
	}
	clk.advance(500)
	if !c.Allow() {
		t.Error("reopened circuit refused after a fresh timeout")
	}
}

func TestCircuitTransitionCallback(t *testing.T) {
	clk := &fakeClock{}
	c := newTestCircuit(clk)
	var seen []CircuitState
	c.onTransition = func(from, to CircuitState) { seen = append(seen, to) }
	for i := 0; i < 3; i++ {
		c.Allow()
		c.Failure()
	}
	clk.advance(1000)
	c.Allow()
	c.Success()
	c.Allow()
	c.Success()
	want := []CircuitState{CircuitOpen, CircuitHalfOpen, CircuitClosed}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", seen, want)
		}
	}
}
