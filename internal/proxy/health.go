package proxy

import (
	"io"
	"net"
	"sync"
	"time"

	"hermes/internal/httpx"
)

// checker actively probes every backend each interval: one HTTP GET of the
// configured path, bounded by the probe timeout. Streak counting implements
// the healthy/unhealthy thresholds; verdict flips go through Pool.setHealthy
// so passive checks, telemetry, and tracing all share one transition path.
type checker struct {
	cfg  HealthCheckConfig
	pool *Pool
	tel  *Instruments
	tr   traceHook

	stop chan struct{}
	done chan struct{}
}

// traceHook decouples the checker from the tracer (nil-safe in tests).
type traceHook interface {
	probe(backend int, startNS, endNS int64, ok bool)
}

func newChecker(cfg HealthCheckConfig, pool *Pool, tel *Instruments, tr traceHook) *checker {
	return &checker{
		cfg: cfg, pool: pool, tel: tel, tr: tr,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

func (c *checker) run() {
	defer close(c.done)
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	// Probe immediately on start: a dead backend at boot should be evicted
	// within the first interval, not after threshold+1 of them.
	c.sweep()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.sweep()
		}
	}
}

// sweep probes every backend concurrently and applies the streak thresholds.
func (c *checker) sweep() {
	var wg sync.WaitGroup
	for _, b := range c.pool.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			start := time.Now()
			ok := c.probeOnce(b.addr)
			end := time.Now()

			c.tel.HealthProbes.Inc()
			if !ok {
				c.tel.HealthProbeFailures.Inc()
			}
			b.lastProbeNS.Store(end.UnixNano())
			b.lastProbeOK.Store(ok)
			if c.tr != nil {
				c.tr.probe(b.idx, start.UnixNano(), end.UnixNano(), ok)
			}

			// Streaks are only touched here (single checker goroutine per
			// backend per sweep; sweeps don't overlap per backend because
			// sweep joins before the next tick is handled).
			if ok {
				b.probeOKs++
				b.probeFails = 0
				if !b.healthy.Load() && b.probeOKs >= c.cfg.HealthyThreshold {
					c.pool.setHealthy(b, true, "active")
				}
			} else {
				b.probeFails++
				b.probeOKs = 0
				if b.healthy.Load() && b.probeFails >= c.cfg.UnhealthyThreshold {
					c.pool.setHealthy(b, false, "active")
				}
			}
		}(b)
	}
	wg.Wait()
}

// probeOnce performs one health probe: dial, GET path, expect a parseable
// response with a non-5xx status inside the timeout.
func (c *checker) probeOnce(addr string) bool {
	deadline := time.Now().Add(c.cfg.Timeout)
	conn, err := net.DialTimeout("tcp", addr, c.cfg.Timeout)
	if err != nil {
		return false
	}
	defer conn.Close()
	_ = conn.SetDeadline(deadline)
	req := httpx.Request{
		Method: "GET",
		Target: c.cfg.Path,
		Headers: []httpx.Header{
			{Name: "Host", Value: addr},
			{Name: "User-Agent", Value: "hermes-lb-healthcheck"},
			{Name: "Connection", Value: "close"},
		},
	}
	if _, err := conn.Write(req.Append(nil)); err != nil {
		return false
	}
	data, err := io.ReadAll(conn)
	if err != nil && len(data) == 0 {
		return false
	}
	resp, _, perr := httpx.ParseResponse(data)
	if perr != nil {
		return false
	}
	return resp.Status < 500
}

// Stop halts probing and waits for the in-flight sweep to finish.
func (c *checker) Stop() {
	close(c.stop)
	<-c.done
}
