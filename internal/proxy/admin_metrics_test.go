package proxy

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hermes/internal/openmetrics"
	"hermes/internal/telemetry"
)

// TestAdminMetricsPlane covers the live metrics endpoints: /metrics is a
// conformant OpenMetrics exposition, /slo reports the monitor, every JSON
// endpoint declares its content type and no-store, and /healthz carries the
// SLO verdict.
func TestAdminMetricsPlane(t *testing.T) {
	b := newStubUpstream(t)
	cfg := testConfig(b)
	p := startProxy(t, cfg)
	for i := 0; i < 5; i++ {
		if _, err := get(p.Addr(), "/", nil); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(AdminHandler(p))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Errorf("/metrics content type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("/metrics cache-control = %q", cc)
	}
	fams, err := openmetrics.Validate(body)
	if err != nil {
		t.Fatalf("/metrics failed conformance: %v", err)
	}
	byName := map[string]bool{}
	for i := range fams {
		byName[fams[i].Name] = true
	}
	for _, want := range []string{
		"hermes_proxy_request_latency_ns",
		"hermes_proxy_worker_requests_served",
		"hermes_core_schedule_recomputes",
		"hermes_slo_state",
	} {
		if !byName[want] {
			t.Errorf("/metrics missing family %s", want)
		}
	}

	resp, err = http.Get(srv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/slo status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/slo content type = %q", ct)
	}
	for _, want := range []string{`"state"`, `"latency_burn"`, `"errors_burn"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/slo body missing %s: %s", want, body)
		}
	}

	// Every JSON endpoint declares content type and no-store.
	for _, path := range []string{"/healthz", "/backends", "/stats", "/circuits", "/slo"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s content type = %q", path, ct)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s cache-control = %q", path, cc)
		}
	}

	// /healthz carries the SLO verdict ("ok" on a clean run).
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"slo": "ok"`) {
		t.Errorf("/healthz missing slo state: %s", body)
	}
}

// TestAdminSLODisabled: with the monitor off, /slo 404s and /healthz omits
// the verdict.
func TestAdminSLODisabled(t *testing.T) {
	b := newStubUpstream(t)
	cfg := testConfig(b)
	cfg.SLO.Enabled = false
	p := startProxy(t, cfg)
	srv := httptest.NewServer(AdminHandler(p))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/slo status = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), `"slo"`) {
		t.Errorf("/healthz should omit slo when disabled: %s", body)
	}
}
