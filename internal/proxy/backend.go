package proxy

import (
	"sync"
	"sync/atomic"
)

// Backend health-state codes, exported in backend_state trace spans and the
// admin API. Circuit transitions use 100+CircuitState so the two state
// machines share one span kind without colliding.
const (
	stateUnhealthy int64 = 0
	stateHealthy   int64 = 1
	stateCircuit   int64 = 100
)

// Backend is one upstream server's runtime state.
type Backend struct {
	idx    int
	addr   string
	weight int

	healthy atomic.Bool

	// Active-probe streaks (health checker goroutine only).
	probeOKs   int
	probeFails int

	// passiveFails counts consecutive upstream errors observed while
	// proxying (any worker).
	passiveFails atomic.Int32

	// active is the in-flight proxied request count (least-conn metric).
	active atomic.Int64

	requests atomic.Uint64 // proxied requests completed
	errors   atomic.Uint64 // upstream failures

	lastProbeNS   atomic.Int64 // wall time of the last active probe (0 = never)
	lastProbeOK   atomic.Bool
	lastChangeNS  atomic.Int64 // wall time of the last health transition
	downReason    atomic.Value // string: "active" | "passive" | ""
	healthyGauge  func(int64)  // telemetry hook (nil = off)
	circuit       *Circuit     // nil when circuit breaking is disabled
	smoothCurrent int          // smooth-weighted-RR state (pool.mu)
}

// Addr returns the backend's dial address.
func (b *Backend) Addr() string { return b.addr }

// Healthy reports the combined active+passive health verdict.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// Circuit returns the backend's breaker (nil when disabled).
func (b *Backend) Circuit() *Circuit { return b.circuit }

// available reports whether the pool may pick this backend at all: healthy
// and not rejected by an open circuit. Half-open admission is checked at
// pick time (it consumes a trial slot).
func (b *Backend) available() bool {
	if !b.healthy.Load() {
		return false
	}
	if b.circuit != nil && b.circuit.State() == CircuitOpen {
		return false
	}
	return true
}

// Pool is the shared backend pool: selection policy plus health/circuit
// bookkeeping. Workers call Pick/Observe concurrently.
type Pool struct {
	backends []*Backend
	policy   string
	now      func() int64

	// mu guards the weighted policy's smooth-RR state.
	mu sync.Mutex
	rr atomic.Uint32

	// onTransition observes backend health flips (telemetry/trace wiring;
	// nil = off). reason is "active" or "passive".
	onTransition func(b *Backend, healthy bool, reason string)

	// tel, when set, receives per-backend and circuit-rejection counts.
	tel *Instruments

	passiveThreshold int
}

// newPool builds the pool from validated config.
func newPool(cfg Config, now func() int64) *Pool {
	p := &Pool{
		policy:           cfg.Policy,
		now:              now,
		passiveThreshold: cfg.HealthCheck.PassiveThreshold,
	}
	for i, bc := range cfg.Backends {
		w := bc.Weight
		if w < 1 {
			w = 1
		}
		b := &Backend{idx: i, addr: bc.Address, weight: w}
		// Backends start healthy: the first probe round or passive failures
		// demote them, so a cold start never black-holes traffic.
		b.healthy.Store(true)
		b.downReason.Store("")
		if cfg.CircuitBreaker.Enabled {
			b.circuit = NewCircuit(cfg.CircuitBreaker, now)
		}
		p.backends = append(p.backends, b)
	}
	return p
}

// Backends returns the pool members (fixed after construction).
func (p *Pool) Backends() []*Backend { return p.backends }

// AvailableCount returns how many backends are currently pickable.
func (p *Pool) AvailableCount() int {
	n := 0
	for _, b := range p.backends {
		if b.available() {
			n++
		}
	}
	return n
}

// Pick selects a backend under the configured policy, skipping members whose
// index bit is set in tried (the retry path's exclusion mask) and members
// that are unhealthy or circuit-rejected. A half-open circuit admits the
// pick as a trial request. Returns nil when nothing is available.
func (p *Pool) Pick(tried uint64) *Backend {
	switch p.policy {
	case PolicyLeastConn:
		return p.pickLeastConn(tried)
	case PolicyWeighted:
		return p.pickWeighted(tried)
	default:
		return p.pickRoundRobin(tried)
	}
}

// admit finalizes a candidate: the circuit must allow the request — open
// circuits reject (counted), half-open circuits must grant a trial slot.
func (p *Pool) admit(b *Backend) bool {
	if b.circuit == nil {
		return true
	}
	if b.circuit.Allow() {
		return true
	}
	if p.tel != nil {
		p.tel.CircuitRejections.Inc()
	}
	return false
}

// eligible is the pre-admission filter shared by the pick paths: not yet
// tried this request, and healthy. Circuit state is judged by admit so
// rejections are counted and half-open trials consume a slot.
func (b *Backend) eligible(tried uint64) bool {
	return tried&(1<<uint(b.idx)) == 0 && b.healthy.Load()
}

func (p *Pool) pickRoundRobin(tried uint64) *Backend {
	n := len(p.backends)
	start := int(p.rr.Add(1)-1) % n
	for i := 0; i < n; i++ {
		b := p.backends[(start+i)%n]
		if !b.eligible(tried) {
			continue
		}
		if p.admit(b) {
			return b
		}
	}
	return nil
}

// pickWeighted runs smooth weighted round-robin (the nginx algorithm): each
// eligible backend gains its weight, the leader is picked and pays the total
// back, interleaving picks proportionally to weight without bursts.
func (p *Pool) pickWeighted(tried uint64) *Backend {
	p.mu.Lock()
	var (
		best  *Backend
		total int
	)
	for _, b := range p.backends {
		if !b.eligible(tried) {
			continue
		}
		b.smoothCurrent += b.weight
		total += b.weight
		if best == nil || b.smoothCurrent > best.smoothCurrent {
			best = b
		}
	}
	if best != nil {
		best.smoothCurrent -= total
	}
	p.mu.Unlock()
	if best == nil {
		return nil
	}
	if p.admit(best) {
		return best
	}
	// The leader's circuit declined (open, or half-open with no free trial
	// slot): fall back to any other admissible backend this round.
	return p.pickRoundRobin(tried | 1<<uint(best.idx))
}

// pickLeastConn picks the backend with the fewest in-flight requests per
// unit weight (ties broken by index for determinism).
func (p *Pool) pickLeastConn(tried uint64) *Backend {
	var (
		best      *Backend
		bestScore float64
	)
	for _, b := range p.backends {
		if !b.eligible(tried) {
			continue
		}
		score := float64(b.active.Load()) / float64(b.weight)
		if best == nil || score < bestScore {
			best, bestScore = b, score
		}
	}
	if best == nil {
		return nil
	}
	if p.admit(best) {
		return best
	}
	return p.pickLeastConn(tried | 1<<uint(best.idx))
}

// Observe records one proxied request's outcome against b: circuit
// accounting, passive health checking, and per-backend counters. Callers
// must have obtained b from Pick (so half-open trial slots balance).
func (p *Pool) Observe(b *Backend, ok bool) {
	if ok {
		b.requests.Add(1)
		if p.tel != nil {
			p.tel.BackendRequests.At(b.idx).Inc()
		}
		b.passiveFails.Store(0)
		if b.circuit != nil {
			b.circuit.Success()
		}
		// A working backend with no active prober recovers on first success
		// (passive-only deployments would otherwise stay down forever).
		if !b.healthy.Load() && b.downReason.Load() == "passive" && p.passiveThreshold > 0 {
			p.setHealthy(b, true, "passive")
		}
		return
	}
	b.errors.Add(1)
	if p.tel != nil {
		p.tel.BackendErrors.At(b.idx).Inc()
	}
	if b.circuit != nil {
		b.circuit.Failure()
	}
	if p.passiveThreshold > 0 {
		if fails := b.passiveFails.Add(1); int(fails) >= p.passiveThreshold && b.healthy.Load() {
			p.setHealthy(b, false, "passive")
		}
	}
}

// setHealthy flips b's health state and notifies the wiring. reason is
// "active" (probe verdict) or "passive" (request-path verdict).
func (p *Pool) setHealthy(b *Backend, healthy bool, reason string) {
	if b.healthy.Swap(healthy) == healthy {
		return
	}
	if healthy {
		b.downReason.Store("")
		b.passiveFails.Store(0)
	} else {
		b.downReason.Store(reason)
	}
	b.lastChangeNS.Store(p.now())
	if b.healthyGauge != nil {
		if healthy {
			b.healthyGauge(1)
		} else {
			b.healthyGauge(0)
		}
	}
	if p.onTransition != nil {
		p.onTransition(b, healthy, reason)
	}
}
