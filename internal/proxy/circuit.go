package proxy

import "sync"

// CircuitState is one breaker's position.
type CircuitState int32

// Circuit states. The int values are the wire codes exported in
// backend_state trace spans and the admin API.
const (
	// CircuitClosed: requests flow; consecutive failures are counted.
	CircuitClosed CircuitState = iota
	// CircuitOpen: requests are rejected until Timeout elapses.
	CircuitOpen
	// CircuitHalfOpen: a bounded number of trial requests probe the backend;
	// enough successes close the circuit, any failure reopens it.
	CircuitHalfOpen
)

func (s CircuitState) String() string {
	switch s {
	case CircuitClosed:
		return "closed"
	case CircuitOpen:
		return "open"
	case CircuitHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Circuit is one backend's breaker. All transitions run under a mutex — the
// breaker is consulted per proxied request, not per packet, so contention is
// negligible and the state machine stays readable.
type Circuit struct {
	cfg CircuitBreakerConfig
	now func() int64 // nanosecond clock, injectable for tests

	mu         sync.Mutex
	state      CircuitState
	fails      int   // consecutive failures while closed
	successes  int   // consecutive trial successes while half-open
	inflight   int   // admitted trial requests while half-open
	openedAtNS int64 // when the circuit last opened

	// Transition counters (admin API / telemetry).
	opens, halfOpens, closes uint64

	// onTransition, when set, observes every state change (telemetry and
	// trace wiring). Called outside the lock.
	onTransition func(from, to CircuitState)
}

// NewCircuit creates a breaker; now supplies nanosecond timestamps.
func NewCircuit(cfg CircuitBreakerConfig, now func() int64) *Circuit {
	return &Circuit{cfg: cfg, now: now}
}

// transition must be called with mu held; it returns the callback to invoke
// after unlocking.
func (c *Circuit) transition(to CircuitState) func() {
	from := c.state
	if from == to {
		return nil
	}
	c.state = to
	switch to {
	case CircuitOpen:
		c.opens++
		c.openedAtNS = c.now()
	case CircuitHalfOpen:
		c.halfOpens++
		c.successes = 0
		c.inflight = 0
	case CircuitClosed:
		c.closes++
		c.fails = 0
	}
	if cb := c.onTransition; cb != nil {
		return func() { cb(from, to) }
	}
	return nil
}

// Allow reports whether a request may proceed, admitting it as a half-open
// trial when the breaker is probing. Every Allow()=true must be paired with
// exactly one Success or Failure.
func (c *Circuit) Allow() bool {
	c.mu.Lock()
	var fire func()
	switch c.state {
	case CircuitOpen:
		if c.now()-c.openedAtNS < int64(c.cfg.Timeout) {
			c.mu.Unlock()
			return false
		}
		fire = c.transition(CircuitHalfOpen)
		fallthrough
	case CircuitHalfOpen:
		// Bound concurrent trials by the success threshold: enough probes to
		// close the circuit, never a thundering herd onto a sick backend.
		if c.inflight >= c.cfg.SuccessThreshold {
			c.mu.Unlock()
			if fire != nil {
				fire()
			}
			return false
		}
		c.inflight++
	}
	c.mu.Unlock()
	if fire != nil {
		fire()
	}
	return true
}

// Success records a request that completed against the backend.
func (c *Circuit) Success() {
	c.mu.Lock()
	var fire func()
	switch c.state {
	case CircuitClosed:
		c.fails = 0
	case CircuitHalfOpen:
		c.inflight--
		c.successes++
		if c.successes >= c.cfg.SuccessThreshold {
			fire = c.transition(CircuitClosed)
		}
	}
	c.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// Failure records a request that failed against the backend.
func (c *Circuit) Failure() {
	c.mu.Lock()
	var fire func()
	switch c.state {
	case CircuitClosed:
		c.fails++
		if c.fails >= c.cfg.FailureThreshold {
			fire = c.transition(CircuitOpen)
		}
	case CircuitHalfOpen:
		c.inflight--
		fire = c.transition(CircuitOpen)
	}
	c.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// State returns the current position, applying the open→half-open timeout
// lazily so observers see "half-open" once the probe window has arrived even
// before the next request does.
func (c *Circuit) State() CircuitState {
	c.mu.Lock()
	s := c.state
	if s == CircuitOpen && c.now()-c.openedAtNS >= int64(c.cfg.Timeout) {
		s = CircuitHalfOpen
	}
	c.mu.Unlock()
	return s
}

// CircuitSnapshot is the admin-API view of one breaker.
type CircuitSnapshot struct {
	State     CircuitState
	Fails     int
	Opens     uint64
	HalfOpens uint64
	Closes    uint64
	// OpenForNS is how long the circuit has been away from closed
	// (0 when closed).
	OpenForNS int64
}

// Snapshot captures the breaker for the admin API.
func (c *Circuit) Snapshot() CircuitSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CircuitSnapshot{
		State: c.state, Fails: c.fails,
		Opens: c.opens, HalfOpens: c.halfOpens, Closes: c.closes,
	}
	if c.state == CircuitOpen && c.now()-c.openedAtNS >= int64(c.cfg.Timeout) {
		s.State = CircuitHalfOpen
	}
	if c.state != CircuitClosed {
		s.OpenForNS = c.now() - c.openedAtNS
	}
	return s
}
