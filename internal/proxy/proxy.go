package proxy

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/core"
	"hermes/internal/faults"
	"hermes/internal/httpx"
	"hermes/internal/telemetry"
	"hermes/internal/tracing"
)

// Option configures New (mirrors core.New's option style).
type Option func(*options)

type options struct {
	reg    *telemetry.Registry
	tracer *tracing.Tracer
	sched  faults.Schedule
}

// WithTelemetry registers the proxy's instruments on an existing registry
// instead of a private one (embedding, tests).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(o *options) { o.reg = reg }
}

// WithTracer arms the per-connection flight recorder (a concurrent tracer;
// see docs/TRACING.md).
func WithTracer(tr *tracing.Tracer) Option {
	return func(o *options) { o.tracer = tr }
}

// WithFaults arms a wall-clock translation of a sim fault schedule on the
// real proxy (docs/FAULTS.md grammar, times relative to New).
func WithFaults(sched faults.Schedule) Option {
	return func(o *options) { o.sched = sched }
}

// Proxy is the running reverse proxy: one acceptor steering from the Hermes
// selection bitmap, N workers, a health-checked backend pool, and an admin
// API (AdminHandler).
type Proxy struct {
	cfg     Config
	ln      net.Listener
	ctl     *core.Controller
	pool    *Pool
	workers []*worker
	checker *checker // nil when active checks are disabled

	// drainHook runs the drain's schedule pass. Worker hooks are
	// single-owner scratch space, so the shutdown goroutine must not borrow
	// one from a live worker; this instance shares only the controller's
	// concurrent-safe state.
	drainHook *core.WorkerHook

	reg *telemetry.Registry
	tel Instruments
	// win samples the registry on a wall-clock tick for windowed rates and
	// quantiles; slo rides its ticks. stopSampler halts the sampler on drain.
	win         *telemetry.Windows
	slo         *telemetry.SLO
	stopSampler func()

	tracer *tracing.Tracer
	ktr    *tracing.KernelTrace
	ptr    *tracing.ProxyTrace

	connSeq atomic.Uint64
	hashSeq atomic.Uint32

	startNS int64

	// Served counts proxied requests; Errors upstream failures (after
	// retries); Unavailable 503s with no pickable backend.
	Served      atomic.Uint64
	Errors      atomic.Uint64
	Unavailable atomic.Uint64

	// Connection tracking for graceful drain.
	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining atomic.Bool
	wg       sync.WaitGroup // worker goroutines
	shutOnce sync.Once
	shutErr  error
}

// tracedConn carries a queued connection plus the identity the flight
// recorder spans it under (id 0 when tracing is off).
type tracedConn struct {
	c     net.Conn
	id    uint64
	estNS int64 // steering time: the accept-queue span starts here
}

// worker is one proxy worker: a goroutine draining its connection queue,
// publishing Hermes metrics through its hook.
type worker struct {
	id      int
	p       *Proxy
	hook    *core.WorkerHook
	queue   chan tracedConn
	tr      *tracing.WorkerTrace
	buf     []byte
	prevQ   int // last queue depth folded into the busy metric
	handled *telemetry.Counter
	// Handled counts requests this worker proxied.
	Handled atomic.Uint64
	// delay injects extra latency per request (demo poisoning, slow fault).
	delay atomic.Int64
	// hangUntilNS, while in the future, stalls the worker at its next loop
	// iteration without touching the WST — the loop-enter timestamp goes
	// stale exactly as a real hang's would (injected fault).
	hangUntilNS atomic.Int64
}

// New builds and starts the proxy: listener bound, workers running, health
// checker probing, fault schedule armed. The caller owns shutdown
// (Shutdown/Close) and the admin HTTP server (AdminHandler).
func New(cfg Config, opts ...Option) (*Proxy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	reg := o.reg
	if reg == nil {
		reg = telemetry.NewRegistry()
	}

	inst, err := core.New(cfg.Workers, core.DefaultConfig(), core.WithInstruments(core.Instruments{
		Recomputes: reg.Counter(telemetry.Metric{Name: "core.schedule.recomputes", Layer: "core", Unit: "passes"}),
		Syncs:      reg.Counter(telemetry.Metric{Name: "core.schedule.syncs", Layer: "core", Unit: "syscalls"}),
		WSTReads:   reg.Counter(telemetry.Metric{Name: "core.schedule.wst_reads", Layer: "core", Unit: "rows"}),
		EmptySets:  reg.Counter(telemetry.Metric{Name: "core.schedule.empty_sets", Layer: "core", Unit: "passes"}),
		Passed:     reg.Histogram(telemetry.Metric{Name: "core.schedule.passed", Layer: "core", Unit: "workers"}, telemetry.CountBuckets(64)),
	}))
	if err != nil {
		return nil, err
	}
	ctl, ok := inst.(*core.Controller)
	if !ok {
		return nil, fmt.Errorf("proxy: worker count %d needs the grouped deployment; cap at %d", cfg.Workers, MaxWorkers)
	}

	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}

	p := &Proxy{
		cfg:     cfg,
		ln:      ln,
		ctl:     ctl,
		reg:     reg,
		tracer:  o.tracer,
		ktr:     o.tracer.KernelTrace(),
		ptr:     o.tracer.ProxyTrace(),
		startNS: time.Now().UnixNano(),
		conns:   make(map[net.Conn]struct{}),
	}
	p.tel = newInstruments(reg, cfg.Workers, len(cfg.Backends))

	// The windowed layer samples off the hot path: instruments record
	// normally; the sampler snapshots the registry once per tick.
	if p.win, err = telemetry.NewWindows(reg, cfg.windowConfig()); err != nil {
		ln.Close()
		return nil, err
	}
	if cfg.SLO.Enabled {
		sloCfg, err := cfg.sloConfig()
		if err != nil {
			ln.Close()
			return nil, err
		}
		if p.slo, err = telemetry.NewSLO(sloCfg, p.win, reg); err != nil {
			ln.Close()
			return nil, err
		}
	}
	p.stopSampler = p.win.Start()

	p.pool = newPool(cfg, func() int64 { return time.Now().UnixNano() })
	p.wireBackends()
	p.drainHook = ctl.NewWorkerHook(0)

	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			id: i, p: p, hook: ctl.NewWorkerHook(i),
			queue:   make(chan tracedConn, 512),
			tr:      o.tracer.WorkerTrace(i),
			buf:     make([]byte, 64<<10),
			handled: p.tel.RequestsServed.At(i),
		}
		w.hook.LoopEnter(time.Now().UnixNano())
		p.workers = append(p.workers, w)
		p.wg.Add(1)
		go w.run()
	}
	p.drainHook.ScheduleAndSync(time.Now().UnixNano())

	if cfg.HealthCheck.Enabled {
		p.checker = newChecker(cfg.HealthCheck, p.pool, &p.tel, proxyTraceHook{p.ptr})
		go p.checker.run()
	}
	p.applyFaults(o.sched)
	go p.acceptLoop()
	return p, nil
}

// proxyTraceHook adapts *tracing.ProxyTrace to the checker's traceHook.
type proxyTraceHook struct{ tr *tracing.ProxyTrace }

func (h proxyTraceHook) probe(backend int, startNS, endNS int64, ok bool) {
	h.tr.Probe(backend, startNS, endNS, ok)
}

// wireBackends connects pool transitions and circuit transitions to
// telemetry and tracing, and initializes the healthy gauges.
func (p *Proxy) wireBackends() {
	for _, b := range p.pool.backends {
		b := b
		gauge := p.tel.BackendHealthy.At(b.idx)
		gauge.Set(1)
		b.healthyGauge = func(v int64) { gauge.Set(v) }
		if b.circuit != nil {
			b.circuit.onTransition = func(from, to CircuitState) {
				switch to {
				case CircuitOpen:
					p.tel.CircuitOpens.Inc()
				case CircuitHalfOpen:
					p.tel.CircuitHalfOpens.Inc()
				case CircuitClosed:
					p.tel.CircuitCloses.Inc()
				}
				p.ptr.BackendState(b.idx, time.Now().UnixNano(), stateCircuit+int64(to))
			}
		}
	}
	p.pool.tel = &p.tel
	p.pool.onTransition = func(b *Backend, healthy bool, reason string) {
		p.tel.HealthTransitions.Inc()
		state := stateUnhealthy
		if healthy {
			state = stateHealthy
		}
		p.ptr.BackendState(b.idx, time.Now().UnixNano(), state)
	}
}

// Addr returns the client-facing listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Controller exposes the Hermes controller (policy API, stats).
func (p *Proxy) Controller() *core.Controller { return p.ctl }

// Pool exposes the backend pool (admin API, tests).
func (p *Proxy) Pool() *Pool { return p.pool }

// Registry exposes the telemetry registry (stats reporting).
func (p *Proxy) Registry() *telemetry.Registry { return p.reg }

// Windows exposes the windowed time-series layer (admin API, -stats-every).
func (p *Proxy) Windows() *telemetry.Windows { return p.win }

// SLO exposes the burn-rate monitor, nil when disabled.
func (p *Proxy) SLO() *telemetry.SLO { return p.slo }

// Config returns the validated configuration the proxy runs.
func (p *Proxy) Config() Config { return p.cfg }

// Workers returns the worker count.
func (p *Proxy) Workers() int { return len(p.workers) }

// WorkerHandled returns how many requests worker id has proxied.
func (p *Proxy) WorkerHandled(id int) uint64 { return p.workers[id].Handled.Load() }

// SetWorkerDelay injects per-request latency on one worker (demo poisoning).
func (p *Proxy) SetWorkerDelay(id int, d time.Duration) {
	p.workers[id].delay.Store(int64(d))
}

// track registers a live client connection for drain accounting.
func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// acceptLoop is the kernel-dispatch stand-in: scaled-hash selection over the
// live bitmap, hash fallback below MinWorkers (Algorithm 2).
func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			for _, w := range p.workers {
				close(w.queue)
			}
			return
		}
		bitmap, _ := p.ctl.SelMap().Lookup(0)
		h := p.hashSeq.Add(2654435761)
		via := tracing.ViaProg
		wi, ok := core.NativeSelect(bitmap, h, p.ctl.Config().MinWorkers)
		if !ok {
			via = tracing.ViaFallback
			wi = int(h) % len(p.workers)
			if wi < 0 {
				wi = -wi
			}
		}
		p.track(conn)
		tc := tracedConn{c: conn, id: p.connSeq.Add(1), estNS: time.Now().UnixNano()}
		p.ktr.ConnEstablished(tc.id, tc.estNS, int32(wi), via)
		p.workers[wi].queue <- tc
	}
}

// maybeHang blocks until the injected hang deadline passes (no-op when none
// is set). Called before LoopEnter so the stall is visible to the scheduler
// as staleness, the paper's FilterTime signal.
func (w *worker) maybeHang() {
	for {
		d := w.hangUntilNS.Load() - time.Now().UnixNano()
		if d <= 0 {
			return
		}
		time.Sleep(time.Duration(d))
	}
}

func (w *worker) run() {
	defer w.p.wg.Done()
	for tc := range w.queue {
		w.maybeHang()
		now := time.Now().UnixNano()
		w.hook.LoopEnter(now)
		// Fold the channel backlog into the pending-event metric: queued
		// connections are this worker's kernel-side accept queue.
		q := len(w.queue) + 1
		w.hook.EventsFetched(q - w.prevQ)
		w.prevQ = q - 1
		w.hook.ConnOpened()
		w.tr.Accept(tc.id, tc.estNS, now)
		w.serve(tc)
		w.tr.Close(tc.id, time.Now().UnixNano(), false)
		w.hook.ConnClosed()
		w.hook.EventHandled()
		w.hook.ScheduleAndSync(time.Now().UnixNano())
	}
}

// bufLimit bounds the per-connection request buffer: the header section cap
// plus the configured body cap.
func (p *Proxy) bufLimit() int {
	return httpx.MaxHeaderBytes + p.cfg.Buffer.MaxRequestBody
}

func (w *worker) serve(tc tracedConn) {
	p := w.p
	conn := tc.c
	defer func() {
		p.untrack(conn)
		conn.Close()
	}()
	buf := w.buf
	pending := 0
	for {
		_ = conn.SetReadDeadline(time.Now().Add(p.cfg.ClientIdleTimeout))
		if pending == len(buf) {
			// Request larger than the buffer: grow up to the configured
			// bound, then refuse — bounded buffering, not an OOM vector.
			if len(buf) >= p.bufLimit() {
				w.reply(conn, &httpx.Response{Status: 413, Body: []byte("request exceeds buffer limit")})
				return
			}
			next := len(buf) * 2
			if next > p.bufLimit() {
				next = p.bufLimit()
			}
			grown := make([]byte, next)
			copy(grown, buf[:pending])
			buf, w.buf = grown, grown
		}
		n, err := conn.Read(buf[pending:])
		if err != nil {
			// Idle keep-alive connections end here: EOF, a drain nudge, or
			// the idle deadline. Partial requests are abandoned with the
			// connection.
			return
		}
		arrivalNS := time.Now().UnixNano()
		pending += n
		for {
			req, consumed, perr := httpx.ParseRequest(buf[:pending])
			if perr == httpx.ErrIncomplete {
				break
			}
			if perr != nil {
				w.reply(conn, &httpx.Response{Status: 400})
				return
			}
			if p.cfg.Buffer.MaxRequestBody > 0 && len(req.Body) > p.cfg.Buffer.MaxRequestBody {
				w.reply(conn, &httpx.Response{Status: 413, Body: []byte("request body exceeds limit")})
				return
			}
			copy(buf, buf[consumed:pending])
			pending -= consumed

			w.hook.EventsFetched(1)
			if d := w.delay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			start := time.Now()
			resp := w.forward(req)
			w.hook.EventHandled()
			w.Handled.Add(1)
			w.handled.Inc()
			p.tel.RequestLatencyNS.Observe(time.Since(start).Nanoseconds())
			w.tr.Serve(tc.id, arrivalNS, start.UnixNano(), time.Now().UnixNano(), false)
			if _, err := conn.Write(resp.Append(nil)); err != nil {
				return
			}
			if !req.WantsKeepAlive() || p.draining.Load() {
				return
			}
		}
		if p.draining.Load() && pending == 0 {
			// Drain: the in-flight request (if any) was just answered; stop
			// holding the keep-alive connection open.
			return
		}
		w.hook.LoopEnter(time.Now().UnixNano())
		w.hook.ScheduleAndSync(time.Now().UnixNano())
	}
}

func isIdempotent(method string) bool {
	switch method {
	case "GET", "HEAD", "OPTIONS", "TRACE", "PUT", "DELETE":
		// The RFC 9110 idempotent set: safe to replay against a second
		// backend when the first attempt failed.
		return true
	}
	return false
}

// forward proxies one request: pick a backend under the policy (health and
// circuit state included), retry idempotent requests against other backends
// on failure, and surface 502/503 when everything is down. Retry attempts
// publish extra busy units to the WST — a worker grinding on failed backends
// sheds new connections through the same Algorithm-1 path that balances
// load, making backend availability part of the steering decision.
func (w *worker) forward(req *httpx.Request) *httpx.Response {
	p := w.p
	attempts := 1
	if isIdempotent(req.Method) {
		attempts += p.cfg.Buffer.Retries
	}
	var (
		tried   uint64
		lastErr error
	)
	for attempt := 0; attempt < attempts; attempt++ {
		b := p.pool.Pick(tried)
		if b == nil {
			if attempt == 0 {
				p.Unavailable.Add(1)
				p.tel.Unavailable.Inc()
				return &httpx.Response{Status: 503, Body: []byte("no backend available")}
			}
			break // pool exhausted mid-retry
		}
		tried |= 1 << uint(b.idx)
		if attempt > 0 {
			p.tel.RetryAttempts.Inc()
			w.hook.EventsFetched(1) // retry pressure → WST busy → Algorithm 1
		}
		resp, err := w.roundTrip(b, req)
		if attempt > 0 {
			w.hook.EventHandled()
		}
		p.pool.Observe(b, err == nil)
		if err == nil {
			if attempt > 0 {
				p.tel.RetryRecovered.Inc()
			}
			p.Served.Add(1)
			return resp
		}
		lastErr = err
	}
	if attempts > 1 {
		p.tel.RetryExhausted.Inc()
	}
	p.Errors.Add(1)
	p.tel.UpstreamErrors.Inc()
	return &httpx.Response{Status: 502, Body: []byte(lastErr.Error())}
}

// roundTrip performs one upstream exchange against b.
func (w *worker) roundTrip(b *Backend, req *httpx.Request) (*httpx.Response, error) {
	p := w.p
	b.active.Add(1)
	p.tel.BackendActive.At(b.idx).Add(1)
	defer func() {
		b.active.Add(-1)
		p.tel.BackendActive.At(b.idx).Add(-1)
	}()

	up, err := net.DialTimeout("tcp", b.addr, p.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	defer up.Close()

	fwd := *req
	fwd.Headers = append(append([]httpx.Header(nil), req.Headers...),
		httpx.Header{Name: "X-Forwarded-By", Value: fmt.Sprintf("hermes-lb/w%d", w.id)},
		httpx.Header{Name: "Connection", Value: "close"},
	)
	if _, err := up.Write(fwd.Append(nil)); err != nil {
		return nil, err
	}
	_ = up.SetReadDeadline(time.Now().Add(p.cfg.ResponseTimeout))
	data, err := io.ReadAll(up)
	if err != nil && len(data) == 0 {
		return nil, err
	}
	resp, _, perr := httpx.ParseResponse(data)
	if perr != nil {
		return nil, perr
	}
	return resp, nil
}

func (w *worker) reply(conn net.Conn, resp *httpx.Response) {
	_, _ = conn.Write(resp.Append(nil))
}

// Shutdown drains gracefully: veto every worker in the selection map, stop
// accepting, nudge idle keep-alive connections closed, and wait for
// in-flight requests up to the drain deadline — then force-close whatever
// remains. Returns nil on a clean drain, an error naming the forced-close
// count otherwise. Safe to call once; Close is Shutdown with a zero
// deadline.
func (p *Proxy) Shutdown(timeout time.Duration) error {
	p.shutOnce.Do(func() { p.shutErr = p.shutdown(timeout) })
	return p.shutErr
}

// Close force-closes everything immediately (tests, demo teardown).
func (p *Proxy) Close() { _ = p.Shutdown(0) }

func (p *Proxy) shutdown(timeout time.Duration) error {
	p.draining.Store(true)
	// Health/circuit state and drains share one eviction path: veto the
	// workers in the selection map so the published bitmap goes empty
	// before the listener closes (observable via /status).
	for i := range p.workers {
		_ = p.ctl.SetWorkerAvailable(i, false)
	}
	p.drainHook.ScheduleAndSync(time.Now().UnixNano())
	p.ln.Close()
	if p.checker != nil {
		p.checker.Stop()
	}
	if p.stopSampler != nil {
		p.stopSampler()
	}

	// Wake idle keep-alive readers so they observe the drain.
	p.mu.Lock()
	for c := range p.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	} else {
		expired := make(chan time.Time)
		close(expired)
		timer = expired
	}
	select {
	case <-done:
		return nil
	case <-timer:
	}

	// Deadline exceeded: force-close surviving connections. Workers then
	// finish their bounded upstream exchanges and exit; the second wait is
	// bounded by the dial/response timeouts.
	p.mu.Lock()
	forced := len(p.conns)
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.tel.DrainForcedCloses.Add(uint64(forced))
	<-done
	if forced > 0 {
		return fmt.Errorf("proxy: drain deadline exceeded, %d connection(s) force-closed", forced)
	}
	return nil
}

// applyFaults arms a wall-clock translation of the sim fault schedule on the
// real proxy: hangs and slowdowns map directly; a crash is approximated as a
// stall until its restart delay (goroutines cannot be SIGKILLed); queue,
// selmap, and probe faults have no real-socket analogue here and are skipped
// with a note.
func (p *Proxy) applyFaults(sched faults.Schedule) {
	for _, ev := range sched.Events {
		ev := ev
		time.AfterFunc(time.Duration(ev.AtNS), func() {
			w := p.victim(ev.Worker)
			switch ev.Kind {
			case faults.Hang:
				w.hangUntilNS.Store(time.Now().UnixNano() + ev.DurNS)
				fmt.Printf("faults: hang w%d for %s\n", w.id, time.Duration(ev.DurNS))
			case faults.Crash:
				dur := ev.RestartNS
				if dur == 0 {
					dur = int64(time.Hour)
				}
				w.hangUntilNS.Store(time.Now().UnixNano() + dur)
				fmt.Printf("faults: crash w%d (stall until restart %s)\n", w.id, time.Duration(dur))
			case faults.Slow:
				// Poison per-request latency instead of scaling CPU: the
				// proxy's cost is dominated by the upstream round trip.
				const base = 5 * time.Millisecond
				w.delay.Store(int64(float64(base) * (ev.Factor - 1)))
				fmt.Printf("faults: slow w%d x%g for %s\n", w.id, ev.Factor, time.Duration(ev.DurNS))
				if ev.DurNS > 0 {
					time.AfterFunc(time.Duration(ev.DurNS), func() { w.delay.Store(0) })
				}
			default:
				fmt.Printf("faults: %s has no real-socket analogue, skipped\n", ev.Kind)
			}
		})
	}
}

// victim resolves a fault's target: a pinned worker id, else the busiest
// worker (deepest queue, then most requests handled) at fire time.
func (p *Proxy) victim(id int) *worker {
	if id >= 0 && id < len(p.workers) {
		return p.workers[id]
	}
	best := p.workers[0]
	for _, w := range p.workers[1:] {
		if len(w.queue) > len(best.queue) ||
			(len(w.queue) == len(best.queue) && w.Handled.Load() > best.Handled.Load()) {
			best = w
		}
	}
	return best
}
