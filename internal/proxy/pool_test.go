package proxy

import (
	"fmt"
	"testing"
)

func testPoolConfig(policy string, weights ...int) Config {
	c := DefaultConfig()
	c.Policy = policy
	c.HealthCheck.Enabled = false
	c.Backends = nil
	for i, w := range weights {
		c.Backends = append(c.Backends, BackendConfig{
			Address: backendAddr(i), Weight: w,
		})
	}
	return c
}

func backendAddr(i int) string {
	return fmt.Sprintf("127.0.0.1:%d", 9001+i) // unique, never dialed
}

func countPicks(p *Pool, n int) map[int]int {
	got := make(map[int]int)
	for i := 0; i < n; i++ {
		b := p.Pick(0)
		if b == nil {
			break
		}
		got[b.idx]++
	}
	return got
}

func TestPoolRoundRobinCycles(t *testing.T) {
	p := newPool(testPoolConfig(PolicyRoundRobin, 1, 1, 1), func() int64 { return 0 })
	got := countPicks(p, 9)
	for i := 0; i < 3; i++ {
		if got[i] != 3 {
			t.Errorf("backend %d picked %d times, want 3 (%v)", i, got[i], got)
		}
	}
}

// Smooth weighted round-robin distributes picks proportionally to weight.
func TestPoolWeightedDistribution(t *testing.T) {
	p := newPool(testPoolConfig(PolicyWeighted, 5, 2, 1), func() int64 { return 0 })
	got := countPicks(p, 80)
	if got[0] != 50 || got[1] != 20 || got[2] != 10 {
		t.Errorf("weighted picks = %v, want 50/20/10", got)
	}
}

func TestPoolLeastConnPrefersIdle(t *testing.T) {
	p := newPool(testPoolConfig(PolicyLeastConn, 1, 1), func() int64 { return 0 })
	p.backends[0].active.Store(5)
	for i := 0; i < 4; i++ {
		if b := p.Pick(0); b.idx != 1 {
			t.Fatalf("pick %d chose loaded backend %d", i, b.idx)
		}
	}
	// Weight scales the score: 10 in-flight at weight 10 beats 2 at weight 1.
	p = newPool(testPoolConfig(PolicyLeastConn, 10, 1), func() int64 { return 0 })
	p.backends[0].active.Store(10)
	p.backends[1].active.Store(2)
	if b := p.Pick(0); b.idx != 0 {
		t.Errorf("least-conn ignored weight: picked %d", b.idx)
	}
}

func TestPoolSkipsTriedAndUnhealthy(t *testing.T) {
	for _, policy := range []string{PolicyRoundRobin, PolicyWeighted, PolicyLeastConn} {
		p := newPool(testPoolConfig(policy, 1, 1, 1), func() int64 { return 0 })
		p.setHealthy(p.backends[1], false, "active")
		for i := 0; i < 6; i++ {
			b := p.Pick(1 << 0) // exclude 0 as already-tried
			if b == nil || b.idx != 2 {
				t.Fatalf("%s: pick = %v, want backend 2 (0 tried, 1 unhealthy)", policy, b)
			}
			p.Observe(b, true)
		}
		if b := p.Pick(1<<0 | 1<<2); b != nil {
			t.Errorf("%s: picked %d with everything excluded", policy, b.idx)
		}
	}
}

// An open circuit rejects picks (counted) and traffic flows to the others; a
// dead pool returns nil.
func TestPoolCircuitGatesPick(t *testing.T) {
	cfg := testPoolConfig(PolicyRoundRobin, 1, 1)
	cfg.HealthCheck.PassiveThreshold = 0 // isolate the breaker from passive health
	clk := &fakeClock{}
	p := newPool(cfg, clk.now)
	// Trip backend 0's breaker.
	b0 := p.backends[0]
	for i := 0; i < cfg.CircuitBreaker.FailureThreshold; i++ {
		p.Observe(b0, false)
	}
	if b0.circuit.State() != CircuitOpen {
		t.Fatalf("circuit = %v after %d failures", b0.circuit.State(), cfg.CircuitBreaker.FailureThreshold)
	}
	for i := 0; i < 4; i++ {
		if b := p.Pick(0); b == nil || b.idx != 1 {
			t.Fatalf("pick = %v, want backend 1 while 0's circuit is open", b)
		}
	}
	if p.AvailableCount() != 1 {
		t.Errorf("AvailableCount = %d, want 1", p.AvailableCount())
	}
	// Past the timeout the breaker admits trials again.
	clk.advance(int64(cfg.CircuitBreaker.Timeout))
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		if b := p.Pick(0); b != nil {
			seen[b.idx] = true
			p.Observe(b, true)
		}
	}
	if !seen[0] {
		t.Error("half-open backend 0 never got a trial pick")
	}
	if b0.circuit.State() != CircuitClosed {
		t.Errorf("circuit = %v after successful trials", b0.circuit.State())
	}
}

// Passive checks: consecutive upstream errors mark a backend unhealthy, and
// (with no active prober) the first success restores it.
func TestPoolPassiveHealth(t *testing.T) {
	cfg := testPoolConfig(PolicyRoundRobin, 1, 1)
	cfg.CircuitBreaker.Enabled = false
	cfg.HealthCheck.PassiveThreshold = 3
	p := newPool(cfg, func() int64 { return 42 })
	var flips []bool
	p.onTransition = func(b *Backend, healthy bool, reason string) {
		if reason != "passive" {
			t.Errorf("transition reason = %q, want passive", reason)
		}
		flips = append(flips, healthy)
	}
	b0 := p.backends[0]
	for i := 0; i < 3; i++ {
		p.Observe(b0, false)
	}
	if b0.Healthy() {
		t.Fatal("backend still healthy after passive threshold")
	}
	if r, _ := b0.downReason.Load().(string); r != "passive" {
		t.Errorf("down reason = %q", r)
	}
	// Success observed (e.g. a retry landed here anyway): recovers.
	p.Observe(b0, true)
	if !b0.Healthy() {
		t.Fatal("backend did not recover on success")
	}
	if len(flips) != 2 || flips[0] || !flips[1] {
		t.Errorf("transitions = %v, want [false true]", flips)
	}
}
