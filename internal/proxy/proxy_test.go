package proxy

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hermes/internal/httpx"
	"hermes/internal/telemetry"
)

// stubUpstream is a controllable real-TCP backend for proxy tests.
type stubUpstream struct {
	t    *testing.T
	addr string
	ln   net.Listener
	mu   sync.Mutex

	hits  atomic.Uint64
	delay atomic.Int64 // per-request response delay
	hang  atomic.Bool  // accept + read, never respond
}

func newStubUpstream(t *testing.T) *stubUpstream {
	t.Helper()
	s := &stubUpstream{t: t}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.addr = ln.Addr().String()
	s.serveOn(ln)
	t.Cleanup(s.kill)
	return s
}

func (s *stubUpstream) serveOn(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go s.handle(c)
		}
	}()
}

func (s *stubUpstream) handle(c net.Conn) {
	defer c.Close()
	buf := make([]byte, 256<<10)
	pending := 0
	for {
		_ = c.SetReadDeadline(time.Now().Add(10 * time.Second))
		n, err := c.Read(buf[pending:])
		if err != nil {
			return
		}
		pending += n
		req, consumed, perr := httpx.ParseRequest(buf[:pending])
		if perr == httpx.ErrIncomplete {
			continue
		}
		if perr != nil {
			return
		}
		copy(buf, buf[consumed:pending])
		pending -= consumed
		s.hits.Add(1)
		if s.hang.Load() {
			time.Sleep(10 * time.Second)
			return
		}
		if d := s.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		resp := httpx.Response{Status: 200, Body: []byte("ok from " + s.addr)}
		if _, err := c.Write(resp.Append(nil)); err != nil {
			return
		}
		if !req.WantsKeepAlive() {
			return
		}
	}
}

// kill closes the listener: new dials are refused until restart.
func (s *stubUpstream) kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
		s.ln = nil
	}
}

// restart re-listens on the same address.
func (s *stubUpstream) restart() {
	s.t.Helper()
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		s.t.Fatal(err)
	}
	s.serveOn(ln)
}

// testConfig is a fast, deterministic baseline: health checks and circuit
// breaking off unless a test turns them on.
func testConfig(backends ...*stubUpstream) Config {
	cfg := DefaultConfig()
	cfg.Listen = "127.0.0.1:0"
	cfg.Workers = 2
	cfg.HealthCheck.Enabled = false
	cfg.HealthCheck.PassiveThreshold = 0
	cfg.CircuitBreaker.Enabled = false
	cfg.DialTimeout = time.Second
	cfg.ResponseTimeout = 2 * time.Second
	cfg.ClientIdleTimeout = time.Second
	cfg.Backends = nil
	for _, b := range backends {
		cfg.Backends = append(cfg.Backends, BackendConfig{Address: b.addr, Weight: 1})
	}
	return cfg
}

func startProxy(t *testing.T, cfg Config, opts ...Option) *Proxy {
	t.Helper()
	p, err := New(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// get issues one GET through addr and returns the parsed response.
func get(addr, path string, body []byte) (*httpx.Response, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	method := "GET"
	if len(body) > 0 {
		method = "POST"
	}
	req := httpx.Request{
		Method: method,
		Target: path,
		Headers: []httpx.Header{
			{Name: "Host", Value: "test"},
			{Name: "Connection", Value: "close"},
		},
		Body: body,
	}
	if len(body) > 0 {
		req.Headers = append(req.Headers, httpx.Header{Name: "Content-Length", Value: fmt.Sprint(len(body))})
	}
	if _, err := conn.Write(req.Append(nil)); err != nil {
		return nil, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	data, err := io.ReadAll(conn)
	if err != nil && len(data) == 0 {
		return nil, err
	}
	resp, _, perr := httpx.ParseResponse(data)
	return resp, perr
}

func TestProxyEndToEnd(t *testing.T) {
	b0, b1 := newStubUpstream(t), newStubUpstream(t)
	p := startProxy(t, testConfig(b0, b1))
	for i := 0; i < 20; i++ {
		resp, err := get(p.Addr(), fmt.Sprintf("/r/%d", i), nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Status != 200 {
			t.Fatalf("request %d: status %d", i, resp.Status)
		}
	}
	if got := p.Served.Load(); got != 20 {
		t.Errorf("served = %d, want 20", got)
	}
	if b0.hits.Load() == 0 || b1.hits.Load() == 0 {
		t.Errorf("round-robin left a backend cold: %d / %d", b0.hits.Load(), b1.hits.Load())
	}
}

// One dead backend: idempotent requests retry onto the live one — zero lost —
// and passive checks eventually evict the corpse.
func TestProxyRetryCoversDeadBackend(t *testing.T) {
	dead, live := newStubUpstream(t), newStubUpstream(t)
	dead.kill()
	cfg := testConfig(dead, live)
	cfg.Buffer.Retries = 2
	cfg.HealthCheck.PassiveThreshold = 3
	reg := telemetry.NewRegistry()
	p := startProxy(t, cfg, WithTelemetry(reg))
	for i := 0; i < 30; i++ {
		resp, err := get(p.Addr(), "/", nil)
		if err != nil || resp.Status != 200 {
			t.Fatalf("request %d lost: status=%v err=%v", i, resp, err)
		}
	}
	if n := reg.Snapshot().Get("proxy.retry.recovered").Value; n == 0 {
		t.Error("no retries recorded despite a dead backend")
	}
	if p.pool.backends[0].Healthy() {
		t.Error("passive checks never evicted the dead backend")
	}
	if p.Errors.Load() != 0 {
		t.Errorf("errors = %d, want 0 (every request should recover)", p.Errors.Load())
	}
}

// Everything down: 502 while failures accumulate, 503 once the pool knows.
func TestProxyAllBackendsDown(t *testing.T) {
	dead := newStubUpstream(t)
	dead.kill()
	cfg := testConfig(dead)
	cfg.HealthCheck.PassiveThreshold = 1
	p := startProxy(t, cfg)
	resp, err := get(p.Addr(), "/", nil)
	if err != nil || resp.Status != 502 {
		t.Fatalf("first request: status=%v err=%v, want 502", resp, err)
	}
	resp, err = get(p.Addr(), "/", nil)
	if err != nil || resp.Status != 503 {
		t.Fatalf("second request: status=%v err=%v, want 503 (pool evicted)", resp, err)
	}
	if p.Unavailable.Load() == 0 {
		t.Error("unavailable counter never moved")
	}
}

// Bounded buffering: a body over the cap is refused with 413, both when the
// request parses (explicit check) and when it exceeds the buffer entirely
// (the old fixed-buffer code span-looped forever on this).
func TestProxyOversizedRequest(t *testing.T) {
	b := newStubUpstream(t)
	cfg := testConfig(b)
	cfg.Buffer.MaxRequestBody = 1024
	p := startProxy(t, cfg)

	resp, err := get(p.Addr(), "/", make([]byte, 4096))
	if err != nil || resp.Status != 413 {
		t.Fatalf("4KB body: status=%v err=%v, want 413", resp, err)
	}
	resp, err = get(p.Addr(), "/", make([]byte, 128<<10))
	if err != nil || resp.Status != 413 {
		t.Fatalf("128KB body: status=%v err=%v, want 413", resp, err)
	}
	if resp, err := get(p.Addr(), "/", make([]byte, 512)); err != nil || resp.Status != 200 {
		t.Fatalf("512B body: status=%v err=%v, want 200", resp, err)
	}
}

func TestAdminEndpoints(t *testing.T) {
	b0, b1 := newStubUpstream(t), newStubUpstream(t)
	cfg := testConfig(b0, b1)
	cfg.CircuitBreaker.Enabled = true
	p := startProxy(t, cfg)
	for i := 0; i < 5; i++ {
		if _, err := get(p.Addr(), "/", nil); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(AdminHandler(p))
	defer srv.Close()

	read := func(path string, wantStatus int) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s: status %d, want %d", path, resp.StatusCode, wantStatus)
		}
		body, _ := io.ReadAll(resp.Body)
		return body
	}

	if body := read("/healthz", 200); !strings.Contains(string(body), `"status": "ok"`) {
		t.Errorf("/healthz = %s", body)
	}
	body := read("/backends", 200)
	if !strings.Contains(string(body), b0.addr) || !strings.Contains(string(body), b1.addr) {
		t.Errorf("/backends = %s", body)
	}
	if body := read("/stats", 200); !strings.Contains(string(body), `"served": 5`) {
		t.Errorf("/stats = %s", body)
	}
	if body := read("/circuits", 200); !strings.Contains(string(body), `"state": "closed"`) {
		t.Errorf("/circuits = %s", body)
	}
	// The Hermes policy API keeps its shape under the same mux.
	if body := read("/status", 200); !strings.Contains(string(body), `"selection"`) {
		t.Errorf("/status = %s", body)
	}
	read("/policy", 200)

	// Unhealthy pool flips healthz to 503.
	p.pool.setHealthy(p.pool.backends[0], false, "active")
	p.pool.setHealthy(p.pool.backends[1], false, "active")
	if body := read("/healthz", 503); !strings.Contains(string(body), `"status": "unavailable"`) {
		t.Errorf("/healthz all-down = %s", body)
	}
}

// Graceful shutdown regression: an in-flight request completes before the
// listener goes away (the old close() dropped it on the floor).
func TestShutdownDrainsInFlight(t *testing.T) {
	b := newStubUpstream(t)
	b.delay.Store(int64(300 * time.Millisecond))
	p, err := New(testConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		resp *httpx.Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := get(p.Addr(), "/slow", nil)
		done <- result{resp, err}
	}()
	time.Sleep(100 * time.Millisecond) // request is in flight
	if err := p.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	r := <-done
	if r.err != nil || r.resp.Status != 200 {
		t.Fatalf("in-flight request dropped: status=%v err=%v", r.resp, r.err)
	}
	// Drain vetoed every worker in the availability mask before closing.
	if mask := p.Controller().AvailableMask() & 0b11; mask != 0 {
		t.Errorf("worker bits after drain = %b, want 0", mask)
	}
	if _, err := net.DialTimeout("tcp", p.Addr(), 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// Past the drain deadline, surviving connections are force-closed and
// Shutdown says so.
func TestShutdownForceClosesAfterDeadline(t *testing.T) {
	b := newStubUpstream(t)
	b.hang.Store(true)
	cfg := testConfig(b)
	cfg.ResponseTimeout = 500 * time.Millisecond
	reg := telemetry.NewRegistry()
	p, err := New(cfg, WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	go get(p.Addr(), "/hang", nil)
	time.Sleep(100 * time.Millisecond)
	err = p.Shutdown(100 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "force-closed") {
		t.Fatalf("Shutdown = %v, want force-close error", err)
	}
	if n := reg.Snapshot().Get("proxy.drain.forced_closes").Value; n == 0 {
		t.Error("forced-close counter never moved")
	}
}

// The acceptance soak: kill a backend under load — eviction within three
// probe intervals, the circuit opens, and not one request is lost thanks to
// retries; restart it — health and circuit recover.
func TestHealthEvictionAndRecoverySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const probeInterval = 200 * time.Millisecond
	b0, b1 := newStubUpstream(t), newStubUpstream(t)
	cfg := testConfig(b0, b1)
	cfg.Workers = 2
	cfg.Buffer.Retries = 2
	cfg.HealthCheck = HealthCheckConfig{
		Enabled:            true,
		Path:               "/health",
		Interval:           probeInterval,
		Timeout:            100 * time.Millisecond,
		HealthyThreshold:   2,
		UnhealthyThreshold: 2,
		PassiveThreshold:   0, // active probes only: measure probe-driven eviction
	}
	cfg.CircuitBreaker = CircuitBreakerConfig{
		Enabled:          true,
		FailureThreshold: 3,
		SuccessThreshold: 1,
		Timeout:          400 * time.Millisecond,
	}
	reg := telemetry.NewRegistry()
	p := startProxy(t, cfg, WithTelemetry(reg))

	var lost, served atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := get(p.Addr(), "/soak", nil)
				if err != nil || resp.Status != 200 {
					lost.Add(1)
				} else {
					served.Add(1)
				}
			}
		}()
	}

	time.Sleep(400 * time.Millisecond) // warm: both backends serving
	killedAt := time.Now()
	b0.kill()

	dead := p.pool.backends[0]
	deadline := time.Now().Add(10 * probeInterval)
	for dead.Healthy() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	evictionTook := time.Since(killedAt)
	if dead.Healthy() {
		t.Fatal("dead backend never evicted")
	}
	if evictionTook > 3*probeInterval+probeInterval/2 {
		t.Errorf("eviction took %v, want within 3 probe intervals (%v)", evictionTook, 3*probeInterval)
	}

	// Keep load running through the outage, then recover.
	time.Sleep(3 * probeInterval)
	if dead.circuit.Snapshot().Opens == 0 {
		t.Error("circuit never opened during the outage")
	}
	b0.restart()
	deadline = time.Now().Add(20 * probeInterval)
	for !dead.Healthy() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !dead.Healthy() {
		t.Fatal("restarted backend never recovered")
	}
	// Give the half-open circuit a chance to close through live traffic.
	deadline = time.Now().Add(20 * probeInterval)
	for dead.circuit.State() != CircuitClosed && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st := dead.circuit.State(); st != CircuitClosed {
		t.Errorf("circuit = %v after recovery, want closed", st)
	}

	close(stop)
	wg.Wait()
	if lost.Load() != 0 {
		t.Errorf("%d requests lost across kill/recovery (served %d)", lost.Load(), served.Load())
	}
	if served.Load() == 0 {
		t.Error("soak served nothing")
	}
	if reg.Snapshot().Get("proxy.health.transitions").Value < 2 {
		t.Error("health transitions not recorded")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backends = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a config with no backends")
	}
}
