// Package proxy is the production-grade real-socket reverse proxy behind
// cmd/hermes-lb: an HTTP/1.1 edge whose worker scheduling runs the Hermes
// control loop (workers publish to the Worker Status Table, every worker runs
// Algorithm 1, the acceptor picks workers from the live selection bitmap) and
// whose backend pool adds the classic L7 edge features — active and passive
// health checks, circuit breaking with half-open probing, weighted and
// least-connection policies, and bounded retry/buffering — so backend
// availability and worker-load steering become one userspace decision
// (docs/PROXY.md).
package proxy

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"hermes/internal/telemetry"
)

// Policy names accepted by Config.Policy.
const (
	PolicyRoundRobin = "round-robin"
	PolicyWeighted   = "weighted"
	PolicyLeastConn  = "least-connections"
)

// BackendConfig declares one upstream server.
type BackendConfig struct {
	// Address is the TCP host:port to dial.
	Address string
	// Weight biases the weighted policy (≥1; 0 means 1).
	Weight int
}

// HealthCheckConfig tunes active and passive backend health checks.
type HealthCheckConfig struct {
	// Enabled turns active probing on.
	Enabled bool
	// Path is the probe request target (must start with "/").
	Path string
	// Interval is the probe period per backend.
	Interval time.Duration
	// Timeout bounds one probe (dial + response).
	Timeout time.Duration
	// HealthyThreshold is the consecutive probe successes required to mark
	// an unhealthy backend healthy again.
	HealthyThreshold int
	// UnhealthyThreshold is the consecutive probe failures required to mark
	// a healthy backend unhealthy.
	UnhealthyThreshold int
	// PassiveThreshold marks a backend unhealthy after this many consecutive
	// upstream errors observed while proxying (0 disables passive checks).
	// Passive marks recover through active probing when Enabled, else after
	// the first successful proxied request.
	PassiveThreshold int
}

// CircuitBreakerConfig tunes per-backend circuit breaking.
type CircuitBreakerConfig struct {
	// Enabled turns circuit breaking on.
	Enabled bool
	// FailureThreshold opens the circuit after this many consecutive
	// request failures.
	FailureThreshold int
	// SuccessThreshold closes a half-open circuit after this many
	// consecutive trial successes.
	SuccessThreshold int
	// Timeout is how long an open circuit rejects before going half-open.
	Timeout time.Duration
}

// TelemetrySettings tunes the windowed time-series sampler behind /metrics,
// /slo, and -stats-every (docs/TELEMETRY.md).
type TelemetrySettings struct {
	// WindowTick is the sampling period for windowed rates and quantiles.
	WindowTick time.Duration
	// WindowDepth is how many ticks of history the ring retains; the longest
	// answerable window is WindowTick × (WindowDepth-1).
	WindowDepth int
}

// SLOSettings arms the burn-rate monitor over the windowed layer.
type SLOSettings struct {
	// Enabled turns SLO evaluation on (state surfaces in /healthz and /slo).
	Enabled bool
	// Objectives overrides the default objectives using the spec grammar
	// "latency<=250ms@99%;errors@99.9%;page=10x/10s+1m;warn=2x/1m+5m"
	// (telemetry.ParseSLOSpec); "" keeps the defaults.
	Objectives string
}

// BufferConfig bounds request buffering and retries.
type BufferConfig struct {
	// MaxRequestBody caps the buffered request body in bytes; larger
	// requests are refused with 413.
	MaxRequestBody int
	// Retries is how many additional backends an idempotent request may be
	// retried against after an upstream failure (0 disables retry).
	Retries int
}

// Config is the proxy's full configuration. Zero value is not runnable; use
// DefaultConfig then overlay a file (LoadFile) and flags.
type Config struct {
	// Listen is the client-facing address.
	Listen string
	// AdminListen serves the admin REST API ("" disables).
	AdminListen string
	// Workers is the proxy worker count (1..64 — one Hermes group).
	Workers int
	// Policy picks the backend selection policy.
	Policy string
	// Backends is the upstream pool (at least one).
	Backends []BackendConfig

	HealthCheck    HealthCheckConfig
	CircuitBreaker CircuitBreakerConfig
	Buffer         BufferConfig
	Telemetry      TelemetrySettings
	SLO            SLOSettings

	// DialTimeout bounds one upstream dial.
	DialTimeout time.Duration
	// ResponseTimeout bounds one upstream response read.
	ResponseTimeout time.Duration
	// ClientIdleTimeout bounds waiting for the next request on a keep-alive
	// client connection.
	ClientIdleTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: how long Shutdown waits for
	// in-flight requests before force-closing connections.
	DrainTimeout time.Duration
}

// DefaultConfig returns production-like defaults: health checks and circuit
// breaking on, weighted policy, modest retry budget.
func DefaultConfig() Config {
	return Config{
		Listen:  "127.0.0.1:8080",
		Workers: 4,
		Policy:  PolicyRoundRobin,
		HealthCheck: HealthCheckConfig{
			Enabled:            true,
			Path:               "/health",
			Interval:           2 * time.Second,
			Timeout:            500 * time.Millisecond,
			HealthyThreshold:   2,
			UnhealthyThreshold: 3,
			PassiveThreshold:   3,
		},
		CircuitBreaker: CircuitBreakerConfig{
			Enabled:          true,
			FailureThreshold: 5,
			SuccessThreshold: 2,
			Timeout:          10 * time.Second,
		},
		Buffer: BufferConfig{
			MaxRequestBody: 10 << 20,
			Retries:        2,
		},
		Telemetry: TelemetrySettings{
			WindowTick:  time.Second,
			WindowDepth: 360,
		},
		SLO: SLOSettings{Enabled: true},
		DialTimeout:       2 * time.Second,
		ResponseTimeout:   5 * time.Second,
		ClientIdleTimeout: 5 * time.Second,
		DrainTimeout:      10 * time.Second,
	}
}

// MaxWorkers is the single-group worker cap (one 64-bit selection bitmap).
const MaxWorkers = 64

// Validate reports the first invalid field as a one-line error. It is the
// single validation path for both file- and flag-sourced configuration.
func (c Config) Validate() error {
	if c.Listen == "" {
		return fmt.Errorf("proxy: listen address required")
	}
	if c.Workers < 1 || c.Workers > MaxWorkers {
		return fmt.Errorf("proxy: workers %d outside 1..%d (one Hermes selection bitmap)", c.Workers, MaxWorkers)
	}
	switch c.Policy {
	case PolicyRoundRobin, PolicyWeighted, PolicyLeastConn:
	default:
		return fmt.Errorf("proxy: unknown policy %q (want %s, %s, or %s)",
			c.Policy, PolicyRoundRobin, PolicyWeighted, PolicyLeastConn)
	}
	if len(c.Backends) == 0 {
		return fmt.Errorf("proxy: at least one backend required")
	}
	if len(c.Backends) > 64 {
		return fmt.Errorf("proxy: %d backends exceed the 64-backend retry bitmask", len(c.Backends))
	}
	seen := make(map[string]bool, len(c.Backends))
	for i, b := range c.Backends {
		host, port, err := net.SplitHostPort(b.Address)
		if err != nil || host == "" || port == "" {
			return fmt.Errorf("proxy: backend %d: malformed address %q (want host:port)", i, b.Address)
		}
		if n, err := strconv.Atoi(port); err != nil || n < 1 || n > 65535 {
			return fmt.Errorf("proxy: backend %d: bad port in %q", i, b.Address)
		}
		if seen[b.Address] {
			return fmt.Errorf("proxy: duplicate backend address %q", b.Address)
		}
		seen[b.Address] = true
		if b.Weight < 0 {
			return fmt.Errorf("proxy: backend %d: negative weight %d", i, b.Weight)
		}
	}
	h := c.HealthCheck
	if h.Enabled {
		if !strings.HasPrefix(h.Path, "/") {
			return fmt.Errorf("proxy: health_check path %q must start with /", h.Path)
		}
		if h.Interval <= 0 {
			return fmt.Errorf("proxy: health_check interval must be positive, got %v", h.Interval)
		}
		if h.Timeout <= 0 {
			return fmt.Errorf("proxy: health_check timeout must be positive, got %v", h.Timeout)
		}
		if h.HealthyThreshold < 1 || h.UnhealthyThreshold < 1 {
			return fmt.Errorf("proxy: health_check thresholds must be ≥ 1, got healthy=%d unhealthy=%d",
				h.HealthyThreshold, h.UnhealthyThreshold)
		}
	}
	if h.PassiveThreshold < 0 {
		return fmt.Errorf("proxy: health_check passive_threshold must be ≥ 0, got %d", h.PassiveThreshold)
	}
	cb := c.CircuitBreaker
	if cb.Enabled {
		if cb.FailureThreshold < 1 || cb.SuccessThreshold < 1 {
			return fmt.Errorf("proxy: circuit_breaker thresholds must be ≥ 1, got failure=%d success=%d",
				cb.FailureThreshold, cb.SuccessThreshold)
		}
		if cb.Timeout <= 0 {
			return fmt.Errorf("proxy: circuit_breaker timeout must be positive, got %v", cb.Timeout)
		}
	}
	if c.Buffer.MaxRequestBody < 0 {
		return fmt.Errorf("proxy: buffer max_request_body must be ≥ 0, got %d", c.Buffer.MaxRequestBody)
	}
	if c.Buffer.Retries < 0 || c.Buffer.Retries > 16 {
		return fmt.Errorf("proxy: buffer retries %d outside 0..16", c.Buffer.Retries)
	}
	if c.DialTimeout <= 0 || c.ResponseTimeout <= 0 || c.ClientIdleTimeout <= 0 {
		return fmt.Errorf("proxy: dial/response/idle timeouts must be positive")
	}
	if c.DrainTimeout < 0 {
		return fmt.Errorf("proxy: drain timeout must be ≥ 0, got %v", c.DrainTimeout)
	}
	if err := c.windowConfig().Validate(); err != nil {
		return fmt.Errorf("proxy: telemetry: %w", err)
	}
	if c.SLO.Enabled {
		if _, err := c.sloConfig(); err != nil {
			return fmt.Errorf("proxy: slo: %w", err)
		}
	}
	return nil
}

// windowConfig maps the telemetry settings onto the sampler config.
func (c Config) windowConfig() telemetry.WindowConfig {
	return telemetry.WindowConfig{Tick: c.Telemetry.WindowTick, Depth: c.Telemetry.WindowDepth}
}

// sloConfig resolves the SLO objectives against the proxy.* catalog: totals
// come from the per-worker served counter (incremented for every proxied
// request, including 502/503 outcomes), bad events from upstream errors and
// no-backend 503s, and the latency SLI from the end-to-end histogram.
func (c Config) sloConfig() (telemetry.SLOConfig, error) {
	base := telemetry.DefaultSLOConfig()
	base.LatencyMetric = "proxy.request_latency_ns"
	base.TotalMetrics = []string{"proxy.worker.requests_served"}
	base.BadMetrics = []string{"proxy.upstream_errors", "proxy.unavailable"}
	return telemetry.ParseSLOSpec(c.SLO.Objectives, base)
}

// ParseBackends parses a comma-separated backend list ("addr" or
// "addr*weight" items) — the -backends flag syntax.
func ParseBackends(s string) ([]BackendConfig, error) {
	var out []BackendConfig
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, fmt.Errorf("proxy: empty backend entry in %q", s)
		}
		b := BackendConfig{Address: item, Weight: 1}
		if i := strings.IndexByte(item, '*'); i >= 0 {
			w, err := strconv.Atoi(item[i+1:])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("proxy: bad weight in backend entry %q", item)
			}
			b.Address, b.Weight = item[:i], w
		}
		out = append(out, b)
	}
	return out, nil
}

// LoadFile reads a config.yaml (the SNIPPETS exemplar shape, see
// docs/PROXY.md) and overlays it on base. Unknown keys are errors.
func LoadFile(path string, base Config) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	return loadYAML(data, base)
}

func loadYAML(data []byte, base Config) (Config, error) {
	root, err := parseYAML(data)
	if err != nil {
		return base, err
	}
	c := base
	d := &decoder{}

	if m := d.section(root, "server"); m != nil {
		d.str(m, "listen", &c.Listen)
		d.str(m, "admin_listen", &c.AdminListen)
		d.integer(m, "workers", &c.Workers)
		d.duration(m, "drain_timeout", &c.DrainTimeout)
		d.duration(m, "dial_timeout", &c.DialTimeout)
		d.duration(m, "response_timeout", &c.ResponseTimeout)
		d.duration(m, "client_idle_timeout", &c.ClientIdleTimeout)
		d.noExtra("server", m)
	}
	if raw, ok := root["backends"]; ok {
		delete(root, "backends")
		items, ok := raw.([]any)
		if !ok {
			d.errf("backends: want a list")
		} else {
			c.Backends = nil
			for i, it := range items {
				m, ok := it.(map[string]any)
				if !ok {
					d.errf("backends[%d]: want a mapping with address/weight", i)
					continue
				}
				b := BackendConfig{Weight: 1}
				d.str(m, "address", &b.Address)
				d.integer(m, "weight", &b.Weight)
				d.noExtra(fmt.Sprintf("backends[%d]", i), m)
				c.Backends = append(c.Backends, b)
			}
		}
	}
	if m := d.section(root, "load_balancing"); m != nil {
		d.str(m, "algorithm", &c.Policy)
		d.noExtra("load_balancing", m)
	}
	if m := d.section(root, "health_check"); m != nil {
		d.boolean(m, "enabled", &c.HealthCheck.Enabled)
		d.str(m, "path", &c.HealthCheck.Path)
		d.duration(m, "interval", &c.HealthCheck.Interval)
		d.duration(m, "timeout", &c.HealthCheck.Timeout)
		d.integer(m, "healthy_threshold", &c.HealthCheck.HealthyThreshold)
		d.integer(m, "unhealthy_threshold", &c.HealthCheck.UnhealthyThreshold)
		d.integer(m, "passive_threshold", &c.HealthCheck.PassiveThreshold)
		d.noExtra("health_check", m)
	}
	if m := d.section(root, "circuit_breaker"); m != nil {
		d.boolean(m, "enabled", &c.CircuitBreaker.Enabled)
		d.integer(m, "failure_threshold", &c.CircuitBreaker.FailureThreshold)
		d.integer(m, "success_threshold", &c.CircuitBreaker.SuccessThreshold)
		d.duration(m, "timeout", &c.CircuitBreaker.Timeout)
		d.noExtra("circuit_breaker", m)
	}
	if m := d.section(root, "buffer"); m != nil {
		d.integer(m, "max_request_body", &c.Buffer.MaxRequestBody)
		d.integer(m, "retries", &c.Buffer.Retries)
		d.noExtra("buffer", m)
	}
	if m := d.section(root, "telemetry"); m != nil {
		d.duration(m, "window_tick", &c.Telemetry.WindowTick)
		d.integer(m, "window_depth", &c.Telemetry.WindowDepth)
		d.noExtra("telemetry", m)
	}
	if m := d.section(root, "slo"); m != nil {
		d.boolean(m, "enabled", &c.SLO.Enabled)
		d.str(m, "objectives", &c.SLO.Objectives)
		d.noExtra("slo", m)
	}
	for key := range root {
		d.errf("unknown top-level section %q", key)
	}
	if d.err != nil {
		return base, fmt.Errorf("proxy: config: %w", d.err)
	}
	return c, nil
}

// decoder accumulates the first decode error while pulling typed values out
// of the parsed YAML tree.
type decoder struct{ err error }

func (d *decoder) errf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) section(root map[string]any, key string) map[string]any {
	raw, ok := root[key]
	if !ok {
		return nil
	}
	delete(root, key)
	m, ok := raw.(map[string]any)
	if !ok {
		d.errf("%s: want a mapping", key)
		return nil
	}
	return m
}

func (d *decoder) scalar(m map[string]any, key string) (string, bool) {
	raw, ok := m[key]
	if !ok {
		return "", false
	}
	delete(m, key)
	s, ok := raw.(string)
	if !ok {
		d.errf("%s: want a scalar", key)
		return "", false
	}
	return s, true
}

func (d *decoder) str(m map[string]any, key string, dst *string) {
	if s, ok := d.scalar(m, key); ok {
		*dst = s
	}
}

func (d *decoder) integer(m map[string]any, key string, dst *int) {
	if s, ok := d.scalar(m, key); ok {
		n, err := strconv.Atoi(s)
		if err != nil {
			d.errf("%s: bad integer %q", key, s)
			return
		}
		*dst = n
	}
}

func (d *decoder) boolean(m map[string]any, key string, dst *bool) {
	if s, ok := d.scalar(m, key); ok {
		switch s {
		case "true", "yes", "on":
			*dst = true
		case "false", "no", "off":
			*dst = false
		default:
			d.errf("%s: bad boolean %q", key, s)
		}
	}
}

func (d *decoder) duration(m map[string]any, key string, dst *time.Duration) {
	if s, ok := d.scalar(m, key); ok {
		v, err := time.ParseDuration(s)
		if err != nil {
			d.errf("%s: bad duration %q", key, s)
			return
		}
		*dst = v
	}
}

func (d *decoder) noExtra(section string, m map[string]any) {
	for key := range m {
		d.errf("%s: unknown key %q", section, key)
	}
}
