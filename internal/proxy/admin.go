package proxy

import (
	"bytes"
	"encoding/json"
	"net/http"
	"time"

	"hermes/internal/core"
	"hermes/internal/telemetry"
)

// HealthzView is the /healthz response body.
type HealthzView struct {
	// Status is "ok" (every backend available), "degraded" (some down),
	// "unavailable" (none pickable, served as 503), or "draining".
	Status    string `json:"status"`
	Backends  int    `json:"backends"`
	Available int    `json:"available"`
	Workers   int    `json:"workers"`
	UptimeSec int64  `json:"uptime_sec"`
	// SLO is the burn-rate verdict ("ok", "warn", "page"); empty when the
	// monitor is disabled. Reported alongside pool availability so one
	// healthz poll covers both liveness and objective health.
	SLO string `json:"slo,omitempty"`
}

// CircuitView is one breaker in /circuits and /backends responses.
type CircuitView struct {
	State     string  `json:"state"`
	Fails     int     `json:"consecutive_fails"`
	Opens     uint64  `json:"opens"`
	HalfOpens uint64  `json:"half_opens"`
	Closes    uint64  `json:"closes"`
	OpenForMS float64 `json:"open_for_ms,omitempty"`
}

// BackendView is one pool member in the /backends response.
type BackendView struct {
	Index    int    `json:"index"`
	Address  string `json:"address"`
	Weight   int    `json:"weight"`
	Healthy  bool   `json:"healthy"`
	Reason   string `json:"down_reason,omitempty"`
	Active   int64  `json:"active"`
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`

	LastProbeUnixNS  int64 `json:"last_probe_unix_ns,omitempty"`
	LastProbeOK      bool  `json:"last_probe_ok"`
	LastChangeUnixNS int64 `json:"last_change_unix_ns,omitempty"`

	Circuit *CircuitView `json:"circuit,omitempty"`
}

// StatsView is the /stats response body.
type StatsView struct {
	UptimeSec   float64 `json:"uptime_sec"`
	Policy      string  `json:"policy"`
	Workers     int     `json:"workers"`
	Served      uint64  `json:"served"`
	Errors      uint64  `json:"errors"`
	Unavailable uint64  `json:"unavailable"`

	LatencyP50MS *float64 `json:"latency_p50_ms"`
	LatencyP99MS *float64 `json:"latency_p99_ms"`

	RetryAttempts  uint64 `json:"retry_attempts"`
	RetryRecovered uint64 `json:"retry_recovered"`
	RetryExhausted uint64 `json:"retry_exhausted"`

	CircuitRejections uint64 `json:"circuit_rejections"`
	HealthProbes      uint64 `json:"health_probes"`
	HealthTransitions uint64 `json:"health_transitions"`

	WorkerHandled []uint64 `json:"worker_handled"`

	// Scheduler is the Hermes control-loop view: Algorithm-1 pass counts and
	// the live selection/availability bitmaps backend health feeds into.
	Scheduler SchedulerView `json:"scheduler"`
}

// SchedulerView surfaces the Hermes controller state in /stats.
type SchedulerView struct {
	ScheduleCalls   uint64  `json:"schedule_calls"`
	Syncs           uint64  `json:"syncs"`
	Batched         uint64  `json:"batched"`
	AvgPassed       float64 `json:"avg_passed"`
	EmptySets       uint64  `json:"empty_sets"`
	SelectionBitmap uint64  `json:"selection_bitmap"`
	AvailableMask   uint64  `json:"available_mask"`
}

// healthzView builds the /healthz body and its HTTP status.
func (p *Proxy) healthzView() (HealthzView, int) {
	avail := p.pool.AvailableCount()
	v := HealthzView{
		Backends:  len(p.pool.backends),
		Available: avail,
		Workers:   len(p.workers),
		UptimeSec: int64(time.Since(time.Unix(0, p.startNS)).Seconds()),
	}
	if p.slo != nil {
		v.SLO = p.slo.State().String()
	}
	switch {
	case p.draining.Load():
		return withStatus(v, "draining"), http.StatusServiceUnavailable
	case avail == 0:
		return withStatus(v, "unavailable"), http.StatusServiceUnavailable
	case avail < v.Backends:
		return withStatus(v, "degraded"), http.StatusOK
	default:
		return withStatus(v, "ok"), http.StatusOK
	}
}

func withStatus(v HealthzView, s string) HealthzView {
	v.Status = s
	return v
}

// backendViews builds the /backends body.
func (p *Proxy) backendViews() []BackendView {
	out := make([]BackendView, 0, len(p.pool.backends))
	for _, b := range p.pool.backends {
		v := BackendView{
			Index:    b.idx,
			Address:  b.addr,
			Weight:   b.weight,
			Healthy:  b.healthy.Load(),
			Active:   b.active.Load(),
			Requests: b.requests.Load(),
			Errors:   b.errors.Load(),

			LastProbeUnixNS:  b.lastProbeNS.Load(),
			LastProbeOK:      b.lastProbeOK.Load(),
			LastChangeUnixNS: b.lastChangeNS.Load(),
		}
		if r, _ := b.downReason.Load().(string); r != "" && !v.Healthy {
			v.Reason = r
		}
		if b.circuit != nil {
			cv := circuitView(b.circuit.Snapshot())
			v.Circuit = &cv
		}
		out = append(out, v)
	}
	return out
}

func circuitView(s CircuitSnapshot) CircuitView {
	return CircuitView{
		State:     s.State.String(),
		Fails:     s.Fails,
		Opens:     s.Opens,
		HalfOpens: s.HalfOpens,
		Closes:    s.Closes,
		OpenForMS: float64(s.OpenForNS) / 1e6,
	}
}

// statsView builds the /stats body.
func (p *Proxy) statsView() StatsView {
	snap := p.reg.Snapshot()
	counter := func(name string) uint64 {
		if ms := snap.Get(name); ms != nil {
			return uint64(ms.Value)
		}
		return 0
	}
	v := StatsView{
		UptimeSec:   time.Since(time.Unix(0, p.startNS)).Seconds(),
		Policy:      p.cfg.Policy,
		Workers:     len(p.workers),
		Served:      p.Served.Load(),
		Errors:      p.Errors.Load(),
		Unavailable: p.Unavailable.Load(),

		RetryAttempts:  counter("proxy.retry.attempts"),
		RetryRecovered: counter("proxy.retry.recovered"),
		RetryExhausted: counter("proxy.retry.exhausted"),

		CircuitRejections: counter("proxy.circuit.rejections"),
		HealthProbes:      counter("proxy.health.probes"),
		HealthTransitions: counter("proxy.health.transitions"),
	}
	if ms := snap.Get("proxy.request_latency_ns"); ms != nil && ms.Count > 0 {
		p50 := ms.Quantile(0.50) / 1e6
		p99 := ms.Quantile(0.99) / 1e6
		v.LatencyP50MS, v.LatencyP99MS = &p50, &p99
	}
	for _, w := range p.workers {
		v.WorkerHandled = append(v.WorkerHandled, w.Handled.Load())
	}
	st := p.ctl.Stats()
	bitmap, _ := p.ctl.SelMap().Lookup(0)
	v.Scheduler = SchedulerView{
		ScheduleCalls:   st.ScheduleCalls,
		Syncs:           st.Syncs,
		Batched:         st.Batched,
		AvgPassed:       st.AvgPassed,
		EmptySets:       st.EmptySets,
		SelectionBitmap: bitmap,
		AvailableMask:   p.ctl.AvailableMask(),
	}
	return v
}

// circuitViews builds the /circuits body, keyed by backend address.
func (p *Proxy) circuitViews() map[string]CircuitView {
	out := make(map[string]CircuitView, len(p.pool.backends))
	for _, b := range p.pool.backends {
		if b.circuit == nil {
			continue
		}
		out[b.addr] = circuitView(b.circuit.Snapshot())
	}
	return out
}

// AdminHandler serves the proxy's admin REST API:
//
//	GET /healthz   liveness + pool availability + SLO state (503 when nothing pickable)
//	GET /backends  per-backend health, counters, circuit state
//	GET /stats     request/retry/latency counters + Hermes scheduler state
//	GET /circuits  per-backend breaker snapshots
//	GET /metrics   OpenMetrics exposition of the full telemetry catalog
//	GET /slo       burn-rate monitor status (404 when disabled)
//	GET,PUT /policy, GET /status  the Hermes policy API (core.PolicyHandler)
//
// JSON responses are uncacheable point-in-time reads: every endpoint sets
// Cache-Control: no-store.
func AdminHandler(p *Proxy) http.Handler {
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, status int, body any) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	}
	get := func(h func(w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			h(w, r)
		}
	}
	mux.Handle("/healthz", get(func(w http.ResponseWriter, r *http.Request) {
		v, status := p.healthzView()
		serve(w, status, v)
	}))
	mux.Handle("/backends", get(func(w http.ResponseWriter, r *http.Request) {
		serve(w, http.StatusOK, p.backendViews())
	}))
	mux.Handle("/stats", get(func(w http.ResponseWriter, r *http.Request) {
		serve(w, http.StatusOK, p.statsView())
	}))
	mux.Handle("/circuits", get(func(w http.ResponseWriter, r *http.Request) {
		serve(w, http.StatusOK, p.circuitViews())
	}))
	mux.Handle("/metrics", get(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := telemetry.WriteOpenMetrics(&buf, p.reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", telemetry.PromContentType)
		w.Header().Set("Cache-Control", "no-store")
		_, _ = w.Write(buf.Bytes())
	}))
	mux.Handle("/slo", get(func(w http.ResponseWriter, r *http.Request) {
		if p.slo == nil {
			http.Error(w, "slo monitoring disabled", http.StatusNotFound)
			return
		}
		serve(w, http.StatusOK, p.slo.Status())
	}))
	// The Hermes policy/status API keeps its existing shape and paths.
	mux.Handle("/policy", core.PolicyHandler(p.ctl))
	mux.Handle("/status", core.PolicyHandler(p.ctl))
	return mux
}
