package proxy

import (
	"fmt"
	"strings"
)

// parseYAML parses the YAML subset the proxy config uses — nested mappings by
// indentation, lists of mappings ("- key: value"), quoted or bare scalars,
// and # comments. Everything parses to map[string]any / []any / string; the
// decoder in config.go applies types. Anchors, flow syntax, multi-line
// scalars, and tabs are rejected, keeping the grammar small enough to trust
// without a dependency.
func parseYAML(data []byte) (map[string]any, error) {
	var lines []yamlLine
	for no, raw := range strings.Split(string(data), "\n") {
		if strings.ContainsRune(raw, '\t') {
			return nil, fmt.Errorf("line %d: tabs are not allowed for indentation", no+1)
		}
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		lines = append(lines, yamlLine{
			indent: len(text) - len(strings.TrimLeft(text, " ")),
			text:   trimmed,
			no:     no + 1,
		})
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	if lines[0].indent != 0 {
		return nil, fmt.Errorf("line %d: top level must not be indented", lines[0].no)
	}
	m, rest, err := parseMapping(lines, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("line %d: unexpected indentation", rest[0].no)
	}
	return m, nil
}

type yamlLine struct {
	indent int
	text   string
	no     int
}

// stripComment removes a trailing # comment, respecting single and double
// quotes.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#':
			return s[:i]
		}
	}
	return s
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}

// parseMapping consumes "key: value" / "key:" lines at exactly indent,
// returning the mapping and the unconsumed tail (first line at a shallower
// indent).
func parseMapping(ls []yamlLine, indent int) (map[string]any, []yamlLine, error) {
	m := map[string]any{}
	for len(ls) > 0 {
		l := ls[0]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, nil, fmt.Errorf("line %d: unexpected indentation", l.no)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, nil, fmt.Errorf("line %d: list item where a key was expected", l.no)
		}
		key, rest, ok := splitKey(l.text)
		if !ok {
			return nil, nil, fmt.Errorf("line %d: want \"key: value\", got %q", l.no, l.text)
		}
		if _, dup := m[key]; dup {
			return nil, nil, fmt.Errorf("line %d: duplicate key %q", l.no, key)
		}
		ls = ls[1:]
		if rest != "" {
			m[key] = unquote(rest)
			continue
		}
		// Block value: a nested mapping or list at deeper indent, or empty.
		if len(ls) == 0 || ls[0].indent <= indent {
			m[key] = ""
			continue
		}
		var (
			v   any
			err error
		)
		if strings.HasPrefix(ls[0].text, "- ") || ls[0].text == "-" {
			v, ls, err = parseList(ls, ls[0].indent)
		} else {
			v, ls, err = parseMapping(ls, ls[0].indent)
		}
		if err != nil {
			return nil, nil, err
		}
		m[key] = v
	}
	return m, ls, nil
}

// parseList consumes "- ..." items at exactly indent. Each item is either a
// bare scalar or a mapping whose first entry shares the dash line and whose
// remaining entries sit at the dash line's content column.
func parseList(ls []yamlLine, indent int) ([]any, []yamlLine, error) {
	var out []any
	for len(ls) > 0 {
		l := ls[0]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, nil, fmt.Errorf("line %d: unexpected indentation", l.no)
		}
		if !strings.HasPrefix(l.text, "- ") {
			if l.text == "-" {
				return nil, nil, fmt.Errorf("line %d: empty list item", l.no)
			}
			break
		}
		body := strings.TrimSpace(l.text[2:])
		if _, _, isMap := splitKey(body); !isMap {
			out = append(out, unquote(body))
			ls = ls[1:]
			continue
		}
		// Mapping item: re-inject the dash line's remainder at the item's
		// content column, then absorb continuation lines at that column.
		itemIndent := indent + 2
		item := []yamlLine{{indent: itemIndent, text: body, no: l.no}}
		ls = ls[1:]
		for len(ls) > 0 && ls[0].indent == itemIndent &&
			!strings.HasPrefix(ls[0].text, "- ") && ls[0].text != "-" {
			item = append(item, ls[0])
			ls = ls[1:]
		}
		m, rest, err := parseMapping(item, itemIndent)
		if err != nil {
			return nil, nil, err
		}
		if len(rest) > 0 {
			return nil, nil, fmt.Errorf("line %d: unexpected indentation", rest[0].no)
		}
		out = append(out, m)
	}
	return out, ls, nil
}

// splitKey splits "key: value" (value may be empty). ok=false when the line
// has no colon-separated key.
func splitKey(s string) (key, value string, ok bool) {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return "", "", false
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		// "host:port" without a space is a scalar, not a key. A trailing
		// colon ("key:") is a key with an empty value.
		return "", "", false
	}
	return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
}
