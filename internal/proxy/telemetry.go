package proxy

import (
	"hermes/internal/telemetry"
)

// Instruments is the proxy's telemetry bundle (the proxy.* catalog in
// docs/TELEMETRY.md). All handles are nil-safe: a zero Instruments records
// nothing, so the proxy runs identically with telemetry off.
type Instruments struct {
	// RequestsServed counts proxied requests per worker.
	RequestsServed *telemetry.CounterVec
	// RequestLatencyNS observes end-to-end request latency.
	RequestLatencyNS *telemetry.Histogram
	// UpstreamErrors counts failed upstream exchanges (after retries).
	UpstreamErrors *telemetry.Counter

	// BackendRequests / BackendErrors / BackendActive are per-backend
	// request, error, and in-flight counts.
	BackendRequests *telemetry.CounterVec
	BackendErrors   *telemetry.CounterVec
	BackendActive   *telemetry.GaugeVec
	// BackendHealthy is 1 while the backend is healthy.
	BackendHealthy *telemetry.GaugeVec

	// HealthProbes / HealthProbeFailures count active probes.
	HealthProbes        *telemetry.Counter
	HealthProbeFailures *telemetry.Counter
	// HealthTransitions counts health verdict flips (either direction,
	// active or passive).
	HealthTransitions *telemetry.Counter

	// CircuitOpens / CircuitHalfOpens / CircuitCloses count breaker
	// transitions; CircuitRejections counts picks refused by open circuits
	// (the request went elsewhere or got 503).
	CircuitOpens      *telemetry.Counter
	CircuitHalfOpens  *telemetry.Counter
	CircuitCloses     *telemetry.Counter
	CircuitRejections *telemetry.Counter

	// RetryAttempts counts retry attempts; RetryRecovered requests saved by
	// a retry; RetryExhausted requests that failed every allowed attempt.
	RetryAttempts  *telemetry.Counter
	RetryRecovered *telemetry.Counter
	RetryExhausted *telemetry.Counter

	// Unavailable counts requests refused 503 because no backend was
	// pickable — the moment backend health gates the steering decision.
	Unavailable *telemetry.Counter

	// DrainForcedCloses counts connections force-closed because graceful
	// shutdown exceeded its drain deadline.
	DrainForcedCloses *telemetry.Counter
}

// newInstruments registers the proxy.* catalog on reg (nil reg → zero
// bundle, every handle a no-op).
func newInstruments(reg *telemetry.Registry, workers, backends int) Instruments {
	if reg == nil {
		return Instruments{}
	}
	m := func(name, unit string) telemetry.Metric {
		return telemetry.Metric{Name: name, Layer: "proxy", Unit: unit}
	}
	return Instruments{
		RequestsServed:   reg.CounterVec(m("proxy.worker.requests_served", "reqs"), workers),
		RequestLatencyNS: reg.Histogram(m("proxy.request_latency_ns", "ns"), telemetry.DurationBuckets()),
		UpstreamErrors:   reg.Counter(m("proxy.upstream_errors", "errors")),

		BackendRequests: reg.CounterVec(m("proxy.backend.requests", "reqs"), backends),
		BackendErrors:   reg.CounterVec(m("proxy.backend.errors", "errors"), backends),
		BackendActive:   reg.GaugeVec(m("proxy.backend.active", "reqs"), backends),
		BackendHealthy:  reg.GaugeVec(m("proxy.backend.healthy", "bool"), backends),

		HealthProbes:        reg.Counter(m("proxy.health.probes", "probes")),
		HealthProbeFailures: reg.Counter(m("proxy.health.probe_failures", "probes")),
		HealthTransitions:   reg.Counter(m("proxy.health.transitions", "flips")),

		CircuitOpens:      reg.Counter(m("proxy.circuit.opens", "transitions")),
		CircuitHalfOpens:  reg.Counter(m("proxy.circuit.half_opens", "transitions")),
		CircuitCloses:     reg.Counter(m("proxy.circuit.closes", "transitions")),
		CircuitRejections: reg.Counter(m("proxy.circuit.rejections", "picks")),

		RetryAttempts:  reg.Counter(m("proxy.retry.attempts", "attempts")),
		RetryRecovered: reg.Counter(m("proxy.retry.recovered", "reqs")),
		RetryExhausted: reg.Counter(m("proxy.retry.exhausted", "reqs")),

		Unavailable:       reg.Counter(m("proxy.unavailable", "reqs")),
		DrainForcedCloses: reg.Counter(m("proxy.drain.forced_closes", "conns")),
	}
}
