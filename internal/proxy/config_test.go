package proxy

import (
	"strings"
	"testing"
	"time"
)

const fullYAML = `# exemplar config (docs/PROXY.md)
server:
  listen: "127.0.0.1:8080"
  admin_listen: "127.0.0.1:9900"
  workers: 8
  drain_timeout: 15s
  dial_timeout: 1s
  response_timeout: 3s
  client_idle_timeout: 7s

backends:
  - address: 127.0.0.1:9001
    weight: 3
  - address: 127.0.0.1:9002   # trailing comment
  - address: "127.0.0.1:9003"
    weight: 2

load_balancing:
  algorithm: weighted

health_check:
  enabled: true
  path: /health
  interval: 250ms
  timeout: 100ms
  healthy_threshold: 2
  unhealthy_threshold: 3
  passive_threshold: 4

circuit_breaker:
  enabled: true
  failure_threshold: 5
  success_threshold: 2
  timeout: 10s

buffer:
  max_request_body: 1048576
  retries: 3
`

func TestLoadYAMLFull(t *testing.T) {
	c, err := loadYAML([]byte(fullYAML), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Listen != "127.0.0.1:8080" || c.AdminListen != "127.0.0.1:9900" {
		t.Errorf("server addresses = %q / %q", c.Listen, c.AdminListen)
	}
	if c.Workers != 8 || c.DrainTimeout != 15*time.Second || c.DialTimeout != time.Second ||
		c.ResponseTimeout != 3*time.Second || c.ClientIdleTimeout != 7*time.Second {
		t.Errorf("server tuning = %+v", c)
	}
	want := []BackendConfig{
		{Address: "127.0.0.1:9001", Weight: 3},
		{Address: "127.0.0.1:9002", Weight: 1},
		{Address: "127.0.0.1:9003", Weight: 2},
	}
	if len(c.Backends) != len(want) {
		t.Fatalf("backends = %+v, want %+v", c.Backends, want)
	}
	for i, b := range want {
		if c.Backends[i] != b {
			t.Errorf("backend %d = %+v, want %+v", i, c.Backends[i], b)
		}
	}
	if c.Policy != PolicyWeighted {
		t.Errorf("policy = %q", c.Policy)
	}
	h := c.HealthCheck
	if !h.Enabled || h.Path != "/health" || h.Interval != 250*time.Millisecond ||
		h.Timeout != 100*time.Millisecond || h.HealthyThreshold != 2 ||
		h.UnhealthyThreshold != 3 || h.PassiveThreshold != 4 {
		t.Errorf("health_check = %+v", h)
	}
	cb := c.CircuitBreaker
	if !cb.Enabled || cb.FailureThreshold != 5 || cb.SuccessThreshold != 2 || cb.Timeout != 10*time.Second {
		t.Errorf("circuit_breaker = %+v", cb)
	}
	if c.Buffer.MaxRequestBody != 1<<20 || c.Buffer.Retries != 3 {
		t.Errorf("buffer = %+v", c.Buffer)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("full config should validate: %v", err)
	}
}

// A partial file overlays the defaults instead of replacing them.
func TestLoadYAMLOverlay(t *testing.T) {
	c, err := loadYAML([]byte("server:\n  workers: 2\n"), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if c.Workers != 2 {
		t.Errorf("workers = %d, want 2", c.Workers)
	}
	if c.Listen != def.Listen || c.HealthCheck != def.HealthCheck || c.CircuitBreaker != def.CircuitBreaker {
		t.Errorf("overlay clobbered defaults: %+v", c)
	}
}

func TestLoadYAMLErrors(t *testing.T) {
	cases := []struct {
		name, yaml, want string
	}{
		{"unknown section", "nonsense:\n  a: b\n", `unknown top-level section "nonsense"`},
		{"unknown key", "server:\n  port: 80\n", `unknown key "port"`},
		{"bad integer", "server:\n  workers: many\n", "bad integer"},
		{"bad duration", "health_check:\n  interval: fast\n", "bad duration"},
		{"bad boolean", "health_check:\n  enabled: maybe\n", "bad boolean"},
		{"backends not list", "backends: 127.0.0.1:9001\n", "want a list"},
		{"tab indent", "server:\n\tworkers: 2\n", "tab"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := loadYAML([]byte(tc.yaml), DefaultConfig())
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// Every rejection must be a one-line reason (the CLI prints it and exits 2).
func TestValidateRejects(t *testing.T) {
	mod := func(f func(*Config)) Config {
		c := DefaultConfig()
		c.Backends = []BackendConfig{{Address: "127.0.0.1:9001", Weight: 1}}
		f(&c)
		return c
	}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero workers", mod(func(c *Config) { c.Workers = 0 }), "workers"},
		{"too many workers", mod(func(c *Config) { c.Workers = 65 }), "workers"},
		{"bad policy", mod(func(c *Config) { c.Policy = "fastest" }), "policy"},
		{"no backends", mod(func(c *Config) { c.Backends = nil }), "at least one backend"},
		{"malformed address", mod(func(c *Config) { c.Backends[0].Address = "localhost" }), "malformed address"},
		{"bad port", mod(func(c *Config) { c.Backends[0].Address = "h:99999" }), "bad port"},
		{"duplicate", mod(func(c *Config) {
			c.Backends = append(c.Backends, BackendConfig{Address: "127.0.0.1:9001"})
		}), "duplicate"},
		{"negative weight", mod(func(c *Config) { c.Backends[0].Weight = -1 }), "weight"},
		{"bad probe path", mod(func(c *Config) { c.HealthCheck.Path = "health" }), "must start with /"},
		{"zero interval", mod(func(c *Config) { c.HealthCheck.Interval = 0 }), "interval"},
		{"zero thresholds", mod(func(c *Config) { c.HealthCheck.HealthyThreshold = 0 }), "threshold"},
		{"circuit thresholds", mod(func(c *Config) { c.CircuitBreaker.FailureThreshold = 0 }), "threshold"},
		{"circuit timeout", mod(func(c *Config) { c.CircuitBreaker.Timeout = 0 }), "timeout"},
		{"negative body cap", mod(func(c *Config) { c.Buffer.MaxRequestBody = -1 }), "max_request_body"},
		{"retries", mod(func(c *Config) { c.Buffer.Retries = 17 }), "retries"},
		{"zero dial timeout", mod(func(c *Config) { c.DialTimeout = 0 }), "timeouts"},
		{"negative drain", mod(func(c *Config) { c.DrainTimeout = -time.Second }), "drain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
			if err != nil && strings.Contains(err.Error(), "\n") {
				t.Errorf("validation error is not one line: %q", err)
			}
		})
	}
}

func TestParseBackends(t *testing.T) {
	got, err := ParseBackends("127.0.0.1:9001,127.0.0.1:9002*3")
	if err != nil {
		t.Fatal(err)
	}
	want := []BackendConfig{
		{Address: "127.0.0.1:9001", Weight: 1},
		{Address: "127.0.0.1:9002", Weight: 3},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("backend %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", "a:1,,b:2", "a:1*zero", "a:1*0"} {
		if _, err := ParseBackends(bad); err == nil {
			t.Errorf("ParseBackends(%q) accepted", bad)
		}
	}
}

func TestLoadYAMLTelemetrySLO(t *testing.T) {
	cfg, err := loadYAML([]byte(`
telemetry:
  window_tick: 500ms
  window_depth: 120
slo:
  enabled: "true"
  objectives: "latency<=100ms@99.5%;errors@99.9%"
`), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Telemetry.WindowTick != 500*time.Millisecond || cfg.Telemetry.WindowDepth != 120 {
		t.Errorf("telemetry = %+v", cfg.Telemetry)
	}
	if !cfg.SLO.Enabled || cfg.SLO.Objectives != "latency<=100ms@99.5%;errors@99.9%" {
		t.Errorf("slo = %+v", cfg.SLO)
	}
	sloCfg, err := cfg.sloConfig()
	if err != nil {
		t.Fatal(err)
	}
	if sloCfg.LatencyThresholdNS != int64(100*time.Millisecond) {
		t.Errorf("latency threshold = %d", sloCfg.LatencyThresholdNS)
	}
	if sloCfg.LatencyMetric != "proxy.request_latency_ns" {
		t.Errorf("latency metric = %q", sloCfg.LatencyMetric)
	}

	// A malformed objectives spec and a bad sampler config fail Validate.
	bad := DefaultConfig()
	bad.Backends = []BackendConfig{{Address: "127.0.0.1:9001"}}
	bad.SLO.Objectives = "latency<=junk"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "slo") {
		t.Errorf("bad objectives: err = %v", err)
	}
	bad = DefaultConfig()
	bad.Backends = []BackendConfig{{Address: "127.0.0.1:9001"}}
	bad.Telemetry.WindowDepth = 1
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "telemetry") {
		t.Errorf("bad window depth: err = %v", err)
	}
	if _, err := loadYAML([]byte("slo:\n  burn: \"1\"\n"), DefaultConfig()); err == nil {
		t.Error("unknown slo key accepted")
	}
}
