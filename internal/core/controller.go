package core

import (
	"fmt"
	"sync/atomic"

	"hermes/internal/ebpf"
	"hermes/internal/kernel"
	"hermes/internal/shm"
	"hermes/internal/tracing"
)

// Controller owns one worker group's Hermes state: the shared Worker Status
// Table, the kernel-facing selection map, and the dispatch attachment. One
// Controller serves up to 64 workers; larger fleets use GroupedController.
type Controller struct {
	cfg          atomic.Pointer[Config]
	order        atomic.Int32
	fallback     atomic.Bool // force reuseport fallback (publish empty bitmap)
	singleWinner atomic.Bool // ablation: publish only the single best worker
	wst          *shm.WST
	sel          *ebpf.ArrayMap

	// Scheduling statistics (atomic: in real-goroutine deployments every
	// worker runs the scheduler concurrently).
	scheduleCalls atomic.Uint64
	syncs         atomic.Uint64
	passedSum     atomic.Uint64
	aliveSum      atomic.Uint64
	emptySets     atomic.Uint64

	tel Instruments
	tr  *tracing.ScheduleTrace
}

// NewController creates Hermes state for n workers (1..64).
//
// Deprecated: use New, which picks the deployment level from n.
func NewController(n int, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 || n > shm.GroupSize {
		return nil, fmt.Errorf("core: worker count %d outside 1..%d (use NewGroupedController)", n, shm.GroupSize)
	}
	c := &Controller{
		wst: shm.NewWST(n),
		sel: ebpf.NewArrayMap(1),
	}
	c.cfg.Store(&cfg)
	return c, nil
}

// SetFilterOrder overrides the filter cascade (ablations, live policy).
func (c *Controller) SetFilterOrder(o FilterOrder) { c.order.Store(int32(o)) }

// FilterOrder returns the active cascade order.
func (c *Controller) FilterOrder() FilterOrder { return FilterOrder(c.order.Load()) }

// Config returns the controller's current configuration.
func (c *Controller) Config() Config { return *c.cfg.Load() }

// SetConfig replaces the scheduling policy at runtime — the dynamic policy
// updates the paper's HTTP control interface performs (Appendix C). The
// update is an atomic pointer swap: in-flight scheduling passes finish on
// the old policy, subsequent passes use the new one. Note: MinWorkers is
// compiled into the attached dispatch program; changing it here affects
// future Attach calls only.
func (c *Controller) SetConfig(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	c.cfg.Store(&cfg)
	return nil
}

// SetForceFallback toggles reuseport-hash fallback: while set, schedulers
// publish an empty bitmap so the kernel dispatches by plain hashing
// (Appendix C: the control interface "supports fallbacks to reuseport").
func (c *Controller) SetForceFallback(on bool) { c.fallback.Store(on) }

// ForceFallback reports whether fallback mode is on.
func (c *Controller) ForceFallback() bool { return c.fallback.Load() }

// SetSingleWinner enables the single-winner ablation: instead of the
// two-stage coarse/fine filtering, the scheduler publishes only the one
// best worker. Because userspace updates far less often than connections
// arrive, the kernel then funnels every new connection to that worker until
// the next sync — the overload failure §5.3.2's two-stage design prevents.
func (c *Controller) SetSingleWinner(on bool) { c.singleWinner.Store(on) }

// WST exposes the worker status table (diagnostics and tests).
func (c *Controller) WST() *shm.WST { return c.wst }

// SelMap exposes the kernel-facing selection map (M_sel).
func (c *Controller) SelMap() *ebpf.ArrayMap { return c.sel }

// Workers returns the worker count.
func (c *Controller) Workers() int { return c.wst.Workers() }

// AttachEBPF builds the Algorithm 2 bytecode over this controller's
// selection map and the group's sockets, verifies it, and installs it at the
// group's SO_ATTACH_REUSEPORT_EBPF hook. Socket i must belong to worker i.
func (c *Controller) AttachEBPF(g *kernel.ReuseportGroup) error {
	if len(g.Sockets()) != c.Workers() {
		return fmt.Errorf("core: group has %d sockets, controller has %d workers",
			len(g.Sockets()), c.Workers())
	}
	sa, err := g.BuildSockArray()
	if err != nil {
		return err
	}
	prog, err := BuildDispatchProgram(c.sel, sa, c.Config().MinWorkers)
	if err != nil {
		return err
	}
	g.AttachProgram(prog)
	return nil
}

// AttachNative installs the native-Go dispatch twin (the JIT-compiled
// program's stand-in) on the group.
func (c *Controller) AttachNative(g *kernel.ReuseportGroup) error {
	if len(g.Sockets()) != c.Workers() {
		return fmt.Errorf("core: group has %d sockets, controller has %d workers",
			len(g.Sockets()), c.Workers())
	}
	socks := g.Sockets()
	min := c.Config().MinWorkers
	g.AttachNative(func(hash, _ uint32) (*kernel.Socket, bool) {
		bitmap, _ := c.sel.Lookup(0)
		w, ok := NativeSelect(bitmap, hash, min)
		if !ok {
			return nil, false
		}
		return socks[w], true
	})
	return nil
}

// Instrument wires telemetry for Algorithm 1 decisions (implements Instance).
func (c *Controller) Instrument(ins Instruments) { c.tel = ins }

// InstrumentTrace wires the flight recorder into schedule_and_sync passes
// (implements Instance).
func (c *Controller) InstrumentTrace(tr *tracing.ScheduleTrace) { c.tr = tr }

// Hook returns worker id's hook as the deployment-independent interface
// (implements Instance).
func (c *Controller) Hook(id int) Hook { return c.NewWorkerHook(id) }

// NewWorkerHook returns worker id's instrumentation handle — the few lines
// Hermes adds to the epoll event loop (Fig. 9).
func (c *Controller) NewWorkerHook(id int) *WorkerHook {
	return &WorkerHook{
		c:   c,
		id:  id,
		w:   c.wst.Writer(id),
		buf: make([]shm.Metrics, 0, c.Workers()),
	}
}

// scheduleAndSync is the shared implementation behind every worker's
// schedule_and_sync() call.
func (c *Controller) scheduleAndSync(nowNS int64, buf []shm.Metrics) (ScheduleResult, []shm.Metrics) {
	buf = c.wst.Snapshot(buf[:0])
	var res ScheduleResult
	switch {
	case c.fallback.Load():
		res = ScheduleResult{Total: len(buf)} // empty set → kernel hash fallback
	case c.singleWinner.Load():
		res = ScheduleSingleWinner(nowNS, buf, *c.cfg.Load())
	default:
		res = Schedule(nowNS, buf, *c.cfg.Load(), FilterOrder(c.order.Load()))
	}

	c.scheduleCalls.Add(1)
	c.aliveSum.Add(uint64(res.Alive))
	c.passedSum.Add(uint64(res.Passed))
	if res.Passed == 0 {
		c.emptySets.Add(1)
		c.tel.EmptySets.Inc()
	}
	c.tel.Recomputes.Inc()
	c.tel.WSTReads.Add(uint64(len(buf)))
	c.tel.Passed.Observe(int64(res.Passed))

	// Publish: shared-memory word for userspace observers, eBPF map for the
	// kernel dispatcher. Both are single atomic stores; concurrent workers
	// race benignly (last write wins with a complete bitmap, §5.3.2).
	c.wst.StoreSelection(uint64(res.Bitmap))
	if err := c.sel.Update(0, uint64(res.Bitmap)); err == nil {
		c.syncs.Add(1)
		c.tel.Syncs.Inc()
	}
	return res, buf
}

// Stats is a snapshot of scheduling counters.
type Stats struct {
	ScheduleCalls uint64  // schedule_and_sync invocations
	Syncs         uint64  // successful kernel map updates (syscalls)
	AvgAlive      float64 // mean workers surviving the time filter
	AvgPassed     float64 // mean workers passing the whole cascade
	EmptySets     uint64  // passes that selected nobody (kernel fallback)
}

// Stats returns accumulated scheduling statistics.
func (c *Controller) Stats() Stats {
	calls := c.scheduleCalls.Load()
	s := Stats{
		ScheduleCalls: calls,
		Syncs:         c.syncs.Load(),
		EmptySets:     c.emptySets.Load(),
	}
	if calls > 0 {
		s.AvgAlive = float64(c.aliveSum.Load()) / float64(calls)
		s.AvgPassed = float64(c.passedSum.Load()) / float64(calls)
	}
	return s
}

// WorkerHook is one worker's view of Hermes: metric publication plus the
// embedded scheduler. Methods map 1:1 onto the Fig. 9 instrumentation.
// A hook is owned by a single worker and is not safe for concurrent use
// (matching per-process ownership of WST partitions).
type WorkerHook struct {
	c   *Controller
	id  int
	w   shm.Writer
	buf []shm.Metrics
}

// LoopEnter publishes the event-loop entry timestamp (shm_avail_update,
// Fig. 9 line 12).
func (h *WorkerHook) LoopEnter(nowNS int64) { h.w.SetLoopEnter(nowNS) }

// EventsFetched adds the epoll_wait batch size to the pending-event count
// (Fig. 9 line 14).
func (h *WorkerHook) EventsFetched(n int) {
	if n > 0 {
		h.w.AddBusy(int64(n))
	}
}

// EventHandled decrements the pending-event count (Fig. 9 line 18).
func (h *WorkerHook) EventHandled() { h.w.AddBusy(-1) }

// ConnOpened increments the accumulated-connection count (Fig. 9 line 25).
func (h *WorkerHook) ConnOpened() { h.w.AddConn(1) }

// ConnClosed decrements the accumulated-connection count (Fig. 9 line 37).
func (h *WorkerHook) ConnClosed() { h.w.AddConn(-1) }

// ScheduleAndSync runs Algorithm 1 over the whole table and synchronizes the
// result to the kernel — the schedule_and_sync() call at the end of the
// event loop (Fig. 9 line 20).
func (h *WorkerHook) ScheduleAndSync(nowNS int64) ScheduleResult {
	res, buf := h.c.scheduleAndSync(nowNS, h.buf)
	h.buf = buf
	h.c.tr.Pass(h.id, nowNS, res.Passed, res.Total)
	return res
}

// Metrics returns this worker's own published metrics (diagnostics).
func (h *WorkerHook) Metrics() shm.Metrics { return h.w.Read() }
