package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"hermes/internal/bitops"
	"hermes/internal/ebpf"
	"hermes/internal/kernel"
	"hermes/internal/shm"
	"hermes/internal/tracing"
)

// syncCache coalesces schedule_and_sync calls within one Config.SyncQuantum:
// the first caller of a quantum runs the full Snapshot → Schedule → map-sync
// pipeline and publishes its result here; later callers return it directly,
// skipping the O(workers) WST scan and the map-update syscall. Fields are
// independent atomics read without a lock: a torn read across a concurrent
// refill can pair one quantum's bitmap with a neighbour's counts, both of
// which were correctly published within the last quantum — exactly the
// staleness the quantum already admits (the kernel-facing bitmap itself is
// always the one the filling worker synced). Ordering matters only in that
// the filler stores lastNS last: a reader that observes the new timestamp
// observes payload stores no older than it.
type syncCache struct {
	lastNS atomic.Int64  // virtual time of the last real sync; sentinel = never
	gen    atomic.Uint64 // policy generation the cache was computed under
	bitmap atomic.Uint64
	meta   atomic.Uint64 // total | passed<<16 | alive<<32
}

// cacheNever marks an unfilled cache. Virtual clocks start near 0 and may be
// legitimately negative-ish in tests, so 0 is not usable as "never".
const cacheNever = math.MinInt64

func (sc *syncCache) init() { sc.lastNS.Store(cacheNever) }

// load returns the cached result if it is still valid at nowNS under policy
// generation gen and quantum q.
func (sc *syncCache) load(nowNS int64, gen uint64, q int64) (ScheduleResult, bool) {
	last := sc.lastNS.Load()
	if last == cacheNever || sc.gen.Load() != gen || nowNS < last || nowNS-last >= q {
		return ScheduleResult{}, false
	}
	meta := sc.meta.Load()
	return ScheduleResult{
		Bitmap: bitops.Bitmap64(sc.bitmap.Load()),
		Total:  int(meta & 0xffff),
		Passed: int(meta >> 16 & 0xffff),
		Alive:  int(meta >> 32 & 0xffff),
	}, true
}

// store publishes a freshly computed-and-synced result.
func (sc *syncCache) store(nowNS int64, gen uint64, res ScheduleResult) {
	sc.gen.Store(gen)
	sc.bitmap.Store(uint64(res.Bitmap))
	sc.meta.Store(uint64(res.Total)&0xffff | uint64(res.Passed)&0xffff<<16 | uint64(res.Alive)&0xffff<<32)
	sc.lastNS.Store(nowNS)
}

// Controller owns one worker group's Hermes state: the shared Worker Status
// Table, the kernel-facing selection map, and the dispatch attachment. One
// Controller serves up to 64 workers; larger fleets use GroupedController.
type Controller struct {
	cfg          atomic.Pointer[Config]
	order        atomic.Int32
	fallback     atomic.Bool   // force reuseport fallback (publish empty bitmap)
	singleWinner atomic.Bool   // ablation: publish only the single best worker
	availMask    atomic.Uint64 // bit i clear = worker i vetoed from every published bitmap
	wst          *shm.WST
	sel          *ebpf.ArrayMap

	// Sync batching (Config.SyncQuantum). polGen counts policy mutations;
	// a cached result is only served while the generation it was computed
	// under is still current.
	cache  syncCache
	polGen atomic.Uint64

	// Scheduling statistics (atomic: in real-goroutine deployments every
	// worker runs the scheduler concurrently).
	scheduleCalls atomic.Uint64
	syncs         atomic.Uint64
	syncBatched   atomic.Uint64
	passedSum     atomic.Uint64
	aliveSum      atomic.Uint64
	emptySets     atomic.Uint64

	tel Instruments
	tr  *tracing.ScheduleTrace
}

// NewController creates Hermes state for n workers (1..64).
//
// Deprecated: use New, which picks the deployment level from n.
func NewController(n int, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 || n > shm.GroupSize {
		return nil, fmt.Errorf("core: worker count %d outside 1..%d (use NewGroupedController)", n, shm.GroupSize)
	}
	c := &Controller{
		wst: shm.NewWST(n),
		sel: ebpf.NewArrayMap(1),
	}
	c.cfg.Store(&cfg)
	c.availMask.Store(^uint64(0))
	c.cache.init()
	return c, nil
}

// SetWorkerAvailable vetoes (ok=false) or re-admits (ok=true) one worker in
// every bitmap the scheduler publishes. The veto is ANDed onto Algorithm 1's
// result after the cascade, so an external availability signal — backend
// health, circuit state, a drain in progress — flows through the same
// selection map the kernel dispatch program reads: worker-load steering and
// availability become one decision. Vetoing everyone yields the empty set,
// i.e. the kernel's reuseport-hash fallback (Algorithm 2), never a black
// hole. Takes effect on the next schedule_and_sync even mid-quantum.
func (c *Controller) SetWorkerAvailable(id int, ok bool) error {
	if id < 0 || id >= c.Workers() {
		return fmt.Errorf("core: worker %d outside 0..%d", id, c.Workers()-1)
	}
	for {
		old := c.availMask.Load()
		next := old | 1<<uint(id)
		if !ok {
			next = old &^ (1 << uint(id))
		}
		if old == next {
			return nil
		}
		if c.availMask.CompareAndSwap(old, next) {
			c.polGen.Add(1)
			return nil
		}
	}
}

// AvailableMask returns the current availability veto mask (bit i set =
// worker i eligible).
func (c *Controller) AvailableMask() uint64 { return c.availMask.Load() }

// SetFilterOrder overrides the filter cascade (ablations, live policy).
func (c *Controller) SetFilterOrder(o FilterOrder) {
	c.order.Store(int32(o))
	c.polGen.Add(1)
}

// FilterOrder returns the active cascade order.
func (c *Controller) FilterOrder() FilterOrder { return FilterOrder(c.order.Load()) }

// Config returns the controller's current configuration.
func (c *Controller) Config() Config { return *c.cfg.Load() }

// SetConfig replaces the scheduling policy at runtime — the dynamic policy
// updates the paper's HTTP control interface performs (Appendix C). The
// update is an atomic pointer swap: in-flight scheduling passes finish on
// the old policy, subsequent passes use the new one. Note: MinWorkers is
// compiled into the attached dispatch program; changing it here affects
// future Attach calls only.
func (c *Controller) SetConfig(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	c.cfg.Store(&cfg)
	c.polGen.Add(1)
	return nil
}

// SetForceFallback toggles reuseport-hash fallback: while set, schedulers
// publish an empty bitmap so the kernel dispatches by plain hashing
// (Appendix C: the control interface "supports fallbacks to reuseport").
// Toggling takes effect on the next schedule_and_sync even mid-quantum.
func (c *Controller) SetForceFallback(on bool) {
	c.fallback.Store(on)
	c.polGen.Add(1)
}

// ForceFallback reports whether fallback mode is on.
func (c *Controller) ForceFallback() bool { return c.fallback.Load() }

// SetSingleWinner enables the single-winner ablation: instead of the
// two-stage coarse/fine filtering, the scheduler publishes only the one
// best worker. Because userspace updates far less often than connections
// arrive, the kernel then funnels every new connection to that worker until
// the next sync — the overload failure §5.3.2's two-stage design prevents.
func (c *Controller) SetSingleWinner(on bool) {
	c.singleWinner.Store(on)
	c.polGen.Add(1)
}

// WST exposes the worker status table (diagnostics and tests).
func (c *Controller) WST() *shm.WST { return c.wst }

// SelMap exposes the kernel-facing selection map (M_sel).
func (c *Controller) SelMap() *ebpf.ArrayMap { return c.sel }

// Workers returns the worker count.
func (c *Controller) Workers() int { return c.wst.Workers() }

// AttachEBPF builds the Algorithm 2 bytecode over this controller's
// selection map and the group's sockets, verifies it, and installs it at the
// group's SO_ATTACH_REUSEPORT_EBPF hook. Socket i must belong to worker i.
func (c *Controller) AttachEBPF(g *kernel.ReuseportGroup) error {
	if len(g.Sockets()) != c.Workers() {
		return fmt.Errorf("core: group has %d sockets, controller has %d workers",
			len(g.Sockets()), c.Workers())
	}
	sa, err := g.BuildSockArray()
	if err != nil {
		return err
	}
	prog, err := BuildDispatchProgram(c.sel, sa, c.Config().MinWorkers)
	if err != nil {
		return err
	}
	g.AttachProgram(prog)
	return nil
}

// AttachNative installs the native-Go dispatch twin (the JIT-compiled
// program's stand-in) on the group.
func (c *Controller) AttachNative(g *kernel.ReuseportGroup) error {
	if len(g.Sockets()) != c.Workers() {
		return fmt.Errorf("core: group has %d sockets, controller has %d workers",
			len(g.Sockets()), c.Workers())
	}
	socks := g.Sockets()
	min := c.Config().MinWorkers
	g.AttachNative(func(hash, _ uint32) (*kernel.Socket, bool) {
		bitmap, _ := c.sel.Lookup(0)
		w, ok := NativeSelect(bitmap, hash, min)
		if !ok {
			return nil, false
		}
		return socks[w], true
	})
	return nil
}

// Instrument wires telemetry for Algorithm 1 decisions (implements Instance).
func (c *Controller) Instrument(ins Instruments) { c.tel = ins }

// InstrumentTrace wires the flight recorder into schedule_and_sync passes
// (implements Instance).
func (c *Controller) InstrumentTrace(tr *tracing.ScheduleTrace) { c.tr = tr }

// Hook returns worker id's hook as the deployment-independent interface
// (implements Instance).
func (c *Controller) Hook(id int) Hook { return c.NewWorkerHook(id) }

// NewWorkerHook returns worker id's instrumentation handle — the few lines
// Hermes adds to the epoll event loop (Fig. 9).
func (c *Controller) NewWorkerHook(id int) *WorkerHook {
	return &WorkerHook{
		c:   c,
		id:  id,
		w:   c.wst.Writer(id),
		buf: make([]shm.Metrics, 0, c.Workers()),
	}
}

// scheduleAndSync is the shared implementation behind every worker's
// schedule_and_sync() call.
func (c *Controller) scheduleAndSync(nowNS int64, buf []shm.Metrics) (ScheduleResult, []shm.Metrics) {
	cfg := c.cfg.Load()
	gen := c.polGen.Load()
	batching := cfg.SyncQuantum > 0 && !c.fallback.Load() && !c.singleWinner.Load()
	if batching {
		if res, ok := c.cache.load(nowNS, gen, int64(cfg.SyncQuantum)); ok {
			c.syncBatched.Add(1)
			c.tel.SyncBatched.Inc()
			return res, buf
		}
	}

	buf = c.wst.Snapshot(buf[:0])
	var res ScheduleResult
	switch {
	case c.fallback.Load():
		res = ScheduleResult{Total: len(buf)} // empty set → kernel hash fallback
	case c.singleWinner.Load():
		res = ScheduleSingleWinner(nowNS, buf, *cfg)
	default:
		res = Schedule(nowNS, buf, *cfg, FilterOrder(c.order.Load()))
	}

	// Availability veto (SetWorkerAvailable): drop vetoed workers from the
	// published set. Applied after the cascade so the veto and the load
	// filters land in the same bitmap; all-ones (the default) skips the
	// branch entirely, keeping the unvetoed path bit-for-bit unchanged.
	if mask := c.availMask.Load(); mask != ^uint64(0) {
		if bm := uint64(res.Bitmap) & mask; bm != uint64(res.Bitmap) {
			res.Bitmap = bitops.Bitmap64(bm)
			res.Passed = bitops.PopCount64(bm)
		}
	}

	c.scheduleCalls.Add(1)
	c.aliveSum.Add(uint64(res.Alive))
	c.passedSum.Add(uint64(res.Passed))
	if res.Passed == 0 {
		c.emptySets.Add(1)
		c.tel.EmptySets.Inc()
	}
	c.tel.Recomputes.Inc()
	c.tel.WSTReads.Add(uint64(len(buf)))
	c.tel.Passed.Observe(int64(res.Passed))

	// Publish: shared-memory word for userspace observers, eBPF map for the
	// kernel dispatcher. Both are single atomic stores; concurrent workers
	// race benignly (last write wins with a complete bitmap, §5.3.2).
	c.wst.StoreSelection(uint64(res.Bitmap))
	if err := c.sel.Update(0, uint64(res.Bitmap)); err == nil {
		c.syncs.Add(1)
		c.tel.Syncs.Inc()
		// Only a successfully synced default-path result may serve a
		// quantum: the fallback and single-winner policies are deliberately
		// exempt from coalescing (they are ablation/override modes whose
		// tests flip them between calls at one instant), and a failed map
		// update must not suppress the next worker's retry.
		if batching {
			c.cache.store(nowNS, gen, res)
		}
	}
	return res, buf
}

// Stats is a snapshot of scheduling counters.
type Stats struct {
	ScheduleCalls uint64  // schedule_and_sync invocations that recomputed
	Syncs         uint64  // successful kernel map updates (syscalls)
	Batched       uint64  // invocations coalesced into a quantum's cached result
	AvgAlive      float64 // mean workers surviving the time filter
	AvgPassed     float64 // mean workers passing the whole cascade
	EmptySets     uint64  // passes that selected nobody (kernel fallback)
}

// Stats returns accumulated scheduling statistics.
func (c *Controller) Stats() Stats {
	calls := c.scheduleCalls.Load()
	s := Stats{
		ScheduleCalls: calls,
		Syncs:         c.syncs.Load(),
		Batched:       c.syncBatched.Load(),
		EmptySets:     c.emptySets.Load(),
	}
	if calls > 0 {
		s.AvgAlive = float64(c.aliveSum.Load()) / float64(calls)
		s.AvgPassed = float64(c.passedSum.Load()) / float64(calls)
	}
	return s
}

// WorkerHook is one worker's view of Hermes: metric publication plus the
// embedded scheduler. Methods map 1:1 onto the Fig. 9 instrumentation.
// A hook is owned by a single worker and is not safe for concurrent use
// (matching per-process ownership of WST partitions).
type WorkerHook struct {
	c   *Controller
	id  int
	w   shm.Writer
	buf []shm.Metrics
}

// LoopEnter publishes the event-loop entry timestamp (shm_avail_update,
// Fig. 9 line 12).
func (h *WorkerHook) LoopEnter(nowNS int64) { h.w.SetLoopEnter(nowNS) }

// EventsFetched adds the epoll_wait batch size to the pending-event count
// (Fig. 9 line 14).
func (h *WorkerHook) EventsFetched(n int) {
	if n > 0 {
		h.w.AddBusy(int64(n))
	}
}

// EventHandled decrements the pending-event count (Fig. 9 line 18).
func (h *WorkerHook) EventHandled() { h.w.AddBusy(-1) }

// ConnOpened increments the accumulated-connection count (Fig. 9 line 25).
func (h *WorkerHook) ConnOpened() { h.w.AddConn(1) }

// ConnClosed decrements the accumulated-connection count (Fig. 9 line 37).
func (h *WorkerHook) ConnClosed() { h.w.AddConn(-1) }

// ScheduleAndSync runs Algorithm 1 over the whole table and synchronizes the
// result to the kernel — the schedule_and_sync() call at the end of the
// event loop (Fig. 9 line 20).
func (h *WorkerHook) ScheduleAndSync(nowNS int64) ScheduleResult {
	res, buf := h.c.scheduleAndSync(nowNS, h.buf)
	h.buf = buf
	h.c.tr.Pass(h.id, nowNS, res.Passed, res.Total)
	return res
}

// Metrics returns this worker's own published metrics (diagnostics).
func (h *WorkerHook) Metrics() shm.Metrics { return h.w.Read() }
