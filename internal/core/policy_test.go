package core

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/sim"
)

func newTestController(t *testing.T) *Controller {
	t.Helper()
	c, err := NewController(4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPolicyRoundTrip(t *testing.T) {
	c := newTestController(t)
	p := PolicyOf(c)
	if p.ThetaFrac != 0.5 || p.FilterOrder != "time-conn-event" || p.ForceFallback {
		t.Fatalf("default policy: %+v", p)
	}
	p.ThetaFrac = 0.75
	p.HangThresholdMS = 30
	p.FilterOrder = "time-only"
	p.ForceFallback = true
	if err := ApplyPolicy(c, p); err != nil {
		t.Fatal(err)
	}
	got := PolicyOf(c)
	if got.ThetaFrac != 0.75 || got.HangThresholdMS != 30 ||
		got.FilterOrder != "time-only" || !got.ForceFallback {
		t.Fatalf("applied policy: %+v", got)
	}
	if c.Config().HangThreshold != 30*time.Millisecond {
		t.Fatalf("threshold: %v", c.Config().HangThreshold)
	}
}

func TestApplyPolicyRejectsInvalid(t *testing.T) {
	c := newTestController(t)
	p := PolicyOf(c)
	p.FilterOrder = "bogus"
	if err := ApplyPolicy(c, p); err == nil {
		t.Fatal("bogus order accepted")
	}
	p = PolicyOf(c)
	p.MinWorkers = 0
	if err := ApplyPolicy(c, p); err == nil {
		t.Fatal("MinWorkers=0 accepted")
	}
	// Controller must keep the old policy after a rejected update.
	if PolicyOf(c).MinWorkers != 2 {
		t.Fatal("rejected update mutated policy")
	}
}

func TestPolicyHandlerHTTP(t *testing.T) {
	c := newTestController(t)
	srv := httptest.NewServer(PolicyHandler(c))
	defer srv.Close()

	// GET current policy.
	resp, err := http.Get(srv.URL + "/policy")
	if err != nil {
		t.Fatal(err)
	}
	var p Policy
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if p.ThetaFrac != 0.5 {
		t.Fatalf("GET policy: %+v", p)
	}

	// PUT an update.
	p.ThetaFrac = 1.25
	p.ForceFallback = true
	body, _ := json.Marshal(p)
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/policy", strings.NewReader(string(body)))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	if got := c.Config().ThetaFrac; got != 1.25 {
		t.Fatalf("theta after PUT: %v", got)
	}
	if !c.ForceFallback() {
		t.Fatal("fallback not applied")
	}

	// PUT garbage → 400; PUT invalid → 422.
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/policy", strings.NewReader("{nope"))
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status %d", resp.StatusCode)
	}
	p.MaxEvents = 0
	body, _ = json.Marshal(p)
	req, _ = http.NewRequest(http.MethodPut, srv.URL+"/policy", strings.NewReader(string(body)))
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid status %d", resp.StatusCode)
	}

	// DELETE → 405.
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/policy", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}

	// Status endpoint reflects worker metrics.
	h := c.NewWorkerHook(2)
	h.LoopEnter(12345)
	h.ConnOpened()
	resp, err = http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Workers []struct {
			Worker int   `json:"worker"`
			Conn   int64 `json:"conn"`
		} `json:"workers"`
		Selection string `json:"selection"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(status.Workers) != 4 || status.Workers[2].Conn != 1 {
		t.Fatalf("status: %+v", status)
	}
	if len(status.Selection) != 64 {
		t.Fatalf("selection bitmap render: %q", status.Selection)
	}
}

// Forcing fallback live must switch kernel dispatch to pure hashing and
// back, without re-attaching anything.
func TestForceFallbackLive(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := kernel.NewNetStack(eng, kernel.WakeExclusiveLIFO)
	g, _ := ns.ListenReuseport(80, 4, 0)
	c := newTestController(t)
	if err := c.AttachEBPF(g); err != nil {
		t.Fatal(err)
	}
	now := int64(time.Second)
	hooks := make([]*WorkerHook, 4)
	for i := range hooks {
		hooks[i] = c.NewWorkerHook(i)
		hooks[i].LoopEnter(now)
	}
	// Only workers 0,1 fresh → bitmap {0,1}.
	hooks[2].LoopEnter(now - int64(c.Config().HangThreshold) - 1)
	hooks[3].LoopEnter(now - int64(c.Config().HangThreshold) - 1)
	hooks[0].ScheduleAndSync(now)
	for i := uint32(0); i < 200; i++ {
		ns.DeliverSYN(kernel.FourTuple{SrcIP: i, SrcPort: uint16(i), DstIP: 1, DstPort: 80}, nil)
	}
	if g.Sockets()[2].QueueLen()+g.Sockets()[3].QueueLen() != 0 {
		t.Fatal("stale workers received traffic before fallback")
	}

	c.SetForceFallback(true)
	res := hooks[0].ScheduleAndSync(now)
	if res.Passed != 0 {
		t.Fatalf("fallback pass selected %d workers", res.Passed)
	}
	for i := uint32(200); i < 400; i++ {
		ns.DeliverSYN(kernel.FourTuple{SrcIP: i, SrcPort: uint16(i), DstIP: 1, DstPort: 80}, nil)
	}
	if g.Sockets()[2].QueueLen()+g.Sockets()[3].QueueLen() == 0 {
		t.Fatal("fallback did not hash across all workers")
	}

	c.SetForceFallback(false)
	hooks[0].ScheduleAndSync(now)
	before2, before3 := g.Sockets()[2].QueueLen(), g.Sockets()[3].QueueLen()
	for i := uint32(400); i < 600; i++ {
		ns.DeliverSYN(kernel.FourTuple{SrcIP: i, SrcPort: uint16(i), DstIP: 1, DstPort: 80}, nil)
	}
	if g.Sockets()[2].QueueLen() != before2 || g.Sockets()[3].QueueLen() != before3 {
		t.Fatal("disabling fallback did not restore directed dispatch")
	}
}
