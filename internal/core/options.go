package core

import (
	"hermes/internal/kernel"
	"hermes/internal/shm"
	"hermes/internal/telemetry"
	"hermes/internal/tracing"
)

// Hook is the per-worker instrumentation surface — the few lines Hermes adds
// to an event loop (Fig. 9) — independent of whether the deployment is
// single-level or two-level. Implemented by *WorkerHook and
// *GroupedWorkerHook. A hook is owned by one worker and is not safe for
// concurrent use.
type Hook interface {
	LoopEnter(nowNS int64)
	EventsFetched(n int)
	EventHandled()
	ConnOpened()
	ConnClosed()
	ScheduleAndSync(nowNS int64) ScheduleResult
}

// Instance is the deployment-independent controller surface returned by New:
// everything a load balancer needs to run Hermes without caring whether the
// fleet fits one 64-worker group or spans several. Implemented by
// *Controller and *GroupedController; callers needing deployment-specific
// control (fallback toggles, per-group maps) type-assert to the concrete
// type.
type Instance interface {
	Workers() int
	Hook(id int) Hook
	AttachEBPF(g *kernel.ReuseportGroup) error
	AttachNative(g *kernel.ReuseportGroup) error
	SetFilterOrder(o FilterOrder)
	Instrument(ins Instruments)
	InstrumentTrace(tr *tracing.ScheduleTrace)
}

// Instruments are the telemetry handles for Algorithm 1 decisions. Nil
// handles record nothing; see package telemetry.
type Instruments struct {
	// Recomputes counts schedule_and_sync invocations (controller recomputes).
	Recomputes *telemetry.Counter
	// Syncs counts successful kernel selection-map updates (syscalls).
	Syncs *telemetry.Counter
	// SyncBatched counts schedule_and_sync invocations coalesced into a
	// quantum's cached result (Config.SyncQuantum) — calls that paid neither
	// a WST scan nor a map-update syscall.
	SyncBatched *telemetry.Counter
	// WSTReads counts Worker Status Table rows read by scheduling passes.
	WSTReads *telemetry.Counter
	// EmptySets counts passes that selected nobody (kernel hash fallback).
	EmptySets *telemetry.Counter
	// Passed observes how many workers survived the whole cascade per pass.
	Passed *telemetry.Histogram
}

type options struct {
	groups int
	key    GroupKey
	ins    Instruments
	hasIns bool
}

// Option configures New.
type Option func(*options)

// WithGroups splits the fleet into exactly nGroups independent groups
// (two-level deployment, §7), overriding the automatic ceil(n/64) split.
// n must divide evenly into spans of at most 64.
func WithGroups(nGroups int) Option {
	return func(o *options) { o.groups = nGroups }
}

// WithGroupKey sets the level-1 dispatch key for two-level deployments
// (GroupByHash balances; GroupByLocalityHash keeps same-destination traffic
// in one group, Fig. A6). Ignored by single-level deployments.
func WithGroupKey(key GroupKey) Option {
	return func(o *options) { o.key = key }
}

// WithInstruments wires telemetry at construction time (equivalent to
// calling Instrument on the result).
func WithInstruments(ins Instruments) Option {
	return func(o *options) { o.ins = ins; o.hasIns = true }
}

// New creates Hermes state for n workers. Fleets of at most 64 workers get
// the single-level deployment (*Controller); larger fleets — or any fleet
// with WithGroups — get the two-level deployment (*GroupedController) with
// ceil(n/64) equal-span groups unless WithGroups says otherwise.
//
// New replaces the NewController / NewGroupedController /
// NewGroupedControllerWithGroups trio; those remain as deprecated wrappers.
func New(n int, cfg Config, opts ...Option) (Instance, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}

	var inst Instance
	var err error
	switch {
	case o.groups > 0:
		inst, err = NewGroupedControllerWithGroups(n, o.groups, cfg, o.key)
	case n > shm.GroupSize:
		inst, err = NewGroupedController(n, cfg, o.key)
	default:
		inst, err = NewController(n, cfg)
	}
	if err != nil {
		return nil, err
	}
	if o.hasIns {
		inst.Instrument(o.ins)
	}
	return inst, nil
}
