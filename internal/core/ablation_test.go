package core

import (
	"testing"
	"time"

	"hermes/internal/shm"
)

func TestScheduleSingleWinnerPicksLeastLoaded(t *testing.T) {
	cfg := DefaultConfig()
	now := int64(time.Second)
	ms := freshMetrics(4, now)
	ms[0].Conn = 5
	ms[1].Conn = 2
	ms[2].Conn = 2
	ms[2].Busy = 3
	ms[3].Conn = 9
	// Worker 1 ties worker 2 on conns but has fewer pending events.
	res := ScheduleSingleWinner(now, ms, cfg)
	if res.Passed != 1 || !res.Bitmap.Has(1) {
		t.Fatalf("single winner: %+v", res)
	}
	if res.Alive != 4 {
		t.Fatalf("alive = %d", res.Alive)
	}
}

func TestScheduleSingleWinnerSkipsHung(t *testing.T) {
	cfg := DefaultConfig()
	now := int64(time.Second)
	ms := freshMetrics(3, now)
	ms[0].Conn = 0 // best, but hung:
	ms[0].LoopEnterNS = now - int64(cfg.HangThreshold) - 1
	ms[1].Conn = 7
	ms[2].Conn = 4
	res := ScheduleSingleWinner(now, ms, cfg)
	if !res.Bitmap.Has(2) || res.Passed != 1 {
		t.Fatalf("hung worker not skipped: %+v", res)
	}
	// All hung → empty.
	for i := range ms {
		ms[i].LoopEnterNS = now - int64(cfg.HangThreshold) - 1
	}
	if res := ScheduleSingleWinner(now, ms, cfg); res.Passed != 0 {
		t.Fatalf("all-hung single winner: %+v", res)
	}
	// Degenerate inputs.
	if res := ScheduleSingleWinner(now, nil, cfg); res.Passed != 0 {
		t.Fatal("nil metrics")
	}
	if res := ScheduleSingleWinner(now, make([]shm.Metrics, 65), cfg); res.Passed != 0 {
		t.Fatal("oversized metrics")
	}
}

func TestControllerSingleWinnerPublishesOneBit(t *testing.T) {
	c, err := NewController(4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.SetSingleWinner(true)
	now := int64(time.Second)
	hooks := make([]*WorkerHook, 4)
	for i := range hooks {
		hooks[i] = c.NewWorkerHook(i)
		hooks[i].LoopEnter(now)
		hooks[i].ConnOpened()
	}
	hooks[0].ConnOpened() // worker 0 now heaviest
	res := hooks[0].ScheduleAndSync(now)
	if res.Passed != 1 {
		t.Fatalf("single-winner published %d bits", res.Passed)
	}
	if res.Bitmap.Has(0) {
		t.Fatal("heaviest worker selected as single winner")
	}
	if got, _ := c.SelMap().Lookup(0); got != uint64(res.Bitmap) {
		t.Fatal("kernel map out of sync")
	}
}

func TestGroupedControllerFilterOrderAndHookCounters(t *testing.T) {
	gc, err := NewGroupedController(96, DefaultConfig(), GroupByTupleHash)
	if err != nil {
		t.Fatal(err)
	}
	gc.SetFilterOrder(OrderTimeOnly)

	h := gc.NewWorkerHook(70) // group 1, slot 6
	h.LoopEnter(100)
	h.EventsFetched(4)
	h.EventHandled()
	h.ConnOpened()
	h.ConnOpened()
	h.ConnClosed()
	h.EventsFetched(-3) // ignored

	// The metrics must land in group 1's table, slot 6.
	snap := gc.wst.Group(1).Snapshot(nil)
	m := snap[6]
	if m.LoopEnterNS != 100 || m.Busy != 3 || m.Conn != 1 {
		t.Fatalf("grouped hook metrics: %+v", m)
	}
	// Group 0 untouched.
	for i, m := range gc.wst.Group(0).Snapshot(nil) {
		if m.Busy != 0 || m.Conn != 0 {
			t.Fatalf("group 0 slot %d polluted: %+v", i, m)
		}
	}

	// ScheduleAndSync publishes only the worker's own group.
	res := h.ScheduleAndSync(100)
	if res.Total != 32 { // group 1 of 96 workers spans 64..95 → 32 workers
		t.Fatalf("schedule total = %d, want 32", res.Total)
	}
	if v, _ := gc.SelMap(1).Lookup(0); v != uint64(res.Bitmap) {
		t.Fatal("group 1 selmap not synced")
	}
	if v, _ := gc.SelMap(0).Lookup(0); v != 0 {
		t.Fatal("group 0 selmap polluted")
	}
}
