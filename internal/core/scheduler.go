package core

import (
	"hermes/internal/bitops"
	"hermes/internal/shm"
)

// FilterOrder selects the cascade order of Algorithm 1's three filters.
// The paper weighs stability over latency: hang detection first, then
// connection count (surge risk), then pending events (responsiveness)
// (§5.2.2 "Worker filtering order"). The alternative orders exist for the
// filter-order ablation.
type FilterOrder uint8

// Cascade orders.
const (
	// OrderTimeConnEvent is the paper's order.
	OrderTimeConnEvent FilterOrder = iota
	// OrderTimeEventConn filters by pending events before connections.
	OrderTimeEventConn
	// OrderTimeOnly applies only hang detection (single-metric ablation).
	OrderTimeOnly
)

// ScheduleResult reports one scheduling pass, feeding the Fig. 14 pass-ratio
// and call-frequency measurements.
type ScheduleResult struct {
	// Bitmap has bit i set iff worker i passed every filter stage.
	Bitmap bitops.Bitmap64
	// Alive is how many workers survived the time filter.
	Alive int
	// Passed is the final selected count (== Bitmap.Count()).
	Passed int
	// Total is the table size.
	Total int
}

// Schedule runs Algorithm 1's cascading coarse-grained filter over a WST
// snapshot. It is a pure function of (now, metrics, config): no locks, no
// allocation, O(n) — the properties §5.3.2 requires so that every worker can
// afford to run it at the end of every event loop.
func Schedule(nowNS int64, metrics []shm.Metrics, cfg Config, order FilterOrder) ScheduleResult {
	res := ScheduleResult{Total: len(metrics)}
	if len(metrics) == 0 || len(metrics) > shm.GroupSize {
		return res
	}

	// Stage 1 — FilterTime: drop workers whose event loop has not turned
	// over within the hang threshold (Algorithm 1 lines 9-10).
	var alive bitops.Bitmap64
	thresh := int64(cfg.HangThreshold)
	for i, m := range metrics {
		if nowNS-m.LoopEnterNS < thresh {
			alive = alive.Set(i)
		}
	}
	res.Alive = alive.Count()
	if res.Alive == 0 {
		// Every worker looks hung: publish the empty set; the kernel will
		// fall back to reuseport hashing and the alert path takes over
		// (§5.3.2 "if all workers hang").
		return res
	}

	sel := alive
	switch order {
	case OrderTimeConnEvent:
		sel = filterCount(sel, metrics, cfg.ThetaFrac, func(m shm.Metrics) int64 { return m.Conn })
		sel = filterCount(sel, metrics, cfg.ThetaFrac, func(m shm.Metrics) int64 { return m.Busy })
	case OrderTimeEventConn:
		sel = filterCount(sel, metrics, cfg.ThetaFrac, func(m shm.Metrics) int64 { return m.Busy })
		sel = filterCount(sel, metrics, cfg.ThetaFrac, func(m shm.Metrics) int64 { return m.Conn })
	case OrderTimeOnly:
		// hang detection only
	}

	res.Bitmap = sel
	res.Passed = sel.Count()
	return res
}

// ScheduleSingleWinner is the single-winner ablation: hang-filter, then
// pick the one worker with the fewest connections (ties by pending events,
// then index). Publishing a single worker per sync is the design §5.3.2
// rejects; pair it with MinWorkers=1 so the kernel actually uses it.
func ScheduleSingleWinner(nowNS int64, metrics []shm.Metrics, cfg Config) ScheduleResult {
	res := ScheduleResult{Total: len(metrics)}
	if len(metrics) == 0 || len(metrics) > shm.GroupSize {
		return res
	}
	thresh := int64(cfg.HangThreshold)
	best := -1
	for i, m := range metrics {
		if nowNS-m.LoopEnterNS >= thresh {
			continue
		}
		res.Alive++
		if best == -1 {
			best = i
			continue
		}
		b := metrics[best]
		if m.Conn < b.Conn || (m.Conn == b.Conn && m.Busy < b.Busy) {
			best = i
		}
	}
	if best >= 0 {
		res.Bitmap = res.Bitmap.Set(best)
		res.Passed = 1
	}
	return res
}

// filterCount is Algorithm 1's FilterCount: keep workers whose metric is
// strictly below Avg + θ, with θ expressed as a fraction of the average
// (Fig. 15's θ/Avg axis) and the average taken over the current candidate
// set. The comparison is strict, as in the paper: with θ = 0 a uniformly
// loaded fleet selects nobody and the kernel falls back to reuseport
// hashing — exactly the too-few-workers pathology the offset exists to
// prevent. Unloaded workers (metric ≤ 0; negatives are transient torn
// reads) always pass.
func filterCount(w bitops.Bitmap64, metrics []shm.Metrics, thetaFrac float64, get func(shm.Metrics) int64) bitops.Bitmap64 {
	n := w.Count()
	if n == 0 {
		return w
	}
	var sum int64
	for i := 0; i < len(metrics); i++ {
		if w.Has(i) {
			if v := get(metrics[i]); v > 0 {
				sum += v
			}
		}
	}
	avg := float64(sum) / float64(n)
	limit := avg * (1 + thetaFrac)

	var out bitops.Bitmap64
	for i := 0; i < len(metrics); i++ {
		if !w.Has(i) {
			continue
		}
		v := get(metrics[i])
		if v <= 0 || float64(v) < limit {
			out = out.Set(i)
		}
	}
	return out
}
