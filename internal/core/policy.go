package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Policy is the JSON shape of the control interface the paper's scheduler
// exposes (Appendix C: "our scheduler exposes an HTTP interface that allows
// dynamic policy updates, supports fallbacks to reuseport, and facilitates
// rapid iteration of future scheduling algorithms").
type Policy struct {
	ThetaFrac       float64 `json:"theta_frac"`
	HangThresholdMS float64 `json:"hang_threshold_ms"`
	MinWorkers      int     `json:"min_workers"`
	EpollTimeoutMS  float64 `json:"epoll_timeout_ms"`
	MaxEvents       int     `json:"max_events"`
	FilterOrder     string  `json:"filter_order"`
	ForceFallback   bool    `json:"force_fallback"`
}

func orderName(o FilterOrder) string {
	switch o {
	case OrderTimeEventConn:
		return "time-event-conn"
	case OrderTimeOnly:
		return "time-only"
	default:
		return "time-conn-event"
	}
}

func parseOrder(s string) (FilterOrder, error) {
	switch s {
	case "", "time-conn-event":
		return OrderTimeConnEvent, nil
	case "time-event-conn":
		return OrderTimeEventConn, nil
	case "time-only":
		return OrderTimeOnly, nil
	default:
		return 0, fmt.Errorf("core: unknown filter order %q", s)
	}
}

// PolicyOf snapshots the controller's live policy.
func PolicyOf(c *Controller) Policy {
	cfg := c.Config()
	return Policy{
		ThetaFrac:       cfg.ThetaFrac,
		HangThresholdMS: float64(cfg.HangThreshold) / 1e6,
		MinWorkers:      cfg.MinWorkers,
		EpollTimeoutMS:  float64(cfg.EpollTimeout) / 1e6,
		MaxEvents:       cfg.MaxEvents,
		FilterOrder:     orderName(c.FilterOrder()),
		ForceFallback:   c.ForceFallback(),
	}
}

// ApplyPolicy installs p onto the controller (atomic swap; live schedulers
// pick it up on their next pass).
func ApplyPolicy(c *Controller, p Policy) error {
	order, err := parseOrder(p.FilterOrder)
	if err != nil {
		return err
	}
	cfg := c.Config()
	cfg.ThetaFrac = p.ThetaFrac
	cfg.HangThreshold = time.Duration(p.HangThresholdMS * 1e6)
	cfg.MinWorkers = p.MinWorkers
	cfg.EpollTimeout = time.Duration(p.EpollTimeoutMS * 1e6)
	cfg.MaxEvents = p.MaxEvents
	if err := c.SetConfig(cfg); err != nil {
		return err
	}
	c.SetFilterOrder(order)
	c.SetForceFallback(p.ForceFallback)
	return nil
}

// PolicyHandler serves the control interface for one controller:
//
//	GET  /policy  → current policy JSON
//	PUT  /policy  ← policy JSON (validated; atomic swap)
//	GET  /status  → scheduling statistics + live worker metrics
//
// Mount it on any mux; it performs no authentication (production would sit
// behind the control-plane's).
func PolicyHandler(c *Controller) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/policy", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, PolicyOf(c))
		case http.MethodPut, http.MethodPost:
			var p Policy
			if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
				return
			}
			if err := ApplyPolicy(c, p); err != nil {
				writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
				return
			}
			writeJSON(w, http.StatusOK, PolicyOf(c))
		default:
			w.Header().Set("Allow", "GET, PUT")
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use GET or PUT"})
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "use GET"})
			return
		}
		type workerStatus struct {
			Worker      int   `json:"worker"`
			LoopEnterNS int64 `json:"loop_enter_ns"`
			Busy        int64 `json:"busy"`
			Conn        int64 `json:"conn"`
		}
		snap := c.WST().Snapshot(nil)
		ws := make([]workerStatus, len(snap))
		for i, m := range snap {
			ws[i] = workerStatus{Worker: i, LoopEnterNS: m.LoopEnterNS, Busy: m.Busy, Conn: m.Conn}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"stats":     c.Stats(),
			"selection": fmt.Sprintf("%064b", c.WST().LoadSelection()),
			"workers":   ws,
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
