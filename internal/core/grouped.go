package core

import (
	"fmt"

	"hermes/internal/ebpf"
	"hermes/internal/kernel"
	"hermes/internal/shm"
	"hermes/internal/tracing"
)

// GroupedController is the two-level Hermes deployment (§7): workers are
// partitioned into groups of ≤64, each group has an independent WST and
// selection map updated only by its own workers, and the kernel dispatcher
// first hashes a connection to a group, then bitmap-selects within it.
// With GroupByLocalityHash as the level-1 key it doubles as the
// cache-locality mode of Fig. A6: same-destination traffic stays in one
// group (locality) while load still spreads within the group (balance).
// One group degenerates to standard Hermes; one worker per group degenerates
// to plain reuseport — the generalization the appendix points out.
type GroupedController struct {
	cfg    Config
	order  FilterOrder
	key    GroupKey
	wst    *shm.Grouped
	sels   []*ebpf.ArrayMap
	caches []syncCache // per-group sync batching (groups are independent loops)
	tel    Instruments
	tr     *tracing.ScheduleTrace
}

// NewGroupedController creates Hermes state for n workers split into
// ceil(n/64) equal-span groups keyed by key.
//
// Deprecated: use New, which picks the deployment level from n.
func NewGroupedController(n int, cfg Config, key GroupKey) (*GroupedController, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("core: worker count %d < 1", n)
	}
	g := &GroupedController{cfg: cfg, key: key, wst: shm.NewGrouped(n)}
	g.initGroups()
	return g, nil
}

// NewGroupedControllerWithGroups creates n workers split into exactly
// nGroups groups (locality tuning: the grouping granularity controls the
// locality/balance trade-off, Fig. A6). n must divide evenly into nGroups
// spans of at most 64.
//
// Deprecated: use New with WithGroups(nGroups).
func NewGroupedControllerWithGroups(n, nGroups int, cfg Config, key GroupKey) (*GroupedController, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nGroups < 1 || n < nGroups || n%nGroups != 0 {
		return nil, fmt.Errorf("core: cannot split %d workers into %d equal groups", n, nGroups)
	}
	span := n / nGroups
	if span > shm.GroupSize {
		return nil, fmt.Errorf("core: group span %d exceeds %d", span, shm.GroupSize)
	}
	g := &GroupedController{cfg: cfg, key: key, wst: shm.NewGroupedSpan(n, span)}
	g.initGroups()
	return g, nil
}

func (g *GroupedController) initGroups() {
	g.caches = make([]syncCache, g.wst.Groups())
	for i := 0; i < g.wst.Groups(); i++ {
		g.sels = append(g.sels, ebpf.NewArrayMap(1))
		g.caches[i].init()
	}
}

// SetFilterOrder overrides the filter cascade (ablations).
func (g *GroupedController) SetFilterOrder(o FilterOrder) { g.order = o }

// Workers returns the total worker count.
func (g *GroupedController) Workers() int { return g.wst.Workers() }

// Groups returns the group count.
func (g *GroupedController) Groups() int { return g.wst.Groups() }

// SelMap returns group gi's selection map.
func (g *GroupedController) SelMap(gi int) *ebpf.ArrayMap { return g.sels[gi] }

// AttachEBPF builds and installs the two-level dispatch program. The
// reuseport group's socket i must belong to global worker i.
func (g *GroupedController) AttachEBPF(rg *kernel.ReuseportGroup) error {
	if len(rg.Sockets()) != g.Workers() {
		return fmt.Errorf("core: group has %d sockets, controller has %d workers",
			len(rg.Sockets()), g.Workers())
	}
	socks := rg.Sockets()
	groups := make([]GroupMaps, g.Groups())
	for gi := range groups {
		span := g.wst.Group(gi).Workers()
		sa := ebpf.NewSockArray(span)
		for slot := 0; slot < span; slot++ {
			if err := sa.Put(uint32(slot), socks[g.wst.GlobalID(gi, slot)]); err != nil {
				return err
			}
		}
		groups[gi] = GroupMaps{Sel: g.sels[gi], Socks: sa}
	}
	prog, err := BuildGroupedDispatchProgram(groups, g.cfg.MinWorkers, g.key)
	if err != nil {
		return err
	}
	rg.AttachProgram(prog)
	return nil
}

// AttachNative installs the native two-level selector.
func (g *GroupedController) AttachNative(rg *kernel.ReuseportGroup) error {
	if len(rg.Sockets()) != g.Workers() {
		return fmt.Errorf("core: group has %d sockets, controller has %d workers",
			len(rg.Sockets()), g.Workers())
	}
	socks := rg.Sockets()
	min := g.cfg.MinWorkers
	key := g.key
	rg.AttachNative(func(hash, localityHash uint32) (*kernel.Socket, bool) {
		l1 := hash
		if key == GroupByLocalityHash {
			l1 = localityHash
		}
		gi := int(reciprocalScale32(l1, uint32(g.Groups())))
		bitmap, _ := g.sels[gi].Lookup(0)
		w, ok := NativeSelect(bitmap, mix32(hash), min)
		if !ok {
			return nil, false
		}
		return socks[g.wst.GlobalID(gi, w)], true
	})
	return nil
}

// Instrument wires telemetry for Algorithm 1 decisions (implements Instance).
func (g *GroupedController) Instrument(ins Instruments) { g.tel = ins }

// InstrumentTrace wires the flight recorder into schedule_and_sync passes
// (implements Instance).
func (g *GroupedController) InstrumentTrace(tr *tracing.ScheduleTrace) { g.tr = tr }

// Hook returns global worker id's hook as the deployment-independent
// interface (implements Instance).
func (g *GroupedController) Hook(id int) Hook { return g.NewWorkerHook(id) }

// NewWorkerHook returns global worker id's hook. The embedded scheduler
// operates on the worker's own group only: groups are independent control
// loops (§7).
func (g *GroupedController) NewWorkerHook(id int) *GroupedWorkerHook {
	gi, slot := g.wst.Locate(id)
	return &GroupedWorkerHook{
		gc:    g,
		id:    id,
		group: gi,
		slot:  slot,
		w:     g.wst.Group(gi).Writer(slot),
		buf:   make([]shm.Metrics, 0, g.wst.Group(gi).Workers()),
	}
}

// GroupedWorkerHook is WorkerHook's two-level counterpart.
type GroupedWorkerHook struct {
	gc    *GroupedController
	id    int // global worker id (the trace track)
	group int
	slot  int
	w     shm.Writer
	buf   []shm.Metrics
}

// LoopEnter publishes the event-loop entry timestamp.
func (h *GroupedWorkerHook) LoopEnter(nowNS int64) { h.w.SetLoopEnter(nowNS) }

// EventsFetched adds the epoll_wait batch size to the pending-event count.
func (h *GroupedWorkerHook) EventsFetched(n int) {
	if n > 0 {
		h.w.AddBusy(int64(n))
	}
}

// EventHandled decrements the pending-event count.
func (h *GroupedWorkerHook) EventHandled() { h.w.AddBusy(-1) }

// ConnOpened increments the accumulated-connection count.
func (h *GroupedWorkerHook) ConnOpened() { h.w.AddConn(1) }

// ConnClosed decrements the accumulated-connection count.
func (h *GroupedWorkerHook) ConnClosed() { h.w.AddConn(-1) }

// ScheduleAndSync runs Algorithm 1 over this worker's group and publishes
// the group bitmap. With Config.SyncQuantum set, one recompute per group per
// quantum serves every group member's call (groups batch independently —
// their WSTs and selection maps are disjoint).
func (h *GroupedWorkerHook) ScheduleAndSync(nowNS int64) ScheduleResult {
	cache := &h.gc.caches[h.group]
	if q := h.gc.cfg.SyncQuantum; q > 0 {
		if res, ok := cache.load(nowNS, 0, int64(q)); ok {
			h.gc.tel.SyncBatched.Inc()
			h.gc.tr.Pass(h.id, nowNS, res.Passed, res.Total)
			return res
		}
	}
	wst := h.gc.wst.Group(h.group)
	h.buf = wst.Snapshot(h.buf[:0])
	res := Schedule(nowNS, h.buf, h.gc.cfg, h.gc.order)
	h.gc.tel.Recomputes.Inc()
	h.gc.tel.WSTReads.Add(uint64(len(h.buf)))
	h.gc.tel.Passed.Observe(int64(res.Passed))
	if res.Passed == 0 {
		h.gc.tel.EmptySets.Inc()
	}
	wst.StoreSelection(uint64(res.Bitmap))
	if err := h.gc.sels[h.group].Update(0, uint64(res.Bitmap)); err == nil {
		h.gc.tel.Syncs.Inc()
		if h.gc.cfg.SyncQuantum > 0 {
			cache.store(nowNS, 0, res)
		}
	}
	h.gc.tr.Pass(h.id, nowNS, res.Passed, res.Total)
	return res
}

func reciprocalScale32(val, n uint32) uint32 {
	return uint32(uint64(val) * uint64(n) >> 32)
}
