package core

import (
	"testing"
	"time"
)

func batchedConfig(q time.Duration) Config {
	cfg := DefaultConfig()
	cfg.SyncQuantum = q
	return cfg
}

// Within one quantum only the first schedule_and_sync recomputes and syncs;
// the rest coalesce onto its result. Past the quantum boundary the next call
// recomputes.
func TestSyncBatchingCoalescesWithinQuantum(t *testing.T) {
	const workers = 4
	c, err := NewController(workers, batchedConfig(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	hooks := make([]*WorkerHook, workers)
	for i := range hooks {
		hooks[i] = c.NewWorkerHook(i)
		hooks[i].LoopEnter(0)
	}

	first := hooks[0].ScheduleAndSync(0)
	if first.Passed != workers {
		t.Fatalf("first pass selected %d of %d", first.Passed, workers)
	}
	for i := 1; i < workers; i++ {
		res := hooks[i].ScheduleAndSync(50_000) // +50µs: same quantum
		if res != first {
			t.Fatalf("worker %d got %+v, want cached %+v", i, res, first)
		}
	}
	st := c.Stats()
	if st.ScheduleCalls != 1 || st.Syncs != 1 {
		t.Fatalf("within quantum: %d recomputes, %d syncs, want 1 and 1", st.ScheduleCalls, st.Syncs)
	}
	if st.Batched != workers-1 {
		t.Fatalf("batched %d calls, want %d", st.Batched, workers-1)
	}

	// Quantum expired: next call recomputes and re-syncs.
	hooks[1].ScheduleAndSync(100_000)
	st = c.Stats()
	if st.ScheduleCalls != 2 || st.Syncs != 2 {
		t.Fatalf("after quantum: %d recomputes, %d syncs, want 2 and 2", st.ScheduleCalls, st.Syncs)
	}
}

// The cached result must reflect reality at the time it was computed — and
// must NOT mask state changes past the quantum. A worker hanging right after
// a sync is the dangerous case: the quantum bounds how long its bit stays
// published, and SyncQuantum < HangThreshold keeps that window safe.
func TestSyncBatchingQuantumBoundsStaleness(t *testing.T) {
	const workers = 3
	cfg := batchedConfig(time.Millisecond)
	c, err := NewController(workers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hooks := make([]*WorkerHook, workers)
	for i := range hooks {
		hooks[i] = c.NewWorkerHook(i)
		hooks[i].LoopEnter(0)
	}
	if res := hooks[0].ScheduleAndSync(0); res.Passed != workers {
		t.Fatalf("selected %d of %d", res.Passed, workers)
	}

	// Worker 2 never re-enters its loop. Within the quantum, cached results
	// still include it (bounded staleness, by design).
	hang := int64(cfg.HangThreshold) * 2
	for i := 0; i < 2; i++ {
		hooks[i].LoopEnter(hang)
	}
	if res := hooks[0].ScheduleAndSync(int64(cfg.SyncQuantum) - 1); res.Passed != workers {
		t.Fatalf("mid-quantum cache dropped workers: %d of %d", res.Passed, workers)
	}
	// Past the quantum the recompute sees the hang.
	res := hooks[0].ScheduleAndSync(hang)
	if res.Passed != workers-1 || res.Bitmap.Has(2) {
		t.Fatalf("post-quantum pass kept hung worker: passed=%d bitmap=%b", res.Passed, uint64(res.Bitmap))
	}
	if bm, _ := c.SelMap().Lookup(0); bm&(1<<2) != 0 {
		t.Fatalf("hung worker still in kernel map: %b", bm)
	}
}

// Policy flips (fallback, single-winner, config swaps) must take effect on
// the very next call even when a quantum's cached result is still fresh —
// the live-policy tests flip these at one virtual instant.
func TestSyncBatchingPolicyFlipInvalidates(t *testing.T) {
	const workers = 4
	c, err := NewController(workers, batchedConfig(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	h := c.NewWorkerHook(0)
	h.LoopEnter(0)

	if res := h.ScheduleAndSync(0); res.Passed != workers {
		t.Fatalf("selected %d of %d", res.Passed, workers)
	}
	c.SetForceFallback(true)
	if res := h.ScheduleAndSync(1); res.Passed != 0 {
		t.Fatalf("fallback not applied mid-quantum: passed=%d", res.Passed)
	}
	if bm, _ := c.SelMap().Lookup(0); bm != 0 {
		t.Fatalf("kernel map not emptied by fallback: %b", bm)
	}
	c.SetForceFallback(false)
	// Same instant: the pre-fallback cache entry (same timestamp, same
	// quantum) must not resurface — its generation is stale.
	if res := h.ScheduleAndSync(2); res.Passed != workers {
		t.Fatalf("stale pre-fallback cache served after re-enable: passed=%d", res.Passed)
	}

	// Fallback/single-winner results themselves never populate the cache:
	// two consecutive fallback calls both recompute.
	c.SetForceFallback(true)
	h.ScheduleAndSync(3)
	h.ScheduleAndSync(4)
	st := c.Stats()
	if st.Batched != 0 {
		t.Fatalf("override-mode calls were batched: %d", st.Batched)
	}
}

// SyncQuantum=0 (the default) disables batching entirely: N calls → N
// recomputes and N syncs, the paper's literal behaviour.
func TestSyncBatchingDisabledByDefault(t *testing.T) {
	if q := DefaultConfig().SyncQuantum; q != 0 {
		t.Fatalf("DefaultConfig.SyncQuantum = %v, want 0", q)
	}
	c, err := NewController(2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := c.NewWorkerHook(0)
	h.LoopEnter(0)
	for i := 0; i < 5; i++ {
		h.ScheduleAndSync(int64(i))
	}
	st := c.Stats()
	if st.ScheduleCalls != 5 || st.Syncs != 5 || st.Batched != 0 {
		t.Fatalf("unbatched controller: calls=%d syncs=%d batched=%d", st.ScheduleCalls, st.Syncs, st.Batched)
	}
}

// Grouped deployments batch per group: one recompute per group per quantum,
// and group A's cache never serves group B's workers.
func TestSyncBatchingGroupedPerGroup(t *testing.T) {
	const workers, groups = 8, 2
	gc, err := NewGroupedControllerWithGroups(workers, groups, batchedConfig(time.Millisecond), GroupByTupleHash)
	if err != nil {
		t.Fatal(err)
	}
	hooks := make([]*GroupedWorkerHook, workers)
	for i := range hooks {
		hooks[i] = gc.NewWorkerHook(i)
		hooks[i].LoopEnter(0)
	}
	// Hang one worker in group 1 so the two groups compute different bitmaps.
	for i, h := range hooks {
		if i != 7 {
			h.LoopEnter(int64(2 * gc.cfg.HangThreshold))
		}
	}
	now := int64(2 * gc.cfg.HangThreshold)
	for i, h := range hooks {
		res := h.ScheduleAndSync(now + int64(i)) // all within one quantum
		span := workers / groups
		want := span
		if i >= span {
			want = span - 1 // group 1 lost its hung member
		}
		if res.Passed != want {
			t.Fatalf("worker %d: passed %d, want %d", i, res.Passed, want)
		}
	}
	// One sync per group, the rest batched.
	bm0, _ := gc.SelMap(0).Lookup(0)
	bm1, _ := gc.SelMap(1).Lookup(0)
	if bm0 != 0b1111 || bm1 != 0b0111 {
		t.Fatalf("group bitmaps: %b %b", bm0, bm1)
	}
}

func TestSyncQuantumValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SyncQuantum = -time.Millisecond
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative SyncQuantum accepted")
	}
	cfg.SyncQuantum = cfg.HangThreshold
	if err := cfg.Validate(); err == nil {
		t.Fatal("SyncQuantum >= HangThreshold accepted")
	}
	cfg.SyncQuantum = cfg.HangThreshold / 2
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The batched fast path must not allocate (it sits in every worker's event
// loop).
func TestSyncBatchedPathZeroAlloc(t *testing.T) {
	c, err := NewController(4, batchedConfig(time.Second/100))
	if err != nil {
		t.Fatal(err)
	}
	h := c.NewWorkerHook(0)
	h.LoopEnter(0)
	h.ScheduleAndSync(0)
	now := int64(1)
	if allocs := testing.AllocsPerRun(100, func() {
		h.ScheduleAndSync(now)
		now++
	}); allocs != 0 {
		t.Fatalf("batched schedule_and_sync allocates %v/op, want 0", allocs)
	}
}
