package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"hermes/internal/bitops"
	"hermes/internal/ebpf"
	"hermes/internal/kernel"
	"hermes/internal/shm"
	"hermes/internal/sim"
)

func freshMetrics(n int, nowNS int64) []shm.Metrics {
	ms := make([]shm.Metrics, n)
	for i := range ms {
		ms[i] = shm.Metrics{LoopEnterNS: nowNS, Busy: 0, Conn: 0}
	}
	return ms
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.HangThreshold = 0 },
		func(c *Config) { c.ThetaFrac = -0.1 },
		func(c *Config) { c.MinWorkers = 0 },
		func(c *Config) { c.EpollTimeout = 0 },
		func(c *Config) { c.MaxEvents = 0 },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestScheduleUniformLoadSelectsAll(t *testing.T) {
	now := int64(time.Second)
	ms := freshMetrics(8, now)
	for i := range ms {
		ms[i].Busy = 5
		ms[i].Conn = 100
	}
	res := Schedule(now, ms, DefaultConfig(), OrderTimeConnEvent)
	if res.Passed != 8 || res.Alive != 8 {
		t.Fatalf("uniform load: passed=%d alive=%d, want 8,8", res.Passed, res.Alive)
	}
}

func TestScheduleZeroMetricsSelectsAll(t *testing.T) {
	// All-idle fleet with zero counters must not be filtered to nothing
	// (inclusive comparison against Avg=0).
	now := int64(time.Second)
	res := Schedule(now, freshMetrics(4, now), DefaultConfig(), OrderTimeConnEvent)
	if res.Passed != 4 {
		t.Fatalf("zero metrics: passed=%d, want 4", res.Passed)
	}
}

func TestScheduleFiltersHungWorker(t *testing.T) {
	cfg := DefaultConfig()
	now := int64(time.Second)
	ms := freshMetrics(4, now)
	ms[2].LoopEnterNS = now - int64(cfg.HangThreshold) - 1 // hung
	res := Schedule(now, ms, cfg, OrderTimeConnEvent)
	if res.Alive != 3 {
		t.Fatalf("alive=%d, want 3", res.Alive)
	}
	if res.Bitmap.Has(2) {
		t.Fatal("hung worker selected")
	}
	if res.Passed != 3 {
		t.Fatalf("passed=%d, want 3", res.Passed)
	}
}

func TestScheduleAllHungReturnsEmpty(t *testing.T) {
	cfg := DefaultConfig()
	now := int64(time.Hour)
	ms := freshMetrics(4, now-int64(cfg.HangThreshold)*2)
	res := Schedule(now, ms, cfg, OrderTimeConnEvent)
	if res.Passed != 0 || res.Bitmap != 0 || res.Alive != 0 {
		t.Fatalf("all-hung: %+v", res)
	}
}

func TestScheduleFiltersConnHeavyWorker(t *testing.T) {
	cfg := DefaultConfig() // θ/Avg = 0.5
	now := int64(time.Second)
	ms := freshMetrics(4, now)
	ms[0].Conn = 100
	ms[1].Conn = 100
	ms[2].Conn = 100
	ms[3].Conn = 1000 // avg=325, limit=487.5 → filtered
	res := Schedule(now, ms, cfg, OrderTimeConnEvent)
	if res.Bitmap.Has(3) {
		t.Fatal("conn-heavy worker passed the filter")
	}
	if res.Passed != 3 {
		t.Fatalf("passed=%d, want 3", res.Passed)
	}
}

func TestScheduleFiltersBusyWorker(t *testing.T) {
	cfg := DefaultConfig()
	now := int64(time.Second)
	ms := freshMetrics(4, now)
	ms[1].Busy = 500 // others 0 → avg=125, limit=187.5 → filtered
	res := Schedule(now, ms, cfg, OrderTimeConnEvent)
	if res.Bitmap.Has(1) || res.Passed != 3 {
		t.Fatalf("busy worker not filtered: %+v", res)
	}
}

func TestScheduleThetaWidensSelection(t *testing.T) {
	now := int64(time.Second)
	ms := freshMetrics(4, now)
	ms[0].Conn = 10
	ms[1].Conn = 12
	ms[2].Conn = 14
	ms[3].Conn = 20 // avg=14
	tight := DefaultConfig()
	tight.ThetaFrac = 0
	loose := DefaultConfig()
	loose.ThetaFrac = 0.5
	resTight := Schedule(now, ms, tight, OrderTimeConnEvent)
	resLoose := Schedule(now, ms, loose, OrderTimeConnEvent)
	if resTight.Passed >= resLoose.Passed {
		t.Fatalf("θ=0 passed %d, θ=0.5 passed %d; offset should widen selection",
			resTight.Passed, resLoose.Passed)
	}
	if resLoose.Passed != 4 { // limit = 21
		t.Fatalf("loose passed = %d, want 4", resLoose.Passed)
	}
}

func TestScheduleFilterOrderMatters(t *testing.T) {
	// A worker heavy in conns but idle in events, and one the reverse.
	// TimeOnly keeps both; the cascades drop their respective outliers.
	now := int64(time.Second)
	ms := freshMetrics(4, now)
	ms[0].Conn = 1000
	ms[1].Busy = 1000
	resTimeOnly := Schedule(now, ms, DefaultConfig(), OrderTimeOnly)
	resCascade := Schedule(now, ms, DefaultConfig(), OrderTimeConnEvent)
	if resTimeOnly.Passed != 4 {
		t.Fatalf("time-only passed %d", resTimeOnly.Passed)
	}
	if resCascade.Bitmap.Has(0) || resCascade.Bitmap.Has(1) {
		t.Fatalf("cascade kept an outlier: %b", resCascade.Bitmap)
	}
}

func TestScheduleDegenerateInputs(t *testing.T) {
	cfg := DefaultConfig()
	if res := Schedule(0, nil, cfg, OrderTimeConnEvent); res.Passed != 0 {
		t.Fatal("nil metrics")
	}
	if res := Schedule(0, make([]shm.Metrics, 65), cfg, OrderTimeConnEvent); res.Passed != 0 {
		t.Fatal("oversized table must be rejected")
	}
}

// Property: selection is always a subset of time-alive workers, and if any
// worker is alive at least one is selected.
func TestSchedulePropertySubsetAndNonEmpty(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(64)
		now := int64(time.Hour)
		ms := make([]shm.Metrics, n)
		anyAlive := false
		for i := range ms {
			age := int64(rng.Intn(int(2 * cfg.HangThreshold)))
			ms[i] = shm.Metrics{
				LoopEnterNS: now - age,
				Busy:        int64(rng.Intn(2000)),
				Conn:        int64(rng.Intn(20000)),
			}
			if age < int64(cfg.HangThreshold) {
				anyAlive = true
			}
		}
		res := Schedule(now, ms, cfg, OrderTimeConnEvent)
		for i := 0; i < n; i++ {
			if res.Bitmap.Has(i) && now-ms[i].LoopEnterNS >= int64(cfg.HangThreshold) {
				t.Fatalf("trial %d: hung worker %d selected", trial, i)
			}
		}
		if anyAlive && res.Passed == 0 {
			t.Fatalf("trial %d: alive workers but empty selection", trial)
		}
		if !anyAlive && res.Passed != 0 {
			t.Fatalf("trial %d: selection from fully hung fleet", trial)
		}
		if res.Passed != res.Bitmap.Count() {
			t.Fatalf("trial %d: passed %d != bitmap count %d", trial, res.Passed, res.Bitmap.Count())
		}
	}
}

func TestNativeSelectFallbackBelowMin(t *testing.T) {
	if _, ok := NativeSelect(0b1, 123, 2); ok {
		t.Fatal("single worker must trigger fallback with MinWorkers=2")
	}
	if _, ok := NativeSelect(0, 123, 1); ok {
		t.Fatal("empty bitmap selected a worker")
	}
	w, ok := NativeSelect(0b1, 123, 1)
	if !ok || w != 0 {
		t.Fatalf("MinWorkers=1 single bitmap: %d, %v", w, ok)
	}
}

func TestNativeSelectAlwaysPicksSetBit(t *testing.T) {
	f := func(bitmap uint64, hash uint32) bool {
		w, ok := NativeSelect(bitmap, hash, 1)
		if bitops.PopCount64(bitmap) == 0 {
			return !ok
		}
		return ok && bitmap&(1<<uint(w)) != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestNativeSelectBalanced(t *testing.T) {
	bitmap := uint64(0b10110101) // workers 0,2,4,5,7
	counts := map[int]int{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		w, ok := NativeSelect(bitmap, rng.Uint32(), 2)
		if !ok {
			t.Fatal("unexpected fallback")
		}
		counts[w]++
	}
	for _, w := range []int{0, 2, 4, 5, 7} {
		if counts[w] < 8000 || counts[w] > 12000 {
			t.Errorf("worker %d got %d of 50000, uneven", w, counts[w])
		}
	}
	if len(counts) != 5 {
		t.Fatalf("selected worker set %v", counts)
	}
}

// The assembled Algorithm 2 bytecode must agree with NativeSelect on every
// (bitmap, hash) — the VM is the spec, the native path the JIT stand-in.
func TestDispatchProgramMatchesNative(t *testing.T) {
	const n = 64
	sel := ebpf.NewArrayMap(1)
	sa := ebpf.NewSockArray(n)
	type fakeSock struct{ id int }
	socks := make([]*fakeSock, n)
	for i := range socks {
		socks[i] = &fakeSock{i}
		if err := sa.Put(uint32(i), socks[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, minWorkers := range []int{1, 2, 5} {
		prog, err := BuildDispatchProgram(sel, sa, minWorkers)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(minWorkers)))
		for trial := 0; trial < 4000; trial++ {
			bitmap := rng.Uint64()
			switch trial % 8 {
			case 0:
				bitmap = 0
			case 1:
				bitmap = 1 << uint(rng.Intn(64))
			case 2:
				bitmap &= 0xff
			}
			hash := rng.Uint32()
			if err := sel.Update(0, bitmap); err != nil {
				t.Fatal(err)
			}
			ctx := &ebpf.ReuseportCtx{Hash: hash}
			r0, err := prog.Run(ctx)
			if err != nil {
				t.Fatalf("min=%d bitmap=%#x hash=%#x: %v", minWorkers, bitmap, hash, err)
			}
			nw, nok := NativeSelect(bitmap, hash, minWorkers)
			if nok != (r0 == 0) {
				t.Fatalf("min=%d bitmap=%#x hash=%#x: vm r0=%d native ok=%v",
					minWorkers, bitmap, hash, r0, nok)
			}
			if nok && ctx.SelectedIndex != nw {
				t.Fatalf("min=%d bitmap=%#x hash=%#x: vm picked %d, native %d",
					minWorkers, bitmap, hash, ctx.SelectedIndex, nw)
			}
		}
	}
}

func TestGroupedDispatchProgramMatchesNative(t *testing.T) {
	const groups = 3
	const span = 4
	type fakeSock struct{ g, s int }
	gm := make([]GroupMaps, groups)
	bitmaps := make([]uint64, groups)
	for gi := 0; gi < groups; gi++ {
		sel := ebpf.NewArrayMap(1)
		sa := ebpf.NewSockArray(span)
		for s := 0; s < span; s++ {
			if err := sa.Put(uint32(s), &fakeSock{gi, s}); err != nil {
				t.Fatal(err)
			}
		}
		gm[gi] = GroupMaps{Sel: sel, Socks: sa}
	}
	for _, key := range []GroupKey{GroupByTupleHash, GroupByLocalityHash} {
		prog, err := BuildGroupedDispatchProgram(gm, 2, key)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		for trial := 0; trial < 3000; trial++ {
			for gi := range bitmaps {
				bitmaps[gi] = rng.Uint64() & 0xf // span=4
				if trial%5 == 0 {
					bitmaps[gi] = uint64(trial % 3)
				}
				if err := gm[gi].Sel.Update(0, bitmaps[gi]); err != nil {
					t.Fatal(err)
				}
			}
			hash, lhash := rng.Uint32(), rng.Uint32()
			ctx := &ebpf.ReuseportCtx{Hash: hash, LocalityHash: lhash}
			r0, err := prog.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			ng, nw, nok := NativeSelectGrouped(bitmaps, hash, lhash, 2, key)
			if nok != (r0 == 0) {
				t.Fatalf("trial %d: vm r0=%d native ok=%v", trial, r0, nok)
			}
			if nok {
				got := ctx.Selected.(*fakeSock)
				if got.g != ng || got.s != nw {
					t.Fatalf("trial %d: vm (%d,%d) native (%d,%d)", trial, got.g, got.s, ng, nw)
				}
			}
		}
	}
}

func TestDispatchProgramSize(t *testing.T) {
	sel := ebpf.NewArrayMap(1)
	sa := ebpf.NewSockArray(64)
	for i := 0; i < 64; i++ {
		sa.Put(uint32(i), i)
	}
	p, err := BuildDispatchProgram(sel, sa, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("single-group dispatch: %d insns", p.Len())
	if p.Len() > 256 {
		t.Fatalf("dispatch program unexpectedly large: %d insns", p.Len())
	}
	// 16 groups must still fit the verifier budget comfortably.
	gm := make([]GroupMaps, 16)
	for i := range gm {
		gm[i] = GroupMaps{Sel: ebpf.NewArrayMap(1), Socks: sa}
	}
	gp, err := BuildGroupedDispatchProgram(gm, 2, GroupByTupleHash)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("16-group dispatch: %d insns", gp.Len())
	if gp.Len() > ebpf.MaxInsns {
		t.Fatal("grouped program exceeds verifier budget")
	}
}

func TestBuilderErrors(t *testing.T) {
	sel := ebpf.NewArrayMap(1)
	sa := ebpf.NewSockArray(1)
	if _, err := BuildDispatchProgram(sel, sa, 0); err == nil {
		t.Fatal("minWorkers=0 accepted")
	}
	if _, err := BuildGroupedDispatchProgram(nil, 2, GroupByTupleHash); err == nil {
		t.Fatal("empty groups accepted")
	}
	if _, err := BuildGroupedDispatchProgram([]GroupMaps{{Sel: sel, Socks: sa}}, 0, GroupByTupleHash); err == nil {
		t.Fatal("grouped minWorkers=0 accepted")
	}
}

// End-to-end: controller + kernel. Workers 0,1 healthy, worker 2 hung; new
// connections must avoid worker 2 entirely once the scheduler has run.
func TestControllerEndToEndAvoidsHungWorker(t *testing.T) {
	for _, attach := range []string{"ebpf", "native"} {
		t.Run(attach, func(t *testing.T) {
			eng := sim.NewEngine(1)
			ns := kernel.NewNetStack(eng, kernel.WakeExclusiveLIFO)
			g, err := ns.ListenReuseport(80, 3, 0)
			if err != nil {
				t.Fatal(err)
			}
			ctl, err := NewController(3, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if attach == "ebpf" {
				err = ctl.AttachEBPF(g)
			} else {
				err = ctl.AttachNative(g)
			}
			if err != nil {
				t.Fatal(err)
			}

			now := int64(time.Second)
			hooks := []*WorkerHook{ctl.NewWorkerHook(0), ctl.NewWorkerHook(1), ctl.NewWorkerHook(2)}
			hooks[0].LoopEnter(now)
			hooks[1].LoopEnter(now)
			hooks[2].LoopEnter(now - int64(ctl.Config().HangThreshold) - 1) // hung
			res := hooks[0].ScheduleAndSync(now)
			if res.Passed != 2 || res.Bitmap.Has(2) {
				t.Fatalf("schedule: %+v", res)
			}

			for i := uint32(0); i < 300; i++ {
				ns.DeliverSYN(kernel.FourTuple{SrcIP: i, SrcPort: uint16(i), DstIP: 1, DstPort: 80}, nil)
			}
			if q := g.Sockets()[2].QueueLen(); q != 0 {
				t.Fatalf("hung worker received %d connections", q)
			}
			if g.ProgDispatched != 300 {
				t.Fatalf("ProgDispatched=%d fallbacks=%d errs=%d",
					g.ProgDispatched, g.Fallbacks, g.ProgErrors)
			}
			a := g.Sockets()[0].QueueLen() + int(g.Sockets()[0].Drops)
			b := g.Sockets()[1].QueueLen() + int(g.Sockets()[1].Drops)
			if a+b != 300 || a < 90 || b < 90 {
				t.Fatalf("healthy split %d/%d", a, b)
			}
			st := ctl.Stats()
			if st.ScheduleCalls != 1 || st.Syncs != 1 || st.AvgPassed != 2 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

// With fewer than MinWorkers passing, dispatch must fall back to reuseport
// hashing — including onto the "unavailable" worker (two-stage filtering's
// deliberate safety valve, §5.3.2).
func TestControllerFallbackBelowMinWorkers(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := kernel.NewNetStack(eng, kernel.WakeExclusiveLIFO)
	g, _ := ns.ListenReuseport(80, 3, 0)
	ctl, _ := NewController(3, DefaultConfig()) // MinWorkers=2
	if err := ctl.AttachEBPF(g); err != nil {
		t.Fatal(err)
	}
	now := int64(time.Second)
	h0 := ctl.NewWorkerHook(0)
	h0.LoopEnter(now) // only worker 0 alive
	h0.ScheduleAndSync(now)

	for i := uint32(0); i < 300; i++ {
		ns.DeliverSYN(kernel.FourTuple{SrcIP: i, SrcPort: uint16(i), DstIP: 1, DstPort: 80}, nil)
	}
	if g.Fallbacks != 300 {
		t.Fatalf("fallbacks=%d prog=%d", g.Fallbacks, g.ProgDispatched)
	}
	// Hash fallback spreads across all 3 sockets.
	spread := 0
	for _, s := range g.Sockets() {
		if s.QueueLen() > 0 {
			spread++
		}
	}
	if spread != 3 {
		t.Fatalf("fallback did not hash across all sockets: %d", spread)
	}
}

func TestControllerSizeMismatch(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := kernel.NewNetStack(eng, kernel.WakeExclusiveLIFO)
	g, _ := ns.ListenReuseport(80, 4, 0)
	ctl, _ := NewController(3, DefaultConfig())
	if err := ctl.AttachEBPF(g); err == nil {
		t.Fatal("size mismatch accepted (ebpf)")
	}
	if err := ctl.AttachNative(g); err == nil {
		t.Fatal("size mismatch accepted (native)")
	}
	if _, err := NewController(0, DefaultConfig()); err == nil {
		t.Fatal("0 workers accepted")
	}
	if _, err := NewController(65, DefaultConfig()); err == nil {
		t.Fatal("65 workers accepted")
	}
}

func TestWorkerHookCounters(t *testing.T) {
	ctl, _ := NewController(2, DefaultConfig())
	h := ctl.NewWorkerHook(0)
	h.LoopEnter(100)
	h.EventsFetched(3)
	h.EventHandled()
	h.ConnOpened()
	h.ConnOpened()
	h.ConnClosed()
	m := h.Metrics()
	if m.LoopEnterNS != 100 || m.Busy != 2 || m.Conn != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	h.EventsFetched(0)
	h.EventsFetched(-5)
	if h.Metrics().Busy != 2 {
		t.Fatal("non-positive EventsFetched must be ignored")
	}
}

// 128 workers over two groups: dispatch must reach both groups with tuple
// hashing, and pin destinations with locality hashing.
func TestGroupedControllerTwoLevel(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := kernel.NewNetStack(eng, kernel.WakeExclusiveLIFO)
	g, err := ns.ListenReuseport(80, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := NewGroupedController(128, DefaultConfig(), GroupByTupleHash)
	if err != nil {
		t.Fatal(err)
	}
	if gc.Groups() != 2 || gc.Workers() != 128 {
		t.Fatalf("layout: %d groups, %d workers", gc.Groups(), gc.Workers())
	}
	if err := gc.AttachEBPF(g); err != nil {
		t.Fatal(err)
	}
	now := int64(time.Second)
	for w := 0; w < 128; w++ {
		h := gc.NewWorkerHook(w)
		h.LoopEnter(now)
		h.ScheduleAndSync(now)
	}
	for i := uint32(0); i < 4000; i++ {
		ns.DeliverSYN(kernel.FourTuple{SrcIP: i * 7, SrcPort: uint16(i), DstIP: i % 50, DstPort: 80}, nil)
	}
	if g.ProgDispatched != 4000 {
		t.Fatalf("prog=%d fallbacks=%d errors=%d", g.ProgDispatched, g.Fallbacks, g.ProgErrors)
	}
	lo, hi := 0, 0
	for i, s := range g.Sockets() {
		n := s.QueueLen() + int(s.Drops)
		if i < 64 {
			lo += n
		} else {
			hi += n
		}
	}
	if lo < 1000 || hi < 1000 {
		t.Fatalf("group split %d/%d too skewed", lo, hi)
	}
}

func TestGroupedControllerLocalityPinsDestination(t *testing.T) {
	eng := sim.NewEngine(1)
	ns := kernel.NewNetStack(eng, kernel.WakeExclusiveLIFO)
	g, _ := ns.ListenReuseport(80, 8, 0)
	gc, err := NewGroupedControllerWithGroups(8, 4, DefaultConfig(), GroupByLocalityHash)
	if err != nil {
		t.Fatal(err)
	}
	if err := gc.AttachNative(g); err != nil {
		t.Fatal(err)
	}
	now := int64(time.Second)
	for w := 0; w < 8; w++ {
		h := gc.NewWorkerHook(w)
		h.LoopEnter(now)
		h.ScheduleAndSync(now)
	}
	// All connections share DstIP/DstPort → one group (2 workers); varying
	// 4-tuples spread within it.
	for i := uint32(0); i < 1000; i++ {
		ns.DeliverSYN(kernel.FourTuple{SrcIP: i * 13, SrcPort: uint16(i * 7), DstIP: 42, DstPort: 80}, nil)
	}
	nonEmpty := 0
	var hitGroup = -1
	for i, s := range g.Sockets() {
		if n := s.QueueLen() + int(s.Drops); n > 0 {
			nonEmpty++
			if hitGroup == -1 {
				hitGroup = i / 2
			} else if i/2 != hitGroup {
				t.Fatalf("traffic crossed groups: socket %d and group %d", i, hitGroup)
			}
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("locality mode hit %d sockets, want the 2 of one group", nonEmpty)
	}
}

func TestGroupedControllerValidation(t *testing.T) {
	if _, err := NewGroupedController(0, DefaultConfig(), GroupByTupleHash); err == nil {
		t.Fatal("0 workers accepted")
	}
	if _, err := NewGroupedControllerWithGroups(10, 3, DefaultConfig(), GroupByTupleHash); err == nil {
		t.Fatal("non-divisible grouping accepted")
	}
	if _, err := NewGroupedControllerWithGroups(130, 2, DefaultConfig(), GroupByTupleHash); err == nil {
		t.Fatal("span > 64 accepted")
	}
	eng := sim.NewEngine(1)
	ns := kernel.NewNetStack(eng, kernel.WakeExclusiveLIFO)
	g, _ := ns.ListenReuseport(80, 4, 0)
	gc, _ := NewGroupedController(128, DefaultConfig(), GroupByTupleHash)
	if err := gc.AttachEBPF(g); err == nil {
		t.Fatal("socket mismatch accepted")
	}
	if err := gc.AttachNative(g); err == nil {
		t.Fatal("socket mismatch accepted (native)")
	}
}

func BenchmarkSchedule32(b *testing.B) {
	now := int64(time.Second)
	ms := freshMetrics(32, now)
	for i := range ms {
		ms[i].Busy = int64(i % 7)
		ms[i].Conn = int64(i * 13 % 301)
	}
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Schedule(now, ms, cfg, OrderTimeConnEvent)
	}
}

func BenchmarkDispatchVMvsNative(b *testing.B) {
	sel := ebpf.NewArrayMap(1)
	sa := ebpf.NewSockArray(32)
	for i := 0; i < 32; i++ {
		sa.Put(uint32(i), i)
	}
	sel.Update(0, 0xaaaa5555aaaa5555)
	prog, err := BuildDispatchProgram(sel, sa, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("vm", func(b *testing.B) {
		ctx := &ebpf.ReuseportCtx{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx.Hash = uint32(i)
			if _, err := prog.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("native", func(b *testing.B) {
		bm, _ := sel.Lookup(0)
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			w, _ := NativeSelect(bm, uint32(i), 2)
			sink += w
		}
		_ = sink
	})
}

// The emitted Algorithm 2 bytecode must contain the paper's building blocks
// (map lookup, reciprocal_scale, sk_select_reuseport, bit arithmetic) and
// stay loop-free by construction.
func TestDispatchProgramShape(t *testing.T) {
	sel := ebpf.NewArrayMap(1)
	sa := ebpf.NewSockArray(8)
	for i := 0; i < 8; i++ {
		if err := sa.Put(uint32(i), i); err != nil {
			t.Fatal(err)
		}
	}
	p, err := BuildDispatchProgram(sel, sa, 2)
	if err != nil {
		t.Fatal(err)
	}
	dis := p.Disassemble()
	for _, frag := range []string{
		"call bpf_map_lookup_elem",
		"call bpf_get_hash",
		"call reciprocal_scale",
		"call bpf_sk_select_reuseport",
		"exit",
	} {
		if !strings.Contains(dis, frag) {
			t.Errorf("dispatch program missing %q:\n%s", frag, dis)
		}
	}
	// The grouped program adds the locality helper when keyed by locality.
	gp, err := BuildGroupedDispatchProgram([]GroupMaps{{Sel: sel, Socks: sa}}, 2, GroupByLocalityHash)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gp.Disassemble(), "call bpf_get_locality_hash") {
		t.Error("grouped-by-locality program missing locality helper")
	}
}
