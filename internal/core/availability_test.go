package core

import (
	"testing"
	"time"
)

// The availability veto is ANDed onto Algorithm 1's result: vetoed workers
// vanish from the published bitmap immediately (mid-quantum — the veto bumps
// the policy generation, invalidating the sync cache) and come back when
// restored. The all-ones default changes nothing.
func TestControllerAvailabilityVeto(t *testing.T) {
	ctl, err := NewController(3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ctl.AvailableMask() != ^uint64(0) {
		t.Fatalf("default mask = %b, want all ones", ctl.AvailableMask())
	}
	now := int64(time.Second)
	hooks := []*WorkerHook{ctl.NewWorkerHook(0), ctl.NewWorkerHook(1), ctl.NewWorkerHook(2)}
	for _, h := range hooks {
		h.LoopEnter(now)
	}
	res := hooks[0].ScheduleAndSync(now)
	if res.Passed != 3 {
		t.Fatalf("baseline schedule: %+v", res)
	}

	if err := ctl.SetWorkerAvailable(1, false); err != nil {
		t.Fatal(err)
	}
	// Same instant, inside the sync quantum: the veto must still take effect
	// because it invalidates the cached result.
	res = hooks[0].ScheduleAndSync(now)
	if res.Bitmap.Has(1) || res.Passed != 2 {
		t.Fatalf("vetoed worker still selected: %+v", res)
	}
	if bm, _ := ctl.SelMap().Lookup(0); bm&(1<<1) != 0 {
		t.Fatalf("published selmap still has vetoed worker: %b", bm)
	}

	if err := ctl.SetWorkerAvailable(1, true); err != nil {
		t.Fatal(err)
	}
	res = hooks[0].ScheduleAndSync(now)
	if !res.Bitmap.Has(1) || res.Passed != 3 {
		t.Fatalf("restored worker missing: %+v", res)
	}

	// Vetoing everyone publishes the empty set — the kernel hash fallback —
	// rather than wedging on a stale bitmap.
	for i := 0; i < 3; i++ {
		if err := ctl.SetWorkerAvailable(i, false); err != nil {
			t.Fatal(err)
		}
	}
	res = hooks[0].ScheduleAndSync(now)
	if res.Passed != 0 || res.Bitmap != 0 {
		t.Fatalf("all-vetoed schedule: %+v", res)
	}

	if err := ctl.SetWorkerAvailable(3, false); err == nil {
		t.Error("out-of-range veto accepted")
	}
	if err := ctl.SetWorkerAvailable(-1, false); err == nil {
		t.Error("negative worker veto accepted")
	}
}
