// Package core implements Hermes, the paper's contribution: a
// userspace-directed I/O event notification framework built as a closed
// control loop across three stages (§4.1):
//
//  1. each worker publishes {event-loop entry timestamp, pending events,
//     accumulated connections} to a lock-free shared Worker Status Table
//     (internal/shm);
//  2. a scheduler embedded in every worker runs the cascading filter of
//     Algorithm 1 at the end of each epoll event loop and synchronizes the
//     surviving worker set — a 64-bit bitmap — to the kernel through an
//     eBPF array map;
//  3. a dispatch program attached at the SO_ATTACH_REUSEPORT_EBPF hook
//     (Algorithm 2, emitted to simulated eBPF bytecode by this package)
//     picks the final worker per incoming connection by scaled hashing over
//     the bitmap, falling back to plain reuseport hashing when too few
//     workers pass the coarse filter.
package core

import (
	"fmt"
	"time"
)

// Config carries Hermes's tuning knobs.
type Config struct {
	// HangThreshold is how long a worker may go without re-entering its
	// event loop before the time filter marks it unavailable (Algorithm 1,
	// FilterTime). The paper's workers time out epoll_wait at 5 ms, so a
	// healthy worker republishes its timestamp at least that often.
	HangThreshold time.Duration

	// ThetaFrac is θ/Avg: the filter-baseline offset of Algorithm 1's
	// FilterCount expressed as a fraction of the current average. Fig. 15
	// finds θ/Avg = 0.5 optimal. Workers with metric ≤ Avg·(1+ThetaFrac)
	// pass; the inclusive comparison keeps a uniformly loaded fleet fully
	// selected even at θ = 0.
	ThetaFrac float64

	// MinWorkers is the kernel-side minimum number of coarse-filtered
	// workers required before the dispatch program acts; below it, dispatch
	// falls back to reuseport hashing (Algorithm 2 line 4: "if n > 1").
	MinWorkers int

	// EpollTimeout is the epoll_wait timeout, bounding how stale a blocked
	// worker's published status can get (§5.3.2: 5 ms in production).
	EpollTimeout time.Duration

	// MaxEvents caps the epoll_wait batch size.
	MaxEvents int

	// SyncQuantum batches Algorithm-1 recomputes: within one quantum the
	// first schedule_and_sync() call runs the full Snapshot → Schedule →
	// map-sync pipeline and later calls (from any worker) reuse its published
	// result. 0 disables batching — every call recomputes, the paper's
	// literal per-event-loop behaviour. A busy fleet calls schedule_and_sync
	// once per event loop from every worker, so N workers pay N scans of N
	// WST rows per loop; one scan per quantum preserves freshness (staleness
	// is already bounded by EpollTimeout ≪ HangThreshold) at 1/N the cost.
	// Policy flips (fallback, single-winner, SetConfig) invalidate the cache
	// immediately.
	SyncQuantum time.Duration
}

// DefaultConfig returns the production-like defaults used throughout the
// evaluation.
func DefaultConfig() Config {
	return Config{
		HangThreshold: 12 * time.Millisecond,
		ThetaFrac:     0.5,
		MinWorkers:    2,
		EpollTimeout:  5 * time.Millisecond,
		MaxEvents:     64,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if c.HangThreshold <= 0 {
		return fmt.Errorf("core: HangThreshold must be positive, got %v", c.HangThreshold)
	}
	if c.ThetaFrac < 0 {
		return fmt.Errorf("core: ThetaFrac must be ≥ 0, got %v", c.ThetaFrac)
	}
	if c.MinWorkers < 1 {
		return fmt.Errorf("core: MinWorkers must be ≥ 1, got %d", c.MinWorkers)
	}
	if c.EpollTimeout <= 0 {
		return fmt.Errorf("core: EpollTimeout must be positive, got %v", c.EpollTimeout)
	}
	if c.MaxEvents < 1 {
		return fmt.Errorf("core: MaxEvents must be ≥ 1, got %d", c.MaxEvents)
	}
	if c.SyncQuantum < 0 {
		return fmt.Errorf("core: SyncQuantum must be ≥ 0, got %v", c.SyncQuantum)
	}
	if c.SyncQuantum >= c.HangThreshold {
		return fmt.Errorf("core: SyncQuantum %v must stay below HangThreshold %v (a full quantum of staleness must not mask a hang)",
			c.SyncQuantum, c.HangThreshold)
	}
	return nil
}
