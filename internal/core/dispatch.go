package core

import (
	"fmt"

	"hermes/internal/bitops"
	"hermes/internal/ebpf"
)

// This file emits Algorithm 2 — Hermes's in-kernel connection dispatch — as
// simulated eBPF bytecode, and provides the semantically identical native-Go
// selector used where production would run the JIT-compiled program.
//
// The program must respect eBPF's constraints (no loops, bounded size), so
// CountNonZeroBits and FindNthNonZeroBit are expanded inline as straight-line
// bit arithmetic with forward branches only (§5.4, Bit Twiddling Hacks).

const (
	m1 = 0x5555555555555555
	m2 = 0x3333333333333333
	m4 = 0x0f0f0f0f0f0f0f0f
	h1 = 0x0101010101010101
)

// emitPopCount appends dst = popcount(dst), clobbering tmp. 15 instructions,
// branch-free. The JIT recognizes this exact expansion and fuses it to a
// native bits.OnesCount64 (internal/ebpf fusion matchers); changing the shape
// here only costs speed, not correctness.
func emitPopCount(a *ebpf.Assembler, dst, tmp ebpf.Reg) {
	a.MovReg(tmp, dst).RshImm(tmp, 1).AndImm(tmp, m1).SubReg(dst, tmp)
	a.MovReg(tmp, dst).RshImm(tmp, 2).AndImm(tmp, m2).AndImm(dst, m2).AddReg(dst, tmp)
	a.MovReg(tmp, dst).RshImm(tmp, 4).AddReg(dst, tmp).AndImm(dst, m4)
	a.MulImm(dst, h1).RshImm(dst, 56)
}

// emitFindNth appends pos = FindNthNonZeroBit(v, rank), the rank-select walk
// from 32-bit halves down to single bits. rank (1-based) is consumed; v is
// preserved; t and tmp are scratch. All branches are forward. The caller
// guarantees 1 ≤ rank ≤ popcount(v).
func emitFindNth(a *ebpf.Assembler, v, rank, pos, t, tmp ebpf.Reg, labelPrefix string) {
	a.MovImm(pos, 0)
	for _, w := range []uint64{32, 16, 8, 4, 2} {
		lbl := fmt.Sprintf("%s_w%d", labelPrefix, w)
		a.MovReg(t, v).RshReg(t, pos).AndImm(t, (1<<w)-1)
		emitPopCount(a, t, tmp)
		a.JleReg(rank, t, lbl) // rank <= popcount(low half): stay
		a.AddImm(pos, w)
		a.SubReg(rank, t)
		a.Label(lbl)
	}
	lbl := labelPrefix + "_w1"
	a.MovReg(t, v).RshReg(t, pos).AndImm(t, 1)
	a.JleReg(rank, t, lbl)
	a.AddImm(pos, 1)
	a.Label(lbl)
}

// hashMixConst decorrelates the two levels of grouped dispatch (odd, so the
// map hash → hash*K mod 2^32 is a bijection: no collisions introduced).
// reciprocal_scale consumes the TOP bits of its input, so reusing the raw
// 4-tuple hash for both the group pick and the in-group rank makes the rank
// a near-deterministic function of the group: within group g, only ranks
// mapping back to [g/G, (g+1)/G) of the hash space are reachable, i.e. only
// ~span/G of each group's workers ever receive traffic. At 256 workers
// (4 groups of 64) that leaves 3 of every 4 workers idle and pushes the
// load-imbalance metric to √3 ≈ 1.73 — the regression the scale sweep
// caught. Multiplying the rank hash by the golden-ratio constant first
// (Fibonacci hashing) makes the level-2 input's top bits independent of the
// level-1 decision.
const hashMixConst = 0x9E3779B1

// mix32 is the native twin of the MulImm the grouped program applies to the
// rank hash.
func mix32(h uint32) uint32 { return uint32(uint64(h) * hashMixConst) }

// emitGroupDispatch appends the single-group body of Algorithm 2 against the
// given map slots: load the selection bitmap, count candidates, bail to
// fallLabel if fewer than minWorkers, otherwise scale the 4-tuple hash to a
// rank, select that worker's socket and exit 0. labelPrefix uniquifies
// labels when several group bodies share one program. mixHash decorrelates
// the rank hash from the level-1 group pick (see hashMixConst) and must be
// set iff the body is part of a two-level program.
func emitGroupDispatch(a *ebpf.Assembler, selSlot, sockSlot uint64, minWorkers int, fallLabel, labelPrefix string, mixHash bool) {
	// R6 = C = M_sel[0]
	a.LdMap(ebpf.R1, selSlot)
	a.MovImm(ebpf.R2, 0)
	a.Call(ebpf.HelperMapLookupElem)
	a.MovReg(ebpf.R6, ebpf.R0)

	// R7 = n = CountNonZeroBits(C)
	a.MovReg(ebpf.R7, ebpf.R6)
	emitPopCount(a, ebpf.R7, ebpf.R3)
	a.JltImm(ebpf.R7, uint64(minWorkers), fallLabel)

	// R8 = reciprocal_scale(hash, n) + 1   (1-based rank)
	a.Call(ebpf.HelperGetHash)
	a.MovReg(ebpf.R1, ebpf.R0)
	if mixHash {
		a.MulImm(ebpf.R1, hashMixConst)
	}
	a.MovReg(ebpf.R2, ebpf.R7)
	a.Call(ebpf.HelperReciprocalScale)
	a.MovReg(ebpf.R8, ebpf.R0)
	a.AddImm(ebpf.R8, 1)

	// R9 = FindNthNonZeroBit(C, rank)
	emitFindNth(a, ebpf.R6, ebpf.R8, ebpf.R9, ebpf.R4, ebpf.R5, labelPrefix+"_sel")

	// bpf_sk_select_reuseport(M_socket, ID)
	a.LdMap(ebpf.R1, sockSlot)
	a.MovReg(ebpf.R2, ebpf.R9)
	a.Call(ebpf.HelperSkSelectReuseport)
	a.JneImm(ebpf.R0, 0, fallLabel)
	a.MovImm(ebpf.R0, 0)
	a.Exit()
}

// BuildDispatchProgram assembles and verifies the single-group Algorithm 2
// program over the given selection map (one uint64 bitmap at key 0) and
// sockarray (worker i → socket i). Returning 0 selects the socket in the
// run context; returning 1 asks the kernel to fall back to reuseport
// hashing.
func BuildDispatchProgram(sel *ebpf.ArrayMap, socks *ebpf.SockArray, minWorkers int) (*ebpf.Program, error) {
	if minWorkers < 1 {
		return nil, fmt.Errorf("core: minWorkers must be ≥ 1, got %d", minWorkers)
	}
	a := ebpf.NewAssembler()
	selSlot := a.AddMap(sel)
	sockSlot := a.AddMap(socks)
	emitGroupDispatch(a, selSlot, sockSlot, minWorkers, "fallback", "g0", false)
	a.Label("fallback")
	a.MovImm(ebpf.R0, 1)
	a.Exit()
	return a.Assemble()
}

// GroupMaps holds one worker group's kernel-visible state for the two-level
// dispatch of §7 (>64 workers) and the locality mode of Fig. A6.
type GroupMaps struct {
	Sel   *ebpf.ArrayMap
	Socks *ebpf.SockArray
}

// GroupKey selects which hash drives level-1 group selection.
type GroupKey uint8

// Level-1 keys.
const (
	// GroupByTupleHash spreads connections across groups by 4-tuple hash —
	// the >64-worker scaling mode (§7).
	GroupByTupleHash GroupKey = iota
	// GroupByLocalityHash pins same-destination connections to one group —
	// the cache-locality mode (Fig. A6).
	GroupByLocalityHash
)

// BuildGroupedDispatchProgram assembles the two-level program: level 1
// hashes to a group (by tuple or locality hash), level 2 runs the standard
// bitmap dispatch within that group. Group selection compiles to a forward
// branch chain, so program size grows linearly with the group count; the
// verifier's instruction budget admits 30+ groups (≈2000 workers), far
// beyond the paper's deployment sizes.
func BuildGroupedDispatchProgram(groups []GroupMaps, minWorkers int, key GroupKey) (*ebpf.Program, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: no groups")
	}
	if minWorkers < 1 {
		return nil, fmt.Errorf("core: minWorkers must be ≥ 1, got %d", minWorkers)
	}
	a := ebpf.NewAssembler()
	type slots struct{ sel, sock uint64 }
	ss := make([]slots, len(groups))
	for i, g := range groups {
		ss[i] = slots{sel: a.AddMap(g.Sel), sock: a.AddMap(g.Socks)}
	}

	// R9 = group = reciprocal_scale(level1hash, nGroups)
	switch key {
	case GroupByLocalityHash:
		a.Call(ebpf.HelperGetLocalityHash)
	default:
		a.Call(ebpf.HelperGetHash)
	}
	a.MovReg(ebpf.R1, ebpf.R0)
	a.MovImm(ebpf.R2, uint64(len(groups)))
	a.Call(ebpf.HelperReciprocalScale)
	a.MovReg(ebpf.R9, ebpf.R0)

	// Branch chain to the matching group body.
	for i := range groups {
		a.JeqImm(ebpf.R9, uint64(i), fmt.Sprintf("grp%d", i))
	}
	a.Ja("fallback")
	for i, s := range ss {
		a.Label(fmt.Sprintf("grp%d", i))
		emitGroupDispatch(a, s.sel, s.sock, minWorkers, "fallback", fmt.Sprintf("g%d", i), true)
	}
	a.Label("fallback")
	a.MovImm(ebpf.R0, 1)
	a.Exit()
	return a.Assemble()
}

// NativeSelect is the Go-native twin of the single-group dispatch program:
// given the current bitmap and connection hash it returns the selected
// worker index, or ok=false to request reuseport-hash fallback. Behaviour is
// bit-identical to the bytecode (property-tested), standing in for the
// JIT-compiled program on hot paths.
func NativeSelect(bitmap uint64, hash uint32, minWorkers int) (worker int, ok bool) {
	n := bitops.PopCount64(bitmap)
	if n < minWorkers {
		return 0, false
	}
	rank := int(bitops.ReciprocalScale(hash, uint32(n))) + 1
	idx := bitops.FindNthSetBit(bitmap, rank)
	if idx < 0 {
		return 0, false
	}
	return idx, true
}

// NativeSelectGrouped is the native twin of the two-level program.
func NativeSelectGrouped(bitmaps []uint64, hash, localityHash uint32, minWorkers int, key GroupKey) (group, worker int, ok bool) {
	if len(bitmaps) == 0 {
		return 0, 0, false
	}
	l1 := hash
	if key == GroupByLocalityHash {
		l1 = localityHash
	}
	g := int(bitops.ReciprocalScale(l1, uint32(len(bitmaps))))
	w, ok := NativeSelect(bitmaps[g], mix32(hash), minWorkers)
	return g, w, ok
}
