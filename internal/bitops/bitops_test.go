package bitops

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPopCount64Known(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{0xffffffffffffffff, 64},
		{0x8000000000000000, 1},
		{0b11001, 3},
		{0x5555555555555555, 32},
		{0xaaaaaaaaaaaaaaaa, 32},
		{0xf0f0f0f0f0f0f0f0, 32},
	}
	for _, c := range cases {
		if got := PopCount64(c.v); got != c.want {
			t.Errorf("PopCount64(%#x) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestPopCount64MatchesStdlib(t *testing.T) {
	f := func(v uint64) bool { return PopCount64(v) == bits.OnesCount64(v) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFindNthSetBitKnown(t *testing.T) {
	cases := []struct {
		v    uint64
		n    int
		want int
	}{
		{0b11001, 1, 0},
		{0b11001, 2, 3},
		{0b11001, 3, 4},
		{0b11001, 4, -1},
		{0, 1, -1},
		{1, 1, 0},
		{1 << 63, 1, 63},
		{0xffffffffffffffff, 64, 63},
		{0xffffffffffffffff, 1, 0},
		{0xffffffffffffffff, 33, 32},
		{0b1010, 1, 1},
		{0b1010, 2, 3},
	}
	for _, c := range cases {
		if got := FindNthSetBit(c.v, c.n); got != c.want {
			t.Errorf("FindNthSetBit(%#b, %d) = %d, want %d", c.v, c.n, got, c.want)
		}
	}
}

func TestFindNthSetBitRejectsBadRank(t *testing.T) {
	for _, n := range []int{0, -1, 65, 1 << 20} {
		if got := FindNthSetBit(^uint64(0), n); got != -1 {
			t.Errorf("FindNthSetBit(all-ones, %d) = %d, want -1", n, got)
		}
	}
}

// referenceNthSetBit is the obvious loop-based oracle.
func referenceNthSetBit(v uint64, n int) int {
	if n < 1 {
		return -1
	}
	seen := 0
	for i := 0; i < 64; i++ {
		if v&(1<<uint(i)) != 0 {
			seen++
			if seen == n {
				return i
			}
		}
	}
	return -1
}

func TestFindNthSetBitMatchesReference(t *testing.T) {
	f := func(v uint64, rank uint8) bool {
		n := int(rank%66) - 1 // covers -1..64
		return FindNthSetBit(v, n) == referenceNthSetBit(v, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: selecting rank 1..popcount enumerates exactly the set bits in
// ascending order.
func TestFindNthSetBitEnumeratesSetBits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		v := rng.Uint64()
		pc := PopCount64(v)
		prev := -1
		for n := 1; n <= pc; n++ {
			p := FindNthSetBit(v, n)
			if p <= prev {
				t.Fatalf("v=%#x rank %d: position %d not > previous %d", v, n, p, prev)
			}
			if v&(1<<uint(p)) == 0 {
				t.Fatalf("v=%#x rank %d: position %d not set", v, n, p)
			}
			prev = p
		}
		if got := FindNthSetBit(v, pc+1); pc < 64 && got != -1 {
			t.Fatalf("v=%#x rank beyond popcount returned %d", v, got)
		}
	}
}

func TestReciprocalScaleRange(t *testing.T) {
	f := func(val, n uint32) bool {
		if n == 0 {
			return ReciprocalScale(val, 0) == 0
		}
		return ReciprocalScale(val, n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReciprocalScaleUniformity(t *testing.T) {
	// For uniformly distributed hashes, buckets should be roughly equal.
	const n = 8
	const samples = 80000
	rng := rand.New(rand.NewSource(7))
	var counts [n]int
	for i := 0; i < samples; i++ {
		counts[ReciprocalScale(rng.Uint32(), n)]++
	}
	want := samples / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d count %d deviates >20%% from %d", i, c, want)
		}
	}
}

func TestBitmap64Basics(t *testing.T) {
	var b Bitmap64
	if b.Count() != 0 {
		t.Fatal("zero bitmap should be empty")
	}
	b = b.Set(0).Set(5).Set(63)
	if !b.Has(0) || !b.Has(5) || !b.Has(63) || b.Has(1) {
		t.Fatalf("unexpected membership: %b", b)
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	if got := b.Nth(2); got != 5 {
		t.Fatalf("Nth(2) = %d, want 5", got)
	}
	b = b.Clear(5)
	if b.Has(5) || b.Count() != 2 {
		t.Fatalf("Clear failed: %b", b)
	}
	// Out-of-range operations are no-ops.
	if b.Set(64) != b || b.Set(-1) != b || b.Clear(64) != b || b.Clear(-1) != b {
		t.Fatal("out-of-range Set/Clear must be no-ops")
	}
	if b.Has(64) || b.Has(-1) {
		t.Fatal("out-of-range Has must be false")
	}
}

func TestBitmap64BitsRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := Bitmap64(v)
		return FromBits(b.Bits()...) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmap64BitsSortedUnique(t *testing.T) {
	b := FromBits(9, 3, 3, 0, 62)
	want := []int{0, 3, 9, 62}
	got := b.Bits()
	if len(got) != len(want) {
		t.Fatalf("Bits() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bits() = %v, want %v", got, want)
		}
	}
}

func BenchmarkPopCount64(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink += PopCount64(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}

func BenchmarkFindNthSetBit(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		v := uint64(i)*0x9e3779b97f4a7c15 | 1
		sink += FindNthSetBit(v, 1+i%8)
	}
	_ = sink
}
