// Package bitops provides the constant-time bit manipulation primitives that
// Hermes's kernel-side dispatch program relies on.
//
// The eBPF runtime (real or simulated; see internal/ebpf) forbids loops, so
// worker selection over a 64-bit availability bitmap must be expressed with
// branch-free bitwise arithmetic. The routines here follow the classic
// "Bit Twiddling Hacks" formulations cited by the paper (§5.4): population
// count via parallel summation and select-nth-set-bit via rank computation
// over partial sums. The same routines back the userspace scheduler, so both
// sides of the kernel/user boundary agree on bit numbering (bit 0 = worker 0).
package bitops

const (
	m1 = 0x5555555555555555 // 01010101...
	m2 = 0x3333333333333333 // 00110011...
	m4 = 0x0f0f0f0f0f0f0f0f // 00001111...
	h1 = 0x0101010101010101 // byte sums multiplier
)

// PopCount64 returns the number of set bits in v (Hamming weight) using the
// branch-free parallel-sum formulation. It deliberately avoids math/bits so
// the identical arithmetic can be emitted as simulated eBPF bytecode.
func PopCount64(v uint64) int {
	v -= (v >> 1) & m1
	v = (v & m2) + ((v >> 2) & m2)
	v = (v + (v >> 4)) & m4
	return int((v * h1) >> 56)
}

// FindNthSetBit returns the zero-based position of the n-th set bit of v,
// where n is 1-based rank (n=1 selects the lowest set bit). It returns -1 if
// v has fewer than n set bits or n < 1.
//
// The implementation is the branch-reduced "select the bit position with the
// given rank" routine from Bit Twiddling Hacks: compute byte-wise partial
// popcount sums, then binary-search the rank through the sum tree using only
// comparisons that the eBPF verifier accepts (no data-dependent loops).
func FindNthSetBit(v uint64, n int) int {
	if n < 1 || n > 64 {
		return -1
	}
	r := uint64(n)
	if uint64(PopCount64(v)) < r {
		return -1
	}

	var s uint64 // bit position accumulator
	// Walk down from 32-bit halves to single bits. Each step compares the
	// popcount of the low half against the remaining rank.
	t := pop32(v)
	if r > t {
		s += 32
		r -= t
	}
	t = pop16(v >> s)
	if r > t {
		s += 16
		r -= t
	}
	t = pop8(v >> s)
	if r > t {
		s += 8
		r -= t
	}
	t = pop4(v >> s)
	if r > t {
		s += 4
		r -= t
	}
	t = pop2(v >> s)
	if r > t {
		s += 2
		r -= t
	}
	t = (v >> s) & 1
	if r > t {
		s++
	}
	return int(s)
}

func pop32(v uint64) uint64 { return uint64(PopCount64(v & 0xffffffff)) }
func pop16(v uint64) uint64 { return uint64(PopCount64(v & 0xffff)) }
func pop8(v uint64) uint64  { return uint64(PopCount64(v & 0xff)) }
func pop4(v uint64) uint64  { return uint64(PopCount64(v & 0xf)) }
func pop2(v uint64) uint64  { return uint64(PopCount64(v & 0x3)) }

// ReciprocalScale maps a 32-bit hash value uniformly onto [0, n) without a
// modulo, mirroring the kernel's reciprocal_scale() helper that Hermes's
// dispatch program calls (§5.4, Algorithm 2 line 5).
func ReciprocalScale(val uint32, n uint32) uint32 {
	return uint32((uint64(val) * uint64(n)) >> 32)
}

// Bitmap64 is a fixed 64-slot worker availability bitmap. Bit i set means
// worker i passed the userspace coarse-grained filter. The zero value is an
// empty bitmap.
type Bitmap64 uint64

// Set returns b with bit i set. Out-of-range i is ignored.
func (b Bitmap64) Set(i int) Bitmap64 {
	if i < 0 || i > 63 {
		return b
	}
	return b | 1<<uint(i)
}

// Clear returns b with bit i cleared. Out-of-range i is ignored.
func (b Bitmap64) Clear(i int) Bitmap64 {
	if i < 0 || i > 63 {
		return b
	}
	return b &^ (1 << uint(i))
}

// Has reports whether bit i is set.
func (b Bitmap64) Has(i int) bool {
	return i >= 0 && i <= 63 && b&(1<<uint(i)) != 0
}

// Count returns the number of set bits.
func (b Bitmap64) Count() int { return PopCount64(uint64(b)) }

// Nth returns the position of the n-th (1-based) set bit, or -1.
func (b Bitmap64) Nth(n int) int { return FindNthSetBit(uint64(b), n) }

// Bits returns the positions of all set bits in ascending order.
func (b Bitmap64) Bits() []int {
	out := make([]int, 0, b.Count())
	for i := 0; i < 64; i++ {
		if b.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// FromBits builds a bitmap from a set of bit positions.
func FromBits(bits ...int) Bitmap64 {
	var b Bitmap64
	for _, i := range bits {
		b = b.Set(i)
	}
	return b
}
