package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"hermes/internal/stats"
)

// This file is the windowed time-series layer: a fixed-size ring of whole
// registry snapshots sampled on a tick (wall clock in the live proxy,
// explicit Tick calls under the sim clock), from which callers derive
// windowed rates, deltas, and rolling histogram quantiles by diffing two
// ring edges. Sampling runs entirely off the hot path — recording stays the
// same one-or-two-atomics it always was; the sampler goroutine pays the
// snapshot cost on its own time.

// WindowConfig tunes the sampling ring.
type WindowConfig struct {
	// Tick is the sampling period used by Start (manual Tick callers pick
	// their own cadence).
	Tick time.Duration
	// Depth is the number of retained ticks; Depth×Tick bounds the longest
	// answerable window.
	Depth int
}

// DefaultWindowConfig retains six minutes of one-second ticks — enough for
// the default SRE-workbook-style burn windows (10s/1m/5m).
func DefaultWindowConfig() WindowConfig {
	return WindowConfig{Tick: time.Second, Depth: 360}
}

// Validate reports the first invalid field.
func (c WindowConfig) Validate() error {
	if c.Tick <= 0 {
		return fmt.Errorf("telemetry: window tick must be positive, got %v", c.Tick)
	}
	if c.Depth < 2 {
		return fmt.Errorf("telemetry: window depth must be ≥ 2, got %d", c.Depth)
	}
	return nil
}

// tickPoint is one retained sample: the whole registry at one instant.
type tickPoint struct {
	tsNS int64
	snap Snapshot
}

// Windows samples a Registry into a ring of snapshots and answers windowed
// queries by diffing ring edges. Tick (or the Start goroutine) is the only
// writer; queries take a read lock and never block recording.
type Windows struct {
	reg *Registry
	cfg WindowConfig

	mu   sync.RWMutex
	ring []tickPoint
	n    uint64 // total ticks taken; next slot = n % depth

	onTick []func(nowNS int64) // run after each tick, outside the write lock

	startOnce sync.Once
	stopCh    chan struct{}
	doneCh    chan struct{}
}

// NewWindows builds a sampler over reg. The config must validate; the zero
// ring answers no windows until two ticks have been taken.
func NewWindows(reg *Registry, cfg WindowConfig) (*Windows, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Windows{
		reg:    reg,
		cfg:    cfg,
		ring:   make([]tickPoint, cfg.Depth),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}, nil
}

// Config returns the sampling configuration.
func (w *Windows) Config() WindowConfig { return w.cfg }

// OnTick registers fn to run after every tick (the SLO monitor's hook).
// Must be called before Start or the first Tick.
func (w *Windows) OnTick(fn func(nowNS int64)) {
	w.onTick = append(w.onTick, fn)
}

// Tick samples the registry at nowNS. This is the sim-clock entry point;
// Start drives it on the wall clock. Hooks run after the ring is updated.
func (w *Windows) Tick(nowNS int64) {
	snap := w.reg.Snapshot()
	w.mu.Lock()
	w.ring[w.n%uint64(len(w.ring))] = tickPoint{tsNS: nowNS, snap: snap}
	w.n++
	w.mu.Unlock()
	for _, fn := range w.onTick {
		fn(nowNS)
	}
}

// Ticks returns how many samples have been taken.
func (w *Windows) Ticks() uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.n
}

// Start launches the wall-clock sampler goroutine; the returned stop
// function halts it and waits for it to exit. Start is idempotent.
func (w *Windows) Start() (stop func()) {
	w.startOnce.Do(func() {
		go func() {
			defer close(w.doneCh)
			t := time.NewTicker(w.cfg.Tick)
			defer t.Stop()
			for {
				select {
				case <-w.stopCh:
					return
				case now := <-t.C:
					w.Tick(now.UnixNano())
				}
			}
		}()
	})
	var once sync.Once
	return func() {
		once.Do(func() {
			close(w.stopCh)
			<-w.doneCh
		})
	}
}

// Window returns the delta view spanning approximately d: the newest tick
// is the end edge, and the start edge is the newest retained tick at least
// d older (falling back to the oldest retained tick when history is
// shorter). ok is false until two ticks with distinct timestamps exist.
func (w *Windows) Window(d time.Duration) (WindowDelta, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	depth := uint64(len(w.ring))
	have := w.n
	if have > depth {
		have = depth
	}
	if have < 2 {
		return WindowDelta{}, false
	}
	at := func(i uint64) tickPoint { // i: 0 = oldest retained
		return w.ring[(w.n-have+i)%depth]
	}
	end := at(have - 1)
	cutoff := end.tsNS - int64(d)
	start := at(0)
	for i := have - 1; i > 0; i-- {
		if p := at(i - 1); p.tsNS <= cutoff {
			start = p
			break
		}
	}
	if start.tsNS >= end.tsNS {
		return WindowDelta{}, false
	}
	return NewWindowDelta(start.tsNS, end.tsNS, start.snap, end.snap), true
}

// WindowDelta is the difference between two registry snapshots — the unit
// every windowed query (rate, windowed quantile, SLI ratio) is answered
// from. Build one from a Windows ring or directly from two snapshots
// (hermes-lb's -stats-every interval reporting).
type WindowDelta struct {
	StartNS, EndNS int64
	start, end     Snapshot
}

// NewWindowDelta pairs two snapshots taken at the given instants.
func NewWindowDelta(startNS, endNS int64, start, end Snapshot) WindowDelta {
	return WindowDelta{StartNS: startNS, EndNS: endNS, start: start, end: end}
}

// Elapsed returns the window span.
func (d WindowDelta) Elapsed() time.Duration {
	return time.Duration(d.EndNS - d.StartNS)
}

// End returns the end-edge snapshot (current gauge values and so on).
func (d WindowDelta) End() Snapshot { return d.end }

// Delta returns how much the named counter (or counter-vec total) grew over
// the window. Metrics absent at the start edge count from zero; negative
// deltas (a restarted registry) clamp to zero.
func (d WindowDelta) Delta(name string) int64 {
	cur := d.end.Get(name)
	if cur == nil {
		return 0
	}
	v := cur.Total()
	if prev := d.start.Get(name); prev != nil {
		v -= prev.Total()
	}
	if v < 0 {
		return 0
	}
	return v
}

// SlotDelta returns one vec slot's growth over the window.
func (d WindowDelta) SlotDelta(name string, i int) int64 {
	cur := d.end.Get(name)
	if cur == nil || i < 0 || i >= len(cur.Values) {
		return 0
	}
	v := cur.Values[i]
	if prev := d.start.Get(name); prev != nil && i < len(prev.Values) {
		v -= prev.Values[i]
	}
	if v < 0 {
		return 0
	}
	return v
}

// Rate returns Delta per second over the window.
func (d WindowDelta) Rate(name string) float64 {
	sec := float64(d.EndNS-d.StartNS) / 1e9
	if sec <= 0 {
		return 0
	}
	return float64(d.Delta(name)) / sec
}

// histDelta returns the named histogram's per-bucket growth over the
// window: bounds plus one count per bucket (trailing +Inf included).
func (d WindowDelta) histDelta(name string) (bounds []int64, counts []uint64, ok bool) {
	cur := d.end.Get(name)
	if cur == nil || len(cur.Buckets) == 0 {
		return nil, nil, false
	}
	prev := d.start.Get(name)
	counts = make([]uint64, len(cur.Buckets))
	for i, b := range cur.Buckets {
		c := b.Count
		if prev != nil && i < len(prev.Buckets) {
			if p := prev.Buckets[i].Count; p <= c {
				c -= p
			} else {
				c = 0
			}
		}
		counts[i] = c
		if !b.Inf {
			bounds = append(bounds, b.LE)
		}
	}
	return bounds, counts, true
}

// HistCount returns how many observations the named histogram recorded
// inside the window.
func (d WindowDelta) HistCount(name string) uint64 {
	_, counts, ok := d.histDelta(name)
	if !ok {
		return 0
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total
}

// Quantile estimates quantile p of the named histogram over the window
// alone (bucket-count deltas through stats.BucketQuantile). ok is false
// when the histogram is absent or recorded nothing inside the window.
func (d WindowDelta) Quantile(name string, p float64) (float64, bool) {
	bounds, counts, ok := d.histDelta(name)
	if !ok {
		return 0, false
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, false
	}
	return stats.BucketQuantile(bounds, counts, p), true
}

// FractionAtMost returns the fraction of the window's observations ≤ v,
// interpolating linearly inside the containing bucket (the latency-SLI
// "good events" ratio). ok is false with no observations in the window.
func (d WindowDelta) FractionAtMost(name string, v int64) (float64, bool) {
	bounds, counts, ok := d.histDelta(name)
	if !ok {
		return 0, false
	}
	var total, below uint64
	var frac float64
	for i, c := range counts {
		total += c
		if i >= len(bounds) {
			continue // +Inf bucket: never ≤ a finite v unless v ≥ last bound, handled below
		}
		lo := int64(0)
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		switch {
		case hi <= v:
			below += c
		case lo < v && v < hi:
			frac += float64(c) * float64(v-lo) / float64(hi-lo)
		}
	}
	if total == 0 {
		return 0, false
	}
	if len(bounds) > 0 && v >= bounds[len(bounds)-1] {
		// v at or beyond the last finite bound: everything finite is good;
		// the +Inf bucket stays bad (unknown magnitude).
		below = total - counts[len(counts)-1]
		frac = 0
	}
	return (float64(below) + frac) / float64(total), true
}

// Text renders the window as a human-readable delta report, one metric per
// line, mirroring Snapshot.Text but with per-window deltas and rates:
// counters as "+N (R/s)", histograms as windowed count/mean/p50/p99, gauges
// as their end-edge value. This is what hermes-lb -stats-every prints
// between startup and the final cumulative snapshot.
func (d WindowDelta) Text() string {
	var b strings.Builder
	d.WriteText(&b)
	return b.String()
}

// WriteText renders Text into w.
func (d WindowDelta) WriteText(w io.Writer) {
	sec := float64(d.EndNS-d.StartNS) / 1e9
	for i := range d.end.Metrics {
		ms := &d.end.Metrics[i]
		fmt.Fprintf(w, "%-34s %-12s", ms.Name, ms.Kind)
		switch ms.Kind {
		case "histogram":
			bounds, counts, _ := d.histDelta(ms.Name)
			var n uint64
			for _, c := range counts {
				n += c
			}
			var sum int64
			if prev := d.start.Get(ms.Name); prev != nil {
				sum = ms.Sum - prev.Sum
			} else {
				sum = ms.Sum
			}
			if n == 0 {
				fmt.Fprintf(w, "+0 %s", ms.Unit)
			} else {
				fmt.Fprintf(w, "+%d (%.1f/s) mean=%.0f p50=%.0f p99=%.0f %s",
					n, float64(n)/sec, float64(sum)/float64(n),
					stats.BucketQuantile(bounds, counts, 0.50),
					stats.BucketQuantile(bounds, counts, 0.99), ms.Unit)
			}
		case "gauge":
			fmt.Fprintf(w, "%d %s", ms.Value, ms.Unit)
		case "gauge_vec":
			fmt.Fprintf(w, "total=%d per-slot=%v %s", ms.Total(), ms.Values, ms.Unit)
		case "timeline_vec":
			total := 0
			for _, tl := range ms.Timelines {
				total += len(tl)
			}
			fmt.Fprintf(w, "slots=%d samples=%d %s", len(ms.Timelines), total, ms.Unit)
		default: // counter, counter_vec
			delta := d.Delta(ms.Name)
			fmt.Fprintf(w, "+%d (%.1f/s) %s", delta, float64(delta)/sec, ms.Unit)
		}
		fmt.Fprintln(w)
	}
}
