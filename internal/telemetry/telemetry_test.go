package telemetry

import (
	"bytes"
	"encoding/json"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
)

// Every handle type must be safe to use through a nil pointer — that is the
// whole "telemetry off" mechanism.
func TestNilHandlesNoOp(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil counter Load != 0")
	}

	var g *Gauge
	g.Set(3)
	g.Add(-1)
	g.SetMax(9)
	if g.Load() != 0 {
		t.Error("nil gauge Load != 0")
	}

	var h *Histogram
	h.Observe(123)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram not empty")
	}

	var cv *CounterVec
	cv.At(0).Inc()
	cv.At(-1).Inc()
	if cv.Len() != 0 {
		t.Error("nil counter vec Len != 0")
	}

	var gv *GaugeVec
	gv.At(2).Set(7)
	if gv.Len() != 0 {
		t.Error("nil gauge vec Len != 0")
	}

	var tv *TimelineVec
	tv.At(0).Record(1, 2)
	if tv.Len() != 0 || tv.At(0).Snapshot() != nil {
		t.Error("nil timeline vec not empty")
	}
}

// Out-of-range vec indices return nil no-op handles rather than panicking.
func TestVecOutOfRange(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec(Metric{Name: "cv"}, 2)
	for _, i := range []int{-1, 2, 100} {
		if h := cv.At(i); h != nil {
			t.Errorf("At(%d) = %v, want nil", i, h)
		}
	}
	cv.At(5).Inc() // must not panic
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Metric{Name: "c"})
	c.Inc()
	c.Add(9)
	if c.Load() != 10 {
		t.Errorf("counter = %d, want 10", c.Load())
	}

	g := r.Gauge(Metric{Name: "g"})
	g.Set(5)
	g.Add(-2)
	if g.Load() != 3 {
		t.Errorf("gauge = %d, want 3", g.Load())
	}
	g.SetMax(10)
	g.SetMax(7) // lower: must not regress the high-water mark
	if g.Load() != 10 {
		t.Errorf("gauge after SetMax = %d, want 10", g.Load())
	}
}

// Observations land in the first bucket whose bound is ≥ v; everything past
// the last bound lands in the implicit +Inf bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Metric{Name: "h"}, []int64{10, 20, 40})
	for _, v := range []int64{-5, 0, 10, 11, 20, 21, 40, 41, 1000} {
		h.Observe(v)
	}
	want := []uint64{3, 2, 2, 2} // ≤10: {-5,0,10}; ≤20: {11,20}; ≤40: {21,40}; +Inf: {41,1000}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 9 {
		t.Errorf("count = %d, want 9", h.Count())
	}
	if h.Sum() != -5+0+10+11+20+21+40+41+1000 {
		t.Errorf("sum = %d", h.Sum())
	}
}

func TestBucketLayouts(t *testing.T) {
	db := DurationBuckets()
	cb := CountBuckets(64)
	for name, bounds := range map[string][]int64{"duration": db, "count": cb} {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Errorf("%s buckets not strictly increasing at %d: %v", name, i, bounds)
			}
		}
	}
	if cb[len(cb)-1] != 64 {
		t.Errorf("CountBuckets(64) last bound = %d", cb[len(cb)-1])
	}
}

// A timeline deeper than its write count returns writes in order; once it
// wraps, it retains exactly depth samples, oldest first.
func TestTimelineWraparound(t *testing.T) {
	r := NewRegistry()
	tv := r.TimelineVec(Metric{Name: "tl"}, 1, 4)
	tl := tv.At(0)

	tl.Record(1, 10)
	tl.Record(2, 20)
	got := tl.Snapshot()
	if len(got) != 2 || got[0] != (Sample{1, 10}) || got[1] != (Sample{2, 20}) {
		t.Fatalf("partial snapshot = %v", got)
	}

	for i := int64(3); i <= 10; i++ {
		tl.Record(i, i*10)
	}
	got = tl.Snapshot()
	if len(got) != 4 {
		t.Fatalf("wrapped snapshot len = %d, want 4", len(got))
	}
	for i, s := range got {
		wantTS := int64(7 + i)
		if s.TSNS != wantTS || s.Value != wantTS*10 {
			t.Errorf("sample %d = %+v, want ts=%d v=%d", i, s, wantTS, wantTS*10)
		}
	}
}

// Requesting the same name twice returns the same handle; requesting it as
// a different kind panics.
func TestRegistryDedupAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	m := Metric{Name: "shared.counter", Layer: "kernel"}
	a, b := r.Counter(m), r.Counter(m)
	if a != b {
		t.Error("same metric name returned distinct handles")
	}
	a.Add(2)
	b.Inc()
	if snap := r.Snapshot(); snap.Get("shared.counter").Value != 3 {
		t.Errorf("shared counter = %d, want 3", snap.Get("shared.counter").Value)
	}

	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge(m)
}

func TestSnapshotOrderedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Counter(Metric{Name: "z.counter", Layer: "l7lb", Unit: "reqs"}).Add(4)
	r.Gauge(Metric{Name: "a.gauge", Layer: "core", Unit: "workers"}).Set(-2)
	r.Histogram(Metric{Name: "m.hist", Unit: "ns"}, []int64{100}).Observe(50)
	cv := r.CounterVec(Metric{Name: "k.vec"}, 3)
	cv.At(0).Add(1)
	cv.At(2).Add(5)

	snap := r.Snapshot()
	names := make([]string, len(snap.Metrics))
	for i, ms := range snap.Metrics {
		names[i] = ms.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("snapshot not name-ordered: %v", names)
	}
	if got := snap.Get("a.gauge"); got == nil || got.Value != -2 || got.Kind != "gauge" {
		t.Errorf("a.gauge = %+v", got)
	}
	if got := snap.Get("k.vec"); got == nil || got.Total() != 6 || len(got.Values) != 3 {
		t.Errorf("k.vec = %+v", got)
	}
	if got := snap.Get("m.hist"); got == nil || got.Count != 1 || got.Sum != 50 {
		t.Errorf("m.hist = %+v", got)
	}
	if snap.Get("nope") != nil {
		t.Error("Get on unknown name != nil")
	}

	// Renders must include every metric and be valid JSON.
	text := snap.Text()
	for _, n := range names {
		if !strings.Contains(text, n) {
			t.Errorf("Text() missing %s", n)
		}
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v", err)
	}
	if len(round.Metrics) != len(snap.Metrics) {
		t.Errorf("JSON round-trip lost metrics: %d vs %d", len(round.Metrics), len(snap.Metrics))
	}
}

func TestSnapshotQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Metric{Name: "q"}, []int64{10, 20})
	for i := 0; i < 10; i++ {
		h.Observe(5)  // ≤10
		h.Observe(15) // ≤20
	}
	ms := r.Snapshot().Get("q")
	if p50 := ms.Quantile(0.5); p50 != 10 {
		t.Errorf("p50 = %v, want 10 (upper edge of first bucket)", p50)
	}
	if p99 := ms.Quantile(0.99); p99 <= 10 || p99 > 20 {
		t.Errorf("p99 = %v, want in (10, 20]", p99)
	}
	var empty MetricSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("quantile of a non-histogram != 0")
	}
}

// An empty histogram's exported quantiles must be JSON null, not 0: a
// consumer reading p99=0 would mistake "never recorded" for "instant".
func TestSnapshotEmptyHistogramQuantilesNull(t *testing.T) {
	r := NewRegistry()
	r.Histogram(Metric{Name: "never", Unit: "ns"}, []int64{10, 20}) // registered, no observations
	r.Histogram(Metric{Name: "once", Unit: "ns"}, []int64{10, 20}).Observe(5)
	snap := r.Snapshot()

	for _, want := range []struct {
		name string
		null bool
	}{{"never", true}, {"once", false}} {
		ms := snap.Get(want.name)
		if ms == nil || len(ms.Quantiles) != 2 {
			t.Fatalf("%s: quantiles = %v, want p50+p99", want.name, ms)
		}
		for _, q := range []string{"p50", "p99"} {
			v, ok := ms.Quantiles[q]
			if !ok {
				t.Fatalf("%s: missing %s", want.name, q)
			}
			if want.null != (v == nil) {
				t.Errorf("%s: %s = %v, want null=%v", want.name, q, v, want.null)
			}
		}
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"p50": null`) || !strings.Contains(out, `"p99": null`) {
		t.Errorf("WriteJSON of empty histogram lacks null quantiles:\n%s", out)
	}
	// The recorded histogram's quantiles must come through as numbers.
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if v := round.Get("once").Quantiles["p50"]; v == nil || *v <= 0 {
		t.Errorf("recorded histogram p50 did not round-trip: %v", v)
	}
}

// Snapshots taken while writers hammer every instrument kind must be
// race-free (run with -race) and, once the writers finish, exact.
func TestRegistryConcurrentWriters(t *testing.T) {
	// Modest volumes: this test exists to give -race interleavings to chew
	// on, and it must stay fast on single-core CI runners.
	const (
		writers = 4
		perW    = 2_000
	)
	r := NewRegistry()
	m := func(n string) Metric { return Metric{Name: n, Layer: "test"} }

	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader: exercises snapshot-vs-write races
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				snap := r.Snapshot()
				for _, ms := range snap.Metrics {
					_ = ms.Total()
				}
				runtime.Gosched() // don't starve writers on single-core runners
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer re-requests its handles: registration must also
			// be concurrency-safe, not just recording.
			c := r.Counter(m("conc.counter"))
			g := r.Gauge(m("conc.gauge"))
			h := r.Histogram(m("conc.hist"), []int64{8, 64, 512})
			cv := r.CounterVec(m("conc.vec"), writers)
			tv := r.TimelineVec(m("conc.tl"), writers, 16)
			for i := 0; i < perW; i++ {
				c.Inc()
				g.SetMax(int64(w*perW + i))
				h.Observe(int64(i % 1000))
				cv.At(w).Inc()
				tv.At(w).Record(int64(i), int64(w))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	snap := r.Snapshot()
	if got := snap.Get("conc.counter").Value; got != writers*perW {
		t.Errorf("counter = %d, want %d", got, writers*perW)
	}
	if got := snap.Get("conc.gauge").Value; got != (writers-1)*perW+perW-1 {
		t.Errorf("gauge high-water = %d, want %d", got, (writers-1)*perW+perW-1)
	}
	if got := snap.Get("conc.hist").Count; got != writers*perW {
		t.Errorf("hist count = %d, want %d", got, writers*perW)
	}
	for i, v := range snap.Get("conc.vec").Values {
		if v != perW {
			t.Errorf("vec slot %d = %d, want %d", i, v, perW)
		}
	}
	for i, tl := range snap.Get("conc.tl").Timelines {
		if len(tl) != 16 {
			t.Errorf("timeline %d retained %d samples, want 16", i, len(tl))
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter(Metric{Name: "b"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram(Metric{Name: "b"}, DurationBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) % 1_000_000)
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
