package telemetry

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the SLO burn-rate monitor: two SLIs (latency and errors)
// evaluated on every windowed-layer tick against multi-window multi-burn-rate
// rules (SRE-workbook style, scaled to LB timescales). The verdict surfaces
// three ways: as the slo.* gauges in the registry (so /metrics exports it),
// as the /slo admin JSON, and as the state string in /healthz.

// SLOState is the alert ladder: ok → warn → page.
type SLOState int

// SLO states, ordered by severity.
const (
	SLOOK SLOState = iota
	SLOWarn
	SLOPage
)

func (s SLOState) String() string {
	switch s {
	case SLOOK:
		return "ok"
	case SLOWarn:
		return "warn"
	case SLOPage:
		return "page"
	default:
		return "unknown"
	}
}

// BurnRule is one multi-window burn-rate alert rule: fire when the SLI
// burns its error budget at ≥ Burn× the sustainable rate over BOTH the
// short and the long window (the short window makes alerts reset quickly,
// the long one keeps them from flapping).
type BurnRule struct {
	Burn  float64
	Short time.Duration
	Long  time.Duration
}

// SLOConfig declares the objectives and the alert rules. Metric names bind
// the monitor to a concrete registry catalog (the proxy wires proxy.*).
type SLOConfig struct {
	// LatencyMetric is the request-latency histogram; the latency SLI is
	// the fraction of windowed observations ≤ LatencyThresholdNS, with
	// objective LatencyGoal (e.g. 0.99 = "99% of requests ≤ threshold").
	LatencyMetric      string
	LatencyThresholdNS int64
	LatencyGoal        float64

	// TotalMetrics (counters, summed) are the error SLI's event total;
	// BadMetrics are its failures. Objective ErrorGoal is the success
	// ratio (e.g. 0.999).
	TotalMetrics []string
	BadMetrics   []string
	ErrorGoal    float64

	// Page and Warn are the two alert rules.
	Page BurnRule
	Warn BurnRule
}

// DefaultSLOConfig returns LB-timescale objectives: p-latency 99% ≤ 250ms,
// 99.9% success, page at 10× burn over 10s+1m, warn at 2× over 1m+5m.
// Metric names are left to the embedder.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		LatencyThresholdNS: int64(250 * time.Millisecond),
		LatencyGoal:        0.99,
		ErrorGoal:          0.999,
		Page:               BurnRule{Burn: 10, Short: 10 * time.Second, Long: time.Minute},
		Warn:               BurnRule{Burn: 2, Short: time.Minute, Long: 5 * time.Minute},
	}
}

// Validate reports the first invalid field.
func (c SLOConfig) Validate() error {
	if c.LatencyMetric != "" {
		if c.LatencyThresholdNS <= 0 {
			return fmt.Errorf("telemetry: slo latency threshold must be positive, got %d", c.LatencyThresholdNS)
		}
		if c.LatencyGoal <= 0 || c.LatencyGoal >= 1 {
			return fmt.Errorf("telemetry: slo latency goal %.4f outside (0,1)", c.LatencyGoal)
		}
	}
	if len(c.TotalMetrics) > 0 && (c.ErrorGoal <= 0 || c.ErrorGoal >= 1) {
		return fmt.Errorf("telemetry: slo error goal %.4f outside (0,1)", c.ErrorGoal)
	}
	for _, r := range []struct {
		name string
		rule BurnRule
	}{{"page", c.Page}, {"warn", c.Warn}} {
		if r.rule.Burn <= 0 {
			return fmt.Errorf("telemetry: slo %s burn must be positive, got %g", r.name, r.rule.Burn)
		}
		if r.rule.Short <= 0 || r.rule.Long < r.rule.Short {
			return fmt.Errorf("telemetry: slo %s windows want 0 < short ≤ long, got %v/%v",
				r.name, r.rule.Short, r.rule.Long)
		}
	}
	return nil
}

// ParseSLOSpec overlays a compact objective grammar on base:
//
//	spec    := clause (";" clause)*
//	clause  := "latency<=" DUR "@" PCT     latency objective (PCT of requests ≤ DUR)
//	         | "errors@" PCT               success-ratio objective
//	         | "page=" Nx "/" DUR "+" DUR  page rule: burn ≥ N over short+long
//	         | "warn=" Nx "/" DUR "+" DUR  warn rule
//
// e.g. "latency<=50ms@99%;errors@99.9%;page=10x/10s+1m;warn=2x/1m+5m".
// Metric bindings are untouched; clauses may appear in any order.
func ParseSLOSpec(spec string, base SLOConfig) (SLOConfig, error) {
	c := base
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		switch {
		case strings.HasPrefix(clause, "latency<="):
			rest := clause[len("latency<="):]
			durS, pctS, ok := strings.Cut(rest, "@")
			if !ok {
				return base, fmt.Errorf("telemetry: slo clause %q: want latency<=DUR@PCT", clause)
			}
			d, err := time.ParseDuration(durS)
			if err != nil || d <= 0 {
				return base, fmt.Errorf("telemetry: slo clause %q: bad duration %q", clause, durS)
			}
			goal, err := parsePercent(pctS)
			if err != nil {
				return base, fmt.Errorf("telemetry: slo clause %q: %v", clause, err)
			}
			c.LatencyThresholdNS, c.LatencyGoal = int64(d), goal
		case strings.HasPrefix(clause, "errors@"):
			goal, err := parsePercent(clause[len("errors@"):])
			if err != nil {
				return base, fmt.Errorf("telemetry: slo clause %q: %v", clause, err)
			}
			c.ErrorGoal = goal
		case strings.HasPrefix(clause, "page="), strings.HasPrefix(clause, "warn="):
			kind, rest, _ := strings.Cut(clause, "=")
			rule, err := parseBurnRule(rest)
			if err != nil {
				return base, fmt.Errorf("telemetry: slo clause %q: %v", clause, err)
			}
			if kind == "page" {
				c.Page = rule
			} else {
				c.Warn = rule
			}
		default:
			return base, fmt.Errorf("telemetry: slo clause %q: want latency<=…, errors@…, page=…, or warn=…", clause)
		}
	}
	if err := c.Validate(); err != nil {
		return base, err
	}
	return c, nil
}

// parsePercent reads "99.9%" (or "99.9") as 0.999.
func parsePercent(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	if err != nil || v <= 0 || v >= 100 {
		return 0, fmt.Errorf("bad percentage %q (want e.g. 99.9%%)", s)
	}
	return v / 100, nil
}

// parseBurnRule reads "10x/10s+1m".
func parseBurnRule(s string) (BurnRule, error) {
	burnS, winS, ok := strings.Cut(s, "/")
	if !ok {
		return BurnRule{}, fmt.Errorf("want Nx/SHORT+LONG, got %q", s)
	}
	burn, err := strconv.ParseFloat(strings.TrimSuffix(burnS, "x"), 64)
	if err != nil || burn <= 0 {
		return BurnRule{}, fmt.Errorf("bad burn factor %q", burnS)
	}
	shortS, longS, ok := strings.Cut(winS, "+")
	if !ok {
		return BurnRule{}, fmt.Errorf("want SHORT+LONG windows, got %q", winS)
	}
	short, err := time.ParseDuration(shortS)
	if err != nil {
		return BurnRule{}, fmt.Errorf("bad short window %q", shortS)
	}
	long, err := time.ParseDuration(longS)
	if err != nil {
		return BurnRule{}, fmt.Errorf("bad long window %q", longS)
	}
	return BurnRule{Burn: burn, Short: short, Long: long}, nil
}

// SLIBurn is one SLI's burn rates across the four alert windows.
type SLIBurn struct {
	PageShort float64 `json:"page_short"`
	PageLong  float64 `json:"page_long"`
	WarnShort float64 `json:"warn_short"`
	WarnLong  float64 `json:"warn_long"`
}

// SLOStatus is the monitor's full externally visible state (the /slo body).
type SLOStatus struct {
	State       string `json:"state"`
	SinceUnixNS int64  `json:"since_unix_ns"`

	LatencyObjective string  `json:"latency_objective,omitempty"`
	ErrorObjective   string  `json:"error_objective,omitempty"`
	Latency          SLIBurn `json:"latency_burn"`
	Errors           SLIBurn `json:"errors_burn"`

	// Windowed latency over the page long window (null with no traffic).
	WindowP50MS *float64 `json:"window_p50_ms"`
	WindowP99MS *float64 `json:"window_p99_ms"`
	// Windowed request rate over the page long window.
	WindowReqPerSec float64 `json:"window_req_per_sec"`
}

// SLO evaluates the objectives after every Windows tick. Its verdict is
// also pushed into the registry as gauges — slo.state (0 ok / 1 warn /
// 2 page), slo.latency.burn_milli and slo.errors.burn_milli (page-short
// burn ×1000) — plus a slo.transitions counter.
type SLO struct {
	cfg SLOConfig
	win *Windows

	stateGauge  *Gauge
	latBurn     *Gauge
	errBurn     *Gauge
	transitions *Counter

	mu    sync.Mutex
	state SLOState
	last  SLOStatus
}

// NewSLO validates cfg, registers the slo.* instruments on reg, and hooks
// the monitor onto win's ticks.
func NewSLO(cfg SLOConfig, win *Windows, reg *Registry) (*SLO, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &SLO{cfg: cfg, win: win}
	if reg != nil {
		s.stateGauge = reg.Gauge(Metric{Name: "slo.state", Layer: "slo", Unit: "state",
			Help: "SLO burn-rate verdict: 0 ok, 1 warn, 2 page"})
		s.latBurn = reg.Gauge(Metric{Name: "slo.latency.burn_milli", Layer: "slo", Unit: "milli",
			Help: "latency SLI burn rate over the page short window, x1000"})
		s.errBurn = reg.Gauge(Metric{Name: "slo.errors.burn_milli", Layer: "slo", Unit: "milli",
			Help: "error SLI burn rate over the page short window, x1000"})
		s.transitions = reg.Counter(Metric{Name: "slo.transitions", Layer: "slo", Unit: "flips",
			Help: "SLO state transitions (any direction)"})
	}
	s.last.State = SLOOK.String()
	s.last.LatencyObjective = cfg.latencyObjective()
	s.last.ErrorObjective = cfg.errorObjective()
	win.OnTick(s.Evaluate)
	return s, nil
}

func (c SLOConfig) latencyObjective() string {
	if c.LatencyMetric == "" {
		return ""
	}
	return fmt.Sprintf("%.4g%% of requests ≤ %s",
		c.LatencyGoal*100, time.Duration(c.LatencyThresholdNS))
}

func (c SLOConfig) errorObjective() string {
	if len(c.TotalMetrics) == 0 {
		return ""
	}
	return fmt.Sprintf("%.4g%% success", c.ErrorGoal*100)
}

// Config returns the monitor's configuration.
func (s *SLO) Config() SLOConfig { return s.cfg }

// State returns the current verdict.
func (s *SLO) State() SLOState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Status returns the full externally visible state.
func (s *SLO) Status() SLOStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// latencyBurn computes the latency SLI's burn over one window: the bad
// fraction (observations above the threshold) divided by the error budget.
func (s *SLO) latencyBurn(d WindowDelta) float64 {
	if s.cfg.LatencyMetric == "" {
		return 0
	}
	good, ok := d.FractionAtMost(s.cfg.LatencyMetric, s.cfg.LatencyThresholdNS)
	if !ok {
		return 0 // no traffic in the window burns nothing
	}
	return (1 - good) / (1 - s.cfg.LatencyGoal)
}

// errorBurn computes the error SLI's burn over one window.
func (s *SLO) errorBurn(d WindowDelta) float64 {
	if len(s.cfg.TotalMetrics) == 0 {
		return 0
	}
	var total, bad int64
	for _, m := range s.cfg.TotalMetrics {
		total += d.Delta(m)
	}
	for _, m := range s.cfg.BadMetrics {
		bad += d.Delta(m)
	}
	if total <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - s.cfg.ErrorGoal)
}

// burns evaluates one SLI across the four alert windows.
func (s *SLO) burns(f func(WindowDelta) float64) SLIBurn {
	at := func(win time.Duration) float64 {
		d, ok := s.win.Window(win)
		if !ok {
			return 0
		}
		return f(d)
	}
	return SLIBurn{
		PageShort: at(s.cfg.Page.Short),
		PageLong:  at(s.cfg.Page.Long),
		WarnShort: at(s.cfg.Warn.Short),
		WarnLong:  at(s.cfg.Warn.Long),
	}
}

// fires reports whether a burn rule is violated: both of its windows must
// burn at or above the rule's factor.
func fires(rule BurnRule, short, long float64) bool {
	return short >= rule.Burn && long >= rule.Burn
}

// Evaluate recomputes the verdict at nowNS. Windows.Tick calls it via the
// OnTick hook; tests drive it directly after manual ticks.
func (s *SLO) Evaluate(nowNS int64) {
	lat := s.burns(s.latencyBurn)
	errs := s.burns(s.errorBurn)

	state := SLOOK
	switch {
	case fires(s.cfg.Page, lat.PageShort, lat.PageLong) || fires(s.cfg.Page, errs.PageShort, errs.PageLong):
		state = SLOPage
	case fires(s.cfg.Warn, lat.WarnShort, lat.WarnLong) || fires(s.cfg.Warn, errs.WarnShort, errs.WarnLong):
		state = SLOWarn
	}

	status := SLOStatus{
		State:            state.String(),
		LatencyObjective: s.cfg.latencyObjective(),
		ErrorObjective:   s.cfg.errorObjective(),
		Latency:          lat,
		Errors:           errs,
	}
	if d, ok := s.win.Window(s.cfg.Page.Long); ok {
		if s.cfg.LatencyMetric != "" {
			if p50, ok := d.Quantile(s.cfg.LatencyMetric, 0.50); ok {
				p99, _ := d.Quantile(s.cfg.LatencyMetric, 0.99)
				p50ms, p99ms := p50/1e6, p99/1e6
				status.WindowP50MS, status.WindowP99MS = &p50ms, &p99ms
			}
		}
		for _, m := range s.cfg.TotalMetrics {
			status.WindowReqPerSec += d.Rate(m)
		}
	}

	s.mu.Lock()
	if state != s.state {
		s.transitions.Inc()
		s.state = state
		s.last.SinceUnixNS = nowNS
	}
	status.SinceUnixNS = s.last.SinceUnixNS
	s.last = status
	s.mu.Unlock()

	s.stateGauge.Set(int64(state))
	s.latBurn.Set(int64(lat.PageShort * 1000))
	s.errBurn.Set(int64(errs.PageShort * 1000))
}
