// Package telemetry is the runtime observability layer shared by every
// stage of the Hermes stack: the simulated kernel (accept queues, epoll
// wakeups), the eBPF dispatch path (map operations, program outcomes), the
// core control loop (Algorithm 1 decisions), and the L7 LB application
// (per-worker service metrics). The same instrumentation points drive both
// the simulated stack and the real-TCP cmd/hermes-lb proxy.
//
// Design constraints, in order:
//
//  1. Zero allocation and near-zero cost on the hot path. Instruments are
//     small handles obtained once at wiring time; recording is one or two
//     atomic operations. A nil handle is a valid no-op instrument, so
//     disabling telemetry is "don't wire a Sink" — the instrumented code
//     runs identically either way (a single nil check per record).
//  2. Stable identity. Every instrument is keyed by a Metric descriptor
//     (name, layer, unit); the catalog lives in docs/TELEMETRY.md.
//  3. Consistent snapshots. A Registry snapshot reads each value with the
//     same atomics the writers use, so it is safe under concurrent writers
//     (per-value atomicity; cross-value tearing is tolerated by design,
//     exactly like the paper's Worker Status Table reads).
package telemetry

import "sync/atomic"

// Kind classifies an instrument.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	KindCounterVec
	KindGaugeVec
	KindTimelineVec
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindCounterVec:
		return "counter_vec"
	case KindGaugeVec:
		return "gauge_vec"
	case KindTimelineVec:
		return "timeline_vec"
	default:
		return "unknown"
	}
}

// Metric is the stable identity of one instrument. Handles are obtained
// once, keyed by Metric; the hot path touches only the handle.
type Metric struct {
	// Name is the dotted metric path, e.g. "kernel.epoll.wakeups".
	Name string
	// Layer is the subsystem that records it: kernel, ebpf, core, l7lb.
	Layer string
	// Unit is the value unit: "conns", "events", "ns", "workers", ...
	Unit string
	// Help is a one-line description for the catalog.
	Help string
}

// Sink hands out instrument handles. *Registry is the live implementation;
// a nil Sink disables everything (layers then hold typed-nil handles whose
// methods no-op).
type Sink interface {
	Counter(m Metric) *Counter
	Gauge(m Metric) *Gauge
	Histogram(m Metric, bounds []int64) *Histogram
	CounterVec(m Metric, n int) *CounterVec
	GaugeVec(m Metric, n int) *GaugeVec
	TimelineVec(m Metric, n, depth int) *TimelineVec
}

// --- Counter ---

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// --- Gauge ---

// Gauge is a last-write-wins instantaneous value with optional running-max
// semantics. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v exceeds the current value (CAS loop;
// lock-free high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// --- Histogram ---

// Histogram counts observations into fixed buckets chosen at registration,
// so recording is a binary search plus two atomic adds — no allocation, no
// locks. Bucket i counts observations v ≤ bounds[i]; a final implicit
// +Inf bucket catches the rest. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []int64 // inclusive upper bounds, strictly increasing
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound ≥ v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// DurationBuckets is the default latency bucket layout in nanoseconds:
// 1µs to ~16s in powers of two. Suits accept-queue wait, epoll residency,
// and request service time at the cost model's microsecond scale.
func DurationBuckets() []int64 {
	bounds := make([]int64, 0, 25)
	for v := int64(1000); v <= 16_000_000_000; v *= 2 {
		bounds = append(bounds, v)
	}
	return bounds
}

// CountBuckets returns small-integer buckets 1,2,4,...,2^k for count-like
// distributions (events per wait, workers passing a filter).
func CountBuckets(max int64) []int64 {
	bounds := []int64{0}
	for v := int64(1); v <= max; v *= 2 {
		bounds = append(bounds, v)
	}
	return bounds
}

// --- Vectors ---

// CounterVec is a fixed-size family of counters indexed by a small dense
// id (worker id, group id). A nil *CounterVec is a no-op family.
type CounterVec struct {
	cs []Counter
}

// At returns element i's counter (nil — a no-op — when the vec is nil or
// i is out of range).
func (v *CounterVec) At(i int) *Counter {
	if v == nil || i < 0 || i >= len(v.cs) {
		return nil
	}
	return &v.cs[i]
}

// Len returns the family size (0 on nil).
func (v *CounterVec) Len() int {
	if v == nil {
		return 0
	}
	return len(v.cs)
}

// GaugeVec is a fixed-size family of gauges.
type GaugeVec struct {
	gs []Gauge
}

// At returns element i's gauge (nil no-op when out of range or vec is nil).
func (v *GaugeVec) At(i int) *Gauge {
	if v == nil || i < 0 || i >= len(v.gs) {
		return nil
	}
	return &v.gs[i]
}

// Len returns the family size (0 on nil).
func (v *GaugeVec) Len() int {
	if v == nil {
		return 0
	}
	return len(v.gs)
}

// --- Timeline ---

// Sample is one timeline point.
type Sample struct {
	TSNS  int64 `json:"ts_ns"`
	Value int64 `json:"value"`
}

// Timeline is a fixed-depth ring buffer of timestamped samples — one
// worker's recent history of a value (open connections, queue depth).
// Recording is lock-free; entries are stored through atomics so snapshots
// under concurrent writers are race-free, though a reader may observe a
// timestamp and value from adjacent writes (the WST tearing tolerance).
type Timeline struct {
	buf  []atomic.Int64 // pairs: [ts0, v0, ts1, v1, ...]
	next atomic.Uint64  // total records; next slot = next % depth
}

// Record appends one sample, overwriting the oldest once full.
func (t *Timeline) Record(tsNS, v int64) {
	if t == nil || len(t.buf) == 0 {
		return
	}
	depth := uint64(len(t.buf) / 2)
	slot := (t.next.Add(1) - 1) % depth
	t.buf[2*slot].Store(tsNS)
	t.buf[2*slot+1].Store(v)
}

// Snapshot returns the retained samples, oldest first.
func (t *Timeline) Snapshot() []Sample {
	if t == nil || len(t.buf) == 0 {
		return nil
	}
	depth := uint64(len(t.buf) / 2)
	n := t.next.Load()
	have := n
	if have > depth {
		have = depth
	}
	out := make([]Sample, 0, have)
	start := uint64(0)
	if n > depth {
		start = n % depth
	}
	for i := uint64(0); i < have; i++ {
		slot := (start + i) % depth
		out = append(out, Sample{TSNS: t.buf[2*slot].Load(), Value: t.buf[2*slot+1].Load()})
	}
	return out
}

// TimelineVec is a fixed-size family of per-worker timelines.
type TimelineVec struct {
	ts []Timeline
}

// At returns element i's timeline (nil no-op when out of range or nil vec).
func (v *TimelineVec) At(i int) *Timeline {
	if v == nil || i < 0 || i >= len(v.ts) {
		return nil
	}
	return &v.ts[i]
}

// Len returns the family size (0 on nil).
func (v *TimelineVec) Len() int {
	if v == nil {
		return 0
	}
	return len(v.ts)
}
