package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"hermes/internal/stats"
)

// Bucket is one histogram cell in a snapshot.
type Bucket struct {
	// LE is the inclusive upper bound (meaningless when Inf is set).
	LE int64 `json:"le"`
	// Inf marks the implicit +Inf overflow bucket.
	Inf   bool   `json:"inf,omitempty"`
	Count uint64 `json:"count"`
}

// MetricSnapshot is one instrument's captured state.
type MetricSnapshot struct {
	Name  string `json:"name"`
	Layer string `json:"layer"`
	Kind  string `json:"kind"`
	Unit  string `json:"unit,omitempty"`
	Help  string `json:"help,omitempty"`

	// Value carries counter/gauge readings.
	Value int64 `json:"value,omitempty"`
	// Values carries vec readings, indexed by family slot (worker id).
	Values []int64 `json:"values,omitempty"`
	// Count/Sum/Buckets carry histogram readings.
	Count   uint64   `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
	// Quantiles carries interpolated histogram quantiles (p50/p99) for
	// JSON consumers. Entries are null — not 0 — when the histogram never
	// recorded, so an empty histogram can't be mistaken for a fast one.
	Quantiles map[string]*float64 `json:"quantiles,omitempty"`
	// Timelines carries per-slot ring-buffer samples, oldest first.
	Timelines [][]Sample `json:"timelines,omitempty"`
}

// Quantile estimates quantile p in (0,1) of a histogram snapshot by linear
// interpolation within the containing bucket. Returns 0 for non-histograms
// or empty histograms.
func (ms *MetricSnapshot) Quantile(p float64) float64 {
	if len(ms.Buckets) == 0 || ms.Count == 0 {
		return 0
	}
	bounds := make([]int64, 0, len(ms.Buckets)-1)
	counts := make([]uint64, 0, len(ms.Buckets))
	for _, b := range ms.Buckets {
		if !b.Inf {
			bounds = append(bounds, b.LE)
		}
		counts = append(counts, b.Count)
	}
	return stats.BucketQuantile(bounds, counts, p)
}

// Total sums Values (vec metrics) or returns Value.
func (ms *MetricSnapshot) Total() int64 {
	if len(ms.Values) == 0 {
		return ms.Value
	}
	var t int64
	for _, v := range ms.Values {
		t += v
	}
	return t
}

// Snapshot is a point-in-time capture of a whole registry, ordered by
// metric name.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Get returns the named metric's snapshot, or nil.
func (s Snapshot) Get(name string) *MetricSnapshot {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return &s.Metrics[i]
		}
	}
	return nil
}

// histQuantiles builds a histogram snapshot's exported quantile set: real
// values when it recorded, null entries when it is empty.
func histQuantiles(ms *MetricSnapshot) map[string]*float64 {
	q := map[string]*float64{"p50": nil, "p99": nil}
	if ms.Count > 0 {
		p50, p99 := ms.Quantile(0.50), ms.Quantile(0.99)
		q["p50"], q["p99"] = &p50, &p99
	}
	return q
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Text renders a compact human-readable dump, one metric per line.
func (s Snapshot) Text() string {
	var b strings.Builder
	for i := range s.Metrics {
		ms := &s.Metrics[i]
		fmt.Fprintf(&b, "%-34s %-12s", ms.Name, ms.Kind)
		switch {
		case len(ms.Buckets) > 0:
			mean := 0.0
			if ms.Count > 0 {
				mean = float64(ms.Sum) / float64(ms.Count)
			}
			fmt.Fprintf(&b, "n=%d mean=%.0f p50=%.0f p99=%.0f %s",
				ms.Count, mean, ms.Quantile(0.50), ms.Quantile(0.99), ms.Unit)
		case len(ms.Timelines) > 0:
			total := 0
			for _, tl := range ms.Timelines {
				total += len(tl)
			}
			fmt.Fprintf(&b, "slots=%d samples=%d %s", len(ms.Timelines), total, ms.Unit)
		case len(ms.Values) > 0:
			fmt.Fprintf(&b, "total=%d per-slot=%v %s", ms.Total(), ms.Values, ms.Unit)
		default:
			fmt.Fprintf(&b, "%d %s", ms.Value, ms.Unit)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
