package telemetry

import (
	"math"
	"testing"
	"time"
)

// sloFixture wires a registry + windows + monitor with tight fake-clock
// windows: page at 10x over 2s+4s, warn at 2x over 4s+8s.
func sloFixture(t *testing.T) (*Registry, *Counter, *Counter, *Histogram, *Windows, *SLO) {
	t.Helper()
	reg := NewRegistry()
	total := reg.Counter(Metric{Name: "t.requests", Layer: "t", Unit: "reqs"})
	bad := reg.Counter(Metric{Name: "t.errors", Layer: "t", Unit: "errors"})
	lat := reg.Histogram(Metric{Name: "t.latency_ns", Layer: "t", Unit: "ns"}, DurationBuckets())
	win, err := NewWindows(reg, WindowConfig{Tick: time.Second, Depth: 32})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SLOConfig{
		LatencyMetric:      "t.latency_ns",
		LatencyThresholdNS: int64(50 * time.Millisecond),
		LatencyGoal:        0.99,
		TotalMetrics:       []string{"t.requests"},
		BadMetrics:         []string{"t.errors"},
		ErrorGoal:          0.999,
		Page:               BurnRule{Burn: 10, Short: 2 * time.Second, Long: 4 * time.Second},
		Warn:               BurnRule{Burn: 2, Short: 4 * time.Second, Long: 8 * time.Second},
	}
	slo, err := NewSLO(cfg, win, reg)
	if err != nil {
		t.Fatal(err)
	}
	return reg, total, bad, lat, win, slo
}

// TestSLOBurnStateTransitions walks the monitor through ok → page → warn →
// ok under a fake clock: a hard error burst pages, the recovery tail keeps
// the longer warn windows burning, and full recovery returns to ok.
func TestSLOBurnStateTransitions(t *testing.T) {
	reg, total, bad, lat, win, slo := sloFixture(t)

	now := int64(0)
	tick := func(requests, errors int) {
		for i := 0; i < requests; i++ {
			total.Inc()
			lat.Observe(int64(time.Millisecond))
		}
		for i := 0; i < errors; i++ {
			bad.Inc()
		}
		now += int64(time.Second)
		win.Tick(now)
	}

	// Clean traffic: 100 req/s, no errors → ok.
	for i := 0; i < 6; i++ {
		tick(100, 0)
	}
	if got := slo.State(); got != SLOOK {
		t.Fatalf("clean traffic state = %v, want ok", got)
	}
	if g := reg.Snapshot().Get("slo.state"); g == nil || g.Value != 0 {
		t.Fatalf("slo.state gauge = %+v, want 0", g)
	}

	// Error budget is 0.1%: a 10% error ratio burns at 100x — page fires
	// once both page windows (2s+4s) see it.
	for i := 0; i < 4; i++ {
		tick(100, 10)
	}
	if got := slo.State(); got != SLOPage {
		t.Fatalf("error burst state = %v, want page (status %+v)", got, slo.Status())
	}
	st := slo.Status()
	if st.Errors.PageShort < 10 || st.Errors.PageLong < 10 {
		t.Errorf("page burns = %+v, want ≥ 10 on both windows", st.Errors)
	}
	if g := reg.Snapshot().Get("slo.state"); g == nil || g.Value != 2 {
		t.Fatalf("slo.state gauge = %+v, want 2", g)
	}

	// The hard burst ends but a low-grade 0.5% error tail remains: burn 5x
	// clears the 10x page rule yet keeps both warn windows above 2x.
	for i := 0; i < 4; i++ {
		tick(200, 1)
	}
	if got := slo.State(); got != SLOWarn {
		t.Fatalf("recovery tail state = %v, want warn (status %+v)", got, slo.Status())
	}

	// Clean long enough for every window → ok, with transitions counted.
	for i := 0; i < 10; i++ {
		tick(100, 0)
	}
	if got := slo.State(); got != SLOOK {
		t.Fatalf("recovered state = %v, want ok (status %+v)", got, slo.Status())
	}
	if c := reg.Snapshot().Get("slo.transitions"); c == nil || c.Value != 3 {
		t.Errorf("slo.transitions = %+v, want 3 (ok→page→warn→ok)", c)
	}
}

// TestSLOLatencyBurn pages on slow-but-successful traffic: the latency SLI
// burns even with a zero error rate.
func TestSLOLatencyBurn(t *testing.T) {
	_, total, _, lat, win, slo := sloFixture(t)
	now := int64(0)
	tick := func(slowShare float64) {
		for i := 0; i < 100; i++ {
			total.Inc()
			if float64(i) < slowShare*100 {
				lat.Observe(int64(400 * time.Millisecond)) // over the 50ms objective
			} else {
				lat.Observe(int64(time.Millisecond))
			}
		}
		now += int64(time.Second)
		win.Tick(now)
	}
	for i := 0; i < 6; i++ {
		tick(0)
	}
	if got := slo.State(); got != SLOOK {
		t.Fatalf("fast traffic state = %v, want ok", got)
	}
	// 20% slow with a 1% budget burns at ~20x → page.
	for i := 0; i < 4; i++ {
		tick(0.20)
	}
	if got := slo.State(); got != SLOPage {
		t.Fatalf("slow traffic state = %v, want page (status %+v)", got, slo.Status())
	}
	st := slo.Status()
	if st.WindowP99MS == nil || *st.WindowP99MS <= 50 {
		t.Errorf("windowed p99 = %v, want > 50ms", st.WindowP99MS)
	}
	if st.WindowReqPerSec <= 0 {
		t.Errorf("windowed rate = %g, want > 0", st.WindowReqPerSec)
	}
}

// TestSLONoTrafficBurnsNothing: an idle proxy must not page (no requests →
// zero burn, not division blowups).
func TestSLONoTrafficBurnsNothing(t *testing.T) {
	_, _, _, _, win, slo := sloFixture(t)
	for i := int64(1); i <= 10; i++ {
		win.Tick(i * int64(time.Second))
	}
	if got := slo.State(); got != SLOOK {
		t.Fatalf("idle state = %v, want ok", got)
	}
}

// TestParseSLOSpec covers the config grammar round trip and its errors.
func TestParseSLOSpec(t *testing.T) {
	base := DefaultSLOConfig()
	base.LatencyMetric = "t.latency_ns"
	base.TotalMetrics = []string{"t.requests"}

	c, err := ParseSLOSpec("latency<=50ms@99%;errors@99.9%;page=14.4x/10s+1m;warn=3x/1m+5m", base)
	if err != nil {
		t.Fatal(err)
	}
	if c.LatencyThresholdNS != int64(50*time.Millisecond) || c.LatencyGoal != 0.99 {
		t.Errorf("latency objective = %d@%g", c.LatencyThresholdNS, c.LatencyGoal)
	}
	if math.Abs(c.ErrorGoal-0.999) > 1e-9 {
		t.Errorf("error goal = %g", c.ErrorGoal)
	}
	if c.Page.Burn != 14.4 || c.Page.Short != 10*time.Second || c.Page.Long != time.Minute {
		t.Errorf("page rule = %+v", c.Page)
	}
	if c.Warn.Burn != 3 || c.Warn.Long != 5*time.Minute {
		t.Errorf("warn rule = %+v", c.Warn)
	}

	// Empty spec keeps the base untouched.
	if c2, err := ParseSLOSpec("", base); err != nil || c2.LatencyGoal != base.LatencyGoal {
		t.Errorf("empty spec: %+v, %v", c2, err)
	}

	for _, bad := range []string{
		"latency<=50ms",        // missing @PCT
		"latency<=nope@99%",    // bad duration
		"errors@200%",          // out of range
		"page=10x",             // missing windows
		"page=10x/1m+10s",      // long < short
		"warn=0x/1m+5m",        // zero burn
		"throughput>=100",      // unknown clause
		"latency<=50ms@99%%%%", // garbage pct
	} {
		if _, err := ParseSLOSpec(bad, base); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}
