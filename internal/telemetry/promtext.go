package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file renders a Snapshot in the OpenMetrics text exposition format
// (the Prometheus-compatible subset): one family per instrument with HELP
// and TYPE lines, counters suffixed _total, vec slots as a `slot` label,
// histograms as cumulative _bucket series ending in le="+Inf" plus _sum and
// _count, and a terminating `# EOF`. internal/openmetrics validates the
// output strictly (tests and cmd/checkprom); the proxy admin server exposes
// it as GET /metrics.

// PromContentType is the Content-Type for OpenMetrics exposition responses.
const PromContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// PromName sanitizes a dotted catalog name into a Prometheus metric name:
// "hermes_" + the name with every non-[a-zA-Z0-9_] byte mapped to '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len("hermes_") + len(name))
	b.WriteString("hermes_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeHelp escapes a HELP text: backslash and newline.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// PromEscapeLabel escapes a label value: backslash, double quote, newline.
func PromEscapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteOpenMetrics renders the snapshot as OpenMetrics text. Every
// registered instrument is exposed; sanitized-name collisions are an error
// (two catalog names must not map to one exposition family).
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	seen := make(map[string]string, len(s.Metrics))
	for i := range s.Metrics {
		ms := &s.Metrics[i]
		fam := PromName(ms.Name)
		if prev, dup := seen[fam]; dup {
			return fmt.Errorf("telemetry: exposition name collision: %q and %q both map to %q", prev, ms.Name, fam)
		}
		seen[fam] = ms.Name
		if err := writeFamily(w, fam, ms); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func writeFamily(w io.Writer, fam string, ms *MetricSnapshot) error {
	help := ms.Help
	if help == "" {
		help = fmt.Sprintf("%s-layer %s (%s)", ms.Layer, ms.Kind, ms.Unit)
	}
	typ := "gauge"
	switch ms.Kind {
	case "counter", "counter_vec":
		typ = "counter"
	case "histogram":
		typ = "histogram"
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam, promEscapeHelp(help), fam, typ); err != nil {
		return err
	}
	switch ms.Kind {
	case "counter":
		_, err := fmt.Fprintf(w, "%s_total %d\n", fam, ms.Value)
		return err
	case "gauge":
		_, err := fmt.Fprintf(w, "%s %d\n", fam, ms.Value)
		return err
	case "counter_vec":
		for i, v := range ms.Values {
			if _, err := fmt.Fprintf(w, "%s_total{slot=\"%d\"} %d\n", fam, i, v); err != nil {
				return err
			}
		}
		return nil
	case "gauge_vec":
		for i, v := range ms.Values {
			if _, err := fmt.Fprintf(w, "%s{slot=\"%d\"} %d\n", fam, i, v); err != nil {
				return err
			}
		}
		return nil
	case "histogram":
		var cum uint64
		for _, b := range ms.Buckets {
			cum += b.Count
			le := "+Inf"
			if !b.Inf {
				le = strconv.FormatInt(b.LE, 10)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", fam, le, cum); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", fam, ms.Sum, fam, ms.Count)
		return err
	case "timeline_vec":
		// Timelines export their most recent value per slot (scrape model:
		// history reconstitutes server-side from repeated scrapes).
		for i, tl := range ms.Timelines {
			if len(tl) == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{slot=\"%d\"} %d\n", fam, i, tl[len(tl)-1].Value); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("telemetry: exposition: unknown kind %q for %q", ms.Kind, ms.Name)
	}
}
