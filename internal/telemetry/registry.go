package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is the live Sink: it owns every registered instrument and can
// snapshot them all atomically-per-value at any time. Registration takes a
// lock (it happens once, at wiring time); recording through the returned
// handles is lock-free.
//
// Requesting the same metric name twice returns the same handle, so
// several components may share an instrument (e.g. the per-worker wakeup
// vec wired to each epoll instance).
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byName  map[string]*entry
}

type entry struct {
	m    Metric
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
	cv   *CounterVec
	gv   *GaugeVec
	tv   *TimelineVec
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// get finds or creates the entry for m. The caller must hold r.mu and must
// finish initializing a fresh entry's instrument before releasing it, so
// that every entry visible to Snapshot is fully built.
func (r *Registry) get(m Metric, kind Kind) *entry {
	if e, ok := r.byName[m.Name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %v (was %v)", m.Name, kind, e.kind))
		}
		return e
	}
	e := &entry{m: m, kind: kind}
	r.byName[m.Name] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter implements Sink.
func (r *Registry) Counter(m Metric) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(m, KindCounter)
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// Gauge implements Sink.
func (r *Registry) Gauge(m Metric) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(m, KindGauge)
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// Histogram implements Sink. bounds are the inclusive bucket upper bounds,
// strictly increasing; the first registration wins.
func (r *Registry) Histogram(m Metric, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(m, KindHistogram)
	if e.h == nil {
		e.h = newHistogram(bounds)
	}
	return e.h
}

// CounterVec implements Sink; n is the family size (first registration wins).
func (r *Registry) CounterVec(m Metric, n int) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(m, KindCounterVec)
	if e.cv == nil {
		e.cv = &CounterVec{cs: make([]Counter, n)}
	}
	return e.cv
}

// GaugeVec implements Sink.
func (r *Registry) GaugeVec(m Metric, n int) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(m, KindGaugeVec)
	if e.gv == nil {
		e.gv = &GaugeVec{gs: make([]Gauge, n)}
	}
	return e.gv
}

// TimelineVec implements Sink; n timelines of the given depth.
func (r *Registry) TimelineVec(m Metric, n, depth int) *TimelineVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(m, KindTimelineVec)
	if e.tv == nil {
		tv := &TimelineVec{ts: make([]Timeline, n)}
		for i := range tv.ts {
			tv.ts[i].buf = make([]atomic.Int64, 2*depth)
		}
		e.tv = tv
	}
	return e.tv
}

// Snapshot captures every registered instrument. Each value is read with
// the same atomic the writers use; the snapshot is consistent per value
// and stable once taken. Metrics are ordered by name for deterministic
// rendering.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()

	snap := Snapshot{Metrics: make([]MetricSnapshot, 0, len(entries))}
	for _, e := range entries {
		ms := MetricSnapshot{
			Name:  e.m.Name,
			Layer: e.m.Layer,
			Unit:  e.m.Unit,
			Help:  e.m.Help,
			Kind:  e.kind.String(),
		}
		switch e.kind {
		case KindCounter:
			ms.Value = int64(e.c.Load())
		case KindGauge:
			ms.Value = e.g.Load()
		case KindHistogram:
			ms.Count = e.h.Count()
			ms.Sum = e.h.Sum()
			ms.Buckets = make([]Bucket, len(e.h.counts))
			for i := range e.h.counts {
				b := Bucket{Count: e.h.counts[i].Load()}
				if i < len(e.h.bounds) {
					b.LE = e.h.bounds[i]
				} else {
					b.Inf = true
				}
				ms.Buckets[i] = b
			}
			ms.Quantiles = histQuantiles(&ms)
		case KindCounterVec:
			ms.Values = make([]int64, e.cv.Len())
			for i := range ms.Values {
				ms.Values[i] = int64(e.cv.At(i).Load())
			}
		case KindGaugeVec:
			ms.Values = make([]int64, e.gv.Len())
			for i := range ms.Values {
				ms.Values[i] = e.gv.At(i).Load()
			}
		case KindTimelineVec:
			ms.Timelines = make([][]Sample, e.tv.Len())
			for i := range ms.Timelines {
				ms.Timelines[i] = e.tv.At(i).Snapshot()
			}
		}
		snap.Metrics = append(snap.Metrics, ms)
	}
	sort.Slice(snap.Metrics, func(i, j int) bool { return snap.Metrics[i].Name < snap.Metrics[j].Name })
	return snap
}
