package telemetry

import (
	"strings"
	"testing"
	"time"
)

// fixtureRegistry builds a small registry with one of each scalar kind.
func fixtureRegistry() (*Registry, *Counter, *Histogram, *Gauge, *CounterVec) {
	reg := NewRegistry()
	c := reg.Counter(Metric{Name: "t.requests", Layer: "t", Unit: "reqs"})
	h := reg.Histogram(Metric{Name: "t.latency_ns", Layer: "t", Unit: "ns"}, []int64{1000, 2000, 4000})
	g := reg.Gauge(Metric{Name: "t.open", Layer: "t", Unit: "conns"})
	cv := reg.CounterVec(Metric{Name: "t.worker.served", Layer: "t", Unit: "reqs"}, 3)
	return reg, c, h, g, cv
}

// TestWindowDeterministicUnderSimClock drives the sampler with explicit
// sim-clock ticks and checks every windowed read exactly — the layer has no
// wall-clock dependence when ticked manually.
func TestWindowDeterministicUnderSimClock(t *testing.T) {
	reg, c, h, g, cv := fixtureRegistry()
	win, err := NewWindows(reg, WindowConfig{Tick: time.Second, Depth: 8})
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := win.Window(time.Second); ok {
		t.Fatal("window answered before two ticks exist")
	}

	// t=0s: empty baseline. Then 10 requests/sec for 3 seconds, with
	// latencies filling the 0-1000 bucket, and one slow outlier at t=3s.
	win.Tick(0)
	for sec := int64(1); sec <= 3; sec++ {
		for i := 0; i < 10; i++ {
			c.Inc()
			h.Observe(500)
			cv.At(int(sec) % 3).Inc()
		}
		if sec == 3 {
			h.Observe(3000) // outlier in the (2000,4000] bucket
		}
		g.Set(sec)
		win.Tick(sec * int64(time.Second))
	}

	d, ok := win.Window(time.Second)
	if !ok {
		t.Fatal("1s window unavailable")
	}
	if got := d.Delta("t.requests"); got != 10 {
		t.Errorf("1s delta = %d, want 10", got)
	}
	if got := d.Rate("t.requests"); got != 10 {
		t.Errorf("1s rate = %g, want 10", got)
	}
	if got := d.HistCount("t.latency_ns"); got != 11 {
		t.Errorf("1s hist count = %d, want 11", got)
	}
	if got := d.SlotDelta("t.worker.served", 0); got != 10 {
		t.Errorf("1s slot 0 delta = %d, want 10", got)
	}
	if got := d.SlotDelta("t.worker.served", 1); got != 0 {
		t.Errorf("1s slot 1 delta = %d, want 0", got)
	}

	// The 3s window spans the whole run: 30 fast + 1 slow.
	d3, ok := win.Window(3 * time.Second)
	if !ok {
		t.Fatal("3s window unavailable")
	}
	if got := d3.Delta("t.requests"); got != 30 {
		t.Errorf("3s delta = %d, want 30", got)
	}
	if got := d3.Elapsed(); got != 3*time.Second {
		t.Errorf("3s window elapsed = %v", got)
	}
	if q, ok := d3.Quantile("t.latency_ns", 0.50); !ok || q <= 0 || q > 1000 {
		t.Errorf("3s p50 = %g (ok=%v), want in (0,1000]", q, ok)
	}
	// 30/31 observations ≤ 1000: p99 lands in the outlier's bucket.
	if q, ok := d3.Quantile("t.latency_ns", 0.99); !ok || q <= 2000 || q > 4000 {
		t.Errorf("3s p99 = %g (ok=%v), want in (2000,4000]", q, ok)
	}
	if frac, ok := d3.FractionAtMost("t.latency_ns", 1000); !ok || frac < 0.96 || frac > 0.97 {
		t.Errorf("FractionAtMost(1000) = %g (ok=%v), want 30/31", frac, ok)
	}
	if frac, ok := d3.FractionAtMost("t.latency_ns", 4000); !ok || frac != 1 {
		t.Errorf("FractionAtMost(4000) = %g (ok=%v), want 1", frac, ok)
	}

	// Requesting more history than retained clamps to the oldest tick.
	dAll, ok := win.Window(time.Hour)
	if !ok || dAll.Elapsed() != 3*time.Second {
		t.Errorf("over-long window = %v (ok=%v), want clamp to 3s", dAll.Elapsed(), ok)
	}

	// A second identical run must produce identical windowed reads.
	reg2, c2, h2, g2, cv2 := fixtureRegistry()
	win2, _ := NewWindows(reg2, WindowConfig{Tick: time.Second, Depth: 8})
	win2.Tick(0)
	for sec := int64(1); sec <= 3; sec++ {
		for i := 0; i < 10; i++ {
			c2.Inc()
			h2.Observe(500)
			cv2.At(int(sec) % 3).Inc()
		}
		if sec == 3 {
			h2.Observe(3000)
		}
		g2.Set(sec)
		win2.Tick(sec * int64(time.Second))
	}
	d3b, _ := win2.Window(3 * time.Second)
	if d3.Text() != d3b.Text() {
		t.Errorf("windowed text differs across identical runs:\n%s\nvs\n%s", d3.Text(), d3b.Text())
	}
}

// TestWindowRingEviction checks that the ring drops the oldest ticks and
// windows clamp to what is retained.
func TestWindowRingEviction(t *testing.T) {
	reg, c, _, _, _ := fixtureRegistry()
	win, _ := NewWindows(reg, WindowConfig{Tick: time.Second, Depth: 4})
	for sec := int64(0); sec < 10; sec++ {
		c.Inc()
		win.Tick(sec * int64(time.Second))
	}
	// Retained ticks: t=6..9 → longest window is 3s with deltas 1/s.
	d, ok := win.Window(time.Hour)
	if !ok {
		t.Fatal("window unavailable")
	}
	if d.Elapsed() != 3*time.Second || d.Delta("t.requests") != 3 {
		t.Errorf("evicted window = %v/+%d, want 3s/+3", d.Elapsed(), d.Delta("t.requests"))
	}
}

// TestWindowDeltaText spot-checks the -stats-every rendering: counters as
// +delta (rate), histograms as windowed quantiles, gauges as level.
func TestWindowDeltaText(t *testing.T) {
	reg, c, h, g, _ := fixtureRegistry()
	win, _ := NewWindows(reg, WindowConfig{Tick: time.Second, Depth: 4})
	win.Tick(0)
	for i := 0; i < 20; i++ {
		c.Inc()
		h.Observe(1500)
	}
	g.Set(7)
	win.Tick(int64(2 * time.Second))

	d, _ := win.Window(2 * time.Second)
	text := d.Text()
	for _, want := range []string{
		"t.requests", "+20 (10.0/s) reqs",
		"t.latency_ns", "+20 (10.0/s)", "p99=",
		"t.open", "7 conns",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("delta text missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "+20 (10.0/s) ns mean") {
		t.Errorf("unexpected rendering:\n%s", text)
	}
}

// TestWindowWallClockSampler smoke-tests Start/stop: ticks advance and stop
// halts the goroutine.
func TestWindowWallClockSampler(t *testing.T) {
	reg, c, _, _, _ := fixtureRegistry()
	win, _ := NewWindows(reg, WindowConfig{Tick: 2 * time.Millisecond, Depth: 16})
	stop := win.Start()
	deadline := time.Now().Add(2 * time.Second)
	for win.Ticks() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("sampler never ticked")
		}
		c.Inc()
		time.Sleep(time.Millisecond)
	}
	stop()
	n := win.Ticks()
	time.Sleep(10 * time.Millisecond)
	if win.Ticks() != n {
		t.Error("sampler kept ticking after stop")
	}
}

// BenchmarkTelemetryHotPathSampled proves the acceptance bar: recording
// stays allocation-free while the windowed sampler is live. CI greps the
// allocs/op column.
func BenchmarkTelemetryHotPathSampled(b *testing.B) {
	reg, c, h, g, cv := fixtureRegistry()
	win, _ := NewWindows(reg, WindowConfig{Tick: time.Millisecond, Depth: 64})
	stop := win.Start()
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(int64(i))
		g.Set(int64(i))
		cv.At(i % 3).Inc()
	}
}
