package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hermes/internal/openmetrics"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry is a fixed registry exercising every instrument kind,
// including names that need sanitization and help text that needs escaping.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter(Metric{Name: "g.requests", Layer: "g", Unit: "reqs",
		Help: "requests with a \\ backslash and\na newline"}).Add(42)
	reg.Gauge(Metric{Name: "g.open-conns", Layer: "g", Unit: "conns"}).Set(-3)
	h := reg.Histogram(Metric{Name: "g.latency_ns", Layer: "g", Unit: "ns",
		Help: "end-to-end latency"}, []int64{1000, 2000, 4000})
	for _, v := range []int64{500, 1500, 1500, 3000, 9000} {
		h.Observe(v)
	}
	reg.Histogram(Metric{Name: "g.empty_hist_ns", Layer: "g", Unit: "ns"}, []int64{10, 20})
	cv := reg.CounterVec(Metric{Name: "g.worker.served", Layer: "g", Unit: "reqs"}, 3)
	cv.At(0).Add(7)
	cv.At(2).Add(9)
	gv := reg.GaugeVec(Metric{Name: "g.backend.active", Layer: "g", Unit: "reqs"}, 2)
	gv.At(1).Set(5)
	tv := reg.TimelineVec(Metric{Name: "g.worker.open_conns", Layer: "g", Unit: "conns"}, 2, 4)
	tv.At(0).Record(100, 11)
	tv.At(0).Record(200, 12)
	return reg
}

// TestOpenMetricsGolden pins the exposition byte-for-byte against
// testdata/golden.prom (refresh with -update-golden).
func TestOpenMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestOpenMetricsConformance runs the strict parser over the fixed
// registry's exposition and checks the structural facts the renderer must
// guarantee.
func TestOpenMetricsConformance(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	fams, err := openmetrics.Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition failed conformance: %v\n%s", err, buf.String())
	}
	byName := map[string]*openmetrics.Family{}
	for i := range fams {
		byName[fams[i].Name] = &fams[i]
	}

	c := byName["hermes_g_requests"]
	if c == nil || c.Type != "counter" {
		t.Fatalf("counter family = %+v", c)
	}
	if s := c.Sample("hermes_g_requests_total"); s == nil || s.Value != 42 {
		t.Errorf("counter sample = %+v", s)
	}
	if !strings.Contains(c.Help, "\\ backslash and\na newline") {
		t.Errorf("help round-trip = %q", c.Help)
	}

	if g := byName["hermes_g_open_conns"]; g == nil || g.Type != "gauge" ||
		g.Sample("hermes_g_open_conns") == nil || g.Sample("hermes_g_open_conns").Value != -3 {
		t.Errorf("sanitized gauge family = %+v", g)
	}

	h := byName["hermes_g_latency_ns"]
	if h == nil || h.Type != "histogram" {
		t.Fatalf("histogram family = %+v", h)
	}
	// Cumulative buckets for observations 500,1500,1500,3000,9000 over
	// bounds 1000/2000/4000: 1,3,4, +Inf 5.
	wantBuckets := map[string]float64{"1000": 1, "2000": 3, "4000": 4, "+Inf": 5}
	for i := range h.Samples {
		s := &h.Samples[i]
		if s.Name != "hermes_g_latency_ns_bucket" {
			continue
		}
		if want, ok := wantBuckets[s.Label("le")]; !ok || s.Value != want {
			t.Errorf("bucket le=%s = %g, want %g", s.Label("le"), s.Value, want)
		}
	}
	if s := h.Sample("hermes_g_latency_ns_count"); s == nil || s.Value != 5 {
		t.Errorf("_count = %+v", s)
	}
	if s := h.Sample("hermes_g_latency_ns_sum"); s == nil || s.Value != 15500 {
		t.Errorf("_sum = %+v", s)
	}

	// Vec slots surface as slot labels.
	cv := byName["hermes_g_worker_served"]
	if cv == nil || cv.Type != "counter" || len(cv.Samples) != 3 {
		t.Fatalf("counter-vec family = %+v", cv)
	}
	found := false
	for _, s := range cv.Samples {
		if s.Label("slot") == "2" && s.Value == 9 {
			found = true
		}
	}
	if !found {
		t.Errorf("counter-vec slot 2 missing: %+v", cv.Samples)
	}

	// Timelines export their latest value only.
	tv := byName["hermes_g_worker_open_conns"]
	if tv == nil || len(tv.Samples) != 1 || tv.Samples[0].Value != 12 || tv.Samples[0].Label("slot") != "0" {
		t.Errorf("timeline family = %+v", tv)
	}
}

// TestOpenMetricsNameCollision: two catalog names mapping to one exposition
// family must be refused, not silently merged.
func TestOpenMetricsNameCollision(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Metric{Name: "x.a", Layer: "t", Unit: "u"})
	reg.Counter(Metric{Name: "x_a", Layer: "t", Unit: "u"})
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, reg.Snapshot()); err == nil {
		t.Fatal("want collision error, got nil")
	}
}

// TestSLOExpositionIncluded: the slo.* gauges registered by the monitor ride
// the same exposition (the burn verdict is scrapeable).
func TestSLOExpositionIncluded(t *testing.T) {
	reg := NewRegistry()
	win, err := NewWindows(reg, DefaultWindowConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSLOConfig()
	cfg.LatencyMetric = "t.latency_ns"
	reg.Histogram(Metric{Name: "t.latency_ns", Layer: "t", Unit: "ns"}, DurationBuckets())
	if _, err := NewSLO(cfg, win, reg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := openmetrics.Validate(buf.Bytes()); err != nil {
		t.Fatalf("slo exposition failed conformance: %v", err)
	}
	for _, want := range []string{"hermes_slo_state", "hermes_slo_latency_burn_milli", "hermes_slo_transitions_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %s:\n%s", want, buf.String())
		}
	}
}
