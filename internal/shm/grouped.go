package shm

import "fmt"

// GroupSize is the maximum number of workers one selection bitmap can
// address: the paper synchronizes coarse-filter results through a single
// 64-bit atomic<int>, capping each group at 64 workers (§7 "Will the 64-bit
// atomic<int> limit...").
const GroupSize = 64

// Grouped is the two-level Worker Status Table for fleets larger than one
// bitmap's worth of workers — and, with small spans, the cache-locality
// grouping of Fig. A6. Workers are partitioned into fixed-span groups; each
// group has an independent WST updated exclusively by its own workers.
type Grouped struct {
	groups  []*WST
	workers int
	span    int
}

// NewGrouped builds a grouped table for n workers with the maximum span of
// 64: the >64-worker scaling layout of §7. Worker global IDs are dense:
// worker g*span+i is slot i of group g; the final group may be partial.
func NewGrouped(n int) *Grouped { return NewGroupedSpan(n, GroupSize) }

// NewGroupedSpan builds a grouped table with an explicit group span in
// 1..64. Smaller spans trade balance for locality (Fig. A6: "the grouping
// granularity controls the trade-off").
func NewGroupedSpan(n, span int) *Grouped {
	if n < 1 {
		panic(fmt.Sprintf("shm: worker count %d < 1", n))
	}
	if span < 1 || span > GroupSize {
		panic(fmt.Sprintf("shm: group span %d outside 1..%d", span, GroupSize))
	}
	ng := (n + span - 1) / span
	g := &Grouped{groups: make([]*WST, ng), workers: n, span: span}
	for i := 0; i < ng; i++ {
		size := span
		if i == ng-1 {
			if rem := n - i*span; rem > 0 {
				size = rem
			}
		}
		g.groups[i] = NewWST(size)
	}
	return g
}

// Workers returns the total worker count.
func (g *Grouped) Workers() int { return g.workers }

// Groups returns the number of groups.
func (g *Grouped) Groups() int { return len(g.groups) }

// Span returns the group span.
func (g *Grouped) Span() int { return g.span }

// Group returns the WST of group gi.
func (g *Grouped) Group(gi int) *WST { return g.groups[gi] }

// Locate maps a global worker ID to (group, slot).
func (g *Grouped) Locate(worker int) (group, slot int) {
	if worker < 0 || worker >= g.workers {
		panic(fmt.Sprintf("shm: worker %d out of range [0,%d)", worker, g.workers))
	}
	return worker / g.span, worker % g.span
}

// GlobalID maps (group, slot) back to the global worker ID.
func (g *Grouped) GlobalID(group, slot int) int { return group*g.span + slot }

// Writer returns the update handle for a global worker ID.
func (g *Grouped) Writer(worker int) Writer {
	gi, slot := g.Locate(worker)
	return g.groups[gi].Writer(slot)
}
