package shm

import "sync"

// LockedWST is the mutex-guarded alternative the paper rejects (§5.3.1
// argues for lock-free access). It implements the same operations behind a
// single RWMutex and exists for the lock-free-vs-locked ablation benchmark;
// it is not used on any Hermes fast path.
type LockedWST struct {
	mu      sync.RWMutex
	slots   []Metrics
	sel     uint64
	workers int
}

// NewLockedWST creates a mutex-guarded table for n workers.
func NewLockedWST(n int) *LockedWST {
	return &LockedWST{slots: make([]Metrics, n), workers: n}
}

// Workers returns the number of worker slots.
func (t *LockedWST) Workers() int { return t.workers }

// SetLoopEnter records the loop-entry timestamp for worker id.
func (t *LockedWST) SetLoopEnter(id int, ns int64) {
	t.mu.Lock()
	t.slots[id].LoopEnterNS = ns
	t.mu.Unlock()
}

// AddBusy adjusts worker id's pending-event count.
func (t *LockedWST) AddBusy(id int, delta int64) {
	t.mu.Lock()
	t.slots[id].Busy += delta
	t.mu.Unlock()
}

// AddConn adjusts worker id's connection count.
func (t *LockedWST) AddConn(id int, delta int64) {
	t.mu.Lock()
	t.slots[id].Conn += delta
	t.mu.Unlock()
}

// Snapshot copies all metrics under the read lock.
func (t *LockedWST) Snapshot(dst []Metrics) []Metrics {
	t.mu.RLock()
	dst = append(dst, t.slots...)
	t.mu.RUnlock()
	return dst
}

// StoreSelection publishes the selection bitmap under the lock.
func (t *LockedWST) StoreSelection(bitmap uint64) {
	t.mu.Lock()
	t.sel = bitmap
	t.mu.Unlock()
}

// LoadSelection reads the selection bitmap under the read lock.
func (t *LockedWST) LoadSelection() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sel
}
