// Package shm models the inter-process shared memory that Hermes workers use
// to publish runtime status and the scheduler uses to read it (§5.3.1).
//
// In production, Hermes maps a POSIX shared-memory segment into every worker
// process and accesses it with C++ atomic<int>. Go has no cross-process
// shared structs, so this package keeps the same contract at the memory
// level: a Region is a flat, offset-addressed array of 64-bit words, and
// every access goes through sync/atomic. Goroutines stand in for worker
// processes; nothing in the API would change if the words lived in a real
// mmap'd segment.
//
// The concurrency discipline mirrors the paper exactly:
//
//   - the region is partitioned by worker, so writers never contend;
//   - readers take no locks and tolerate cross-variable tears — only
//     per-variable atomicity is guaranteed (each metric is one word);
//   - the scheduler's output is a single 64-bit selection bitmap word,
//     updated with one atomic store so concurrent scheduler instances
//     cannot corrupt it (§5.3.2).
package shm

import (
	"fmt"
	"sync/atomic"
)

// Region is a flat array of atomically accessed 64-bit words, standing in
// for a shared-memory segment. Word indices play the role of byte offsets;
// alignment is by construction.
type Region struct {
	words []uint64
}

// NewRegion allocates a zeroed region of n words.
func NewRegion(n int) *Region {
	if n < 0 {
		panic(fmt.Sprintf("shm: negative region size %d", n))
	}
	return &Region{words: make([]uint64, n)}
}

// Len returns the number of words in the region.
func (r *Region) Len() int { return len(r.words) }

// Load atomically reads word i.
func (r *Region) Load(i int) uint64 { return atomic.LoadUint64(&r.words[i]) }

// Store atomically writes word i.
func (r *Region) Store(i int, v uint64) { atomic.StoreUint64(&r.words[i], v) }

// Add atomically adds delta (two's complement for negatives) to word i and
// returns the new value.
func (r *Region) Add(i int, delta int64) uint64 {
	return atomic.AddUint64(&r.words[i], uint64(delta))
}

// CompareAndSwap atomically CASes word i.
func (r *Region) CompareAndSwap(i int, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&r.words[i], old, new)
}

// LoadInt64 reads word i as a signed value.
func (r *Region) LoadInt64(i int) int64 { return int64(r.Load(i)) }

// StoreInt64 writes a signed value to word i.
func (r *Region) StoreInt64(i int, v int64) { r.Store(i, uint64(v)) }
