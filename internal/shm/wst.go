package shm

import "fmt"

// Worker Status Table layout (§4.1 stage 1, §5.3.1).
//
// Each worker owns one cache-line-sized slot of slotWords words so that
// writers on different cores never share a line (false-sharing avoidance;
// the paper pads per-worker partitions the same way). The three published
// metrics are exactly the paper's: the timestamp of the last event-loop
// entry (hang detection), the pending-event count ("busy"), and the
// accumulated connection count ("conn").
const (
	offLoopEnter = 0 // virtual ns of last event-loop entry
	offBusy      = 1 // pending events: += epoll_wait batch, -- per handled event
	offConn      = 2 // accumulated connections: ++ accept, -- close
	offGen       = 3 // write generation, diagnostics only
	slotWords    = 8 // one 64-byte cache line
)

// Metrics is a point-in-time copy of one worker's WST slot. Reads are
// lock-free: values may come from different instants (torn across variables
// but never within one), exactly the tolerance the paper argues is safe.
type Metrics struct {
	LoopEnterNS int64 // timestamp of last event-loop entry
	Busy        int64 // pending (delivered but unhandled) events
	Conn        int64 // live accumulated connections
}

// WST is the shared Worker Status Table: one padded slot per worker inside a
// Region, plus the single selection-bitmap word the schedulers publish to.
type WST struct {
	region  *Region
	workers int
	selWord int // region index of the selection bitmap word
}

// NewWST creates a table for n workers (1..64 for a single group; grouped
// tables for larger fleets are built from several WSTs, see Grouped).
func NewWST(n int) *WST {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("shm: worker count %d outside 1..64 (use Grouped for more)", n))
	}
	// n slots plus one trailing line holding the selection word.
	r := NewRegion(n*slotWords + slotWords)
	return &WST{region: r, workers: n, selWord: n * slotWords}
}

// Workers returns the number of worker slots.
func (t *WST) Workers() int { return t.workers }

func (t *WST) base(id int) int {
	if id < 0 || id >= t.workers {
		panic(fmt.Sprintf("shm: worker id %d out of range [0,%d)", id, t.workers))
	}
	return id * slotWords
}

// Writer returns the update handle a worker embeds in its event loop. Each
// worker must use only its own Writer; that partitioning is what makes the
// table lock-free on the write side.
func (t *WST) Writer(id int) Writer {
	return Writer{region: t.region, base: t.base(id)}
}

// Writer publishes one worker's metrics. The methods map one-to-one onto the
// instrumentation lines Hermes adds to the epoll event loop (Fig. 9):
// SetLoopEnter ↔ shm_avail_update, AddBusy ↔ shm_busy_count,
// AddConn ↔ shm_conn_count.
type Writer struct {
	region *Region
	base   int
}

// SetLoopEnter records the timestamp of entering the event loop.
func (w Writer) SetLoopEnter(ns int64) {
	w.region.StoreInt64(w.base+offLoopEnter, ns)
	w.region.Add(w.base+offGen, 1)
}

// AddBusy adjusts the pending-event count by delta.
func (w Writer) AddBusy(delta int64) {
	w.region.Add(w.base+offBusy, delta)
}

// AddConn adjusts the accumulated-connection count by delta.
func (w Writer) AddConn(delta int64) {
	w.region.Add(w.base+offConn, delta)
}

// Read returns this worker's own metrics (used by tests and diagnostics).
func (w Writer) Read() Metrics {
	return Metrics{
		LoopEnterNS: w.region.LoadInt64(w.base + offLoopEnter),
		Busy:        w.region.LoadInt64(w.base + offBusy),
		Conn:        w.region.LoadInt64(w.base + offConn),
	}
}

// Generation returns the number of loop entries published (diagnostics).
func (w Writer) Generation() uint64 { return w.region.Load(w.base + offGen) }

// Snapshot reads every worker's metrics without locks, appending into dst
// (reused across calls to stay allocation-free on the scheduling path) and
// returning the extended slice. Per-variable reads are atomic; the snapshot
// as a whole is not, by design (§5.3.1: "the most recently updated data
// better reflects the workers' runtime status").
func (t *WST) Snapshot(dst []Metrics) []Metrics {
	for id := 0; id < t.workers; id++ {
		base := id * slotWords
		dst = append(dst, Metrics{
			LoopEnterNS: t.region.LoadInt64(base + offLoopEnter),
			Busy:        t.region.LoadInt64(base + offBusy),
			Conn:        t.region.LoadInt64(base + offConn),
		})
	}
	return dst
}

// StoreSelection publishes the coarse-filter result bitmap with a single
// atomic store. Concurrent schedulers race benignly: last write wins, and
// every write is a complete, valid bitmap (§5.3.2 "concurrency management of
// scheduling results").
func (t *WST) StoreSelection(bitmap uint64) {
	t.region.Store(t.selWord, bitmap)
}

// LoadSelection reads the current selection bitmap.
func (t *WST) LoadSelection() uint64 {
	return t.region.Load(t.selWord)
}
