package shm

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRegionBasics(t *testing.T) {
	r := NewRegion(4)
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	r.Store(2, 99)
	if got := r.Load(2); got != 99 {
		t.Fatalf("Load(2) = %d, want 99", got)
	}
	r.Add(2, -100)
	if got := r.LoadInt64(2); got != -1 {
		t.Fatalf("LoadInt64 after negative Add = %d, want -1", got)
	}
	r.StoreInt64(3, -7)
	if got := r.LoadInt64(3); got != -7 {
		t.Fatalf("StoreInt64/LoadInt64 round trip = %d, want -7", got)
	}
	if !r.CompareAndSwap(2, ^uint64(0), 5) {
		t.Fatal("CAS with matching old value failed")
	}
	if r.CompareAndSwap(2, 0, 6) {
		t.Fatal("CAS with stale old value succeeded")
	}
}

func TestRegionNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRegion(-1) did not panic")
		}
	}()
	NewRegion(-1)
}

func TestWSTWriteRead(t *testing.T) {
	w := NewWST(4)
	wr := w.Writer(2)
	wr.SetLoopEnter(12345)
	wr.AddBusy(7)
	wr.AddBusy(-2)
	wr.AddConn(3)

	snap := w.Snapshot(nil)
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	got := snap[2]
	if got.LoopEnterNS != 12345 || got.Busy != 5 || got.Conn != 3 {
		t.Fatalf("worker 2 metrics = %+v", got)
	}
	for i, m := range snap {
		if i != 2 && (m.LoopEnterNS != 0 || m.Busy != 0 || m.Conn != 0) {
			t.Fatalf("worker %d slot polluted: %+v", i, m)
		}
	}
	if self := wr.Read(); self != got {
		t.Fatalf("Writer.Read %+v != snapshot %+v", self, got)
	}
	if wr.Generation() != 1 {
		t.Fatalf("Generation = %d, want 1", wr.Generation())
	}
}

func TestWSTSelectionWord(t *testing.T) {
	w := NewWST(8)
	if w.LoadSelection() != 0 {
		t.Fatal("initial selection must be empty")
	}
	w.StoreSelection(0b10110)
	if got := w.LoadSelection(); got != 0b10110 {
		t.Fatalf("selection = %b, want 10110", got)
	}
}

func TestWSTBoundsPanic(t *testing.T) {
	w := NewWST(2)
	for _, id := range []int{-1, 2, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Writer(%d) did not panic", id)
				}
			}()
			w.Writer(id)
		}()
	}
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWST(%d) did not panic", n)
				}
			}()
			NewWST(n)
		}()
	}
}

// Concurrent writers on distinct slots plus a concurrent snapshot reader:
// exercises the lock-free discipline under the race detector, and checks
// that per-slot sums are exact once writers finish (no lost updates).
func TestWSTConcurrentWritersAndReader(t *testing.T) {
	const workers = 16
	const updates = 2000
	w := NewWST(workers)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // scheduler-like reader
		defer wg.Done()
		buf := make([]Metrics, 0, workers)
		for {
			select {
			case <-stop:
				return
			default:
			}
			buf = w.Snapshot(buf[:0])
			for _, m := range buf {
				// busy may be transiently anything, but conn never goes
				// negative in this write pattern (conn only incremented).
				if m.Conn < 0 {
					t.Error("negative conn observed")
					return
				}
			}
		}
	}()

	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wr := w.Writer(id)
			for i := 0; i < updates; i++ {
				wr.SetLoopEnter(int64(i))
				wr.AddBusy(2)
				wr.AddBusy(-2)
				wr.AddConn(1)
			}
		}(id)
	}
	// Wait for writers (all but the reader goroutine).
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Let writers finish first: writers are wg-tracked along with reader, so
	// signal reader stop after a full pass of expected final state.
	for id := 0; id < workers; id++ {
		// Spin until this worker's conn reaches the target.
		wr := w.Writer(id)
		for wr.Read().Conn != updates {
			select {
			case <-done:
				t.Fatalf("worker %d conn = %d, want %d", id, wr.Read().Conn, updates)
			default:
			}
		}
	}
	close(stop)
	<-done

	snap := w.Snapshot(nil)
	for id, m := range snap {
		if m.Busy != 0 {
			t.Errorf("worker %d busy = %d, want 0", id, m.Busy)
		}
		if m.Conn != updates {
			t.Errorf("worker %d conn = %d, want %d", id, m.Conn, updates)
		}
		if m.LoopEnterNS != updates-1 {
			t.Errorf("worker %d loopEnter = %d, want %d", id, m.LoopEnterNS, updates-1)
		}
	}
}

// Concurrent schedulers racing on the selection word must always leave a
// complete bitmap from one of them (benign last-write-wins).
func TestWSTSelectionRaceIsAtomic(t *testing.T) {
	w := NewWST(8)
	valid := map[uint64]bool{0b1111: true, 0b11110000: true}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := uint64(0b1111)
			if i%2 == 1 {
				v = 0b11110000
			}
			for j := 0; j < 5000; j++ {
				w.StoreSelection(v)
				got := w.LoadSelection()
				if !valid[got] {
					t.Errorf("torn selection bitmap observed: %b", got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestLockedWSTMatchesLockFree(t *testing.T) {
	// Property: an identical op sequence applied to both implementations
	// yields identical snapshots.
	type op struct {
		Worker uint8
		Kind   uint8
		Val    int16
	}
	f := func(ops []op) bool {
		const n = 8
		lf := NewWST(n)
		lk := NewLockedWST(n)
		for _, o := range ops {
			id := int(o.Worker) % n
			switch o.Kind % 3 {
			case 0:
				lf.Writer(id).SetLoopEnter(int64(o.Val))
				lk.SetLoopEnter(id, int64(o.Val))
			case 1:
				lf.Writer(id).AddBusy(int64(o.Val))
				lk.AddBusy(id, int64(o.Val))
			case 2:
				lf.Writer(id).AddConn(int64(o.Val))
				lk.AddConn(id, int64(o.Val))
			}
		}
		a := lf.Snapshot(nil)
		b := lk.Snapshot(nil)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupedLayout(t *testing.T) {
	cases := []struct {
		n, groups, lastSize int
	}{
		{1, 1, 1},
		{64, 1, 64},
		{65, 2, 1},
		{128, 2, 64},
		{130, 3, 2},
		{256, 4, 64},
	}
	for _, c := range cases {
		g := NewGrouped(c.n)
		if g.Groups() != c.groups {
			t.Errorf("NewGrouped(%d).Groups() = %d, want %d", c.n, g.Groups(), c.groups)
		}
		if got := g.Group(g.Groups() - 1).Workers(); got != c.lastSize {
			t.Errorf("NewGrouped(%d) last group size = %d, want %d", c.n, got, c.lastSize)
		}
		if g.Workers() != c.n {
			t.Errorf("Workers() = %d, want %d", g.Workers(), c.n)
		}
	}
}

func TestGroupedLocateRoundTrip(t *testing.T) {
	g := NewGrouped(200)
	for w := 0; w < 200; w++ {
		gi, slot := g.Locate(w)
		if back := g.GlobalID(gi, slot); back != w {
			t.Fatalf("Locate/GlobalID round trip: %d -> (%d,%d) -> %d", w, gi, slot, back)
		}
		if slot >= g.Group(gi).Workers() {
			t.Fatalf("worker %d slot %d exceeds group %d size %d", w, slot, gi, g.Group(gi).Workers())
		}
	}
}

func TestGroupedWriterIsolation(t *testing.T) {
	g := NewGrouped(130)
	g.Writer(0).AddConn(1)
	g.Writer(64).AddConn(2)
	g.Writer(129).AddConn(3)
	if got := g.Group(0).Snapshot(nil)[0].Conn; got != 1 {
		t.Errorf("group0 slot0 conn = %d, want 1", got)
	}
	if got := g.Group(1).Snapshot(nil)[0].Conn; got != 2 {
		t.Errorf("group1 slot0 conn = %d, want 2", got)
	}
	if got := g.Group(2).Snapshot(nil)[1].Conn; got != 3 {
		t.Errorf("group2 slot1 conn = %d, want 3", got)
	}
}

func BenchmarkWSTWriterUpdate(b *testing.B) {
	w := NewWST(32)
	wr := w.Writer(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wr.SetLoopEnter(int64(i))
		wr.AddBusy(1)
		wr.AddBusy(-1)
	}
}

func BenchmarkWSTSnapshot32(b *testing.B) {
	w := NewWST(32)
	buf := make([]Metrics, 0, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = w.Snapshot(buf[:0])
	}
	_ = buf
}

// Ablation: lock-free vs mutex under write contention (§5.3.1).
func BenchmarkWSTLockFreeVsMutex(b *testing.B) {
	b.Run("lockfree", func(b *testing.B) {
		w := NewWST(32)
		b.RunParallel(func(pb *testing.PB) {
			wr := w.Writer(0) // same-slot worst case is not representative;
			// per-goroutine slots model per-process partitions.
			i := 0
			for pb.Next() {
				wr.AddBusy(1)
				i++
			}
		})
	})
	b.Run("mutex", func(b *testing.B) {
		w := NewLockedWST(32)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				w.AddBusy(0, 1)
			}
		})
	})
}
