package probe

import (
	"testing"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/sim"
)

// openTestConns gives every worker something a WorkerProber can sample.
func openTestConns(eng *sim.Engine, lb *l7lb.LB, n int) {
	for i := 0; i < n; i++ {
		i := i
		eng.At(int64(i)*int64(100*time.Microsecond), func() {
			lb.NS.DeliverSYN(kernel.FourTuple{
				SrcIP: uint32(i), SrcPort: uint16(2000 + i), DstIP: 1, DstPort: 8080,
			}, nil)
		})
	}
}

// Regression: DelayedCount used to compute p.Sent - lb.ProbesCompleted
// against the LB-global counter, so two probers sharing one LB
// cross-contaminated — the smaller prober's subtraction underflowed uint64
// and reported astronomically many "lost" probes. Accounting is now tagged
// per prober and must stay exact for each.
func TestDualProberAccountingExact(t *testing.T) {
	eng, lb := healthyLB(t, l7lb.ModeHermes)
	openTestConns(eng, lb, 16)

	wp := NewWorkerProber(lb, 8080, 5*time.Millisecond)
	sp := NewProber(lb, 8080, 50*time.Millisecond)
	eng.At(int64(10*time.Millisecond), func() {
		wp.Run(time.Second)
		sp.Run(time.Second)
	})
	eng.RunUntil(int64(2 * time.Second))

	if wp.Sent == 0 || sp.Sent == 0 {
		t.Fatalf("both probers must send: worker=%d single=%d", wp.Sent, sp.Sent)
	}
	if wp.Sent <= sp.Sent {
		t.Fatalf("test needs the worker prober to dominate (worker=%d single=%d) to expose the underflow",
			wp.Sent, sp.Sent)
	}
	if wp.Completed != wp.Sent {
		t.Fatalf("worker prober: completed %d of %d on a healthy LB", wp.Completed, wp.Sent)
	}
	if sp.Completed != sp.Sent {
		t.Fatalf("single prober: completed %d of %d on a healthy LB", sp.Completed, sp.Sent)
	}
	// Pre-fix, sp.DelayedCount() was ≈ 2^64 here (sp.Sent minus the
	// LB-global completion count, which wp's probes dominate).
	if d := sp.DelayedCount(); d != 0 {
		t.Fatalf("single prober delayed count %d, want 0 (underflow regression)", d)
	}
	if d := wp.DelayedCount(); d != 0 {
		t.Fatalf("worker prober delayed count %d, want 0", d)
	}
	// The LB-global counter still aggregates both streams.
	if lb.ProbesCompleted != wp.Sent+sp.Sent {
		t.Fatalf("LB-global completions %d != %d + %d", lb.ProbesCompleted, wp.Sent, sp.Sent)
	}
}

// Lost probes (dropped before reaching the LB) count as delayed, exactly.
func TestProberLossCountsAsDelayed(t *testing.T) {
	eng, lb := healthyLB(t, l7lb.ModeHermes)
	openTestConns(eng, lb, 16)

	lossy := NewProber(lb, 8080, 20*time.Millisecond)
	lossy.SetDrop(func() bool { return true })
	clean := NewWorkerProber(lb, 8080, 10*time.Millisecond)
	eng.At(int64(10*time.Millisecond), func() {
		lossy.Run(time.Second)
		clean.Run(time.Second)
	})
	eng.RunUntil(int64(2 * time.Second))

	if lossy.Sent == 0 || lossy.Completed != 0 || lossy.Lost != lossy.Sent {
		t.Fatalf("lossy prober: sent=%d completed=%d lost=%d, want all sent lost",
			lossy.Sent, lossy.Completed, lossy.Lost)
	}
	if d := lossy.DelayedCount(); d != lossy.Sent {
		t.Fatalf("lossy delayed %d, want %d (every lost probe is delayed)", d, lossy.Sent)
	}
	if lossy.DelayedRate() != 1 {
		t.Fatalf("lossy delayed rate %v, want 1", lossy.DelayedRate())
	}
	// The clean prober on the same LB is untouched by its neighbor's loss.
	if d := clean.DelayedCount(); d != 0 {
		t.Fatalf("clean prober delayed %d, want 0", d)
	}
}
