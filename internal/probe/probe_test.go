package probe

import (
	"testing"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/sim"
)

func healthyLB(t *testing.T, mode l7lb.Mode) (*sim.Engine, *l7lb.LB) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := l7lb.DefaultConfig(mode)
	cfg.Workers = 4
	lb, err := l7lb.New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	return eng, lb
}

func TestProberHealthyPath(t *testing.T) {
	eng, lb := healthyLB(t, l7lb.ModeHermes)
	p := NewProber(lb, 8080, 10*time.Millisecond)
	p.Run(time.Second)
	eng.RunUntil(int64(2 * time.Second))

	if p.Sent < 90 {
		t.Fatalf("sent %d probes, want ≈100", p.Sent)
	}
	if lb.ProbesCompleted != p.Sent {
		t.Fatalf("completed %d of %d", lb.ProbesCompleted, p.Sent)
	}
	if d := p.DelayedCount(); d != 0 {
		t.Fatalf("healthy LB delayed %d probes", d)
	}
	if lb.ProbeLatency.Percentile(99) > 1.0 {
		t.Fatalf("probe P99 %v ms exceeds the 1ms healthy bound (§6.2)",
			lb.ProbeLatency.Percentile(99))
	}
	if p.DelayedRate() != 0 {
		t.Fatal("delayed rate should be 0")
	}
}

func TestProberCountsHungWorkerDelays(t *testing.T) {
	eng, lb := healthyLB(t, l7lb.ModeReuseport)
	// Hang all workers with multi-second requests: probes land behind them.
	// 32 hash-dispatched hang connections make it overwhelmingly likely
	// every one of the 4 workers catches at least one.
	for i := 0; i < 32; i++ {
		i := i
		eng.At(int64(i)*int64(time.Millisecond), func() {
			conn, ok := lb.NS.DeliverSYN(kernel.FourTuple{
				SrcIP: uint32(i), SrcPort: uint16(i + 1), DstIP: 1, DstPort: 8080,
			}, nil)
			if ok {
				lb.NS.DeliverData(conn, l7lb.Work{
					ArrivalNS: eng.Now(), Cost: 5 * time.Second, Tenant: 8080,
				})
			}
		})
	}
	p := NewProber(lb, 8080, 20*time.Millisecond)
	eng.At(int64(50*time.Millisecond), func() { p.Run(time.Second) })
	eng.RunUntil(int64(1200 * time.Millisecond))

	if p.Sent == 0 {
		t.Fatal("no probes sent")
	}
	if p.DelayedCount() == 0 {
		t.Fatal("probes behind 5s requests must count as delayed")
	}
	if p.DelayedRate() < 0.9 {
		t.Fatalf("delayed rate %v, want ≈1 with all workers hung", p.DelayedRate())
	}
}

func TestCanarySeriesShape(t *testing.T) {
	m := CanaryModel{
		DaysBefore:        5,
		RolloutDays:       3,
		DaysAfter:         18,
		ProbesPerDay:      1_000_000,
		OldDelayedRate:    0.002,
		NewDelayedRate:    0.000004,
		DrainHalfLifeDays: 2,
	}
	s := m.Series()
	if len(s) != 26 {
		t.Fatalf("series length %d", len(s))
	}
	before := s[0].Delayed
	if before != 2000 {
		t.Fatalf("pre-rollout delayed/day = %v", before)
	}
	// Monotone decline through rollout.
	for d := m.DaysBefore; d < m.DaysBefore+m.RolloutDays+m.DaysAfter-1; d++ {
		if s[d+1].Delayed > s[d].Delayed+1e-9 {
			t.Fatalf("series not declining at day %d: %v -> %v", d, s[d].Delayed, s[d+1].Delayed)
		}
	}
	after := s[len(s)-1].Delayed
	reduction := 1 - after/before
	if reduction < 0.99 {
		t.Fatalf("final reduction %.4f, want ≥99%% (paper: 99.8%%)", reduction)
	}
	// The drain tail: day right after rollout still above the floor.
	tail := s[m.DaysBefore+m.RolloutDays].Delayed
	floor := m.NewDelayedRate * m.ProbesPerDay
	if tail <= floor*2 {
		t.Fatalf("no drain tail: day-after %v vs floor %v", tail, floor)
	}
}

func TestCanaryFastDrainBeatsSlowDrain(t *testing.T) {
	base := CanaryModel{
		DaysBefore: 2, RolloutDays: 2, DaysAfter: 8,
		ProbesPerDay: 1e6, OldDelayedRate: 0.002, NewDelayedRate: 1e-6,
	}
	slow := base
	slow.DrainHalfLifeDays = 4 // Region1: IoT/cloud clients, 11-day tail
	fast := base
	fast.DrainHalfLifeDays = 0.5 // Region2: mobile clients drop quickly
	ds, df := slow.Series(), fast.Series()
	day := base.DaysBefore + base.RolloutDays + 2
	if df[day].Delayed >= ds[day].Delayed {
		t.Fatalf("fast drain should be below slow drain at day %d: %v vs %v",
			day, df[day].Delayed, ds[day].Delayed)
	}
}
