// Package probe implements the health-probing subsystem behind Fig. 11: a
// prober that sends periodic tiny requests through the LB data path and
// counts end-to-end delays above the 200 ms tolerance, plus the
// canary-release drain model that turns per-mode delay rates into the
// daily delayed-probe series the paper reports before/after the Hermes
// rollout.
package probe

import (
	"math"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/stats"
)

// DelayThreshold is the internal-network delay budget: probes above it
// count as delayed (§6.2: ">200ms is unacceptable", clients time out with
// 499s).
const DelayThreshold = 200 * time.Millisecond

// Prober sends probes through an LB at a fixed interval. Each probe is a
// fresh short connection carrying one minimal request, so it traverses the
// same dispatch path as tenant traffic; the LB has no probe fast path
// (§6.2: "The LB contains no probe processing logic").
type Prober struct {
	// Interval between probes.
	Interval time.Duration
	// Port is the tenant port probed.
	Port uint16

	lb *l7lb.LB
	// Sent counts probes issued.
	Sent uint64
	// Rejected counts probes whose SYN was refused outright.
	Rejected uint64
	// Completed counts this prober's probes that finished (other probers on
	// the same LB do not contaminate it).
	Completed uint64
	// Lost counts probes swallowed by injected probe loss.
	Lost uint64
	// Latency samples this prober's probe latencies (ms).
	Latency stats.Sample

	seq  uint32
	src  int32
	drop func() bool
}

// NewProber creates a prober against lb.
func NewProber(lb *l7lb.LB, port uint16, interval time.Duration) *Prober {
	p := &Prober{lb: lb, Port: port, Interval: interval}
	p.src = lb.RegisterProbeSink(func(_ l7lb.Work, latNS int64) {
		p.Completed++
		p.Latency.AddDuration(latNS)
	})
	return p
}

// SetDrop installs a probe-loss predicate: probes for which it returns true
// are counted as sent but never reach the LB (and so count as delayed).
func (p *Prober) SetDrop(fn func() bool) { p.drop = fn }

// Run schedules probes over the window [now, now+d).
func (p *Prober) Run(d time.Duration) {
	end := p.lb.Eng.Now() + int64(d)
	p.scheduleNext(p.lb.Eng.Now(), end)
}

func (p *Prober) scheduleNext(prev, end int64) {
	next := prev + int64(p.Interval)
	if next >= end {
		return
	}
	p.lb.Eng.At(next, func() {
		p.fire()
		p.scheduleNext(next, end)
	})
}

func (p *Prober) fire() {
	p.seq++
	p.Sent++
	if p.drop != nil && p.drop() {
		p.Lost++
		return
	}
	conn, ok := p.lb.NS.DeliverSYN(kernel.FourTuple{
		SrcIP:   0xfeed_0000 + p.seq,
		SrcPort: uint16(40000 + p.seq%20000),
		DstIP:   0x0a00_0001,
		DstPort: p.Port,
	}, nil)
	if !ok {
		p.Rejected++
		return
	}
	p.lb.NS.DeliverData(conn, l7lb.Work{
		ArrivalNS: p.lb.Eng.Now(),
		Cost:      10 * time.Microsecond,
		Size:      64,
		RespSize:  64,
		Close:     true,
		Probe:     true,
		ProbeSrc:  p.src,
		Tenant:    p.Port,
	})
}

// DelayedCount returns how many completed probes exceeded the threshold,
// counting never-completed probes (stranded on hung workers, rejected, or
// lost in flight) as delayed too — in production those are exactly the 499s.
// Only this prober's probes count, even with other probers on the same LB.
func (p *Prober) DelayedCount() uint64 {
	completedDelayed := uint64(p.Latency.CountAbove(float64(DelayThreshold) / 1e6))
	var lost uint64
	if p.Sent > p.Completed {
		lost = p.Sent - p.Completed
	}
	return completedDelayed + lost
}

// DelayedRate returns the fraction of probes delayed.
func (p *Prober) DelayedRate() float64 {
	if p.Sent == 0 {
		return 0
	}
	return float64(p.DelayedCount()) / float64(p.Sent)
}

// WorkerProber probes every worker, as §6.2 describes ("we periodically
// send probes to all workers"): each round it delivers a minimal request on
// one live connection of every worker, so the probe takes the same
// event-loop path as tenant traffic and a hung or swamped worker delays its
// probe stream. Workers without connections that round are skipped (in
// production every worker carries traffic).
type WorkerProber struct {
	// Interval between probe rounds.
	Interval time.Duration
	// Port is the tenant port stamped on probe work items.
	Port uint16

	lb *l7lb.LB
	// Sent counts probes issued.
	Sent uint64
	// SkippedRounds counts per-worker skips (no live connection).
	SkippedRounds uint64
	// Completed counts this prober's probes that finished.
	Completed uint64
	// Lost counts probes swallowed by injected probe loss.
	Lost uint64
	// Latency samples this prober's probe latencies (ms).
	Latency stats.Sample

	src  int32
	drop func() bool
}

// NewWorkerProber creates a per-worker prober against lb.
func NewWorkerProber(lb *l7lb.LB, port uint16, interval time.Duration) *WorkerProber {
	p := &WorkerProber{lb: lb, Port: port, Interval: interval}
	p.src = lb.RegisterProbeSink(func(_ l7lb.Work, latNS int64) {
		p.Completed++
		p.Latency.AddDuration(latNS)
	})
	return p
}

// SetDrop installs a probe-loss predicate: probes for which it returns true
// are counted as sent but never reach the LB (and so count as delayed).
func (p *WorkerProber) SetDrop(fn func() bool) { p.drop = fn }

// Run schedules probe rounds over [now, now+d).
func (p *WorkerProber) Run(d time.Duration) {
	p.scheduleRound(p.lb.Eng.Now(), p.lb.Eng.Now()+int64(d))
}

func (p *WorkerProber) scheduleRound(prev, end int64) {
	next := prev + int64(p.Interval)
	if next >= end {
		return
	}
	p.lb.Eng.At(next, func() {
		for _, w := range p.lb.Workers {
			s := w.SampleConn()
			if s == nil || s.Closed() {
				p.SkippedRounds++
				continue
			}
			p.Sent++
			if p.drop != nil && p.drop() {
				p.Lost++
				continue
			}
			p.lb.NS.DeliverData(s.Conn(), l7lb.Work{
				ArrivalNS: p.lb.Eng.Now(),
				Cost:      10 * time.Microsecond,
				Size:      64,
				RespSize:  64,
				Probe:     true,
				ProbeSrc:  p.src,
				Tenant:    p.Port,
			})
		}
		p.scheduleRound(next, end)
	})
}

// DelayedCount returns probes delayed beyond the threshold, counting
// never-completed probes as delayed. Only this prober's probes count, even
// with other probers on the same LB.
func (p *WorkerProber) DelayedCount() uint64 {
	completedDelayed := uint64(p.Latency.CountAbove(float64(DelayThreshold) / 1e6))
	var lost uint64
	if p.Sent > p.Completed {
		lost = p.Sent - p.Completed
	}
	return completedDelayed + lost
}

// DelayedRate returns the fraction of probes delayed.
func (p *WorkerProber) DelayedRate() float64 {
	if p.Sent == 0 {
		return 0
	}
	return float64(p.DelayedCount()) / float64(p.Sent)
}

// CanaryModel converts measured per-mode delayed-probe rates into the daily
// series of Fig. 11. During a canary rollout, new-version (Hermes) VMs take
// over new connections while old-version (exclusive) VMs keep their
// established connections until they drain; probes follow the traffic, so
// delayed probes decay with the drain rather than dropping to the new rate
// instantly (§6.2: Region1 took 11 days, Region2 drained fast).
type CanaryModel struct {
	// DaysBefore / RolloutDays / DaysAfter shape the timeline.
	DaysBefore  int
	RolloutDays int
	DaysAfter   int
	// ProbesPerDay is the per-region daily probe volume.
	ProbesPerDay float64
	// OldDelayedRate / NewDelayedRate are the measured per-probe delay
	// probabilities under the old (exclusive) and new (Hermes) versions.
	OldDelayedRate float64
	NewDelayedRate float64
	// DrainHalfLifeDays is the half-life of old-version connection share
	// after its VMs stop taking new connections.
	DrainHalfLifeDays float64
}

// DayPoint is one day of the Fig. 11 series.
type DayPoint struct {
	Day      int
	Delayed  float64 // delayed probes that day
	OldShare float64
}

// Series computes the daily delayed-probe counts across the timeline. The
// old fleet is phased out in RolloutDays equal batches; once a batch stops
// taking new connections, the traffic it still carries drains exponentially
// with the configured half-life, so the old-version share declines smoothly
// through and past the rollout.
func (m CanaryModel) Series() []DayPoint {
	total := m.DaysBefore + m.RolloutDays + m.DaysAfter
	batches := m.RolloutDays
	if batches < 1 {
		batches = 1
	}
	out := make([]DayPoint, 0, total)
	for day := 0; day < total; day++ {
		var oldShare float64
		for b := 0; b < batches; b++ {
			removal := m.DaysBefore + b // day batch b stops taking new conns
			if day < removal {
				oldShare++
			} else {
				oldShare += math.Exp2(-float64(day-removal+1) / m.DrainHalfLifeDays)
			}
		}
		oldShare /= float64(batches)
		rate := oldShare*m.OldDelayedRate + (1-oldShare)*m.NewDelayedRate
		out = append(out, DayPoint{Day: day, Delayed: rate * m.ProbesPerDay, OldShare: oldShare})
	}
	return out
}
