// Package sim is a deterministic discrete-event simulation engine. It stands
// in for wall-clock execution on a pinned multicore VM: the simulated kernel,
// the worker event loops, and the traffic generators all advance on one
// virtual clock, so every experiment in this repository is reproducible
// bit-for-bit from its seed.
//
// Virtual time is int64 nanoseconds. Events scheduled for the same instant
// fire in scheduling order (stable FIFO tie-break), which keeps causality
// intuitive: a worker that finishes a request at t and a SYN arriving at t
// are processed in the order they were enqueued.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Timer is a handle to a scheduled event that can be cancelled (used for
// epoll_wait timeouts that are raced by event arrivals).
type Timer struct {
	at       int64
	seq      uint64
	fn       func()
	index    int // heap index, -1 when popped
	canceled bool
}

// Cancel prevents the timer from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. Returns true if the timer was pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.canceled || t.index == -1 {
		return false
	}
	t.canceled = true
	return true
}

// Pending reports whether the timer is still scheduled and not cancelled.
func (t *Timer) Pending() bool { return t != nil && !t.canceled && t.index != -1 }

// When returns the virtual time the timer fires at.
func (t *Timer) When() int64 { return t.at }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Engine is the event loop. Not safe for concurrent use: simulations are
// single-goroutine by design (determinism).
type Engine struct {
	now  int64
	seq  uint64
	heap eventHeap
	rng  *rand.Rand

	// Executed counts fired (non-cancelled) events, for diagnostics.
	Executed uint64
}

// NewEngine creates an engine at time 0 with a deterministic RNG.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// Rand returns the engine's deterministic RNG.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute virtual time t (≥ now) and returns its timer.
func (e *Engine) At(t int64, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %d < %d", t, e.now))
	}
	e.seq++
	tm := &Timer{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.heap, tm)
	return tm
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+int64(d), fn)
}

// Step fires the next event. It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		t := heap.Pop(&e.heap).(*Timer)
		if t.canceled {
			continue
		}
		e.now = t.at
		e.Executed++
		t.fn()
		return true
	}
	return false
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ deadline, then advances the clock to the
// deadline (even if idle). Events scheduled exactly at the deadline fire.
func (e *Engine) RunUntil(deadline int64) {
	for len(e.heap) > 0 {
		// Peek.
		next := e.heap[0]
		if next.canceled {
			heap.Pop(&e.heap)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor runs for a virtual duration from the current time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + int64(d)) }

// Pending returns the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.heap) }
