// Package sim is a deterministic discrete-event simulation engine. It stands
// in for wall-clock execution on a pinned multicore VM: the simulated kernel,
// the worker event loops, and the traffic generators all advance on one
// virtual clock, so every experiment in this repository is reproducible
// bit-for-bit from its seed.
//
// Virtual time is int64 nanoseconds. Events scheduled for the same instant
// fire in scheduling order (stable FIFO tie-break), which keeps causality
// intuitive: a worker that finishes a request at t and a SYN arriving at t
// are processed in the order they were enqueued.
//
// The hot path is allocation-free in steady state: fired and cancelled
// timer events return to a per-engine free list, and the event queue is a
// concrete 4-ary min-heap of *timerEvent (no interface boxing). Timer
// handles carry a generation number, so a handle that outlives its event
// (e.g. an epoll timeout raced by an arrival) can never cancel a recycled
// event by mistake.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// timerEvent is one scheduled event. Events are pooled: after firing or
// cancellation they go back to the engine's free list and may be reused by a
// later At/After, with gen bumped so stale Timer handles are invalidated.
type timerEvent struct {
	at    int64
	seq   uint64
	gen   uint64
	fn    func()
	eng   *Engine
	index int32 // heap index, -1 when not queued
}

// Timer is a handle to a scheduled event that can be cancelled (used for
// epoll_wait timeouts that are raced by event arrivals). The zero Timer is
// valid and refers to no event. Handles are values: copying is free, and a
// handle held after its event fired or was cancelled is harmless — every
// operation first checks the generation stamp.
type Timer struct {
	ev  *timerEvent
	gen uint64
}

// valid reports whether the handle still refers to its original scheduling.
func (t Timer) valid() bool { return t.ev != nil && t.ev.gen == t.gen }

// Cancel prevents the timer from firing, eagerly removing it from the event
// queue (cancelled epoll timeouts no longer linger as heap garbage).
// Cancelling an already-fired or already-cancelled timer is a no-op.
// Returns true if the timer was pending.
func (t Timer) Cancel() bool {
	if !t.valid() || t.ev.index < 0 {
		return false
	}
	e := t.ev.eng
	e.removeAt(int(t.ev.index))
	e.release(t.ev)
	return true
}

// Pending reports whether the timer is still scheduled and not cancelled.
func (t Timer) Pending() bool { return t.valid() && t.ev.index >= 0 }

// When returns the virtual time the timer fires at, or 0 if it has already
// fired or been cancelled.
func (t Timer) When() int64 {
	if !t.valid() {
		return 0
	}
	return t.ev.at
}

// Engine is the event loop. Not safe for concurrent use: simulations are
// single-goroutine by design (determinism). Independent engines (one per
// experiment cell) may run on separate goroutines concurrently.
type Engine struct {
	now  int64
	seq  uint64
	heap []*timerEvent // 4-ary min-heap on (at, seq)
	free []*timerEvent
	rng  *rand.Rand

	// Executed counts fired (non-cancelled) events, for diagnostics.
	Executed uint64
}

// NewEngine creates an engine at time 0 with a deterministic RNG.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// Rand returns the engine's deterministic RNG.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute virtual time t (≥ now) and returns its timer.
func (e *Engine) At(t int64, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %d < %d", t, e.now))
	}
	e.seq++
	var ev *timerEvent
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &timerEvent{eng: e}
	}
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.push(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+int64(d), fn)
}

// release returns a dequeued event to the free list, invalidating every
// outstanding handle to it via the generation bump.
func (e *Engine) release(ev *timerEvent) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// Step fires the next event. It returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.popMin()
	e.now = ev.at
	fn := ev.fn
	e.release(ev)
	e.Executed++
	fn()
	return true
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ deadline, then advances the clock to the
// deadline (even if idle). Events scheduled exactly at the deadline fire.
func (e *Engine) RunUntil(deadline int64) {
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor runs for a virtual duration from the current time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + int64(d)) }

// Pending returns the number of scheduled events. Cancelled timers are
// removed eagerly, so this is an exact count of live events.
func (e *Engine) Pending() int { return len(e.heap) }

// --- 4-ary min-heap on (at, seq) ---
//
// A 4-ary heap halves the tree depth of a binary heap and keeps the four
// siblings of each inner node on one or two cache lines; the inner loop is a
// sibling-min scan. Compared at ~10⁷ events against container/heap it avoids
// both the interface boxing of Push/Pop and the indirect Less/Swap calls.

func lessEv(a, b *timerEvent) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (e *Engine) push(ev *timerEvent) {
	e.heap = append(e.heap, ev)
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) popMin() *timerEvent {
	h := e.heap
	min := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.heap = h[:n]
	if n > 0 {
		h[0] = last
		last.index = 0
		e.siftDown(0)
	}
	min.index = -1
	return min
}

// removeAt deletes the event at heap index i (eager cancellation).
func (e *Engine) removeAt(i int) {
	h := e.heap
	n := len(h) - 1
	ev := h[i]
	last := h[n]
	h[n] = nil
	e.heap = h[:n]
	if i < n {
		h[i] = last
		last.index = int32(i)
		e.siftDown(i)
		if int(last.index) == i {
			e.siftUp(i)
		}
	}
	ev.index = -1
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	ev := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !lessEv(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = ev
	ev.index = int32(i)
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ev := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if lessEv(h[j], h[m]) {
				m = j
			}
		}
		if !lessEv(h[m], ev) {
			break
		}
		h[i] = h[m]
		h[i].index = int32(i)
		i = m
	}
	h[i] = ev
	ev.index = int32(i)
}
