package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var hits []int64
	e.At(10, func() {
		hits = append(hits, e.Now())
		e.After(5*time.Nanosecond, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(10, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should fail")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if e.Executed != 0 {
		t.Fatalf("Executed = %d, want 0", e.Executed)
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(10, func() {})
	e.Run()
	if tm.Cancel() {
		t.Fatal("cancel after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []int64
	for _, at := range []int64{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(10)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 5,10", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 || e.Now() != 100 {
		t.Fatalf("fired = %v, Now = %d", fired, e.Now())
	}
}

func TestRunUntilIdleAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("Now = %d, want 42", e.Now())
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(time.Millisecond)
	e.RunFor(time.Millisecond)
	if e.Now() != 2*int64(time.Millisecond) {
		t.Fatalf("Now = %d", e.Now())
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestNegativeAfterClamps(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		e.After(-time.Second, func() {}) // clamps to now
	})
	e.Run()
	if e.Now() != 10 {
		t.Fatalf("Now = %d", e.Now())
	}
}

func TestDeterministicRNG(t *testing.T) {
	a, b := NewEngine(7), NewEngine(7)
	for i := 0; i < 100; i++ {
		if a.Rand().Uint64() != b.Rand().Uint64() {
			t.Fatal("same-seed engines diverged")
		}
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine(1)
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Step()
	if e.Pending() != 1 {
		t.Fatalf("Pending after step = %d", e.Pending())
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, func() {})
		e.Step()
	}
}
