package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var hits []int64
	e.At(10, func() {
		hits = append(hits, e.Now())
		e.After(5*time.Nanosecond, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(10, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should fail")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if e.Executed != 0 {
		t.Fatalf("Executed = %d, want 0", e.Executed)
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.At(10, func() {})
	e.Run()
	if tm.Cancel() {
		t.Fatal("cancel after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []int64
	for _, at := range []int64{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(10)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 5,10", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 || e.Now() != 100 {
		t.Fatalf("fired = %v, Now = %d", fired, e.Now())
	}
}

func TestRunUntilIdleAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Fatalf("Now = %d, want 42", e.Now())
	}
}

func TestRunFor(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(time.Millisecond)
	e.RunFor(time.Millisecond)
	if e.Now() != 2*int64(time.Millisecond) {
		t.Fatalf("Now = %d", e.Now())
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestNegativeAfterClamps(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		e.After(-time.Second, func() {}) // clamps to now
	})
	e.Run()
	if e.Now() != 10 {
		t.Fatalf("Now = %d", e.Now())
	}
}

func TestDeterministicRNG(t *testing.T) {
	a, b := NewEngine(7), NewEngine(7)
	for i := 0; i < 100; i++ {
		if a.Rand().Uint64() != b.Rand().Uint64() {
			t.Fatal("same-seed engines diverged")
		}
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine(1)
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Step()
	if e.Pending() != 1 {
		t.Fatalf("Pending after step = %d", e.Pending())
	}
}

// TestCancelRemovesEagerly verifies the heap-leak fix: a cancelled timer
// leaves the event queue immediately instead of lingering until popped.
func TestCancelRemovesEagerly(t *testing.T) {
	e := NewEngine(1)
	tms := make([]Timer, 100)
	for i := range tms {
		tms[i] = e.At(int64(i+1), func() {})
	}
	for i, tm := range tms {
		if i%2 == 0 {
			tm.Cancel()
		}
	}
	if e.Pending() != 50 {
		t.Fatalf("Pending = %d after cancelling half, want 50 (eager removal)", e.Pending())
	}
	e.Run()
	if e.Executed != 50 {
		t.Fatalf("Executed = %d, want 50", e.Executed)
	}
}

// TestStaleHandleCannotCancelRecycledEvent guards the free list: a handle to
// a fired timer must not affect a new event that reuses its pooled storage.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	e := NewEngine(1)
	stale := e.At(1, func() {})
	e.Step() // fires; event returns to the free list
	fired := false
	fresh := e.At(2, func() { fired = true }) // reuses the pooled event
	if stale.Cancel() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	if stale.Pending() || stale.When() != 0 {
		t.Fatal("stale handle reports the recycled event as its own")
	}
	if !fresh.Pending() || fresh.When() != 2 {
		t.Fatal("fresh handle invalidated by stale one")
	}
	e.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestZeroTimerIsInert(t *testing.T) {
	var tm Timer
	if tm.Cancel() || tm.Pending() || tm.When() != 0 {
		t.Fatal("zero Timer should be a no-op handle")
	}
}

// TestGoldenSequence locks the engine's observable semantics in one script:
// ordering across times, FIFO tie-break at one instant, cancellation (before
// and mid-run), nested scheduling, and clock reads inside callbacks.
func TestGoldenSequence(t *testing.T) {
	e := NewEngine(42)
	var trace []string
	hit := func(tag string) func() {
		return func() { trace = append(trace, fmt.Sprintf("%s@%d", tag, e.Now())) }
	}
	e.At(30, hit("c"))
	e.At(10, hit("a1"))
	e.At(10, hit("a2")) // same instant: FIFO after a1
	doomed := e.At(20, hit("never"))
	e.At(10, func() {
		trace = append(trace, fmt.Sprintf("a3@%d", e.Now()))
		doomed.Cancel() // cancel a pending event from inside a callback
		e.After(15, hit("nested"))
	})
	e.At(40, hit("d"))
	victim := e.At(35, hit("gone"))
	victim.Cancel() // cancel before the run starts
	e.Run()

	want := []string{"a1@10", "a2@10", "a3@10", "nested@25", "c@30", "d@40"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q (full: %v)", i, trace[i], want[i], trace)
		}
	}
	if e.Executed != 6 {
		t.Fatalf("Executed = %d, want 6", e.Executed)
	}
}

// TestHeapStressOrdering pushes a large shuffled schedule with interleaved
// cancellations through the 4-ary heap and checks global firing order.
func TestHeapStressOrdering(t *testing.T) {
	e := NewEngine(7)
	const n = 5000
	perm := e.Rand().Perm(n)
	tms := make([]Timer, n)
	for _, p := range perm {
		p := p
		tms[p] = e.At(int64(p)*3+1, func() {
			// no-op; order is checked via the engine clock below
		})
	}
	cancelled := 0
	for i := 0; i < n; i += 7 {
		if tms[i].Cancel() {
			cancelled++
		}
	}
	last := int64(-1)
	for e.Step() {
		if e.Now() < last {
			t.Fatalf("clock went backwards: %d after %d", e.Now(), last)
		}
		last = e.Now()
	}
	if int(e.Executed) != n-cancelled {
		t.Fatalf("Executed = %d, want %d", e.Executed, n-cancelled)
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, func() {})
		e.Step()
	}
}

// BenchmarkEngineSchedule measures steady-state schedule+fire with a
// realistically deep heap (one pending timeout per simulated worker), the
// pattern the LB worker loops generate.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ { // standing timers keep the heap non-trivial
		e.After(time.Second, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, fn)
		e.Step()
	}
}

// BenchmarkEngineCancel measures the epoll-timeout pattern: schedule a
// timeout, race it, cancel it (eager heap removal + event reuse).
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(time.Second, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.After(time.Millisecond, fn)
		tm.Cancel()
	}
}
