package openmetrics

import (
	"strings"
	"testing"
)

const valid = `# HELP hermes_requests total requests
# TYPE hermes_requests counter
hermes_requests_total 42
# HELP hermes_open open connections
# TYPE hermes_open gauge
hermes_open -3
# HELP hermes_lat latency
# TYPE hermes_lat histogram
hermes_lat_bucket{le="1000"} 1
hermes_lat_bucket{le="2000"} 3
hermes_lat_bucket{le="+Inf"} 5
hermes_lat_sum 15500
hermes_lat_count 5
# EOF
`

func TestValidateAccepts(t *testing.T) {
	fams, err := Validate([]byte(valid))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("families = %d, want 3", len(fams))
	}
	if fams[0].Name != "hermes_requests" || fams[0].Type != "counter" || fams[0].Help != "total requests" {
		t.Errorf("family 0 = %+v", fams[0])
	}
	if s := fams[2].Sample("hermes_lat_count"); s == nil || s.Value != 5 {
		t.Errorf("_count = %+v", s)
	}
}

// TestLabelEscaping round-trips backslashes, quotes, newlines and non-ASCII
// UTF-8 through quoted label values.
func TestLabelEscaping(t *testing.T) {
	src := `# HELP m help with \\ slash and \n newline
# TYPE m gauge
m{path="C:\\tmp\\x",msg="said \"hi\"\nbye",name="héllo→世界"} 1
# EOF
`
	fams, err := Validate([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if fams[0].Help != "help with \\ slash and \n newline" {
		t.Errorf("help unescape = %q", fams[0].Help)
	}
	s := &fams[0].Samples[0]
	if got := s.Label("path"); got != `C:\tmp\x` {
		t.Errorf("path = %q", got)
	}
	if got := s.Label("msg"); got != "said \"hi\"\nbye" {
		t.Errorf("msg = %q", got)
	}
	if got := s.Label("name"); got != "héllo→世界" {
		t.Errorf("utf8 = %q", got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"missing EOF",
			"# HELP a b\n# TYPE a gauge\na 1\n", "# EOF"},
		{"missing TYPE",
			"# HELP a b\na 1\n# EOF\n", "TYPE"},
		{"missing HELP",
			"# TYPE a gauge\na 1\n# EOF\n", "HELP"},
		{"counter without _total",
			"# HELP a b\n# TYPE a counter\na 1\n# EOF\n", "legal counter"},
		{"gauge with _total",
			"# HELP a b\n# TYPE a gauge\na_total 1\n# EOF\n", "legal gauge"},
		{"histogram stray suffix",
			"# HELP a b\n# TYPE a histogram\na_quantile 1\n# EOF\n", "outside its family"},
		{"bucket le not increasing",
			"# HELP a b\n# TYPE a histogram\na_bucket{le=\"2\"} 1\na_bucket{le=\"1\"} 2\na_bucket{le=\"+Inf\"} 3\na_sum 1\na_count 3\n# EOF\n", "increasing"},
		{"bucket counts decreasing",
			"# HELP a b\n# TYPE a histogram\na_bucket{le=\"1\"} 5\na_bucket{le=\"+Inf\"} 3\na_sum 1\na_count 3\n# EOF\n", "monoton"},
		{"missing +Inf bucket",
			"# HELP a b\n# TYPE a histogram\na_bucket{le=\"1\"} 1\na_sum 1\na_count 1\n# EOF\n", "+Inf"},
		{"+Inf != count",
			"# HELP a b\n# TYPE a histogram\na_bucket{le=\"+Inf\"} 4\na_sum 1\na_count 5\n# EOF\n", "_count"},
		{"zero count nonzero sum",
			"# HELP a b\n# TYPE a histogram\na_bucket{le=\"+Inf\"} 0\na_sum 9\na_count 0\n# EOF\n", "_sum"},
		{"negative counter",
			"# HELP a b\n# TYPE a counter\na_total -1\n# EOF\n", "negative"},
		{"NaN value",
			"# HELP a b\n# TYPE a gauge\na NaN\n# EOF\n", "NaN"},
		{"duplicate series",
			"# HELP a b\n# TYPE a gauge\na{x=\"1\"} 1\na{x=\"1\"} 2\n# EOF\n", "duplicate"},
		{"bad metric name",
			"# HELP 0a b\n# TYPE 0a gauge\n0a 1\n# EOF\n", "name"},
		{"reserved label",
			"# HELP a b\n# TYPE a gauge\na{__name__=\"x\"} 1\n# EOF\n", "label"},
		{"unterminated label value",
			"# HELP a b\n# TYPE a gauge\na{x=\"1} 1\n# EOF\n", ""},
		{"bad escape in label",
			"# HELP a b\n# TYPE a gauge\na{x=\"\\t\"} 1\n# EOF\n", "escape"},
		{"invalid utf8",
			"# HELP a b\n# TYPE a gauge\na{x=\"\xff\"} 1\n# EOF\n", "UTF-8"},
		{"empty line",
			"# HELP a b\n# TYPE a gauge\n\na 1\n# EOF\n", "empty"},
		{"interleaved families",
			"# HELP a b\n# TYPE a gauge\na 1\n# HELP c d\n# TYPE c gauge\nc 1\na 2\n# EOF\n", ""},
		{"text after EOF",
			"# HELP a b\n# TYPE a gauge\na 1\n# EOF\nextra\n", "EOF"},
	}
	for _, tc := range cases {
		_, err := Validate([]byte(tc.src))
		if err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
			continue
		}
		if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestHistogramPerLabelset: bucket discipline is enforced per label group,
// so two labelled histograms in one family validate independently.
func TestHistogramPerLabelset(t *testing.T) {
	src := `# HELP h help
# TYPE h histogram
h_bucket{slot="0",le="1"} 1
h_bucket{slot="0",le="+Inf"} 2
h_sum{slot="0"} 3
h_count{slot="0"} 2
h_bucket{slot="1",le="1"} 0
h_bucket{slot="1",le="+Inf"} 0
h_sum{slot="1"} 0
h_count{slot="1"} 0
# EOF
`
	if _, err := Validate([]byte(src)); err != nil {
		t.Fatalf("per-labelset histograms rejected: %v", err)
	}
	// Break one group only: slot 1's +Inf disagrees with its _count.
	broken := strings.Replace(src, "h_count{slot=\"1\"} 0", "h_count{slot=\"1\"} 7", 1)
	if _, err := Validate([]byte(broken)); err == nil {
		t.Fatal("mismatched per-labelset count accepted")
	}
}

func TestParseIsLenientOnlyAboutMetadataOrder(t *testing.T) {
	// TYPE before HELP still parses (and validates) — ordering within the
	// preamble is free, but both must precede samples.
	src := "# TYPE a gauge\n# HELP a b\na 1\n# EOF\n"
	if _, err := Validate([]byte(src)); err != nil {
		t.Fatalf("TYPE-first preamble rejected: %v", err)
	}
	// Metadata after a sample of the same family is a violation.
	late := "# TYPE a gauge\na 1\n# HELP a b\n# EOF\n"
	if _, err := Parse([]byte(late)); err == nil {
		t.Fatal("late HELP accepted")
	}
}
