// Package openmetrics is a strict parser and conformance checker for the
// OpenMetrics text exposition format — the validation side of
// internal/telemetry's renderer. It is deliberately pickier than a scrape
// client needs to be: HELP/TYPE pairing, name and label syntax, escape and
// UTF-8 validity, suffix discipline per family type, histogram bucket
// monotonicity, le="+Inf" agreement with _count, and _sum/_count
// consistency are all hard errors. Tests and cmd/checkprom run it against
// GET /metrics output and hermes-bench exposition dumps.
package openmetrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Label is one name="value" pair.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line: a suffixed metric name, its labels, and a
// float value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label returns the named label's value ("" when absent).
func (s *Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Family is one metric family: its metadata and every sample that follows
// it in the exposition.
type Family struct {
	Name    string
	Type    string // counter | gauge | histogram | summary | unknown
	Help    string
	Samples []Sample
}

// Sample returns the family sample with the given suffixed name and no
// labels, or nil.
func (f *Family) Sample(name string) *Sample {
	for i := range f.Samples {
		if f.Samples[i].Name == name && len(f.Samples[i].Labels) == 0 {
			return &f.Samples[i]
		}
	}
	return nil
}

// Parse reads a full OpenMetrics exposition. It enforces lexical and
// structural conformance (see Validate for the semantic layer): UTF-8
// input, `# HELP`/`# TYPE` metadata preceding samples and appearing at most
// once per family, contiguous families, legal metric/label names, legal
// escapes, and a final `# EOF` with nothing after it.
func Parse(data []byte) ([]Family, error) {
	if !utf8.Valid(data) {
		return nil, fmt.Errorf("openmetrics: exposition is not valid UTF-8")
	}
	var (
		fams   []Family
		byName = map[string]int{}
		cur    = -1 // index into fams of the family currently accepting samples
		sawEOF bool
	)
	lines := strings.Split(string(data), "\n")
	for li, line := range lines {
		lineNo := li + 1
		if line == "" {
			// Only legal as the trailing empty string after the final \n.
			if li == len(lines)-1 {
				continue
			}
			return nil, fmt.Errorf("openmetrics: line %d: empty line", lineNo)
		}
		if sawEOF {
			return nil, fmt.Errorf("openmetrics: line %d: content after # EOF", lineNo)
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseMeta(line)
			if err != nil {
				return nil, fmt.Errorf("openmetrics: line %d: %v", lineNo, err)
			}
			idx, ok := byName[name]
			if !ok {
				byName[name] = len(fams)
				idx = len(fams)
				fams = append(fams, Family{Name: name})
			} else if idx != len(fams)-1 {
				return nil, fmt.Errorf("openmetrics: line %d: metadata for %q interleaved with other families", lineNo, name)
			}
			f := &fams[idx]
			if len(f.Samples) > 0 {
				return nil, fmt.Errorf("openmetrics: line %d: %s for %q after its samples", lineNo, kind, name)
			}
			switch kind {
			case "HELP":
				if f.Help != "" {
					return nil, fmt.Errorf("openmetrics: line %d: duplicate HELP for %q", lineNo, name)
				}
				help, err := unescapeHelp(rest)
				if err != nil {
					return nil, fmt.Errorf("openmetrics: line %d: %v", lineNo, err)
				}
				f.Help = help
			case "TYPE":
				if f.Type != "" {
					return nil, fmt.Errorf("openmetrics: line %d: duplicate TYPE for %q", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "unknown":
					f.Type = rest
				default:
					return nil, fmt.Errorf("openmetrics: line %d: bad TYPE %q", lineNo, rest)
				}
				cur = idx
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("openmetrics: line %d: %v", lineNo, err)
		}
		if cur < 0 || !nameInFamily(s.Name, &fams[cur]) {
			return nil, fmt.Errorf("openmetrics: line %d: sample %q outside its family (TYPE line missing or families interleaved)", lineNo, s.Name)
		}
		fams[cur].Samples = append(fams[cur].Samples, s)
	}
	if !sawEOF {
		return nil, fmt.Errorf("openmetrics: missing terminating # EOF")
	}
	return fams, nil
}

// Validate parses data and then checks semantic conformance family by
// family: HELP/TYPE pairing, suffix discipline, counter non-negativity,
// duplicate series, and full histogram consistency.
func Validate(data []byte) ([]Family, error) {
	fams, err := Parse(data)
	if err != nil {
		return nil, err
	}
	series := map[string]bool{}
	for i := range fams {
		f := &fams[i]
		if f.Type == "" {
			return nil, fmt.Errorf("openmetrics: family %q has HELP but no TYPE", f.Name)
		}
		if f.Help == "" {
			return nil, fmt.Errorf("openmetrics: family %q has TYPE but no HELP", f.Name)
		}
		for j := range f.Samples {
			s := &f.Samples[j]
			if err := checkSuffix(f, s); err != nil {
				return nil, err
			}
			key := seriesKey(s)
			if series[key] {
				return nil, fmt.Errorf("openmetrics: duplicate series %s", key)
			}
			series[key] = true
			if math.IsNaN(s.Value) {
				return nil, fmt.Errorf("openmetrics: series %s: NaN value", key)
			}
			if (f.Type == "counter" || f.Type == "histogram") && s.Value < 0 {
				return nil, fmt.Errorf("openmetrics: series %s: negative %s value %g", key, f.Type, s.Value)
			}
		}
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// checkSuffix enforces per-type sample naming: counters expose only
// name_total, gauges and unknowns the bare name, histograms
// _bucket/_sum/_count.
func checkSuffix(f *Family, s *Sample) error {
	suffix := strings.TrimPrefix(s.Name, f.Name)
	ok := false
	switch f.Type {
	case "counter":
		ok = suffix == "_total"
	case "gauge", "unknown":
		ok = suffix == ""
	case "histogram":
		ok = suffix == "_bucket" || suffix == "_sum" || suffix == "_count"
	case "summary":
		ok = suffix == "" || suffix == "_sum" || suffix == "_count"
	}
	if !ok {
		return fmt.Errorf("openmetrics: sample %q is not a legal %s series of family %q", s.Name, f.Type, f.Name)
	}
	return nil
}

// seriesKey identifies one series: name plus sorted labels.
func seriesKey(s *Sample) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	ls := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		ls[i] = l.Name + `="` + l.Value + `"`
	}
	sort.Strings(ls)
	return s.Name + "{" + strings.Join(ls, ",") + "}"
}

// checkHistogram validates one histogram family: for every label set
// (ignoring le) the buckets must have strictly increasing le values ending
// in +Inf, nondecreasing cumulative counts, a single _sum and _count, the
// +Inf bucket equal to _count, and sum 0 when count is 0.
func checkHistogram(f *Family) error {
	type group struct {
		les    []float64
		counts []float64
		sum    *float64
		count  *float64
	}
	groups := map[string]*group{}
	order := []string{}
	grp := func(s *Sample, dropLE bool) *group {
		ls := make([]string, 0, len(s.Labels))
		for _, l := range s.Labels {
			if dropLE && l.Name == "le" {
				continue
			}
			ls = append(ls, l.Name+`="`+l.Value+`"`)
		}
		sort.Strings(ls)
		key := strings.Join(ls, ",")
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		return g
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		switch strings.TrimPrefix(s.Name, f.Name) {
		case "_bucket":
			le := s.Label("le")
			if le == "" {
				return fmt.Errorf("openmetrics: histogram %q: bucket without le label", f.Name)
			}
			v, err := parseLE(le)
			if err != nil {
				return fmt.Errorf("openmetrics: histogram %q: %v", f.Name, err)
			}
			g := grp(s, true)
			g.les = append(g.les, v)
			g.counts = append(g.counts, s.Value)
		case "_sum":
			g := grp(s, false)
			if g.sum != nil {
				return fmt.Errorf("openmetrics: histogram %q: duplicate _sum", f.Name)
			}
			v := s.Value
			g.sum = &v
		case "_count":
			g := grp(s, false)
			if g.count != nil {
				return fmt.Errorf("openmetrics: histogram %q: duplicate _count", f.Name)
			}
			v := s.Value
			g.count = &v
		}
	}
	for _, key := range order {
		g := groups[key]
		where := f.Name
		if key != "" {
			where += "{" + key + "}"
		}
		if len(g.les) == 0 {
			return fmt.Errorf("openmetrics: histogram %s: no buckets", where)
		}
		for i := 1; i < len(g.les); i++ {
			if !(g.les[i] > g.les[i-1]) {
				return fmt.Errorf("openmetrics: histogram %s: le values not strictly increasing (%g after %g)",
					where, g.les[i], g.les[i-1])
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("openmetrics: histogram %s: bucket counts not monotonic (%g after %g at le=%g)",
					where, g.counts[i], g.counts[i-1], g.les[i])
			}
		}
		if !math.IsInf(g.les[len(g.les)-1], +1) {
			return fmt.Errorf("openmetrics: histogram %s: missing le=\"+Inf\" bucket", where)
		}
		if g.count == nil || g.sum == nil {
			return fmt.Errorf("openmetrics: histogram %s: missing _sum or _count", where)
		}
		inf := g.counts[len(g.counts)-1]
		if inf != *g.count {
			return fmt.Errorf("openmetrics: histogram %s: le=\"+Inf\" bucket %g != _count %g", where, inf, *g.count)
		}
		if *g.count == 0 && *g.sum != 0 {
			return fmt.Errorf("openmetrics: histogram %s: _count 0 but _sum %g", where, *g.sum)
		}
	}
	return nil
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(+1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) {
		return 0, fmt.Errorf("bad le value %q", s)
	}
	return v, nil
}

// parseMeta reads a `# HELP name text` or `# TYPE name type` line.
func parseMeta(line string) (kind, name, rest string, err error) {
	switch {
	case strings.HasPrefix(line, "# HELP "):
		kind, rest = "HELP", line[len("# HELP "):]
	case strings.HasPrefix(line, "# TYPE "):
		kind, rest = "TYPE", line[len("# TYPE "):]
	default:
		return "", "", "", fmt.Errorf("unrecognized comment line %q (only # HELP, # TYPE, # EOF allowed)", line)
	}
	name, rest, ok := strings.Cut(rest, " ")
	if !ok || name == "" {
		return "", "", "", fmt.Errorf("malformed %s line", kind)
	}
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("illegal metric name %q", name)
	}
	return kind, name, rest, nil
}

// parseSample reads `name value`, `name{labels} value`.
func parseSample(line string) (Sample, error) {
	var s Sample
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:nameEnd]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("illegal metric name %q", s.Name)
	}
	rest := line[nameEnd:]
	if rest[0] == '{' {
		var err error
		s.Labels, rest, err = parseLabels(rest)
		if err != nil {
			return s, err
		}
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return s, fmt.Errorf("missing value separator in %q", line)
	}
	valueStr := rest[1:]
	if valueStr == "" || strings.ContainsAny(valueStr, " \t") {
		// A second field would be a timestamp/exemplar; the renderer never
		// emits them, so the strict checker refuses them.
		return s, fmt.Errorf("malformed or extra fields in value %q", valueStr)
	}
	v, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", valueStr)
	}
	s.Value = v
	return s, nil
}

// parseLabels reads a {name="value",...} block, unescaping values, and
// returns the remainder of the line.
func parseLabels(in string) ([]Label, string, error) {
	var labels []Label
	i := 1 // past '{'
	seen := map[string]bool{}
	for {
		if i >= len(in) {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if in[i] == '}' {
			return labels, in[i+1:], nil
		}
		j := strings.IndexByte(in[i:], '=')
		if j < 0 {
			return nil, "", fmt.Errorf("malformed label block %q", in)
		}
		name := in[i : i+j]
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("illegal label name %q", name)
		}
		if seen[name] {
			return nil, "", fmt.Errorf("duplicate label %q", name)
		}
		seen[name] = true
		i += j + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("label %q: unquoted value", name)
		}
		value, next, err := unquoteLabelValue(in[i:])
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %v", name, err)
		}
		labels = append(labels, Label{Name: name, Value: value})
		i += next
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
}

// unquoteLabelValue reads a quoted label value starting at in[0] == '"',
// applying the three legal escapes (\\ \" \n) and rejecting all others.
// Returns the value and how many input bytes were consumed.
func unquoteLabelValue(in string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(in); i++ {
		switch c := in[i]; c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(in) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("illegal escape \\%c", in[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// unescapeHelp applies HELP-text escapes (\\ and \n), rejecting others.
func unescapeHelp(in string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(in); i++ {
		if in[i] != '\\' {
			b.WriteByte(in[i])
			continue
		}
		i++
		if i >= len(in) {
			return "", fmt.Errorf("dangling escape in HELP text")
		}
		switch in[i] {
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("illegal HELP escape \\%c", in[i])
		}
	}
	return b.String(), nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		letter := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		letter := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// nameInFamily reports whether a sample name can belong to the family under
// any type's suffix rules (the exact rule is enforced later by Validate,
// which knows the final TYPE).
func nameInFamily(name string, f *Family) bool {
	if !strings.HasPrefix(name, f.Name) {
		return false
	}
	switch strings.TrimPrefix(name, f.Name) {
	case "", "_total", "_bucket", "_sum", "_count":
		return true
	}
	return false
}
