package ebpf

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"hermes/internal/telemetry"
	"hermes/internal/tracing"
)

// MapType identifies the simulated map kinds Hermes uses.
type MapType uint8

// Supported map types (§5.4: BPF_MAP_TYPE_ARRAY for the selection bitmap,
// BPF_MAP_TYPE_REUSEPORT_SOCKARRAY for worker-to-socket mapping).
const (
	MapTypeArray MapType = iota
	MapTypeReuseportSockArray
)

func (t MapType) String() string {
	switch t {
	case MapTypeArray:
		return "BPF_MAP_TYPE_ARRAY"
	case MapTypeReuseportSockArray:
		return "BPF_MAP_TYPE_REUSEPORT_SOCKARRAY"
	default:
		return fmt.Sprintf("MapType(%d)", uint8(t))
	}
}

// Map is the common surface of simulated maps, enough for the verifier and
// the attach machinery to reason about them.
type Map interface {
	Type() MapType
	MaxEntries() int
}

// ArrayMap is a BPF_MAP_TYPE_ARRAY of 64-bit values. Element access is
// atomic per element, which is exactly the property Hermes relies on to
// share the selection bitmap between userspace and the kernel without locks
// (§5.4 "eBPF maps inherently support atomic<int>").
//
// Userspace writes via Update (modelling the bpf() syscall) and the VM reads
// via Lookup inside HelperMapLookupElem.
type ArrayMap struct {
	vals []uint64
	// SyscallCount counts userspace update/lookup operations, modelling the
	// syscall + context-switch cost accounted in Table 5.
	SyscallCount atomic.Uint64
	// FailedUpdates counts updates rejected by an injected sync failure.
	FailedUpdates atomic.Uint64

	telUpdates *telemetry.Counter
	telLookups *telemetry.Counter
	tr         *tracing.MapTrace

	// failUpdate, when set, makes Update fail (sync-failure fault): the
	// syscall is still charged but the store is dropped.
	failUpdate atomic.Value // holds func() bool
	// stampNow/maxAgeNS, when set, make kernel-side Lookup treat entries
	// older than maxAgeNS as absent (stale-bitmap fault): the program sees
	// an empty bitmap and declines, falling back to reuseport hashing.
	stampNow atomic.Value // holds func() int64
	maxAgeNS atomic.Int64
	lastUp   []atomic.Int64
}

// Instrument wires telemetry counters for userspace map operations: updates
// counts BPF_MAP_UPDATE_ELEM calls, lookups counts both user and in-kernel
// element reads. Nil handles record nothing.
func (m *ArrayMap) Instrument(updates, lookups *telemetry.Counter) {
	m.telUpdates = updates
	m.telLookups = lookups
}

// InstrumentTrace wires the flight recorder into userspace updates: each
// Update emits a selmap_sync instant annotated with the written bitmap's
// popcount. The map has no clock of its own — the handle carries one.
func (m *ArrayMap) InstrumentTrace(tr *tracing.MapTrace) { m.tr = tr }

// NewArrayMap creates an array map with maxEntries zeroed elements.
func NewArrayMap(maxEntries int) *ArrayMap {
	if maxEntries < 1 {
		panic(fmt.Sprintf("ebpf: array map needs ≥1 entries, got %d", maxEntries))
	}
	return &ArrayMap{
		vals:   make([]uint64, maxEntries),
		lastUp: make([]atomic.Int64, maxEntries),
	}
}

// SetFailUpdates installs a fault predicate evaluated on each Update; while
// it returns true, updates are charged but dropped with an error. Pass nil
// to clear.
func (m *ArrayMap) SetFailUpdates(fn func() bool) {
	if fn == nil {
		fn = func() bool { return false }
	}
	m.failUpdate.Store(fn)
}

// SetStaleness arms the stale-bitmap fault model: with a clock and a
// positive maxAge, kernel-side Lookups of an entry not successfully updated
// within maxAge return (0, true) — an empty bitmap — so selection programs
// decline and the kernel falls back to reuseport hashing. Entries count as
// freshly updated at arm time. Pass maxAge 0 to disarm.
func (m *ArrayMap) SetStaleness(now func() int64, maxAge int64) {
	if now != nil {
		at := now()
		for i := range m.lastUp {
			m.lastUp[i].Store(at)
		}
		m.stampNow.Store(now)
	}
	m.maxAgeNS.Store(maxAge)
}

// Type implements Map.
func (m *ArrayMap) Type() MapType { return MapTypeArray }

// MaxEntries implements Map.
func (m *ArrayMap) MaxEntries() int { return len(m.vals) }

// Lookup reads element key from kernel context (no syscall accounting).
func (m *ArrayMap) Lookup(key uint32) (uint64, bool) {
	if int(key) >= len(m.vals) {
		return 0, false
	}
	m.telLookups.Inc()
	if maxAge := m.maxAgeNS.Load(); maxAge > 0 {
		if now, ok := m.stampNow.Load().(func() int64); ok {
			if now()-m.lastUp[key].Load() > maxAge {
				return 0, true
			}
		}
	}
	return atomic.LoadUint64(&m.vals[key]), true
}

// Update writes element key from userspace, modelling bpf(BPF_MAP_UPDATE_ELEM).
func (m *ArrayMap) Update(key uint32, val uint64) error {
	if int(key) >= len(m.vals) {
		return fmt.Errorf("ebpf: update key %d out of range [0,%d)", key, len(m.vals))
	}
	m.SyscallCount.Add(1)
	if fail, ok := m.failUpdate.Load().(func() bool); ok && fail() {
		// The syscall happened; the write did not take (injected EAGAIN).
		m.FailedUpdates.Add(1)
		return fmt.Errorf("ebpf: injected update failure for key %d", key)
	}
	atomic.StoreUint64(&m.vals[key], val)
	if now, ok := m.stampNow.Load().(func() int64); ok {
		m.lastUp[key].Store(now())
	}
	m.telUpdates.Inc()
	m.tr.Sync(bits.OnesCount64(val))
	return nil
}

// UserLookup reads element key from userspace, modelling bpf(BPF_MAP_LOOKUP_ELEM).
func (m *ArrayMap) UserLookup(key uint32) (uint64, error) {
	if int(key) >= len(m.vals) {
		return 0, fmt.Errorf("ebpf: lookup key %d out of range [0,%d)", key, len(m.vals))
	}
	m.SyscallCount.Add(1)
	m.telLookups.Inc()
	return atomic.LoadUint64(&m.vals[key]), nil
}

// SockRef is an opaque reference to a kernel socket registered in a
// SockArray. The kernel package supplies its socket type; the eBPF layer
// never inspects it.
type SockRef any

// SockArray is a BPF_MAP_TYPE_REUSEPORT_SOCKARRAY mapping worker IDs to
// listening sockets (M_socket in Algorithm 2). Slots are populated at Hermes
// initialization time as workers create their reuseport sockets.
type SockArray struct {
	refs []atomic.Value // each holds SockRef
	n    int
}

// NewSockArray creates a sockarray with maxEntries empty slots.
func NewSockArray(maxEntries int) *SockArray {
	if maxEntries < 1 {
		panic(fmt.Sprintf("ebpf: sockarray needs ≥1 entries, got %d", maxEntries))
	}
	return &SockArray{refs: make([]atomic.Value, maxEntries), n: maxEntries}
}

// Type implements Map.
func (m *SockArray) Type() MapType { return MapTypeReuseportSockArray }

// MaxEntries implements Map.
func (m *SockArray) MaxEntries() int { return m.n }

// Put registers sock at slot key.
func (m *SockArray) Put(key uint32, sock SockRef) error {
	if int(key) >= m.n {
		return fmt.Errorf("ebpf: sockarray key %d out of range [0,%d)", key, m.n)
	}
	if sock == nil {
		return fmt.Errorf("ebpf: nil socket for key %d", key)
	}
	m.refs[key].Store(sock)
	return nil
}

// Get returns the socket at slot key, or nil if the slot is empty or out of
// range.
func (m *SockArray) Get(key uint32) SockRef {
	if int(key) >= m.n {
		return nil
	}
	return m.refs[key].Load()
}
