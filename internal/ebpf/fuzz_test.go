package ebpf

import (
	"errors"
	"math/rand"
	"testing"
)

// randProgram builds a random instruction sequence (valid registers, mostly
// forward jumps, occasional helper calls and map loads) that may or may not
// pass the verifier.
func randProgram(rng *rand.Rand, am *ArrayMap, sa *SockArray) *Program {
	n := 2 + rng.Intn(60)
	insns := make([]Insn, 0, n)
	for i := 0; i < n-1; i++ {
		var in Insn
		switch rng.Intn(10) {
		case 0, 1, 2:
			in = Insn{Op: OpMovImm, Dst: Reg(rng.Intn(10)), Imm: rng.Uint64()}
		case 3:
			in = Insn{Op: Op(rng.Intn(int(OpNeg) + 1)), Dst: Reg(rng.Intn(10)), Src: Reg(rng.Intn(10)), Imm: uint64(rng.Intn(64))}
		case 4:
			// Forward conditional jump (offset may land out of bounds —
			// the verifier must catch that).
			in = Insn{
				Op:  OpJeqImm + Op(rng.Intn(int(OpJleReg-OpJeqImm)+1)),
				Dst: Reg(rng.Intn(10)), Src: Reg(rng.Intn(10)),
				Imm: uint64(rng.Intn(4)),
				Off: int32(rng.Intn(n)),
			}
		case 5:
			in = Insn{Op: OpJa, Off: int32(1 + rng.Intn(4))}
		case 6:
			in = Insn{Op: OpLdMap, Dst: Reg(rng.Intn(10)), Imm: uint64(rng.Intn(3))}
		case 7:
			in = Insn{Op: OpCall, Imm: uint64(1 + rng.Intn(6))}
		case 8:
			in = Insn{Op: OpExit}
		default:
			in = Insn{Op: OpMovReg, Dst: Reg(rng.Intn(10)), Src: Reg(rng.Intn(10))}
		}
		insns = append(insns, in)
	}
	insns = append(insns, Insn{Op: OpExit})
	return &Program{insns: insns, maps: []Map{am, sa}}
}

// Property: any program the verifier accepts runs to completion — no panic,
// no budget exhaustion, no fall-off — for arbitrary context hashes. ErrMapMiss
// is legal (modelled NULL deref on array maps is impossible with in-range
// keys but possible with random ones... array key range is checked, so the
// only lookup failure is out-of-range, which returns miss).
func TestFuzzVerifiedProgramsTerminate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	am := NewArrayMap(2)
	_ = am.Update(0, 0xdead)
	sa := NewSockArray(4)
	_ = sa.Put(0, "sock0")

	accepted := 0
	const trials = 30_000
	for i := 0; i < trials; i++ {
		p := randProgram(rng, am, sa)
		if err := Verify(p); err != nil {
			continue
		}
		accepted++
		ctx := &ReuseportCtx{Hash: rng.Uint32(), LocalityHash: rng.Uint32()}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("verified program panicked: %v\n%s", r, p.Disassemble())
				}
			}()
			_, err := p.Run(ctx)
			if errors.Is(err, ErrBudget) {
				t.Fatalf("verified program exhausted budget:\n%s", p.Disassemble())
			}
			if err != nil && !errors.Is(err, ErrMapMiss) {
				t.Fatalf("verified program failed: %v\n%s", err, p.Disassemble())
			}
		}()
	}
	if accepted < 100 {
		t.Fatalf("fuzzer only produced %d verified programs of %d; generator too weak", accepted, trials)
	}
	t.Logf("fuzz: %d/%d random programs verified and ran clean", accepted, trials)
}

// idiomPrelude returns an instruction block seeding the fusable idioms the
// JIT's pattern matcher targets: the 15-insn SWAR popcount and the 3-insn
// shifted-window extract. Random programs alone essentially never emit these
// shapes, so the differential fuzzer splices them in (prepended, so relative
// jump offsets in the random tail stay valid).
func idiomPrelude(rng *rand.Rand) []Insn {
	dst := Reg(rng.Intn(10))
	tmp := Reg(rng.Intn(10))
	for tmp == dst {
		tmp = Reg(rng.Intn(10))
	}
	block := []Insn{
		{Op: OpMovImm, Dst: dst, Imm: rng.Uint64()},
		{Op: OpMovImm, Dst: tmp, Imm: rng.Uint64()},
	}
	switch rng.Intn(3) {
	case 0:
		block = append(block, emitPopCountInsns(dst, tmp)...)
	case 1:
		// Full rank-select walk over five pairwise-distinct registers; v and
		// rank (dst, tmp here) are seeded above, pos/t/tmp2 are written by
		// the walk itself.
		perm := rng.Perm(10)
		pos, t, tmp2 := Reg(perm[0]), Reg(perm[1]), Reg(perm[2])
		for _, r := range []*Reg{&pos, &t, &tmp2} {
			for *r == dst || *r == tmp {
				*r = Reg(rng.Intn(10))
			}
		}
		if pos != t && t != tmp2 && pos != tmp2 {
			block = append(block, findNthShape(dst, tmp, pos, t, tmp2)...)
		}
	default:
		// Window extract: t = (v >> pos) & mask, with v, pos, t distinct and
		// pos != t (the matcher's aliasing precondition; violating shapes are
		// covered by the random generator).
		v, pos := dst, tmp
		t := Reg(rng.Intn(10))
		for t == v || t == pos {
			t = Reg(rng.Intn(10))
		}
		block = append(block,
			Insn{Op: OpMovImm, Dst: t, Imm: rng.Uint64()},
			Insn{Op: OpMovReg, Dst: t, Src: v},
			Insn{Op: OpRshReg, Dst: t, Src: pos},
			Insn{Op: OpAndImm, Dst: t, Imm: 1<<(1+rng.Intn(32)) - 1},
		)
	}
	return block
}

// Differential fuzzing with the interpreter as oracle: every program the
// verifier accepts must produce identical observable behaviour — R0, error
// identity, selected socket, selected index — under the interpreter and the
// JIT. Half the trials splice in fusable idiom blocks so the fused closures
// (not just the 1:1 lowering) are exercised.
func TestFuzzDifferentialJIT(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	am := NewArrayMap(2)
	_ = am.Update(0, 0xbeef)
	_ = am.Update(1, 0b1010_1100)
	sa := NewSockArray(4)
	_ = sa.Put(0, "sock0")
	_ = sa.Put(2, "sock2")

	accepted, fused := 0, 0
	const trials = 30_000
	for i := 0; i < trials; i++ {
		p := randProgram(rng, am, sa)
		if rng.Intn(2) == 0 {
			p = &Program{insns: append(idiomPrelude(rng), p.insns...), maps: p.maps}
		}
		if err := Verify(p); err != nil {
			continue
		}
		accepted++
		c, err := Compile(p)
		if err != nil {
			t.Fatalf("verified program failed to compile: %v\n%s", err, p.Disassemble())
		}
		if c.Closures() < c.Insns() {
			fused++
		}
		ictx := ReuseportCtx{Hash: rng.Uint32(), LocalityHash: rng.Uint32()}
		jctx := ictx
		ir0, ierr := p.Run(&ictx)
		jr0, jerr := c.Run(&jctx)
		if ir0 != jr0 || ierr != jerr {
			t.Fatalf("divergence: interp (r0=%d err=%v) jit (r0=%d err=%v)\n%s",
				ir0, ierr, jr0, jerr, p.Disassemble())
		}
		if ictx.Selected != jctx.Selected || ictx.SelectedIndex != jctx.SelectedIndex {
			t.Fatalf("ctx divergence: interp (%v,%d) jit (%v,%d)\n%s",
				ictx.Selected, ictx.SelectedIndex,
				jctx.Selected, jctx.SelectedIndex, p.Disassemble())
		}
	}
	if accepted < 100 {
		t.Fatalf("only %d verified programs of %d; generator too weak", accepted, trials)
	}
	if fused < 10 {
		t.Fatalf("only %d of %d compiled programs fused anything; idiom splicing broken", fused, accepted)
	}
	t.Logf("differential fuzz: %d/%d programs verified, %d with fusion, zero divergences", accepted, trials, fused)
}

// Property: the verifier never panics on arbitrary instruction sequences.
func TestFuzzVerifierRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	am := NewArrayMap(1)
	sa := NewSockArray(1)
	for i := 0; i < 30_000; i++ {
		p := randProgram(rng, am, sa)
		// Occasionally corrupt offsets/opcodes beyond the generator's range.
		if rng.Intn(4) == 0 && len(p.insns) > 0 {
			j := rng.Intn(len(p.insns))
			p.insns[j].Off = int32(rng.Int31()) - 1<<30
			p.insns[j].Op = Op(rng.Intn(64))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("verifier panicked: %v", r)
				}
			}()
			_ = Verify(p)
		}()
	}
}
