package ebpf

import "errors"

// ReuseportCtx is the execution context handed to a program attached at the
// SO_ATTACH_REUSEPORT_EBPF hook. The kernel (simulated in internal/kernel)
// fills Hash with the connection 4-tuple hash before invoking the program;
// the program communicates its decision back through Selected.
type ReuseportCtx struct {
	// Hash is the precomputed 4-tuple hash of the incoming connection.
	Hash uint32
	// LocalityHash is the destination-only (DIP, Dport) hash, consumed by
	// the cache-locality group mode (Fig. A6).
	LocalityHash uint32
	// Selected holds the socket chosen via bpf_sk_select_reuseport, nil if
	// the program did not select one.
	Selected SockRef
	// SelectedIndex is the sockarray slot of Selected (-1 if none).
	SelectedIndex int
}

// Program run errors. All are pre-built sentinels so the error flow never
// allocates: the dispatch path treats any error as "fall back to hashing",
// and a per-SYN fmt.Errorf would put an allocation on that path.
var (
	// ErrMapMiss reports a bpf_map_lookup_elem on a missing key. Real
	// programs get a NULL pointer and must branch; the register-only VM
	// models the unchecked-deref crash as a run error instead.
	ErrMapMiss = errors.New("ebpf: map lookup miss")
	// ErrBudget reports instruction-budget exhaustion (cannot happen for
	// verified programs; kept as a backstop for the interpreter itself).
	ErrBudget = errors.New("ebpf: instruction budget exhausted")
	// ErrBadMapHandle reports a helper map argument that is not a handle
	// produced by OpLdMap.
	ErrBadMapHandle = errors.New("ebpf: invalid map handle")
	// ErrMapTypeMismatch reports a helper applied to the wrong map kind.
	ErrMapTypeMismatch = errors.New("ebpf: helper map type mismatch")
	// ErrUnknownHelper reports a call to an unregistered helper id.
	ErrUnknownHelper = errors.New("ebpf: unknown helper")
	// ErrUnknownOpcode reports an opcode outside the instruction set.
	ErrUnknownOpcode = errors.New("ebpf: unknown opcode")
	// ErrFellOff reports execution running past the last instruction.
	ErrFellOff = errors.New("ebpf: fell off program end")
)

// Run interprets the program against ctx and returns R0.
//
// Verified programs always terminate: jumps are forward-only, so pc strictly
// increases. The budget check is a defence-in-depth backstop only.
func (p *Program) Run(ctx *ReuseportCtx) (uint64, error) {
	var regs [NumRegs]uint64
	// R1 carries the context at entry, as in real BPF. The simulated VM has
	// no memory loads, so programs access ctx through helpers; the register
	// just participates in the verifier's init tracking.
	regs[R1] = 1

	ctx.SelectedIndex = -1
	budget := len(p.insns) + 1
	for pc := 0; pc < len(p.insns); {
		if budget--; budget < 0 {
			return 0, ErrBudget
		}
		in := p.insns[pc]
		switch in.Op {
		case OpMovImm:
			regs[in.Dst] = in.Imm
		case OpMovReg:
			regs[in.Dst] = regs[in.Src]
		case OpAddImm:
			regs[in.Dst] += in.Imm
		case OpAddReg:
			regs[in.Dst] += regs[in.Src]
		case OpSubImm:
			regs[in.Dst] -= in.Imm
		case OpSubReg:
			regs[in.Dst] -= regs[in.Src]
		case OpMulImm:
			regs[in.Dst] *= in.Imm
		case OpMulReg:
			regs[in.Dst] *= regs[in.Src]
		case OpAndImm:
			regs[in.Dst] &= in.Imm
		case OpAndReg:
			regs[in.Dst] &= regs[in.Src]
		case OpOrImm:
			regs[in.Dst] |= in.Imm
		case OpOrReg:
			regs[in.Dst] |= regs[in.Src]
		case OpXorImm:
			regs[in.Dst] ^= in.Imm
		case OpXorReg:
			regs[in.Dst] ^= regs[in.Src]
		case OpLshImm:
			regs[in.Dst] <<= in.Imm & 63
		case OpLshReg:
			regs[in.Dst] <<= regs[in.Src] & 63
		case OpRshImm:
			regs[in.Dst] >>= in.Imm & 63
		case OpRshReg:
			regs[in.Dst] >>= regs[in.Src] & 63
		case OpNeg:
			regs[in.Dst] = -regs[in.Dst]
		case OpLdMap:
			// Map handles are encoded as slot+1 so that 0 is never a valid
			// handle.
			regs[in.Dst] = in.Imm + 1
		case OpCall:
			if err := p.call(HelperID(in.Imm), &regs, ctx); err != nil {
				return 0, err
			}
		case OpJa:
			pc += 1 + int(in.Off)
			continue
		case OpJeqImm:
			if regs[in.Dst] == in.Imm {
				pc += 1 + int(in.Off)
				continue
			}
		case OpJeqReg:
			if regs[in.Dst] == regs[in.Src] {
				pc += 1 + int(in.Off)
				continue
			}
		case OpJneImm:
			if regs[in.Dst] != in.Imm {
				pc += 1 + int(in.Off)
				continue
			}
		case OpJneReg:
			if regs[in.Dst] != regs[in.Src] {
				pc += 1 + int(in.Off)
				continue
			}
		case OpJgtImm:
			if regs[in.Dst] > in.Imm {
				pc += 1 + int(in.Off)
				continue
			}
		case OpJgtReg:
			if regs[in.Dst] > regs[in.Src] {
				pc += 1 + int(in.Off)
				continue
			}
		case OpJgeImm:
			if regs[in.Dst] >= in.Imm {
				pc += 1 + int(in.Off)
				continue
			}
		case OpJgeReg:
			if regs[in.Dst] >= regs[in.Src] {
				pc += 1 + int(in.Off)
				continue
			}
		case OpJltImm:
			if regs[in.Dst] < in.Imm {
				pc += 1 + int(in.Off)
				continue
			}
		case OpJltReg:
			if regs[in.Dst] < regs[in.Src] {
				pc += 1 + int(in.Off)
				continue
			}
		case OpJleImm:
			if regs[in.Dst] <= in.Imm {
				pc += 1 + int(in.Off)
				continue
			}
		case OpJleReg:
			if regs[in.Dst] <= regs[in.Src] {
				pc += 1 + int(in.Off)
				continue
			}
		case OpExit:
			return regs[R0], nil
		default:
			return 0, ErrUnknownOpcode
		}
		pc++
	}
	return 0, ErrFellOff
}

func (p *Program) mapFromHandle(h uint64) (Map, error) {
	if h == 0 || int(h-1) >= len(p.maps) {
		return nil, ErrBadMapHandle
	}
	return p.maps[h-1], nil
}

func (p *Program) call(h HelperID, regs *[NumRegs]uint64, ctx *ReuseportCtx) error {
	var r0 uint64
	switch h {
	case HelperMapLookupElem:
		m, err := p.mapFromHandle(regs[R1])
		if err != nil {
			return err
		}
		am, ok := m.(*ArrayMap)
		if !ok {
			return ErrMapTypeMismatch
		}
		v, ok := am.Lookup(uint32(regs[R2]))
		if !ok {
			return ErrMapMiss
		}
		r0 = v
	case HelperGetHash:
		r0 = uint64(ctx.Hash)
	case HelperGetLocalityHash:
		r0 = uint64(ctx.LocalityHash)
	case HelperReciprocalScale:
		r0 = uint64((regs[R1] & 0xffffffff) * (regs[R2] & 0xffffffff) >> 32)
	case HelperSkSelectReuseport:
		m, err := p.mapFromHandle(regs[R1])
		if err != nil {
			return err
		}
		sa, ok := m.(*SockArray)
		if !ok {
			return ErrMapTypeMismatch
		}
		idx := uint32(regs[R2])
		ref := sa.Get(idx)
		if ref == nil {
			r0 = 1 // slot empty: signal failure, caller decides fallback
		} else {
			ctx.Selected = ref
			ctx.SelectedIndex = int(idx)
			r0 = 0
		}
	default:
		return ErrUnknownHelper
	}
	// Clobber caller-saved registers as the verifier assumes.
	for r := R1; r <= R5; r++ {
		regs[r] = 0xdead_beef_dead_beef
	}
	regs[R0] = r0
	return nil
}
