package ebpf

import (
	"strings"
	"testing"
	"testing/quick"

	"hermes/internal/bitops"
)

func mustAssemble(t *testing.T, a *Assembler) *Program {
	t.Helper()
	p, err := a.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func run(t *testing.T, p *Program, ctx *ReuseportCtx) uint64 {
	t.Helper()
	if ctx == nil {
		ctx = &ReuseportCtx{}
	}
	r0, err := p.Run(ctx)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return r0
}

func TestTrivialReturn(t *testing.T) {
	p := mustAssemble(t, NewAssembler().MovImm(R0, 42).Exit())
	if got := run(t, p, nil); got != 42 {
		t.Fatalf("R0 = %d, want 42", got)
	}
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		name  string
		build func(a *Assembler)
		want  uint64
	}{
		{"add", func(a *Assembler) { a.MovImm(R0, 40).AddImm(R0, 2) }, 42},
		{"sub-wrap", func(a *Assembler) { a.MovImm(R0, 0).SubImm(R0, 1) }, ^uint64(0)},
		{"mul", func(a *Assembler) { a.MovImm(R0, 6).MulImm(R0, 7) }, 42},
		{"and", func(a *Assembler) { a.MovImm(R0, 0xff).AndImm(R0, 0x0f) }, 0x0f},
		{"or", func(a *Assembler) { a.MovImm(R0, 0xf0).OrImm(R0, 0x0f) }, 0xff},
		{"xor", func(a *Assembler) { a.MovImm(R0, 0xff).XorImm(R0, 0x0f) }, 0xf0},
		{"lsh", func(a *Assembler) { a.MovImm(R0, 1).LshImm(R0, 63) }, 1 << 63},
		{"rsh", func(a *Assembler) { a.MovImm(R0, 1<<63).RshImm(R0, 63) }, 1},
		{"neg", func(a *Assembler) { a.MovImm(R0, 1).Neg(R0) }, ^uint64(0)},
		{"reg-forms", func(a *Assembler) {
			a.MovImm(R6, 5).MovImm(R7, 3).
				MovReg(R0, R6).AddReg(R0, R7).MulReg(R0, R7).
				SubReg(R0, R6).XorReg(R0, R7).OrReg(R0, R6).AndReg(R0, R7)
		}, ((5+3)*3 - 5) ^ 3 | 5&3 /* computed below in test */},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := NewAssembler()
			c.build(a)
			p := mustAssemble(t, a.Exit())
			want := c.want
			if c.name == "reg-forms" {
				v := uint64(5+3) * 3
				v -= 5
				v ^= 3
				v |= 5
				v &= 3
				want = v
			}
			if got := run(t, p, nil); got != want {
				t.Fatalf("R0 = %d, want %d", got, want)
			}
		})
	}
}

func TestShiftMasksTo63(t *testing.T) {
	p := mustAssemble(t, NewAssembler().MovImm(R0, 1).LshImm(R0, 64).Exit())
	if got := run(t, p, nil); got != 1 {
		t.Fatalf("lsh by 64 should mask to 0 shift, got %d", got)
	}
}

func TestConditionalJumps(t *testing.T) {
	// if R6 > 10 -> R0=1 else R0=2
	build := func(v uint64) *Program {
		a := NewAssembler()
		a.MovImm(R6, v).
			JgtImm(R6, 10, "big").
			MovImm(R0, 2).Exit().
			Label("big").
			MovImm(R0, 1).Exit()
		return mustAssembleHelper(a)
	}
	if got, _ := build(11).Run(&ReuseportCtx{}); got != 1 {
		t.Fatalf("11 > 10 path: got %d", got)
	}
	if got, _ := build(10).Run(&ReuseportCtx{}); got != 2 {
		t.Fatalf("10 > 10 path: got %d", got)
	}
}

func mustAssembleHelper(a *Assembler) *Program {
	p, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return p
}

func TestVerifierRejections(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Program, error)
		frag  string
	}{
		{"empty", func() (*Program, error) {
			return NewAssembler().Assemble()
		}, "empty"},
		{"uninit-read", func() (*Program, error) {
			return NewAssembler().MovReg(R0, R6).Exit().Assemble()
		}, "uninitialized"},
		{"uninit-r0-exit", func() (*Program, error) {
			return NewAssembler().MovImm(R6, 1).Exit().Assemble()
		}, "uninitialized"},
		{"fall-off-end", func() (*Program, error) {
			return NewAssembler().MovImm(R0, 1).Assemble()
		}, "fall off"},
		{"undefined-label", func() (*Program, error) {
			return NewAssembler().MovImm(R0, 0).JeqImm(R0, 0, "nowhere").Exit().Assemble()
		}, "undefined label"},
		{"backward-jump", func() (*Program, error) {
			a := NewAssembler()
			a.Label("loop").MovImm(R0, 0)
			a.Ja("loop")
			return a.Assemble()
		}, "backward"},
		{"unknown-helper", func() (*Program, error) {
			p := &Program{insns: []Insn{
				{Op: OpCall, Imm: 999},
				{Op: OpMovImm, Dst: R0},
				{Op: OpExit},
			}}
			return p, Verify(p)
		}, "unknown helper"},
		{"unregistered-map", func() (*Program, error) {
			return NewAssembler().LdMap(R1, 0).MovImm(R0, 0).Exit().Assemble()
		}, "not registered"},
		{"helper-wrong-map-type", func() (*Program, error) {
			a := NewAssembler()
			slot := a.AddMap(NewSockArray(4))
			a.LdMap(R1, slot).MovImm(R2, 0).Call(HelperMapLookupElem).Exit()
			return a.Assemble()
		}, "needs"},
		{"helper-scalar-as-map", func() (*Program, error) {
			a := NewAssembler()
			a.MovImm(R1, 7).MovImm(R2, 0).Call(HelperMapLookupElem).Exit()
			return a.Assemble()
		}, "not a map handle"},
		{"call-clobbers-args", func() (*Program, error) {
			// Reading R2 after a call must fail: calls clobber R1-R5.
			a := NewAssembler()
			a.MovImm(R1, 1).MovImm(R2, 2).Call(HelperReciprocalScale).
				MovReg(R0, R2).Exit()
			return a.Assemble()
		}, "uninitialized"},
		{"partial-init-across-paths", func() (*Program, error) {
			// R6 initialized on only one branch, then read after the merge.
			a := NewAssembler()
			a.MovImm(R0, 0).
				JeqImm(R0, 0, "skip").
				MovImm(R6, 1).
				Label("skip").
				MovReg(R0, R6).Exit()
			return a.Assemble()
		}, "uninitialized"},
		{"too-long", func() (*Program, error) {
			a := NewAssembler()
			for i := 0; i < MaxInsns+1; i++ {
				a.MovImm(R0, 0)
			}
			a.Exit()
			return a.Assemble()
		}, "too long"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.build()
			if err == nil {
				t.Fatal("verifier accepted invalid program")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("error %q does not contain %q", err, c.frag)
			}
		})
	}
}

func TestVerifierAcceptsDiamond(t *testing.T) {
	// R6 initialized on both branches before the merged read: must pass.
	a := NewAssembler()
	a.MovImm(R0, 0).
		JeqImm(R0, 0, "then").
		MovImm(R6, 1).Ja("join").
		Label("then").
		MovImm(R6, 2).
		Label("join").
		MovReg(R0, R6).Exit()
	p := mustAssemble(t, a)
	if got := run(t, p, nil); got != 2 {
		t.Fatalf("diamond result = %d, want 2 (then-branch)", got)
	}
}

func TestHelperGetHash(t *testing.T) {
	p := mustAssemble(t, NewAssembler().Call(HelperGetHash).Exit())
	if got := run(t, p, &ReuseportCtx{Hash: 0xabcd1234}); got != 0xabcd1234 {
		t.Fatalf("hash = %#x", got)
	}
}

func TestHelperReciprocalScaleMatchesBitops(t *testing.T) {
	a := NewAssembler()
	a.Call(HelperGetHash).
		MovReg(R1, R0).
		MovImm(R2, 7).
		Call(HelperReciprocalScale).
		Exit()
	p := mustAssemble(t, a)
	f := func(h uint32) bool {
		got, err := p.Run(&ReuseportCtx{Hash: h})
		return err == nil && got == uint64(bitops.ReciprocalScale(h, 7))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHelperMapLookup(t *testing.T) {
	m := NewArrayMap(4)
	if err := m.Update(2, 777); err != nil {
		t.Fatal(err)
	}
	a := NewAssembler()
	slot := a.AddMap(m)
	a.LdMap(R1, slot).MovImm(R2, 2).Call(HelperMapLookupElem).Exit()
	p := mustAssemble(t, a)
	if got := run(t, p, nil); got != 777 {
		t.Fatalf("lookup = %d, want 777", got)
	}
}

func TestHelperMapLookupMiss(t *testing.T) {
	m := NewArrayMap(1)
	a := NewAssembler()
	slot := a.AddMap(m)
	a.LdMap(R1, slot).MovImm(R2, 5).Call(HelperMapLookupElem).Exit()
	p := mustAssemble(t, a)
	if _, err := p.Run(&ReuseportCtx{}); err != ErrMapMiss {
		t.Fatalf("err = %v, want ErrMapMiss", err)
	}
}

func TestHelperSkSelect(t *testing.T) {
	sa := NewSockArray(4)
	type sock struct{ id int }
	s2 := &sock{2}
	if err := sa.Put(2, s2); err != nil {
		t.Fatal(err)
	}
	a := NewAssembler()
	slot := a.AddMap(sa)
	a.LdMap(R1, slot).MovImm(R2, 2).Call(HelperSkSelectReuseport).Exit()
	p := mustAssemble(t, a)
	ctx := &ReuseportCtx{}
	if got := run(t, p, ctx); got != 0 {
		t.Fatalf("select returned %d, want 0", got)
	}
	if ctx.Selected != SockRef(s2) || ctx.SelectedIndex != 2 {
		t.Fatalf("ctx = %+v", ctx)
	}

	// Empty slot: returns 1, selects nothing.
	a2 := NewAssembler()
	slot2 := a2.AddMap(sa)
	a2.LdMap(R1, slot2).MovImm(R2, 3).Call(HelperSkSelectReuseport).Exit()
	p2 := mustAssemble(t, a2)
	ctx2 := &ReuseportCtx{}
	if got := run(t, p2, ctx2); got != 1 {
		t.Fatalf("empty-slot select returned %d, want 1", got)
	}
	if ctx2.Selected != nil || ctx2.SelectedIndex != -1 {
		t.Fatalf("ctx2 = %+v", ctx2)
	}
}

func TestArrayMapBounds(t *testing.T) {
	m := NewArrayMap(2)
	if err := m.Update(2, 1); err == nil {
		t.Fatal("out-of-range update accepted")
	}
	if _, err := m.UserLookup(2); err == nil {
		t.Fatal("out-of-range lookup accepted")
	}
	if _, ok := m.Lookup(2); ok {
		t.Fatal("kernel lookup out of range returned ok")
	}
	if err := m.Update(1, 9); err != nil {
		t.Fatal(err)
	}
	v, err := m.UserLookup(1)
	if err != nil || v != 9 {
		t.Fatalf("UserLookup = %d, %v", v, err)
	}
	if got := m.SyscallCount.Load(); got != 2 {
		t.Fatalf("SyscallCount = %d, want 2 (1 update + 1 lookup)", got)
	}
}

func TestSockArrayBounds(t *testing.T) {
	sa := NewSockArray(2)
	if err := sa.Put(2, "x"); err == nil {
		t.Fatal("out-of-range put accepted")
	}
	if err := sa.Put(0, nil); err == nil {
		t.Fatal("nil sock accepted")
	}
	if sa.Get(5) != nil {
		t.Fatal("out-of-range get returned non-nil")
	}
}

func TestDisassembleStable(t *testing.T) {
	a := NewAssembler()
	slot := a.AddMap(NewArrayMap(1))
	a.LdMap(R1, slot).MovImm(R2, 0).Call(HelperMapLookupElem).
		JeqImm(R0, 0, "zero").
		MovImm(R0, 1).Exit().
		Label("zero").MovImm(R0, 0).Exit()
	p := mustAssemble(t, a)
	dis := p.Disassemble()
	for _, frag := range []string{"map[0]", "call bpf_map_lookup_elem", "goto +", "exit"} {
		if !strings.Contains(dis, frag) {
			t.Errorf("disassembly missing %q:\n%s", frag, dis)
		}
	}
	if p.Len() != 8 {
		t.Errorf("Len = %d, want 8", p.Len())
	}
}

func TestMapTypeStrings(t *testing.T) {
	if MapTypeArray.String() != "BPF_MAP_TYPE_ARRAY" {
		t.Error(MapTypeArray.String())
	}
	if MapTypeReuseportSockArray.String() != "BPF_MAP_TYPE_REUSEPORT_SOCKARRAY" {
		t.Error(MapTypeReuseportSockArray.String())
	}
	if !strings.Contains(MapType(9).String(), "9") {
		t.Error("unknown map type string")
	}
	if !strings.Contains(HelperID(99).String(), "99") {
		t.Error("unknown helper string")
	}
}

func BenchmarkVMDispatchSizedProgram(b *testing.B) {
	// A ~30-insn arithmetic program, roughly the dispatch program's scale.
	a := NewAssembler()
	a.Call(HelperGetHash)
	a.MovReg(R6, R0)
	for i := 0; i < 12; i++ {
		a.MovReg(R7, R6).RshImm(R7, uint64(i%13)).XorReg(R6, R7).AddImm(R6, 0x9e37)
	}
	a.MovReg(R0, R6).Exit()
	p, err := a.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	ctx := &ReuseportCtx{Hash: 0x12345678}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx.Hash = uint32(i)
		if _, err := p.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
