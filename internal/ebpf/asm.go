package ebpf

import (
	"fmt"
	"strings"
	"sync"
)

// Assembler builds instruction sequences with symbolic forward labels, so
// program generators (like the Hermes dispatch builder) don't hand-compute
// jump offsets. Labels must be defined after every jump that references them
// — the verifier would reject backward jumps anyway.
type Assembler struct {
	insns   []Insn
	maps    []Map
	pending map[string][]int // label -> indices of jumps waiting for it
	defined map[string]bool
	err     error
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{
		pending: make(map[string][]int),
		defined: make(map[string]bool),
	}
}

func (a *Assembler) emit(in Insn) *Assembler {
	a.insns = append(a.insns, in)
	return a
}

// AddMap registers a map and returns its slot for OpLdMap.
func (a *Assembler) AddMap(m Map) uint64 {
	a.maps = append(a.maps, m)
	return uint64(len(a.maps) - 1)
}

// MovImm emits dst = imm.
func (a *Assembler) MovImm(dst Reg, imm uint64) *Assembler {
	return a.emit(Insn{Op: OpMovImm, Dst: dst, Imm: imm})
}

// MovReg emits dst = src.
func (a *Assembler) MovReg(dst, src Reg) *Assembler {
	return a.emit(Insn{Op: OpMovReg, Dst: dst, Src: src})
}

// ALU immediate forms.
func (a *Assembler) AddImm(dst Reg, imm uint64) *Assembler {
	return a.emit(Insn{Op: OpAddImm, Dst: dst, Imm: imm})
}
func (a *Assembler) SubImm(dst Reg, imm uint64) *Assembler {
	return a.emit(Insn{Op: OpSubImm, Dst: dst, Imm: imm})
}
func (a *Assembler) MulImm(dst Reg, imm uint64) *Assembler {
	return a.emit(Insn{Op: OpMulImm, Dst: dst, Imm: imm})
}
func (a *Assembler) AndImm(dst Reg, imm uint64) *Assembler {
	return a.emit(Insn{Op: OpAndImm, Dst: dst, Imm: imm})
}
func (a *Assembler) OrImm(dst Reg, imm uint64) *Assembler {
	return a.emit(Insn{Op: OpOrImm, Dst: dst, Imm: imm})
}
func (a *Assembler) XorImm(dst Reg, imm uint64) *Assembler {
	return a.emit(Insn{Op: OpXorImm, Dst: dst, Imm: imm})
}
func (a *Assembler) LshImm(dst Reg, imm uint64) *Assembler {
	return a.emit(Insn{Op: OpLshImm, Dst: dst, Imm: imm})
}
func (a *Assembler) RshImm(dst Reg, imm uint64) *Assembler {
	return a.emit(Insn{Op: OpRshImm, Dst: dst, Imm: imm})
}

// ALU register forms.
func (a *Assembler) AddReg(dst, src Reg) *Assembler {
	return a.emit(Insn{Op: OpAddReg, Dst: dst, Src: src})
}
func (a *Assembler) SubReg(dst, src Reg) *Assembler {
	return a.emit(Insn{Op: OpSubReg, Dst: dst, Src: src})
}
func (a *Assembler) MulReg(dst, src Reg) *Assembler {
	return a.emit(Insn{Op: OpMulReg, Dst: dst, Src: src})
}
func (a *Assembler) AndReg(dst, src Reg) *Assembler {
	return a.emit(Insn{Op: OpAndReg, Dst: dst, Src: src})
}
func (a *Assembler) OrReg(dst, src Reg) *Assembler {
	return a.emit(Insn{Op: OpOrReg, Dst: dst, Src: src})
}
func (a *Assembler) XorReg(dst, src Reg) *Assembler {
	return a.emit(Insn{Op: OpXorReg, Dst: dst, Src: src})
}
func (a *Assembler) LshReg(dst, src Reg) *Assembler {
	return a.emit(Insn{Op: OpLshReg, Dst: dst, Src: src})
}
func (a *Assembler) RshReg(dst, src Reg) *Assembler {
	return a.emit(Insn{Op: OpRshReg, Dst: dst, Src: src})
}

// Neg emits dst = -dst.
func (a *Assembler) Neg(dst Reg) *Assembler { return a.emit(Insn{Op: OpNeg, Dst: dst}) }

// LdMap emits dst = handle of map slot.
func (a *Assembler) LdMap(dst Reg, slot uint64) *Assembler {
	return a.emit(Insn{Op: OpLdMap, Dst: dst, Imm: slot})
}

// Call emits a helper call.
func (a *Assembler) Call(h HelperID) *Assembler {
	return a.emit(Insn{Op: OpCall, Imm: uint64(h)})
}

// Exit emits program termination.
func (a *Assembler) Exit() *Assembler { return a.emit(Insn{Op: OpExit}) }

func (a *Assembler) jump(op Op, dst, src Reg, imm uint64, label string) *Assembler {
	if a.defined[label] {
		a.err = fmt.Errorf("ebpf: backward jump to already-defined label %q", label)
		return a
	}
	a.pending[label] = append(a.pending[label], len(a.insns))
	return a.emit(Insn{Op: op, Dst: dst, Src: src, Imm: imm})
}

// Ja emits an unconditional forward jump to label.
func (a *Assembler) Ja(label string) *Assembler { return a.jump(OpJa, 0, 0, 0, label) }

// Conditional jumps, immediate comparand.
func (a *Assembler) JeqImm(dst Reg, imm uint64, label string) *Assembler {
	return a.jump(OpJeqImm, dst, 0, imm, label)
}
func (a *Assembler) JneImm(dst Reg, imm uint64, label string) *Assembler {
	return a.jump(OpJneImm, dst, 0, imm, label)
}
func (a *Assembler) JgtImm(dst Reg, imm uint64, label string) *Assembler {
	return a.jump(OpJgtImm, dst, 0, imm, label)
}
func (a *Assembler) JgeImm(dst Reg, imm uint64, label string) *Assembler {
	return a.jump(OpJgeImm, dst, 0, imm, label)
}
func (a *Assembler) JltImm(dst Reg, imm uint64, label string) *Assembler {
	return a.jump(OpJltImm, dst, 0, imm, label)
}
func (a *Assembler) JleImm(dst Reg, imm uint64, label string) *Assembler {
	return a.jump(OpJleImm, dst, 0, imm, label)
}

// Conditional jumps, register comparand.
func (a *Assembler) JeqReg(dst, src Reg, label string) *Assembler {
	return a.jump(OpJeqReg, dst, src, 0, label)
}
func (a *Assembler) JneReg(dst, src Reg, label string) *Assembler {
	return a.jump(OpJneReg, dst, src, 0, label)
}
func (a *Assembler) JgtReg(dst, src Reg, label string) *Assembler {
	return a.jump(OpJgtReg, dst, src, 0, label)
}
func (a *Assembler) JgeReg(dst, src Reg, label string) *Assembler {
	return a.jump(OpJgeReg, dst, src, 0, label)
}
func (a *Assembler) JltReg(dst, src Reg, label string) *Assembler {
	return a.jump(OpJltReg, dst, src, 0, label)
}
func (a *Assembler) JleReg(dst, src Reg, label string) *Assembler {
	return a.jump(OpJleReg, dst, src, 0, label)
}

// Label defines label at the current position, resolving pending jumps.
func (a *Assembler) Label(label string) *Assembler {
	if a.defined[label] {
		a.err = fmt.Errorf("ebpf: label %q defined twice", label)
		return a
	}
	a.defined[label] = true
	here := len(a.insns)
	for _, idx := range a.pending[label] {
		a.insns[idx].Off = int32(here - idx - 1)
	}
	delete(a.pending, label)
	return a
}

// Assemble resolves the program and runs it through the verifier.
func (a *Assembler) Assemble() (*Program, error) {
	if a.err != nil {
		return nil, a.err
	}
	if len(a.pending) > 0 {
		var missing []string
		for l := range a.pending {
			missing = append(missing, l)
		}
		return nil, fmt.Errorf("ebpf: undefined labels: %s", strings.Join(missing, ", "))
	}
	p := &Program{insns: append([]Insn(nil), a.insns...), maps: append([]Map(nil), a.maps...)}
	if err := Verify(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Program is a verified, immutable instruction sequence with its map
// references, ready to attach to a reuseport group. It can run interpreted
// (Run) or lowered to native closures (Compiled); the JIT result is cached
// on the program.
type Program struct {
	insns []Insn
	maps  []Map

	jitOnce sync.Once
	jit     *Compiled
	jitErr  error
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.insns) }

// Disassemble renders the program with one instruction per line.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i, in := range p.insns {
		fmt.Fprintf(&b, "%4d: %s\n", i, in)
	}
	return b.String()
}
