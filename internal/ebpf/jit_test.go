package ebpf

import (
	"testing"
)

// runBoth executes p under the interpreter and the JIT on identical contexts
// and fails the test on any observable divergence: R0, error identity, and
// the context's selection outputs. It returns the interpreter's results.
func runBoth(t *testing.T, p *Program, ctx ReuseportCtx) (uint64, error) {
	t.Helper()
	c, err := p.Compiled()
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, p.Disassemble())
	}
	ictx, jctx := ctx, ctx
	ir0, ierr := p.Run(&ictx)
	jr0, jerr := c.Run(&jctx)
	if ir0 != jr0 || ierr != jerr {
		t.Fatalf("divergence: interp (r0=%d err=%v) jit (r0=%d err=%v)\n%s",
			ir0, ierr, jr0, jerr, p.Disassemble())
	}
	if ictx.SelectedIndex != jctx.SelectedIndex || ictx.Selected != jctx.Selected {
		t.Fatalf("ctx divergence: interp (%v,%d) jit (%v,%d)\n%s",
			ictx.Selected, ictx.SelectedIndex, jctx.Selected, jctx.SelectedIndex, p.Disassemble())
	}
	return ir0, ierr
}

// emitPopCountInsns returns the exact 15-instruction SWAR popcount shape
// core's dispatch builder emits (and the fusion matcher recognizes).
func emitPopCountInsns(dst, tmp Reg) []Insn {
	return []Insn{
		{Op: OpMovReg, Dst: tmp, Src: dst},
		{Op: OpRshImm, Dst: tmp, Imm: 1},
		{Op: OpAndImm, Dst: tmp, Imm: m1},
		{Op: OpSubReg, Dst: dst, Src: tmp},
		{Op: OpMovReg, Dst: tmp, Src: dst},
		{Op: OpRshImm, Dst: tmp, Imm: 2},
		{Op: OpAndImm, Dst: tmp, Imm: m2},
		{Op: OpAndImm, Dst: dst, Imm: m2},
		{Op: OpAddReg, Dst: dst, Src: tmp},
		{Op: OpMovReg, Dst: tmp, Src: dst},
		{Op: OpRshImm, Dst: tmp, Imm: 4},
		{Op: OpAddReg, Dst: dst, Src: tmp},
		{Op: OpAndImm, Dst: dst, Imm: m4},
		{Op: OpMulImm, Dst: dst, Imm: h1},
		{Op: OpRshImm, Dst: dst, Imm: 56},
	}
}

// The popcount idiom must fuse (shrinking the closure chain) while staying
// bit-identical to the interpreter — including the scratch register's final
// value, which later instructions are allowed to read.
func TestJITPopCountFusionAndRegisterFidelity(t *testing.T) {
	for _, returnReg := range []Reg{R6, R3} { // popcount result / scratch
		insns := []Insn{{Op: OpMovImm, Dst: R6, Imm: 0}, {Op: OpMovImm, Dst: R3, Imm: 0}}
		insns = append(insns, emitPopCountInsns(R6, R3)...)
		insns = append(insns, Insn{Op: OpMovReg, Dst: R0, Src: returnReg}, Insn{Op: OpExit})
		for _, v := range []uint64{0, 1, 0xffffffffffffffff, 0x8000000000000001, 0x5555aaaa33337777, 12345} {
			insns[0].Imm = v
			p := &Program{insns: append([]Insn(nil), insns...)}
			if err := Verify(p); err != nil {
				t.Fatal(err)
			}
			runBoth(t, p, ReuseportCtx{Hash: 7})
		}
		p := &Program{insns: insns}
		c, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		if c.Closures() >= c.Insns() {
			t.Fatalf("popcount did not fuse: %d closures for %d insns", c.Closures(), c.Insns())
		}
	}
}

// A jump landing inside the popcount window must suppress fusion without
// changing behaviour.
func TestJITFusionBlockedByJumpTarget(t *testing.T) {
	// Jump over the first two instructions of the popcount sequence, landing
	// mid-window; the fallthrough path executes the whole window.
	insns := []Insn{
		{Op: OpMovImm, Dst: R6, Imm: 0xf0f0_1234_5678_9abc},
		{Op: OpMovImm, Dst: R3, Imm: 0},
		{Op: OpJeqImm, Dst: R6, Imm: 0, Off: 2}, // never taken, but targets pc+3+2
	}
	insns = append(insns, emitPopCountInsns(R6, R3)...)
	insns = append(insns, Insn{Op: OpMovReg, Dst: R0, Src: R6}, Insn{Op: OpExit})
	p := &Program{insns: insns}
	if err := Verify(p); err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Closures() != c.Insns() {
		t.Fatalf("fusion applied across a jump target: %d closures for %d insns", c.Closures(), c.Insns())
	}
	runBoth(t, p, ReuseportCtx{})
}

// Helper calls with a dataflow-resolved map argument must behave exactly
// like the interpreter — including the ErrMapMiss path — and calls whose map
// argument differs across paths must fall back to the generic helper.
func TestJITHelperSpecializationAndMerge(t *testing.T) {
	am := NewArrayMap(2)
	_ = am.Update(0, 0b1011)
	am2 := NewArrayMap(2)
	_ = am2.Update(0, 0b0100)
	sa := NewSockArray(4)
	_ = sa.Put(1, "sock1")

	// Straight-line: known slot, hit and miss.
	for _, key := range []uint64{0, 5} {
		p := &Program{
			insns: []Insn{
				{Op: OpLdMap, Dst: R1, Imm: 0},
				{Op: OpMovImm, Dst: R2, Imm: key},
				{Op: OpCall, Imm: uint64(HelperMapLookupElem)},
				{Op: OpExit},
			},
			maps: []Map{am, am2, sa},
		}
		if err := Verify(p); err != nil {
			t.Fatal(err)
		}
		r0, err := runBoth(t, p, ReuseportCtx{})
		if key == 0 && (err != nil || r0 != 0b1011) {
			t.Fatalf("lookup hit: r0=%d err=%v", r0, err)
		}
		if key == 5 && err != ErrMapMiss {
			t.Fatalf("lookup miss: err=%v", err)
		}
	}

	// Merge conflict: R1 holds map 0 on one path, map 1 on the other. The
	// compiler must fall back to the generic helper and still match.
	for _, hash := range []uint32{0, 1} {
		p := &Program{
			insns: []Insn{
				{Op: OpCall, Imm: uint64(HelperGetHash)},
				{Op: OpLdMap, Dst: R1, Imm: 0},
				{Op: OpJeqImm, Dst: R0, Imm: 0, Off: 1},
				{Op: OpLdMap, Dst: R1, Imm: 1},
				{Op: OpMovImm, Dst: R2, Imm: 0},
				{Op: OpCall, Imm: uint64(HelperMapLookupElem)},
				{Op: OpExit},
			},
			maps: []Map{am, am2, sa},
		}
		if err := Verify(p); err != nil {
			t.Fatal(err)
		}
		want := uint64(0b0100) // hash==0 takes the jump, keeping map 0? no:
		// jump taken when R0==0 → skips the second LdMap → map 0 → 0b1011.
		if hash == 0 {
			want = 0b1011
		}
		r0, err := runBoth(t, p, ReuseportCtx{Hash: hash})
		if err != nil || r0 != want {
			t.Fatalf("hash=%d: r0=%#b err=%v, want %#b", hash, r0, err, want)
		}
	}

	// Socket selection: empty slot (r0=1, no selection) vs filled slot.
	for _, idx := range []uint64{0, 1} {
		p := &Program{
			insns: []Insn{
				{Op: OpLdMap, Dst: R1, Imm: 2},
				{Op: OpMovImm, Dst: R2, Imm: idx},
				{Op: OpCall, Imm: uint64(HelperSkSelectReuseport)},
				{Op: OpExit},
			},
			maps: []Map{am, am2, sa},
		}
		if err := Verify(p); err != nil {
			t.Fatal(err)
		}
		r0, err := runBoth(t, p, ReuseportCtx{})
		if err != nil {
			t.Fatal(err)
		}
		if idx == 1 && r0 != 0 {
			t.Fatalf("filled slot: r0=%d", r0)
		}
		if idx == 0 && r0 != 1 {
			t.Fatalf("empty slot: r0=%d", r0)
		}
	}
}

// Compiled() must cache: one compilation per program, shared result.
func TestProgramCompiledCached(t *testing.T) {
	p := &Program{insns: []Insn{{Op: OpMovImm, Dst: R0, Imm: 42}, {Op: OpExit}}}
	c1, err := p.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("Compiled() did not cache")
	}
	r0, err := c1.Run(&ReuseportCtx{})
	if err != nil || r0 != 42 {
		t.Fatalf("r0=%d err=%v", r0, err)
	}
}

// Compile must reject what Verify rejects: it is only sound for verified
// programs.
func TestCompileRejectsUnverifiable(t *testing.T) {
	p := &Program{insns: []Insn{{Op: OpMovReg, Dst: R0, Src: R9}, {Op: OpExit}}}
	if _, err := Compile(p); err == nil {
		t.Fatal("compiled a program reading an uninitialized register")
	}
}

// The compiled steering path must be allocation-free in steady state — this
// is the property the kernel-level CI gate (BenchmarkSteerSYN/ebpf) checks
// end-to-end; here it is pinned at the unit level, success and error paths
// both.
func TestCompiledRunZeroAlloc(t *testing.T) {
	am := NewArrayMap(1)
	_ = am.Update(0, 0xffff)
	sa := NewSockArray(2)
	_ = sa.Put(0, "sock0")
	p := &Program{
		insns: []Insn{
			{Op: OpLdMap, Dst: R1, Imm: 0},
			{Op: OpMovImm, Dst: R2, Imm: 0},
			{Op: OpCall, Imm: uint64(HelperMapLookupElem)},
			{Op: OpLdMap, Dst: R1, Imm: 1},
			{Op: OpMovImm, Dst: R2, Imm: 0},
			{Op: OpCall, Imm: uint64(HelperSkSelectReuseport)},
			{Op: OpExit},
		},
		maps: []Map{am, sa},
	}
	if err := Verify(p); err != nil {
		t.Fatal(err)
	}
	c, err := p.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	ctx := ReuseportCtx{Hash: 99}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.Run(&ctx); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("compiled run allocates %v/op, want 0", allocs)
	}

	// Error path: helper failure must not allocate either (sentinel errors).
	miss := &Program{
		insns: []Insn{
			{Op: OpLdMap, Dst: R1, Imm: 0},
			{Op: OpMovImm, Dst: R2, Imm: 9},
			{Op: OpCall, Imm: uint64(HelperMapLookupElem)},
			{Op: OpExit},
		},
		maps: []Map{am, sa},
	}
	if err := Verify(miss); err != nil {
		t.Fatal(err)
	}
	cm, err := miss.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := cm.Run(&ctx); err != ErrMapMiss {
			t.Fatalf("err=%v", err)
		}
	}); allocs != 0 {
		t.Fatalf("compiled error path allocates %v/op, want 0", allocs)
	}
	// The interpreter's error path must be allocation-free too (the
	// sentinel-error fix): callers only branch on nil.
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := miss.Run(&ctx); err != ErrMapMiss {
			t.Fatalf("err=%v", err)
		}
	}); allocs != 0 {
		t.Fatalf("interpreter error path allocates %v/op, want 0", allocs)
	}
}
