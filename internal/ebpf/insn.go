// Package ebpf is a simulated eBPF subsystem: typed maps, a register-based
// virtual machine, a verifier enforcing the real runtime's key constraints
// (bounded programs, forward-only jumps, initialized registers, whitelisted
// helpers), and the SO_ATTACH_REUSEPORT_EBPF attach point that Hermes hooks.
//
// The paper's kernel-side dispatcher (§5.4, Algorithm 2) must work within
// eBPF's limited programmability — no loops, no complex hashing — which is
// why it selects workers with branch-free bit tricks. Reproducing that
// constraint faithfully matters as much as reproducing the behaviour, so
// Hermes's dispatch logic in this repo is assembled to bytecode and
// verified, exactly as a loaded BPF program would be. Verified programs run
// either interpreted (vm.go, the reference implementation) or JIT-compiled
// to native closure chains (jit.go) — the same two tiers the real kernel
// has, with the interpreter serving as the differential-fuzz oracle for the
// compiler. A semantically identical hand-written native path in
// internal/core mirrors what a production JIT would emit; benchmarks compare
// all three.
package ebpf

import "fmt"

// Reg is a VM register. R0 holds return values, R1..R5 carry helper
// arguments (and are clobbered by calls), R6..R9 are callee-saved scratch.
type Reg uint8

// VM registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	NumRegs = 10
)

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Op is an instruction opcode.
type Op uint8

// Opcodes. ALU ops come in immediate and register flavours; conditional
// jumps likewise. Offsets are relative to the next instruction, and the
// verifier requires them to be strictly forward (loop freedom).
const (
	OpMovImm Op = iota // dst = imm
	OpMovReg           // dst = src
	OpAddImm           // dst += imm
	OpAddReg           // dst += src
	OpSubImm           // dst -= imm
	OpSubReg           // dst -= src
	OpMulImm           // dst *= imm
	OpMulReg           // dst *= src
	OpAndImm           // dst &= imm
	OpAndReg           // dst &= src
	OpOrImm            // dst |= imm
	OpOrReg            // dst |= src
	OpXorImm           // dst ^= imm
	OpXorReg           // dst ^= src
	OpLshImm           // dst <<= imm
	OpLshReg           // dst <<= src
	OpRshImm           // dst >>= imm (logical)
	OpRshReg           // dst >>= src
	OpNeg              // dst = -dst
	OpJa               // pc += off
	OpJeqImm           // if dst == imm: pc += off
	OpJeqReg           // if dst == src: pc += off
	OpJneImm           // if dst != imm: pc += off
	OpJneReg           // if dst != src: pc += off
	OpJgtImm           // if dst >  imm: pc += off (unsigned)
	OpJgtReg           // if dst >  src: pc += off
	OpJgeImm           // if dst >= imm: pc += off
	OpJgeReg           // if dst >= src: pc += off
	OpJltImm           // if dst <  imm: pc += off
	OpJltReg           // if dst <  src: pc += off
	OpJleImm           // if dst <= imm: pc += off
	OpJleReg           // if dst <= src: pc += off
	OpLdMap            // dst = handle of map[imm] (pseudo map-fd load)
	OpCall             // call helper imm
	OpExit             // return R0
)

var opNames = map[Op]string{
	OpMovImm: "mov", OpMovReg: "mov",
	OpAddImm: "add", OpAddReg: "add",
	OpSubImm: "sub", OpSubReg: "sub",
	OpMulImm: "mul", OpMulReg: "mul",
	OpAndImm: "and", OpAndReg: "and",
	OpOrImm: "or", OpOrReg: "or",
	OpXorImm: "xor", OpXorReg: "xor",
	OpLshImm: "lsh", OpLshReg: "lsh",
	OpRshImm: "rsh", OpRshReg: "rsh",
	OpNeg:    "neg",
	OpJa:     "ja",
	OpJeqImm: "jeq", OpJeqReg: "jeq",
	OpJneImm: "jne", OpJneReg: "jne",
	OpJgtImm: "jgt", OpJgtReg: "jgt",
	OpJgeImm: "jge", OpJgeReg: "jge",
	OpJltImm: "jlt", OpJltReg: "jlt",
	OpJleImm: "jle", OpJleReg: "jle",
	OpLdMap: "ldmap",
	OpCall:  "call",
	OpExit:  "exit",
}

// Insn is one VM instruction.
type Insn struct {
	Op  Op
	Dst Reg
	Src Reg
	Imm uint64 // immediate operand / helper id / map slot
	Off int32  // jump offset, relative to next instruction
}

func (in Insn) isJump() bool {
	return in.Op >= OpJa && in.Op <= OpJleReg
}

func (in Insn) usesImm() bool {
	switch in.Op {
	case OpMovImm, OpAddImm, OpSubImm, OpMulImm, OpAndImm, OpOrImm,
		OpXorImm, OpLshImm, OpRshImm, OpJeqImm, OpJneImm, OpJgtImm,
		OpJgeImm, OpJltImm, OpJleImm, OpLdMap, OpCall:
		return true
	}
	return false
}

// String renders the instruction in a bpftool-like syntax.
func (in Insn) String() string {
	name := opNames[in.Op]
	switch {
	case in.Op == OpExit:
		return "exit"
	case in.Op == OpNeg:
		return fmt.Sprintf("%s %s", name, in.Dst)
	case in.Op == OpJa:
		return fmt.Sprintf("%s +%d", name, in.Off)
	case in.Op == OpCall:
		return fmt.Sprintf("call %s", HelperID(in.Imm))
	case in.Op == OpLdMap:
		return fmt.Sprintf("%s = map[%d]", in.Dst, in.Imm)
	case in.isJump() && in.usesImm():
		return fmt.Sprintf("if %s %s %d goto +%d", in.Dst, name[1:], in.Imm, in.Off)
	case in.isJump():
		return fmt.Sprintf("if %s %s %s goto +%d", in.Dst, name[1:], in.Src, in.Off)
	case in.usesImm():
		return fmt.Sprintf("%s %s, %d", name, in.Dst, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s", name, in.Dst, in.Src)
	}
}
