package ebpf

import "fmt"

// HelperID identifies a kernel helper callable from VM programs. The set
// mirrors what Hermes's dispatch program needs (§5.4): map lookup,
// reciprocal_scale, socket selection, plus the precomputed 4-tuple hash that
// real reuseport programs read from their context.
type HelperID uint64

// Available helpers.
const (
	// HelperMapLookupElem: R1 = map handle (from OpLdMap), R2 = key.
	// Returns the element value in R0 and sets the "found" flag in R1's
	// place... no — to stay register-only (the simulated VM has no memory),
	// the helper returns the value in R0 and, on miss, terminates the
	// program with ErrMapMiss, mirroring the verifier-mandated null check a
	// real program must perform before use.
	HelperMapLookupElem HelperID = iota + 1
	// HelperGetHash: returns the connection's precomputed 4-tuple hash in
	// R0 (the kernel computes this before running reuseport programs).
	HelperGetHash
	// HelperReciprocalScale: R1 = value, R2 = n. Returns
	// reciprocal_scale(value, n) in R0.
	HelperReciprocalScale
	// HelperSkSelectReuseport: R1 = sockarray handle, R2 = index. Selects
	// the socket at index for the incoming connection; returns 0 in R0 on
	// success, nonzero if the slot is empty/out of range (then the caller
	// should fall back).
	HelperSkSelectReuseport
	// HelperGetLocalityHash: returns the destination-only (DIP, Dport) hash
	// in R0, used by the cache-locality group mode (Fig. A6) to pin
	// same-destination traffic to one worker group.
	HelperGetLocalityHash
)

func (h HelperID) String() string {
	switch h {
	case HelperMapLookupElem:
		return "bpf_map_lookup_elem"
	case HelperGetHash:
		return "bpf_get_hash"
	case HelperReciprocalScale:
		return "reciprocal_scale"
	case HelperSkSelectReuseport:
		return "bpf_sk_select_reuseport"
	case HelperGetLocalityHash:
		return "bpf_get_locality_hash"
	default:
		return fmt.Sprintf("helper#%d", uint64(h))
	}
}

// helperSpec describes a helper's register contract for the verifier.
type helperSpec struct {
	args    int // number of argument registers (R1..Rargs) that must be initialized
	mapArg  int // 1-based arg register that must hold a map handle, 0 if none
	mapType MapType
}

var helperSpecs = map[HelperID]helperSpec{
	HelperMapLookupElem:     {args: 2, mapArg: 1, mapType: MapTypeArray},
	HelperGetHash:           {args: 0},
	HelperReciprocalScale:   {args: 2},
	HelperSkSelectReuseport: {args: 2, mapArg: 1, mapType: MapTypeReuseportSockArray},
	HelperGetLocalityHash:   {args: 0},
}
