package ebpf

import (
	"math/bits"
	"sync"

	"hermes/internal/telemetry"
)

// This file is the JIT/specialization pass: it compiles a verified Program
// into a chain of native Go closures, the simulated analogue of the kernel's
// eBPF JIT (interpretation on the packet path is too slow there for exactly
// the reason BenchmarkSteerSYN shows here). The interpreter (vm.go) stays as
// the reference implementation; fuzz_test.go runs every verified program
// through both and requires identical observable behaviour.
//
// Compilation strategy (docs/EBPF.md):
//
//   - Decode once. Each instruction becomes a closure with its operands
//     (register indices, immediates) captured as constants, eliminating the
//     per-instruction fetch/decode switch of the interpreter.
//   - Resolve at compile time. OpLdMap writes a handle the interpreter must
//     re-validate on every helper call; the compiler instead runs a forward
//     dataflow pass tracking which concrete map slot each register holds, and
//     emits helper closures with the *ArrayMap / *SockArray captured
//     directly. Handle validation and map-type checks disappear from the run
//     path (the verifier already proved them; the dataflow pass only decides
//     whether the proof pins a single slot).
//   - Fuse known idioms. The branch-free SWAR popcount sequence emitted by
//     core's dispatch builder (15 ALU instructions) collapses into one
//     closure built on bits.OnesCount64, and the rank-select walk's
//     shift-and-mask window extraction (3 instructions) into another. Fusion
//     preserves register fidelity: the fused closure also writes the exact
//     final value of the scratch register, so later reads see what the
//     instruction sequence would have produced.
//   - Thread by continuation. Closures are built in reverse pc order; since
//     verified jumps are strictly forward, both jump targets and
//     fallthroughs are already compiled when a closure needs them, so each
//     closure tail-calls its successor directly — no dispatch loop at all.
//
// Fallback rules: Compile refuses nothing a verified program can contain —
// every opcode has a generic closure, and helper calls whose map argument
// the dataflow pass cannot pin to one slot fall back to the interpreter's
// call() on the same env. Attach-time callers (kernel.ReuseportGroup) treat
// a Compile error as "run interpreted", so a compiler bug can cost speed but
// never dispatch correctness.

// jitEnv is the mutable state a compiled program runs against. The context
// is held by value and copied in/out by Compiled.Run: pooled envs must not
// retain caller pointers, and a pointer field would make the caller's ctx
// escape to the heap — the steering path is required to be allocation-free.
type jitEnv struct {
	regs [NumRegs]uint64
	ctx  ReuseportCtx
	err  error
}

// jitFn executes one (possibly fused) instruction and its continuation.
type jitFn func(*jitEnv)

var jitEnvPool = sync.Pool{New: func() any { return new(jitEnv) }}

// clobberPattern is what helper calls leave in R1-R5, mirroring vm.go.
const clobberPattern = 0xdead_beef_dead_beef

// Compiled is a Program lowered to a native closure chain.
type Compiled struct {
	prog     *Program
	entry    jitFn
	closures int // closure count after fusion (compile-time stat)

	telRuns *telemetry.Counter
}

// Instrument wires the per-execution telemetry counter (ebpf.jit.runs).
// A nil handle records nothing.
func (c *Compiled) Instrument(runs *telemetry.Counter) { c.telRuns = runs }

// Insns returns the source program's instruction count.
func (c *Compiled) Insns() int { return c.prog.Len() }

// Closures returns the closure count after fusion.
func (c *Compiled) Closures() int { return c.closures }

// Run executes the compiled program against ctx with the same observable
// semantics as Program.Run: identical R0/error results and identical ctx
// mutations (Selected, SelectedIndex), property-checked by the differential
// fuzzer. Steady-state allocation is zero: the env is pooled and the context
// crosses by value.
func (c *Compiled) Run(ctx *ReuseportCtx) (uint64, error) {
	e := jitEnvPool.Get().(*jitEnv)
	e.regs = [NumRegs]uint64{}
	e.regs[R1] = 1 // context register, as in vm.go
	e.ctx = *ctx
	e.ctx.SelectedIndex = -1
	e.err = nil

	c.entry(e)

	r0 := e.regs[R0]
	if e.err != nil {
		r0 = 0 // interpreter returns (0, err); match exactly
	}
	err := e.err
	*ctx = e.ctx
	e.ctx.Selected = nil // don't retain socket refs in the pool
	jitEnvPool.Put(e)
	c.telRuns.Inc()
	return r0, err
}

// Compiled returns the program lowered to native closures, compiling on
// first use. Compilation happens at most once per program; concurrent
// callers share the result.
func (p *Program) Compiled() (*Compiled, error) {
	p.jitOnce.Do(func() { p.jit, p.jitErr = Compile(p) })
	return p.jit, p.jitErr
}

// Compile lowers a verified program. Programs that did not come out of
// Assemble/Verify are rejected by re-verification: the compiler's soundness
// (forward-only continuation building, no bounds checks on fused windows)
// depends on the verifier's guarantees.
func Compile(p *Program) (*Compiled, error) {
	if err := Verify(p); err != nil {
		return nil, err
	}
	n := len(p.insns)
	targets := jumpTargets(p.insns)
	slots := resolveMapSlots(p)

	// fns[pc] runs the instruction at pc and everything after it; fns[n] is
	// never reached (the verifier rejects fallthrough off the end) but a
	// defined error closure keeps a compiler bug from becoming a nil call.
	fns := make([]jitFn, n+1)
	fns[n] = func(e *jitEnv) { e.err = ErrFellOff }

	for pc := n - 1; pc >= 0; pc-- {
		if fn := fuse(p.insns, pc, targets, fns); fn != nil {
			fns[pc] = fn
			continue
		}
		fns[pc] = compileInsn(p, p.insns[pc], pc, slots, fns)
	}
	// Fused windows leave their interior fns compiled but unreachable (the
	// fusion preconditions include "no jump lands inside the window"), so
	// the closure count reported is the count along the instruction stream
	// with fused windows collapsed.
	closures := countReachable(p.insns, targets, n)
	return &Compiled{prog: p, entry: fns[0], closures: closures}, nil
}

// jumpTargets maps each pc some jump lands on to the pcs of the jumps that
// land there. Fusion windows may contain jump targets only if every jump to
// them originates inside the window (single-entry region): the rank-select
// walk's internal branches qualify, an external branch into the middle of a
// fused window would not.
func jumpTargets(insns []Insn) map[int][]int {
	t := make(map[int][]int)
	for pc, in := range insns {
		if in.isJump() {
			dest := pc + 1 + int(in.Off)
			t[dest] = append(t[dest], pc)
		}
	}
	return t
}

// countReachable walks the instruction stream the way the fused compiler
// laid it out — fused windows advance by their width — and counts one
// closure per step, ignoring branch direction (both sides of a conditional
// rejoin the same stream). It measures how much fusion shrank the chain.
func countReachable(insns []Insn, targets map[int][]int, n int) int {
	count := 0
	for pc := 0; pc < n; {
		count++
		if w := fuseWidth(insns, pc, targets); w > 0 {
			pc += w
			continue
		}
		pc++
	}
	return count
}

// compileInsn builds the closure for one instruction. Continuations are read
// from fns at build time (legal because jumps are strictly forward and we
// build in reverse pc order), so the run path never indexes fns.
func compileInsn(p *Program, in Insn, pc int, slots map[int]int, fns []jitFn) jitFn {
	next := fns[pc+1]
	dst, src, imm := in.Dst, in.Src, in.Imm

	switch in.Op {
	case OpMovImm:
		return func(e *jitEnv) { e.regs[dst] = imm; next(e) }
	case OpMovReg:
		return func(e *jitEnv) { e.regs[dst] = e.regs[src]; next(e) }
	case OpAddImm:
		return func(e *jitEnv) { e.regs[dst] += imm; next(e) }
	case OpAddReg:
		return func(e *jitEnv) { e.regs[dst] += e.regs[src]; next(e) }
	case OpSubImm:
		return func(e *jitEnv) { e.regs[dst] -= imm; next(e) }
	case OpSubReg:
		return func(e *jitEnv) { e.regs[dst] -= e.regs[src]; next(e) }
	case OpMulImm:
		return func(e *jitEnv) { e.regs[dst] *= imm; next(e) }
	case OpMulReg:
		return func(e *jitEnv) { e.regs[dst] *= e.regs[src]; next(e) }
	case OpAndImm:
		return func(e *jitEnv) { e.regs[dst] &= imm; next(e) }
	case OpAndReg:
		return func(e *jitEnv) { e.regs[dst] &= e.regs[src]; next(e) }
	case OpOrImm:
		return func(e *jitEnv) { e.regs[dst] |= imm; next(e) }
	case OpOrReg:
		return func(e *jitEnv) { e.regs[dst] |= e.regs[src]; next(e) }
	case OpXorImm:
		return func(e *jitEnv) { e.regs[dst] ^= imm; next(e) }
	case OpXorReg:
		return func(e *jitEnv) { e.regs[dst] ^= e.regs[src]; next(e) }
	case OpLshImm:
		sh := imm & 63
		return func(e *jitEnv) { e.regs[dst] <<= sh; next(e) }
	case OpLshReg:
		return func(e *jitEnv) { e.regs[dst] <<= e.regs[src] & 63; next(e) }
	case OpRshImm:
		sh := imm & 63
		return func(e *jitEnv) { e.regs[dst] >>= sh; next(e) }
	case OpRshReg:
		return func(e *jitEnv) { e.regs[dst] >>= e.regs[src] & 63; next(e) }
	case OpNeg:
		return func(e *jitEnv) { e.regs[dst] = -e.regs[dst]; next(e) }
	case OpLdMap:
		handle := imm + 1 // same encoding as the interpreter
		return func(e *jitEnv) { e.regs[dst] = handle; next(e) }
	case OpCall:
		return compileCall(p, HelperID(imm), slots[pc], next)
	case OpJa:
		return fns[pc+1+int(in.Off)]
	case OpJeqImm:
		taken := fns[pc+1+int(in.Off)]
		return func(e *jitEnv) {
			if e.regs[dst] == imm {
				taken(e)
			} else {
				next(e)
			}
		}
	case OpJeqReg:
		taken := fns[pc+1+int(in.Off)]
		return func(e *jitEnv) {
			if e.regs[dst] == e.regs[src] {
				taken(e)
			} else {
				next(e)
			}
		}
	case OpJneImm:
		taken := fns[pc+1+int(in.Off)]
		return func(e *jitEnv) {
			if e.regs[dst] != imm {
				taken(e)
			} else {
				next(e)
			}
		}
	case OpJneReg:
		taken := fns[pc+1+int(in.Off)]
		return func(e *jitEnv) {
			if e.regs[dst] != e.regs[src] {
				taken(e)
			} else {
				next(e)
			}
		}
	case OpJgtImm:
		taken := fns[pc+1+int(in.Off)]
		return func(e *jitEnv) {
			if e.regs[dst] > imm {
				taken(e)
			} else {
				next(e)
			}
		}
	case OpJgtReg:
		taken := fns[pc+1+int(in.Off)]
		return func(e *jitEnv) {
			if e.regs[dst] > e.regs[src] {
				taken(e)
			} else {
				next(e)
			}
		}
	case OpJgeImm:
		taken := fns[pc+1+int(in.Off)]
		return func(e *jitEnv) {
			if e.regs[dst] >= imm {
				taken(e)
			} else {
				next(e)
			}
		}
	case OpJgeReg:
		taken := fns[pc+1+int(in.Off)]
		return func(e *jitEnv) {
			if e.regs[dst] >= e.regs[src] {
				taken(e)
			} else {
				next(e)
			}
		}
	case OpJltImm:
		taken := fns[pc+1+int(in.Off)]
		return func(e *jitEnv) {
			if e.regs[dst] < imm {
				taken(e)
			} else {
				next(e)
			}
		}
	case OpJltReg:
		taken := fns[pc+1+int(in.Off)]
		return func(e *jitEnv) {
			if e.regs[dst] < e.regs[src] {
				taken(e)
			} else {
				next(e)
			}
		}
	case OpJleImm:
		taken := fns[pc+1+int(in.Off)]
		return func(e *jitEnv) {
			if e.regs[dst] <= imm {
				taken(e)
			} else {
				next(e)
			}
		}
	case OpJleReg:
		taken := fns[pc+1+int(in.Off)]
		return func(e *jitEnv) {
			if e.regs[dst] <= e.regs[src] {
				taken(e)
			} else {
				next(e)
			}
		}
	case OpExit:
		return func(e *jitEnv) {} // R0 already in place
	default:
		return func(e *jitEnv) { e.err = ErrUnknownOpcode }
	}
}

// clobberCall applies the helper call's register contract: R1-R5 poisoned,
// R0 set. Mirrors vm.go's call() epilogue exactly.
func clobberCall(e *jitEnv, r0 uint64) {
	for r := R1; r <= R5; r++ {
		e.regs[r] = clobberPattern
	}
	e.regs[R0] = r0
}

// compileCall builds the closure for one helper call. When the dataflow pass
// pinned the map argument to a single slot (slot > 0, stored as slot+1), the
// closure captures the concrete map and skips handle decoding entirely;
// otherwise it falls back to the interpreter's call() on the env's state.
func compileCall(p *Program, h HelperID, slot int, next jitFn) jitFn {
	switch h {
	case HelperGetHash:
		return func(e *jitEnv) {
			clobberCall(e, uint64(e.ctx.Hash))
			next(e)
		}
	case HelperGetLocalityHash:
		return func(e *jitEnv) {
			clobberCall(e, uint64(e.ctx.LocalityHash))
			next(e)
		}
	case HelperReciprocalScale:
		return func(e *jitEnv) {
			r0 := (e.regs[R1] & 0xffffffff) * (e.regs[R2] & 0xffffffff) >> 32
			clobberCall(e, r0)
			next(e)
		}
	case HelperMapLookupElem:
		if slot > 0 {
			if am, ok := p.maps[slot-1].(*ArrayMap); ok {
				return func(e *jitEnv) {
					v, ok := am.Lookup(uint32(e.regs[R2]))
					if !ok {
						e.err = ErrMapMiss
						return
					}
					clobberCall(e, v)
					next(e)
				}
			}
		}
	case HelperSkSelectReuseport:
		if slot > 0 {
			if sa, ok := p.maps[slot-1].(*SockArray); ok {
				return func(e *jitEnv) {
					idx := uint32(e.regs[R2])
					ref := sa.Get(idx)
					if ref == nil {
						clobberCall(e, 1)
					} else {
						e.ctx.Selected = ref
						e.ctx.SelectedIndex = int(idx)
						clobberCall(e, 0)
					}
					next(e)
				}
			}
		}
	}
	// Generic fallback: unknown helper id, or a map argument the dataflow
	// pass could not pin. Reuses the interpreter's helper dispatch so the
	// two paths cannot drift.
	return func(e *jitEnv) {
		if err := p.call(h, &e.regs, &e.ctx); err != nil {
			e.err = err
			return
		}
		next(e)
	}
}

// resolveMapSlots runs a forward dataflow pass mirroring the verifier's,
// tracking which OpLdMap slot each register holds as a concrete value
// (slot+1; 0 = unknown/scalar). Where all paths into a helper call agree on
// the map argument's slot, the call can be specialized. The result maps
// call pc → slot+1.
func resolveMapSlots(p *Program) map[int]int {
	n := len(p.insns)
	type state struct {
		slot    [NumRegs]int32 // 0 unknown, else OpLdMap slot+1
		reached bool
	}
	merge := func(dst *state, src state) {
		if !dst.reached {
			*dst = src
			return
		}
		for r := 0; r < NumRegs; r++ {
			if dst.slot[r] != src.slot[r] {
				dst.slot[r] = 0
			}
		}
	}
	states := make([]state, n+1)
	states[0].reached = true

	resolved := make(map[int]int)
	for pc := 0; pc < n; pc++ {
		st := states[pc]
		if !st.reached {
			continue
		}
		in := p.insns[pc]
		switch in.Op {
		case OpLdMap:
			st.slot[in.Dst] = int32(in.Imm) + 1
		case OpMovReg:
			st.slot[in.Dst] = st.slot[in.Src]
		case OpMovImm, OpAddImm, OpSubImm, OpMulImm, OpAndImm, OpOrImm,
			OpXorImm, OpLshImm, OpRshImm, OpNeg,
			OpAddReg, OpSubReg, OpMulReg, OpAndReg, OpOrReg, OpXorReg,
			OpLshReg, OpRshReg:
			st.slot[in.Dst] = 0
		case OpCall:
			spec := helperSpecs[HelperID(in.Imm)]
			if spec.mapArg != 0 {
				resolved[pc] = int(st.slot[Reg(spec.mapArg)])
			}
			for r := R1; r <= R5; r++ {
				st.slot[r] = 0
			}
			st.slot[R0] = 0
		case OpJa:
			merge(&states[pc+1+int(in.Off)], st)
			continue
		case OpExit:
			continue
		default:
			if in.isJump() {
				merge(&states[pc+1+int(in.Off)], st)
			}
		}
		if pc+1 <= n {
			merge(&states[pc+1], st)
		}
	}
	return resolved
}

// --- Idiom fusion -----------------------------------------------------------

// popCountLen is the length of the SWAR popcount sequence core's dispatch
// builder emits (emitPopCount): three fold rounds plus the multiply-shift
// horizontal sum.
const popCountLen = 15

// popCountShape is the emitPopCount(dst, tmp) expansion: three SWAR fold
// rounds plus the multiply-shift horizontal sum.
func popCountShape(dst, tmp Reg) []Insn {
	return []Insn{
		{Op: OpMovReg, Dst: tmp, Src: dst},
		{Op: OpRshImm, Dst: tmp, Imm: 1},
		{Op: OpAndImm, Dst: tmp, Imm: m1},
		{Op: OpSubReg, Dst: dst, Src: tmp},
		{Op: OpMovReg, Dst: tmp, Src: dst},
		{Op: OpRshImm, Dst: tmp, Imm: 2},
		{Op: OpAndImm, Dst: tmp, Imm: m2},
		{Op: OpAndImm, Dst: dst, Imm: m2},
		{Op: OpAddReg, Dst: dst, Src: tmp},
		{Op: OpMovReg, Dst: tmp, Src: dst},
		{Op: OpRshImm, Dst: tmp, Imm: 4},
		{Op: OpAddReg, Dst: dst, Src: tmp},
		{Op: OpAndImm, Dst: dst, Imm: m4},
		{Op: OpMulImm, Dst: dst, Imm: h1},
		{Op: OpRshImm, Dst: dst, Imm: 56},
	}
}

// matchPopCount reports whether insns[pc:pc+popCountLen] is exactly the
// emitPopCount(dst, tmp) shape, returning the two registers.
func matchPopCount(insns []Insn, pc int) (dst, tmp Reg, ok bool) {
	if pc+popCountLen > len(insns) {
		return 0, 0, false
	}
	w := insns[pc : pc+popCountLen]
	dst, tmp = w[0].Src, w[0].Dst
	if dst == tmp {
		return 0, 0, false
	}
	for i, want := range popCountShape(dst, tmp) {
		if w[i] != want {
			return 0, 0, false
		}
	}
	return dst, tmp, true
}

// SWAR constants, shared with core's emitPopCount (which emits them as
// immediates — the matcher compares against the same values).
const (
	m1 = 0x5555555555555555
	m2 = 0x3333333333333333
	m4 = 0x0f0f0f0f0f0f0f0f
	h1 = 0x0101010101010101
)

// matchWindowExtract reports whether insns[pc:pc+3] is the rank-select walk's
// window extraction — t = (v >> pos) & mask — returning the registers and
// mask. Requires pos ≠ t: the fused form reads pos after t would have been
// overwritten.
func matchWindowExtract(insns []Insn, pc int) (t, v, pos Reg, mask uint64, ok bool) {
	if pc+3 > len(insns) {
		return 0, 0, 0, 0, false
	}
	i0, i1, i2 := insns[pc], insns[pc+1], insns[pc+2]
	if i0.Op != OpMovReg || i1.Op != OpRshReg || i2.Op != OpAndImm {
		return 0, 0, 0, 0, false
	}
	t, v, pos = i0.Dst, i0.Src, i1.Src
	if i1.Dst != t || i2.Dst != t || pos == t {
		return 0, 0, 0, 0, false
	}
	return t, v, pos, i2.Imm, true
}

// findNthWidths are the rank-select walk's halving windows; the final 1-bit
// probe is emitted without a popcount.
var findNthWidths = [...]uint64{32, 16, 8, 4, 2}

// findNthLen is the length of the full rank-select walk core's dispatch
// builder emits (emitFindNth): pos init, five extract+popcount+branch rounds,
// and the final single-bit probe.
const findNthLen = 1 + len(findNthWidths)*(3+popCountLen+3) + 5

// findNthShape builds the exact instruction sequence emitFindNth(v, rank,
// pos, t, tmp) produces, for structural matching. Branch offsets are fixed by
// construction: each round's JleReg skips its own AddImm/SubReg pair, the
// final probe's skips one AddImm.
func findNthShape(v, rank, pos, t, tmp Reg) []Insn {
	shape := make([]Insn, 0, findNthLen)
	shape = append(shape, Insn{Op: OpMovImm, Dst: pos, Imm: 0})
	for _, w := range findNthWidths {
		shape = append(shape,
			Insn{Op: OpMovReg, Dst: t, Src: v},
			Insn{Op: OpRshReg, Dst: t, Src: pos},
			Insn{Op: OpAndImm, Dst: t, Imm: 1<<w - 1})
		shape = append(shape, popCountShape(t, tmp)...)
		shape = append(shape,
			Insn{Op: OpJleReg, Dst: rank, Src: t, Off: 2},
			Insn{Op: OpAddImm, Dst: pos, Imm: w},
			Insn{Op: OpSubReg, Dst: rank, Src: t})
	}
	shape = append(shape,
		Insn{Op: OpMovReg, Dst: t, Src: v},
		Insn{Op: OpRshReg, Dst: t, Src: pos},
		Insn{Op: OpAndImm, Dst: t, Imm: 1},
		Insn{Op: OpJleReg, Dst: rank, Src: t, Off: 1},
		Insn{Op: OpAddImm, Dst: pos, Imm: 1})
	return shape
}

// matchFindNth reports whether insns[pc:pc+findNthLen] is exactly an
// emitFindNth expansion, returning its five registers. The registers must be
// pairwise distinct (they are in every emitted program; aliased variants
// would change semantics and are left to the per-instruction compiler).
func matchFindNth(insns []Insn, pc int) (v, rank, pos, t, tmp Reg, ok bool) {
	if pc+findNthLen > len(insns) {
		return 0, 0, 0, 0, 0, false
	}
	// Registers, read off the first round: MovImm pos / MovReg t,v /
	// RshReg t,pos / ... / popcount(t,tmp) / JleReg rank,t.
	pos = insns[pc].Dst
	t, v = insns[pc+1].Dst, insns[pc+1].Src
	tmp = insns[pc+4].Dst
	rank = insns[pc+4+popCountLen].Dst
	regs := [5]Reg{v, rank, pos, t, tmp}
	for i := 0; i < len(regs); i++ {
		for j := i + 1; j < len(regs); j++ {
			if regs[i] == regs[j] {
				return 0, 0, 0, 0, 0, false
			}
		}
	}
	for i, want := range findNthShape(v, rank, pos, t, tmp) {
		if insns[pc+i] != want {
			return 0, 0, 0, 0, 0, false
		}
	}
	return v, rank, pos, t, tmp, true
}

// fuseWidth returns the instruction count a fusion starting at pc would
// consume, or 0 if nothing fuses there. A window only fuses when it is
// single-entry: jumps may land inside it only from inside it (the entry pc
// itself may be a target from anywhere).
func fuseWidth(insns []Insn, pc int, targets map[int][]int) int {
	windowClear := func(width int) bool {
		for i := pc + 1; i < pc+width; i++ {
			for _, src := range targets[i] {
				if src < pc || src >= pc+width {
					return false
				}
			}
		}
		return true
	}
	if _, _, _, _, _, ok := matchFindNth(insns, pc); ok && windowClear(findNthLen) {
		return findNthLen
	}
	if _, _, ok := matchPopCount(insns, pc); ok && windowClear(popCountLen) {
		return popCountLen
	}
	if _, _, _, _, ok := matchWindowExtract(insns, pc); ok && windowClear(3) {
		return 3
	}
	return 0
}

// fuse builds a fused closure for the window starting at pc, or nil.
func fuse(insns []Insn, pc int, targets map[int][]int, fns []jitFn) jitFn {
	switch fuseWidth(insns, pc, targets) {
	case findNthLen:
		v, rank, pos, t, tmp, _ := matchFindNth(insns, pc)
		next := fns[pc+findNthLen]
		return func(e *jitEnv) {
			vv := e.regs[v]
			rk := e.regs[rank]
			var p, tm uint64
			for _, w := range findNthWidths {
				win := (vv >> (p & 63)) & (1<<w - 1)
				// Register fidelity for tmp, as in the popcount fusion.
				d1 := win - ((win >> 1) & m1)
				d2 := (d1 & m2) + ((d1 >> 2) & m2)
				tm = d2 >> 4
				c := uint64(bits.OnesCount64(win))
				if rk > c { // JleReg not taken: descend into the high half
					p += w
					rk -= c
				}
			}
			fin := (vv >> (p & 63)) & 1
			if rk > fin {
				p++
			}
			e.regs[pos] = p
			e.regs[rank] = rk
			e.regs[t] = fin
			e.regs[tmp] = tm
			next(e)
		}
	case popCountLen:
		dst, tmp, _ := matchPopCount(insns, pc)
		next := fns[pc+popCountLen]
		return func(e *jitEnv) {
			v := e.regs[dst]
			// Register fidelity: tmp must hold the exact value the SWAR
			// sequence leaves there (the second fold's partial sums, shifted
			// by the third round's extract) in case a later insn reads it.
			d1 := v - ((v >> 1) & m1)
			d2 := (d1 & m2) + ((d1 >> 2) & m2)
			e.regs[tmp] = d2 >> 4
			e.regs[dst] = uint64(bits.OnesCount64(v))
			next(e)
		}
	case 3:
		t, v, pos, mask, _ := matchWindowExtract(insns, pc)
		next := fns[pc+3]
		return func(e *jitEnv) {
			e.regs[t] = (e.regs[v] >> (e.regs[pos] & 63)) & mask
			next(e)
		}
	}
	return nil
}
