package ebpf

import "fmt"

// Verifier limits, mirroring the real runtime's spirit: programs are small,
// loop-free, and cannot read uninitialized state.
const (
	// MaxInsns bounds program length (the classic BPF limit).
	MaxInsns = 4096
)

// VerifierError describes why a program was rejected.
type VerifierError struct {
	PC     int
	Reason string
}

func (e *VerifierError) Error() string {
	return fmt.Sprintf("ebpf: verifier rejected program at insn %d: %s", e.PC, e.Reason)
}

func reject(pc int, format string, args ...any) error {
	return &VerifierError{PC: pc, Reason: fmt.Sprintf(format, args...)}
}

// Verify statically checks a program:
//
//   - length within MaxInsns and nonzero;
//   - every jump strictly forward and in bounds (⇒ no loops, guaranteed
//     termination — the property that lets the kernel run untrusted code on
//     the connection dispatch path);
//   - no fallthrough off the end (last reachable path must OpExit);
//   - helper IDs known, helper map arguments referencing registered maps of
//     the right type;
//   - no register read before initialization on any path. R1 holds the
//     context at entry (as in real reuseport programs). Helper calls read
//     their declared argument registers, then clobber R1–R5 and define R0.
func Verify(p *Program) error {
	n := len(p.insns)
	if n == 0 {
		return reject(0, "empty program")
	}
	if n > MaxInsns {
		return reject(0, "program too long: %d > %d", n, MaxInsns)
	}

	// Structural checks first.
	for pc, in := range p.insns {
		if in.isJump() {
			if in.Op == OpJa && in.Off <= 0 {
				return reject(pc, "non-forward ja offset %d", in.Off)
			}
			if in.Off < 0 {
				return reject(pc, "backward jump offset %d", in.Off)
			}
			if tgt := pc + 1 + int(in.Off); tgt > n {
				return reject(pc, "jump target %d out of bounds", tgt)
			} else if tgt == n {
				return reject(pc, "jump falls off program end")
			}
		}
		if in.Op == OpCall {
			if _, ok := helperSpecs[HelperID(in.Imm)]; !ok {
				return reject(pc, "unknown helper %d", in.Imm)
			}
		}
		if in.Op == OpLdMap {
			if int(in.Imm) >= len(p.maps) {
				return reject(pc, "map slot %d not registered", in.Imm)
			}
		}
		if in.Dst >= NumRegs || in.Src >= NumRegs {
			return reject(pc, "register out of range")
		}
	}
	if p.insns[n-1].Op != OpExit && !(p.insns[n-1].isJump()) {
		// The last instruction must not fall through. A jump as the last
		// insn was already rejected above (target would be ≥ n).
		return reject(n-1, "program may fall off the end (last insn is %s)", p.insns[n-1])
	}

	// Dataflow: forward pass over the DAG (jumps are forward-only, so a
	// single in-order pass visiting each pc once, meeting states from all
	// predecessors, is a sound fixpoint).
	type state struct {
		init    uint16        // bitmask of initialized registers
		mapType [NumRegs]int8 // -1 unknown/scalar, else MapType+1
		reached bool
	}
	merge := func(dst *state, src state) {
		if !dst.reached {
			*dst = src
			return
		}
		dst.init &= src.init // initialized only if initialized on all paths
		for r := 0; r < NumRegs; r++ {
			if dst.mapType[r] != src.mapType[r] {
				dst.mapType[r] = 0 // conflicting origin -> scalar
			}
		}
	}
	states := make([]state, n+1)
	entry := state{reached: true}
	entry.init = 1 << R1 // context pointer
	states[0] = entry

	fellOff := false
	for pc := 0; pc < n; pc++ {
		st := states[pc]
		if !st.reached {
			continue
		}
		in := p.insns[pc]

		readReg := func(r Reg) error {
			if st.init&(1<<r) == 0 {
				return reject(pc, "read of uninitialized register %s", r)
			}
			return nil
		}
		writeReg := func(r Reg, mt int8) {
			st.init |= 1 << r
			st.mapType[r] = mt
		}

		switch in.Op {
		case OpMovImm:
			writeReg(in.Dst, 0)
		case OpMovReg:
			if err := readReg(in.Src); err != nil {
				return err
			}
			writeReg(in.Dst, st.mapType[in.Src])
		case OpAddImm, OpSubImm, OpMulImm, OpAndImm, OpOrImm, OpXorImm, OpLshImm, OpRshImm, OpNeg:
			if err := readReg(in.Dst); err != nil {
				return err
			}
			writeReg(in.Dst, 0)
		case OpAddReg, OpSubReg, OpMulReg, OpAndReg, OpOrReg, OpXorReg, OpLshReg, OpRshReg:
			if err := readReg(in.Dst); err != nil {
				return err
			}
			if err := readReg(in.Src); err != nil {
				return err
			}
			writeReg(in.Dst, 0)
		case OpLdMap:
			writeReg(in.Dst, int8(p.maps[in.Imm].Type())+1)
		case OpCall:
			spec := helperSpecs[HelperID(in.Imm)]
			for i := 1; i <= spec.args; i++ {
				if err := readReg(Reg(i)); err != nil {
					return err
				}
			}
			if spec.mapArg != 0 {
				r := Reg(spec.mapArg)
				mt := st.mapType[r]
				if mt == 0 {
					return reject(pc, "helper %s arg%d (%s) is not a map handle",
						HelperID(in.Imm), spec.mapArg, r)
				}
				if MapType(mt-1) != spec.mapType {
					return reject(pc, "helper %s arg%d needs %s, got %s",
						HelperID(in.Imm), spec.mapArg, spec.mapType, MapType(mt-1))
				}
			}
			// Calls clobber caller-saved registers and define R0.
			for r := R1; r <= R5; r++ {
				st.init &^= 1 << r
				st.mapType[r] = 0
			}
			writeReg(R0, 0)
		case OpJa:
			merge(&states[pc+1+int(in.Off)], st)
			continue // no fallthrough
		case OpJeqImm, OpJneImm, OpJgtImm, OpJgeImm, OpJltImm, OpJleImm:
			if err := readReg(in.Dst); err != nil {
				return err
			}
			merge(&states[pc+1+int(in.Off)], st)
		case OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg, OpJleReg:
			if err := readReg(in.Dst); err != nil {
				return err
			}
			if err := readReg(in.Src); err != nil {
				return err
			}
			merge(&states[pc+1+int(in.Off)], st)
		case OpExit:
			if err := readReg(R0); err != nil {
				return reject(pc, "exit with uninitialized R0")
			}
			continue // no fallthrough
		default:
			return reject(pc, "unknown opcode %d", in.Op)
		}

		if pc+1 == n {
			fellOff = true
			break
		}
		merge(&states[pc+1], st)
	}
	if fellOff {
		return reject(n-1, "execution can fall off program end")
	}
	return nil
}
