package bench

import (
	"testing"

	"hermes/internal/l7lb"
)

// The fault experiment's determinism guarantee: the same seed renders the
// same bytes at any pool width, and different seeds still render (no
// schedule/timing assumption breaks when the fault instants move).
func TestFaultsParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run fault sweep is expensive")
	}
	e := Experiments()["faults"]
	for _, seed := range []int64{1, 7} {
		o1 := parallelTestOptions(1)
		o1.Seed = seed
		o8 := parallelTestOptions(8)
		o8.Seed = seed
		seq := RunExperiment(e, o1)
		par := RunExperiment(e, o8)
		if seq != par {
			t.Errorf("seed %d: output differs between -parallel 1 and -parallel 8\n--- seq ---\n%s\n--- par ---\n%s",
				seed, seq, par)
		}
	}
}

// §7's blast-radius claim under the identical hang schedule: exclusive mode
// stalls its victim's connections for the whole hang, while Hermes's
// watchdog detects the stale WST heartbeat and restarts the worker — so the
// exclusive blast radius must be strictly larger.
func TestFaultsExclusiveBlastExceedsHermes(t *testing.T) {
	if testing.Short() {
		t.Skip("fault cells are expensive")
	}
	o := fastOptions()
	hang := faultsScenarios[1]
	if hang.name != "hang" || !hang.watchdog {
		t.Fatalf("scenario layout changed: %+v", hang)
	}
	excl := runFaultsCell(o, hang, l7lb.ModeExclusive)
	herm := runFaultsCell(o, hang, l7lb.ModeHermes)
	if excl.blastMS <= herm.blastMS {
		t.Errorf("exclusive blast %.1f conn-ms not strictly larger than hermes %.1f",
			excl.blastMS, herm.blastMS)
	}
	if herm.detections == 0 || herm.restarts == 0 {
		t.Errorf("hermes watchdog never recovered the hang: detections=%d restarts=%d",
			herm.detections, herm.restarts)
	}
	if excl.detections != 0 || excl.restarts != 0 {
		t.Errorf("exclusive mode has no WST watchdog, yet detections=%d restarts=%d",
			excl.detections, excl.restarts)
	}
}
