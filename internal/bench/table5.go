package bench

import (
	"fmt"
	"time"

	"hermes/internal/core"
	"hermes/internal/ebpf"
	"hermes/internal/shm"
	"hermes/internal/stats"
)

// Overheads holds measured per-operation costs of Hermes's components, in
// nanoseconds. These are wall-clock microbenchmarks of the real (not
// simulated) code paths; Table 5 converts them to CPU% at per-level event
// rates.
type Overheads struct {
	CounterNS        float64 // one event-loop counter sequence (Fig. 9 lines 12/14/18)
	SchedulerNS      float64 // one Algorithm 1 pass incl. WST snapshot
	SyscallNS        float64 // one kernel map sync (atomic store + nominal syscall)
	DispatchVMNS     float64 // one Algorithm 2 run on the simulated eBPF VM
	DispatchNativeNS float64 // one native (JIT stand-in) dispatch
}

// NominalSyscallNS approximates the bpf(2) syscall + context-switch cost the
// paper's "System call" column accounts for; our map update is an atomic
// store in-process, so the syscall itself is a documented substitution.
const NominalSyscallNS = 500

// MeasureOverheads times the real component code paths.
func MeasureOverheads(iters int) Overheads {
	if iters <= 0 {
		iters = 200_000
	}
	var o Overheads

	// Counter: the per-event instrumentation.
	wst := shm.NewWST(32)
	wr := wst.Writer(7)
	start := time.Now()
	for i := 0; i < iters; i++ {
		wr.SetLoopEnter(int64(i))
		wr.AddBusy(1)
		wr.AddBusy(-1)
		wr.AddConn(1)
		wr.AddConn(-1)
	}
	o.CounterNS = float64(time.Since(start).Nanoseconds()) / float64(iters)

	// Scheduler: snapshot + cascade filter over 32 workers.
	cfg := core.DefaultConfig()
	buf := make([]shm.Metrics, 0, 32)
	for i := 0; i < 32; i++ {
		w := wst.Writer(i)
		w.SetLoopEnter(int64(time.Second))
		w.AddBusy(int64(i % 5))
		w.AddConn(int64(i * 13 % 211))
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		buf = wst.Snapshot(buf[:0])
		core.Schedule(int64(time.Second), buf, cfg, core.OrderTimeConnEvent)
	}
	o.SchedulerNS = float64(time.Since(start).Nanoseconds()) / float64(iters)

	// Kernel sync: eBPF map update.
	sel := ebpf.NewArrayMap(1)
	start = time.Now()
	for i := 0; i < iters; i++ {
		_ = sel.Update(0, uint64(i))
	}
	o.SyscallNS = float64(time.Since(start).Nanoseconds())/float64(iters) + NominalSyscallNS

	// Dispatcher: Algorithm 2, bytecode and native.
	sa := ebpf.NewSockArray(32)
	for i := 0; i < 32; i++ {
		_ = sa.Put(uint32(i), i)
	}
	_ = sel.Update(0, 0xaaaa5555)
	prog, err := core.BuildDispatchProgram(sel, sa, 2)
	if err != nil {
		panic(err)
	}
	ctx := &ebpf.ReuseportCtx{}
	start = time.Now()
	for i := 0; i < iters; i++ {
		ctx.Hash = uint32(i)
		if _, err := prog.Run(ctx); err != nil {
			panic(err)
		}
	}
	o.DispatchVMNS = float64(time.Since(start).Nanoseconds()) / float64(iters)

	bitmap, _ := sel.Lookup(0)
	start = time.Now()
	sink := 0
	for i := 0; i < iters; i++ {
		w, _ := core.NativeSelect(bitmap, uint32(i), 2)
		sink += w
	}
	_ = sink
	o.DispatchNativeNS = float64(time.Since(start).Nanoseconds()) / float64(iters)
	return o
}

// table5Level describes one load level's operation rates (per second,
// whole-device), matching the simulated levels of Table 3 and the
// scheduler-frequency measurements of Fig. 14.
type table5Level struct {
	name     string
	eventsPS float64 // epoll events processed
	schedPS  float64 // schedule_and_sync calls (≙ map syncs)
	connsPS  float64 // new connections dispatched
}

func init() {
	// Wall-clock microbenchmarks: concurrency would skew them, so table5
	// stays a one-cell sequential experiment.
	Register(Seq("table5",
		"CPU overhead of Hermes components (measured microbenchmarks)", Table5))
}

// Table5 reproduces Table 5: CPU utilization of Hermes's components by load
// level, computed as rate × ns-per-op over the device's total CPU capacity.
func Table5(opts Options) string {
	o := MeasureOverheads(0)
	capacityNS := float64(opts.Workers) * 1e9
	levels := []table5Level{
		{"Light", 60_000, 6_000, 40_000},
		{"Medium", 180_000, 14_000, 80_000},
		{"Heavy", 450_000, 22_000, 120_000},
	}
	tb := stats.NewTable("Table 5 — overhead (CPU utilization) of Hermes components",
		"load", "Counter", "Scheduler", "System call", "Dispatcher (VM)", "Dispatcher (native)")
	for _, lv := range levels {
		pct := func(rate, ns float64) string {
			return fmt.Sprintf("%.3f%%", 100*rate*ns/capacityNS)
		}
		tb.AddRow(lv.name,
			pct(lv.eventsPS, o.CounterNS),
			pct(lv.schedPS, o.SchedulerNS),
			pct(lv.schedPS, o.SyscallNS),
			pct(lv.connsPS, o.DispatchVMNS),
			pct(lv.connsPS, o.DispatchNativeNS))
	}
	return tb.Render() + fmt.Sprintf(
		"measured ns/op: counter=%.0f scheduler=%.0f syscall=%.0f dispatchVM=%.0f dispatchNative=%.0f\n"+
			"paper heavy: counter 0.897%%, scheduler 0.531%%, syscall 0.965%%, dispatcher 0.043%%\n",
		o.CounterNS, o.SchedulerNS, o.SyscallNS, o.DispatchVMNS, o.DispatchNativeNS)
}
