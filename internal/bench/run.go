// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§2.3, §6), all driving the same simulated LB
// stack and printing paper-style tables/series. Every experiment takes an
// explicit seed and runs on virtual time, so results are reproducible
// bit-for-bit.
//
// Absolute milliseconds and kRPS depend on this repo's cost model, not the
// authors' testbed; the shapes — which mode wins each case, where the
// crossovers sit, the relative stddevs — are the reproduction target (see
// EXPERIMENTS.md).
package bench

import (
	"time"

	"hermes/internal/l7lb"
	"hermes/internal/sim"
	"hermes/internal/stats"
	"hermes/internal/telemetry"
	"hermes/internal/tracing"
	"hermes/internal/workload"
)

// RunConfig describes one measurement run.
type RunConfig struct {
	// Mode is the dispatch mechanism under test.
	Mode l7lb.Mode
	// Workers is the LB core count.
	Workers int
	// Ports are the tenant ports (defaulted from specs if nil).
	Ports []uint16
	// Seed drives all randomness.
	Seed int64
	// Window is the traffic generation window.
	Window time.Duration
	// Drain is extra virtual time after the window for in-flight requests.
	Drain time.Duration
	// Specs are the traffic models replayed concurrently.
	Specs []workload.Spec
	// Detailed enables per-worker CDF collection.
	Detailed bool
	// SampleEvery enables periodic balance sampling (0 = off).
	SampleEvery time.Duration
	// Telemetry, when set, is handed to the LB (l7lb.Config.Telemetry):
	// the cross-layer metric catalog records into it. Nil disables
	// recording.
	Telemetry telemetry.Sink
	// Tracer, when set, is handed to the LB (l7lb.Config.Tracer): the
	// per-connection flight recorder records into it. Nil disables
	// recording. The caller flushes/exports after the run.
	Tracer *tracing.Tracer
	// Batch is the kernel arrival/delivery coalescing width handed to the
	// LB (l7lb.Config.BatchWidth). ≤1 is the paper-literal path; output is
	// byte-identical at any width.
	Batch int
	// Mutate optionally adjusts the LB config before construction.
	Mutate func(*l7lb.Config)
	// PostBuild optionally adjusts the built LB before traffic starts
	// (e.g. flipping controller ablation switches).
	PostBuild func(*l7lb.LB)
}

// RunResult carries a run's measurements.
type RunResult struct {
	// LB is the device after the run (counters, samples, workers).
	LB *l7lb.LB
	// Gens are the traffic generators (arrival accounting).
	Gens []*workload.Generator

	// RequestsSent / Completed are totals over the whole run.
	RequestsSent uint64
	Completed    uint64
	// CompletedInWindow is completions before the drain began.
	CompletedInWindow uint64
	// AvgMS / P99MS summarize end-to-end latency.
	AvgMS float64
	P99MS float64
	// ThroughputKRPS is CompletedInWindow over the window.
	ThroughputKRPS float64
	// GoodputKRPS discounts completions whose end-to-end latency exceeded
	// ClientTimeout (default 1s) — the 499-timeout accounting production
	// throughput numbers reflect. Approximated as ThroughputKRPS scaled by
	// the in-budget completion fraction.
	GoodputKRPS float64
	// WorkerUtil is per-worker busy fraction over the window+drain.
	WorkerUtil []float64
	// CPUStddev / ConnStddev average the per-sample cross-worker stddevs
	// of CPU utilization (fraction) and connection counts (Fig. 13);
	// zero unless SampleEvery was set.
	CPUStddev  float64
	ConnStddev float64
}

// Run executes one measurement.
func Run(rc RunConfig) (*RunResult, error) {
	eng := sim.NewEngine(rc.Seed)
	ports := rc.Ports
	if ports == nil && len(rc.Specs) > 0 {
		ports = rc.Specs[0].Ports
	}
	cfg := l7lb.DefaultConfig(rc.Mode)
	cfg.Workers = rc.Workers
	cfg.Ports = ports
	cfg.DetailedStats = rc.Detailed
	cfg.Telemetry = rc.Telemetry
	cfg.Tracer = rc.Tracer
	cfg.BatchWidth = rc.Batch
	if rc.Mutate != nil {
		rc.Mutate(&cfg)
	}
	lb, err := l7lb.New(eng, cfg)
	if err != nil {
		return nil, err
	}
	if rc.PostBuild != nil {
		rc.PostBuild(lb)
	}
	lb.Start()

	res := &RunResult{LB: lb}
	for _, spec := range rc.Specs {
		g, err := workload.NewGenerator(lb, spec)
		if err != nil {
			return nil, err
		}
		g.Run(rc.Window)
		res.Gens = append(res.Gens, g)
	}

	var cpuSD, connSD stats.Sample
	if rc.SampleEvery > 0 {
		// The per-tick scratch is hoisted out of the closure: a 1 s window
		// sampled every few ms would otherwise allocate two slices per tick.
		prevBusy := make([]int64, len(lb.Workers))
		utils := make([]float64, len(lb.Workers))
		conns := make([]float64, len(lb.Workers))
		var sample func()
		sample = func() {
			for i, w := range lb.Workers {
				b := w.BusyNS(eng.Now())
				utils[i] = float64(b-prevBusy[i]) / float64(rc.SampleEvery)
				prevBusy[i] = b
				conns[i] = float64(w.OpenConns())
			}
			_, sd := stats.MeanStddev(utils)
			cpuSD.Add(sd)
			_, sd = stats.MeanStddev(conns)
			connSD.Add(sd)
			if eng.Now() < int64(rc.Window) {
				eng.After(rc.SampleEvery, sample)
			}
		}
		eng.After(rc.SampleEvery, sample)
	}

	eng.RunUntil(int64(rc.Window))
	res.CompletedInWindow = lb.Completed
	eng.RunUntil(int64(rc.Window + rc.Drain))

	for _, g := range res.Gens {
		res.RequestsSent += g.RequestsSent
	}
	res.Completed = lb.Completed
	res.AvgMS = lb.Latency.Mean()
	res.P99MS = lb.Latency.Percentile(99)
	res.ThroughputKRPS = float64(res.CompletedInWindow) / rc.Window.Seconds() / 1000
	if res.Completed > 0 {
		timeoutMS := 1000.0 // 1s client budget
		late := float64(lb.Latency.CountAbove(timeoutMS))
		res.GoodputKRPS = res.ThroughputKRPS * (1 - late/float64(res.Completed))
	}
	elapsed := float64(rc.Window + rc.Drain)
	res.WorkerUtil = make([]float64, 0, len(lb.Workers))
	for _, w := range lb.Workers {
		res.WorkerUtil = append(res.WorkerUtil, float64(w.BusyNS(eng.Now()))/elapsed)
	}
	res.CPUStddev = cpuSD.Mean()
	res.ConnStddev = connSD.Mean()
	return res, nil
}

// newSimEngine is a local alias to keep experiment files terse.
func newSimEngine(seed int64) *sim.Engine { return sim.NewEngine(seed) }

// ports returns n consecutive tenant ports starting at 8080.
func tenantPorts(n int) []uint16 {
	out := make([]uint16, n)
	for i := range out {
		out[i] = uint16(8080 + i)
	}
	return out
}
