package bench

import (
	"fmt"
	"math/rand"

	"hermes/internal/l7lb"
	"hermes/internal/stats"
	"hermes/internal/workload"
)

func init() {
	Register(Seq("table1",
		"request size and processing-time distributions per region",
		func(o Options) string { return RenderTable1(Table1(o)) }))
	Register(table2Experiment{})
	Register(Seq("table4",
		"distribution of the 4 cases across regions", Table4))
}

// Table1Row is one region's request-size and processing-time percentiles.
type Table1Row struct {
	Region  string
	SizeP50 float64
	SizeP90 float64
	SizeP99 float64
	ProcP50 float64 // ms
	ProcP90 float64
	ProcP99 float64
}

// Table1 reproduces Table 1: request size and processing-time distributions
// across the four regional mixes. Sampling is per request from the mixes
// (these are traffic *inputs*; the paper measures them at the LB).
func Table1(opts Options) []Table1Row {
	ports := tenantPorts(opts.Tenants)
	rng := rand.New(rand.NewSource(opts.Seed))
	var rows []Table1Row
	for _, region := range workload.Regions() {
		var size, proc stats.Sample
		for i := 0; i < 120_000; i++ {
			s, p := region.SampleRequest(rng, ports)
			size.Add(s)
			proc.Add(p / 1e6) // ns → ms
		}
		rows = append(rows, Table1Row{
			Region:  region.Name,
			SizeP50: size.Percentile(50),
			SizeP90: size.Percentile(90),
			SizeP99: size.Percentile(99),
			ProcP50: proc.Percentile(50),
			ProcP90: proc.Percentile(90),
			ProcP99: proc.Percentile(99),
		})
	}
	return rows
}

// RenderTable1 formats Table 1.
func RenderTable1(rows []Table1Row) string {
	tb := stats.NewTable("Table 1 — request size and processing time distributions",
		"Region", "size P50 (B)", "size P90", "size P99", "proc P50 (ms)", "proc P90", "proc P99")
	for _, r := range rows {
		tb.AddRow(r.Region,
			fmt.Sprintf("%.0f", r.SizeP50), fmt.Sprintf("%.0f", r.SizeP90), fmt.Sprintf("%.0f", r.SizeP99),
			stats.FormatMS(r.ProcP50), stats.FormatMS(r.ProcP90), stats.FormatMS(r.ProcP99))
	}
	return tb.Render()
}

// Table2Device is one device's CPU balance figures.
type Table2Device struct {
	Name                      string
	MaxUtil, MinUtil, AvgUtil float64
}

// Table2Result carries the extreme devices plus the region average.
type Table2Result struct {
	Worst, Best Table2Device // largest and smallest max-min spread
	RegionAvg   Table2Device
	Devices     int
}

// table2Experiment reproduces Table 2: CPU utilization imbalance within a
// device and across devices of a region running epoll-exclusive. Each
// simulated device carries a different tenant mix and load level
// (heterogeneous multi-tenancy is what spreads the averages); the
// per-device max/min core spread comes from exclusive's concentration.
type table2Experiment struct{}

func (table2Experiment) Name() string { return "table2" }
func (table2Experiment) Desc() string {
	return "CPU imbalance within/across devices under epoll-exclusive"
}

// Cells enumerates one cell per simulated device: private engine, private
// per-device RNG for the load level.
func (table2Experiment) Cells(opts Options) []Cell {
	const devices = 24
	ports := tenantPorts(opts.Tenants)
	cells := make([]Cell, devices)
	for d := 0; d < devices; d++ {
		d := d
		name := fmt.Sprintf("device%02d", d)
		cells[d] = Cell{Name: name, Run: func() any {
			rng := rand.New(rand.NewSource(opts.Seed + int64(d)*977))
			region := workload.Regions()[d%4]
			// Device load level varies widely across a region.
			totalRPS := (4_000 + rng.Float64()*50_000) * opts.RateScale
			specs := region.Specs(ports, totalRPS)
			run, err := Run(RunConfig{
				Batch:     opts.Batch,
				Mode:      l7lb.ModeExclusive,
				Workers:   opts.Workers,
				Ports:     ports,
				Seed:      opts.Seed + int64(d),
				Window:    opts.Window,
				Drain:     opts.Drain / 2,
				Specs:     specs,
				Telemetry: opts.Metrics.Sink(name),
				Tracer:    opts.Spans.Tracer(name),
				Mutate:    func(c *l7lb.Config) { c.RegisteredPorts = opts.RegisteredPorts },
			})
			if err != nil {
				panic(fmt.Sprintf("bench: table2 device %d: %v", d, err))
			}
			dev := Table2Device{Name: name}
			dev.MinUtil = 1
			var sum float64
			for _, u := range run.WorkerUtil {
				if u > dev.MaxUtil {
					dev.MaxUtil = u
				}
				if u < dev.MinUtil {
					dev.MinUtil = u
				}
				sum += u
			}
			dev.AvgUtil = sum / float64(len(run.WorkerUtil))
			return dev
		}}
	}
	return cells
}

func (table2Experiment) Render(opts Options, results []any) string {
	return RenderTable2(table2Assemble(results))
}

func table2Assemble(results []any) Table2Result {
	devs := make([]Table2Device, len(results))
	for i, r := range results {
		devs[i] = r.(Table2Device)
	}
	devices := len(devs)

	res := Table2Result{Devices: devices}
	res.Worst, res.Best = devs[0], devs[0]
	var maxSum, minSum, avgSum float64
	for _, d := range devs {
		if d.MaxUtil-d.MinUtil > res.Worst.MaxUtil-res.Worst.MinUtil {
			res.Worst = d
		}
		if d.MaxUtil-d.MinUtil < res.Best.MaxUtil-res.Best.MinUtil {
			res.Best = d
		}
		maxSum += d.MaxUtil
		minSum += d.MinUtil
		avgSum += d.AvgUtil
	}
	res.RegionAvg = Table2Device{
		Name:    "region-avg",
		MaxUtil: maxSum / float64(devices),
		MinUtil: minSum / float64(devices),
		AvgUtil: avgSum / float64(devices),
	}
	return res
}

// Table2 runs all device cells and returns the assembled result.
func Table2(opts Options) Table2Result {
	e := table2Experiment{}
	return table2Assemble(runCells(opts, e.Cells(opts)))
}

// RenderTable2 formats Table 2.
func RenderTable2(r Table2Result) string {
	tb := stats.NewTable(
		fmt.Sprintf("Table 2 — CPU imbalance under epoll-exclusive (%d devices)", r.Devices),
		"device", "max core util", "min core util", "max-min", "avg util")
	for _, d := range []Table2Device{r.Worst, r.Best, r.RegionAvg} {
		tb.AddRow(d.Name,
			fmt.Sprintf("%.1f%%", d.MaxUtil*100),
			fmt.Sprintf("%.1f%%", d.MinUtil*100),
			fmt.Sprintf("%.1f%%", (d.MaxUtil-d.MinUtil)*100),
			fmt.Sprintf("%.1f%%", d.AvgUtil*100))
	}
	return tb.Render()
}

// Table4 reproduces Table 4: the distribution of the four cases across
// regions, plus the average row. The shares are the regional mix definition
// (a measured input in the paper).
func Table4(Options) string {
	tb := stats.NewTable("Table 4 — distribution of the 4 cases across regions",
		"", "Region1", "Region2", "Region3", "Region4", "Avg")
	regions := workload.Regions()
	for ci := 0; ci < 4; ci++ {
		row := []any{fmt.Sprintf("Case%d", ci+1)}
		sum := 0.0
		for _, r := range regions {
			share := r.CaseShare[ci] * (1 - r.WebSocketShare)
			row = append(row, fmt.Sprintf("%.2f%%", share*100))
			sum += share
		}
		row = append(row, fmt.Sprintf("%.4f%%", sum/4*100))
		tb.AddRow(row...)
	}
	return tb.Render()
}
