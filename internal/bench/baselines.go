package bench

import (
	"fmt"

	"hermes/internal/l7lb"
	"hermes/internal/stats"
	"hermes/internal/workload"
)

// baselinesExperiment runs every dispatch mode this repo implements — the
// paper's three production alternatives plus the historical and rejected
// designs (§2.2: thundering herd, nginx accept mutex, userspace
// dispatcher; §8: io_uring's FIFO; the unmerged epoll-rr) — on the same
// case-2-style workload at medium load, one cell per mode.
type baselinesExperiment struct{}

func init() { Register(baselinesExperiment{}) }

func (baselinesExperiment) Name() string { return "baselines" }
func (baselinesExperiment) Desc() string {
	return "every dispatch mode (incl. herd, accept-mutex, dispatcher, io_uring) on one workload"
}

func (baselinesExperiment) Cells(opts Options) []Cell {
	ports := tenantPorts(opts.Tenants)
	spec := workload.Case2(ports).Scale(opts.RateScale * 1.5)
	cells := make([]Cell, len(AllModes))
	for i, mode := range AllModes {
		mode := mode
		cells[i] = Cell{Name: mode.String(), Run: func() any {
			run, err := Run(RunConfig{
				Batch:     opts.Batch,
				Mode:      mode,
				Workers:   opts.Workers,
				Ports:     ports,
				Seed:      opts.Seed,
				Window:    opts.Window,
				Drain:     opts.Drain,
				Specs:     []workload.Spec{spec},
				Telemetry: opts.Metrics.Sink(mode.String()),
				Tracer:    opts.Spans.Tracer(mode.String()),
				Mutate:    func(c *l7lb.Config) { c.RegisteredPorts = opts.RegisteredPorts },
			})
			if err != nil {
				panic(fmt.Sprintf("bench: baselines %v: %v", mode, err))
			}
			return run
		}}
	}
	return cells
}

func (baselinesExperiment) Render(opts Options, results []any) string {
	tb := stats.NewTable("All dispatch modes — case2-style workload (medium)",
		"mode", "avg (ms)", "P99 (ms)", "thr (kRPS)", "goodput (kRPS)", "notes")
	notes := map[l7lb.Mode]string{
		l7lb.ModeHerd:         "pre-4.5 epoll: spurious wakeups burn CPU",
		l7lb.ModeExclusive:    "production default before Hermes",
		l7lb.ModeExclusiveRR:  "unmerged kernel patch",
		l7lb.ModeAcceptMutex:  "nginx userspace lock",
		l7lb.ModeReuseport:    "stateless hash",
		l7lb.ModeDispatcher:   "+1 dedicated dispatcher core",
		l7lb.ModeIOUring:      "FIFO wakeup (§8)",
		l7lb.ModeHermes:       "dispatch on the eBPF VM",
		l7lb.ModeHermesNative: "dispatch native (JIT stand-in)",
	}
	for i, mode := range AllModes {
		run := results[i].(*RunResult)
		tb.AddRow(mode.String(),
			stats.FormatMS(run.AvgMS), stats.FormatMS(run.P99MS),
			fmt.Sprintf("%.1f", run.ThroughputKRPS),
			fmt.Sprintf("%.1f", run.GoodputKRPS),
			notes[mode])
	}
	return tb.Render()
}
