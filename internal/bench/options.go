package bench

import (
	"time"

	"hermes/internal/l7lb"
)

// Options are the shared experiment knobs. The defaults trade the paper's
// 32-core, minutes-long production runs for 16-core, ~1-second simulated
// windows that preserve the load ratios (utilization fractions) of each
// scenario.
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// Workers per LB device.
	Workers int
	// Tenants is the number of tenant ports.
	Tenants int
	// Window is the measurement window.
	Window time.Duration
	// Drain is post-window settle time.
	Drain time.Duration
	// RateScale rescales workload connection rates (case specs are sized
	// for 32 workers; 16 workers take 0.5).
	RateScale float64
	// RegisteredPorts is the total tenant port count bound on each device
	// (the O(#ports) dispatch-overhead parameter, §6.2 Case 1).
	RegisteredPorts int
	// Parallel caps the worker pool for cell-level fan-out (independent
	// simulations within one experiment). 0 means GOMAXPROCS; 1 forces
	// sequential execution. Output is byte-identical at any setting.
	Parallel int
	// Batch is the kernel arrival/delivery coalescing width
	// (l7lb.Config.BatchWidth → kernel.NetStack.SetBurstWidth) applied by
	// experiments that drive the kernel directly. ≤1 is the paper-literal
	// one-trampoline-per-wake path; output is byte-identical at any width,
	// wider just spends fewer engine events per delivered burst.
	Batch int
	// Metrics, when set, collects one telemetry registry per experiment
	// cell (hermes-bench -metrics). Nil disables recording; rendered
	// experiment output is byte-identical either way.
	Metrics *MetricsCollector
	// Spans, when set, arms the per-connection flight recorder for its
	// designated cell (hermes-bench -spans). Nil disables recording;
	// rendered experiment output is byte-identical either way.
	Spans *SpanRecorder
}

// DefaultOptions returns the standard experiment shape.
func DefaultOptions() Options {
	return Options{
		Seed:            1,
		Workers:         16,
		Tenants:         8,
		Window:          time.Second,
		Drain:           2 * time.Second,
		RateScale:       0.5,
		RegisteredPorts: 400,
	}
}

// Table3Modes are the three production alternatives the paper compares.
var Table3Modes = []l7lb.Mode{l7lb.ModeExclusive, l7lb.ModeReuseport, l7lb.ModeHermes}

// AllModes adds the extended baselines this repo also implements.
var AllModes = []l7lb.Mode{
	l7lb.ModeHerd, l7lb.ModeExclusive, l7lb.ModeExclusiveRR, l7lb.ModeAcceptMutex,
	l7lb.ModeIOUring, l7lb.ModeReuseport, l7lb.ModeDispatcher,
	l7lb.ModeHermes, l7lb.ModeHermesNative,
}
