package bench

import (
	"fmt"
	"math/rand"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/sim"
	"hermes/internal/stats"
	"hermes/internal/workload"
)

func init() {
	Register(fig2Experiment{})
	Register(Seq("fig3",
		"lag effect: long-lived connections then synchronized surge", Fig3))
	Register(Seq("fig45",
		"per-worker epoll_wait event/processing/blocking distributions", Fig4and5))
	Register(Seq("fig7",
		"NIC queues balanced by RSS while CPU cores stay uneven", Fig7))
	Register(Seq("figA5",
		"CDF of forwarding rules per port", FigA5))
}

// fig2Experiment reproduces Fig. 2's behaviour: the distribution of
// long-lived connections across workers under exclusive wakeup vs
// reuseport vs Hermes — one cell per mode.
type fig2Experiment struct{}

func (fig2Experiment) Name() string { return "fig2" }
func (fig2Experiment) Desc() string {
	return "connection concentration: exclusive vs rr vs reuseport vs hermes"
}

var fig2Modes = []l7lb.Mode{l7lb.ModeExclusive, l7lb.ModeExclusiveRR, l7lb.ModeIOUring, l7lb.ModeReuseport, l7lb.ModeHermes}

func (fig2Experiment) Cells(opts Options) []Cell {
	spec := workload.Case3(tenantPorts(1))
	spec.ConnRate *= opts.RateScale
	spec.ReqPerConn = workload.Const(1)
	spec.InterReqNS = workload.Const(0)
	spec.FirstReqDelayNS = workload.Const(float64(10 * time.Second)) // stay open
	cells := make([]Cell, len(fig2Modes))
	for i, mode := range fig2Modes {
		mode := mode
		cells[i] = Cell{Name: mode.String(), Run: func() any {
			run, err := Run(RunConfig{
				Batch:     opts.Batch,
				Mode:      mode,
				Workers:   8,
				Seed:      opts.Seed,
				Window:    500 * time.Millisecond,
				Drain:     100 * time.Millisecond,
				Specs:     []workload.Spec{spec},
				Telemetry: opts.Metrics.Sink(mode.String()),
				Tracer:    opts.Spans.Tracer(mode.String()),
			})
			if err != nil {
				panic(err)
			}
			counts := run.LB.WorkerConnCounts()
			f := make([]float64, len(counts))
			for j, c := range counts {
				f[j] = float64(c)
			}
			_, sd := stats.MeanStddev(f)
			return []string{mode.String(), fmt.Sprintf("%v", counts), fmt.Sprintf("%.1f", sd)}
		}}
	}
	return cells
}

func (fig2Experiment) Render(opts Options, results []any) string {
	tb := stats.NewTable("Fig 2 — connection distribution across workers (long-lived conns)",
		"mode", "per-worker conns", "stddev")
	for _, r := range results {
		row := r.([]string)
		tb.AddRow(row[0], row[1], row[2])
	}
	return tb.Render()
}

// Fig2 runs the fig2 experiment sequentially (library/benchmark entry point).
func Fig2(opts Options) string { return RunExperiment(fig2Experiment{}, opts) }

// Fig3 reproduces the lag effect: traffic rate and live connections through
// a port over time, with per-worker CPU stddev spiking at the burst.
func Fig3(opts Options) string {
	eng := sim.NewEngine(opts.Seed)
	cfg := l7lb.DefaultConfig(l7lb.ModeExclusive)
	cfg.BatchWidth = opts.Batch
	cfg.Workers = opts.Workers
	cfg.Ports = []uint16{8080}
	lb, err := l7lb.New(eng, cfg)
	if err != nil {
		panic(err)
	}
	lb.Start()

	spec := workload.DefaultSurge(8080)
	spec.Conns = int(10_000 * opts.RateScale)
	s := workload.NewSurge(lb, spec)
	s.Run()

	tb := stats.NewTable("Fig 3 — traffic rate and #connections through a port (surge at t=4s)",
		"t (s)", "completed/s (k)", "live conns", "CPU util stddev")
	const tick = 250 * time.Millisecond
	var prevDone uint64
	prevBusy := make([]int64, len(lb.Workers))
	utils := make([]float64, len(lb.Workers))
	for t := tick; t <= 6*time.Second; t += tick {
		eng.RunUntil(int64(t))
		rate := float64(lb.Completed-prevDone) / tick.Seconds() / 1000
		prevDone = lb.Completed
		live := 0
		for i, w := range lb.Workers {
			live += w.OpenConns()
			b := w.BusyNS(eng.Now())
			utils[i] = float64(b-prevBusy[i]) / float64(tick)
			prevBusy[i] = b
		}
		_, sd := stats.MeanStddev(utils)
		tb.AddRow(fmt.Sprintf("%.2f", t.Seconds()), fmt.Sprintf("%.1f", rate),
			live, fmt.Sprintf("%.3f", sd))
	}
	return tb.Render()
}

// Fig4and5 reproduces Figs. 4 and 5: per-worker CDFs of #events per
// epoll_wait, event processing time, and epoll_wait blocking time under
// epoll-exclusive with a mixed workload.
func Fig4and5(opts Options) string {
	ports := tenantPorts(opts.Tenants)
	region := workload.Regions()[1] // Region2: case-4 heavy → uneven work
	specs := region.Specs(ports, 30_000*opts.RateScale)
	run, err := Run(RunConfig{
		Batch:    opts.Batch,
		Mode:     l7lb.ModeExclusive,
		Workers:  opts.Workers,
		Ports:    ports,
		Seed:     opts.Seed,
		Window:   opts.Window,
		Drain:    opts.Drain / 2,
		Specs:    specs,
		Detailed: true,
		Mutate:   func(c *l7lb.Config) { c.RegisteredPorts = opts.RegisteredPorts },
	})
	if err != nil {
		panic(err)
	}
	// Pick 4 workers spanning the busy/idle spectrum, like the paper's PIDs.
	ws := run.LB.Workers
	byBusy := append([]*l7lb.Worker(nil), ws...)
	for i := 0; i < len(byBusy); i++ {
		for j := i + 1; j < len(byBusy); j++ {
			if byBusy[j].BusyNS(int64(opts.Window+opts.Drain/2)) > byBusy[i].BusyNS(int64(opts.Window+opts.Drain/2)) {
				byBusy[i], byBusy[j] = byBusy[j], byBusy[i]
			}
		}
	}
	picks := []*l7lb.Worker{byBusy[0], byBusy[1], byBusy[len(byBusy)-2], byBusy[len(byBusy)-1]}

	tb := stats.NewTable("Fig 4/5 — per-worker event loop distributions (exclusive)",
		"worker", "events/wait P50", "P99", "proc ms P50", "P99", "block ms P50", "P99")
	for _, w := range picks {
		tb.AddRow(fmt.Sprintf("w%02d (busy %.0f%%)", w.ID, 100*float64(w.BusyNS(int64(opts.Window+opts.Drain/2)))/float64(opts.Window+opts.Drain/2)),
			fmt.Sprintf("%.0f", w.EventsPerWait.Percentile(50)),
			fmt.Sprintf("%.0f", w.EventsPerWait.Percentile(99)),
			stats.FormatMS(w.BatchProcNS.Percentile(50)/1e6),
			stats.FormatMS(w.BatchProcNS.Percentile(99)/1e6),
			stats.FormatMS(w.BlockNS.Percentile(50)/1e6),
			stats.FormatMS(w.BlockNS.Percentile(99)/1e6))
	}
	return tb.Render()
}

// Fig7 reproduces Fig. 7: packets spread evenly over NIC queues by RSS,
// while per-core CPU utilization stays wildly uneven, because per-request
// CPU cost varies and RSS cannot see it.
func Fig7(opts Options) string {
	ports := tenantPorts(opts.Tenants)
	region := workload.Regions()[1]
	specs := region.Specs(ports, 25_000*opts.RateScale)

	rss := kernel.NewRSS(opts.Workers)
	// The paper's Fig. 7 device runs the pre-Hermes default, epoll
	// exclusive, whose concentration makes the CPU-side imbalance stark.
	run, err := Run(RunConfig{
		Batch:   opts.Batch,
		Mode:    l7lb.ModeExclusive,
		Workers: opts.Workers,
		Ports:   ports,
		Seed:    opts.Seed,
		Window:  opts.Window,
		Drain:   opts.Drain / 2,
		Specs:   specs,
		Mutate: func(c *l7lb.Config) {
			c.RegisteredPorts = opts.RegisteredPorts
		},
	})
	if err != nil {
		panic(err)
	}
	// Steer the same request population through the RSS model: one packet
	// per ~1460B MSS of request+response bytes.
	rng := rand.New(rand.NewSource(opts.Seed + 17))
	for _, g := range run.Gens {
		_ = g
	}
	for i := uint64(0); i < run.Completed; i++ {
		hash := rng.Uint32()
		pkts := 1 + int(rng.ExpFloat64()*3)
		for p := 0; p < pkts; p++ {
			rss.Steer(hash, 1460)
		}
	}

	pk := make([]float64, rss.Queues())
	for i, c := range rss.Packets {
		pk[i] = float64(c)
	}
	pktMean, pktSD := stats.MeanStddev(pk)
	cpuMean, cpuSD := stats.MeanStddev(run.WorkerUtil)

	tb := stats.NewTable("Fig 7 — NIC queues even, CPU cores uneven",
		"metric", "mean", "stddev", "CV")
	tb.AddRow("packets per NIC queue", fmt.Sprintf("%.0f", pktMean),
		fmt.Sprintf("%.0f", pktSD), fmt.Sprintf("%.3f", pktSD/pktMean))
	tb.AddRow("CPU util per core", fmt.Sprintf("%.3f", cpuMean),
		fmt.Sprintf("%.3f", cpuSD), fmt.Sprintf("%.3f", cpuSD/cpuMean))
	return tb.Render()
}

// FigA5 reproduces Fig. A5: the CDF of forwarding rules per port.
func FigA5(opts Options) string {
	rng := rand.New(rand.NewSource(opts.Seed))
	rules := workload.RulesPerPort(rng, 20_000)
	var s stats.Sample
	for _, r := range rules {
		s.Add(float64(r))
	}
	tb := stats.NewTable("Fig A5 — CDF of forwarding rules per port", "percentile", "#rules")
	for _, p := range []float64{50, 75, 90, 99, 99.9, 100} {
		tb.AddRow(fmt.Sprintf("P%v", p), fmt.Sprintf("%.0f", s.Percentile(p)))
	}
	return tb.Render()
}
