package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Experiment cells — one (case, mode, level) simulation, one device, one
// sweep point — are embarrassingly parallel: each owns a private sim.Engine
// seeded independently, and nothing mutable is shared between them. The
// harness therefore fans cells out over a worker pool and assembles results
// by cell index, so the rendered output is byte-identical to a sequential
// run regardless of scheduling interleavings.

// forEachCell runs fn(0) … fn(n-1) on up to `parallel` goroutines
// (parallel ≤ 0 means GOMAXPROCS). fn must confine its writes to cell i's
// own result slot; result assembly in index order is what makes the
// parallel run deterministic.
func forEachCell(parallel, n int, fn func(i int)) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
