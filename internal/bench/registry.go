package bench

// The harness models every reproduction the same way: an Experiment
// enumerates independent simulation Cells, the runner fans the cells out
// over the worker pool, and Render assembles the results — by cell index,
// so output is byte-identical at any -parallel setting. Experiments
// register themselves from their own file's init(); adding one touches no
// central table.

// Cell is one independent simulation: a private engine, a private seed,
// nothing mutable shared with any other cell. Run returns the cell's raw
// result for the experiment's Render to assemble.
type Cell struct {
	// Name identifies the cell within its experiment (metric dumps key on
	// it).
	Name string
	// Run executes the cell and returns its result.
	Run func() any
}

// Experiment is one runnable table/figure reproduction.
type Experiment interface {
	// Name is the registry key (the DESIGN.md experiment ID).
	Name() string
	// Desc is a one-line description shown in harness output.
	Desc() string
	// Cells enumerates the independent simulation cells for the options.
	// A single cell marks an inherently sequential experiment (single sim,
	// shared RNG stream, or — like table5 — wall-clock microbenchmarks
	// that concurrency would skew).
	Cells(o Options) []Cell
	// Render assembles the rendered text from the per-cell results,
	// indexed exactly as Cells returned them.
	Render(o Options, results []any) string
}

var registry = map[string]Experiment{}

// Register adds an experiment to the registry; experiment files call it
// from init(). Duplicate names are a programming error.
func Register(e Experiment) {
	if _, dup := registry[e.Name()]; dup {
		panic("bench: duplicate experiment " + e.Name())
	}
	registry[e.Name()] = e
}

// Experiments returns the registry of all reproducible artifacts, keyed by
// the DESIGN.md experiment IDs.
func Experiments() map[string]Experiment {
	out := make(map[string]Experiment, len(registry))
	for name, e := range registry {
		out[name] = e
	}
	return out
}

// RunExperiment executes an experiment end to end: enumerate cells, fan
// them out over o.Parallel goroutines, assemble in cell order, render.
func RunExperiment(e Experiment, o Options) string {
	return e.Render(o, runCells(o, e.Cells(o)))
}

// runCells executes cells over the pool and returns results by cell index.
func runCells(o Options, cells []Cell) []any {
	results := make([]any, len(cells))
	forEachCell(o.Parallel, len(cells), func(i int) {
		results[i] = cells[i].Run()
	})
	return results
}

// seqExperiment adapts a monolithic run function as a one-cell Experiment.
type seqExperiment struct {
	name, desc string
	run        func(Options) string
}

// Seq wraps an inherently sequential experiment — one that owns a single
// sim or a shared RNG stream end to end — as a one-cell Experiment.
func Seq(name, desc string, run func(Options) string) Experiment {
	return seqExperiment{name: name, desc: desc, run: run}
}

func (s seqExperiment) Name() string { return s.name }
func (s seqExperiment) Desc() string { return s.desc }
func (s seqExperiment) Cells(o Options) []Cell {
	return []Cell{{Name: s.name, Run: func() any { return s.run(o) }}}
}
func (s seqExperiment) Render(o Options, results []any) string {
	return results[0].(string)
}
