package bench

// Experiment is one runnable table/figure reproduction.
type Experiment struct {
	// Desc is a one-line description shown in harness output.
	Desc string
	// Run executes the experiment and returns rendered text.
	Run func(Options) string
	// Cells reports how many independent simulation cells the experiment
	// enumerates for Options.Parallel fan-out; 0 marks an inherently
	// sequential experiment (single sim, shared RNG stream, or — like
	// table5 — wall-clock microbenchmarks that concurrency would skew).
	Cells func(Options) int
}

// Experiments returns the registry of all reproducible artifacts, keyed by
// the DESIGN.md experiment IDs.
func Experiments() map[string]Experiment {
	return map[string]Experiment{
		"table1": {
			Desc: "request size and processing-time distributions per region",
			Run:  func(o Options) string { return RenderTable1(Table1(o)) },
		},
		"table2": {
			Desc:  "CPU imbalance within/across devices under epoll-exclusive",
			Run:   func(o Options) string { return RenderTable2(Table2(o)) },
			Cells: func(Options) int { return 24 },
		},
		"table3": {
			Desc:  "4 traffic cases x {exclusive,reuseport,hermes} x {light,medium,heavy}",
			Run:   func(o Options) string { return Table3(o).Render() },
			Cells: func(o Options) int { return 4 * len(LevelScales) * len(Table3Modes) },
		},
		"table4": {
			Desc: "distribution of the 4 cases across regions",
			Run:  Table4,
		},
		"table5": {
			Desc: "CPU overhead of Hermes components (measured microbenchmarks)",
			Run:  Table5,
		},
		"fig2": {
			Desc:  "connection concentration: exclusive vs rr vs reuseport vs hermes",
			Run:   Fig2,
			Cells: func(Options) int { return 5 },
		},
		"fig3": {
			Desc: "lag effect: long-lived connections then synchronized surge",
			Run:  Fig3,
		},
		"fig45": {
			Desc: "per-worker epoll_wait event/processing/blocking distributions",
			Run:  Fig4and5,
		},
		"fig7": {
			Desc: "NIC queues balanced by RSS while CPU cores stay uneven",
			Run:  Fig7,
		},
		"fig11": {
			Desc:  "delayed probes per day before/after Hermes rollout",
			Run:   Fig11,
			Cells: func(Options) int { return 2 },
		},
		"fig12": {
			Desc: "normalized unit infra cost before/after Hermes",
			Run:  Fig12,
		},
		"fig13": {
			Desc:  "stddev of CPU util and #conns across workers, 3 modes",
			Run:   Fig13,
			Cells: func(Options) int { return len(Table3Modes) },
		},
		"fig14": {
			Desc:  "coarse-filter pass ratio and scheduler frequency vs load",
			Run:   Fig14,
			Cells: func(Options) int { return 6 },
		},
		"fig15": {
			Desc:  "offset θ/Avg sweep: P99 and throughput",
			Run:   Fig15,
			Cells: func(Options) int { return 8 },
		},
		"figA5": {
			Desc: "CDF of forwarding rules per port",
			Run:  FigA5,
		},
		"baselines": {
			Desc:  "every dispatch mode (incl. herd, accept-mutex, dispatcher, io_uring) on one workload",
			Run:   Baselines,
			Cells: func(Options) int { return len(AllModes) },
		},
		"cluster": {
			Desc: "§6.1 methodology: mixed-mode devices behind the Fig. 1 VXLAN/L4 pipeline",
			Run:  ClusterMethodology,
		},
		"ablations": {
			Desc:  "design-choice ablations: filter order, placement, single-winner, theta, fallback",
			Run:   Ablations,
			Cells: func(Options) int { return 8 },
		},
		"walkthrough": {
			Desc: "appendix A3/A4 example: a,b1..b4 across 3 workers per mode",
			Run:  Walkthrough,
		},
	}
}
