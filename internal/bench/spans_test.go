package bench

import (
	"bytes"
	"testing"

	"hermes/internal/tracing"
)

// recordDump runs one experiment with the flight recorder armed on cell and
// returns the rendered experiment output plus both dump encodings.
func recordDump(t *testing.T, name, cell string, parallel int) (out string, jsonl, chrome []byte) {
	t.Helper()
	o := parallelTestOptions(parallel)
	o.Spans = NewSpanRecorder(cell, tracing.DefaultConfig())
	out = RunExperiment(Experiments()[name], o)
	if !o.Spans.Recorded() {
		t.Fatalf("%s: cell %q never asked for its tracer", name, cell)
	}
	var jb, cb bytes.Buffer
	if err := o.Spans.WriteTo(&jb, true); err != nil {
		t.Fatalf("write jsonl: %v", err)
	}
	if err := o.Spans.WriteTo(&cb, false); err != nil {
		t.Fatalf("write chrome: %v", err)
	}
	return out, jb.Bytes(), cb.Bytes()
}

// The span dump must be byte-identical at every -parallel setting: the
// designated cell runs entirely inside one goroutine, and export happens
// after the run on sorted spans.
func TestSpanDumpParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison is expensive")
	}
	const name = "fig11"
	cell := Experiments()[name].Cells(parallelTestOptions(1))[0].Name
	_, seqJSONL, seqChrome := recordDump(t, name, cell, 1)
	_, parJSONL, parChrome := recordDump(t, name, cell, 8)
	if !bytes.Equal(seqJSONL, parJSONL) {
		t.Error("JSONL span dump differs between -parallel 1 and -parallel 8")
	}
	if !bytes.Equal(seqChrome, parChrome) {
		t.Error("Chrome span dump differs between -parallel 1 and -parallel 8")
	}
	if len(seqJSONL) == 0 || len(seqChrome) == 0 {
		t.Fatal("empty span dump")
	}
}

// Arming the flight recorder must not perturb the simulation: rendered
// experiment output is byte-identical with tracing on and off, and the
// recorded dump round-trips through the reader.
func TestSpanRecordingDoesNotPerturbOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison is expensive")
	}
	const name = "fig11"
	o := parallelTestOptions(1)
	cell := Experiments()[name].Cells(o)[0].Name
	plain := RunExperiment(Experiments()[name], o)
	traced, _, chrome := recordDump(t, name, cell, 1)
	if plain != traced {
		t.Errorf("tracing changed rendered output\n--- off ---\n%s\n--- on ---\n%s", plain, traced)
	}
	spans, meta, err := tracing.ReadSpans(bytes.NewReader(chrome))
	if err != nil {
		t.Fatalf("read recorded dump: %v", err)
	}
	if meta.Cell != cell {
		t.Errorf("meta cell = %q, want %q", meta.Cell, cell)
	}
	if len(spans) == 0 || meta.ConnsKept == 0 {
		t.Fatalf("dump recorded nothing: %d spans, meta %+v", len(spans), meta)
	}
}

// Only the designated cell gets a tracer; everything else records nothing.
func TestSpanRecorderDesignatesOneCell(t *testing.T) {
	sr := NewSpanRecorder("the-cell", tracing.DefaultConfig())
	if sr.Tracer("other") != nil {
		t.Fatal("non-designated cell got a tracer")
	}
	if sr.Recorded() {
		t.Fatal("recorded before the designated cell ran")
	}
	if err := sr.WriteTo(&bytes.Buffer{}, true); err == nil {
		t.Fatal("WriteTo must fail when nothing was recorded")
	}
	if tr := sr.Tracer("the-cell"); tr == nil {
		t.Fatal("designated cell got no tracer")
	} else if tr != sr.Tracer("the-cell") {
		t.Fatal("designated cell must reuse one tracer")
	}
	var nilSR *SpanRecorder
	if nilSR.Tracer("the-cell") != nil || nilSR.Recorded() || nilSR.Cell() != "" {
		t.Fatal("nil recorder must disable recording")
	}
}
