package bench

import (
	"fmt"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/stats"
)

func init() {
	Register(Seq("walkthrough",
		"appendix A3/A4 example: a,b1..b4 across 3 workers per mode", Walkthrough))
}

// Walkthrough reproduces the appendix examples (Figs. A3/A4): three workers,
// five connections — request a with two events of 2t each, requests b1..b4
// with two events of t each — dispatched under exclusive, reuseport, and
// Hermes. The paper's point: exclusive piles everything onto the
// LIFO-preferred worker, reuseport may hash b's onto the worker stuck with
// a, and Hermes spreads by live status.
func Walkthrough(opts Options) string {
	const t = 10 * time.Millisecond
	out := fmt.Sprintf("t = %v; request a costs 4t, b1..b4 cost 2t each (a = 2x b, as in Fig. A3)\n", t)

	for _, mode := range []l7lb.Mode{l7lb.ModeExclusive, l7lb.ModeReuseport, l7lb.ModeHermes} {
		eng := newSimEngine(opts.Seed)
		cfg := l7lb.DefaultConfig(mode)
		cfg.BatchWidth = opts.Batch
		cfg.Workers = 3
		cfg.Ports = []uint16{8080}
		// Make hang detection proportional to the example's timescale: a
		// worker is "unavailable" once stuck longer than 3t (Fig. A4), and
		// tighten θ so a busy worker is visibly excluded.
		cfg.Hermes.HangThreshold = 3 * t
		cfg.Hermes.ThetaFrac = 0.25
		cfg.Hermes.MinWorkers = 1
		lb, err := l7lb.New(eng, cfg)
		if err != nil {
			panic(err)
		}
		lb.Start()

		type assignment struct {
			name   string
			worker int
		}
		var got []assignment
		send := func(name string, at time.Duration, evCost time.Duration, srcSeed uint32) {
			eng.At(int64(at), func() {
				conn, ok := lb.NS.DeliverSYN(kernel.FourTuple{
					SrcIP: srcSeed, SrcPort: uint16(1000 + srcSeed), DstIP: 1, DstPort: 8080,
				}, nil)
				if !ok {
					got = append(got, assignment{name, -1})
					return
				}
				ref := conn.Ref()
				eng.After(time.Millisecond, func() {
					if c := ref.Get(); c != nil {
						lb.NS.DeliverData(c, l7lb.Work{ArrivalNS: eng.Now(), Cost: evCost, Close: true, Tenant: 8080})
					}
				})
				// Record which worker accepted once one has.
				var check func()
				check = func() {
					if wi := owner(lb, ref); wi >= 0 {
						got = append(got, assignment{name, wi})
						return
					}
					eng.After(time.Millisecond, check)
				}
				eng.After(2*time.Millisecond, check)
			})
		}

		// Input sequence a, b1..b4 spaced by t (Fig. A4's t0..t4).
		send("a", 0, 4*t, 11)
		send("b1", t, 2*t, 22)
		send("b2", 2*t, 2*t, 33)
		send("b3", 3*t, 2*t, 44)
		send("b4", 4*t, 2*t, 55)
		eng.RunUntil(int64(20 * t))

		tb := stats.NewTable(fmt.Sprintf("Walkthrough — %s", mode),
			"request", "worker", "", "worker", "busy (t units)", "conns handled")
		perWorker := map[int][]string{}
		for _, a := range got {
			perWorker[a.worker] = append(perWorker[a.worker], a.name)
		}
		for i, a := range got {
			wcol, bcol, ccol := "", "", ""
			if i < len(lb.Workers) {
				w := lb.Workers[i]
				wcol = fmt.Sprintf("W%d", w.ID+1)
				bcol = fmt.Sprintf("%.1f", float64(w.BusyNS(eng.Now()))/float64(t))
				ccol = fmt.Sprintf("%v", perWorker[w.ID])
			}
			tb.AddRow(a.name, fmt.Sprintf("W%d", a.worker+1), "", wcol, bcol, ccol)
		}
		out += tb.Render() + "\n"
	}
	return out
}

// owner returns the worker index holding the connection, or -1 (also when
// the ref has gone stale — the recycled socket may belong to someone else).
func owner(lb *l7lb.LB, ref kernel.ConnRef) int {
	conn := ref.Get()
	if conn == nil {
		return -1
	}
	for wi, w := range lb.Workers {
		if w.OwnsConn(conn.Sock()) {
			return wi
		}
	}
	return -1
}
