package bench

import (
	"testing"
	"time"

	"hermes/internal/l7lb"
)

// Regression pin for the 256-worker grouped-controller imbalance bug: the
// two-level dispatch program fed the SAME steering hash to reciprocal_scale
// at both levels, and reciprocal_scale consumes the TOP bits of its input —
// so within group g only the slice of workers consistent with "this hash
// landed in g" was reachable, and per-worker accept counts spread ~√3× wider
// than binomial. The fix decorrelates level 2 with a golden-ratio
// multiplicative mix (hashMixConst in core/dispatch.go), in bytecode and
// both native twins.
//
// The pin compares fleets at EQUAL per-worker occupancy (≈195 accepted
// connections each) so both sides have the same binomial baseline
// stddev/mean ≈ √(w/conns) ≈ 0.07: a healthy grouped fleet lands within 2×
// of the single-controller fleet, while the broken dispatch sat at ≈1.7
// absolute — two orders of magnitude outside the gate.
func runImbalanceCell(t *testing.T, fleet, conns int, mode l7lb.Mode) scaleCell {
	t.Helper()
	o := fastOptions()
	o.Window = 250 * time.Millisecond
	return runScaleCell(fleet, conns, mode, o.Seed, o, nil, nil).(scaleCell)
}

func TestGroupedDispatchImbalanceMatchesSingleController(t *testing.T) {
	// 64 workers → single-level controller; 256 → grouped (4 groups of 64).
	single := runImbalanceCell(t, 64, 12_500, l7lb.ModeHermes)
	grouped := runImbalanceCell(t, 256, 50_000, l7lb.ModeHermes)

	if single.drops != 0 || grouped.drops != 0 {
		t.Fatalf("unexpected SYN drops: single=%d grouped=%d", single.drops, grouped.drops)
	}
	if single.imbalance <= 0 || grouped.imbalance <= 0 {
		t.Fatalf("degenerate imbalance: single=%.4f grouped=%.4f",
			single.imbalance, grouped.imbalance)
	}
	// Broken grouped dispatch measured ≈1.7 here; binomial baseline ≈0.07.
	if grouped.imbalance > 0.2 {
		t.Errorf("grouped imbalance %.4f exceeds absolute bound 0.2 (level-2 hash reuse regression?)",
			grouped.imbalance)
	}
	if grouped.imbalance > 2*single.imbalance {
		t.Errorf("grouped imbalance %.4f > 2× single-controller %.4f at equal occupancy",
			grouped.imbalance, single.imbalance)
	}
}

// The grouped hermes fleet must also track plain reuseport — the stateless
// hash is the unbiased reference for "all workers equally reachable".
func TestGroupedDispatchImbalanceMatchesReuseport(t *testing.T) {
	hermes := runImbalanceCell(t, 256, 50_000, l7lb.ModeHermes)
	reuse := runImbalanceCell(t, 256, 50_000, l7lb.ModeReuseport)
	if reuse.imbalance <= 0 {
		t.Fatalf("degenerate reuseport imbalance %.4f", reuse.imbalance)
	}
	if hermes.imbalance > 2*reuse.imbalance {
		t.Errorf("grouped hermes imbalance %.4f > 2× reuseport %.4f",
			hermes.imbalance, reuse.imbalance)
	}
}
