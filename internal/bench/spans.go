package bench

import (
	"fmt"
	"io"
	"sync"

	"hermes/internal/tracing"
)

// SpanRecorder arms the flight recorder (docs/TRACING.md) for exactly one
// designated experiment cell. Every cell asks for its tracer through
// Options.Spans; only the designated cell gets a non-nil one, so recording
// stays single-cell and dumps are deterministic at any -parallel setting
// (the designated cell runs entirely inside one goroutine). A nil recorder
// hands out nil tracers, which disables recording end to end.
type SpanRecorder struct {
	cell string
	cfg  tracing.Config

	mu sync.Mutex
	tr *tracing.Tracer
}

// NewSpanRecorder designates a cell; its tracer uses cfg.
func NewSpanRecorder(cell string, cfg tracing.Config) *SpanRecorder {
	return &SpanRecorder{cell: cell, cfg: cfg}
}

// Cell returns the designated cell name.
func (sr *SpanRecorder) Cell() string {
	if sr == nil {
		return ""
	}
	return sr.cell
}

// Tracer returns the flight recorder for the named cell: non-nil only for
// the designated cell (created on first use), nil — recording disabled —
// for every other cell and on a nil receiver.
func (sr *SpanRecorder) Tracer(cell string) *tracing.Tracer {
	if sr == nil || cell != sr.cell {
		return nil
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.tr == nil {
		sr.tr = tracing.New(sr.cfg)
	}
	return sr.tr
}

// Recorded reports whether the designated cell actually ran (asked for its
// tracer).
func (sr *SpanRecorder) Recorded() bool {
	if sr == nil {
		return false
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.tr != nil
}

// WriteTo flushes still-open connections and writes the span dump: Chrome
// trace-event JSON (Perfetto-loadable) or compact JSONL. Call after the
// experiment has fully run.
func (sr *SpanRecorder) WriteTo(w io.Writer, jsonl bool) error {
	if sr == nil || sr.tr == nil {
		return fmt.Errorf("bench: no spans recorded for cell %q", sr.Cell())
	}
	sr.tr.Flush()
	spans := sr.tr.Spans()
	meta := tracing.MetaFor(sr.cell, sr.tr.Stats())
	if jsonl {
		return tracing.WriteJSONL(w, spans, meta)
	}
	return tracing.WriteChrome(w, spans, meta)
}
