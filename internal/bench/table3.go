package bench

import (
	"fmt"

	"hermes/internal/l7lb"
	"hermes/internal/stats"
	"hermes/internal/workload"
)

// Table3Cell is one (case, mode, level) measurement.
type Table3Cell struct {
	Mode   l7lb.Mode
	AvgMS  float64
	P99MS  float64
	ThrK   float64
	Failed uint64 // requests sent but never completed
}

// Table3Result holds the full grid: [case][level][mode].
type Table3Result struct {
	Cases  []string
	Levels []string
	Modes  []l7lb.Mode
	Cells  [][][]Table3Cell
}

// LevelNames are the paper's replay levels.
var LevelNames = []string{"light", "medium", "heavy"}

// LevelScales are the replay-rate multipliers for the levels (§6.2: traffic
// replayed at 2–3× the original rate).
var LevelScales = []float64{1, 2, 3}

// table3Experiment reproduces Table 3: the four traffic cases at three
// load levels under epoll-exclusive, reuseport, and Hermes, reporting
// average latency, P99 latency, and throughput. The 4×3×3 grid of
// independent simulations is the widest sweep in the harness, so its cells
// fan out over the worker pool; assembly by (case, level, mode) index
// keeps the rendered table byte-identical to a sequential run.
type table3Experiment struct{}

func init() { Register(table3Experiment{}) }

func (table3Experiment) Name() string { return "table3" }
func (table3Experiment) Desc() string {
	return "4 traffic cases x {exclusive,reuseport,hermes} x {light,medium,heavy}"
}

// Cells enumerates the grid in (case, level, mode) order; the cell seed is
// a function of the grid position, so any subset re-runs identically.
func (table3Experiment) Cells(opts Options) []Cell {
	ports := tenantPorts(opts.Tenants)
	cases := workload.Cases(ports)
	nLevels, nModes := len(LevelScales), len(Table3Modes)
	cells := make([]Cell, 0, len(cases)*nLevels*nModes)
	for ci, cs := range cases {
		for li := range LevelScales {
			for mi, mode := range Table3Modes {
				ci, li, mi, cs, mode := ci, li, mi, cs, mode
				name := fmt.Sprintf("%s/%s/%s", cs.Name, LevelNames[li], mode)
				cells = append(cells, Cell{Name: name, Run: func() any {
					spec := cs.Scale(opts.RateScale * LevelScales[li])
					run, err := Run(RunConfig{
						Batch:     opts.Batch,
						Mode:      mode,
						Workers:   opts.Workers,
						Seed:      opts.Seed + int64(ci*100+li*10+mi),
						Window:    opts.Window,
						Drain:     opts.Drain,
						Specs:     []workload.Spec{spec},
						Telemetry: opts.Metrics.Sink(name),
						Tracer:    opts.Spans.Tracer(name),
						Mutate: func(c *l7lb.Config) {
							c.RegisteredPorts = opts.RegisteredPorts
						},
					})
					if err != nil {
						panic(fmt.Sprintf("bench: table3 %s: %v", name, err))
					}
					return Table3Cell{
						Mode:   mode,
						AvgMS:  run.AvgMS,
						P99MS:  run.P99MS,
						ThrK:   run.ThroughputKRPS,
						Failed: run.RequestsSent - run.Completed,
					}
				}})
			}
		}
	}
	return cells
}

// Render assembles the flat results back into the [case][level][mode] grid.
func (table3Experiment) Render(opts Options, results []any) string {
	return table3Assemble(opts, results).Render()
}

func table3Assemble(opts Options, results []any) *Table3Result {
	cases := workload.Cases(tenantPorts(opts.Tenants))
	res := &Table3Result{
		Levels: LevelNames,
		Modes:  Table3Modes,
	}
	nLevels, nModes := len(LevelScales), len(res.Modes)
	res.Cells = make([][][]Table3Cell, len(cases))
	for ci, cs := range cases {
		res.Cases = append(res.Cases, cs.Name)
		res.Cells[ci] = make([][]Table3Cell, nLevels)
		for li := range LevelScales {
			res.Cells[ci][li] = make([]Table3Cell, nModes)
		}
	}
	for j, r := range results {
		ci, li, mi := j/(nLevels*nModes), j/nModes%nLevels, j%nModes
		res.Cells[ci][li][mi] = r.(Table3Cell)
	}
	return res
}

// Table3 runs the full grid and returns the assembled result (tests and
// benchmarks drive the grid through this; the registry path renders it).
func Table3(opts Options) *Table3Result {
	e := table3Experiment{}
	return table3Assemble(opts, runCells(opts, e.Cells(opts)))
}

// Marked reports whether a cell fails the paper's criterion against the
// best cell of its (case, level): request time >50% above the best or
// throughput >20% below the best.
func Marked(cell Table3Cell, peers []Table3Cell) bool {
	bestAvg, bestThr := cell.AvgMS, cell.ThrK
	for _, p := range peers {
		if p.AvgMS < bestAvg {
			bestAvg = p.AvgMS
		}
		if p.ThrK > bestThr {
			bestThr = p.ThrK
		}
	}
	return cell.AvgMS > bestAvg*1.5 || cell.ThrK < bestThr*0.8
}

// Render formats the grid as the paper lays it out.
func (r *Table3Result) Render() string {
	out := ""
	for ci, name := range r.Cases {
		tb := stats.NewTable("Table 3 — "+name,
			"mode", "L avg", "L p99", "L thr(k)", "M avg", "M p99", "M thr(k)", "H avg", "H p99", "H thr(k)")
		for mi, mode := range r.Modes {
			row := []any{mode.String()}
			for li := range r.Levels {
				c := r.Cells[ci][li][mi]
				mark := ""
				if Marked(c, r.Cells[ci][li]) {
					mark = " (x)"
				}
				row = append(row,
					stats.FormatMS(c.AvgMS)+mark,
					stats.FormatMS(c.P99MS),
					fmt.Sprintf("%.1f", c.ThrK),
				)
			}
			tb.AddRow(row...)
		}
		out += tb.Render() + "\n"
	}
	return out
}
