package bench

import (
	"fmt"

	"hermes/internal/core"
	"hermes/internal/l7lb"
	"hermes/internal/stats"
	"hermes/internal/workload"
)

// ablationsExperiment runs the design-choice comparisons DESIGN.md calls
// out, on a hang-prone workload where the choices matter, and prints one
// table:
//
//   - filter cascade order (time→conn→event vs alternatives),
//   - scheduler placement (loop end vs loop start),
//   - two-stage filtering vs single-winner sync,
//   - θ/Avg extremes vs the 0.5 optimum.
type ablationsExperiment struct{}

func init() { Register(ablationsExperiment{}) }

func (ablationsExperiment) Name() string { return "ablations" }
func (ablationsExperiment) Desc() string {
	return "design-choice ablations: filter order, placement, single-winner, theta, fallback"
}

type ablationVariant struct {
	name      string
	mutate    func(*l7lb.Config)
	postBuild func(*l7lb.LB)
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{name: "baseline (order=time-conn-event, θ=0.5, loop-end, two-stage)"},
		{
			name:   "order=time-event-conn",
			mutate: func(c *l7lb.Config) { c.FilterOrder = core.OrderTimeEventConn },
		},
		{
			name:   "order=time-only",
			mutate: func(c *l7lb.Config) { c.FilterOrder = core.OrderTimeOnly },
		},
		{
			name:   "scheduler at loop start",
			mutate: func(c *l7lb.Config) { c.ScheduleAtLoopStart = true },
		},
		{
			name:      "single-winner sync",
			mutate:    func(c *l7lb.Config) { c.Hermes.MinWorkers = 1 },
			postBuild: func(lb *l7lb.LB) { lb.Ctl.SetSingleWinner(true) },
		},
		{
			name:   "θ/Avg = 0",
			mutate: func(c *l7lb.Config) { c.Hermes.ThetaFrac = 0 },
		},
		{
			name:   "θ/Avg = 2.5",
			mutate: func(c *l7lb.Config) { c.Hermes.ThetaFrac = 2.5 },
		},
		{
			name:      "forced reuseport fallback",
			postBuild: func(lb *l7lb.LB) { lb.Ctl.SetForceFallback(true) },
		},
	}
}

func (ablationsExperiment) Cells(opts Options) []Cell {
	ports := tenantPorts(opts.Tenants)
	specs := workload.Regions()[1].Specs(ports, 60_000*opts.RateScale)
	variants := ablationVariants()
	cells := make([]Cell, len(variants))
	for i, v := range variants {
		v := v
		cells[i] = Cell{Name: v.name, Run: func() any {
			run, err := Run(RunConfig{
				Batch:     opts.Batch,
				Mode:      l7lb.ModeHermes,
				Workers:   opts.Workers,
				Ports:     ports,
				Seed:      opts.Seed,
				Window:    opts.Window,
				Drain:     opts.Drain / 2,
				Specs:     specs,
				Telemetry: opts.Metrics.Sink(v.name),
				Tracer:    opts.Spans.Tracer(v.name),
				Mutate:    v.mutate,
				PostBuild: v.postBuild,
			})
			if err != nil {
				panic(fmt.Sprintf("bench: ablation %q: %v", v.name, err))
			}
			return run
		}}
	}
	return cells
}

func (ablationsExperiment) Render(opts Options, results []any) string {
	tb := stats.NewTable("Ablations — Hermes design choices under a hang-prone mix",
		"variant", "avg (ms)", "P99 (ms)", "thr (kRPS)")
	for i, v := range ablationVariants() {
		run := results[i].(*RunResult)
		tb.AddRow(v.name, stats.FormatMS(run.AvgMS), stats.FormatMS(run.P99MS),
			fmt.Sprintf("%.1f", run.ThroughputKRPS))
	}
	return tb.Render()
}
