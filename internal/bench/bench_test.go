package bench

import (
	"fmt"
	"regexp"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hermes/internal/l7lb"
	"hermes/internal/workload"
)

// fastOptions shrinks runs enough for unit tests while keeping load ratios.
func fastOptions() Options {
	o := DefaultOptions()
	o.Workers = 8
	o.Tenants = 4
	o.Window = 200 * time.Millisecond
	o.Drain = 400 * time.Millisecond
	o.RateScale = 0.25
	return o
}

func TestRunCountersConsistent(t *testing.T) {
	o := fastOptions()
	spec := workload.Case1(tenantPorts(o.Tenants)).Scale(o.RateScale)
	res, err := Run(RunConfig{
		Mode:    l7lb.ModeHermes,
		Workers: o.Workers,
		Seed:    1,
		Window:  o.Window,
		Drain:   o.Drain,
		Specs:   []workload.Spec{spec},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestsSent == 0 || res.Completed == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	if res.Completed < res.CompletedInWindow {
		t.Fatal("drain lost completions")
	}
	if res.Completed > res.RequestsSent {
		t.Fatal("completed more than sent")
	}
	if res.ThroughputKRPS <= 0 || res.AvgMS <= 0 || res.P99MS < res.AvgMS {
		t.Fatalf("stats wrong: %+v", res)
	}
	if len(res.WorkerUtil) != o.Workers {
		t.Fatalf("util len %d", len(res.WorkerUtil))
	}
	for i, u := range res.WorkerUtil {
		if u < 0 || u > 1.000001 {
			t.Fatalf("worker %d util %v out of [0,1]", i, u)
		}
	}
}

func TestRunSamplingProducesStddevs(t *testing.T) {
	o := fastOptions()
	spec := workload.Case3(tenantPorts(o.Tenants)).Scale(o.RateScale)
	res, err := Run(RunConfig{
		Mode:        l7lb.ModeExclusive,
		Workers:     o.Workers,
		Seed:        2,
		Window:      o.Window,
		Drain:       o.Drain,
		Specs:       []workload.Spec{spec},
		SampleEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConnStddev <= 0 {
		t.Fatalf("exclusive with long conns must show conn imbalance, got %v", res.ConnStddev)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(RunConfig{Mode: l7lb.ModeHermes, Workers: 0, Window: time.Millisecond}); err == nil {
		t.Fatal("invalid run accepted")
	}
}

func TestMarkedCriterion(t *testing.T) {
	peers := []Table3Cell{
		{AvgMS: 1.0, ThrK: 100},
		{AvgMS: 1.6, ThrK: 99},
		{AvgMS: 1.1, ThrK: 79},
	}
	if Marked(peers[0], peers) {
		t.Fatal("best cell marked")
	}
	if !Marked(peers[1], peers) {
		t.Fatal(">50% latency not marked")
	}
	if !Marked(peers[2], peers) {
		t.Fatal(">20% throughput loss not marked")
	}
}

func TestTable1Shape(t *testing.T) {
	o := fastOptions()
	rows := Table1(o)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !(r.SizeP50 <= r.SizeP90 && r.SizeP90 <= r.SizeP99) {
			t.Fatalf("%s size percentiles not monotone: %+v", r.Region, r)
		}
		if !(r.ProcP50 <= r.ProcP90 && r.ProcP90 <= r.ProcP99) {
			t.Fatalf("%s proc percentiles not monotone: %+v", r.Region, r)
		}
	}
	// Table 1's signature: Region3's P99 dwarfs the others (WebSockets)
	// while its P50 stays moderate.
	if rows[2].ProcP99 < 10*rows[0].ProcP99 {
		t.Fatalf("Region3 P99 %v should dwarf Region1 %v", rows[2].ProcP99, rows[0].ProcP99)
	}
	if rendered := RenderTable1(rows); !strings.Contains(rendered, "Region3") {
		t.Fatal("render broken")
	}
}

func TestTable2Shape(t *testing.T) {
	o := fastOptions()
	res := Table2(o)
	if res.Devices != 24 {
		t.Fatalf("devices = %d", res.Devices)
	}
	spread := func(d Table2Device) float64 { return d.MaxUtil - d.MinUtil }
	if spread(res.Worst) < spread(res.Best) {
		t.Fatal("worst/best inverted")
	}
	// Exclusive should produce a real intra-device spread somewhere.
	if spread(res.Worst) < 0.05 {
		t.Fatalf("no imbalance found: %+v", res.Worst)
	}
	for _, d := range []Table2Device{res.Worst, res.Best, res.RegionAvg} {
		if d.MaxUtil > 1.000001 || d.MinUtil < 0 {
			t.Fatalf("util out of range: %+v", d)
		}
	}
	if !strings.Contains(RenderTable2(res), "region-avg") {
		t.Fatal("render broken")
	}
}

func TestTable3GridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table3 grid is expensive")
	}
	o := fastOptions()
	res := Table3(o)
	if len(res.Cases) != 4 || len(res.Cells) != 4 {
		t.Fatalf("cases = %d", len(res.Cases))
	}
	for ci := range res.Cells {
		if len(res.Cells[ci]) != 3 {
			t.Fatalf("case %d levels = %d", ci, len(res.Cells[ci]))
		}
		for li := range res.Cells[ci] {
			if len(res.Cells[ci][li]) != len(Table3Modes) {
				t.Fatalf("case %d level %d modes = %d", ci, li, len(res.Cells[ci][li]))
			}
			for _, c := range res.Cells[ci][li] {
				if c.ThrK <= 0 {
					t.Fatalf("case %d level %d %v: zero throughput", ci, li, c.Mode)
				}
			}
		}
	}
	// Case 3's signature survives even scaled down: exclusive's average
	// latency is the worst of the three modes at light load.
	cells := res.Cells[2][0]
	if !(cells[0].AvgMS > cells[1].AvgMS && cells[0].AvgMS > cells[2].AvgMS) {
		t.Fatalf("case3 light: exclusive %v should exceed reuseport %v and hermes %v",
			cells[0].AvgMS, cells[1].AvgMS, cells[2].AvgMS)
	}
	if !strings.Contains(res.Render(), "case3") {
		t.Fatal("render broken")
	}
}

func TestMeasureOverheadsSane(t *testing.T) {
	o := MeasureOverheads(20_000)
	if o.CounterNS <= 0 || o.SchedulerNS <= 0 || o.DispatchVMNS <= 0 || o.DispatchNativeNS <= 0 {
		t.Fatalf("non-positive overheads: %+v", o)
	}
	if o.SyscallNS < NominalSyscallNS {
		t.Fatalf("syscall below nominal: %v", o.SyscallNS)
	}
	// The VM interprets ~150 instructions; native is a handful of ops.
	if o.DispatchNativeNS > o.DispatchVMNS {
		t.Fatalf("native dispatch %v slower than VM %v", o.DispatchNativeNS, o.DispatchVMNS)
	}
	if o.CounterNS > 10_000 || o.SchedulerNS > 100_000 {
		t.Fatalf("implausible overheads: %+v", o)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	exps := Experiments()
	want := []string{
		"table1", "table2", "table3", "table4", "table5",
		"fig2", "fig3", "fig45", "fig7", "fig11", "fig12", "fig13",
		"fig14", "fig15", "figA5", "walkthrough", "ablations", "cluster", "baselines",
		"faults", "scale",
	}
	for _, name := range want {
		e, ok := exps[name]
		if !ok {
			t.Errorf("experiment %q missing", name)
			continue
		}
		if e.Name() != name {
			t.Errorf("experiment %q registered under Name() %q", name, e.Name())
		}
		if e.Desc() == "" {
			t.Errorf("experiment %q has no description", name)
		}
	}
	if len(exps) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(exps), len(want))
	}
}

func TestCheapExperimentsProduceOutput(t *testing.T) {
	o := fastOptions()
	exps := Experiments()
	for _, name := range []string{"table4", "fig12", "figA5", "walkthrough", "fig2"} {
		out := RunExperiment(exps[name], o)
		if len(out) < 50 {
			t.Errorf("%s output suspiciously short: %q", name, out)
		}
	}
}

func TestFig12HitsPaperReduction(t *testing.T) {
	out := Fig12(fastOptions())
	if !strings.Contains(out, "18.9%") {
		t.Fatalf("fig12 output missing 18.9%% reduction:\n%s", out)
	}
}

// forEachCell is the harness's fan-out primitive: every index must be
// visited exactly once, at any pool size (including pools wider than the
// cell count and the sequential fallback).
func TestForEachCellVisitsEachIndexOnce(t *testing.T) {
	for _, tc := range []struct{ parallel, n int }{
		{1, 17}, {4, 17}, {32, 17}, {0, 17}, {8, 1}, {8, 0}, {-1, 5},
	} {
		visits := make([]int32, tc.n)
		forEachCell(tc.parallel, tc.n, func(i int) {
			atomic.AddInt32(&visits[i], 1)
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("parallel=%d n=%d: index %d visited %d times",
					tc.parallel, tc.n, i, v)
			}
		}
	}
}

// parallelTestOptions shrinks the sweep experiments enough that running the
// same grid at several pool widths stays test-sized.
func parallelTestOptions(parallel int) Options {
	o := fastOptions()
	o.Window = 50 * time.Millisecond
	o.Drain = 100 * time.Millisecond
	o.Parallel = parallel
	return o
}

// The harness's headline guarantee: cell-level parallelism never changes a
// byte of experiment output. Same seed ⇒ identical rendered text whether
// cells run on one goroutine or eight.
func TestParallelByteIdenticalOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison is expensive")
	}
	exps := Experiments()
	for _, name := range []string{"table3", "table2", "baselines", "fig15"} {
		seq := RunExperiment(exps[name], parallelTestOptions(1))
		par := RunExperiment(exps[name], parallelTestOptions(8))
		if seq != par {
			t.Errorf("%s: output differs between -parallel 1 and -parallel 8\n--- seq ---\n%s\n--- par ---\n%s",
				name, seq, par)
		}
	}
}

// scale's host-timing lines are the one place wall-clock leaks into rendered
// output; everything else in the section must be byte-identical across
// -parallel once the `wall X.Xs` tokens are normalized (the same rule the CI
// smoke applies with sed).
func TestScaleParallelByteIdenticalOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison is expensive")
	}
	wall := regexp.MustCompile(`wall [0-9.]+s( ratio [0-9.]+x)?`)
	e := Experiments()["scale"]
	seq := wall.ReplaceAllString(RunExperiment(e, parallelTestOptions(1)), "wall Xs")
	par := wall.ReplaceAllString(RunExperiment(e, parallelTestOptions(8)), "wall Xs")
	if seq != par {
		t.Errorf("scale: output differs between -parallel 1 and -parallel 8\n--- seq ---\n%s\n--- par ---\n%s",
			seq, par)
	}
}

// Every experiment must enumerate well-formed cells: the parallel sweeps
// their full grids, the sequential ones exactly one cell, and every cell a
// unique non-empty name (metric dumps key on it).
func TestRegistryCellCounts(t *testing.T) {
	o := fastOptions()
	wantParallel := map[string]int{
		"table2":    24,
		"table3":    4 * len(LevelScales) * len(Table3Modes),
		"fig2":      5,
		"fig11":     2,
		"fig13":     len(Table3Modes),
		"fig14":     6,
		"fig15":     8,
		"baselines": len(AllModes),
		"ablations": 8,
		"faults":    len(faultsScenarios) * len(Table3Modes),
		"scale":     len(scaleFleets) * len(scaleTiers) * len(Table3Modes),
	}
	for name, e := range Experiments() {
		cells := e.Cells(o)
		if want, ok := wantParallel[name]; ok {
			if len(cells) != want {
				t.Errorf("%s: %d cells, want %d", name, len(cells), want)
			}
		} else if len(cells) != 1 {
			t.Errorf("%s: sequential experiments enumerate 1 cell, got %d", name, len(cells))
		}
		seen := make(map[string]bool, len(cells))
		for i, c := range cells {
			if c.Name == "" || c.Run == nil {
				t.Errorf("%s cell %d incomplete", name, i)
			}
			if seen[c.Name] {
				t.Errorf("%s: duplicate cell name %q", name, c.Name)
			}
			seen[c.Name] = true
		}
	}
}

// BenchmarkHarnessParallel tracks the wall-clock effect of cell fan-out on
// the widest sweep (table3). On a multi-core host parallel=GOMAXPROCS should
// approach a core-count speedup over parallel=1; on one core they tie.
func BenchmarkHarnessParallel(b *testing.B) {
	for _, p := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallel=%d", p), func(b *testing.B) {
			o := parallelTestOptions(p)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if res := Table3(o); len(res.Cells) != 4 {
					b.Fatal("bad grid")
				}
			}
		})
	}
}

// The repo promises bit-for-bit reproducibility: identical seeds must give
// identical measurements across independent runs.
func TestRunDeterministicAcrossInvocations(t *testing.T) {
	o := fastOptions()
	spec := workload.Case2(tenantPorts(o.Tenants)).Scale(o.RateScale)
	once := func() *RunResult {
		res, err := Run(RunConfig{
			Mode:    l7lb.ModeHermes,
			Workers: o.Workers,
			Seed:    123,
			Window:  o.Window,
			Drain:   o.Drain,
			Specs:   []workload.Spec{spec},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := once(), once()
	if a.Completed != b.Completed || a.AvgMS != b.AvgMS || a.P99MS != b.P99MS ||
		a.ThroughputKRPS != b.ThroughputKRPS {
		t.Fatalf("same-seed runs diverged: %+v vs %+v", a, b)
	}
	for i := range a.WorkerUtil {
		if a.WorkerUtil[i] != b.WorkerUtil[i] {
			t.Fatalf("worker %d util diverged", i)
		}
	}
}
