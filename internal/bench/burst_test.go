package bench

import (
	"regexp"
	"testing"
	"time"

	"hermes/internal/l7lb"
)

// Batch-width determinism: the kernel's burst machinery must be mechanically
// invisible — any -batch setting renders byte-identical experiment output
// (modulo the host wall-clock tokens the scale section prints). This is the
// harness-level counterpart of the kernel's burst-vs-single fuzz oracle.
func TestBatchWidthByteIdenticalOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison is expensive")
	}
	wall := regexp.MustCompile(`wall [0-9.]+s( ratio [0-9.]+x)?`)
	exps := Experiments()
	for _, name := range []string{"scale", "table3", "baselines"} {
		e := exps[name]
		runAt := func(batch int) string {
			o := parallelTestOptions(4)
			o.Batch = batch
			return wall.ReplaceAllString(RunExperiment(e, o), "wall Xs")
		}
		base := runAt(1)
		for _, batch := range []int{8, 32} {
			if got := runAt(batch); got != base {
				t.Errorf("%s: output differs between -batch 1 and -batch %d\n--- batch 1 ---\n%s\n--- batch %d ---\n%s",
					name, batch, base, batch, got)
			}
		}
	}
}

// The conn-table pre-sizing regression: a scale cell must never regrow a
// worker's connection table in steady state, at the paper-literal width and
// under burst dispatch, in every production mode (exclusive-LIFO concentrates
// accepts the hardest).
func TestScaleCellConnTableNeverRegrows(t *testing.T) {
	o := fastOptions()
	o.Window = 50 * time.Millisecond
	o.Drain = 100 * time.Millisecond
	conns := scaleConns(1_000_000, o.Window)
	for _, mode := range Table3Modes {
		for _, batch := range []int{1, 32} {
			o.Batch = batch
			res := runScaleCell(64, conns, mode, 1, o, nil, nil).(scaleCell)
			if res.tableGrows != 0 {
				t.Errorf("%s batch=%d: conn tables regrew %d times during a %d-conn cell, want 0",
					mode, batch, res.tableGrows, conns)
			}
			if res.completed == 0 {
				t.Errorf("%s batch=%d: cell completed nothing", mode, batch)
			}
		}
	}
}

// Worker conn-table capacity honours the hint (bounded by the pool cap).
func TestConnsPerWorkerHint(t *testing.T) {
	eng := newSimEngine(1)
	cfg := l7lb.DefaultConfig(l7lb.ModeReuseport)
	cfg.Workers = 2
	cfg.ConnsPerWorkerHint = 10_000
	lb, err := l7lb.New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range lb.Workers {
		if got := w.ConnTableCap(); got < 10_000 {
			t.Fatalf("conn table cap = %d, want ≥ 10000", got)
		}
	}

	cfg.MaxConnsPerWorker = 500
	lb2, err := l7lb.New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := lb2.Workers[0].ConnTableCap(); got != 500 {
		t.Fatalf("pool-capped conn table cap = %d, want 500", got)
	}
}
