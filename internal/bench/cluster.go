package bench

import (
	"fmt"
	"time"

	"hermes/internal/cluster"
	"hermes/internal/l7lb"
	"hermes/internal/stats"
)

func init() {
	Register(Seq("cluster",
		"§6.1 methodology: mixed-mode devices behind the Fig. 1 VXLAN/L4 pipeline",
		ClusterMethodology))
}

// ClusterMethodology reproduces §6.1's evaluation setup end to end through
// the Fig. 1 pipeline: one epoll-exclusive device and one reuseport device
// redeployed alongside Hermes devices in a single cluster, all fed the same
// ECMP-split VXLAN traffic, compared on identical workloads.
func ClusterMethodology(opts Options) string {
	eng := newSimEngine(opts.Seed)
	tenants := []cluster.Tenant{
		{VNI: 100, PublicPort: 443, L7Port: 9001},
		{VNI: 200, PublicPort: 80, L7Port: 9002},
		{VNI: 300, PublicPort: 443, L7Port: 9003},
	}
	modes := []l7lb.Mode{
		l7lb.ModeExclusive, l7lb.ModeReuseport,
		l7lb.ModeHermes, l7lb.ModeHermes,
		l7lb.ModeHermes, l7lb.ModeHermes,
		l7lb.ModeHermes, l7lb.ModeHermes,
	}
	c, err := cluster.New(eng, cluster.Config{
		Tenants:          tenants,
		DeviceModes:      modes,
		WorkersPerDevice: opts.Workers / 2,
		Work:             cluster.DefaultWorkFactory(60*time.Microsecond, 2*time.Microsecond),
	})
	if err != nil {
		panic(err)
	}
	c.Start()

	rng := eng.Rand()
	window := 2 * opts.Window
	for _, vni := range []uint32{100, 200, 300} {
		cl := c.NewClient(vni)
		n := int(6000 * opts.RateScale)
		for i := 0; i < n; i++ {
			size := 100 + rng.Intn(500)
			if rng.Intn(40) == 0 {
				size = 15_000 // expensive request (~30ms): hangs a worker
			}
			at := time.Duration(float64(window) * float64(i) / float64(n))
			cl.OpenAndRequest(at, 50*time.Microsecond, size, true)
		}
	}
	eng.RunUntil(int64(window) + int64(3*time.Second))

	tb := stats.NewTable("Cluster methodology (§6.1) — mixed-mode devices on shared ECMP traffic",
		"device", "mode", "flows served", "avg (ms)", "P99 (ms)")
	for di, d := range c.Devices {
		tb.AddRow(fmt.Sprintf("dev%d", di), modes[di].String(), d.Completed,
			stats.FormatMS(d.Latency.Mean()), stats.FormatMS(d.Latency.Percentile(99)))
	}
	return tb.Render() + fmt.Sprintf(
		"pipeline: %d flows opened, %d refused, %d bad frames, %d live at end\n",
		c.FlowsOpened, c.FlowsRefused, c.BadFrames, c.LiveFlows())
}
