package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// Recording the telemetry catalog must never perturb a simulation: the
// rendered experiment output is byte-identical with metrics on and off.
func TestMetricsDoNotPerturbOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("double table3 grid is expensive")
	}
	e := Experiments()["table3"]
	off := RunExperiment(e, parallelTestOptions(8))
	o := parallelTestOptions(8)
	o.Metrics = NewMetricsCollector()
	on := RunExperiment(e, o)
	if off != on {
		t.Errorf("table3 output differs with metrics enabled\n--- off ---\n%s\n--- on ---\n%s", off, on)
	}
	if len(o.Metrics.CellNames()) != 4*len(LevelScales)*len(Table3Modes) {
		t.Errorf("collector has %d cells", len(o.Metrics.CellNames()))
	}
}

// A Hermes table3 cell must light up the whole cross-layer catalog: every
// worker shows nonzero epoll wakeups, reuseport steers, and a nonzero
// accept-queue depth peak.
func TestTable3HermesCellMetricsPerWorkerNonzero(t *testing.T) {
	o := fastOptions()
	o.Metrics = NewMetricsCollector()
	var cellName string
	for _, c := range (table3Experiment{}).Cells(o) {
		if strings.HasSuffix(c.Name, "/heavy/hermes") && strings.HasPrefix(c.Name, "case1") {
			cellName = c.Name
			c.Run()
			break
		}
	}
	if cellName == "" {
		t.Fatal("no case1 heavy hermes cell found")
	}
	snap := o.Metrics.Snapshot(cellName)
	for _, name := range []string{
		"kernel.epoll.wakeups",
		"kernel.reuseport.steered",
		"kernel.accept_queue.depth_peak",
		"l7lb.worker.requests_served",
	} {
		ms := snap.Get(name)
		if ms == nil {
			t.Errorf("%s missing from %s dump", name, cellName)
			continue
		}
		if len(ms.Values) != o.Workers {
			t.Errorf("%s has %d slots, want %d", name, len(ms.Values), o.Workers)
			continue
		}
		for i, v := range ms.Values {
			if v == 0 {
				t.Errorf("%s worker %d is zero", name, i)
			}
		}
	}
	for _, name := range []string{"core.schedule.recomputes", "core.schedule.syncs", "ebpf.selmap.updates"} {
		if ms := snap.Get(name); ms == nil || ms.Value == 0 {
			t.Errorf("%s missing or zero in %s dump", name, cellName)
		}
	}
}

// The collector's JSON dump must parse and key cells by name.
func TestMetricsCollectorJSONRoundTrip(t *testing.T) {
	mc := NewMetricsCollector()
	sink := mc.Sink("cellA")
	if sink == nil {
		t.Fatal("non-nil collector returned nil sink")
	}
	var nilMC *MetricsCollector
	if s := nilMC.Sink("x"); s != nil {
		t.Fatal("nil collector must hand out nil sinks")
	}
	buf, err := json.Marshal(mc)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if _, ok := decoded["cellA"]; !ok {
		t.Fatalf("dump missing cellA: %s", buf)
	}
}
