package bench

import (
	"encoding/json"
	"sort"
	"sync"

	"hermes/internal/telemetry"
)

// MetricsCollector gathers one telemetry registry per experiment cell.
// Cells ask for their sink through Options.Metrics; a nil collector hands
// out nil sinks, which disables recording end to end (the layers hold nil
// instrument handles). Cell runs race on Sink from the fan-out pool, so
// the collector is mutex-guarded; the per-cell registries themselves are
// written only by their own cell's simulation.
type MetricsCollector struct {
	mu    sync.Mutex
	cells map[string]*telemetry.Registry
}

// NewMetricsCollector returns an empty collector.
func NewMetricsCollector() *MetricsCollector {
	return &MetricsCollector{cells: make(map[string]*telemetry.Registry)}
}

// Sink returns the named cell's registry as a telemetry.Sink, creating it
// on first use. A nil receiver returns a nil Sink (recording disabled).
func (mc *MetricsCollector) Sink(cell string) telemetry.Sink {
	if mc == nil {
		return nil
	}
	mc.mu.Lock()
	defer mc.mu.Unlock()
	reg, ok := mc.cells[cell]
	if !ok {
		reg = telemetry.NewRegistry()
		mc.cells[cell] = reg
	}
	return reg
}

// CellNames returns the recorded cell names, sorted.
func (mc *MetricsCollector) CellNames() []string {
	if mc == nil {
		return nil
	}
	mc.mu.Lock()
	defer mc.mu.Unlock()
	names := make([]string, 0, len(mc.cells))
	for name := range mc.cells {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the named cell's metrics at this instant, or an empty
// snapshot if the cell never recorded.
func (mc *MetricsCollector) Snapshot(cell string) telemetry.Snapshot {
	if mc == nil {
		return telemetry.Snapshot{}
	}
	mc.mu.Lock()
	reg := mc.cells[cell]
	mc.mu.Unlock()
	if reg == nil {
		return telemetry.Snapshot{}
	}
	return reg.Snapshot()
}

// MarshalJSON renders every cell's snapshot as {"cell": [metrics…]};
// encoding/json emits map keys sorted, so dumps are deterministic.
func (mc *MetricsCollector) MarshalJSON() ([]byte, error) {
	obj := make(map[string][]telemetry.MetricSnapshot)
	mc.mu.Lock()
	for name, reg := range mc.cells {
		obj[name] = reg.Snapshot().Metrics
	}
	mc.mu.Unlock()
	return json.Marshal(obj)
}
