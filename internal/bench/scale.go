package bench

import (
	"fmt"
	"time"

	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/stats"
	"hermes/internal/telemetry"
	"hermes/internal/tracing"
)

// The scale experiment proves the allocation-free kernel fast path at the
// connection counts the paper's production fleet sees: it sweeps up to
// O(1M) connections per cell across a single-controller fleet (64 workers)
// and a grouped-controller fleet (256 workers, §7 two-level deployment) in
// the three production dispatch modes. Each connection runs the full
// lifecycle — SYN → steer → accept-queue → epoll wake → serve → close —
// through the pooled Conn/watch fast path, so cell cost is dominated by the
// per-connection constant factor PR 5 removed.
//
// Everything tabulated derives from virtual time and simulation counters
// and is byte-identical at any -parallel; host wall-clock appears only
// inside `wall X.Xs` tokens on the per-cell timing lines, the same pattern
// the per-experiment headers use (normalized away by the CI smoke's sed).

// scaleFleets are the worker fleet sizes: 64 exercises the single bitmap
// controller at its widest, 256 the grouped two-level controller (§7).
var scaleFleets = []int{64, 256}

// scaleTiers are connection counts per second of measurement window; at the
// default 1s window the top tier is the O(1M) target.
var scaleTiers = []int{10_000, 100_000, 1_000_000}

type scaleCell struct {
	fleet, conns int
	mode         l7lb.Mode

	established uint64
	completed   uint64
	drops       uint64 // SYN-time rejections (accept-queue overflow)
	imbalance   float64
	wallS       float64
	tableGrows  uint64 // sum of per-worker conn-table regrowths (want 0)
}

type scaleExperiment struct{}

func init() { Register(scaleExperiment{}) }

func (scaleExperiment) Name() string { return "scale" }
func (scaleExperiment) Desc() string {
	return "O(1M)-connection lifecycle sweep over large fleets (zero-alloc fast path)"
}

// scaleConns converts a per-second tier into this run's connection count.
func scaleConns(tier int, window time.Duration) int {
	n := int(float64(tier) * window.Seconds())
	if n < 100 {
		n = 100
	}
	return n
}

func scaleCellName(fleet, conns int, mode l7lb.Mode) string {
	return fmt.Sprintf("%dw-%s-%s", fleet, formatConns(conns), mode)
}

// formatConns renders 1_000_000 as "1M", 10_000 as "10k".
func formatConns(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1000 && n%1000 == 0:
		return fmt.Sprintf("%dk", n/1000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func (scaleExperiment) Cells(o Options) []Cell {
	var cells []Cell
	for fi, fleet := range scaleFleets {
		for ti, tier := range scaleTiers {
			for mi, mode := range Table3Modes {
				fleet, mode := fleet, mode
				conns := scaleConns(tier, o.Window)
				name := scaleCellName(fleet, conns, mode)
				seed := o.Seed + int64(fi*100+ti*10+mi)
				tel := o.Metrics.Sink(name)
				tr := o.Spans.Tracer(name)
				cells = append(cells, Cell{Name: name, Run: func() any {
					return runScaleCell(fleet, conns, mode, seed, o, tel, tr)
				}})
			}
		}
	}
	return cells
}

// runScaleCell drives `conns` full connection lifecycles through one LB:
// open-loop fixed-interval arrivals spread over the window, one fixed-cost
// request per connection, close on response. The driver keeps exactly one
// scheduled arrival event outstanding, so steady-state allocation is the
// kernel fast path's — which is to say zero.
func runScaleCell(fleet, conns int, mode l7lb.Mode, seed int64, o Options,
	tel telemetry.Sink, tr *tracing.Tracer) any {
	start := time.Now()
	eng := newSimEngine(seed)
	cfg := l7lb.DefaultConfig(mode)
	cfg.Workers = fleet
	cfg.Ports = []uint16{8080}
	cfg.Telemetry = tel
	cfg.Tracer = tr
	cfg.BatchWidth = o.Batch
	// Pre-size every worker's connection table from the cell's planned
	// connection count: an even share per worker is orders of magnitude
	// above peak concurrently-open conns (each lives ~µs of virtual time),
	// so steady state never regrows a table — pinned by
	// TestScaleCellConnTableNeverRegrows.
	cfg.ConnsPerWorkerHint = conns/fleet + 1
	lb, err := l7lb.New(eng, cfg)
	if err != nil {
		panic(err)
	}
	lb.Start()

	// Fixed-interval arrivals and a fixed per-request cost: no RNG touches
	// the schedule, so per-worker accept counts — the imbalance column —
	// are a pure function of the dispatch mode.
	interval := int64(o.Window) / int64(conns)
	if interval < 1 {
		interval = 1
	}
	const reqCost = time.Microsecond
	res := scaleCell{fleet: fleet, conns: conns, mode: mode}
	i := 0
	var arrive func()
	arrive = func() {
		// Golden-ratio multiplicative hashing spreads the synthetic
		// 4-tuples across the steering hash space.
		tuple := kernel.FourTuple{
			SrcIP:   uint32(i)*0x9E3779B1 + uint32(seed),
			SrcPort: uint16(1024 + i%60000),
			DstIP:   0x0a00_0001,
			DstPort: 8080,
		}
		// SYN and first-request deliveries happen back-to-back in this one
		// engine event, so the burst bracket may coalesce their wakeups
		// (BatchWidth > 1) without any observable reordering; at width ≤ 1
		// it is the paper-literal trampoline path, untouched.
		lb.NS.BeginBurst()
		if conn, ok := lb.NS.DeliverSYN(tuple, nil); ok {
			lb.NS.DeliverData(conn, l7lb.Work{
				ArrivalNS: eng.Now(), Cost: reqCost, Close: true, Tenant: 8080,
			})
		} else {
			res.drops++
		}
		lb.NS.EndBurst()
		i++
		if i < conns {
			eng.At(int64(i)*interval, arrive)
		}
	}
	eng.At(0, arrive)
	eng.RunUntil(int64(o.Window) + int64(o.Drain))

	res.established = lb.NS.ConnsEstablished
	res.completed = lb.Completed
	accepted := make([]float64, len(lb.Workers))
	for wi, w := range lb.Workers {
		accepted[wi] = float64(w.Accepted)
		res.tableGrows += w.ConnTableGrows
	}
	mean, sd := stats.MeanStddev(accepted)
	if mean > 0 {
		res.imbalance = sd / mean
	}
	res.wallS = time.Since(start).Seconds()
	return res
}

func (scaleExperiment) Render(o Options, results []any) string {
	tb := stats.NewTable("Scale — full connection lifecycles through the pooled fast path",
		"fleet", "conns", "mode", "established", "completed", "drops", "imbalance", "kconns/s (sim)")
	for _, r := range results {
		c := r.(scaleCell)
		tb.AddRow(
			fmt.Sprintf("%dw", c.fleet),
			formatConns(c.conns),
			c.mode.String(),
			fmt.Sprintf("%d", c.established),
			fmt.Sprintf("%d", c.completed),
			fmt.Sprintf("%d", c.drops),
			fmt.Sprintf("%.3f", c.imbalance),
			fmt.Sprintf("%.1f", float64(c.completed)/o.Window.Seconds()/1000),
		)
	}
	out := tb.Render()
	out += "imbalance = stddev/mean of per-worker accepted connections; kconns/s is virtual-time throughput\n"
	// Host-side timing: each line's varying tokens match `wall X.Xs` and
	// `ratio X.XXx`, so the standard normalization leaves the section
	// byte-identical at any -parallel setting. ratio is plain reuseport's
	// wall-clock over this cell's for the same fleet×conns — hermes cells
	// near 1.00x mean the control loop (bytecode dispatch + Algorithm 1)
	// costs roughly nothing over stateless hashing at that scale.
	base := make(map[[2]int]float64)
	for _, r := range results {
		c := r.(scaleCell)
		if c.mode == l7lb.ModeReuseport {
			base[[2]int{c.fleet, c.conns}] = c.wallS
		}
	}
	for _, r := range results {
		c := r.(scaleCell)
		out += fmt.Sprintf("  %s: wall %.1fs", scaleCellName(c.fleet, c.conns, c.mode), c.wallS)
		if b := base[[2]int{c.fleet, c.conns}]; b > 0 && c.wallS > 0 {
			out += fmt.Sprintf(" ratio %.2fx", b/c.wallS)
		}
		out += "\n"
	}
	return out
}
