package bench

import (
	"fmt"
	"time"

	"hermes/internal/faults"
	"hermes/internal/kernel"
	"hermes/internal/l7lb"
	"hermes/internal/probe"
	"hermes/internal/stats"
	"hermes/internal/workload"
)

// faultsExperiment measures blast radius and recovery under injected
// faults: the three production modes run the *identical* fault schedule
// (§7, Appendix C) over the same steady + churn workload, and the table
// compares how many connections each mode damages, for how long, and how
// fast it comes back. Two scenarios:
//
//   - crash: the most-loaded worker is killed (connections reset) and
//     restarted, with a slow worker and an accept-queue shrink layered
//     into the same fault window.
//   - hang: the most-loaded worker busy-spins for half a window. Hermes
//     modes run the WST watchdog with auto-restart — the recovery the
//     baselines structurally cannot have, since only Hermes exports the
//     loop-enter heartbeat — plus probe loss and a selmap sync stall
//     (stale-bitmap window with hash fallback armed).
//
// Each cell is an independent sim seeded from opts.Seed, so output is
// byte-identical at any -parallel setting.
type faultsExperiment struct{}

func (faultsExperiment) Name() string { return "faults" }
func (faultsExperiment) Desc() string {
	return "blast radius & recovery, identical fault schedule, 3 modes"
}

// faultsScenario is one fault script shared by every mode.
type faultsScenario struct {
	name     string
	schedule func(opts Options) faults.Schedule
	watchdog bool // arm WST watchdog + auto-restart (Hermes modes only)
}

// crashSchedule: kill + restart the most-loaded worker, then a 6× slow
// worker and an accept-queue shrink inside the same fault window.
func crashSchedule(opts Options) faults.Schedule {
	w := int64(opts.Window)
	return faults.Schedule{Events: []faults.Event{
		{Kind: faults.Crash, AtNS: w, Worker: -1, Drop: true, RestartNS: w / 4},
		{Kind: faults.Slow, AtNS: w + w/8, Worker: -1, Factor: 6, DurNS: w / 4},
		{Kind: faults.ShrinkQueue, AtNS: w + w/4, Worker: -1, Cap: 2, DurNS: w / 8},
	}}
}

// hangSchedule: busy-spin the most-loaded worker for half a window, drop a
// quarter of the probes at the same time, and stall selmap syncs during
// the baseline phase (exercising the stale-bitmap hash fallback).
func hangSchedule(opts Options) faults.Schedule {
	w := int64(opts.Window)
	return faults.Schedule{Events: []faults.Event{
		{Kind: faults.SyncStall, AtNS: w/2 + w/8, Worker: -1, DurNS: w / 8},
		{Kind: faults.Hang, AtNS: w, Worker: -1, DurNS: w / 2},
		{Kind: faults.ProbeLoss, AtNS: w, Worker: -1, Prob: 0.25, DurNS: w / 4},
	}}
}

var faultsScenarios = []faultsScenario{
	{name: "crash", schedule: crashSchedule},
	{name: "hang", schedule: hangSchedule, watchdog: true},
}

// faultsRow is one cell's result.
type faultsRow struct {
	completed  uint64
	resets     uint64
	synDrops   uint64
	restarts   uint64
	detections uint64
	affected   int
	blastMS    float64
	p99        [3]float64 // base / fault / after, ms
	recoverMS  float64
	series     []float64 // p99 per window slice, ms
	delayed    [3]string // probes delayed/sent per phase
	injected   uint64
}

// faultsTraffic drives the workload: a fixed population of long-lived
// connections each streaming paced requests, plus a churn of short-lived
// connections arriving throughout — the churn is what exposes dispatch to
// dead or hung workers (reuseport keeps hashing into the outage; Hermes
// filters the victim out of the bitmap).
type faultsTraffic struct {
	lb       *l7lb.LB
	port     uint16
	endNS    int64
	interReq time.Duration
	cost     workload.Dist

	synDrops uint64
}

func (tr *faultsTraffic) establish(n int, window time.Duration) {
	eng := tr.lb.Eng
	rng := eng.Rand()
	for i := 0; i < n; i++ {
		i := i
		at := eng.Now() + int64(float64(window)*float64(i)/float64(n))
		eng.At(at, func() {
			tuple := kernel.FourTuple{
				SrcIP: rng.Uint32(), SrcPort: uint16(1024 + i%30000),
				DstIP: 0x0a00_0001, DstPort: tr.port,
			}
			if conn, ok := tr.lb.NS.DeliverSYN(tuple, nil); ok {
				ref := conn.Ref()
				phase := time.Duration(rng.Float64() * float64(tr.interReq))
				eng.After(phase, func() { tr.stream(ref) })
			} else {
				tr.synDrops++
			}
		})
	}
}

// stream sends one request and reschedules until the connection dies or
// the traffic window closes.
func (tr *faultsTraffic) stream(ref kernel.ConnRef) {
	eng := tr.lb.Eng
	conn := ref.Get()
	if conn == nil || conn.Sock().Closed() || eng.Now() >= tr.endNS {
		return
	}
	rng := eng.Rand()
	tr.lb.NS.DeliverData(conn, l7lb.Work{
		ArrivalNS: eng.Now(),
		Cost:      time.Duration(tr.cost.Sample(rng)),
		Size:      300, RespSize: 600,
		Tenant: tr.port,
	})
	gap := time.Duration(float64(tr.interReq) * (0.5 + rng.Float64()))
	eng.After(gap, func() { tr.stream(ref) })
}

// churn opens one short-lived connection every gap over [from, endNS),
// each sending reqs requests and closing.
func (tr *faultsTraffic) churn(from time.Duration, gap time.Duration, reqs int) {
	eng := tr.lb.Eng
	rng := eng.Rand()
	i := 0
	for at := int64(from); at < tr.endNS; at += int64(gap) {
		i++
		i := i
		eng.At(at, func() {
			tuple := kernel.FourTuple{
				SrcIP: rng.Uint32(), SrcPort: uint16(34000 + i%30000),
				DstIP: 0x0a00_0001, DstPort: tr.port,
			}
			conn, ok := tr.lb.NS.DeliverSYN(tuple, nil)
			if !ok {
				tr.synDrops++
				return
			}
			tr.churnReqs(conn.Ref(), reqs)
		})
	}
}

func (tr *faultsTraffic) churnReqs(ref kernel.ConnRef, remaining int) {
	eng := tr.lb.Eng
	conn := ref.Get()
	if remaining == 0 || conn == nil || conn.Sock().Closed() {
		return
	}
	rng := eng.Rand()
	tr.lb.NS.DeliverData(conn, l7lb.Work{
		ArrivalNS: eng.Now(),
		Cost:      time.Duration(tr.cost.Sample(rng)),
		Size:      300, RespSize: 600,
		Close:  remaining == 1,
		Tenant: tr.port,
	})
	eng.After(tr.interReq/4, func() { tr.churnReqs(ref, remaining-1) })
}

func (faultsExperiment) Cells(opts Options) []Cell {
	cells := make([]Cell, 0, len(faultsScenarios)*len(Table3Modes))
	for _, scen := range faultsScenarios {
		scen := scen
		for _, mode := range Table3Modes {
			mode := mode
			cells = append(cells, Cell{
				Name: scen.name + "/" + mode.String(),
				Run:  func() any { return runFaultsCell(opts, scen, mode) },
			})
		}
	}
	return cells
}

func runFaultsCell(opts Options, scen faultsScenario, mode l7lb.Mode) faultsRow {
	var (
		w          = opts.Window
		t1         = int64(w)        // fault instant
		faultEnd   = t1 + int64(w)/2 // end of the fault window
		trafficEnd = faultEnd + int64(w)
		threshNS   = int64(w) / 100 // "degraded" latency bound
		sliceNS    = int64(w) / 5   // recovery-series resolution
		baseStart  = int64(w) / 2
	)
	eng := newSimEngine(opts.Seed)
	cfg := l7lb.DefaultConfig(mode)
	cfg.BatchWidth = opts.Batch
	cfg.Workers = opts.Workers
	cfg.Ports = tenantPorts(1)
	cfg.RegisteredPorts = opts.RegisteredPorts
	cfg.Telemetry = opts.Metrics.Sink(scen.name + "/" + mode.String())
	cfg.Tracer = opts.Spans.Tracer(scen.name + "/" + mode.String())
	lb, err := l7lb.New(eng, cfg)
	if err != nil {
		panic(err)
	}

	var row faultsRow
	// Latency accounting, attributed to phases by request *arrival* so a
	// request stalled behind a hang is charged to the fault window it
	// arrived in, however late it completes.
	var phases [3]stats.Sample
	slices := make([]stats.Sample, (trafficEnd-baseStart)/sliceNS)
	affected := map[kernel.ConnID]struct{}{}
	lastDegradedNS := int64(-1)
	lb.OnResponse = func(conn kernel.ConnRef, work l7lb.Work) {
		if work.Probe {
			return
		}
		row.completed++
		latNS := eng.Now() - work.ArrivalNS
		switch at := work.ArrivalNS; {
		case at >= baseStart && at < t1:
			phases[0].AddDuration(latNS)
		case at >= t1 && at < faultEnd:
			phases[1].AddDuration(latNS)
		case at >= faultEnd && at < trafficEnd:
			phases[2].AddDuration(latNS)
		}
		if s := (work.ArrivalNS - baseStart) / sliceNS; s >= 0 && s < int64(len(slices)) {
			slices[s].AddDuration(latNS)
		}
		if work.ArrivalNS >= t1 && latNS > threshNS {
			affected[conn.ID()] = struct{}{}
			row.blastMS += float64(latNS-threshNS) / 1e6
			if work.ArrivalNS > lastDegradedNS {
				lastDegradedNS = work.ArrivalNS
			}
		}
	}
	lb.OnConnReset = func(conn kernel.ConnRef) {
		row.resets++
		affected[conn.ID()] = struct{}{}
	}
	lb.Start()

	tr := &faultsTraffic{
		lb: lb, port: cfg.Ports[0], endNS: trafficEnd,
		interReq: w / 125,
		cost:     workload.Exp{MeanVal: 25_000},
	}
	nSteady := int(800 * opts.RateScale)
	if nSteady < 48 {
		nSteady = 48
	}
	tr.establish(nSteady, w/2)
	tr.churn(w/2, w/250, 3)

	inj := faults.NewInjector(lb, scen.schedule(opts), opts.Seed)
	inj.StaleFallback = w / 16
	inj.Instrument(cfg.Telemetry)
	inj.InstrumentTrace(cfg.Tracer.FaultTrace())
	inj.Start()

	var dog *faults.Watchdog
	if scen.watchdog {
		// NewWatchdog returns nil for the baselines (no WST to scan) —
		// exactly the recovery gap this experiment quantifies.
		if dog = faults.NewWatchdog(lb, w/100); dog != nil {
			dog.AutoRestart = true
			dog.RestartDelay = w / 50
			dog.Instrument(cfg.Telemetry)
			dog.InstrumentTrace(cfg.Tracer.FaultTrace())
			dog.Start(time.Duration(trafficEnd))
		}
	}

	// One prober per phase: before / during / after the fault window
	// (Fig. 11-style, with the delay driven by the injected hang).
	probers := [3]*probe.WorkerProber{}
	spans := [3][2]int64{{baseStart, t1}, {t1, faultEnd}, {faultEnd, trafficEnd}}
	for i := range probers {
		i := i
		p := probe.NewWorkerProber(lb, cfg.Ports[0], w/100)
		inj.AttachProber(p)
		probers[i] = p
		eng.At(spans[i][0], func() { p.Run(time.Duration(spans[i][1] - spans[i][0])) })
	}

	eng.RunUntil(trafficEnd + int64(opts.Drain))

	row.synDrops = tr.synDrops
	row.injected = inj.Injected
	row.restarts = inj.Restarts
	if dog != nil {
		row.detections = dog.Detections
		row.restarts += dog.Restarts
	}
	row.affected = len(affected)
	for i := range phases {
		row.p99[i] = phases[i].Percentile(99)
	}
	if lastDegradedNS >= 0 {
		row.recoverMS = float64(lastDegradedNS-t1) / 1e6
	}
	row.series = make([]float64, len(slices))
	for i := range slices {
		row.series[i] = slices[i].Percentile(99)
	}
	for i, p := range probers {
		row.delayed[i] = fmt.Sprintf("%d/%d", p.DelayedCount(), p.Sent)
	}
	return row
}

func (faultsExperiment) Render(opts Options, results []any) string {
	var out string
	rows := map[string]faultsRow{}
	i := 0
	for _, scen := range faultsScenarios {
		for _, mode := range Table3Modes {
			rows[scen.name+"/"+mode.String()] = results[i].(faultsRow)
			i++
		}
	}
	for _, scen := range faultsScenarios {
		out += fmt.Sprintf("schedule[%s]: %s\n", scen.name, scen.schedule(opts).String())
	}
	for _, scen := range faultsScenarios {
		tb := stats.NewTable(
			fmt.Sprintf("Blast radius — %s scenario (identical schedule, all modes)", scen.name),
			"mode", "completed", "resets", "SYN drops", "restarts", "detects",
			"affected", "blast conn-ms", "p99 base", "p99 fault", "p99 after", "recovery ms")
		for _, mode := range Table3Modes {
			r := rows[scen.name+"/"+mode.String()]
			tb.AddRow(mode.String(), r.completed, r.resets, r.synDrops, r.restarts,
				r.detections, r.affected, fmt.Sprintf("%.1f", r.blastMS),
				fmt.Sprintf("%.2f", r.p99[0]), fmt.Sprintf("%.2f", r.p99[1]),
				fmt.Sprintf("%.2f", r.p99[2]), fmt.Sprintf("%.1f", r.recoverMS))
		}
		out += tb.Render()
	}

	pt := stats.NewTable("Hang scenario — delayed probes by phase (Fig. 11-style)",
		"mode", "before", "during", "after")
	for _, mode := range Table3Modes {
		r := rows["hang/"+mode.String()]
		pt.AddRow(mode.String(), r.delayed[0], r.delayed[1], r.delayed[2])
	}
	out += pt.Render()

	st := stats.NewTable(fmt.Sprintf("Hang scenario — p99 (ms) per %v window", opts.Window/5),
		"mode", "w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7", "w8", "w9")
	for _, mode := range Table3Modes {
		r := rows["hang/"+mode.String()]
		vals := make([]any, 0, 11)
		vals = append(vals, mode.String())
		for i := 0; i < 10 && i < len(r.series); i++ {
			vals = append(vals, fmt.Sprintf("%.2f", r.series[i]))
		}
		st.AddRow(vals...)
	}
	out += st.Render()

	excl := rows["hang/"+l7lb.ModeExclusive.String()]
	herm := rows["hang/"+l7lb.ModeHermes.String()]
	out += fmt.Sprintf("hang blast radius: exclusive %.0f conn-ms vs hermes %.0f conn-ms "+
		"(§7: the watchdog converts a long hang into a fast restart; baselines stall the full hang)\n",
		excl.blastMS, herm.blastMS)
	return out
}

func init() { Register(faultsExperiment{}) }

// Faults runs the fault-injection experiment with the given options.
func Faults(opts Options) string {
	return RunExperiment(faultsExperiment{}, opts)
}
