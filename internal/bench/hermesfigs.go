package bench

import (
	"fmt"
	"math"
	"time"

	"hermes/internal/l7lb"
	"hermes/internal/probe"
	"hermes/internal/stats"
	"hermes/internal/workload"
)

// measureDelayedRate runs the lag-effect scenario (long-lived connections,
// then a synchronized burst) with a prober and returns the fraction of
// probes delayed beyond 200 ms. Under exclusive wakeup the established
// connections concentrate on a few workers, so the burst swamps them for
// hundreds of milliseconds and probes arriving meanwhile queue behind it;
// Hermes spreads the same connections and absorbs the burst.
func measureDelayedRate(opts Options, mode l7lb.Mode) float64 {
	eng := newSimEngine(opts.Seed)
	cfg := l7lb.DefaultConfig(mode)
	cfg.Workers = opts.Workers
	cfg.Ports = tenantPorts(1)
	cfg.RegisteredPorts = opts.RegisteredPorts
	lb, err := l7lb.New(eng, cfg)
	if err != nil {
		panic(err)
	}
	lb.Start()

	spec := workload.DefaultSurge(cfg.Ports[0])
	spec.Conns = int(12_000 * opts.RateScale)
	spec.EstablishWindow = time.Second
	spec.QuietUntil = 1500 * time.Millisecond
	// Size the burst under aggregate capacity (~60%): a balanced fleet
	// absorbs it, while exclusive's one concentrated worker drowns in it —
	// the paper's P999 30ms spike scenario.
	spec.BurstWindow = 300 * time.Millisecond
	spec.BurstCostNS = workload.Exp{MeanVal: 55 * 1000}
	spec.BurstInterReqNS = workload.Exp{MeanVal: 5 * 1000 * 1000}
	sg := workload.NewSurge(lb, spec)
	sg.Run()

	p := probe.NewWorkerProber(lb, cfg.Ports[0], 5*time.Millisecond)
	p.Run(4 * time.Second)
	eng.RunUntil(int64(8 * time.Second))
	return p.DelayedRate()
}

// Fig11 reproduces Fig. 11: daily delayed probes before/after the Hermes
// rollout in two regions with different connection drain speeds. The
// per-mode delay rates are measured in simulation; the canary timeline
// converts them into the daily series.
func Fig11(opts Options) string {
	var rates [2]float64
	rollout := []l7lb.Mode{l7lb.ModeExclusive, l7lb.ModeHermes}
	forEachCell(opts.Parallel, len(rollout), func(i int) {
		rates[i] = measureDelayedRate(opts, rollout[i])
	})
	oldRate, newRate := rates[0], rates[1]
	if newRate >= oldRate {
		// Guard for pathological seeds; the shape requires old > new.
		newRate = oldRate / 500
	}

	out := fmt.Sprintf("measured delayed-probe rate: exclusive=%.5f hermes=%.6f\n", oldRate, newRate)
	for _, rg := range []struct {
		name     string
		halfLife float64
	}{
		{"Region1 (slow drain: IoT/cloud clients)", 3.0},
		{"Region2 (fast drain: mobile clients)", 0.4},
	} {
		m := probe.CanaryModel{
			DaysBefore:        4,
			RolloutDays:       3,
			DaysAfter:         14,
			ProbesPerDay:      2_000_000,
			OldDelayedRate:    oldRate,
			NewDelayedRate:    newRate,
			DrainHalfLifeDays: rg.halfLife,
		}
		series := m.Series()
		tb := stats.NewTable("Fig 11 — "+rg.name, "day", "delayed probes", "old-version share")
		for _, pt := range series {
			tb.AddRow(pt.Day, fmt.Sprintf("%.0f", pt.Delayed), fmt.Sprintf("%.3f", pt.OldShare))
		}
		before := series[0].Delayed
		after := series[len(series)-1].Delayed
		out += tb.Render()
		out += fmt.Sprintf("last-day reduction: %.2f%%; steady state after full drain: %.2f%% (paper: 99.8%% / 99%%)\n\n",
			100*(1-after/before), 100*(1-newRate/oldRate))
	}
	return out
}

// Fig12 reproduces Fig. 12: normalized unit infrastructure cost per month
// before/after the rollout. Worker hangs forced a 30% CPU safety threshold;
// Hermes raises it to an effective 37% (bounded below 40% by cross-AZ
// disaster-recovery reserves, §6.2), so the same traffic needs fewer VMs.
func Fig12(opts Options) string {
	const (
		months        = 12
		rolloutMonth  = 4
		rampMonths    = 3
		safetyBefore  = 0.30
		safetyAfter   = 0.37
		baseTraffic   = 400.0 // Gbps, arbitrary unit
		monthlyGrowth = 1.03
		vmCapacity    = 2.0 // Gbps at 100% CPU
	)
	tb := stats.NewTable("Fig 12 — normalized unit cost of cloud infra",
		"month", "traffic (Gbps)", "safety", "VMs", "unit cost (norm)")
	var base float64
	minUnit := math.Inf(1)
	for m := 0; m < months; m++ {
		traffic := baseTraffic * math.Pow(monthlyGrowth, float64(m))
		safety := safetyBefore
		if m >= rolloutMonth {
			ramp := float64(m-rolloutMonth+1) / rampMonths
			if ramp > 1 {
				ramp = 1
			}
			safety = safetyBefore + (safetyAfter-safetyBefore)*ramp
		}
		vms := math.Ceil(traffic / (vmCapacity * safety))
		unit := vms / traffic
		if m == 0 {
			base = unit
		}
		norm := unit / base
		if norm < minUnit {
			minUnit = norm
		}
		tb.AddRow(m, fmt.Sprintf("%.0f", traffic), fmt.Sprintf("%.2f", safety),
			fmt.Sprintf("%.0f", vms), fmt.Sprintf("%.3f", norm))
	}
	return tb.Render() + fmt.Sprintf("peak unit-cost reduction: %.1f%% (paper: 18.9%%)\n", 100*(1-minUnit))
}

// Fig13 reproduces Fig. 13: the standard deviation of per-worker CPU
// utilization and connection counts across two (compressed) days of
// diurnally modulated production-like traffic, for the three modes.
func Fig13(opts Options) string {
	tb := stats.NewTable("Fig 13 — balance over 2 compressed days",
		"mode", "CPU util stddev", "#conns stddev")
	ports := tenantPorts(opts.Tenants)
	// Two "days", each compressed to 2× the window budget, with a sinusoidal
	// diurnal rate profile sliced into phased generator windows.
	day := 2 * opts.Window
	total := 2 * day
	const slices = 16
	sliceDur := total / slices
	type fig13Row struct{ cpu, conn string }
	rows := make([]fig13Row, len(Table3Modes))
	forEachCell(opts.Parallel, len(Table3Modes), func(mi int) {
		mode := Table3Modes[mi]
		eng := newSimEngine(opts.Seed)
		cfg := l7lb.DefaultConfig(mode)
		cfg.Workers = opts.Workers
		cfg.Ports = ports
		cfg.RegisteredPorts = opts.RegisteredPorts
		lb, err := l7lb.New(eng, cfg)
		if err != nil {
			panic(err)
		}
		lb.Start()

		region := workload.Regions()[0]
		for s := 0; s < slices; s++ {
			// Two full diurnal cycles across the run.
			level := 0.55 + 0.45*math.Sin(4*math.Pi*float64(s)/slices)
			if level < 0.1 {
				level = 0.1
			}
			for _, sp := range region.Specs(ports, 60_000*opts.RateScale*level) {
				g, err := workload.NewGenerator(lb, sp)
				if err != nil {
					panic(err)
				}
				g.RunWindow(time.Duration(s)*sliceDur, time.Duration(s+1)*sliceDur)
			}
		}

		var cpuSD, connSD stats.Sample
		prevBusy := make([]int64, len(lb.Workers))
		utils := make([]float64, len(lb.Workers))
		conns := make([]float64, len(lb.Workers))
		tick := 50 * time.Millisecond
		for t := tick; t <= total; t += tick {
			eng.RunUntil(int64(t))
			for i, w := range lb.Workers {
				b := w.BusyNS(eng.Now())
				utils[i] = float64(b-prevBusy[i]) / float64(tick)
				prevBusy[i] = b
				conns[i] = float64(w.OpenConns())
			}
			_, sd := stats.MeanStddev(utils)
			cpuSD.Add(sd)
			_, sd = stats.MeanStddev(conns)
			connSD.Add(sd)
		}
		rows[mi] = fig13Row{
			cpu:  fmt.Sprintf("%.1f%%", cpuSD.Mean()*100),
			conn: fmt.Sprintf("%.1f", connSD.Mean()),
		}
	})
	for mi, mode := range Table3Modes {
		tb.AddRow(mode.String(), rows[mi].cpu, rows[mi].conn)
	}
	return tb.Render() + "paper: CPU SD 26% / 2.7% / 2.7%; conn SD 3200 / 50 / 20 (exclusive/reuseport/hermes)\n"
}

// Fig14 reproduces Fig. 14: the fraction of workers passing the coarse
// filter and the scheduler call frequency as load rises.
func Fig14(opts Options) string {
	tb := stats.NewTable("Fig 14 — coarse filter pass ratio and scheduling frequency vs load",
		"load", "pass ratio", "scheduler calls/s (k)", "kernel syncs/s (k)")
	ports := tenantPorts(opts.Tenants)
	// Region2's case-4/case-2 heavy mix makes worker load genuinely
	// uneven, so the coarse filter has something to filter.
	levels := []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5}
	runs := make([]*RunResult, len(levels))
	forEachCell(opts.Parallel, len(levels), func(i int) {
		specs := workload.Regions()[1].Specs(ports, 55_000*opts.RateScale*levels[i])
		run, err := Run(RunConfig{
			Mode:    l7lb.ModeHermes,
			Workers: opts.Workers,
			Ports:   ports,
			Seed:    opts.Seed,
			Window:  opts.Window,
			Drain:   opts.Drain / 2,
			Specs:   specs,
		})
		if err != nil {
			panic(err)
		}
		runs[i] = run
	})
	for i, level := range levels {
		st := runs[i].LB.Ctl.Stats()
		elapsed := (opts.Window + opts.Drain/2).Seconds()
		tb.AddRow(fmt.Sprintf("%.2fx", level),
			fmt.Sprintf("%.2f", st.AvgPassed/float64(opts.Workers)),
			fmt.Sprintf("%.1f", float64(st.ScheduleCalls)/elapsed/1000),
			fmt.Sprintf("%.1f", float64(st.Syncs)/elapsed/1000))
	}
	return tb.Render()
}

// Fig15 reproduces Fig. 15: sweeping the filter offset θ/Avg and reporting
// average P99 latency and throughput; the paper finds 0.5 optimal.
func Fig15(opts Options) string {
	tb := stats.NewTable("Fig 15 — effect of offset θ/Avg",
		"θ/Avg", "avg (ms)", "P99 (ms)", "throughput (kRPS)")
	ports := tenantPorts(opts.Tenants)
	// Hang-prone Region2 mix at ~70% utilization: small θ concentrates new
	// connections on the few below-average workers; large θ admits loaded
	// ones. Both ends hurt tail latency (Fig. 15's U-shape).
	specs := workload.Regions()[1].Specs(ports, 60_000*opts.RateScale)
	thetas := []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.5}
	runs := make([]*RunResult, len(thetas))
	forEachCell(opts.Parallel, len(thetas), func(i int) {
		theta := thetas[i]
		run, err := Run(RunConfig{
			Mode:    l7lb.ModeHermes,
			Workers: opts.Workers,
			Ports:   ports,
			Seed:    opts.Seed,
			Window:  opts.Window,
			Drain:   opts.Drain / 2,
			Specs:   specs,
			Mutate: func(c *l7lb.Config) {
				c.Hermes.ThetaFrac = theta
			},
		})
		if err != nil {
			panic(err)
		}
		runs[i] = run
	})
	for i, theta := range thetas {
		run := runs[i]
		tb.AddRow(fmt.Sprintf("%.2f", theta), stats.FormatMS(run.AvgMS),
			stats.FormatMS(run.P99MS), fmt.Sprintf("%.1f", run.ThroughputKRPS))
	}
	return tb.Render()
}
