package bench

import (
	"fmt"
	"math"
	"time"

	"hermes/internal/l7lb"
	"hermes/internal/probe"
	"hermes/internal/stats"
	"hermes/internal/workload"
)

func init() {
	Register(fig11Experiment{})
	Register(Seq("fig12",
		"normalized unit infra cost before/after Hermes", Fig12))
	Register(fig13Experiment{})
	Register(fig14Experiment{})
	Register(fig15Experiment{})
}

// measureDelayedRate runs the lag-effect scenario (long-lived connections,
// then a synchronized burst) with a prober and returns the fraction of
// probes delayed beyond 200 ms. Under exclusive wakeup the established
// connections concentrate on a few workers, so the burst swamps them for
// hundreds of milliseconds and probes arriving meanwhile queue behind it;
// Hermes spreads the same connections and absorbs the burst.
func measureDelayedRate(opts Options, mode l7lb.Mode) float64 {
	eng := newSimEngine(opts.Seed)
	cfg := l7lb.DefaultConfig(mode)
	cfg.BatchWidth = opts.Batch
	cfg.Workers = opts.Workers
	cfg.Ports = tenantPorts(1)
	cfg.RegisteredPorts = opts.RegisteredPorts
	cfg.Telemetry = opts.Metrics.Sink(mode.String())
	cfg.Tracer = opts.Spans.Tracer(mode.String())
	lb, err := l7lb.New(eng, cfg)
	if err != nil {
		panic(err)
	}
	lb.Start()

	spec := workload.DefaultSurge(cfg.Ports[0])
	spec.Conns = int(12_000 * opts.RateScale)
	spec.EstablishWindow = time.Second
	spec.QuietUntil = 1500 * time.Millisecond
	// Size the burst under aggregate capacity (~60%): a balanced fleet
	// absorbs it, while exclusive's one concentrated worker drowns in it —
	// the paper's P999 30ms spike scenario.
	spec.BurstWindow = 300 * time.Millisecond
	spec.BurstCostNS = workload.Exp{MeanVal: 55 * 1000}
	spec.BurstInterReqNS = workload.Exp{MeanVal: 5 * 1000 * 1000}
	sg := workload.NewSurge(lb, spec)
	sg.Run()

	p := probe.NewWorkerProber(lb, cfg.Ports[0], 5*time.Millisecond)
	p.Run(4 * time.Second)
	eng.RunUntil(int64(8 * time.Second))
	return p.DelayedRate()
}

// fig11Experiment reproduces Fig. 11: daily delayed probes before/after
// the Hermes rollout in two regions with different connection drain
// speeds. The per-mode delay rates are measured in simulation (one cell
// per rollout stage); the canary timeline converts them into the daily
// series.
type fig11Experiment struct{}

func (fig11Experiment) Name() string { return "fig11" }
func (fig11Experiment) Desc() string {
	return "delayed probes per day before/after Hermes rollout"
}

func (fig11Experiment) Cells(opts Options) []Cell {
	rollout := []l7lb.Mode{l7lb.ModeExclusive, l7lb.ModeHermes}
	cells := make([]Cell, len(rollout))
	for i, mode := range rollout {
		mode := mode
		cells[i] = Cell{Name: mode.String(), Run: func() any {
			return measureDelayedRate(opts, mode)
		}}
	}
	return cells
}

func (fig11Experiment) Render(opts Options, results []any) string {
	oldRate, newRate := results[0].(float64), results[1].(float64)
	if newRate >= oldRate {
		// Guard for pathological seeds; the shape requires old > new.
		newRate = oldRate / 500
	}

	out := fmt.Sprintf("measured delayed-probe rate: exclusive=%.5f hermes=%.6f\n", oldRate, newRate)
	for _, rg := range []struct {
		name     string
		halfLife float64
	}{
		{"Region1 (slow drain: IoT/cloud clients)", 3.0},
		{"Region2 (fast drain: mobile clients)", 0.4},
	} {
		m := probe.CanaryModel{
			DaysBefore:        4,
			RolloutDays:       3,
			DaysAfter:         14,
			ProbesPerDay:      2_000_000,
			OldDelayedRate:    oldRate,
			NewDelayedRate:    newRate,
			DrainHalfLifeDays: rg.halfLife,
		}
		series := m.Series()
		tb := stats.NewTable("Fig 11 — "+rg.name, "day", "delayed probes", "old-version share")
		for _, pt := range series {
			tb.AddRow(pt.Day, fmt.Sprintf("%.0f", pt.Delayed), fmt.Sprintf("%.3f", pt.OldShare))
		}
		before := series[0].Delayed
		after := series[len(series)-1].Delayed
		out += tb.Render()
		out += fmt.Sprintf("last-day reduction: %.2f%%; steady state after full drain: %.2f%% (paper: 99.8%% / 99%%)\n\n",
			100*(1-after/before), 100*(1-newRate/oldRate))
	}
	return out
}

// Fig11 runs the fig11 experiment sequentially (library/benchmark entry point).
func Fig11(opts Options) string { return RunExperiment(fig11Experiment{}, opts) }

// Fig12 reproduces Fig. 12: normalized unit infrastructure cost per month
// before/after the rollout. Worker hangs forced a 30% CPU safety threshold;
// Hermes raises it to an effective 37% (bounded below 40% by cross-AZ
// disaster-recovery reserves, §6.2), so the same traffic needs fewer VMs.
func Fig12(opts Options) string {
	const (
		months        = 12
		rolloutMonth  = 4
		rampMonths    = 3
		safetyBefore  = 0.30
		safetyAfter   = 0.37
		baseTraffic   = 400.0 // Gbps, arbitrary unit
		monthlyGrowth = 1.03
		vmCapacity    = 2.0 // Gbps at 100% CPU
	)
	tb := stats.NewTable("Fig 12 — normalized unit cost of cloud infra",
		"month", "traffic (Gbps)", "safety", "VMs", "unit cost (norm)")
	var base float64
	minUnit := math.Inf(1)
	for m := 0; m < months; m++ {
		traffic := baseTraffic * math.Pow(monthlyGrowth, float64(m))
		safety := safetyBefore
		if m >= rolloutMonth {
			ramp := float64(m-rolloutMonth+1) / rampMonths
			if ramp > 1 {
				ramp = 1
			}
			safety = safetyBefore + (safetyAfter-safetyBefore)*ramp
		}
		vms := math.Ceil(traffic / (vmCapacity * safety))
		unit := vms / traffic
		if m == 0 {
			base = unit
		}
		norm := unit / base
		if norm < minUnit {
			minUnit = norm
		}
		tb.AddRow(m, fmt.Sprintf("%.0f", traffic), fmt.Sprintf("%.2f", safety),
			fmt.Sprintf("%.0f", vms), fmt.Sprintf("%.3f", norm))
	}
	return tb.Render() + fmt.Sprintf("peak unit-cost reduction: %.1f%% (paper: 18.9%%)\n", 100*(1-minUnit))
}

// fig13Experiment reproduces Fig. 13: the standard deviation of
// per-worker CPU utilization and connection counts across two
// (compressed) days of diurnally modulated production-like traffic, one
// cell per mode.
type fig13Experiment struct{}

func (fig13Experiment) Name() string { return "fig13" }
func (fig13Experiment) Desc() string {
	return "stddev of CPU util and #conns across workers, 3 modes"
}

type fig13Row struct{ cpu, conn string }

func (fig13Experiment) Cells(opts Options) []Cell {
	ports := tenantPorts(opts.Tenants)
	// Two "days", each compressed to 2× the window budget, with a sinusoidal
	// diurnal rate profile sliced into phased generator windows.
	day := 2 * opts.Window
	total := 2 * day
	const slices = 16
	sliceDur := total / slices
	cells := make([]Cell, len(Table3Modes))
	for mi, mode := range Table3Modes {
		mode := mode
		cells[mi] = Cell{Name: mode.String(), Run: func() any {
			eng := newSimEngine(opts.Seed)
			cfg := l7lb.DefaultConfig(mode)
			cfg.BatchWidth = opts.Batch
			cfg.Workers = opts.Workers
			cfg.Ports = ports
			cfg.RegisteredPorts = opts.RegisteredPorts
			cfg.Telemetry = opts.Metrics.Sink(mode.String())
			cfg.Tracer = opts.Spans.Tracer(mode.String())
			lb, err := l7lb.New(eng, cfg)
			if err != nil {
				panic(err)
			}
			lb.Start()

			region := workload.Regions()[0]
			for s := 0; s < slices; s++ {
				// Two full diurnal cycles across the run.
				level := 0.55 + 0.45*math.Sin(4*math.Pi*float64(s)/slices)
				if level < 0.1 {
					level = 0.1
				}
				for _, sp := range region.Specs(ports, 60_000*opts.RateScale*level) {
					g, err := workload.NewGenerator(lb, sp)
					if err != nil {
						panic(err)
					}
					g.RunWindow(time.Duration(s)*sliceDur, time.Duration(s+1)*sliceDur)
				}
			}

			var cpuSD, connSD stats.Sample
			prevBusy := make([]int64, len(lb.Workers))
			utils := make([]float64, len(lb.Workers))
			conns := make([]float64, len(lb.Workers))
			tick := 50 * time.Millisecond
			for t := tick; t <= total; t += tick {
				eng.RunUntil(int64(t))
				for i, w := range lb.Workers {
					b := w.BusyNS(eng.Now())
					utils[i] = float64(b-prevBusy[i]) / float64(tick)
					prevBusy[i] = b
					conns[i] = float64(w.OpenConns())
				}
				_, sd := stats.MeanStddev(utils)
				cpuSD.Add(sd)
				_, sd = stats.MeanStddev(conns)
				connSD.Add(sd)
			}
			return fig13Row{
				cpu:  fmt.Sprintf("%.1f%%", cpuSD.Mean()*100),
				conn: fmt.Sprintf("%.1f", connSD.Mean()),
			}
		}}
	}
	return cells
}

func (fig13Experiment) Render(opts Options, results []any) string {
	tb := stats.NewTable("Fig 13 — balance over 2 compressed days",
		"mode", "CPU util stddev", "#conns stddev")
	for mi, mode := range Table3Modes {
		row := results[mi].(fig13Row)
		tb.AddRow(mode.String(), row.cpu, row.conn)
	}
	return tb.Render() + "paper: CPU SD 26% / 2.7% / 2.7%; conn SD 3200 / 50 / 20 (exclusive/reuseport/hermes)\n"
}

// Fig13 runs the fig13 experiment sequentially (library/benchmark entry point).
func Fig13(opts Options) string { return RunExperiment(fig13Experiment{}, opts) }

// fig14Experiment reproduces Fig. 14: the fraction of workers passing the
// coarse filter and the scheduler call frequency as load rises — one cell
// per load level.
type fig14Experiment struct{}

func (fig14Experiment) Name() string { return "fig14" }
func (fig14Experiment) Desc() string {
	return "coarse-filter pass ratio and scheduler frequency vs load"
}

var fig14Levels = []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5}

func (fig14Experiment) Cells(opts Options) []Cell {
	ports := tenantPorts(opts.Tenants)
	// Region2's case-4/case-2 heavy mix makes worker load genuinely
	// uneven, so the coarse filter has something to filter.
	cells := make([]Cell, len(fig14Levels))
	for i, level := range fig14Levels {
		level := level
		name := fmt.Sprintf("load%.2fx", level)
		cells[i] = Cell{Name: name, Run: func() any {
			specs := workload.Regions()[1].Specs(ports, 55_000*opts.RateScale*level)
			run, err := Run(RunConfig{
				Batch:     opts.Batch,
				Mode:      l7lb.ModeHermes,
				Workers:   opts.Workers,
				Ports:     ports,
				Seed:      opts.Seed,
				Window:    opts.Window,
				Drain:     opts.Drain / 2,
				Specs:     specs,
				Telemetry: opts.Metrics.Sink(name),
				Tracer:    opts.Spans.Tracer(name),
			})
			if err != nil {
				panic(err)
			}
			return run
		}}
	}
	return cells
}

func (fig14Experiment) Render(opts Options, results []any) string {
	tb := stats.NewTable("Fig 14 — coarse filter pass ratio and scheduling frequency vs load",
		"load", "pass ratio", "scheduler calls/s (k)", "kernel syncs/s (k)")
	for i, level := range fig14Levels {
		st := results[i].(*RunResult).LB.Ctl.Stats()
		elapsed := (opts.Window + opts.Drain/2).Seconds()
		tb.AddRow(fmt.Sprintf("%.2fx", level),
			fmt.Sprintf("%.2f", st.AvgPassed/float64(opts.Workers)),
			fmt.Sprintf("%.1f", float64(st.ScheduleCalls)/elapsed/1000),
			fmt.Sprintf("%.1f", float64(st.Syncs)/elapsed/1000))
	}
	return tb.Render()
}

// Fig14 runs the fig14 experiment sequentially (library/benchmark entry point).
func Fig14(opts Options) string { return RunExperiment(fig14Experiment{}, opts) }

// fig15Experiment reproduces Fig. 15: sweeping the filter offset θ/Avg
// and reporting average P99 latency and throughput; the paper finds 0.5
// optimal. One cell per sweep point.
type fig15Experiment struct{}

func (fig15Experiment) Name() string { return "fig15" }
func (fig15Experiment) Desc() string {
	return "offset θ/Avg sweep: P99 and throughput"
}

var fig15Thetas = []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.5}

func (fig15Experiment) Cells(opts Options) []Cell {
	ports := tenantPorts(opts.Tenants)
	// Hang-prone Region2 mix at ~70% utilization: small θ concentrates new
	// connections on the few below-average workers; large θ admits loaded
	// ones. Both ends hurt tail latency (Fig. 15's U-shape).
	specs := workload.Regions()[1].Specs(ports, 60_000*opts.RateScale)
	cells := make([]Cell, len(fig15Thetas))
	for i, theta := range fig15Thetas {
		theta := theta
		name := fmt.Sprintf("theta%.2f", theta)
		cells[i] = Cell{Name: name, Run: func() any {
			run, err := Run(RunConfig{
				Batch:     opts.Batch,
				Mode:      l7lb.ModeHermes,
				Workers:   opts.Workers,
				Ports:     ports,
				Seed:      opts.Seed,
				Window:    opts.Window,
				Drain:     opts.Drain / 2,
				Specs:     specs,
				Telemetry: opts.Metrics.Sink(name),
				Tracer:    opts.Spans.Tracer(name),
				Mutate: func(c *l7lb.Config) {
					c.Hermes.ThetaFrac = theta
				},
			})
			if err != nil {
				panic(err)
			}
			return run
		}}
	}
	return cells
}

func (fig15Experiment) Render(opts Options, results []any) string {
	tb := stats.NewTable("Fig 15 — effect of offset θ/Avg",
		"θ/Avg", "avg (ms)", "P99 (ms)", "throughput (kRPS)")
	for i, theta := range fig15Thetas {
		run := results[i].(*RunResult)
		tb.AddRow(fmt.Sprintf("%.2f", theta), stats.FormatMS(run.AvgMS),
			stats.FormatMS(run.P99MS), fmt.Sprintf("%.1f", run.ThroughputKRPS))
	}
	return tb.Render()
}

// Fig15 runs the fig15 experiment sequentially (library/benchmark entry point).
func Fig15(opts Options) string { return RunExperiment(fig15Experiment{}, opts) }
