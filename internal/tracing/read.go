package tracing

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// ReadSpans parses a span dump in either export format (sniffed from the
// content: a Chrome trace is one object with "traceEvents"; JSONL is a meta
// line followed by span lines). Spans come back in file order.
func ReadSpans(r io.Reader) ([]Span, Meta, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, Meta{}, err
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		HermesMeta  Meta              `json:"hermesMeta"`
	}
	if json.Unmarshal(buf, &chrome) == nil && chrome.TraceEvents != nil {
		spans, err := readChromeEvents(chrome.TraceEvents)
		return spans, chrome.HermesMeta, err
	}
	return readJSONL(buf)
}

func readJSONL(buf []byte) ([]Span, Meta, error) {
	sc := bufio.NewScanner(bytes.NewReader(buf))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var meta Meta
	var spans []Span
	lineNo := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		lineNo++
		if lineNo == 1 {
			if err := json.Unmarshal(line, &meta); err != nil {
				return nil, Meta{}, fmt.Errorf("meta line: %w", err)
			}
			if meta.FormatVersion != 1 {
				return nil, Meta{}, fmt.Errorf("meta line: unsupported hermes_spans version %d", meta.FormatVersion)
			}
			continue
		}
		var js jsonlSpan
		if err := json.Unmarshal(line, &js); err != nil {
			return nil, Meta{}, fmt.Errorf("line %d: %w", lineNo, err)
		}
		kind, ok := KindFromName(js.Kind)
		if !ok {
			return nil, Meta{}, fmt.Errorf("line %d: unknown kind %q", lineNo, js.Kind)
		}
		spans = append(spans, Span{
			Conn: js.Conn, Worker: js.Worker, Kind: kind,
			StartNS: js.StartNS, EndNS: js.EndNS, Arg: js.Arg, Arg2: js.Arg2,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, Meta{}, err
	}
	if lineNo == 0 {
		return nil, Meta{}, fmt.Errorf("empty span dump")
	}
	return spans, meta, nil
}

// chromeInEvent is the decoded side of chromeEvent.
type chromeInEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat"`
	ID   string         `json:"id"`
	Args map[string]any `json:"args"`
}

func nsOf(usec float64) int64 { return int64(math.Round(usec * 1e3)) }

func argInt(args map[string]any, key string) int64 {
	if v, ok := args[key].(float64); ok {
		return int64(math.Round(v))
	}
	return 0
}

func argBool(args map[string]any, key string) int64 {
	if v, ok := args[key].(bool); ok && v {
		return 1
	}
	return 0
}

func argVia(args map[string]any) (int64, error) {
	name, _ := args["via"].(string)
	via, ok := ViaFromName(name)
	if !ok {
		return 0, fmt.Errorf("unknown via %q", name)
	}
	return int64(via), nil
}

// readChromeEvents reconstructs spans from a Chrome trace we wrote:
// metadata events are skipped, async begin/end pairs are rejoined by
// (cat, id, name), and kind-specific args invert spanArgs.
func readChromeEvents(events []json.RawMessage) ([]Span, error) {
	var spans []Span
	open := map[string]Span{} // pending async begins, keyed by id+name
	for i, raw := range events {
		var ev chromeInEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		if ev.Ph == "M" {
			continue
		}
		if ev.Ph == "e" {
			key := ev.ID + "\x00" + ev.Name
			s, ok := open[key]
			if !ok {
				return nil, fmt.Errorf("event %d: async end %q/%q without begin", i, ev.ID, ev.Name)
			}
			delete(open, key)
			s.EndNS = nsOf(ev.Ts)
			spans = append(spans, s)
			continue
		}
		kind, ok := KindFromName(ev.Name)
		if !ok {
			return nil, fmt.Errorf("event %d: unknown kind %q", i, ev.Name)
		}
		s := Span{Kind: kind, Worker: int32(ev.Tid) - 1, StartNS: nsOf(ev.Ts)}
		if ev.Tid == 0 {
			s.Worker = KernelTrack
		}
		s.Conn = uint64(argInt(ev.Args, "conn"))
		switch kind {
		case KindSYN:
			via, err := argVia(ev.Args)
			if err != nil {
				return nil, fmt.Errorf("event %d: %w", i, err)
			}
			s.Arg, s.Arg2 = via, argInt(ev.Args, "worker")
		case KindDrop:
			via, err := argVia(ev.Args)
			if err != nil {
				return nil, fmt.Errorf("event %d: %w", i, err)
			}
			s.Arg, s.Arg2 = via, argBool(ev.Args, "overflow")
		case KindNotifyWait:
			s.Arg = argBool(ev.Args, "probe")
		case KindServe:
			s.Arg, s.Arg2 = argBool(ev.Args, "probe"), argInt(ev.Args, "latency_ns")
		case KindClose:
			s.Arg = argBool(ev.Args, "reset")
		case KindWakeup:
			s.Arg, s.Arg2 = argInt(ev.Args, "events"), argBool(ev.Args, "spurious")
		case KindSchedule:
			s.Arg, s.Arg2 = argInt(ev.Args, "passed"), argInt(ev.Args, "total")
		case KindSelmapSync:
			s.Arg = argInt(ev.Args, "bits")
		case KindFault:
			s.Arg = argInt(ev.Args, "code")
			s.Arg2 = argInt(ev.Args, "param")
		case KindProbe:
			s.Arg, s.Arg2 = argInt(ev.Args, "backend"), argBool(ev.Args, "ok")
		case KindBackendState:
			s.Arg, s.Arg2 = argInt(ev.Args, "backend"), argInt(ev.Args, "state")
		}
		switch ev.Ph {
		case "b":
			s.EndNS = s.StartNS // completed by the matching "e"
			open[ev.ID+"\x00"+ev.Name] = s
		case "X":
			s.EndNS = s.StartNS + nsOf(ev.Dur)
			spans = append(spans, s)
		case "i", "I":
			s.EndNS = s.StartNS
			spans = append(spans, s)
		default:
			return nil, fmt.Errorf("event %d: unsupported phase %q", i, ev.Ph)
		}
	}
	if len(open) > 0 {
		return nil, fmt.Errorf("%d async span(s) never ended", len(open))
	}
	return spans, nil
}
