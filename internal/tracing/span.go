// Package tracing is the per-connection flight recorder: a sim-clock span
// tracer that explains *where one connection waited* — reuseport steering at
// SYN time, accept-queue residency, epoll wait-queue wakeups (spurious ones
// attributed to the waiter they woke), worker accept, per-request service —
// the causal chain behind the tail latencies the paper's Fig. A2 decomposes.
// It complements internal/telemetry: telemetry answers "how much, on
// average"; tracing answers "why was this connection slow".
//
// Not to be confused with internal/trace, the workload-replay package.
//
// See docs/TRACING.md for the span schema and export formats.
//
// Design constraints mirror the telemetry layer:
//
//  1. Nil = off. Every layer holds small typed handles (*KernelTrace,
//     *WorkerTrace, *ScheduleTrace, *MapTrace) obtained once at wiring time;
//     a nil handle no-ops, so a disabled tracer costs one nil check per hook
//     and benchmark output is byte-identical with tracing on or off.
//  2. Timestamps are passed in, not read. The tracer never touches the sim
//     engine (or any clock), so recording cannot perturb a simulation.
//  3. Bounded storage. Committed spans live in a fixed-capacity ring; when
//     it fills, the oldest spans are overwritten (flight-recorder semantics)
//     and the loss is counted, never silent.
package tracing

import "sort"

// Kind classifies a span or instant event.
type Kind uint8

// Span kinds, in rough connection-lifecycle order.
const (
	// KindSYN: instant, kernel track — handshake completion, annotated with
	// the steering path (Via) and the chosen worker socket.
	KindSYN Kind = iota
	// KindDrop: instant, kernel track — a SYN refused (no listener, or
	// accept-queue overflow).
	KindDrop
	// KindAcceptQueue: span — establishment to accept(2); the residency the
	// accept-wait histogram aggregates. Worker is the accepting worker.
	KindAcceptQueue
	// KindAccept: instant, worker track — the worker dequeued the
	// connection.
	KindAccept
	// KindNotifyWait: span, worker track — request data arrival to the start
	// of its service: epoll notification delay plus queued-behind-batch time.
	KindNotifyWait
	// KindServe: span, worker track — request service (the Work.Cost burn).
	KindServe
	// KindClose: instant, worker track — connection teardown (Arg=1: RST).
	KindClose
	// KindWakeup: span, worker track — epoll block start to wakeup delivery.
	// Timeout-only waits are not recorded; Arg is the delivered event count,
	// Arg2=1 marks a spurious wakeup charged to this worker (the waiter the
	// wake discipline chose).
	KindWakeup
	// KindSchedule: instant, worker track — one schedule_and_sync pass
	// (Arg=workers passing the cascade, Arg2=table size).
	KindSchedule
	// KindSelmapSync: instant, kernel track — a userspace selection-map
	// update reached the kernel (Arg=bitmap popcount).
	KindSelmapSync
	// KindFault: instant, worker or kernel track — an injected fault or
	// recovery event (Arg=faults.Kind-style code, Arg2=kind-specific
	// parameter such as the hang duration).
	KindFault
	// KindProbe: span, kernel track — one active backend health probe
	// (Arg=backend index, Arg2=1 probe passed / 0 failed).
	KindProbe
	// KindBackendState: instant, kernel track — a backend availability
	// transition from the health checker or circuit breaker (Arg=backend
	// index, Arg2=new state code: proxy.BackendState / circuit state).
	KindBackendState
)

// kindNames are the stable export names (docs/TRACING.md).
var kindNames = [...]string{
	"syn", "drop", "accept_queue", "accept", "notify_wait",
	"serve", "close", "epoll_wait", "schedule", "selmap_sync", "fault",
	"probe", "backend_state",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromName inverts String (dump readers). ok=false for unknown names.
func KindFromName(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// Via is the steering path that chose a connection's socket at SYN time.
type Via uint8

// Steering paths.
const (
	// ViaShared: a shared listening socket — no steering decision.
	ViaShared Via = iota
	// ViaHash: plain reuseport hash (no selector attached).
	ViaHash
	// ViaProg: the attached program/selector picked the socket.
	ViaProg
	// ViaFallback: the selector declined (empty bitmap / too few workers)
	// and the kernel fell back to hashing.
	ViaFallback
	// ViaProgError: the selector errored; hash fallback.
	ViaProgError
)

var viaNames = [...]string{"shared", "hash", "prog", "fallback", "prog_error"}

func (v Via) String() string {
	if int(v) < len(viaNames) {
		return viaNames[v]
	}
	return "unknown"
}

// ViaFromName inverts String. ok=false for unknown names.
func ViaFromName(name string) (Via, bool) {
	for i, n := range viaNames {
		if n == name {
			return Via(i), true
		}
	}
	return 0, false
}

// KernelTrack is the Worker value of events on the kernel track.
const KernelTrack int32 = -1

// Span is one recorded event. Instants have StartNS == EndNS. Arg/Arg2 are
// kind-specific (see the Kind constants); fixed fields keep recording
// allocation-light and dumps byte-deterministic.
type Span struct {
	// Conn is the connection this span belongs to (0 for global events:
	// wakeups, schedule passes, selmap syncs).
	Conn uint64
	// Worker is the track: a worker id, or KernelTrack.
	Worker int32
	// Kind classifies the span.
	Kind Kind
	// StartNS / EndNS are the span bounds in virtual (or wall) nanoseconds.
	StartNS int64
	EndNS   int64
	// Arg / Arg2 are kind-specific annotations.
	Arg  int64
	Arg2 int64
}

// Instant reports whether the span is a zero-duration event.
func (s Span) Instant() bool { return s.StartNS == s.EndNS }

// DurNS returns the span duration.
func (s Span) DurNS() int64 { return s.EndNS - s.StartNS }

// SortSpans sorts spans into the canonical export order (see less). Stable,
// so exact duplicates keep their relative order.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool { return less(spans[i], spans[j]) })
}

// less is the total export order: by start time, then end, then track, then
// connection, then kind, then args. Total modulo exact duplicates, so sorted
// dumps are byte-deterministic.
func less(a, b Span) bool {
	if a.StartNS != b.StartNS {
		return a.StartNS < b.StartNS
	}
	if a.EndNS != b.EndNS {
		return a.EndNS < b.EndNS
	}
	if a.Worker != b.Worker {
		return a.Worker < b.Worker
	}
	if a.Conn != b.Conn {
		return a.Conn < b.Conn
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Arg != b.Arg {
		return a.Arg < b.Arg
	}
	return a.Arg2 < b.Arg2
}
