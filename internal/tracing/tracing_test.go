package tracing

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

// recordConn plays one connection's full lifecycle through the handles.
func recordConn(k *KernelTrace, w *WorkerTrace, conn uint64, base, latency int64) {
	k.ConnEstablished(conn, base, 0, ViaProg)
	w.Accept(conn, base, base+100)
	w.Serve(conn, base+200, base+300, base+200+latency, false)
	w.Close(conn, base+200+latency+50, false)
}

func TestLifecycleSpans(t *testing.T) {
	tr := New(DefaultConfig())
	k, w := tr.KernelTrace(), tr.WorkerTrace(0)
	recordConn(k, w, 1, 1000, 500)
	tr.Flush()
	spans := tr.Spans()
	wantKinds := []Kind{KindSYN, KindAcceptQueue, KindAccept, KindNotifyWait, KindServe, KindClose}
	if len(spans) != len(wantKinds) {
		t.Fatalf("got %d spans, want %d: %+v", len(spans), len(wantKinds), spans)
	}
	for i, s := range spans {
		if s.Kind != wantKinds[i] {
			t.Errorf("span %d kind = %s, want %s", i, s.Kind, wantKinds[i])
		}
		if s.Conn != 1 {
			t.Errorf("span %d conn = %d, want 1", i, s.Conn)
		}
	}
	if got := spans[1].DurNS(); got != 100 {
		t.Errorf("accept_queue residency = %d, want 100", got)
	}
	if got := spans[4].Arg2; got != 500 {
		t.Errorf("serve latency = %d, want 500", got)
	}
	if spans[5].Worker != 0 {
		t.Errorf("close track = %d, want worker 0", spans[5].Worker)
	}
	st := tr.Stats()
	if st.ConnsSeen != 1 || st.ConnsKept != 1 || st.SpansDropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 3, MaxSpans: 1 << 12})
	k, w := tr.KernelTrace(), tr.WorkerTrace(0)
	for c := uint64(1); c <= 9; c++ {
		recordConn(k, w, c, int64(c)*10000, 100)
	}
	tr.Flush()
	st := tr.Stats()
	if st.ConnsSeen != 9 || st.ConnsKept != 3 {
		t.Fatalf("seen=%d kept=%d, want 9/3", st.ConnsSeen, st.ConnsKept)
	}
	// Connections 1, 4, 7 (1st, 4th, 7th seen) are the sampled ones.
	want := map[uint64]bool{1: true, 4: true, 7: true}
	for _, s := range tr.Spans() {
		if !want[s.Conn] {
			t.Fatalf("unsampled conn %d leaked into the ring", s.Conn)
		}
	}
}

func TestTailCapture(t *testing.T) {
	tr := New(Config{SampleEvery: 1000, TailLatencyNS: 400, MaxSpans: 1 << 12})
	k, w := tr.KernelTrace(), tr.WorkerTrace(0)
	recordConn(k, w, 1, 10000, 100) // head-sampled (first conn)
	recordConn(k, w, 2, 20000, 100) // fast, skipped
	recordConn(k, w, 3, 30000, 900) // slow: tail-captured
	tr.Flush()
	st := tr.Stats()
	if st.ConnsKept != 2 {
		t.Fatalf("kept = %d, want 2 (head conn 1 + tail conn 3)", st.ConnsKept)
	}
	seen := map[uint64]bool{}
	for _, s := range tr.Spans() {
		seen[s.Conn] = true
	}
	if !seen[1] || seen[2] || !seen[3] {
		t.Fatalf("kept conns = %v, want {1,3}", seen)
	}
}

func TestSamplingSkipsBuffering(t *testing.T) {
	// With tail capture off, skipped connections must not be buffered.
	tr := New(Config{SampleEvery: 2, MaxSpans: 1 << 12})
	k := tr.KernelTrace()
	k.ConnEstablished(1, 100, 0, ViaHash) // sampled
	k.ConnEstablished(2, 200, 0, ViaHash) // skipped
	if len(tr.conns) != 1 {
		t.Fatalf("buffered conns = %d, want 1", len(tr.conns))
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := New(Config{SampleEvery: 1, MaxSpans: 4})
	w := tr.WorkerTrace(0)
	for i := int64(0); i < 10; i++ {
		w.Wakeup(i*100, i*100+10, 1, false)
	}
	st := tr.Stats()
	if st.SpansCommitted != 10 || st.SpansDropped != 6 {
		t.Fatalf("committed=%d dropped=%d, want 10/6", st.SpansCommitted, st.SpansDropped)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	if spans[0].StartNS != 600 || spans[3].StartNS != 900 {
		t.Fatalf("ring kept %v, want the newest four (600..900)", spans)
	}
}

func TestDroppedSYNGoesStraightToRing(t *testing.T) {
	tr := New(DefaultConfig())
	k := tr.KernelTrace()
	k.ConnDropped(500, ViaHash, true)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Kind != KindDrop || spans[0].Arg2 != 1 {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestWakeupSkipsTimeouts(t *testing.T) {
	tr := New(DefaultConfig())
	w := tr.WorkerTrace(2)
	w.Wakeup(0, 100, 0, true)  // timeout, skipped
	w.Wakeup(0, 100, 0, false) // spurious
	w.Wakeup(0, 100, 3, false) // real
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d wakeup spans, want 2", len(spans))
	}
	if spans[0].Arg2 != 1 || spans[1].Arg2 != 0 {
		t.Fatalf("spurious flags wrong: %+v", spans)
	}
}

func TestNilTracerAndHandles(t *testing.T) {
	var tr *Tracer
	tr.Flush()
	if tr.Spans() != nil || tr.Stats() != (Stats{}) {
		t.Fatal("nil tracer must report empty")
	}
	k, w, s, m := tr.KernelTrace(), tr.WorkerTrace(0), tr.ScheduleTrace(), tr.MapTrace(func() int64 { return 0 })
	if k != nil || w != nil || s != nil || m != nil {
		t.Fatal("nil tracer must hand out nil handles")
	}
	// Every hook must no-op on a nil handle.
	k.ConnEstablished(1, 0, 0, ViaProg)
	k.ConnDropped(0, ViaHash, false)
	w.Wakeup(0, 1, 1, false)
	w.Accept(1, 0, 1)
	w.Serve(1, 0, 1, 2, false)
	w.Close(1, 2, false)
	s.Pass(0, 0, 1, 2)
	m.Sync(3)
}

func TestDisabledHooksZeroAlloc(t *testing.T) {
	var k *KernelTrace
	var w *WorkerTrace
	allocs := testing.AllocsPerRun(1000, func() {
		k.ConnEstablished(1, 0, 0, ViaProg)
		w.Accept(1, 0, 1)
		w.Serve(1, 0, 1, 2, false)
		w.Close(1, 2, false)
	})
	if allocs != 0 {
		t.Fatalf("disabled hooks allocate %v/op, want 0", allocs)
	}
}

func roundTrip(t *testing.T, write func(*bytes.Buffer, []Span, Meta) error) {
	t.Helper()
	tr := New(DefaultConfig())
	k, w := tr.KernelTrace(), tr.WorkerTrace(1)
	k.ConnDropped(50, ViaHash, false)
	recordConn(k, w, 7, 1000, 300)
	// A second request on the same conn would overlap — exercise async ids.
	tr.ScheduleTrace().Pass(1, 2500, 3, 4)
	tr.MapTrace(func() int64 { return 2600 }).Sync(5)
	w2 := tr.WorkerTrace(0)
	w2.Wakeup(2700, 2800, 0, false)
	tr.Flush()
	want := tr.Spans()
	meta := MetaFor("cellA", tr.Stats())

	var buf bytes.Buffer
	if err := write(&buf, want, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Errorf("meta = %+v, want %+v", gotMeta, meta)
	}
	// Chrome async pairs complete at the "e" event, so file order differs;
	// compare under the canonical sort.
	SortSpans(got)
	SortSpans(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	roundTrip(t, func(b *bytes.Buffer, s []Span, m Meta) error { return WriteJSONL(b, s, m) })
}

func TestChromeRoundTrip(t *testing.T) {
	roundTrip(t, func(b *bytes.Buffer, s []Span, m Meta) error { return WriteChrome(b, s, m) })
}

func TestChromeIsValidJSON(t *testing.T) {
	tr := New(DefaultConfig())
	recordConn(tr.KernelTrace(), tr.WorkerTrace(0), 1, 1000, 200)
	tr.Flush()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Spans(), MetaFor("", tr.Stats())); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	evs, ok := doc["traceEvents"].([]any)
	if !ok || len(evs) == 0 {
		t.Fatal("traceEvents missing or empty")
	}
}

func TestExportDeterministic(t *testing.T) {
	build := func() (*bytes.Buffer, *bytes.Buffer) {
		tr := New(DefaultConfig())
		k := tr.KernelTrace()
		ws := []*WorkerTrace{tr.WorkerTrace(0), tr.WorkerTrace(1)}
		for c := uint64(1); c <= 20; c++ {
			recordConn(k, ws[c%2], c, int64(c)*1000, int64(c)*7)
		}
		tr.Flush()
		var j, ch bytes.Buffer
		meta := MetaFor("x", tr.Stats())
		if err := WriteJSONL(&j, tr.Spans(), meta); err != nil {
			t.Fatal(err)
		}
		if err := WriteChrome(&ch, tr.Spans(), meta); err != nil {
			t.Fatal(err)
		}
		return &j, &ch
	}
	j1, c1 := build()
	j2, c2 := build()
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Error("JSONL export not byte-deterministic")
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Error("Chrome export not byte-deterministic")
	}
}

func TestConcurrentMode(t *testing.T) {
	tr := New(Config{SampleEvery: 1, MaxSpans: 1 << 16, Concurrent: true})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k, w := tr.KernelTrace(), tr.WorkerTrace(g)
			for c := uint64(0); c < 100; c++ {
				id := uint64(g)*1000 + c + 1
				recordConn(k, w, id, int64(id), 10)
			}
		}(g)
	}
	wg.Wait()
	tr.Flush()
	if st := tr.Stats(); st.ConnsKept != 400 {
		t.Fatalf("kept = %d, want 400", st.ConnsKept)
	}
}

// BenchmarkTracerDisabled proves the disabled hot path (nil handles) costs
// one nil check and zero allocations per hook.
func BenchmarkTracerDisabled(b *testing.B) {
	var k *KernelTrace
	var w *WorkerTrace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.ConnEstablished(uint64(i), int64(i), 0, ViaProg)
		w.Accept(uint64(i), int64(i), int64(i)+1)
		w.Serve(uint64(i), int64(i), int64(i)+1, int64(i)+2, false)
		w.Close(uint64(i), int64(i)+3, false)
	}
}

// BenchmarkTracerSampled measures the recording path with buffer reuse:
// steady-state connections should not allocate (free-listed buffers).
func BenchmarkTracerSampled(b *testing.B) {
	tr := New(Config{SampleEvery: 1, MaxSpans: 1 << 10})
	k, w := tr.KernelTrace(), tr.WorkerTrace(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		recordConn(k, w, uint64(i)+1, int64(i)*1000, 100)
	}
}
