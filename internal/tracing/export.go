package tracing

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Meta is the dump header carried by both export formats: the first line of
// a JSONL dump, and the "hermesMeta" object of a Chrome trace. Readers use
// it to tell sampled dumps from complete ones.
type Meta struct {
	// FormatVersion is the span-dump schema version (currently 1).
	FormatVersion int `json:"hermes_spans"`
	// Cell names the bench cell (or run) the dump came from, if any.
	Cell           string `json:"cell,omitempty"`
	ConnsSeen      uint64 `json:"conns_seen"`
	ConnsKept      uint64 `json:"conns_kept"`
	SpansCommitted uint64 `json:"spans_committed"`
	SpansDropped   uint64 `json:"spans_dropped"`
}

// MetaFor builds a dump header from tracer stats.
func MetaFor(cell string, st Stats) Meta {
	return Meta{
		FormatVersion:  1,
		Cell:           cell,
		ConnsSeen:      st.ConnsSeen,
		ConnsKept:      st.ConnsKept,
		SpansCommitted: st.SpansCommitted,
		SpansDropped:   st.SpansDropped,
	}
}

// jsonlSpan is the compact one-line-per-span schema (docs/TRACING.md).
type jsonlSpan struct {
	Conn    uint64 `json:"conn"`
	Worker  int32  `json:"worker"`
	Kind    string `json:"kind"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns"`
	Arg     int64  `json:"arg"`
	Arg2    int64  `json:"arg2"`
}

// WriteJSONL writes the compact span dump: a meta header line followed by
// one JSON object per span, in the given order.
func WriteJSONL(w io.Writer, spans []Span, meta Meta) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, s := range spans {
		js := jsonlSpan{
			Conn: s.Conn, Worker: s.Worker, Kind: s.Kind.String(),
			StartNS: s.StartNS, EndNS: s.EndNS, Arg: s.Arg, Arg2: s.Arg2,
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one Chrome trace-event. Field order is fixed and args maps
// marshal with sorted keys, so output is byte-deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// tid maps a span track to a Chrome thread id: kernel = 0, worker i = i+1.
func tid(worker int32) int {
	if worker == KernelTrack {
		return 0
	}
	return int(worker) + 1
}

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// spanArgs builds the kind-specific args object shown in Perfetto's detail
// pane. Readers invert it (see read.go) — keep the two in sync.
func spanArgs(s Span) map[string]any {
	a := map[string]any{}
	if s.Conn != 0 {
		a["conn"] = s.Conn
	}
	switch s.Kind {
	case KindSYN:
		a["via"] = Via(s.Arg).String()
		a["worker"] = s.Arg2
	case KindDrop:
		a["via"] = Via(s.Arg).String()
		a["overflow"] = s.Arg2 != 0
	case KindNotifyWait:
		a["probe"] = s.Arg != 0
	case KindServe:
		a["probe"] = s.Arg != 0
		a["latency_ns"] = s.Arg2
	case KindClose:
		a["reset"] = s.Arg != 0
	case KindWakeup:
		a["events"] = s.Arg
		a["spurious"] = s.Arg2 != 0
	case KindSchedule:
		a["passed"] = s.Arg
		a["total"] = s.Arg2
	case KindSelmapSync:
		a["bits"] = s.Arg
	case KindFault:
		a["code"] = s.Arg
		if s.Arg2 != 0 {
			a["param"] = s.Arg2
		}
	case KindProbe:
		a["backend"] = s.Arg
		a["ok"] = s.Arg2 != 0
	case KindBackendState:
		a["backend"] = s.Arg
		a["state"] = s.Arg2
	}
	return a
}

// WriteChrome writes a Chrome trace-event JSON file loadable in Perfetto:
// one "thread" per worker plus a kernel thread (tid 0), all under pid 0.
// Run-to-completion worker spans (serve, epoll_wait) are complete events;
// connection-scoped waits (accept_queue, notify_wait) overlap freely and go
// out as async begin/end pairs; everything else is an instant. Timestamps
// are microseconds (ns/1000), recoverable exactly by rounding.
func WriteChrome(w io.Writer, spans []Span, meta Meta) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	maxWorker := int32(-1)
	for _, s := range spans {
		if s.Worker > maxWorker {
			maxWorker = s.Worker
		}
	}
	if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "kernel"}}); err != nil {
		return err
	}
	for i := int32(0); i <= maxWorker; i++ {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: tid(i),
			Args: map[string]any{"name": fmt.Sprintf("worker %d", i)}}); err != nil {
			return err
		}
	}

	// notify_wait spans of one connection can overlap (queued requests);
	// number them per connection so each async pair gets a unique id.
	reqSeq := map[uint64]int{}
	for _, s := range spans {
		ev := chromeEvent{Name: s.Kind.String(), Pid: 0, Tid: tid(s.Worker),
			Ts: usec(s.StartNS), Args: spanArgs(s)}
		switch s.Kind {
		case KindAcceptQueue, KindNotifyWait:
			ev.Ph, ev.Cat = "b", "conn"
			if s.Kind == KindAcceptQueue {
				ev.ID = fmt.Sprintf("c%d", s.Conn)
			} else {
				ev.ID = fmt.Sprintf("c%d.r%d", s.Conn, reqSeq[s.Conn])
				reqSeq[s.Conn]++
			}
			if err := emit(ev); err != nil {
				return err
			}
			end := chromeEvent{Name: ev.Name, Ph: "e", Ts: usec(s.EndNS),
				Pid: 0, Tid: ev.Tid, Cat: "conn", ID: ev.ID}
			if err := emit(end); err != nil {
				return err
			}
		case KindServe, KindWakeup, KindProbe:
			d := usec(s.EndNS - s.StartNS)
			ev.Ph, ev.Dur = "X", &d
			if err := emit(ev); err != nil {
				return err
			}
		default: // instants
			ev.Ph, ev.S = "i", "t"
			if err := emit(ev); err != nil {
				return err
			}
		}
	}

	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ns\",\"hermesMeta\":"); err != nil {
		return err
	}
	if _, err := bw.Write(metaJSON); err != nil {
		return err
	}
	if _, err := bw.WriteString("}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
